// Package stdchk is a checkpoint storage system for desktop grid
// computing: a from-scratch reproduction of Al Kiswany, Ripeanu, Vazhkudai
// and Gharaibeh, "stdchk: A Checkpoint Storage System for Desktop Grid
// Computing" (ICDCS 2008).
//
// stdchk aggregates scavenged disk space from unreliable desktop nodes
// (benefactors) into a low-cost storage system optimized for the
// checkpointing workload: write-intensive, sequential, versioned,
// transient data. A central metadata manager tracks benefactors with
// soft-state registration, allocates write stripes, and stores chunk-maps;
// data moves directly between clients and benefactors in content-addressed
// chunks, striped round-robin.
//
// The package offers three write protocols (complete local write,
// incremental write, sliding-window write), optimistic and pessimistic
// write semantics, manager-driven background replication with
// user-defined targets, incremental checkpointing via fixed-size
// compare-by-hash (FsCH) chunk dedup, automatic data-lifetime management
// (none / automated-replace / automated-purge folder policies), garbage
// collection of orphaned chunks, and a POSIX-like file system facade.
//
// # Quick start
//
//	cluster, _ := stdchk.StartCluster(stdchk.ClusterOptions{Benefactors: 4})
//	defer cluster.Close()
//
//	client, _ := cluster.Connect(stdchk.Options{})
//	defer client.Close()
//
//	w, _ := client.Create("myapp.n1.t0")
//	w.Write(checkpointImage)
//	w.Close() // application-visible end of the checkpoint
//	w.Wait()  // stored and committed
//
//	r, _ := client.Open("myapp.n1.t0")
//	image, _ := r.ReadAll()
//
// For daemon deployments, see cmd/stdchk-manager, cmd/stdchk-benefactor
// and the cmd/stdchk client CLI; cmd/stdchk-bench regenerates the paper's
// evaluation.
package stdchk

import (
	"strings"
	"time"

	"stdchk/internal/benefactor"
	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/federation"
	"stdchk/internal/fsiface"
	"stdchk/internal/grid"
	"stdchk/internal/manager"
	"stdchk/internal/proto"
	"stdchk/internal/store"
)

// Re-exported domain types. See package core for full documentation.
type (
	// ChunkID is the content-based (SHA-1) name of a chunk.
	ChunkID = core.ChunkID
	// NodeID identifies a benefactor.
	NodeID = core.NodeID
	// VersionID identifies one committed version of a dataset.
	VersionID = core.VersionID
	// ChunkMap describes one committed version: its chunks and replica
	// locations.
	ChunkMap = core.ChunkMap
	// DatasetInfo summarizes a dataset and its version chain.
	DatasetInfo = core.DatasetInfo
	// VersionInfo summarizes one committed version.
	VersionInfo = core.VersionInfo
	// BenefactorInfo summarizes a registered benefactor.
	BenefactorInfo = core.BenefactorInfo
	// Policy is a folder data-lifetime policy.
	Policy = core.Policy
	// PolicyKind selects none / replace / purge behaviour.
	PolicyKind = core.PolicyKind
	// WriteSemantics selects optimistic or pessimistic writes.
	WriteSemantics = core.WriteSemantics
	// Retention is a folder version-retention schedule (keep-last-N,
	// keep-hourly), enforced by the manager's background retention worker.
	Retention = core.Retention
	// Protocol selects the write data path.
	Protocol = client.Protocol
	// WriteMetrics carries a write session's measurements.
	WriteMetrics = client.WriteMetrics
	// ManagerStats aggregates manager-side counters.
	ManagerStats = proto.ManagerStats
	// OpenOptions selects which committed version Open serves: an explicit
	// Version, the newest AsOf an instant, or (default) the latest —
	// optionally restored incrementally against a local Baseline.
	OpenOptions = client.OpenOptions
	// HistoryResp is a dataset's version lineage, oldest first.
	HistoryResp = proto.HistoryResp
	// VersionLineage describes one version in a dataset's history.
	VersionLineage = proto.VersionLineage
	// DiffResp lists the byte ranges that changed between two versions.
	DiffResp = proto.DiffResp
	// ByteRange is one changed [Offset, Offset+Length) span in a diff.
	ByteRange = proto.ByteRange
)

// Policy kinds (paper §IV.D).
const (
	PolicyNone    = core.PolicyNone
	PolicyReplace = core.PolicyReplace
	PolicyPurge   = core.PolicyPurge
)

// Write semantics (paper §IV.A).
const (
	WriteOptimistic  = core.WriteOptimistic
	WritePessimistic = core.WritePessimistic
)

// Write protocols (paper §IV.B).
const (
	SlidingWindow      = client.SlidingWindow
	IncrementalWrite   = client.IncrementalWrite
	CompleteLocalWrite = client.CompleteLocalWrite
)

// Sentinel errors.
var (
	ErrNotFound       = core.ErrNotFound
	ErrNoSpace        = core.ErrNoSpace
	ErrNoBenefactors  = core.ErrNoBenefactors
	ErrIntegrity      = core.ErrIntegrity
	ErrBenefactorDown = core.ErrBenefactorDown
)

// DefaultChunkSize is the striping chunk size (1 MB, as evaluated in the
// paper).
const DefaultChunkSize = core.DefaultChunkSize

// Options configures a client connection.
type Options struct {
	// ManagerAddr is the metadata manager's address — or a
	// comma-separated federation member list, which makes the client
	// route each dataset to its owning member. Filled automatically by
	// Cluster.Connect.
	ManagerAddr string
	// StripeWidth is the number of benefactors writes stripe across
	// (0 = manager default, 4).
	StripeWidth int
	// ChunkSize is the striping chunk size (0 = 1 MB).
	ChunkSize int64
	// Replication is the desired replica count (0 = manager default, 2).
	Replication int
	// Semantics selects optimistic (default) or pessimistic writes.
	Semantics WriteSemantics
	// Protocol selects the write data path (default sliding window).
	Protocol Protocol
	// BufferBytes bounds the sliding-window memory buffer.
	BufferBytes int64
	// TempFileBytes bounds incremental-write temp files.
	TempFileBytes int64
	// Incremental enables FsCH chunk dedup against the store's content
	// index (incremental checkpointing, paper §IV.C).
	Incremental bool
	// PushMapReplicas stores chunk-map copies on stripe benefactors at
	// commit, enabling manager recovery by quorum (paper §IV.A).
	PushMapReplicas bool
	// Writer is an optional identity stamped on every version this client
	// commits, surfaced in version history (checkpoint provenance).
	Writer string
}

// Client is a stdchk client: create/read checkpoint files, manage
// policies, inspect the system.
type Client struct {
	inner *client.Client
}

// Writer is an open write session (io.WriteCloser plus Wait/Metrics).
type Writer = client.Writer

// Reader is an open read session (io.ReadCloser plus ReadAll/Size).
type Reader = client.Reader

// FS is the POSIX-like facade (paper §IV.E).
type FS = fsiface.FS

// File is an open facade handle.
type File = fsiface.File

// clientConfig maps the facade options onto a client config. Both the
// standalone and the federated Connect paths go through here, so a new
// option cannot reach one and silently miss the other.
func (o Options) clientConfig() client.Config {
	return client.Config{
		ManagerAddr:     o.ManagerAddr,
		StripeWidth:     o.StripeWidth,
		ChunkSize:       o.ChunkSize,
		Replication:     o.Replication,
		Semantics:       o.Semantics,
		Protocol:        o.Protocol,
		BufferBytes:     o.BufferBytes,
		TempFileBytes:   o.TempFileBytes,
		Incremental:     o.Incremental,
		PushMapReplicas: o.PushMapReplicas,
		Writer:          o.Writer,
	}
}

// Connect opens a client against a running metadata service: one manager,
// or a federation when ManagerAddr lists several members (same syntax as
// the stdchk CLI's -manager flag).
func Connect(opts Options) (*Client, error) {
	cfg := opts.clientConfig()
	if members := federation.SplitMembers(opts.ManagerAddr); len(members) > 1 {
		r, err := federation.NewRouter(federation.RouterConfig{Members: members})
		if err != nil {
			return nil, err
		}
		cfg.ManagerAddr = ""
		cfg.Endpoint = r // the client owns and closes it
	}
	inner, err := client.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Client{inner: inner}, nil
}

// Create opens a write session for a new checkpoint image. Names follow
// the A.Ni.Tj convention ("app.node.timestep"); successive timesteps of
// one (app, node) pair form a version chain.
func (c *Client) Create(name string) (*Writer, error) { return c.inner.Create(name) }

// Open opens a committed version for reading: the latest by default, or
// the version the single optional OpenOptions selects (explicit Version,
// newest AsOf an instant, incremental restore against a Baseline).
func (c *Client) Open(name string, opts ...OpenOptions) (*Reader, error) {
	return c.inner.Open(name, opts...)
}

// OpenVersion opens a specific version (0 = latest).
//
// Deprecated: use Open(name, OpenOptions{Version: v}).
func (c *Client) OpenVersion(name string, v VersionID) (*Reader, error) {
	return c.inner.OpenVersion(name, v)
}

// History reports a dataset's version lineage, oldest first: identity,
// commit time, writer, size, and sharing with each predecessor.
func (c *Client) History(name string) (HistoryResp, error) { return c.inner.History(name) }

// Diff reports the byte ranges of version to that differ from version
// from (to = 0 means latest). Bytes outside the ranges are identical.
func (c *Client) Diff(name string, from, to VersionID) (DiffResp, error) {
	return c.inner.Diff(name, from, to)
}

// PrefetchMaps warms the client's chunk-map cache for several datasets in
// one metadata round trip per federation member touched. Unknown names
// are skipped; returns how many maps were installed.
func (c *Client) PrefetchMaps(names []string) (int, error) { return c.inner.PrefetchMaps(names) }

// Delete removes one version, or all versions when v is 0.
func (c *Client) Delete(name string, v VersionID) error { return c.inner.Delete(name, v) }

// List lists datasets, optionally restricted to a folder (application).
func (c *Client) List(folder string) ([]DatasetInfo, error) { return c.inner.List(folder) }

// Stat summarizes a dataset.
func (c *Client) Stat(name string) (DatasetInfo, error) { return c.inner.Stat(name) }

// SetPolicy attaches a data-lifetime policy to an application folder.
func (c *Client) SetPolicy(folder string, p Policy) error { return c.inner.SetPolicy(folder, p) }

// GetPolicy reads a folder policy.
func (c *Client) GetPolicy(folder string) (Policy, error) { return c.inner.GetPolicy(folder) }

// Benefactors lists registered storage donors.
func (c *Client) Benefactors() ([]BenefactorInfo, error) { return c.inner.Benefactors() }

// Stats snapshots manager counters.
func (c *Client) Stats() (ManagerStats, error) { return c.inner.ManagerStats() }

// Mount returns the POSIX-like facade over this client.
func (c *Client) Mount() (*FS, error) {
	return fsiface.New(fsiface.Config{Client: c.inner})
}

// Close releases the client's connections.
func (c *Client) Close() error { return c.inner.Close() }

// ManagerConfig configures a standalone metadata manager.
type ManagerConfig struct {
	// ListenAddr is the TCP service address (default "127.0.0.1:0").
	ListenAddr string
	// HeartbeatInterval is the benefactor soft-state refresh period.
	HeartbeatInterval time.Duration
	// DefaultReplication is the replication target when clients do not
	// specify one (default 2).
	DefaultReplication int
	// JournalPath persists metadata for crash recovery (optional; the
	// benefactor-quorum recovery of paper §IV.A works without it).
	JournalPath string
	// Recover starts in recovery mode, rebuilding metadata from
	// benefactor-held chunk-map replicas.
	Recover bool
}

// Manager is a running metadata manager.
type Manager = manager.Manager

// StartManager launches a metadata manager.
func StartManager(cfg ManagerConfig) (*Manager, error) {
	return manager.New(manager.Config{
		ListenAddr:         cfg.ListenAddr,
		HeartbeatInterval:  cfg.HeartbeatInterval,
		DefaultReplication: cfg.DefaultReplication,
		JournalPath:        cfg.JournalPath,
		Recover:            cfg.Recover,
		WritePriority:      true,
	})
}

// BenefactorConfig configures a storage donor node.
type BenefactorConfig struct {
	// ListenAddr is the chunk-service address (default "127.0.0.1:0").
	ListenAddr string
	// ManagerAddr is the manager to register with.
	ManagerAddr string
	// Capacity is the contributed space in bytes (0 = unlimited).
	Capacity int64
	// Dir stores chunks on disk; empty keeps them in memory.
	Dir string
	// ID overrides the node identity (defaults to the listen address).
	ID NodeID
}

// Benefactor is a running storage donor.
type Benefactor = benefactor.Benefactor

// StartBenefactor launches a storage donor node.
func StartBenefactor(cfg BenefactorConfig) (*Benefactor, error) {
	bcfg := benefactor.Config{
		ID:          cfg.ID,
		ListenAddr:  cfg.ListenAddr,
		ManagerAddr: cfg.ManagerAddr,
		Capacity:    cfg.Capacity,
	}
	if cfg.Dir != "" {
		st, err := store.OpenDisk(cfg.Dir, cfg.Capacity, nil)
		if err != nil {
			return nil, err
		}
		bcfg.Store = st
	}
	return benefactor.New(bcfg)
}

// ClusterOptions configures an in-process cluster (development, tests,
// examples — the paper's desktop grid in one process).
type ClusterOptions struct {
	// Managers is the number of federated metadata managers (0 or 1 =
	// one standalone manager). With N > 1 the dataset namespace is
	// partitioned across the members and clients route through a
	// federation router transparently.
	Managers int
	// Benefactors is the number of donor nodes (default 4).
	Benefactors int
	// BenefactorCapacity is each node's contribution (0 = unlimited).
	BenefactorCapacity int64
	// Replication is the default replication target.
	Replication int
}

// Cluster is an in-process stdchk deployment.
type Cluster struct {
	inner *grid.Cluster
}

// StartCluster launches a manager and N benefactors in-process.
func StartCluster(opts ClusterOptions) (*Cluster, error) {
	c, err := grid.Start(grid.Options{
		Managers:           opts.Managers,
		Benefactors:        opts.Benefactors,
		BenefactorCapacity: opts.BenefactorCapacity,
		BenefactorProfile:  device.Unshaped(),
		Manager: manager.Config{
			HeartbeatInterval:   200 * time.Millisecond,
			ReplicationInterval: 200 * time.Millisecond,
			DefaultReplication:  opts.Replication,
			WritePriority:       true,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: c}, nil
}

// ManagerAddr returns the cluster manager's address (federation member 0
// when federated).
func (c *Cluster) ManagerAddr() string { return c.inner.Manager.Addr() }

// ManagerAddrs returns every metadata-plane member address.
func (c *Cluster) ManagerAddrs() []string { return c.inner.ManagerAddrs() }

// Connect opens a client against this cluster. Federated clusters hand
// the client a partition router (via Connect's member-list handling), so
// callers see one metadata service either way.
func (c *Cluster) Connect(opts Options) (*Client, error) {
	opts.ManagerAddr = strings.Join(c.inner.ManagerAddrs(), ",")
	return Connect(opts)
}

// Stats snapshots the metadata plane's counters (merged across members
// when federated).
func (c *Cluster) Stats() ManagerStats { return c.inner.Stats() }

// StopBenefactor kills one donor node (failure injection in tests and
// examples).
func (c *Cluster) StopBenefactor(i int) error { return c.inner.StopBenefactor(i) }

// AddBenefactor starts one more donor node.
func (c *Cluster) AddBenefactor() error {
	_, err := c.inner.AddBenefactor()
	return err
}

// Close stops the whole cluster.
func (c *Cluster) Close() { c.inner.Close() }
