module stdchk

go 1.24.0
