// Command stdchk-benchdiff compares two `go test -bench -benchmem` outputs
// and fails when a hot-path benchmark's allocs/op regresses beyond a
// threshold. CI's bench-compare job runs the benchmarks on the merge-base
// and on the PR head, then gates the delta here; benchstat renders the
// human-readable report alongside.
//
// Usage:
//
//	stdchk-benchdiff -base base.txt -head head.txt [-max-allocs-regress 30]
//
// Benchmarks present on only one side are reported but never gate (new
// benchmarks have no baseline; removed ones have no head). Multiple runs
// of one benchmark are averaged.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stdchk-benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("stdchk-benchdiff", flag.ContinueOnError)
	var (
		basePath  = fs.String("base", "", "bench output of the merge-base")
		headPath  = fs.String("head", "", "bench output of the PR head")
		maxAllocs = fs.Float64("max-allocs-regress", 30, "fail when allocs/op grows more than this percentage")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *basePath == "" || *headPath == "" {
		return fmt.Errorf("both -base and -head are required")
	}
	base, err := parseFile(*basePath)
	if err != nil {
		return err
	}
	head, err := parseFile(*headPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(out, "%-40s %14s %14s %10s\n", "benchmark", "base allocs/op", "head allocs/op", "delta")
	var failures []string
	for _, name := range names {
		h := head[name]
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(out, "%-40s %14s %14.1f %10s\n", name, "(new)", h.AllocsPerOp, "-")
			continue
		}
		delta := 0.0
		if b.AllocsPerOp > 0 {
			delta = 100 * (h.AllocsPerOp - b.AllocsPerOp) / b.AllocsPerOp
		} else if h.AllocsPerOp > 0 {
			delta = 100
		}
		fmt.Fprintf(out, "%-40s %14.1f %14.1f %9.1f%%\n", name, b.AllocsPerOp, h.AllocsPerOp, delta)
		if delta > *maxAllocs {
			failures = append(failures,
				fmt.Sprintf("%s: allocs/op %.1f -> %.1f (+%.1f%% > %.0f%%)", name, b.AllocsPerOp, h.AllocsPerOp, delta, *maxAllocs))
		}
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			fmt.Fprintf(out, "%-40s %14.1f %14s %10s\n", name, base[name].AllocsPerOp, "(gone)", "-")
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation regressions:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// result is one benchmark's averaged metrics.
type result struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	runs        int
}

// parseFile reads a `go test -bench` output file into averaged results
// keyed by benchmark name (the -<GOMAXPROCS> suffix stripped).
func parseFile(path string) (map[string]*result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		agg, exists := out[name]
		if !exists {
			out[name] = r
			continue
		}
		// Running average across repetitions.
		n := float64(agg.runs)
		agg.NsPerOp = (agg.NsPerOp*n + r.NsPerOp) / (n + 1)
		agg.BytesPerOp = (agg.BytesPerOp*n + r.BytesPerOp) / (n + 1)
		agg.AllocsPerOp = (agg.AllocsPerOp*n + r.AllocsPerOp) / (n + 1)
		agg.runs++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkWireFrame/meta=128-4  100  1234 ns/op  56 B/op  7 allocs/op
func parseLine(line string) (string, *result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := fields[0]
	// Strip the trailing -<GOMAXPROCS> so runs on different machines
	// compare by benchmark identity.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := &result{runs: 1}
	found := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			found = true
		case "B/op":
			r.BytesPerOp = v
			found = true
		case "allocs/op":
			r.AllocsPerOp = v
			found = true
		}
	}
	if !found {
		return "", nil, false
	}
	return name, r, true
}
