package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	tests := []struct {
		line   string
		name   string
		allocs float64
		ok     bool
	}{
		{"BenchmarkWireFrame/meta=128-4  100  1234 ns/op  56 B/op  7 allocs/op", "BenchmarkWireFrame/meta=128", 7, true},
		{"BenchmarkManagerOps 	 200	 78246 ns/op	 11550 B/op	 195 allocs/op", "BenchmarkManagerOps", 195, true},
		{"BenchmarkNoSuffix  100  99 ns/op", "BenchmarkNoSuffix", 0, true},
		{"PASS", "", 0, false},
		{"ok  	stdchk/internal/wire	0.5s", "", 0, false},
		{"goos: linux", "", 0, false},
	}
	for _, tt := range tests {
		name, r, ok := parseLine(tt.line)
		if ok != tt.ok {
			t.Fatalf("parseLine(%q) ok = %v, want %v", tt.line, ok, tt.ok)
		}
		if !ok {
			continue
		}
		if name != tt.name {
			t.Fatalf("parseLine(%q) name = %q, want %q", tt.line, name, tt.name)
		}
		if r.AllocsPerOp != tt.allocs {
			t.Fatalf("parseLine(%q) allocs = %v, want %v", tt.line, r.AllocsPerOp, tt.allocs)
		}
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGatesAllocRegression(t *testing.T) {
	base := writeTemp(t, "base.txt", `
BenchmarkWireFrame-4  100  1000 ns/op  56 B/op  10 allocs/op
BenchmarkManagerOps-4  100  5000 ns/op  100 B/op  100 allocs/op
`)
	// WireFrame regresses 10 -> 20 allocs/op (+100%): must fail.
	headBad := writeTemp(t, "head-bad.txt", `
BenchmarkWireFrame-4  100  1000 ns/op  56 B/op  20 allocs/op
BenchmarkManagerOps-4  100  5000 ns/op  100 B/op  100 allocs/op
`)
	err := run([]string{"-base", base, "-head", headBad}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkWireFrame") {
		t.Fatalf("regression not gated: %v", err)
	}

	// Within threshold (+20%) and a brand-new benchmark: must pass.
	headOK := writeTemp(t, "head-ok.txt", `
BenchmarkWireFrame-4  100  1000 ns/op  56 B/op  12 allocs/op
BenchmarkManagerOps-4  100  5000 ns/op  100 B/op  100 allocs/op
BenchmarkBrandNew-4  100  10 ns/op  0 B/op  0 allocs/op
`)
	if err := run([]string{"-base", base, "-head", headOK}, os.Stdout); err != nil {
		t.Fatal(err)
	}

	// Averaging across repetitions: two runs of 10 and 14 average to 12,
	// within the 30% default against base 10.
	headAvg := writeTemp(t, "head-avg.txt", `
BenchmarkWireFrame-4  100  1000 ns/op  56 B/op  10 allocs/op
BenchmarkWireFrame-4  100  1000 ns/op  56 B/op  14 allocs/op
`)
	if err := run([]string{"-base", base, "-head", headAvg}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}
