// Command stdchk is the client CLI: store, retrieve, list, diff and
// manage checkpoint files in a stdchk pool. Each subcommand owns its
// flags; connection flags (-manager, -mux, -map-cache, -data-mux,
// -upload-window, -read-batch) are shared by all of them and come after
// the subcommand name.
//
// Usage:
//
//	stdchk write -manager host:9400 app.n1.t0 < image.ckpt
//	stdchk read -manager host:9400 app.n1 > image.ckpt
//	stdchk read -manager host:9400 -version 3 app.n1 > old.ckpt
//	stdchk read -manager host:9400 -as-of 2026-08-01T12:00:00Z app.n1
//	stdchk restore -manager host:9400 -baseline old.ckpt -baseline-version 3 app.n1 > image.ckpt
//	stdchk history -manager host:9400 app.n1
//	stdchk diff -manager host:9400 -from 3 -to 5 app.n1
//	stdchk ls -manager host:9400 [folder]
//	stdchk stat -manager host:9400 app.n1
//	stdchk rm -manager host:9400 app.n1
//	stdchk policy -manager host:9400 app replace
//	stdchk policy -manager host:9400 -keep-last 4 -keep-hourly 24 app
//	stdchk policy -manager host:9400 -dry-run [app]
//	stdchk benefactors -manager host:9400
//	stdchk stats -manager host:9400
//
// A comma-separated -manager list selects a federated metadata plane;
// every subcommand then routes dataset-scoped calls to the partition
// owner. "put" and "get" remain as aliases of write/read.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/federation"
	"stdchk/internal/metrics"
	"stdchk/internal/proto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stdchk:", err)
		os.Exit(1)
	}
}

const usage = "usage: stdchk <write|read|restore|history|diff|ls|stat|rm|policy|benefactors|stats> [flags] ..."

// connOpts are the connection flags every subcommand shares.
type connOpts struct {
	manager      *string
	mapCache     *bool
	mux          *int
	dataMux      *bool
	uploadWindow *int
	readBatch    *int
}

// connFlags registers the shared connection flags on a subcommand's
// FlagSet — one registrar, so a new connection knob cannot reach some
// subcommands and silently miss others.
func connFlags(fs *flag.FlagSet) *connOpts {
	return &connOpts{
		manager:      fs.String("manager", "127.0.0.1:9400", "manager address, or comma-separated federation member list"),
		mapCache:     fs.Bool("map-cache", true, "cache chunk-maps client-side: explicit-version re-opens need zero manager RPCs, latest opens one revalidation probe (false = full getMap per open, the ablation baseline)"),
		mux:          fs.Int("mux", 0, "share N session-multiplexed manager connections for metadata RPCs instead of pooling one serial conn per in-flight call (0 = serial pool; chunk traffic to benefactors is unaffected)"),
		dataMux:      fs.Bool("data-mux", false, "pipeline chunk traffic to benefactors over shared session-multiplexed connections: writes keep a window of in-flight puts per stripe node, reads batch the prefetch window into one request per replica (false = the historical one-blocking-call-per-chunk transport)"),
		uploadWindow: fs.Int("upload-window", 0, "with -data-mux: in-flight chunk puts per stripe node (0 = 8)"),
		readBatch:    fs.Int("read-batch", 0, "with -data-mux: chunk IDs per batched read request (0 = 16)"),
	}
}

// connect builds the client from a base config (write flags may have
// filled parts of it) plus the shared connection flags.
func (o *connOpts) connect(cfg client.Config) (*client.Client, error) {
	if !*o.mapCache {
		cfg.MapCacheEntries = -1
	}
	cfg.DataMux = *o.dataMux
	cfg.UploadWindow = *o.uploadWindow
	cfg.ReadBatch = *o.readBatch
	if members := federation.SplitMembers(*o.manager); len(members) > 1 {
		// A member list makes this client federation-aware: dataset-scoped
		// calls route to the partition owner, the rest fan out.
		r, err := federation.NewRouter(federation.RouterConfig{
			Members:        members,
			SharedConns:    *o.mux > 0,
			PerMemberConns: *o.mux,
		})
		if err != nil {
			return nil, err
		}
		cfg.Endpoint = r // the client owns and closes it
	} else {
		cfg.ManagerAddr = *o.manager
		cfg.SharedManagerConns = *o.mux
	}
	return client.New(cfg)
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("%s", usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "write", "put":
		return cmdWrite(rest)
	case "read", "get":
		return cmdRead(rest)
	case "restore":
		return cmdRestore(rest)
	case "history":
		return cmdHistory(rest)
	case "diff":
		return cmdDiff(rest)
	case "ls":
		return cmdLs(rest)
	case "stat":
		return cmdStat(rest)
	case "rm":
		return cmdRm(rest)
	case "policy":
		return cmdPolicy(rest)
	case "benefactors":
		return cmdBenefactors(rest)
	case "stats":
		return cmdStats(rest)
	default:
		return fmt.Errorf("unknown command %q\n%s", cmd, usage)
	}
}

func cmdWrite(args []string) error {
	fs := flag.NewFlagSet("stdchk write", flag.ContinueOnError)
	conn := connFlags(fs)
	var (
		width       = fs.Int("stripe", 0, "stripe width (0 = manager default)")
		replication = fs.Int("replication", 0, "replication target (0 = manager default)")
		pessimistic = fs.Bool("pessimistic", false, "wait for the replication target before write returns")
		incremental = fs.Bool("incremental", false, "enable compare-by-hash dedup against stored chunks")
		protocol    = fs.String("protocol", "sliding-window", "write protocol: sliding-window | incremental | complete-local")
		chunking    = fs.String("chunking", "fixed", "chunk boundaries: fixed | cbch (content-based, dedups shifted content)")
		writer      = fs.String("writer", "", "writer identity stamped on the committed version (shown in history)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: stdchk write [flags] <name> (reads stdin)")
	}
	cfg := client.Config{
		StripeWidth: *width,
		Replication: *replication,
		Incremental: *incremental,
		Writer:      *writer,
	}
	if *pessimistic {
		cfg.Semantics = core.WritePessimistic
	}
	switch *protocol {
	case "sliding-window":
		cfg.Protocol = client.SlidingWindow
	case "incremental":
		cfg.Protocol = client.IncrementalWrite
	case "complete-local":
		cfg.Protocol = client.CompleteLocalWrite
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	switch *chunking {
	case "fixed":
		cfg.Chunking = client.ChunkFixed
	case "cbch":
		cfg.Chunking = client.ChunkCbCH
	default:
		return fmt.Errorf("unknown chunking %q", *chunking)
	}
	cl, err := conn.connect(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()
	name := fs.Arg(0)
	w, err := cl.Create(name)
	if err != nil {
		return err
	}
	if _, err := io.Copy(w, os.Stdin); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := w.Wait(); err != nil {
		return err
	}
	m := w.Metrics()
	fmt.Fprintf(os.Stderr, "stored %s: %d bytes (%.1f MB/s OAB, %.1f MB/s ASB, %d deduped)\n",
		name, m.Bytes, m.OABMBps(), m.ASBMBps(), m.Deduped)
	return nil
}

// openOptions assembles the read-side version selector shared by read
// and restore from their flags.
func openOptions(version int64, asOf string) (client.OpenOptions, error) {
	var opt client.OpenOptions
	opt.Version = core.VersionID(version)
	if asOf != "" {
		t, err := time.Parse(time.RFC3339, asOf)
		if err != nil {
			return opt, fmt.Errorf("bad -as-of %q (want RFC3339): %w", asOf, err)
		}
		opt.AsOf = t
	}
	return opt, nil
}

func cmdRead(args []string) error {
	fs := flag.NewFlagSet("stdchk read", flag.ContinueOnError)
	conn := connFlags(fs)
	var (
		version = fs.Int64("version", 0, "open this committed version (0 = latest)")
		asOf    = fs.String("as-of", "", "open the newest version committed at or before this RFC3339 instant")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: stdchk read [flags] <name> (writes stdout)")
	}
	opt, err := openOptions(*version, *asOf)
	if err != nil {
		return err
	}
	cl, err := conn.connect(client.Config{})
	if err != nil {
		return err
	}
	defer cl.Close()
	r, err := cl.Open(fs.Arg(0), opt)
	if err != nil {
		return err
	}
	defer r.Close()
	_, err = io.Copy(os.Stdout, r)
	return err
}

func cmdRestore(args []string) error {
	fs := flag.NewFlagSet("stdchk restore", flag.ContinueOnError)
	conn := connFlags(fs)
	var (
		version  = fs.Int64("version", 0, "restore this committed version (0 = latest)")
		asOf     = fs.String("as-of", "", "restore the newest version committed at or before this RFC3339 instant")
		baseline = fs.String("baseline", "", "local file holding the baseline version's bytes (required)")
		baseVer  = fs.Int64("baseline-version", 0, "which committed version the baseline file holds (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *baseline == "" || *baseVer == 0 {
		return fmt.Errorf("usage: stdchk restore [flags] -baseline <file> -baseline-version <n> <name> (writes stdout)")
	}
	opt, err := openOptions(*version, *asOf)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		return err
	}
	opt.Baseline = core.VersionID(*baseVer)
	opt.BaselineData = data
	cl, err := conn.connect(client.Config{})
	if err != nil {
		return err
	}
	defer cl.Close()
	r, err := cl.Open(fs.Arg(0), opt)
	if err != nil {
		return err
	}
	defer r.Close()
	if _, err := io.Copy(os.Stdout, r); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "restored %s: %d bytes fetched, %d bytes reused from baseline v%d\n",
		r.Name(), r.BytesFetched(), r.BytesLocal(), *baseVer)
	return nil
}

func cmdHistory(args []string) error {
	fs := flag.NewFlagSet("stdchk history", flag.ContinueOnError)
	conn := connFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: stdchk history [flags] <name>")
	}
	cl, err := conn.connect(client.Config{})
	if err != nil {
		return err
	}
	defer cl.Close()
	hist, err := cl.History(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("dataset id %d (folder %s): %d versions\n", hist.Dataset, hist.Folder, len(hist.Versions))
	for _, v := range hist.Versions {
		writer := v.Writer
		if writer == "" {
			writer = "-"
		}
		fmt.Printf("  v%-4d %-28s %12d bytes  chunks=%-5d shared=%d (%d bytes)  new=%d  writer=%-12s %s\n",
			v.Version, v.Name, v.FileSize, v.Chunks, v.SharedChunks, v.SharedBytes,
			v.NewBytes, writer, v.CommittedAt.Format(time.RFC3339))
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("stdchk diff", flag.ContinueOnError)
	conn := connFlags(fs)
	var (
		from = fs.Int64("from", 0, "older version of the pair (required)")
		to   = fs.Int64("to", 0, "newer version of the pair (0 = latest)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 || *from == 0 {
		return fmt.Errorf("usage: stdchk diff [flags] -from <version> [-to <version>] <name>")
	}
	cl, err := conn.connect(client.Config{})
	if err != nil {
		return err
	}
	defer cl.Close()
	d, err := cl.Diff(fs.Arg(0), core.VersionID(*from), core.VersionID(*to))
	if err != nil {
		return err
	}
	fmt.Printf("diff v%d (%d bytes) -> v%d (%d bytes): %d changed bytes in %d ranges\n",
		d.From, d.FromSize, d.To, d.ToSize, d.DiffBytes, len(d.Ranges))
	for _, rg := range d.Ranges {
		fmt.Printf("  [%12d, %12d)  %d bytes\n", rg.Offset, rg.Offset+rg.Length, rg.Length)
	}
	return nil
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("stdchk ls", flag.ContinueOnError)
	conn := connFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	folder := ""
	if fs.NArg() > 0 {
		folder = fs.Arg(0)
	}
	cl, err := conn.connect(client.Config{})
	if err != nil {
		return err
	}
	defer cl.Close()
	infos, err := cl.List(folder)
	if err != nil {
		return err
	}
	for _, info := range infos {
		latest := "-"
		var size int64
		if n := len(info.Versions); n > 0 {
			latest = info.Versions[n-1].Name
			size = info.Versions[n-1].FileSize
		}
		fmt.Printf("%-32s versions=%d latest=%s (%d bytes)\n",
			info.Name, len(info.Versions), latest, size)
	}
	return nil
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stdchk stat", flag.ContinueOnError)
	conn := connFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: stdchk stat [flags] <name>")
	}
	cl, err := conn.connect(client.Config{})
	if err != nil {
		return err
	}
	defer cl.Close()
	info, err := cl.Stat(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s (folder %s, id %d)\n", info.Name, info.Folder, info.ID)
	for _, v := range info.Versions {
		fmt.Printf("  v%-4d %-28s %12d bytes  repl=%d  new=%d  %s\n",
			v.Version, v.Name, v.FileSize, v.Replication, v.StoredBytes,
			v.CreatedAt.Format(time.RFC3339))
	}
	return nil
}

func cmdRm(args []string) error {
	fs := flag.NewFlagSet("stdchk rm", flag.ContinueOnError)
	conn := connFlags(fs)
	version := fs.Int64("version", 0, "remove only this version (0 = whole dataset)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: stdchk rm [flags] <name>")
	}
	cl, err := conn.connect(client.Config{})
	if err != nil {
		return err
	}
	defer cl.Close()
	return cl.Delete(fs.Arg(0), core.VersionID(*version))
}

func cmdPolicy(args []string) error {
	fs := flag.NewFlagSet("stdchk policy", flag.ContinueOnError)
	conn := connFlags(fs)
	var (
		keepLast   = fs.Int("keep-last", 0, "retention: keep the N most recent versions (0 = no keep-last schedule)")
		keepHourly = fs.Int("keep-hourly", 0, "retention: keep the newest version of each of the last N distinct hours (0 = no keep-hourly schedule)")
		dryRun     = fs.Bool("dry-run", false, "audit: report which versions the next retention sweep would prune, per enforced folder, without mutating anything (folder argument optional; omit to audit every enforced folder)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl, err := conn.connect(client.Config{})
	if err != nil {
		return err
	}
	defer cl.Close()
	rest := fs.Args()
	retention := core.Retention{KeepLast: *keepLast, KeepHourly: *keepHourly}
	if *dryRun {
		if len(rest) > 1 || retention.Enabled() {
			return fmt.Errorf("usage: stdchk policy -dry-run [<folder>]")
		}
		folder := ""
		if len(rest) == 1 {
			folder = rest[0]
		}
		resp, err := cl.PolicyDryRun(folder)
		if err != nil {
			return err
		}
		if len(resp.Folders) == 0 {
			fmt.Println("no enforced folders: the next retention sweep would prune nothing")
			return nil
		}
		for _, f := range resp.Folders {
			fmt.Printf("folder %s: %s", f.Folder, f.Policy.Kind)
			if f.Policy.Kind == core.PolicyPurge {
				fmt.Printf(" after %v", f.Policy.PurgeAfter)
			}
			if f.Policy.Retention.KeepLast > 0 {
				fmt.Printf(" keep-last=%d", f.Policy.Retention.KeepLast)
			}
			if f.Policy.Retention.KeepHourly > 0 {
				fmt.Printf(" keep-hourly=%d", f.Policy.Retention.KeepHourly)
			}
			fmt.Printf(" — next sweep prunes %d version(s)\n", len(f.Victims))
			for _, v := range f.Victims {
				fmt.Printf("  would prune v%-4d %-28s %12d bytes  %s\n",
					v.Version, v.Name, v.FileSize, v.CommittedAt.Format(time.RFC3339))
			}
		}
		return nil
	}
	switch {
	case len(rest) == 1 && !retention.Enabled():
		// Display.
		folder := rest[0]
		p, err := cl.GetPolicy(folder)
		if err != nil {
			return err
		}
		fmt.Printf("folder %s: %s", folder, p.Kind)
		if p.Kind == core.PolicyPurge {
			fmt.Printf(" after %v", p.PurgeAfter)
		}
		if p.Retention.KeepLast > 0 {
			fmt.Printf(" keep-last=%d", p.Retention.KeepLast)
		}
		if p.Retention.KeepHourly > 0 {
			fmt.Printf(" keep-hourly=%d", p.Retention.KeepHourly)
		}
		fmt.Println()
		return nil
	case len(rest) >= 1 && len(rest) <= 3:
		folder := rest[0]
		// Start from the folder's current policy so setting a retention
		// schedule does not silently clear a purge interval or vice versa.
		p, err := cl.GetPolicy(folder)
		if err != nil {
			return err
		}
		if len(rest) >= 2 {
			kind, err := core.ParsePolicyKind(rest[1])
			if err != nil {
				return err
			}
			p.Kind = kind
			p.PurgeAfter = 0
			if kind == core.PolicyPurge {
				if len(rest) != 3 {
					return fmt.Errorf("usage: stdchk policy <folder> purge <interval>")
				}
				d, err := time.ParseDuration(rest[2])
				if err != nil {
					return err
				}
				p.PurgeAfter = d
			}
		}
		if retention.Enabled() || len(rest) == 1 {
			p.Retention = retention
		}
		return cl.SetPolicy(folder, p)
	default:
		return fmt.Errorf("usage: stdchk policy [-keep-last N] [-keep-hourly N] <folder> [none|replace|purge <interval>]")
	}
}

func cmdBenefactors(args []string) error {
	fs := flag.NewFlagSet("stdchk benefactors", flag.ContinueOnError)
	conn := connFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl, err := conn.connect(client.Config{})
	if err != nil {
		return err
	}
	defer cl.Close()
	infos, err := cl.Benefactors()
	if err != nil {
		return err
	}
	for _, b := range infos {
		state := string(b.State)
		if state == "" { // older manager: only the Online bool
			state = "offline"
			if b.Online {
				state = "online"
			}
		}
		fmt.Printf("%-24s %-22s %-8s free=%d reserved=%d chunks=%d\n",
			b.ID, b.Addr, state, b.Free, b.Reserved, b.ChunkHeld)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stdchk stats", flag.ContinueOnError)
	conn := connFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl, err := conn.connect(client.Config{})
	if err != nil {
		return err
	}
	defer cl.Close()
	s, err := cl.ManagerStats()
	if err != nil {
		return err
	}
	fmt.Printf("benefactors: %d (%d online, %d suspect, %d dead)\n",
		s.Benefactors, s.OnlineBenefactors, s.SuspectBenefactors, s.DeadBenefactors)
	fmt.Printf("datasets: %d, versions: %d, unique chunks: %d\n", s.Datasets, s.Versions, s.UniqueChunks)
	fmt.Printf("logical bytes: %d, stored bytes: %d\n", s.LogicalBytes, s.StoredBytes)
	fmt.Printf("active sessions: %d, transactions: %d\n", s.ActiveSessions, s.Transactions)
	fmt.Printf("dedup probes: %d rpcs / %d chunks, hits: %d\n", s.DedupBatches, s.DedupChunks, s.DedupHits)
	fmt.Printf("map fetches: %d, version revalidations: %d, hot-map cache: %d hits / %d misses / %d invalidations\n",
		s.GetMaps, s.StatVersions, s.MapCache.Hits, s.MapCache.Misses, s.MapCache.Invalidations)
	fmt.Printf("catalog queries: %d histories, %d diffs, %d prefetch batches\n",
		s.Histories, s.Diffs, s.PrefetchBatches)
	fmt.Printf("replicas copied: %d, chunks collected: %d, versions pruned: %d\n",
		s.ReplicasCopied, s.ChunksCollected, s.VersionsPruned)
	rp := s.Repair
	fmt.Printf("repair: %d pending (%d critical), %d bytes copied, %d failed copies\n",
		rp.Pending, rp.Critical, rp.CopiedBytes, rp.Failed)
	fmt.Printf("churn: %d locations reconciled on rejoin, %d decommissions, %d corrupt replicas scrubbed out\n",
		rp.Reconciled, rp.Decommissions, rp.CorruptReported)
	contended := 0.0
	if s.StripeOps > 0 {
		contended = 100 * float64(s.StripeContention) / float64(s.StripeOps)
	}
	fmt.Printf("metadata stripes: %d catalog / %d chunk / %d session, lock ops: %d (%.1f%% contended)\n",
		len(s.CatalogStripes), len(s.ChunkStripes), len(s.SessionStripes), s.StripeOps, contended)
	if s.JournalBatches > 0 || s.JournalReplayed > 0 || s.JournalErrors > 0 ||
		s.Snapshots > 0 || s.SnapshotSeq > 0 {
		amort := 0.0
		if s.JournalFsyncs > 0 {
			amort = float64(s.JournalBatchLen) / float64(s.JournalFsyncs)
		}
		fmt.Printf("journal: %d batches / %d records, %d fsyncs (%.1f records/fsync), %d errors\n",
			s.JournalBatches, s.JournalBatchLen, s.JournalFsyncs, amort, s.JournalErrors)
		fmt.Printf("recovery: %d entries replayed at start, %d snapshots taken, snapshot watermark %d\n",
			s.JournalReplayed, s.Snapshots, s.SnapshotSeq)
	}
	a := s.Admission
	bound := "unbounded"
	if a.MaxPending > 0 {
		bound = fmt.Sprintf("bound %d", a.MaxPending)
	}
	fmt.Printf("admission (%s): %d admitted, %d shed, %d conn-shed, queue depth %d (peak %d)\n",
		bound, a.Admitted, a.Shed, a.ConnShed, a.QueueDepth, a.PeakQueueDepth)
	if a.Shed > 0 || a.ConnShed > 0 {
		fmt.Printf("  shed callers were hinted to retry after %v\n",
			time.Duration(a.RetryAfterMicros)*time.Microsecond)
	}
	printLatency("alloc latency", s.AllocLatency)
	printLatency("commit latency", s.CommitLatency)
	return nil
}

// printLatency renders one of the manager's log2-bucket op histograms.
func printLatency(label string, ls proto.LatencyStats) {
	if ls.Count == 0 {
		return
	}
	mean := time.Duration(ls.SumMicros/ls.Count) * time.Microsecond
	fmt.Printf("%s: %d ops, mean %v, p50 %v, p99 %v, p999 %v\n",
		label, ls.Count, mean,
		metrics.Percentile(ls.Buckets, 0.50).Round(time.Microsecond),
		metrics.Percentile(ls.Buckets, 0.99).Round(time.Microsecond),
		metrics.Percentile(ls.Buckets, 0.999).Round(time.Microsecond))
}
