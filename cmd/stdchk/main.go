// Command stdchk is the client CLI: store, retrieve, list and manage
// checkpoint files in a stdchk pool.
//
// Usage:
//
//	stdchk -manager host:9400 put app.n1.t0 < image.ckpt
//	stdchk -manager host:9400 get app.n1.t0 > image.ckpt
//	stdchk -manager host0:9400,host1:9400 put app.n1.t0 < image.ckpt  # federated plane
//	stdchk -manager host:9400 ls [folder]
//	stdchk -manager host:9400 stat app.n1
//	stdchk -manager host:9400 rm app.n1
//	stdchk -manager host:9400 policy app replace
//	stdchk -manager host:9400 policy app purge 1h
//	stdchk -manager host:9400 benefactors
//	stdchk -manager host:9400 stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/federation"
	"stdchk/internal/metrics"
	"stdchk/internal/proto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stdchk:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stdchk", flag.ContinueOnError)
	var (
		mgr         = fs.String("manager", "127.0.0.1:9400", "manager address, or comma-separated federation member list")
		width       = fs.Int("stripe", 0, "stripe width (0 = manager default)")
		replication = fs.Int("replication", 0, "replication target (0 = manager default)")
		pessimistic = fs.Bool("pessimistic", false, "wait for the replication target before put returns")
		incremental = fs.Bool("incremental", false, "enable compare-by-hash dedup against stored chunks")
		protocol    = fs.String("protocol", "sliding-window", "write protocol: sliding-window | incremental | complete-local")
		chunking    = fs.String("chunking", "fixed", "chunk boundaries: fixed | cbch (content-based, dedups shifted content)")
		mapCache    = fs.Bool("map-cache", true, "cache chunk-maps client-side: explicit-version re-opens need zero manager RPCs, latest opens one revalidation probe (false = full getMap per open, the ablation baseline)")
		mux         = fs.Int("mux", 0, "share N session-multiplexed manager connections for metadata RPCs instead of pooling one serial conn per in-flight call (0 = serial pool; chunk traffic to benefactors is unaffected)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: stdchk [flags] put|get|ls|stat|rm|policy|benefactors|stats ...")
	}

	sem := core.WriteOptimistic
	if *pessimistic {
		sem = core.WritePessimistic
	}
	var proto client.Protocol
	switch *protocol {
	case "sliding-window":
		proto = client.SlidingWindow
	case "incremental":
		proto = client.IncrementalWrite
	case "complete-local":
		proto = client.CompleteLocalWrite
	default:
		return fmt.Errorf("unknown protocol %q", *protocol)
	}
	var mode client.ChunkingMode
	switch *chunking {
	case "fixed":
		mode = client.ChunkFixed
	case "cbch":
		mode = client.ChunkCbCH
	default:
		return fmt.Errorf("unknown chunking %q", *chunking)
	}
	cfg := client.Config{
		StripeWidth: *width,
		Replication: *replication,
		Semantics:   sem,
		Protocol:    proto,
		Chunking:    mode,
		Incremental: *incremental,
	}
	if !*mapCache {
		cfg.MapCacheEntries = -1
	}
	if members := federation.SplitMembers(*mgr); len(members) > 1 {
		// A member list makes this client federation-aware: dataset-scoped
		// calls route to the partition owner, the rest fan out.
		r, err := federation.NewRouter(federation.RouterConfig{
			Members:        members,
			SharedConns:    *mux > 0,
			PerMemberConns: *mux,
		})
		if err != nil {
			return err
		}
		cfg.Endpoint = r // the client owns and closes it
	} else {
		cfg.ManagerAddr = *mgr
		cfg.SharedManagerConns = *mux
	}
	cl, err := client.New(cfg)
	if err != nil {
		return err
	}
	defer cl.Close()

	switch cmd, rest := rest[0], rest[1:]; cmd {
	case "put":
		return cmdPut(cl, rest)
	case "get":
		return cmdGet(cl, rest)
	case "ls":
		return cmdLs(cl, rest)
	case "stat":
		return cmdStat(cl, rest)
	case "rm":
		return cmdRm(cl, rest)
	case "policy":
		return cmdPolicy(cl, rest)
	case "benefactors":
		return cmdBenefactors(cl)
	case "stats":
		return cmdStats(cl)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func cmdPut(cl *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: put <name> (reads stdin)")
	}
	w, err := cl.Create(args[0])
	if err != nil {
		return err
	}
	if _, err := io.Copy(w, os.Stdin); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := w.Wait(); err != nil {
		return err
	}
	m := w.Metrics()
	fmt.Fprintf(os.Stderr, "stored %s: %d bytes (%.1f MB/s OAB, %.1f MB/s ASB, %d deduped)\n",
		args[0], m.Bytes, m.OABMBps(), m.ASBMBps(), m.Deduped)
	return nil
}

func cmdGet(cl *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: get <name> (writes stdout)")
	}
	r, err := cl.Open(args[0])
	if err != nil {
		return err
	}
	defer r.Close()
	_, err = io.Copy(os.Stdout, r)
	return err
}

func cmdLs(cl *client.Client, args []string) error {
	folder := ""
	if len(args) > 0 {
		folder = args[0]
	}
	infos, err := cl.List(folder)
	if err != nil {
		return err
	}
	for _, info := range infos {
		latest := "-"
		var size int64
		if n := len(info.Versions); n > 0 {
			latest = info.Versions[n-1].Name
			size = info.Versions[n-1].FileSize
		}
		fmt.Printf("%-32s versions=%d latest=%s (%d bytes)\n",
			info.Name, len(info.Versions), latest, size)
	}
	return nil
}

func cmdStat(cl *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: stat <name>")
	}
	info, err := cl.Stat(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s (folder %s, id %d)\n", info.Name, info.Folder, info.ID)
	for _, v := range info.Versions {
		fmt.Printf("  v%-4d %-28s %12d bytes  repl=%d  new=%d  %s\n",
			v.Version, v.Name, v.FileSize, v.Replication, v.StoredBytes,
			v.CreatedAt.Format(time.RFC3339))
	}
	return nil
}

func cmdRm(cl *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rm <name>")
	}
	return cl.Delete(args[0], 0)
}

func cmdPolicy(cl *client.Client, args []string) error {
	switch len(args) {
	case 1:
		p, err := cl.GetPolicy(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("folder %s: %s", args[0], p.Kind)
		if p.Kind == core.PolicyPurge {
			fmt.Printf(" after %v", p.PurgeAfter)
		}
		fmt.Println()
		return nil
	case 2, 3:
		kind, err := core.ParsePolicyKind(args[1])
		if err != nil {
			return err
		}
		p := core.Policy{Kind: kind}
		if kind == core.PolicyPurge {
			if len(args) != 3 {
				return fmt.Errorf("usage: policy <folder> purge <interval>")
			}
			d, err := time.ParseDuration(args[2])
			if err != nil {
				return err
			}
			p.PurgeAfter = d
		}
		return cl.SetPolicy(args[0], p)
	default:
		return fmt.Errorf("usage: policy <folder> [none|replace|purge <interval>]")
	}
}

func cmdBenefactors(cl *client.Client) error {
	infos, err := cl.Benefactors()
	if err != nil {
		return err
	}
	for _, b := range infos {
		state := "offline"
		if b.Online {
			state = "online"
		}
		fmt.Printf("%-24s %-22s %-8s free=%d reserved=%d chunks=%d\n",
			b.ID, b.Addr, state, b.Free, b.Reserved, b.ChunkHeld)
	}
	return nil
}

func cmdStats(cl *client.Client) error {
	s, err := cl.ManagerStats()
	if err != nil {
		return err
	}
	fmt.Printf("benefactors: %d (%d online)\n", s.Benefactors, s.OnlineBenefactors)
	fmt.Printf("datasets: %d, versions: %d, unique chunks: %d\n", s.Datasets, s.Versions, s.UniqueChunks)
	fmt.Printf("logical bytes: %d, stored bytes: %d\n", s.LogicalBytes, s.StoredBytes)
	fmt.Printf("active sessions: %d, transactions: %d\n", s.ActiveSessions, s.Transactions)
	fmt.Printf("dedup probes: %d rpcs / %d chunks, hits: %d\n", s.DedupBatches, s.DedupChunks, s.DedupHits)
	fmt.Printf("map fetches: %d, version revalidations: %d, hot-map cache: %d hits / %d misses / %d invalidations\n",
		s.GetMaps, s.StatVersions, s.MapCache.Hits, s.MapCache.Misses, s.MapCache.Invalidations)
	fmt.Printf("replicas copied: %d, chunks collected: %d, versions pruned: %d\n",
		s.ReplicasCopied, s.ChunksCollected, s.VersionsPruned)
	contended := 0.0
	if s.StripeOps > 0 {
		contended = 100 * float64(s.StripeContention) / float64(s.StripeOps)
	}
	fmt.Printf("metadata stripes: %d catalog / %d chunk / %d session, lock ops: %d (%.1f%% contended)\n",
		len(s.CatalogStripes), len(s.ChunkStripes), len(s.SessionStripes), s.StripeOps, contended)
	if s.JournalBatches > 0 || s.JournalReplayed > 0 || s.JournalErrors > 0 ||
		s.Snapshots > 0 || s.SnapshotSeq > 0 {
		amort := 0.0
		if s.JournalFsyncs > 0 {
			amort = float64(s.JournalBatchLen) / float64(s.JournalFsyncs)
		}
		fmt.Printf("journal: %d batches / %d records, %d fsyncs (%.1f records/fsync), %d errors\n",
			s.JournalBatches, s.JournalBatchLen, s.JournalFsyncs, amort, s.JournalErrors)
		fmt.Printf("recovery: %d entries replayed at start, %d snapshots taken, snapshot watermark %d\n",
			s.JournalReplayed, s.Snapshots, s.SnapshotSeq)
	}
	a := s.Admission
	bound := "unbounded"
	if a.MaxPending > 0 {
		bound = fmt.Sprintf("bound %d", a.MaxPending)
	}
	fmt.Printf("admission (%s): %d admitted, %d shed, %d conn-shed, queue depth %d (peak %d)\n",
		bound, a.Admitted, a.Shed, a.ConnShed, a.QueueDepth, a.PeakQueueDepth)
	if a.Shed > 0 || a.ConnShed > 0 {
		fmt.Printf("  shed callers were hinted to retry after %v\n",
			time.Duration(a.RetryAfterMicros)*time.Microsecond)
	}
	printLatency("alloc latency", s.AllocLatency)
	printLatency("commit latency", s.CommitLatency)
	return nil
}

// printLatency renders one of the manager's log2-bucket op histograms.
func printLatency(label string, ls proto.LatencyStats) {
	if ls.Count == 0 {
		return
	}
	mean := time.Duration(ls.SumMicros/ls.Count) * time.Microsecond
	fmt.Printf("%s: %d ops, mean %v, p50 %v, p99 %v, p999 %v\n",
		label, ls.Count, mean,
		metrics.Percentile(ls.Buckets, 0.50).Round(time.Microsecond),
		metrics.Percentile(ls.Buckets, 0.99).Round(time.Microsecond),
		metrics.Percentile(ls.Buckets, 0.999).Round(time.Microsecond))
}
