// Command stdchk-manager runs the stdchk metadata manager: the soft-state
// benefactor registry, dataset catalog, replication scheduler, garbage
// collector and policy engine (paper §IV.A).
//
// Usage:
//
//	stdchk-manager -listen :9400
//	stdchk-manager -listen :9400 -journal /var/lib/stdchk/journal
//	stdchk-manager -listen :9400 -recover        # rebuild from benefactors
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stdchk/internal/manager"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stdchk-manager:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stdchk-manager", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:9400", "service address")
		heartbeat   = fs.Duration("heartbeat", 5*time.Second, "benefactor heartbeat interval")
		stripe      = fs.Int("stripe", 4, "default stripe width")
		replication = fs.Int("replication", 2, "default replication target")
		journal     = fs.String("journal", "", "metadata journal path (optional)")
		recover     = fs.Bool("recover", false, "start in recovery mode: rebuild metadata from benefactor-held chunk-map replicas")
		quiet       = fs.Bool("quiet", false, "suppress operational logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "", log.LstdFlags)
	}
	m, err := manager.New(manager.Config{
		ListenAddr:         *listen,
		HeartbeatInterval:  *heartbeat,
		DefaultStripeWidth: *stripe,
		DefaultReplication: *replication,
		JournalPath:        *journal,
		Recover:            *recover,
		WritePriority:      true,
		Logger:             logger,
	})
	if err != nil {
		return err
	}
	fmt.Printf("stdchk manager serving on %s\n", m.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return m.Close()
}
