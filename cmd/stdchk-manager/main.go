// Command stdchk-manager runs the stdchk metadata manager: the soft-state
// benefactor registry, dataset catalog, replication scheduler, garbage
// collector and policy engine (paper §IV.A).
//
// Usage:
//
//	stdchk-manager -listen :9400
//	stdchk-manager -listen :9400 -journal /var/lib/stdchk/journal
//	stdchk-manager -listen :9400 -recover        # rebuild from benefactors
//
// Federated metadata plane (one process per member, identical member
// lists, each with its own index):
//
//	stdchk-manager -listen host0:9400 -federation host0:9400,host1:9400 -member-index 0
//	stdchk-manager -listen host1:9400 -federation host0:9400,host1:9400 -member-index 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stdchk/internal/faultpoint"
	"stdchk/internal/federation"
	"stdchk/internal/manager"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stdchk-manager:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stdchk-manager", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:9400", "service address")
		heartbeat   = fs.Duration("heartbeat", 5*time.Second, "benefactor heartbeat interval")
		stripe      = fs.Int("stripe", 4, "default stripe width")
		replication = fs.Int("replication", 2, "default replication target")
		deadTimeout = fs.Duration("dead-timeout", 0, "heartbeat silence past which a suspect benefactor is declared dead and decommissioned — its chunk locations are dropped (journaled) and repair rebuilds from survivors (0 = 10x the node TTL, negative = never)")
		repairBytes = fs.Int64("repair-bytes-per-round", 0, "byte budget per replication-scheduler round, spent critical-band (single-replica chunks) first (0 = unbudgeted)")
		stripes     = fs.Int("metadata-stripes", 0, "metadata lock-stripe count (0 = default 16, 1 = single-lock baseline for ablations)")
		fed         = fs.String("federation", "", "comma-separated federation member addresses; this process serves the -member-index'th partition")
		memberIdx   = fs.Int("member-index", 0, "this manager's index in the -federation member list")
		journal     = fs.String("journal", "", "metadata journal path (optional)")
		syncJournal = fs.Bool("sync-journal", false, "journal synchronously inside the commit critical section (historical mode; default is the ordered async writer, which can lose a small acknowledged-but-unjournaled window on process crash)")
		fsyncJrnl   = fs.Bool("fsync-journal", false, "group-commit durability: every commit blocks until its journal batch is fsynced; concurrent commits share one fsync, so no acknowledged commit can be lost to a crash")
		snapEvery   = fs.Duration("snapshot-interval", 0, "write periodic catalog snapshots and truncate the journal behind them (0 = snapshots off; restart then replays the full journal)")
		mapCache    = fs.Bool("map-cache", true, "serve repeat getMaps from the hot-map cache (false = rebuild and re-sort locations per read, the ablation baseline)")
		recover     = fs.Bool("recover", false, "start in recovery mode: rebuild metadata from benefactor-held chunk-map replicas")
		maxPending  = fs.Int("max-pending", 0, "admission bound: max concurrently pending alloc/extend/commit ops before the manager sheds with a typed retry-after (0 = unbounded)")
		maxInflight = fs.Int("max-conn-inflight", 0, "per-connection budget for concurrently dispatched session-tagged frames; excess frames are shed with retry-after (0 = default)")
		retryAfter  = fs.Duration("retry-after", 0, "backoff hint carried in shed responses (0 = default 2ms)")
		quiet       = fs.Bool("quiet", false, "suppress operational logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	members := federation.SplitMembers(*fed)
	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "", log.LstdFlags)
	}
	mapCacheEntries := 0 // manager default
	if !*mapCache {
		mapCacheEntries = -1
	}
	// Fault-injection harness: STDCHK_FAULTPOINTS="manager.journal.fsync=crash"
	// arms named faults for recovery drills; unset, this is a no-op.
	if err := faultpoint.InitFromEnv(); err != nil {
		return err
	}
	m, err := manager.New(manager.Config{
		ListenAddr:          *listen,
		HeartbeatInterval:   *heartbeat,
		DefaultStripeWidth:  *stripe,
		DefaultReplication:  *replication,
		DeadTimeout:         *deadTimeout,
		RepairBytesPerRound: *repairBytes,
		MetadataStripes:     *stripes,
		MapCacheEntries:     mapCacheEntries,
		FederationMembers:   members,
		MemberIndex:         *memberIdx,
		JournalPath:         *journal,
		SyncJournal:         *syncJournal,
		FsyncJournal:        *fsyncJrnl,
		SnapshotInterval:    *snapEvery,
		Recover:             *recover,
		MaxPendingOps:       *maxPending,
		MaxConnInflight:     *maxInflight,
		RetryAfterHint:      *retryAfter,
		WritePriority:       true,
		Logger:              logger,
	})
	if err != nil {
		return err
	}
	if len(members) > 1 {
		fmt.Printf("stdchk manager serving on %s (federation member %d of %d)\n", m.Addr(), *memberIdx, len(members))
	} else {
		fmt.Printf("stdchk manager serving on %s\n", m.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return m.Close()
}
