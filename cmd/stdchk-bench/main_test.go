package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// table2 is pure trace generation: fast and deterministic.
	if err := run([]string{"-exp", "table2", "-scale", "256", "-runs", "1"}); err != nil {
		t.Fatal(err)
	}
}
