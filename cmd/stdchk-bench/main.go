// Command stdchk-bench regenerates the paper's evaluation: every table
// and figure of §V, driven against the real stdchk stack with
// paper-calibrated device models.
//
// Usage:
//
//	stdchk-bench -list
//	stdchk-bench -exp table1            # one experiment
//	stdchk-bench -exp all -scale 64     # the full evaluation
//	stdchk-bench -exp fig2 -scale 16 -runs 5
//
// Scale divides the paper's data sizes (64 : the 1 GB test file becomes
// 16 MB). Bandwidth calibrations are never scaled, so the shape of every
// result is preserved; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stdchk/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stdchk-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stdchk-bench", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment to run (see -list), or 'all'")
		scale     = fs.Int64("scale", 64, "divide paper data sizes by this factor")
		runs      = fs.Int("runs", 3, "repetitions per configuration")
		list      = fs.Bool("list", false, "list experiments and exit")
		ablations = fs.Bool("ablations", false, "run the design-choice ablation benches instead")
		jsonPath  = fs.String("json", "", "write machine-readable result records (JSON lines) to this file")
		mapCache  = fs.Bool("map-cache", true, "run cache-sensitive experiments (restartload) with chunk-map caching; false is the every-open-pays-a-getMap baseline")
		syncJrnl  = fs.Bool("sync-journal", false, "run journaled experiments with the historical synchronous journal writer instead of the ordered async one")
		fsyncJrnl = fs.Bool("fsync-journal", false, "run journaled experiments with group-commit fsync durability (managerload measures this variant side by side regardless)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.Name, r.Title)
		}
		for _, r := range experiments.Ablations() {
			fmt.Printf("%-8s %s\n", r.Name, r.Title)
		}
		return nil
	}
	cfg := experiments.Config{
		Scale: *scale, Runs: *runs, Out: os.Stdout,
		DisableMapCache: !*mapCache, SyncJournal: *syncJrnl, FsyncJournal: *fsyncJrnl,
	}
	if *jsonPath != "" {
		jf, err := os.Create(*jsonPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *jsonPath, err)
		}
		defer jf.Close()
		cfg.JSON = jf
	}

	runAll := func(runners []experiments.Runner) error {
		for _, r := range runners {
			fmt.Printf("=== %s: %s ===\n", r.Name, r.Title)
			start := time.Now()
			if err := r.Run(cfg); err != nil {
				return fmt.Errorf("%s: %w", r.Name, err)
			}
			fmt.Printf("(%s completed in %v)\n\n", r.Name, time.Since(start).Round(time.Millisecond))
		}
		return nil
	}
	if *ablations {
		return runAll(experiments.Ablations())
	}
	if *exp == "all" {
		return runAll(experiments.All())
	}
	r, ok := experiments.Find(*exp)
	if !ok {
		r, ok = experiments.FindAblation(*exp)
	}
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *exp)
	}
	fmt.Printf("=== %s: %s ===\n", r.Name, r.Title)
	return r.Run(cfg)
}
