// Command stdchk-benefactor runs a storage donor node: it contributes
// disk space to a stdchk pool, registers with the manager, serves chunk
// requests, executes replication copies, and garbage-collects orphaned
// chunks (paper §IV.A).
//
// Usage:
//
//	stdchk-benefactor -manager host:9400 -dir /scratch/stdchk -capacity 10737418240
//	stdchk-benefactor -manager host0:9400,host1:9400   # federated plane: register with every member
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stdchk/internal/benefactor"
	"stdchk/internal/core"
	"stdchk/internal/federation"
	"stdchk/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stdchk-benefactor:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stdchk-benefactor", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:0", "chunk service address")
		mgr      = fs.String("manager", "127.0.0.1:9400", "manager address, or comma-separated federation member list")
		dir      = fs.String("dir", "", "chunk directory (empty = in-memory)")
		capacity = fs.Int64("capacity", 0, "contributed bytes (0 = unlimited)")
		id       = fs.String("id", "", "node identity (default: listen address)")
		gcEvery  = fs.Duration("gc-interval", time.Minute, "garbage collection interval")
		gcGrace  = fs.Duration("gc-grace", 10*time.Minute, "age before a chunk becomes a GC candidate; keep above the longest write session")
		scrub    = fs.Duration("scrub-interval", 0, "background integrity scrub pace: each tick re-hashes a batch of stored chunks against their content addresses, quarantining and reporting corrupt replicas (0 = scrubbing off)")
		scrubN   = fs.Int("scrub-batch", 0, "chunks verified per scrub tick (0 = default 16)")
		quiet    = fs.Bool("quiet", false, "suppress operational logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "", log.LstdFlags)
	}
	cfg := benefactor.Config{
		ID:            core.NodeID(*id),
		ListenAddr:    *listen,
		ManagerAddrs:  federation.SplitMembers(*mgr),
		Capacity:      *capacity,
		GCInterval:    *gcEvery,
		GCGrace:       *gcGrace,
		ScrubInterval: *scrub,
		ScrubBatch:    *scrubN,
		Logger:        logger,
	}
	if *dir != "" {
		st, err := store.OpenDisk(*dir, *capacity, nil)
		if err != nil {
			return err
		}
		cfg.Store = st
	}
	b, err := benefactor.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("stdchk benefactor %s serving on %s (manager %s)\n", b.ID(), b.Addr(), *mgr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return b.Close()
}
