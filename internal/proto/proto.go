// Package proto defines the RPC surface of stdchk: operation names and
// request/response payloads for the manager service and the benefactor
// service. Both services speak the framed protocol of package wire; this
// package is pure data so every component can import it without cycles.
package proto

import (
	"time"

	"stdchk/internal/core"
)

// Benefactor service operations (served by internal/benefactor).
const (
	// BPut stores one chunk: meta PutReq, body = chunk bytes.
	BPut = "b.put"
	// BGet fetches one chunk: meta GetReq, response body = chunk bytes.
	BGet = "b.get"
	// BGetBatch fetches many chunks in one round trip: meta BatchGetReq,
	// response meta BatchGetResp with per-chunk sizes, response body = the
	// present chunks' bytes concatenated in request order. Absent or
	// unreadable chunks are reported per-slot (size -1), never as a
	// request-level error, so one dead chunk cannot fail a whole batch.
	BGetBatch = "b.getbatch"
	// BHas asks which of a set of chunks the benefactor holds.
	BHas = "b.has"
	// BDel deletes chunks (GC executor).
	BDel = "b.del"
	// BReplicate instructs the benefactor to push one of its chunks to
	// another benefactor (manager-driven background replication).
	BReplicate = "b.replicate"
	// BMapPut stores a chunk-map replica for manager-failure recovery.
	BMapPut = "b.mapput"
	// BMapList returns the stored chunk-map replicas.
	BMapList = "b.maplist"
	// BPing is a liveness probe.
	BPing = "b.ping"
	// BStats returns storage statistics.
	BStats = "b.stats"
)

// Manager service operations (served by internal/manager).
const (
	// MRegister announces a benefactor to the manager.
	MRegister = "m.register"
	// MHeartbeat refreshes a benefactor's soft state.
	MHeartbeat = "m.heartbeat"
	// MAlloc opens a write session: reserves space and allocates a stripe.
	MAlloc = "m.alloc"
	// MExtend grows a session's space reservation.
	MExtend = "m.extend"
	// MCommit atomically commits a session's chunk-map (session semantics).
	MCommit = "m.commit"
	// MAbort abandons a session, releasing reservations.
	MAbort = "m.abort"
	// MHasChunks asks which chunk hashes the system already stores
	// (incremental checkpointing dedup query).
	MHasChunks = "m.haschunks"
	// MGetMap fetches the chunk-map of a committed version.
	MGetMap = "m.getmap"
	// MGetMaps batch-fetches the latest chunk-maps of several datasets in
	// one round trip (cross-member map prefetch: a restart storm warms a
	// job's whole checkpoint set with one call per federation member).
	MGetMaps = "m.getmaps"
	// MHistory returns a dataset's version lineage: one entry per
	// committed version with identity, writer, sizes, and chunk sharing
	// against the predecessor (the catalog query plane's list operation).
	MHistory = "m.history"
	// MDiff computes the changed byte ranges between two committed
	// versions of a dataset from their chunk-maps (the catalog query
	// plane's compare operation; incremental restore's planning input).
	MDiff = "m.diff"
	// MStatVersion resolves a name to its committed version identity —
	// no location payload. It is the lightweight revalidation probe behind
	// the client's chunk-map cache: a "latest" open asks only "is my cached
	// map still the newest version?" instead of refetching the full map.
	MStatVersion = "m.statversion"
	// MList lists datasets, optionally restricted to a folder.
	MList = "m.list"
	// MStat describes one dataset.
	MStat = "m.stat"
	// MDelete removes a version or a whole dataset.
	MDelete = "m.delete"
	// MPolicySet sets a folder's data-lifetime policy.
	MPolicySet = "m.policyset"
	// MPolicyGet reads a folder's policy.
	MPolicyGet = "m.policyget"
	// MPolicyDryRun reports which versions the next retention sweep would
	// prune, per enforced folder, without mutating anything (the audit
	// companion to the background pruner).
	MPolicyDryRun = "m.policydryrun"
	// MGCReport reconciles a benefactor's chunk inventory; the response
	// lists chunks the benefactor may delete.
	MGCReport = "m.gcreport"
	// MBenefactors lists registered benefactors.
	MBenefactors = "m.benefactors"
	// MReplStatus reports the replication level of a dataset's latest
	// version (pessimistic writes poll it).
	MReplStatus = "m.replstatus"
	// MStats returns manager-wide statistics.
	MStats = "m.stats"
)

// PutReq accompanies a BPut body.
type PutReq struct {
	ID core.ChunkID `json:"id"`
}

// GetReq names the chunk for BGet.
type GetReq struct {
	ID core.ChunkID `json:"id"`
}

// BatchGetReq names the chunks for a BGetBatch, in response-body order.
type BatchGetReq struct {
	IDs []core.ChunkID `json:"ids"`
}

// BatchGetResp describes a BGetBatch body: Sizes is parallel to the
// request's IDs, with Sizes[i] the byte length of chunk i within the
// concatenated body, or -1 when the benefactor could not serve it (the
// caller retries those chunks against another replica).
type BatchGetResp struct {
	Sizes []int64 `json:"sizes"`
}

// HasReq asks about a batch of chunks (BHas / MHasChunks).
type HasReq struct {
	IDs []core.ChunkID `json:"ids"`
}

// HasResp answers HasReq; Present is parallel to IDs.
type HasResp struct {
	Present []bool `json:"present"`
}

// DelReq lists chunks to delete.
type DelReq struct {
	IDs []core.ChunkID `json:"ids"`
}

// ReplicateReq instructs a benefactor to copy a chunk to Target.
type ReplicateReq struct {
	ID     core.ChunkID `json:"id"`
	Target string       `json:"target"` // benefactor address
}

// MapPutReq stores a chunk-map replica on a benefactor keyed by file name.
type MapPutReq struct {
	Name string         `json:"name"`
	Map  *core.ChunkMap `json:"map"`
}

// NamedMap is one recovered chunk-map replica.
type NamedMap struct {
	Name string         `json:"name"`
	Map  *core.ChunkMap `json:"map"`
}

// MapListResp returns a benefactor's chunk-map replicas.
type MapListResp struct {
	Maps []NamedMap `json:"maps"`
}

// StatsResp reports a benefactor's storage statistics.
type StatsResp struct {
	Used     int64 `json:"used"`
	Capacity int64 `json:"capacity"`
	Chunks   int   `json:"chunks"`
	// ScrubbedChunks counts integrity-scrub verifications since start;
	// CorruptChunks the chunks the scrub quarantined.
	ScrubbedChunks int64 `json:"scrubbedChunks,omitempty"`
	CorruptChunks  int64 `json:"corruptChunks,omitempty"`
}

// MaxRegisterChunks bounds the chunk inventory a RegisterReq carries for
// rejoin reconciliation. Nodes holding more send the newest batch and
// leave the remainder to the GC protocol's inventory reports.
const MaxRegisterChunks = 65536

// RegisterReq announces a benefactor.
type RegisterReq struct {
	ID       core.NodeID `json:"id"`
	Addr     string      `json:"addr"`
	Capacity int64       `json:"capacity"`
	Free     int64       `json:"free"`
	// Chunks is the node's chunk inventory (at most MaxRegisterChunks),
	// carried so a re-registration reconciles in one RPC: the manager
	// re-adds the locations it still references and answers with the
	// garbage set, instead of re-replicating everything a flapped node
	// already holds.
	Chunks []core.ChunkID `json:"chunksHeld,omitempty"`
}

// RegisterResp configures the benefactor's soft-state refresh.
type RegisterResp struct {
	HeartbeatInterval time.Duration `json:"heartbeatInterval"`
	// Recovering signals that the manager restarted with empty metadata
	// and wants the benefactor's chunk-map replicas (paper §IV.A manager
	// failure handling).
	Recovering bool `json:"recovering,omitempty"`
	// Reconciled counts the RegisterReq.Chunks the manager still
	// references and re-adopted as live replica locations.
	Reconciled int `json:"reconciled,omitempty"`
	// Garbage lists the RegisterReq.Chunks the manager no longer
	// references; the node may delete them immediately. Empty while the
	// manager is recovering (its catalog is incomplete).
	Garbage []core.ChunkID `json:"garbage,omitempty"`
}

// HeartbeatReq refreshes soft state.
type HeartbeatReq struct {
	ID     core.NodeID `json:"id"`
	Free   int64       `json:"free"`
	Used   int64       `json:"used"`
	Chunks int         `json:"chunks"`
	// Corrupt lists chunks the node's integrity scrub quarantined since
	// the last acknowledged heartbeat. The manager drops these replica
	// locations and schedules critical-priority repair.
	Corrupt []core.ChunkID `json:"corrupt,omitempty"`
}

// HeartbeatResp may carry manager commands back to the benefactor.
type HeartbeatResp struct {
	OK bool `json:"ok"`
	// Recovering mirrors RegisterResp.Recovering for already-registered
	// benefactors.
	Recovering bool `json:"recovering,omitempty"`
}

// AllocReq opens a write session.
type AllocReq struct {
	// Name is the full file name (A.Ni.Tj convention when applicable).
	Name string `json:"name"`
	// PartitionEpoch is the caller's federation partition epoch (0 when
	// the caller is not federation-aware; federated members then skip the
	// epoch check but still enforce partition ownership of Name).
	PartitionEpoch uint64 `json:"partitionEpoch,omitempty"`
	// StripeWidth is the number of benefactors to stripe across.
	StripeWidth int `json:"stripeWidth"`
	// ChunkSize is the striping chunk size — in the variable (CbCH)
	// regime, the maximum span bound.
	ChunkSize int64 `json:"chunkSize"`
	// Variable marks a content-defined (variable-size) chunking session:
	// committed chunk sizes are free within (0, ChunkSize] and the
	// resulting chunk-map is flagged Variable.
	Variable bool `json:"variable,omitempty"`
	// ReserveBytes is the initial eager space reservation.
	ReserveBytes int64 `json:"reserveBytes"`
	// Replication is the user-defined replication target.
	Replication int `json:"replication"`
	// Writer optionally identifies the writing client (user@host, job id,
	// …). It is recorded on the committed version and surfaced by
	// MHistory; empty when the client declares no identity.
	Writer string `json:"writer,omitempty"`
}

// AllocResp returns the session handle and the stripe.
type AllocResp struct {
	WriteID uint64   `json:"writeId"`
	Stripe  []Stripe `json:"stripe"`
}

// Stripe names one benefactor of a write stripe.
type Stripe struct {
	ID   core.NodeID `json:"id"`
	Addr string      `json:"addr"`
}

// ExtendReq grows a session's reservation.
type ExtendReq struct {
	WriteID uint64 `json:"writeId"`
	Bytes   int64  `json:"bytes"`
}

// ExtendResp acknowledges the reservation.
type ExtendResp struct {
	Reserved int64 `json:"reserved"`
}

// CommitChunk is one chunk of a commit: location-less chunks are resolved
// from the manager's content index (copy-on-write sharing with earlier
// versions).
type CommitChunk struct {
	ID        core.ChunkID  `json:"id"`
	Size      int64         `json:"size"`
	Locations []core.NodeID `json:"locations,omitempty"`
}

// CommitReq atomically publishes a session's chunk-map.
type CommitReq struct {
	WriteID  uint64        `json:"writeId"`
	FileSize int64         `json:"fileSize"`
	Chunks   []CommitChunk `json:"chunks"`
}

// CommitResp reports the committed version.
type CommitResp struct {
	Dataset core.DatasetID `json:"dataset"`
	Version core.VersionID `json:"version"`
	// NewBytes is the number of bytes this version actually added to the
	// store (smaller than FileSize when chunks were shared).
	NewBytes int64 `json:"newBytes"`
}

// AbortReq abandons a session.
type AbortReq struct {
	WriteID uint64 `json:"writeId"`
}

// GetMapReq fetches a committed chunk-map. Version 0 means latest.
type GetMapReq struct {
	Name    string         `json:"name"`
	Version core.VersionID `json:"version,omitempty"`
	// AsOf, when set (and Version is 0), asks the manager to resolve the
	// newest version committed at or before this instant under the dataset
	// stripe — one round trip instead of a client-side MHistory walk. Old
	// servers ignore the field and resolve latest; the response's
	// AsOfResolved echo tells the client whether to fall back.
	AsOf time.Time `json:"asOf,omitempty"`
	// PartitionEpoch mirrors AllocReq.PartitionEpoch.
	PartitionEpoch uint64 `json:"partitionEpoch,omitempty"`
}

// GetMapResp carries the chunk-map.
type GetMapResp struct {
	Name string         `json:"name"`
	Map  *core.ChunkMap `json:"map"`
	// AsOfResolved confirms the server honored GetMapReq.AsOf. Absent in
	// replies from servers predating as-of resolution, which is the
	// client's signal to resolve via MHistory instead.
	AsOfResolved bool `json:"asOfResolved,omitempty"`
}

// GetMapsReq batch-fetches the latest chunk-maps of several datasets
// (MGetMaps). The request is best-effort: names not found, or not owned
// by the serving federation member, are silently omitted from the
// response — the caller falls back to per-name MGetMap for the rest.
type GetMapsReq struct {
	Names []string `json:"names"`
	// PartitionEpoch mirrors AllocReq.PartitionEpoch. Ownership of each
	// name is checked individually; non-owned names are skipped, not
	// errors, so a router can fan one batch per member without
	// partition-exact pre-splitting.
	PartitionEpoch uint64 `json:"partitionEpoch,omitempty"`
}

// GetMapsResp returns the resolved maps, at most one per requested name.
type GetMapsResp struct {
	Maps []NamedMap `json:"maps"`
}

// HistoryReq asks for a dataset's version lineage (MHistory). Name may
// be a dataset key or any full file name of the dataset.
type HistoryReq struct {
	Name string `json:"name"`
	// PartitionEpoch mirrors AllocReq.PartitionEpoch.
	PartitionEpoch uint64 `json:"partitionEpoch,omitempty"`
}

// VersionLineage is one committed version in a dataset's history,
// ordered oldest-first in HistoryResp. SharedChunks/SharedBytes measure
// copy-on-write sharing against the immediate predecessor version (both
// zero for the first version).
type VersionLineage struct {
	// Version is the catalog version id and Name the full file name
	// committed under it.
	Version core.VersionID `json:"version"`
	Name    string         `json:"name"`
	// FileSize is the logical byte size; NewBytes the bytes this version
	// actually added to the store (FileSize minus deduped bytes).
	FileSize int64 `json:"fileSize"`
	NewBytes int64 `json:"newBytes"`
	// Writer is the identity declared at alloc time ("" when none).
	Writer string `json:"writer,omitempty"`
	// CommittedAt is the manager-side commit timestamp.
	CommittedAt time.Time `json:"committedAt"`
	// Chunks is the version's chunk count; SharedChunks of those also
	// appear in the predecessor version, covering SharedBytes bytes.
	Chunks       int   `json:"chunks"`
	SharedChunks int   `json:"sharedChunks"`
	SharedBytes  int64 `json:"sharedBytes"`
}

// HistoryResp carries the lineage, oldest version first.
type HistoryResp struct {
	// Dataset is the catalog dataset id and Folder its policy folder.
	Dataset  core.DatasetID   `json:"dataset"`
	Folder   string           `json:"folder"`
	Versions []VersionLineage `json:"versions"`
}

// DiffReq asks for the changed byte ranges between versions From and To
// of one dataset (MDiff). Either may be 0 meaning the latest version;
// From and To may name the versions in either order.
type DiffReq struct {
	Name string         `json:"name"`
	From core.VersionID `json:"from,omitempty"`
	To   core.VersionID `json:"to,omitempty"`
	// PartitionEpoch mirrors AllocReq.PartitionEpoch.
	PartitionEpoch uint64 `json:"partitionEpoch,omitempty"`
}

// ByteRange is one half-open changed span [Offset, Offset+Length) in
// the To version's byte space.
type ByteRange struct {
	Offset int64 `json:"offset"`
	Length int64 `json:"length"`
}

// DiffResp reports the diff. Ranges are sorted, non-overlapping, and
// coalesced; a byte outside every range is guaranteed identical in both
// versions (same chunk hash covering the same offset). DiffBytes is the
// sum of range lengths — the exact byte budget of an incremental
// restore from From to To.
type DiffResp struct {
	// From and To are the resolved version ids (after latest-resolution).
	From core.VersionID `json:"from"`
	To   core.VersionID `json:"to"`
	// FromSize and ToSize are the logical sizes of the two versions.
	FromSize int64 `json:"fromSize"`
	ToSize   int64 `json:"toSize"`
	// Ranges lists the changed spans in To's byte space.
	Ranges []ByteRange `json:"ranges"`
	// DiffBytes is the total changed-byte count (sum over Ranges).
	DiffBytes int64 `json:"diffBytes"`
}

// StatVersionReq asks which committed version a name currently resolves
// to (MStatVersion). Resolution follows GetMapReq semantics: a dataset
// key resolves to the latest version, a full A.Ni.Tj name to that
// timestep's version.
type StatVersionReq struct {
	Name string `json:"name"`
	// AsOf mirrors GetMapReq.AsOf: resolve the newest version committed
	// at or before this instant instead of the latest.
	AsOf time.Time `json:"asOf,omitempty"`
	// PartitionEpoch mirrors AllocReq.PartitionEpoch.
	PartitionEpoch uint64 `json:"partitionEpoch,omitempty"`
}

// StatVersionResp carries the resolved version identity — deliberately no
// chunk or location payload, so the reply stays a few bytes regardless of
// file size.
type StatVersionResp struct {
	// Name is the resolved full file name (as GetMapResp.Name).
	Name    string         `json:"name"`
	Dataset core.DatasetID `json:"dataset"`
	Version core.VersionID `json:"version"`
	// AsOfResolved mirrors GetMapResp.AsOfResolved.
	AsOfResolved bool `json:"asOfResolved,omitempty"`
}

// ListReq lists datasets under a folder ("" = all).
type ListReq struct {
	Folder string `json:"folder,omitempty"`
}

// ListResp returns dataset summaries.
type ListResp struct {
	Datasets []core.DatasetInfo `json:"datasets"`
}

// StatReq describes one dataset by name (dataset key or full file name).
type StatReq struct {
	Name string `json:"name"`
	// PartitionEpoch mirrors AllocReq.PartitionEpoch.
	PartitionEpoch uint64 `json:"partitionEpoch,omitempty"`
}

// StatResp carries the dataset summary.
type StatResp struct {
	Dataset core.DatasetInfo `json:"dataset"`
}

// DeleteReq removes one version (Version != 0) or the whole dataset.
type DeleteReq struct {
	Name    string         `json:"name"`
	Version core.VersionID `json:"version,omitempty"`
	// PartitionEpoch mirrors AllocReq.PartitionEpoch.
	PartitionEpoch uint64 `json:"partitionEpoch,omitempty"`
}

// PolicySetReq attaches a policy to a folder.
type PolicySetReq struct {
	Folder string      `json:"folder"`
	Policy core.Policy `json:"policy"`
}

// PolicyGetReq reads a folder policy.
type PolicyGetReq struct {
	Folder string `json:"folder"`
}

// PolicyGetResp returns the folder policy.
type PolicyGetResp struct {
	Policy core.Policy `json:"policy"`
}

// PolicyDryRunReq asks what the next retention sweep would prune
// (MPolicyDryRun). Folder "" audits every enforced folder.
type PolicyDryRunReq struct {
	Folder string `json:"folder,omitempty"`
}

// PruneCandidate is one version a retention sweep would remove.
type PruneCandidate struct {
	Dataset     core.DatasetID `json:"dataset"`
	Name        string         `json:"name"` // full file name of the version
	Version     core.VersionID `json:"version"`
	FileSize    int64          `json:"fileSize"`
	CommittedAt time.Time      `json:"committedAt"`
}

// FolderDryRun reports one enforced folder's audit: the policy in force
// and the versions the next sweep would prune under it. A folder with an
// enforced policy but nothing to prune appears with empty Victims, so
// the audit also confirms what is safe.
type FolderDryRun struct {
	Folder  string           `json:"folder"`
	Policy  core.Policy      `json:"policy"`
	Victims []PruneCandidate `json:"victims,omitempty"`
}

// PolicyDryRunResp lists the audited folders, sorted by folder name.
type PolicyDryRunResp struct {
	Folders []FolderDryRun `json:"folders"`
}

// GCReportReq carries a benefactor's inventory of chunks old enough to be
// GC candidates.
type GCReportReq struct {
	ID  core.NodeID    `json:"id"`
	IDs []core.ChunkID `json:"ids"`
}

// GCReportResp lists the chunks the benefactor may delete.
type GCReportResp struct {
	Deletable []core.ChunkID `json:"deletable"`
}

// BenefactorsResp lists registered benefactors.
type BenefactorsResp struct {
	Benefactors []core.BenefactorInfo `json:"benefactors"`
}

// ReplStatusReq asks for the replication level of a dataset's latest
// version.
type ReplStatusReq struct {
	Name string `json:"name"`
	// PartitionEpoch mirrors AllocReq.PartitionEpoch.
	PartitionEpoch uint64 `json:"partitionEpoch,omitempty"`
}

// ReplStatusResp reports the level.
type ReplStatusResp struct {
	Version core.VersionID `json:"version"`
	Level   int            `json:"level"`
	Target  int            `json:"target"`
}

// ManagerStats aggregates manager-side counters (MStats).
type ManagerStats struct {
	Benefactors       int `json:"benefactors"`
	OnlineBenefactors int `json:"onlineBenefactors"`
	// SuspectBenefactors and DeadBenefactors split the not-online nodes by
	// lifecycle state: suspects missed heartbeats past the node TTL, dead
	// nodes stayed silent past the dead timeout and were decommissioned.
	SuspectBenefactors int   `json:"suspectBenefactors,omitempty"`
	DeadBenefactors    int   `json:"deadBenefactors,omitempty"`
	Datasets           int   `json:"datasets"`
	Versions           int   `json:"versions"`
	UniqueChunks       int   `json:"uniqueChunks"`
	LogicalBytes       int64 `json:"logicalBytes"`
	StoredBytes        int64 `json:"storedBytes"`
	ActiveSessions     int   `json:"activeSessions"`
	Transactions       int64 `json:"transactions"`
	// Extends counts MExtend RPCs: the writer extends its reservation by
	// as many quanta as a Write requires in one call, so this stays at
	// one per reservation jump regardless of how many quanta it spans.
	Extends int64 `json:"extends"`
	// DedupBatches counts MHasChunks RPCs and DedupChunks the chunk IDs
	// they carried; their ratio is the writer's dedup-probe batching
	// factor (one RPC per in-flight window of emitted chunks). DedupHits
	// counts the probes answered "already stored" — the manager-side
	// ground truth for chunks that incremental checkpointing kept off the
	// wire.
	DedupBatches int64 `json:"dedupBatches"`
	DedupChunks  int64 `json:"dedupChunks"`
	DedupHits    int64 `json:"dedupHits"`
	// GetMaps counts MGetMap RPCs and StatVersions the MStatVersion
	// revalidation probes. A warm client chunk-map cache shows up here
	// directly: explicit-version re-opens add to neither, "latest"
	// re-opens add one StatVersion and zero GetMaps.
	GetMaps      int64 `json:"getMaps"`
	StatVersions int64 `json:"statVersions"`
	// Histories and Diffs count the catalog query plane's MHistory and
	// MDiff RPCs; PrefetchBatches counts MGetMaps batch map fetches (the
	// cross-member prefetch that warms a restart storm's map caches).
	Histories       int64 `json:"histories,omitempty"`
	Diffs           int64 `json:"diffs,omitempty"`
	PrefetchBatches int64 `json:"prefetchBatches,omitempty"`
	// MapCache reports the manager-side hot-map cache in front of getMap
	// (memoized wire-ready location sets per dataset version).
	MapCache        MapCacheStats `json:"mapCache"`
	ReplicasCopied  int64         `json:"replicasCopied"`
	ChunksCollected int64         `json:"chunksCollected"`
	VersionsPruned  int64         `json:"versionsPruned"`
	// Repair reports the priority repair scheduler (liveness-deficit
	// bands, byte budget) and the scrub-driven corruption healing loop.
	Repair RepairStats `json:"repair"`
	// Journal* report the metadata journal's durability pipeline.
	// JournalBatches counts flush batches reaching the file and
	// JournalBatchLen the entries they carried — their ratio is the
	// group-commit amortization (entries per flush/fsync). JournalFsyncs
	// counts fsync syscalls; JournalErrors counts write/flush/fsync
	// failures (the first also sticks: later commits fail fast and the
	// manager's Close returns it).
	JournalBatches  int64 `json:"journalBatches,omitempty"`
	JournalBatchLen int64 `json:"journalBatchLen,omitempty"`
	JournalFsyncs   int64 `json:"journalFsyncs,omitempty"`
	JournalErrors   int64 `json:"journalErrors,omitempty"`
	// JournalReplayed counts journal entries replayed at startup (past any
	// snapshot's watermark); Snapshots counts catalog snapshots taken since
	// start and SnapshotSeq the newest snapshot's ticket watermark.
	JournalReplayed int64 `json:"journalReplayed,omitempty"`
	Snapshots       int64 `json:"snapshots,omitempty"`
	SnapshotSeq     int64 `json:"snapshotSeq,omitempty"`
	// CatalogStripes, ChunkStripes and SessionStripes report per-stripe
	// lock-acquisition counters for the manager's striped metadata plane
	// (dataset catalog, content-addressed chunk index, session table).
	// StripeOps and StripeContention aggregate them plus the registry's
	// node-table lock: their ratio is the fraction of metadata lock
	// acquisitions that found the lock held — the direct measure of §V.E
	// metadata-plane serialization.
	CatalogStripes []StripeStats `json:"catalogStripes,omitempty"`
	ChunkStripes   []StripeStats `json:"chunkStripes,omitempty"`
	SessionStripes []StripeStats `json:"sessionStripes,omitempty"`
	// Registry reports the benefactor registry's lock-acquisition and
	// per-op counters: like the stripes above, its Ops/Contended ratio
	// measures how often registry traffic (alloc round-robin, extends,
	// releases, heartbeats) found the node table held.
	Registry         RegistryStats `json:"registry"`
	StripeOps        int64         `json:"stripeOps"`
	StripeContention int64         `json:"stripeContention"`
	// Federation identifies this manager's place in a federated
	// deployment; nil on a standalone manager.
	Federation *FederationInfo `json:"federation,omitempty"`
	// Admission reports the manager's load-shedding plane: pending-op
	// bounds, queue depths, and how many requests were admitted vs shed.
	Admission AdmissionStats `json:"admission"`
	// AllocLatency and CommitLatency are server-side service-time
	// histograms for the two metadata ops that dominate a checkpoint's
	// critical path (session open and commit publish).
	AllocLatency  LatencyStats `json:"allocLatency"`
	CommitLatency LatencyStats `json:"commitLatency"`
}

// AdmissionStats reports manager-side admission control: the global
// pending-op queue (alloc/extend/commit), its high-water mark, and shed
// counts. Shed is requests rejected at the global gate with a typed
// retry-after; ConnShed is frames rejected earlier still, at a
// connection's inflight budget, before the dispatcher ever saw them.
type AdmissionStats struct {
	// MaxPending is the configured global pending-op bound (0 =
	// unbounded: depth is tracked but nothing is shed).
	MaxPending int `json:"maxPending,omitempty"`
	// QueueDepth is the instantaneous count of admitted, unfinished ops.
	QueueDepth int64 `json:"queueDepth"`
	// PeakQueueDepth is the high-water mark of QueueDepth since start —
	// under a working admission gate it never exceeds MaxPending.
	PeakQueueDepth int64 `json:"peakQueueDepth"`
	// Admitted and Shed partition gated requests: every gated request
	// either entered the queue or was rejected with retry-after.
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	// ConnShed counts session-tagged frames shed at a connection's
	// inflight bound by the wire server's overload hook.
	ConnShed int64 `json:"connShed"`
	// RetryAfterMicros is the configured backoff hint handed to shed
	// callers, in microseconds.
	RetryAfterMicros int64 `json:"retryAfterMicros,omitempty"`
}

// LatencyStats is the wire form of a latency histogram: log2-spaced
// microsecond buckets (bucket i counts observations in [2^i, 2^(i+1))
// µs) plus count and sum for the mean. Percentiles are derived
// client-side; merging across federation members is element-wise
// addition.
type LatencyStats struct {
	Count     int64   `json:"count"`
	SumMicros int64   `json:"sumMicros"`
	Buckets   []int64 `json:"buckets,omitempty"`
}

// MapCacheStats reports a chunk-map cache's effectiveness: Hits served
// without rebuilding (manager) or refetching (client) the map, Misses
// that paid the full path, and Invalidations from commits, deletes and
// replica death.
type MapCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
}

// StripeStats reports one metadata lock stripe's acquisition counts.
type StripeStats struct {
	// Ops counts lock acquisitions (read or write) on the stripe.
	Ops int64 `json:"ops"`
	// Contended counts acquisitions that found the stripe already held.
	Contended int64 `json:"contended"`
}

// RegistryStats reports the benefactor registry's node-table lock
// acquisition counts plus per-operation counters.
type RegistryStats struct {
	// Ops / Contended count node-table lock acquisitions, as StripeStats
	// does for the metadata stripes.
	Ops       int64 `json:"ops"`
	Contended int64 `json:"contended"`
	// Allocs counts round-robin stripe allocations, Reserves the
	// reservation growths (MExtend), Releases the reservation returns
	// (commit/abort/expiry), and Heartbeats the soft-state refreshes.
	Allocs     int64 `json:"allocs"`
	Reserves   int64 `json:"reserves"`
	Releases   int64 `json:"releases"`
	Heartbeats int64 `json:"heartbeats"`
}

// RepairStats reports the manager's priority repair plane. Pending and
// Critical are gauges sampled at the last scheduler round: the number of
// under-replicated chunks the round saw, and how many of those were down
// to a single live replica (the critical band, repaired first). The rest
// are cumulative counters since start.
type RepairStats struct {
	// Pending is the under-replicated job count at the last round (after
	// the per-band round caps); Critical the 1-live-replica subset.
	Pending  int64 `json:"pending"`
	Critical int64 `json:"critical"`
	// CopiedBytes accumulates the bytes of successfully created repair
	// replicas; Failed counts jobs whose copy failed against every live
	// source in a round (retried next round).
	CopiedBytes int64 `json:"copiedBytes"`
	Failed      int64 `json:"failed"`
	// CorruptReported counts corrupt chunk locations dropped on benefactor
	// scrub reports; Reconciled counts replica locations re-adopted from
	// re-registration inventories (flap healing without re-replication).
	CorruptReported int64 `json:"corruptReported"`
	Reconciled      int64 `json:"reconciled"`
	// Decommissions counts nodes declared dead and decommissioned.
	Decommissions int64 `json:"decommissions"`
}

// FederationInfo describes a manager's membership in a federated
// metadata plane: the static member list, this member's index, and the
// partition epoch (a fingerprint of the member list; routers and members
// must agree on it for partition routing to be trusted).
type FederationInfo struct {
	Members     []string `json:"members"`
	MemberIndex int      `json:"memberIndex"`
	Epoch       uint64   `json:"epoch"`
}
