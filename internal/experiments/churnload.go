package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/grid"
	"stdchk/internal/manager"
)

// ChurnLoad drives the node-lifecycle and repair machinery with the
// churn a desktop grid actually produces (paper §III: donated desktops
// leave — reboots, shutdowns, withdrawals — and the system must mask it).
// A disk-backed cluster of 6 donors holds a mixed dataset population —
// replication-2 and replication-3 files — so that a single death creates
// both repair bands at once: the dead donor's repl-2 chunks drop to one
// live replica (critical), its repl-3 chunks to two (bulk).
//
// Three churn events per cycle, each gated on zero loss (every dataset
// restored byte-identical against its written image while the failure is
// still in effect):
//
//   - flap: a donor dies and restarts disk-intact within the node TTL.
//     Rejoin reconciliation (the registration inventory) must re-adopt
//     its replicas — the heal is metadata-only.
//   - death: a donor dies for good. Repair re-replicates from survivors
//     under the per-round byte budget; the timeline of on-demand
//     under-replication scans must show the critical band draining to
//     zero while bulk repairs are still outstanding (priority proof),
//     and past DeadTimeout the manager must decommission the node.
//   - rejoin: the dead donor returns disk-intact. Heartbeats from a
//     decommissioned node are rejected, so it must heal through
//     re-registration, bringing the pool back to full strength for the
//     next cycle.
//
// Config.Runs sets the number of death+rejoin cycles (the time-to-repair
// distribution); Config.Scale has no effect — the shape is fixed so the
// band arithmetic (budget rounds per band) is preserved.
func ChurnLoad(cfg Config) error {
	cfg = cfg.withDefaults()
	const (
		donors      = 6
		chunkSize   = 128 << 10
		fileSize    = 2 << 20 // 16 chunks per file
		repl2Files  = 3
		repl3Files  = 2
		hbInterval  = 50 * time.Millisecond
		nodeTTL     = 400 * time.Millisecond
		deadTimeout = 1200 * time.Millisecond
		replPeriod  = 80 * time.Millisecond
		byteBudget  = 512 << 10 // 4 chunks/round: several rounds per band
		pollEvery   = 10 * time.Millisecond
		healWait    = 30 * time.Second
	)

	type cell struct {
		Experiment      string  `json:"experiment"`
		Phase           string  `json:"phase"` // "flap" | "death" | "rejoin"
		Run             int     `json:"run"`
		Donor           string  `json:"donor"`
		CriticalClearMs float64 `json:"criticalClearMs"` // kill -> critical band empty
		RepairedMs      float64 `json:"repairedMs"`      // kill -> all chunks at target
		CopiedBytes     int64   `json:"copiedBytes"`
		Failed          int64   `json:"failed"`
		Reconciled      int64   `json:"reconciled"`
		Decommissions   int64   `json:"decommissions"`
		ZeroLoss        bool    `json:"zeroLoss"`
	}

	dir, err := os.MkdirTemp("", "stdchk-churnload")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	c, err := grid.Start(grid.Options{
		Benefactors:       donors,
		BenefactorProfile: device.Unshaped(),
		DiskBacked:        true,
		DiskDir:           dir,
		Manager: manager.Config{
			HeartbeatInterval:   hbInterval,
			NodeTTL:             nodeTTL,
			DeadTimeout:         deadTimeout,
			ReplicationInterval: replPeriod,
			RepairBytesPerRound: byteBudget,
		},
		GCGrace:    time.Hour, // churn must not be mistaken for garbage
		GCInterval: time.Hour,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	// Stage the population: unique pseudo-random images so no two chunks
	// dedup into one stored replica, split across two replication targets.
	type dataset struct {
		name string
		data []byte
	}
	var sets []dataset
	stage := func(repl, count, base int) error {
		cl, _, err := c.NewClient(client.Config{
			StripeWidth: 4, ChunkSize: chunkSize, Replication: repl,
			Semantics: core.WriteOptimistic,
		}, device.Unshaped())
		if err != nil {
			return err
		}
		defer cl.Close()
		for i := 0; i < count; i++ {
			name := fmt.Sprintf("churn-r%d-%d.n1.t0", repl, i)
			data := readloadImage(uint64(base+i)*0x9E3779B97F4A7C15+5, fileSize)
			w, err := cl.Create(name)
			if err == nil {
				if _, err = w.Write(data); err == nil {
					if err = w.Close(); err == nil {
						err = w.Wait()
					}
				}
			}
			if err != nil {
				return fmt.Errorf("churnload: stage %s: %w", name, err)
			}
			sets = append(sets, dataset{name: name, data: data})
		}
		return nil
	}
	if err := stage(2, repl2Files, 0); err != nil {
		return err
	}
	if err := stage(3, repl3Files, 100); err != nil {
		return err
	}

	// awaitHealed polls the on-demand under-replication scan until every
	// chunk is back at target, recording when the critical band cleared.
	// With expectDamage it first waits for the failure to become visible
	// (the TTL sweep must mark the victim suspect before its replicas stop
	// counting as live) — otherwise a scan taken in that window reads as
	// already-healed.
	awaitHealed := func(since time.Time, expectDamage bool) (criticalClear, repaired float64, sawSplit bool, err error) {
		deadline := time.Now().Add(healWait)
		for expectDamage {
			if crit, bulk := c.Manager.UnderReplicated(); crit+bulk > 0 {
				break
			}
			if time.Now().After(deadline) {
				return 0, 0, false, fmt.Errorf("churnload: failure never became visible to the repair scan in %v", healWait)
			}
			time.Sleep(pollEvery)
		}
		sawCritical := false
		for {
			crit, bulk := c.Manager.UnderReplicated()
			now := time.Since(since)
			if crit > 0 {
				sawCritical = true
			}
			if crit == 0 && bulk > 0 && sawCritical && criticalClear == 0 {
				criticalClear = float64(now.Microseconds()) / 1000
				sawSplit = true
			}
			if crit == 0 && bulk == 0 {
				if criticalClear == 0 {
					criticalClear = float64(now.Microseconds()) / 1000
				}
				return criticalClear, float64(now.Microseconds()) / 1000, sawSplit, nil
			}
			if time.Now().After(deadline) {
				return 0, 0, false, fmt.Errorf("churnload: repair did not converge in %v (critical=%d bulk=%d)", healWait, crit, bulk)
			}
			time.Sleep(pollEvery)
		}
	}
	if _, _, _, err := awaitHealed(time.Now(), false); err != nil {
		return fmt.Errorf("churnload: staging never reached replication targets: %w", err)
	}

	// verifyAll restores every dataset through a fresh client (fresh
	// address cache: flapped donors listen on new ports) and compares
	// byte-for-byte — the zero-loss gate.
	verifyAll := func() error {
		cl, _, err := c.NewClient(client.Config{ChunkSize: chunkSize}, device.Unshaped())
		if err != nil {
			return err
		}
		defer cl.Close()
		for _, ds := range sets {
			r, err := cl.Open(ds.name)
			if err != nil {
				return fmt.Errorf("churnload: open %s: %w", ds.name, err)
			}
			got, err := r.ReadAll()
			r.Close()
			if err != nil {
				return fmt.Errorf("churnload: read %s: %w", ds.name, err)
			}
			if !bytes.Equal(got, ds.data) {
				return fmt.Errorf("churnload: %s restored with wrong bytes (DATA LOSS)", ds.name)
			}
		}
		return nil
	}

	fmt.Fprintf(cfg.Out, "Churn: %d disk-backed donors, %d repl-2 + %d repl-3 files (%d KB chunks), TTL %v, dead %v, budget %d KB/round\n",
		donors, repl2Files, repl3Files, chunkSize>>10, nodeTTL, deadTimeout, byteBudget>>10)
	fmt.Fprintf(cfg.Out, "%-8s %-4s %-9s %14s %12s %12s %10s %9s\n",
		"phase", "run", "donor", "critClear(ms)", "repaired(ms)", "copied(B)", "reconciled", "zeroLoss")

	var cells []cell
	repairBefore := func() (int64, int64, int64, int64) {
		s := c.Manager.Stats().Repair
		return s.CopiedBytes, s.Failed, s.Reconciled, s.Decommissions
	}
	emit := func(cl cell) {
		cells = append(cells, cl)
		fmt.Fprintf(cfg.Out, "%-8s %-4d %-9s %14.1f %12.1f %12d %10d %9v\n",
			cl.Phase, cl.Run, cl.Donor, cl.CriticalClearMs, cl.RepairedMs, cl.CopiedBytes, cl.Reconciled, cl.ZeroLoss)
	}

	// --- flap: kill + disk-intact restart inside the TTL ---------------
	flapDonor := 0
	copied0, _, rec0, _ := repairBefore()
	if err := c.StopBenefactor(flapDonor); err != nil {
		return err
	}
	killT := time.Now()
	if _, err := c.RestartBenefactor(flapDonor); err != nil {
		return err
	}
	// The rejoin is complete once the registration's inventory reconciled.
	for deadline := time.Now().Add(healWait); ; {
		if _, _, rec, _ := repairBefore(); rec > rec0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("churnload: flap rejoin never reconciled")
		}
		time.Sleep(pollEvery)
	}
	if err := c.AwaitOnline(donors, healWait); err != nil {
		return err
	}
	if _, _, _, err := awaitHealed(killT, false); err != nil {
		return err
	}
	if err := verifyAll(); err != nil {
		return err
	}
	copied1, _, rec1, _ := repairBefore()
	emit(cell{
		Experiment: "churnload", Phase: "flap", Run: 0, Donor: "benef-0",
		RepairedMs:  float64(time.Since(killT).Microseconds()) / 1000,
		CopiedBytes: copied1 - copied0, Reconciled: rec1 - rec0, ZeroLoss: true,
	})

	// --- death + rejoin cycles -----------------------------------------
	for run := 0; run < cfg.Runs; run++ {
		victim := 1 + run%(donors-1) // spare donor 0, vary the victim
		donor := fmt.Sprintf("benef-%d", victim)
		copied0, failed0, rec0, dec0 := repairBefore()

		if err := c.StopBenefactor(victim); err != nil {
			return err
		}
		killT := time.Now()
		critMs, repMs, sawSplit, err := awaitHealed(killT, true)
		if err != nil {
			return err
		}
		if !sawSplit {
			return fmt.Errorf("churnload: run %d: never observed critical band empty while bulk repairs outstanding — priority repair did not engage", run)
		}
		if critMs > repMs {
			return fmt.Errorf("churnload: run %d: critical band cleared at %.1f ms, after full repair at %.1f ms", run, critMs, repMs)
		}
		// Wait out the dead timeout: the silent donor must be declared
		// dead and decommissioned, not linger as a suspect forever.
		for deadline := time.Now().Add(healWait); ; {
			if _, _, _, dec := repairBefore(); dec > dec0 {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("churnload: run %d: %s never decommissioned past DeadTimeout", run, donor)
			}
			time.Sleep(pollEvery)
		}
		// Zero-loss while the donor is still dead: all data must restore
		// from the survivors alone.
		if err := verifyAll(); err != nil {
			return fmt.Errorf("churnload: run %d death: %w", run, err)
		}
		copied1, failed1, _, dec1 := repairBefore()
		if copied1 == copied0 {
			return fmt.Errorf("churnload: run %d: death repaired with zero copied bytes", run)
		}
		emit(cell{
			Experiment: "churnload", Phase: "death", Run: run, Donor: donor,
			CriticalClearMs: critMs, RepairedMs: repMs,
			CopiedBytes: copied1 - copied0, Failed: failed1 - failed0,
			Decommissions: dec1 - dec0, ZeroLoss: true,
		})

		// Rejoin: the decommissioned donor returns with its disk intact.
		_, _, rec0, _ = repairBefore()
		if _, err := c.RestartBenefactor(victim); err != nil {
			return err
		}
		rejoinT := time.Now()
		if err := c.AwaitOnline(donors, healWait); err != nil {
			return fmt.Errorf("churnload: run %d: dead donor %s could not rejoin: %w", run, donor, err)
		}
		if _, _, _, err := awaitHealed(rejoinT, false); err != nil {
			return err
		}
		if err := verifyAll(); err != nil {
			return fmt.Errorf("churnload: run %d rejoin: %w", run, err)
		}
		_, _, rec1, _ := repairBefore()
		emit(cell{
			Experiment: "churnload", Phase: "rejoin", Run: run, Donor: donor,
			RepairedMs: float64(time.Since(rejoinT).Microseconds()) / 1000,
			Reconciled: rec1 - rec0, ZeroLoss: true,
		})
	}

	fmt.Fprintf(cfg.Out, "flap heals by inventory reconciliation (no copies); death repairs critical-first under the byte budget, then decommissions; rejoin re-adopts surviving replicas\n")
	fmt.Fprintf(cfg.Out, "paper: §IV.A data replication + soft-state registration mask donation churn; every restore above was byte-identical\n\n")

	if cfg.JSON != nil {
		enc := json.NewEncoder(cfg.JSON)
		for _, cl := range cells {
			if err := enc.Encode(cl); err != nil {
				return fmt.Errorf("churnload: json: %w", err)
			}
		}
	}
	return nil
}
