package experiments

import (
	"fmt"
	"sync"

	"stdchk/internal/client"
	"stdchk/internal/device"
	"stdchk/internal/fsiface"
	"stdchk/internal/metrics"
)

// protocolSweepResult holds Figures 2 and 3: OAB and ASB per protocol per
// stripe width, plus the width-independent baselines.
type protocolSweepResult struct {
	widths []int
	// oab[proto][width], asb[proto][width] in MB/s
	oab map[string]map[int]float64
	asb map[string]map[int]float64
	// baselines in MB/s
	local float64
	fuse  float64
	nfs   float64
}

var sweepMemo struct {
	mu  sync.Mutex
	key string
	res *protocolSweepResult
}

// runProtocolSweep measures CLW, IW and SW across stripe widths on a
// paper-calibrated cluster. Figures 2 and 3 share one sweep (memoized per
// config).
func runProtocolSweep(cfg Config) (*protocolSweepResult, error) {
	key := fmt.Sprintf("%d/%d", cfg.Scale, cfg.Runs)
	sweepMemo.mu.Lock()
	defer sweepMemo.mu.Unlock()
	if sweepMemo.key == key && sweepMemo.res != nil {
		return sweepMemo.res, nil
	}

	size := cfg.scaled(1 << 30)
	chunk := cfg.chunkSize()
	// Figure 2 uses modest staging (the buffer-size effect is swept
	// separately in Figures 4-5): 32 MB of window/temp per 1 GB file.
	buffer := cfg.scaled(32 << 20)
	temp := cfg.scaled(32 << 20)

	c, err := paperCluster(8, 0)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	res := &protocolSweepResult{
		widths: []int{1, 2, 4, 8},
		oab:    map[string]map[int]float64{},
		asb:    map[string]map[int]float64{},
	}
	protocols := []client.Protocol{
		client.CompleteLocalWrite,
		client.IncrementalWrite,
		client.SlidingWindow,
	}
	fileNo := 0
	for _, p := range protocols {
		label := p.String()
		res.oab[label] = map[int]float64{}
		res.asb[label] = map[int]float64{}
		for _, width := range res.widths {
			var oab, asb metrics.Summary
			for run := 0; run < cfg.Runs; run++ {
				cl, err := protoClient(c, p, width, chunk, buffer, temp, device.PaperNode())
				if err != nil {
					return nil, err
				}
				fileNo++
				name := fmt.Sprintf("sweep.n%d.t%d", fileNo, 0)
				m, err := writeOnce(cl, name, size, appBlock)
				if err != nil {
					cl.Close()
					return nil, fmt.Errorf("sweep %s width %d: %w", label, width, err)
				}
				oab.Add(m.OABMBps())
				asb.Add(m.ASBMBps())
				cl.Delete(name, 0)
				cl.Close()
			}
			c.CollectAll()
			res.oab[label][width] = oab.Mean()
			res.asb[label][width] = asb.Mean()
		}
	}

	// Width-independent baselines on the same calibration.
	res.local, res.fuse, res.nfs = runBaselines(size)

	sweepMemo.key = key
	sweepMemo.res = res
	return res, nil
}

// runBaselines measures the Local, FUSE and NFS write paths for the same
// file size.
func runBaselines(size int64) (local, fuse, nfs float64) {
	run := func(kind fsiface.BaselineKind) float64 {
		node := device.NewNode(device.PaperNode())
		b := fsiface.NewBaseline(kind, node, fsiface.NewNFSServer())
		buf := make([]byte, appBlock)
		for w := int64(0); w < size; w += int64(len(buf)) {
			n := int64(len(buf))
			if w+n > size {
				n = size - w
			}
			b.Write(buf[:n])
		}
		b.Close()
		return metrics.MBps(size, b.Duration())
	}
	return run(fsiface.BaselineLocal), run(fsiface.BaselineFuseLocal), run(fsiface.BaselineNFS)
}

// Fig2 regenerates the observed application bandwidth plot: SW and IW
// reach ~110 MB/s and saturate the client with two Gigabit benefactors;
// CLW tracks local FUSE writes; NFS trails far behind.
func Fig2(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := runProtocolSweep(cfg)
	if err != nil {
		return err
	}
	printSweep(cfg, res, "Figure 2: observed application bandwidth (OAB), MB/s", res.oab)
	return nil
}

// Fig3 regenerates the achieved storage bandwidth plot: CLW is worst
// (serialized local write then push), SW is best and saturates the client
// NIC at width 2.
func Fig3(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := runProtocolSweep(cfg)
	if err != nil {
		return err
	}
	printSweep(cfg, res, "Figure 3: achieved storage bandwidth (ASB), MB/s", res.asb)
	return nil
}

func printSweep(cfg Config, res *protocolSweepResult, title string, table map[string]map[int]float64) {
	fmt.Fprintf(cfg.Out, "%s (file %d MB scaled 1/%d, chunk %d KB, %d runs)\n",
		title, cfg.scaled(1<<30)>>20, cfg.Scale, cfg.chunkSize()>>10, cfg.Runs)
	fmt.Fprintf(cfg.Out, "%-16s", "stripe width")
	for _, w := range res.widths {
		fmt.Fprintf(cfg.Out, "%8d", w)
	}
	fmt.Fprintln(cfg.Out)
	for _, label := range []string{"complete-local", "incremental", "sliding-window"} {
		row, ok := table[label]
		if !ok {
			continue
		}
		fmt.Fprintf(cfg.Out, "%-16s", label)
		for _, w := range res.widths {
			fmt.Fprintf(cfg.Out, " %s", fmtMB(row[w]))
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintf(cfg.Out, "%-16s %s (width-independent)\n", "local I/O", fmtMB(res.local))
	fmt.Fprintf(cfg.Out, "%-16s %s (width-independent)\n", "FUSE", fmtMB(res.fuse))
	fmt.Fprintf(cfg.Out, "%-16s %s (width-independent)\n", "NFS", fmtMB(res.nfs))
	fmt.Fprintf(cfg.Out, "paper: SW/IW OAB ≈110 MB/s saturating at width 2; CLW ≈ FUSE-local; NFS 24.8 MB/s\n\n")
}
