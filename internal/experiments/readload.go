package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/grid"
	"stdchk/internal/manager"
)

// ReadLoad measures the restore data plane: MB/s to read one committed
// image back from the benefactor pool, serial versus pipelined, across
// chunk sizes. "Serial" is the historical stop-and-wait transport — one
// blocking BGet per chunk, the next request leaving only after the
// previous reply landed. "Pipelined" is the DataMux plane: a deep
// prefetch window whose chunks are grouped by preferred replica and
// fetched with batched BGetBatch requests over shared multiplexed
// connections.
//
// The reading client's link is modeled with a 1 ms per-request latency
// (device.Profile.LinkDelay: LAN propagation plus the era's protocol
// stack, the cost the paper's striped, pipelined transfers hide — §IV.E).
// The serial transport pays that latency once per chunk, so its restore
// bandwidth collapses as chunks shrink; the pipelined transport overlaps
// the charges across its window and amortizes them across each batch,
// which is the acceptance contrast: at 32 KB chunks the pipelined restore
// must run at least 2x the serial one, with byte-identical output (both
// restores are verified against the written image inside the experiment).
//
// The shape is fixed (Config.Scale has no effect): an 8 MB image striped
// over 4 benefactors, chunk sizes 32 KB / 256 KB / 1 MB; Config.Runs sets
// the repetitions averaged per cell. Everything runs over real loopback
// sockets.
func ReadLoad(cfg Config) error {
	cfg = cfg.withDefaults()
	const (
		imageSize   = 8 << 20
		benefactors = 4
		linkDelay   = time.Millisecond
		readBatch   = 16
	)
	chunkSizes := []int64{32 << 10, 256 << 10, 1 << 20}

	type cell struct {
		Experiment string  `json:"experiment"`
		ChunkKB    int64   `json:"chunkKB"`
		Mode       string  `json:"mode"` // "serial" | "pipelined"
		FileBytes  int64   `json:"fileBytes"`
		Fetched    int64   `json:"fetchedBytes"`
		Batched    int64   `json:"batchedBytes"`
		RestoreMs  float64 `json:"restoreMs"`
		MBps       float64 `json:"mbps"`
	}

	c, err := grid.Start(grid.Options{
		Benefactors:       benefactors,
		BenefactorProfile: device.Unshaped(),
		Manager: manager.Config{
			HeartbeatInterval:   200 * time.Millisecond,
			ReplicationInterval: time.Hour, // no replica churn mid-measurement
			PruneInterval:       time.Hour,
		},
		GCGrace:    time.Hour,
		GCInterval: time.Hour,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Fprintf(cfg.Out, "Pipelined vs serial restore: %d MB image over %d benefactors, %v request latency on the client link\n",
		imageSize>>20, benefactors, linkDelay)
	fmt.Fprintf(cfg.Out, "%-8s %-10s %8s %9s %11s %11s\n",
		"chunk", "mode", "MB/s", "ms", "fetched", "batched")

	readerProfile := device.Profile{LinkDelay: linkDelay}
	var cells []cell
	for ci, chunkSize := range chunkSizes {
		name := fmt.Sprintf("rl.n%d.t0", ci)
		data := readloadImage(uint64(ci)*0x9E3779B97F4A7C15+1, imageSize)

		// Stage the image with an unshaped pipelined writer; the write
		// path is not what this experiment measures.
		wcl, _, err := c.NewClient(client.Config{
			StripeWidth: benefactors, ChunkSize: chunkSize, Replication: 1,
			Semantics: core.WriteOptimistic, DataMux: true,
		}, device.Unshaped())
		if err != nil {
			return err
		}
		w, err := wcl.Create(name)
		if err == nil {
			if _, err = w.Write(data); err == nil {
				if err = w.Close(); err == nil {
					err = w.Wait()
				}
			}
		}
		wcl.Close()
		if err != nil {
			return fmt.Errorf("readload: stage %s: %w", name, err)
		}

		var perMode [2]cell
		for mi, mode := range []string{"serial", "pipelined"} {
			rcfg := client.Config{
				StripeWidth: benefactors, ChunkSize: chunkSize, Replication: 1,
			}
			if mode == "serial" {
				rcfg.ReadAhead = 1 // stop-and-wait: one outstanding request
			} else {
				rcfg.DataMux = true
				rcfg.ReadBatch = readBatch
				rcfg.ReadAheadBytes = imageSize / 2
			}
			rcl, _, err := c.NewClient(rcfg, readerProfile)
			if err != nil {
				return err
			}
			acc := cell{
				Experiment: "readload", ChunkKB: chunkSize >> 10, Mode: mode,
				FileBytes: imageSize,
			}
			for rep := 0; rep < cfg.Runs; rep++ {
				start := time.Now()
				r, err := rcl.Open(name)
				if err != nil {
					rcl.Close()
					return fmt.Errorf("readload %s %dKB: %w", mode, chunkSize>>10, err)
				}
				got, err := r.ReadAll()
				elapsed := time.Since(start)
				fetched, batched := r.BytesFetched(), r.BytesBatched()
				r.Close()
				if err != nil {
					rcl.Close()
					return fmt.Errorf("readload %s %dKB: %w", mode, chunkSize>>10, err)
				}
				if !bytes.Equal(got, data) {
					rcl.Close()
					return fmt.Errorf("readload %s %dKB: restore is not byte-identical to the committed image", mode, chunkSize>>10)
				}
				if fetched != imageSize {
					rcl.Close()
					return fmt.Errorf("readload %s %dKB: fetched %d bytes for a %d-byte image", mode, chunkSize>>10, fetched, imageSize)
				}
				if mode == "serial" && batched != 0 {
					rcl.Close()
					return fmt.Errorf("readload serial %dKB: %d bytes rode BGetBatch on the stop-and-wait plane", chunkSize>>10, batched)
				}
				if mode == "pipelined" && batched != imageSize {
					rcl.Close()
					return fmt.Errorf("readload pipelined %dKB: only %d of %d bytes served by BGetBatch (batch path fell back)", chunkSize>>10, batched, imageSize)
				}
				acc.Fetched, acc.Batched = fetched, batched
				acc.RestoreMs += float64(elapsed.Microseconds()) / 1000
			}
			rcl.Close()
			acc.RestoreMs /= float64(cfg.Runs)
			acc.MBps = float64(imageSize) / 1e6 / (acc.RestoreMs / 1000)
			perMode[mi] = acc
			cells = append(cells, acc)
			fmt.Fprintf(cfg.Out, "%-8s %-10s %8.1f %9.1f %11d %11d\n",
				fmt.Sprintf("%d KB", chunkSize>>10), acc.Mode, acc.MBps, acc.RestoreMs, acc.Fetched, acc.Batched)
		}
		fmt.Fprintf(cfg.Out, "  -> pipelined speedup at %d KB chunks: %.1fx\n",
			chunkSize>>10, perMode[0].RestoreMs/perMode[1].RestoreMs)
	}
	fmt.Fprintf(cfg.Out, "serial pays the link latency once per chunk; the pipelined window overlaps it and batches amortize it per request\n")
	fmt.Fprintf(cfg.Out, "paper: striped, pipelined transfers hide per-request cost (§IV.E read-ahead; §V.D); 1-CPU boxes time-slice reader and servers, see EXPERIMENTS.md\n\n")

	if cfg.JSON != nil {
		enc := json.NewEncoder(cfg.JSON)
		for _, cl := range cells {
			if err := enc.Encode(cl); err != nil {
				return fmt.Errorf("readload: json: %w", err)
			}
		}
	}
	return nil
}

// readloadImage builds a deterministic pseudo-random image: xorshift64
// output, so no two chunks of one image are content-identical and FsCH
// dedup cannot collapse the stripe onto a single stored chunk.
func readloadImage(seed uint64, n int) []byte {
	out := make([]byte, n)
	s := seed | 1
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = byte(s)
	}
	return out
}
