package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/grid"
	"stdchk/internal/manager"
)

// RestartLoad measures the restart fast path: N reader clients re-opening
// M committed checkpoint datasets through the federation router, cold
// (empty chunk-map caches) versus warm (second pass of the same
// clients). This is the DMTCP-style restart storm the paper's read goal
// (§IV.A "provide good read performance to minimize restart delays")
// exists for: every process of a job opens its checkpoint at once, and
// the metadata plane — not the data path — sets the latency floor.
//
// Two open modes run the same sweep:
//
//   - version: explicit-version opens. A warm client serves these from
//     its cache with ZERO manager RPCs (committed versions are
//     immutable).
//   - latest: "newest version" opens. A warm client revalidates with one
//     MStatVersion probe (name → version identity, no location payload)
//     and reuses the cached map on match.
//
// The JSON records carry the per-phase manager RPC deltas (getMaps,
// statVersions) and the manager-side hot-map cache counters, so the
// zero-RPC warm-path claim is asserted, not eyeballed
// (TestRestartLoadSmoke gates it in CI). -map-cache=false runs the
// ablation baseline where every open pays a full MGetMap.
//
// Like managerload/fedload the shape is fixed (Config.Scale has no
// effect): 2 federated managers over real sockets, 8 datasets x 2
// versions of 256 KB in 32 KB chunks.
func RestartLoad(cfg Config) error {
	cfg = cfg.withDefaults()
	const (
		managers    = 2
		datasets    = 8
		versionsPer = 2
		imageSize   = 256 << 10
		chunkSize   = 32 << 10
	)
	readersSweep := []int{4, 16}

	type cell struct {
		Experiment   string  `json:"experiment"`
		Mode         string  `json:"mode"`
		Readers      int     `json:"readers"`
		Phase        string  `json:"phase"`
		Opens        int64   `json:"opens"`
		OpensPerSec  float64 `json:"opensPerSec"`
		GetMaps      int64   `json:"getMaps"`
		StatVersions int64   `json:"statVersions"`
		MgrCacheHits int64   `json:"managerMapCacheHits"`
	}

	mgrCache := 0 // manager default (hot-map cache on)
	if cfg.DisableMapCache {
		mgrCache = -1
	}
	jdir, err := os.MkdirTemp("", "stdchk-restartload")
	if err != nil {
		return err
	}
	defer os.RemoveAll(jdir)
	c, err := grid.Start(grid.Options{
		Managers:          managers,
		Benefactors:       8,
		BenefactorProfile: device.Unshaped(),
		Manager: manager.Config{
			HeartbeatInterval:   200 * time.Millisecond,
			ReplicationInterval: time.Hour, // no replica churn mid-measurement
			PruneInterval:       time.Hour,
			MapCacheEntries:     mgrCache,
			// A journaled metadata plane, in the configured mode: the
			// seeding commits run through the ordered async writer by
			// default, or the -sync-journal historical baseline.
			JournalPath: filepath.Join(jdir, "journal"),
			SyncJournal: cfg.SyncJournal,
		},
		GCGrace:    time.Hour,
		GCInterval: time.Hour,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	// Seed the checkpoint set through a writer client, then record each
	// dataset's latest committed version for the explicit-version mode.
	seeder, _, err := c.NewClient(client.Config{
		StripeWidth: 2, ChunkSize: chunkSize, Replication: 1,
		Semantics: core.WriteOptimistic,
	}, device.Unshaped())
	if err != nil {
		return err
	}
	names := make([]string, datasets)
	latest := make([]core.VersionID, datasets)
	for d := 0; d < datasets; d++ {
		names[d] = fmt.Sprintf("rl.n%d", d)
		for t := 0; t < versionsPer; t++ {
			if _, err := writeOnce(seeder, fmt.Sprintf("rl.n%d.t%d", d, t), imageSize, appBlock); err != nil {
				seeder.Close()
				return err
			}
		}
		info, err := seeder.Stat(names[d])
		if err != nil {
			seeder.Close()
			return err
		}
		latest[d] = info.Versions[len(info.Versions)-1].Version
	}
	seeder.Close()

	cacheEntries := 0 // client default (cache on)
	if cfg.DisableMapCache {
		cacheEntries = -1
	}

	fmt.Fprintf(cfg.Out, "Restart storm (§V read path): %d readers x %d datasets through a %d-manager router, cold vs warm chunk-map caches\n",
		readersSweep[len(readersSweep)-1], datasets, managers)
	if cfg.DisableMapCache {
		fmt.Fprintf(cfg.Out, "ablation: -map-cache=false (every open pays a full getMap)\n")
	}
	fmt.Fprintf(cfg.Out, "%-9s %8s %6s %10s %12s %10s %14s %10s\n",
		"mode", "readers", "phase", "opens", "opens/s", "getMaps", "statVersions", "mgr hits")

	var cells []cell
	openOne := func(cl *client.Client, mode string, d int) error {
		var r *client.Reader
		var err error
		if mode == "version" {
			r, err = cl.OpenVersion(names[d], latest[d])
		} else {
			r, err = cl.Open(names[d])
		}
		if err != nil {
			return err
		}
		if r.Size() != imageSize {
			r.Close()
			return fmt.Errorf("open %s: size %d, want %d", names[d], r.Size(), int64(imageSize))
		}
		return r.Close()
	}

	for _, mode := range []string{"version", "latest"} {
		for _, readers := range readersSweep {
			clients := make([]*client.Client, readers)
			for i := range clients {
				cl, _, err := c.NewClient(client.Config{
					StripeWidth: 2, ChunkSize: chunkSize, Replication: 1,
					Semantics: core.WriteOptimistic, MapCacheEntries: cacheEntries,
				}, device.Unshaped())
				if err != nil {
					return err
				}
				clients[i] = cl
			}

			for _, phase := range []string{"cold", "warm"} {
				rounds := cfg.Runs
				if phase == "cold" {
					// One pass defines cold; repetition would warm it.
					rounds = 1
				}
				before := c.Stats()
				start := time.Now()
				var wg sync.WaitGroup
				errCh := make(chan error, readers)
				for _, cl := range clients {
					wg.Add(1)
					go func(cl *client.Client) {
						defer wg.Done()
						for rep := 0; rep < rounds; rep++ {
							for d := 0; d < datasets; d++ {
								if err := openOne(cl, mode, d); err != nil {
									errCh <- err
									return
								}
							}
						}
					}(cl)
				}
				wg.Wait()
				close(errCh)
				for err := range errCh {
					return fmt.Errorf("restartload %s/%d/%s: %w", mode, readers, phase, err)
				}
				elapsed := time.Since(start)
				after := c.Stats()
				opens := int64(readers) * int64(datasets) * int64(rounds)
				cl := cell{
					Experiment: "restartload", Mode: mode, Readers: readers, Phase: phase,
					Opens:        opens,
					OpensPerSec:  float64(opens) / elapsed.Seconds(),
					GetMaps:      after.GetMaps - before.GetMaps,
					StatVersions: after.StatVersions - before.StatVersions,
					MgrCacheHits: after.MapCache.Hits - before.MapCache.Hits,
				}
				cells = append(cells, cl)
				fmt.Fprintf(cfg.Out, "%-9s %8d %6s %10d %12.0f %10d %14d %10d\n",
					mode, readers, phase, cl.Opens, cl.OpensPerSec, cl.GetMaps, cl.StatVersions, cl.MgrCacheHits)
			}
			for _, cl := range clients {
				cl.Close()
			}
		}
	}
	fmt.Fprintf(cfg.Out, "warm re-opens: explicit-version = zero manager RPCs, latest = one MStatVersion each;\n")
	fmt.Fprintf(cfg.Out, "cold opens share the manager's hot-map cache (one location sort per version, not per reader)\n")
	fmt.Fprintf(cfg.Out, "paper: read performance minimizes restart delays (§IV.A); 1-CPU boxes time-slice readers, see EXPERIMENTS.md\n\n")

	if cfg.JSON != nil {
		enc := json.NewEncoder(cfg.JSON)
		for _, cl := range cells {
			if err := enc.Encode(cl); err != nil {
				return fmt.Errorf("restartload: json: %w", err)
			}
		}
	}
	return nil
}
