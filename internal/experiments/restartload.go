package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/grid"
	"stdchk/internal/manager"
	"stdchk/internal/proto"
)

// RestartLoad measures the restart fast path: N reader clients re-opening
// M committed checkpoint datasets through the federation router, cold
// (empty chunk-map caches) versus warm (second pass of the same
// clients). This is the DMTCP-style restart storm the paper's read goal
// (§IV.A "provide good read performance to minimize restart delays")
// exists for: every process of a job opens its checkpoint at once, and
// the metadata plane — not the data path — sets the latency floor.
//
// Two open modes run the same sweep:
//
//   - version: explicit-version opens. A warm client serves these from
//     its cache with ZERO manager RPCs (committed versions are
//     immutable).
//   - latest: "newest version" opens. A warm client revalidates with one
//     MStatVersion probe (name → version identity, no location payload)
//     and reuses the cached map on match.
//
// The JSON records carry the per-phase manager RPC deltas (getMaps,
// statVersions) and the manager-side hot-map cache counters, so the
// zero-RPC warm-path claim is asserted, not eyeballed
// (TestRestartLoadSmoke gates it in CI). -map-cache=false runs the
// ablation baseline where every open pays a full MGetMap.
//
// Like managerload/fedload the shape is fixed (Config.Scale has no
// effect): 2 federated managers over real sockets, 8 datasets x 2
// versions of 256 KB in 32 KB chunks.
func RestartLoad(cfg Config) error {
	cfg = cfg.withDefaults()
	const (
		managers    = 2
		datasets    = 8
		versionsPer = 2
		imageSize   = 256 << 10
		chunkSize   = 32 << 10
	)
	readersSweep := []int{4, 16}

	type cell struct {
		Experiment   string  `json:"experiment"`
		Mode         string  `json:"mode"`
		Readers      int     `json:"readers"`
		Phase        string  `json:"phase"`
		Opens        int64   `json:"opens"`
		OpensPerSec  float64 `json:"opensPerSec"`
		GetMaps      int64   `json:"getMaps"`
		StatVersions int64   `json:"statVersions"`
		MgrCacheHits int64   `json:"managerMapCacheHits"`
	}

	mgrCache := 0 // manager default (hot-map cache on)
	if cfg.DisableMapCache {
		mgrCache = -1
	}
	jdir, err := os.MkdirTemp("", "stdchk-restartload")
	if err != nil {
		return err
	}
	defer os.RemoveAll(jdir)
	c, err := grid.Start(grid.Options{
		Managers:          managers,
		Benefactors:       8,
		BenefactorProfile: device.Unshaped(),
		Manager: manager.Config{
			HeartbeatInterval:   200 * time.Millisecond,
			ReplicationInterval: time.Hour, // no replica churn mid-measurement
			PruneInterval:       time.Hour,
			MapCacheEntries:     mgrCache,
			// A journaled metadata plane, in the configured mode: the
			// seeding commits run through the ordered async writer by
			// default, the -sync-journal historical baseline, or the
			// -fsync-journal group-commit durable mode.
			JournalPath:  filepath.Join(jdir, "journal"),
			SyncJournal:  cfg.SyncJournal,
			FsyncJournal: cfg.FsyncJournal,
		},
		GCGrace:    time.Hour,
		GCInterval: time.Hour,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	// Seed the checkpoint set through a writer client, then record each
	// dataset's latest committed version for the explicit-version mode.
	seeder, _, err := c.NewClient(client.Config{
		StripeWidth: 2, ChunkSize: chunkSize, Replication: 1,
		Semantics: core.WriteOptimistic,
	}, device.Unshaped())
	if err != nil {
		return err
	}
	names := make([]string, datasets)
	latest := make([]core.VersionID, datasets)
	for d := 0; d < datasets; d++ {
		names[d] = fmt.Sprintf("rl.n%d", d)
		for t := 0; t < versionsPer; t++ {
			if _, err := writeOnce(seeder, fmt.Sprintf("rl.n%d.t%d", d, t), imageSize, appBlock); err != nil {
				seeder.Close()
				return err
			}
		}
		info, err := seeder.Stat(names[d])
		if err != nil {
			seeder.Close()
			return err
		}
		latest[d] = info.Versions[len(info.Versions)-1].Version
	}
	seeder.Close()

	cacheEntries := 0 // client default (cache on)
	if cfg.DisableMapCache {
		cacheEntries = -1
	}

	fmt.Fprintf(cfg.Out, "Restart storm (§V read path): %d readers x %d datasets through a %d-manager router, cold vs warm chunk-map caches\n",
		readersSweep[len(readersSweep)-1], datasets, managers)
	if cfg.DisableMapCache {
		fmt.Fprintf(cfg.Out, "ablation: -map-cache=false (every open pays a full getMap)\n")
	}
	fmt.Fprintf(cfg.Out, "%-9s %8s %6s %10s %12s %10s %14s %10s\n",
		"mode", "readers", "phase", "opens", "opens/s", "getMaps", "statVersions", "mgr hits")

	var cells []cell
	openOne := func(cl *client.Client, mode string, d int) error {
		var r *client.Reader
		var err error
		if mode == "version" {
			r, err = cl.Open(names[d], client.OpenOptions{Version: latest[d]})
		} else {
			r, err = cl.Open(names[d])
		}
		if err != nil {
			return err
		}
		if r.Size() != imageSize {
			r.Close()
			return fmt.Errorf("open %s: size %d, want %d", names[d], r.Size(), int64(imageSize))
		}
		return r.Close()
	}

	for _, mode := range []string{"version", "latest"} {
		for _, readers := range readersSweep {
			clients := make([]*client.Client, readers)
			for i := range clients {
				cl, _, err := c.NewClient(client.Config{
					StripeWidth: 2, ChunkSize: chunkSize, Replication: 1,
					Semantics: core.WriteOptimistic, MapCacheEntries: cacheEntries,
				}, device.Unshaped())
				if err != nil {
					return err
				}
				clients[i] = cl
			}

			for _, phase := range []string{"cold", "warm"} {
				rounds := cfg.Runs
				if phase == "cold" {
					// One pass defines cold; repetition would warm it.
					rounds = 1
				}
				before := c.Stats()
				start := time.Now()
				var wg sync.WaitGroup
				errCh := make(chan error, readers)
				for _, cl := range clients {
					wg.Add(1)
					go func(cl *client.Client) {
						defer wg.Done()
						for rep := 0; rep < rounds; rep++ {
							for d := 0; d < datasets; d++ {
								if err := openOne(cl, mode, d); err != nil {
									errCh <- err
									return
								}
							}
						}
					}(cl)
				}
				wg.Wait()
				close(errCh)
				for err := range errCh {
					return fmt.Errorf("restartload %s/%d/%s: %w", mode, readers, phase, err)
				}
				elapsed := time.Since(start)
				after := c.Stats()
				opens := int64(readers) * int64(datasets) * int64(rounds)
				cl := cell{
					Experiment: "restartload", Mode: mode, Readers: readers, Phase: phase,
					Opens:        opens,
					OpensPerSec:  float64(opens) / elapsed.Seconds(),
					GetMaps:      after.GetMaps - before.GetMaps,
					StatVersions: after.StatVersions - before.StatVersions,
					MgrCacheHits: after.MapCache.Hits - before.MapCache.Hits,
				}
				cells = append(cells, cl)
				fmt.Fprintf(cfg.Out, "%-9s %8d %6s %10d %12.0f %10d %14d %10d\n",
					mode, readers, phase, cl.Opens, cl.OpensPerSec, cl.GetMaps, cl.StatVersions, cl.MgrCacheHits)
			}
			for _, cl := range clients {
				cl.Close()
			}
		}
	}
	fmt.Fprintf(cfg.Out, "warm re-opens: explicit-version = zero manager RPCs, latest = one MStatVersion each;\n")
	fmt.Fprintf(cfg.Out, "cold opens share the manager's hot-map cache (one location sort per version, not per reader)\n")
	fmt.Fprintf(cfg.Out, "paper: read performance minimizes restart delays (§IV.A); 1-CPU boxes time-slice readers, see EXPERIMENTS.md\n\n")

	restartCells, err := restartRecoveryCells(cfg, jdir)
	if err != nil {
		return fmt.Errorf("restartload: recovery cells: %w", err)
	}

	if cfg.JSON != nil {
		enc := json.NewEncoder(cfg.JSON)
		for _, cl := range cells {
			if err := enc.Encode(cl); err != nil {
				return fmt.Errorf("restartload: json: %w", err)
			}
		}
		for _, rc := range restartCells {
			if err := enc.Encode(rc); err != nil {
				return fmt.Errorf("restartload: json: %w", err)
			}
		}
	}
	return nil
}

// restartCell records one metadata-plane restart measurement: how long the
// manager took to come back and how much journal it had to replay.
type restartCell struct {
	Experiment  string  `json:"experiment"` // "restartload"
	Mode        string  `json:"mode"`       // "restart-journal" | "restart-snapshot"
	Entries     int64   `json:"entriesReplayed"`
	Datasets    int     `json:"datasets"`
	RestartMs   float64 `json:"restartMs"`
	SnapshotSeq int64   `json:"snapshotSeq,omitempty"`
}

// restartRecoveryCells measures the manager's own restart latency — the
// §IV.A "minimize restart delays" goal applied to the metadata plane
// itself. A fixed synthetic history (64 datasets x 32 versions of
// 16-chunk checkpoints, the managerload driver, pruned to the two newest
// versions per dataset as it goes) is committed in-process;
// the manager then restarts twice from the same durable state: once with
// nothing but the journal (full replay), and once after catalog snapshots
// — the second of which truncates the journal by the lag-one rule — so
// recovery loads the newest snapshot and replays only the short suffix
// behind it. The smoke test gates that the snapshot restart replays
// strictly less and recovers the identical dataset count.
func restartRecoveryCells(cfg Config, jdir string) ([]restartCell, error) {
	const (
		rDatasets  = 64
		rVersions  = 32
		chunksPer  = 16
		rChunkSize = 4 << 10
	)
	rdir := filepath.Join(jdir, "restart")
	if err := os.MkdirAll(rdir, 0o755); err != nil {
		return nil, err
	}
	mcfg := manager.Config{
		HeartbeatInterval:   time.Hour,
		ReplicationInterval: time.Hour,
		PruneInterval:       time.Hour,
		SessionTTL:          time.Hour,
		JournalPath:         filepath.Join(rdir, "journal"),
		SyncJournal:         cfg.SyncJournal,
		FsyncJournal:        cfg.FsyncJournal,
	}
	seedBenefactors := func(m *manager.Manager) error {
		for i := 0; i < 8; i++ {
			req := proto.RegisterReq{
				ID:   core.NodeID(fmt.Sprintf("rr%d:1", i)),
				Addr: fmt.Sprintf("rr%d:1", i), Capacity: 1 << 40, Free: 1 << 40,
			}
			if err := m.Invoke(proto.MRegister, req, nil); err != nil {
				return err
			}
		}
		return nil
	}
	commitRound := func(m *manager.Manager, t, datasets int) error {
		for d := 0; d < datasets; d++ {
			if _, err := manager.DriveCheckpoint(m, fmt.Sprintf("rr.n%d.t%d", d, t), int64(d), t, chunksPer, rChunkSize, false); err != nil {
				return err
			}
		}
		return nil
	}
	deleteRound := func(m *manager.Manager, t, datasets int) error {
		for d := 0; d < datasets; d++ {
			req := proto.DeleteReq{Name: fmt.Sprintf("rr.n%d.t%d", d, t)}
			if err := m.Invoke(proto.MDelete, req, nil); err != nil {
				return err
			}
		}
		return nil
	}
	timedRestart := func() (*manager.Manager, float64, error) {
		start := time.Now()
		m, err := manager.New(mcfg)
		if err != nil {
			return nil, 0, err
		}
		return m, float64(time.Since(start).Microseconds()) / 1000, nil
	}

	// Build the history.
	m, err := manager.New(mcfg)
	if err != nil {
		return nil, err
	}
	if err := seedBenefactors(m); err != nil {
		m.Close()
		return nil, err
	}
	for t := 0; t < rVersions; t++ {
		if err := commitRound(m, t, rDatasets); err != nil {
			m.Close()
			return nil, err
		}
		// Checkpoint-storage churn: keep the two newest versions per
		// dataset, delete the rest — so the journal records the full
		// history while the final catalog holds only its tail. This is
		// the regime where a snapshot beats replay: replay must walk
		// every commit AND every delete to land on the small live state
		// a snapshot stores directly.
		if t >= 2 {
			if err := deleteRound(m, t-2, rDatasets); err != nil {
				m.Close()
				return nil, err
			}
		}
	}
	if err := m.Close(); err != nil {
		return nil, err
	}

	// Restart 1: the journal alone — replay from entry one.
	m2, jMs, err := timedRestart()
	if err != nil {
		return nil, err
	}
	jStats := m2.Stats()
	cells := []restartCell{{
		Experiment: "restartload", Mode: "restart-journal",
		Entries: jStats.JournalReplayed, Datasets: jStats.Datasets, RestartMs: jMs,
	}}

	// Snapshot the recovered catalog, commit a short tail, snapshot again
	// (truncating the journal past the first watermark), then a few more
	// commits that only the journal suffix carries.
	if err := seedBenefactors(m2); err != nil {
		m2.Close()
		return nil, err
	}
	if _, err := m2.Snapshot(); err != nil {
		m2.Close()
		return nil, err
	}
	if err := commitRound(m2, rVersions, 8); err != nil {
		m2.Close()
		return nil, err
	}
	if _, err := m2.Snapshot(); err != nil {
		m2.Close()
		return nil, err
	}
	if err := commitRound(m2, rVersions+1, 4); err != nil {
		m2.Close()
		return nil, err
	}
	if err := m2.Close(); err != nil {
		return nil, err
	}

	// Restart 2: newest snapshot + journal suffix.
	m3, sMs, err := timedRestart()
	if err != nil {
		return nil, err
	}
	sStats := m3.Stats()
	m3.Close()
	cells = append(cells, restartCell{
		Experiment: "restartload", Mode: "restart-snapshot",
		Entries: sStats.JournalReplayed, Datasets: sStats.Datasets, RestartMs: sMs,
		SnapshotSeq: sStats.SnapshotSeq,
	})

	fmt.Fprintf(cfg.Out, "metadata-plane restart (%d datasets, %d commits): full journal replay %d entries in %.1f ms;\n",
		jStats.Datasets, rDatasets*rVersions, jStats.JournalReplayed, jMs)
	fmt.Fprintf(cfg.Out, "snapshot + suffix replays %d entries in %.1f ms (snapshot watermark %d, journal truncated past the previous one)\n\n",
		sStats.JournalReplayed, sMs, sStats.SnapshotSeq)
	return cells, nil
}
