package experiments

import (
	"fmt"
	"io"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/metrics"
)

// AblationReadPath measures restart performance: the read throughput of a
// committed checkpoint image versus stripe width and read-ahead depth.
// The paper states the design goal ("provide good read performance to
// minimize restart delays", §IV.A) and its FreeLoader lineage demonstrated
// 88 MB/s striped reads from ten 100 Mbps benefactors; this bench
// documents what the reproduction's read path achieves on the Gigabit
// calibration.
func AblationReadPath(cfg Config) error {
	cfg = cfg.withDefaults()
	size := cfg.scaled(1 << 30)
	chunk := cfg.chunkSize()

	c, err := paperCluster(8, 0)
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Fprintf(cfg.Out, "Ablation: restart read throughput (%d MB image, chunk %d KB, %d runs)\n",
		size>>20, chunk>>10, cfg.Runs)
	fmt.Fprintf(cfg.Out, "%-14s %-12s %12s\n", "stripe width", "read-ahead", "read MB/s")

	fileNo := 0
	for _, width := range []int{1, 2, 4, 8} {
		for _, readAhead := range []int{1, 4, 8} {
			var sum metrics.Summary
			for run := 0; run < cfg.Runs; run++ {
				cl, _, err := c.NewClient(client.Config{
					Protocol:    client.SlidingWindow,
					StripeWidth: width,
					ChunkSize:   chunk,
					BufferBytes: cfg.scaled(64 << 20),
					Replication: 1,
					Semantics:   core.WriteOptimistic,
					ReadAhead:   readAhead,
				}, device.PaperNode())
				if err != nil {
					return err
				}
				fileNo++
				name := fmt.Sprintf("read.n%d.t0", fileNo)
				if _, err := writeOnce(cl, name, size, appBlock); err != nil {
					cl.Close()
					return err
				}
				r, err := cl.Open(name)
				if err != nil {
					cl.Close()
					return err
				}
				start := time.Now()
				n, err := io.Copy(io.Discard, r)
				elapsed := time.Since(start)
				r.Close()
				if err != nil {
					cl.Close()
					return fmt.Errorf("read width %d ra %d: %w", width, readAhead, err)
				}
				sum.Add(metrics.MBps(n, elapsed))
				cl.Delete(name, 0)
				cl.Close()
			}
			c.CollectAll()
			fmt.Fprintf(cfg.Out, "%-14d %-12d %12.1f\n", width, readAhead, sum.Mean())
		}
	}
	fmt.Fprintf(cfg.Out, "context: restart latency is bounded by the client NIC once read-ahead\n")
	fmt.Fprintf(cfg.Out, "covers the per-chunk round trip; width 1 is bounded by one donor's disk\n\n")
	return nil
}
