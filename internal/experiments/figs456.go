package experiments

import (
	"fmt"

	"stdchk/internal/client"
	"stdchk/internal/device"
	"stdchk/internal/metrics"
)

// swBufferSweep measures the sliding-window protocol across stripe widths
// and buffer sizes (Figures 4 and 5 share it).
type swBufferResult struct {
	widths  []int
	buffers []int64 // paper-sized buffer bytes
	oab     map[int64]map[int]float64
	asb     map[int64]map[int]float64
}

func runSWBufferSweep(cfg Config) (*swBufferResult, error) {
	size := cfg.scaled(1 << 30)
	chunk := cfg.chunkSize()

	c, err := paperCluster(8, 0)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	res := &swBufferResult{
		widths:  []int{1, 2, 4, 8},
		buffers: []int64{32 << 20, 64 << 20, 128 << 20, 256 << 20, 512 << 20},
		oab:     map[int64]map[int]float64{},
		asb:     map[int64]map[int]float64{},
	}
	fileNo := 0
	for _, paperBuf := range res.buffers {
		res.oab[paperBuf] = map[int]float64{}
		res.asb[paperBuf] = map[int]float64{}
		for _, width := range res.widths {
			var oab, asb metrics.Summary
			for run := 0; run < cfg.Runs; run++ {
				cl, err := protoClient(c, client.SlidingWindow, width, chunk,
					cfg.scaled(paperBuf), 0, device.PaperNode())
				if err != nil {
					return nil, err
				}
				fileNo++
				name := fmt.Sprintf("swbuf.n%d.t0", fileNo)
				m, err := writeOnce(cl, name, size, appBlock)
				if err != nil {
					cl.Close()
					return nil, fmt.Errorf("sw buffer %dMB width %d: %w", paperBuf>>20, width, err)
				}
				oab.Add(m.OABMBps())
				asb.Add(m.ASBMBps())
				cl.Delete(name, 0)
				cl.Close()
			}
			c.CollectAll()
			res.oab[paperBuf][width] = oab.Mean()
			res.asb[paperBuf][width] = asb.Mean()
		}
	}
	return res, nil
}

var swMemo struct {
	key string
	res *swBufferResult
}

func swSweepMemo(cfg Config) (*swBufferResult, error) {
	sweepMemo.mu.Lock()
	defer sweepMemo.mu.Unlock()
	key := fmt.Sprintf("%d/%d", cfg.Scale, cfg.Runs)
	if swMemo.key == key && swMemo.res != nil {
		return swMemo.res, nil
	}
	res, err := runSWBufferSweep(cfg)
	if err != nil {
		return nil, err
	}
	swMemo.key, swMemo.res = key, res
	return res, nil
}

// Fig4 regenerates the sliding-window OAB vs buffer-size plot: larger
// buffers absorb more of the file and raise the application-perceived
// bandwidth; the network saturates at stripe width 2.
func Fig4(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := swSweepMemo(cfg)
	if err != nil {
		return err
	}
	printSWSweep(cfg, res, "Figure 4: sliding-window OAB by buffer size, MB/s", res.oab)
	return nil
}

// Fig5 regenerates the sliding-window ASB vs buffer-size plot: storage
// bandwidth is buffer-insensitive (the network is the bottleneck) and
// saturates at width 2.
func Fig5(cfg Config) error {
	cfg = cfg.withDefaults()
	res, err := swSweepMemo(cfg)
	if err != nil {
		return err
	}
	printSWSweep(cfg, res, "Figure 5: sliding-window ASB by buffer size, MB/s", res.asb)
	return nil
}

func printSWSweep(cfg Config, res *swBufferResult, title string, table map[int64]map[int]float64) {
	fmt.Fprintf(cfg.Out, "%s (file %d MB scaled 1/%d, %d runs)\n",
		title, cfg.scaled(1<<30)>>20, cfg.Scale, cfg.Runs)
	fmt.Fprintf(cfg.Out, "%-18s", "buffer \\ width")
	for _, w := range res.widths {
		fmt.Fprintf(cfg.Out, "%8d", w)
	}
	fmt.Fprintln(cfg.Out)
	for _, buf := range res.buffers {
		fmt.Fprintf(cfg.Out, "%5dMB (paper)   ", buf>>20)
		for _, w := range res.widths {
			fmt.Fprintf(cfg.Out, " %s", fmtMB(table[buf][w]))
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintf(cfg.Out, "paper: saturation at width 2; larger buffers raise OAB toward memory speed\n\n")
}

// Fig6 regenerates the 10 Gbps testbed experiment (§V.D): one fast client
// (10 Gbps NIC) striping over 1 Gbps benefactors aggregates their
// bandwidth — the paper reaches 325 MB/s OAB and 225 MB/s ASB at width 4.
func Fig6(cfg Config) error {
	cfg = cfg.withDefaults()
	size := cfg.scaled(1 << 30)
	chunk := cfg.chunkSize()
	buffer := cfg.scaled(512 << 20)

	c, err := paperCluster(4, 0)
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Fprintf(cfg.Out, "Figure 6: 10 Gbps client, sliding window, buffer 512 MB (scaled 1/%d), %d runs\n",
		cfg.Scale, cfg.Runs)
	fmt.Fprintf(cfg.Out, "%-14s %10s %10s\n", "stripe width", "OAB MB/s", "ASB MB/s")
	fileNo := 0
	for _, width := range []int{1, 2, 3, 4} {
		var oab, asb metrics.Summary
		for run := 0; run < cfg.Runs; run++ {
			cl, err := protoClient(c, client.SlidingWindow, width, chunk, buffer, 0, device.PaperTenGigClient())
			if err != nil {
				return err
			}
			fileNo++
			name := fmt.Sprintf("tengig.n%d.t0", fileNo)
			m, err := writeOnce(cl, name, size, appBlock)
			if err != nil {
				cl.Close()
				return fmt.Errorf("fig6 width %d: %w", width, err)
			}
			oab.Add(m.OABMBps())
			asb.Add(m.ASBMBps())
			cl.Delete(name, 0)
			cl.Close()
		}
		c.CollectAll()
		fmt.Fprintf(cfg.Out, "%-14d %s %s\n", width, fmtMB(oab.Mean()), fmtMB(asb.Mean()))
	}
	fmt.Fprintf(cfg.Out, "paper: OAB rises to ≈325 MB/s, ASB to ≈225 MB/s at width 4 (no saturation)\n\n")
	return nil
}
