package experiments

import (
	"fmt"
	"time"

	"stdchk/internal/device"
	"stdchk/internal/fsiface"
	"stdchk/internal/metrics"
)

// Table1 regenerates paper Table 1: the time to write a 1 GB file to the
// local disk, to the local disk through the FUSE call path, and to
// /stdchk/null (the FUSE path with writes discarded). The paper reports
// 11.80 s, 12.00 s and 1.04 s: the user-space interface adds ~2% on top of
// local I/O, and the interface itself costs ~32 µs per call.
func Table1(cfg Config) error {
	cfg = cfg.withDefaults()
	size := cfg.scaled(1 << 30)

	kinds := []struct {
		kind  fsiface.BaselineKind
		label string
		paper string
	}{
		{fsiface.BaselineLocal, "Local I/O", "11.80 s"},
		{fsiface.BaselineFuseLocal, "FUSE to local I/O", "12.00 s"},
		{fsiface.BaselineNull, "/stdchk/null", "1.04 s"},
	}

	fmt.Fprintf(cfg.Out, "Table 1: time to write a 1 GB file (scaled 1/%d: %d MB, %d runs)\n",
		cfg.Scale, size>>20, cfg.Runs)
	fmt.Fprintf(cfg.Out, "%-20s %14s %14s %14s %12s\n",
		"Write path", "avg (scaled)", "stddev", "1GB-equiv", "paper (1GB)")

	for _, k := range kinds {
		var sum metrics.Summary
		for run := 0; run < cfg.Runs; run++ {
			node := device.NewNode(device.PaperNode())
			b := fsiface.NewBaseline(k.kind, node, nil)
			buf := make([]byte, appBlock)
			for w := int64(0); w < size; w += int64(len(buf)) {
				n := int64(len(buf))
				if w+n > size {
					n = size - w
				}
				if _, err := b.Write(buf[:n]); err != nil {
					return fmt.Errorf("table1 %s: %w", k.label, err)
				}
			}
			b.Close()
			sum.Add(b.Duration().Seconds())
		}
		equiv := time.Duration(sum.Mean() * float64(cfg.Scale) * float64(time.Second))
		fmt.Fprintf(cfg.Out, "%-20s %13.3fs %13.3fs %13.2fs %12s\n",
			k.label, sum.Mean(), sum.StdDev(), equiv.Seconds(), k.paper)
	}
	return nil
}
