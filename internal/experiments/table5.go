package experiments

import (
	"fmt"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/fsiface"
	"stdchk/internal/workload"
)

// localSink checkpoints to the node-local disk (the Table 5 baseline).
type localSink struct {
	node *device.Node
}

func (s *localSink) WriteImage(name string, img []byte) (time.Duration, int64, error) {
	start := time.Now()
	b := fsiface.NewBaseline(fsiface.BaselineLocal, s.node, nil)
	for off := 0; off < len(img); off += appBlock {
		end := off + appBlock
		if end > len(img) {
			end = len(img)
		}
		if _, err := b.Write(img[off:end]); err != nil {
			return 0, 0, err
		}
	}
	b.Close()
	// Local disk stores every byte: no dedup.
	return time.Since(start), int64(len(img)), nil
}

// stdchkSink checkpoints through the stdchk client with FsCH dedup.
type stdchkSink struct {
	cl *client.Client
}

func (s *stdchkSink) WriteImage(name string, img []byte) (time.Duration, int64, error) {
	w, err := s.cl.Create(name)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for off := 0; off < len(img); off += appBlock {
		end := off + appBlock
		if end > len(img) {
			end = len(img)
		}
		if _, err := w.Write(img[off:end]); err != nil {
			return 0, 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, 0, err
	}
	blocked := time.Since(start) // application-perceived checkpoint time
	if err := w.Wait(); err != nil {
		return 0, 0, err
	}
	return blocked, w.Metrics().Uploaded, nil
}

// Table5 regenerates the end-to-end BLAST run: the application alternates
// compute and checkpoint phases, writing each image to local disk
// (baseline) or to stdchk via the sliding window with FsCH. The paper
// reports stdchk improving total execution time by 1.3%, the checkpointing
// time by 27%, and the stored data volume by 69%.
func Table5(cfg Config) error {
	cfg = cfg.withDefaults()
	images := 40
	if cfg.Scale <= 4 {
		images = 75
	}
	imgSize := cfg.scaled(279_600_000)
	// Compute:checkpoint duty cycle ≈ 20:1, the paper run's ratio
	// (462,141 s total vs 22,733 s checkpointing).
	perCkptLocal := time.Duration(float64(imgSize) / device.MBps(86.2) * float64(time.Second))
	compute := 20 * perCkptLocal

	trace := workload.BLCRShortInterval(77, images, imgSize)

	// Baseline: local disk.
	local, err := workload.SimulateRun(workload.RunParams{
		Trace:           trace,
		ComputePerPhase: compute,
		NamePattern:     "blastlocal.n1.t%d",
	}, &localSink{node: device.NewNode(device.PaperNode())})
	if err != nil {
		return fmt.Errorf("table5 local: %w", err)
	}

	// stdchk: sliding window + FsCH on four benefactors.
	c, err := paperCluster(4, 0)
	if err != nil {
		return err
	}
	defer c.Close()
	cl, _, err := c.NewClient(client.Config{
		Protocol:    client.SlidingWindow,
		StripeWidth: 4,
		ChunkSize:   cfg.chunkSize(),
		BufferBytes: cfg.scaled(128 << 20),
		Incremental: true,
		Replication: 1,
		Semantics:   core.WriteOptimistic,
	}, device.PaperNode())
	if err != nil {
		return err
	}
	defer cl.Close()
	std, err := workload.SimulateRun(workload.RunParams{
		Trace:           trace,
		ComputePerPhase: compute,
		NamePattern:     "blast.n1.t%d",
	}, &stdchkSink{cl: cl})
	if err != nil {
		return fmt.Errorf("table5 stdchk: %w", err)
	}

	totalPct, ckptPct, dataPct := std.Improvement(local)
	fmt.Fprintf(cfg.Out, "Table 5: BLAST end-to-end, %d checkpoints of %d KB (scaled 1/%d), compute:ckpt ≈ 20:1\n",
		images, imgSize>>10, cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-26s %16s %16s %14s\n", "", "local disk", "stdchk", "improvement")
	fmt.Fprintf(cfg.Out, "%-26s %15.1fs %15.1fs %13.1f%%\n",
		"Total execution time", local.TotalTime.Seconds(), std.TotalTime.Seconds(), totalPct)
	fmt.Fprintf(cfg.Out, "%-26s %15.1fs %15.1fs %13.1f%%\n",
		"Checkpointing time", local.CheckpointTime.Seconds(), std.CheckpointTime.Seconds(), ckptPct)
	fmt.Fprintf(cfg.Out, "%-26s %15.1fM %15.1fM %13.1f%%\n",
		"Data size (stored)", float64(local.StoredBytes)/1e6, float64(std.StoredBytes)/1e6, dataPct)
	fmt.Fprintf(cfg.Out, "paper: total 462,141 s -> 455,894 s (1.3%%); checkpointing 22,733 s -> 16,497 s (27%%);\n")
	fmt.Fprintf(cfg.Out, "       data 3.55 TB -> 1.14 TB (69%%)\n\n")
	return nil
}
