package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"table2", "table3", "table3live", "table4", "fig7", "fig8", "table5",
		"managerload", "fedload", "restartload", "restoredelta", "openload",
		"readload", "churnload",
	}
	runners := All()
	if len(runners) != len(want) {
		t.Fatalf("registry has %d runners, want %d", len(runners), len(want))
	}
	for i, name := range want {
		if runners[i].Name != name {
			t.Errorf("runner %d = %q, want %q", i, runners[i].Name, name)
		}
		if runners[i].Title == "" || runners[i].Run == nil {
			t.Errorf("runner %q incomplete", name)
		}
	}
	if _, ok := Find("table1"); !ok {
		t.Fatal("Find(table1) failed")
	}
	if _, ok := Find("bogus"); ok {
		t.Fatal("Find(bogus) succeeded")
	}
}

func TestConfigScaling(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 64 || cfg.Runs != 3 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if got := cfg.scaled(1 << 30); got != 16<<20 {
		t.Fatalf("scaled(1GB) = %d, want 16MB", got)
	}
	if got := cfg.scaled(100); got != 64<<10 {
		t.Fatalf("scaled floor = %d, want 64KB", got)
	}
	if cs := cfg.chunkSize(); cs != 256<<10 {
		t.Fatalf("chunkSize at /64 = %d, want 256KB", cs)
	}
	full := Config{Scale: 1}.withDefaults()
	if cs := full.chunkSize(); cs != 1<<20 {
		t.Fatalf("chunkSize at /1 = %d, want 1MB", cs)
	}
	tiny := Config{Scale: 1024}.withDefaults()
	if cs := tiny.chunkSize(); cs != 64<<10 {
		t.Fatalf("chunkSize at /1024 = %d, want 64KB floor", cs)
	}
}

// TestTable1Smoke runs the cheapest experiment end to end at an extreme
// scale to keep CI fast, and checks the Table 1 ordering: null is much
// faster than local, FUSE ≈ local.
func TestTable1Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(Config{Scale: 256, Runs: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Local I/O", "FUSE to local I/O", "/stdchk/null", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTable3LiveSmoke runs the live similarity experiment at an extreme
// scale and checks the headline contrast survives the wire path: CbCH's
// live dedup ratio beats FsCH's on the shift-heavy BLCR trace.
func TestTable3LiveSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3Live(Config{Scale: 256, Runs: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FsCH(", "CbCH(stream", "dedup hits", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTable3LiveContrast runs the live experiment at the standard 1/64
// scale and asserts the headline Table 3 result numerically: content-based
// chunking's live dedup ratio is at least 2x fixed-size chunking's on the
// shift-heavy BLCR trace. Skipped under -short (the scale-256
// TestTable3LiveSmoke covers harness health there).
func TestTable3LiveContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-64 live run; -short smoke relies on TestTable3LiveSmoke")
	}
	var buf bytes.Buffer
	if err := Table3Live(Config{Scale: 64, Runs: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	// Data rows lead with the technique name (no spaces); the first
	// percentage column is the live dedup ratio.
	ratio := func(prefix string) float64 {
		t.Helper()
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.HasPrefix(line, prefix) {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) < 2 {
				break
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(fields[1], "%"), 64)
			if err != nil {
				t.Fatalf("parse %q in line %q: %v", fields[1], line, err)
			}
			return v
		}
		t.Fatalf("no %q row in output:\n%s", prefix, buf.String())
		return 0
	}
	fsch, cbch := ratio("FsCH("), ratio("CbCH(")
	if fsch <= 0 {
		t.Fatalf("FsCH live dedup %.1f%%; the BLCR trace lost its aligned prefix", fsch)
	}
	if cbch < 2*fsch {
		t.Fatalf("CbCH live dedup %.1f%% < 2x FsCH %.1f%%", cbch, fsch)
	}
}

// TestManagerLoadSmoke runs the §V.E manager load sweep briefly and checks
// that both variants produce sane throughput rows and that the JSON record
// stream round-trips. The sweep's writer counts are fixed (1..256); only
// the per-cell duration scales with Runs.
func TestManagerLoadSmoke(t *testing.T) {
	var buf, js bytes.Buffer
	if err := ManagerLoad(Config{Scale: 256, Runs: 1, Out: &buf, JSON: &js}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"single-mutex", "striped", "striped+jsync", "striped+jasync", "striped+jfsync", "64", "256", "paper", "async/sync journal", "group-commit fsync"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Twenty-five JSON lines: 5 variants x 5 writer counts, each with a
	// positive tps; the group-commit variant must show its fsyncs being
	// amortized over multiple records.
	lines := 0
	fsyncCells := 0
	for _, line := range strings.Split(strings.TrimSpace(js.String()), "\n") {
		if line == "" {
			continue
		}
		lines++
		var rec struct {
			Variant  string  `json:"variant"`
			Writers  int     `json:"writers"`
			TPS      float64 `json:"tps"`
			Fsyncs   int64   `json:"journalFsyncs"`
			BatchLen int64   `json:"journalBatchLen"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if rec.TPS <= 0 || rec.Writers <= 0 || rec.Variant == "" {
			t.Fatalf("implausible record: %+v", rec)
		}
		if rec.Variant == "striped+jfsync" {
			fsyncCells++
			if rec.Fsyncs <= 0 || rec.BatchLen < rec.Fsyncs {
				t.Fatalf("group-commit cell without fsync accounting: %+v", rec)
			}
		}
	}
	if lines != 25 {
		t.Fatalf("%d JSON records, want 25", lines)
	}
	if fsyncCells != 5 {
		t.Fatalf("%d striped+jfsync cells, want 5", fsyncCells)
	}
}

// TestFedLoadSmoke runs the federated manager-load sweep briefly over
// real sockets and checks every (managers, writers) cell lands with a
// positive aggregate tps, that the member transaction counters show the
// partitioned traffic, and that the JSON record stream round-trips. This
// is the CI gate that keeps the federation wiring (router, partition
// filter, epoch checks, multi-member registration) from rotting.
func TestFedLoadSmoke(t *testing.T) {
	var buf, js bytes.Buffer
	// Runs is the only knob fedload scales by (sizes are fixed, see its doc).
	if err := FedLoad(Config{Runs: 1, Out: &buf, JSON: &js}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"managers", "aggregate tps", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Six JSON lines: 3 manager counts x 2 writer counts.
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(js.String()), "\n") {
		if line == "" {
			continue
		}
		lines++
		var rec struct {
			Experiment string  `json:"experiment"`
			Managers   int     `json:"managers"`
			Writers    int     `json:"writers"`
			TPS        float64 `json:"tps"`
			MemberTxns []int64 `json:"memberTransactions"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if rec.Experiment != "fedload" || rec.TPS <= 0 || rec.Managers <= 0 || rec.Writers <= 0 {
			t.Fatalf("implausible record: %+v", rec)
		}
		if len(rec.MemberTxns) != rec.Managers {
			t.Fatalf("record has %d member counters for %d managers", len(rec.MemberTxns), rec.Managers)
		}
		// With 16+ writers over <=4 members, every member must have seen
		// transactions: the partition function spreads dataset keys.
		for i, txns := range rec.MemberTxns {
			if txns <= 0 {
				t.Fatalf("member %d idle in %d-manager cell: %v", i, rec.Managers, rec.MemberTxns)
			}
		}
	}
	if lines != 6 {
		t.Fatalf("%d JSON records, want 6", lines)
	}
}

// TestRestartLoadSmoke runs the restart-storm sweep briefly over real
// sockets through the federation router and gates the read fast path's
// acceptance criteria on the JSON records: a warm explicit-version
// re-open issues ZERO getMap RPCs (and zero revalidation probes), a warm
// "latest" re-open issues exactly one MStatVersion per open and zero
// getMaps, and cold opens hit the manager-side hot-map cache once per
// (dataset, version) is built.
func TestRestartLoadSmoke(t *testing.T) {
	var buf, js bytes.Buffer
	if err := RestartLoad(Config{Runs: 1, Out: &buf, JSON: &js}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Restart storm", "cold", "warm", "statVersions", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	type rec struct {
		Experiment   string  `json:"experiment"`
		Mode         string  `json:"mode"`
		Readers      int     `json:"readers"`
		Phase        string  `json:"phase"`
		Opens        int64   `json:"opens"`
		OpensPerSec  float64 `json:"opensPerSec"`
		GetMaps      int64   `json:"getMaps"`
		StatVersions int64   `json:"statVersions"`
		MgrCacheHits int64   `json:"managerMapCacheHits"`
		Entries      int64   `json:"entriesReplayed"`
		Datasets     int     `json:"datasets"`
		RestartMs    float64 `json:"restartMs"`
		SnapshotSeq  int64   `json:"snapshotSeq"`
	}
	lines := 0
	restarts := make(map[string]rec)
	for _, line := range strings.Split(strings.TrimSpace(js.String()), "\n") {
		if line == "" {
			continue
		}
		lines++
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if r.Experiment != "restartload" {
			t.Fatalf("implausible record: %+v", r)
		}
		if strings.HasPrefix(r.Mode, "restart-") {
			if r.Entries <= 0 || r.Datasets <= 0 || r.RestartMs <= 0 {
				t.Fatalf("implausible restart cell: %+v", r)
			}
			restarts[r.Mode] = r
			continue
		}
		if r.Opens <= 0 || r.OpensPerSec <= 0 {
			t.Fatalf("implausible record: %+v", r)
		}
		switch {
		case r.Phase == "warm" && r.Mode == "version":
			// The headline claim: warm explicit-version re-opens cost the
			// metadata plane nothing.
			if r.GetMaps != 0 || r.StatVersions != 0 {
				t.Fatalf("warm explicit-version re-opens issued %d getMaps + %d statVersions, want 0 + 0: %+v",
					r.GetMaps, r.StatVersions, r)
			}
		case r.Phase == "warm" && r.Mode == "latest":
			// One lightweight revalidation probe per open, never a map.
			if r.GetMaps != 0 {
				t.Fatalf("warm latest re-opens issued %d getMaps, want 0: %+v", r.GetMaps, r)
			}
			if r.StatVersions != r.Opens {
				t.Fatalf("warm latest re-opens issued %d statVersions for %d opens: %+v",
					r.StatVersions, r.Opens, r)
			}
		case r.Phase == "cold":
			if r.GetMaps <= 0 {
				t.Fatalf("cold opens issued no getMaps: %+v", r)
			}
			// N readers fetching the same maps: the manager builds each
			// once and serves the rest from its hot-map cache.
			if r.Readers > 1 && r.MgrCacheHits <= 0 {
				t.Fatalf("cold storm with %d readers never hit the manager hot-map cache: %+v", r.Readers, r)
			}
		}
	}
	// 2 modes x 2 reader counts x 2 phases, plus the two metadata-plane
	// restart cells.
	if lines != 10 {
		t.Fatalf("%d JSON records, want 10", lines)
	}
	// The durability acceptance gate: a snapshot restart must replay
	// strictly less journal than a full replay while recovering the
	// identical dataset count. Entry counts are deterministic (fixed
	// synthetic history), so this cannot flake the way wall-clock
	// comparisons would; restartMs is recorded for the nightly archive.
	jr, ok := restarts["restart-journal"]
	if !ok {
		t.Fatalf("no restart-journal cell in %v", restarts)
	}
	sr, ok := restarts["restart-snapshot"]
	if !ok {
		t.Fatalf("no restart-snapshot cell in %v", restarts)
	}
	if sr.Entries >= jr.Entries {
		t.Fatalf("snapshot restart replayed %d entries, full replay %d — truncation didn't help", sr.Entries, jr.Entries)
	}
	if sr.SnapshotSeq <= 0 {
		t.Fatalf("snapshot restart recovered no watermark: %+v", sr)
	}
	if sr.Datasets != jr.Datasets {
		t.Fatalf("snapshot restart recovered %d datasets, full replay %d", sr.Datasets, jr.Datasets)
	}
}

// TestRestartLoadAblationSmoke runs one restartload pass with the caches
// disabled (the -map-cache=false baseline) and checks the warm phase then
// pays full getMaps again — the ablation proves the win is the cache, not
// the harness.
func TestRestartLoadAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation baseline; the cached path is gated by TestRestartLoadSmoke")
	}
	var js bytes.Buffer
	if err := RestartLoad(Config{Runs: 1, Out: io.Discard, JSON: &js, DisableMapCache: true}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(js.String()), "\n") {
		if line == "" {
			continue
		}
		var r struct {
			Phase   string `json:"phase"`
			Opens   int64  `json:"opens"`
			GetMaps int64  `json:"getMaps"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if r.Phase == "warm" && r.GetMaps != r.Opens {
			t.Fatalf("cache-disabled warm pass issued %d getMaps for %d opens, want one per open", r.GetMaps, r.Opens)
		}
	}
}

// TestRestoreDeltaSmoke runs the full-vs-incremental restore experiment
// briefly over real sockets through the federation router and gates the
// incremental-restore acceptance criteria on the JSON records: a full
// restore fetches the whole image, an incremental restore fetches no
// more than the manager-reported diff (both restores are byte-verified
// against the committed image inside the experiment), and fetched +
// local bytes always reassemble the full file.
func TestRestoreDeltaSmoke(t *testing.T) {
	var buf, js bytes.Buffer
	if err := RestoreDelta(Config{Runs: 1, Out: &buf, JSON: &js}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Full vs incremental restore", "incremental", "diff bytes", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	type rec struct {
		Experiment string  `json:"experiment"`
		DeltaFrac  float64 `json:"deltaFrac"`
		Mode       string  `json:"mode"`
		FileBytes  int64   `json:"fileBytes"`
		DiffBytes  int64   `json:"diffBytes"`
		Fetched    int64   `json:"fetchedBytes"`
		Local      int64   `json:"localBytes"`
		RestoreMs  float64 `json:"restoreMs"`
	}
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(js.String()), "\n") {
		if line == "" {
			continue
		}
		lines++
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if r.Experiment != "restoredelta" || r.FileBytes <= 0 || r.RestoreMs <= 0 {
			t.Fatalf("implausible record: %+v", r)
		}
		if r.DiffBytes <= 0 || r.DiffBytes >= r.FileBytes {
			t.Fatalf("diff of a partial delta should be in (0, fileBytes): %+v", r)
		}
		switch r.Mode {
		case "full":
			if r.Fetched != r.FileBytes || r.Local != 0 {
				t.Fatalf("full restore fetched %d / reused %d of %d bytes: %+v", r.Fetched, r.Local, r.FileBytes, r)
			}
		case "incremental":
			// The headline claim: an incremental restore moves only the
			// version delta over the network.
			if r.Fetched > r.DiffBytes {
				t.Fatalf("incremental restore fetched %d bytes for a %d-byte diff: %+v", r.Fetched, r.DiffBytes, r)
			}
			if r.Fetched+r.Local != r.FileBytes {
				t.Fatalf("fetched %d + local %d != file %d: %+v", r.Fetched, r.Local, r.FileBytes, r)
			}
		default:
			t.Fatalf("unknown mode %q: %+v", r.Mode, r)
		}
	}
	// 3 delta fractions x 2 modes.
	if lines != 6 {
		t.Fatalf("%d JSON records, want 6", lines)
	}
}

// TestOpenLoadSmoke runs the open-loop traffic experiment briefly over
// real sockets (mux'd shared connections, bounded admission) and gates
// the million-writer plane's acceptance criteria on the JSON records:
// every offered-load level lands with completions and sane percentiles,
// the bounded grid's peak queue depth never exceeds the admission bound,
// and the ablation cell (unbounded queue) is present for contrast. The
// p99 gate is deliberately loose — a CI smoke, not a benchmark.
func TestOpenLoadSmoke(t *testing.T) {
	var buf, js bytes.Buffer
	if err := OpenLoad(Config{Runs: 1, Out: &buf, JSON: &js}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Open-loop traffic", "calibrated closed-loop capacity", "p999", "ablation at 1.50x", "unbounded queue"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	type rec struct {
		Experiment string  `json:"experiment"`
		Variant    string  `json:"variant"`
		Offered    float64 `json:"offeredPerSec"`
		Achieved   float64 `json:"achievedPerSec"`
		P50Micros  int64   `json:"p50Micros"`
		P99Micros  int64   `json:"p99Micros"`
		Completed  int64   `json:"completed"`
		ShedFailed int64   `json:"shedFailed"`
		PeakDepth  int64   `json:"peakQueueDepth"`
	}
	lines, unbounded := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(js.String()), "\n") {
		if line == "" {
			continue
		}
		lines++
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if r.Experiment != "openload" || r.Offered <= 0 {
			t.Fatalf("implausible record: %+v", r)
		}
		switch r.Variant {
		case "admission":
			// The admission gate's whole point: the pending-op queue is
			// bounded by construction, even at 1.5x offered load.
			if r.PeakDepth > 128 {
				t.Fatalf("bounded grid peak queue depth %d exceeds admission bound 128: %+v", r.PeakDepth, r)
			}
			if r.Completed <= 0 || r.P50Micros <= 0 || r.P99Micros < r.P50Micros {
				t.Fatalf("implausible latency cell: %+v", r)
			}
			// Loose tail gate: a loopback checkpoint commit taking >30s at
			// p99 means the plane hung, not that CI was slow.
			if r.P99Micros > 30_000_000 {
				t.Fatalf("p99 %dµs implies a stuck plane: %+v", r.P99Micros, r)
			}
		case "unbounded":
			unbounded++
			// The ablation unbounds the admission queue, not the per-conn
			// inflight budget — so ShedFailed may still count conn-level
			// sheds, but completions must flow.
			if r.Completed <= 0 {
				t.Fatalf("unbounded ablation starved: %+v", r)
			}
		default:
			t.Fatalf("unknown variant %q: %+v", r.Variant, r)
		}
	}
	// Five sweep levels plus the ablation cell.
	if lines != 6 {
		t.Fatalf("%d JSON records, want 6", lines)
	}
	if unbounded != 1 {
		t.Fatalf("%d unbounded ablation cells, want 1", unbounded)
	}
}

// TestReadLoadSmoke runs the pipelined-data-plane restore experiment
// briefly over real sockets and gates its acceptance criteria on the JSON
// records: every cell restores byte-identically (verified inside the
// experiment), fetches exactly the image once, the pipelined cells are
// fully served by BGetBatch (no silent fallback to per-chunk BGets), and
// at 32 KB chunks the pipelined restore is at least 2x the serial one.
// The 2x gate is deterministic even on a 1-CPU box: the serial arm's
// floor is one modeled link-latency sleep per chunk, wall-clock the
// pipelined window provably overlaps.
func TestReadLoadSmoke(t *testing.T) {
	var buf, js bytes.Buffer
	if err := ReadLoad(Config{Runs: 1, Out: &buf, JSON: &js}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Pipelined vs serial restore", "speedup", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	type rec struct {
		Experiment string  `json:"experiment"`
		ChunkKB    int64   `json:"chunkKB"`
		Mode       string  `json:"mode"`
		FileBytes  int64   `json:"fileBytes"`
		Fetched    int64   `json:"fetchedBytes"`
		Batched    int64   `json:"batchedBytes"`
		RestoreMs  float64 `json:"restoreMs"`
		MBps       float64 `json:"mbps"`
	}
	lines := 0
	ms := map[string]float64{} // "mode@chunkKB" -> restore ms
	for _, line := range strings.Split(strings.TrimSpace(js.String()), "\n") {
		if line == "" {
			continue
		}
		lines++
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if r.Experiment != "readload" || r.FileBytes <= 0 || r.RestoreMs <= 0 || r.MBps <= 0 {
			t.Fatalf("implausible record: %+v", r)
		}
		if r.Fetched != r.FileBytes {
			t.Fatalf("restore fetched %d of %d bytes: %+v", r.Fetched, r.FileBytes, r)
		}
		switch r.Mode {
		case "serial":
			if r.Batched != 0 {
				t.Fatalf("serial cell served %d bytes via BGetBatch: %+v", r.Batched, r)
			}
		case "pipelined":
			if r.Batched != r.FileBytes {
				t.Fatalf("pipelined cell batched only %d of %d bytes: %+v", r.Batched, r.FileBytes, r)
			}
		default:
			t.Fatalf("unknown mode %q: %+v", r.Mode, r)
		}
		ms[fmt.Sprintf("%s@%d", r.Mode, r.ChunkKB)] = r.RestoreMs
	}
	// 3 chunk sizes x 2 modes.
	if lines != 6 {
		t.Fatalf("%d JSON records, want 6", lines)
	}
	serial, pipelined := ms["serial@32"], ms["pipelined@32"]
	if serial == 0 || pipelined == 0 {
		t.Fatalf("missing 32 KB cells in %v", ms)
	}
	// The tentpole acceptance criterion.
	if serial < 2*pipelined {
		t.Fatalf("pipelined restore at 32 KB chunks is %.1fms vs serial %.1fms — less than the required 2x speedup",
			pipelined, serial)
	}
}

// TestChurnLoadSmoke runs one flap + death + rejoin cycle and checks the
// hard gates: zero loss on every phase, a decommission past DeadTimeout,
// critical repairs completing no later than bulk, and metadata-only flap
// healing (reconciliation, not copies).
func TestChurnLoadSmoke(t *testing.T) {
	var buf, js bytes.Buffer
	if err := ChurnLoad(Config{Runs: 1, Out: &buf, JSON: &js}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Churn:", "flap", "death", "rejoin", "zeroLoss"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	type rec struct {
		Experiment      string  `json:"experiment"`
		Phase           string  `json:"phase"`
		CriticalClearMs float64 `json:"criticalClearMs"`
		RepairedMs      float64 `json:"repairedMs"`
		CopiedBytes     int64   `json:"copiedBytes"`
		Reconciled      int64   `json:"reconciled"`
		Decommissions   int64   `json:"decommissions"`
		ZeroLoss        bool    `json:"zeroLoss"`
	}
	phases := map[string]rec{}
	for _, line := range strings.Split(strings.TrimSpace(js.String()), "\n") {
		if line == "" {
			continue
		}
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if r.Experiment != "churnload" || !r.ZeroLoss {
			t.Fatalf("record lost data or is mislabeled: %+v", r)
		}
		phases[r.Phase] = r
	}
	if len(phases) != 3 {
		t.Fatalf("phases %v, want flap/death/rejoin", phases)
	}
	if f := phases["flap"]; f.Reconciled <= 0 {
		t.Fatalf("flap healed without reconciling inventory: %+v", f)
	}
	d := phases["death"]
	if d.CopiedBytes <= 0 || d.Decommissions != 1 {
		t.Fatalf("death did not repair+decommission: %+v", d)
	}
	if d.CriticalClearMs <= 0 || d.CriticalClearMs > d.RepairedMs {
		t.Fatalf("critical band did not clear before bulk repair finished: %+v", d)
	}
	if rj := phases["rejoin"]; rj.Reconciled <= 0 {
		t.Fatalf("decommissioned donor rejoined without re-adopting replicas: %+v", rj)
	}
}

// TestTable2Smoke checks the trace table renders all four workloads.
func TestTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(Config{Scale: 256, Runs: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BMS", "library (BLCR)", "VM (Xen)", "902 x 279.6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
