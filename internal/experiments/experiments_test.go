package experiments

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"table2", "table3", "table3live", "table4", "fig7", "fig8", "table5",
		"managerload", "fedload",
	}
	runners := All()
	if len(runners) != len(want) {
		t.Fatalf("registry has %d runners, want %d", len(runners), len(want))
	}
	for i, name := range want {
		if runners[i].Name != name {
			t.Errorf("runner %d = %q, want %q", i, runners[i].Name, name)
		}
		if runners[i].Title == "" || runners[i].Run == nil {
			t.Errorf("runner %q incomplete", name)
		}
	}
	if _, ok := Find("table1"); !ok {
		t.Fatal("Find(table1) failed")
	}
	if _, ok := Find("bogus"); ok {
		t.Fatal("Find(bogus) succeeded")
	}
}

func TestConfigScaling(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 64 || cfg.Runs != 3 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if got := cfg.scaled(1 << 30); got != 16<<20 {
		t.Fatalf("scaled(1GB) = %d, want 16MB", got)
	}
	if got := cfg.scaled(100); got != 64<<10 {
		t.Fatalf("scaled floor = %d, want 64KB", got)
	}
	if cs := cfg.chunkSize(); cs != 256<<10 {
		t.Fatalf("chunkSize at /64 = %d, want 256KB", cs)
	}
	full := Config{Scale: 1}.withDefaults()
	if cs := full.chunkSize(); cs != 1<<20 {
		t.Fatalf("chunkSize at /1 = %d, want 1MB", cs)
	}
	tiny := Config{Scale: 1024}.withDefaults()
	if cs := tiny.chunkSize(); cs != 64<<10 {
		t.Fatalf("chunkSize at /1024 = %d, want 64KB floor", cs)
	}
}

// TestTable1Smoke runs the cheapest experiment end to end at an extreme
// scale to keep CI fast, and checks the Table 1 ordering: null is much
// faster than local, FUSE ≈ local.
func TestTable1Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(Config{Scale: 256, Runs: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Local I/O", "FUSE to local I/O", "/stdchk/null", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTable3LiveSmoke runs the live similarity experiment at an extreme
// scale and checks the headline contrast survives the wire path: CbCH's
// live dedup ratio beats FsCH's on the shift-heavy BLCR trace.
func TestTable3LiveSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3Live(Config{Scale: 256, Runs: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FsCH(", "CbCH(stream", "dedup hits", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTable3LiveContrast runs the live experiment at the standard 1/64
// scale and asserts the headline Table 3 result numerically: content-based
// chunking's live dedup ratio is at least 2x fixed-size chunking's on the
// shift-heavy BLCR trace. Skipped under -short (the scale-256
// TestTable3LiveSmoke covers harness health there).
func TestTable3LiveContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-64 live run; -short smoke relies on TestTable3LiveSmoke")
	}
	var buf bytes.Buffer
	if err := Table3Live(Config{Scale: 64, Runs: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	// Data rows lead with the technique name (no spaces); the first
	// percentage column is the live dedup ratio.
	ratio := func(prefix string) float64 {
		t.Helper()
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.HasPrefix(line, prefix) {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) < 2 {
				break
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(fields[1], "%"), 64)
			if err != nil {
				t.Fatalf("parse %q in line %q: %v", fields[1], line, err)
			}
			return v
		}
		t.Fatalf("no %q row in output:\n%s", prefix, buf.String())
		return 0
	}
	fsch, cbch := ratio("FsCH("), ratio("CbCH(")
	if fsch <= 0 {
		t.Fatalf("FsCH live dedup %.1f%%; the BLCR trace lost its aligned prefix", fsch)
	}
	if cbch < 2*fsch {
		t.Fatalf("CbCH live dedup %.1f%% < 2x FsCH %.1f%%", cbch, fsch)
	}
}

// TestManagerLoadSmoke runs the §V.E manager load sweep briefly and checks
// that both variants produce sane throughput rows and that the JSON record
// stream round-trips. The sweep's writer counts are fixed (1..256); only
// the per-cell duration scales with Runs.
func TestManagerLoadSmoke(t *testing.T) {
	var buf, js bytes.Buffer
	if err := ManagerLoad(Config{Scale: 256, Runs: 1, Out: &buf, JSON: &js}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"single-mutex", "striped", "64", "256", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Ten JSON lines: 2 variants x 5 writer counts, each with a positive tps.
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(js.String()), "\n") {
		if line == "" {
			continue
		}
		lines++
		var rec struct {
			Variant string  `json:"variant"`
			Writers int     `json:"writers"`
			TPS     float64 `json:"tps"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if rec.TPS <= 0 || rec.Writers <= 0 || rec.Variant == "" {
			t.Fatalf("implausible record: %+v", rec)
		}
	}
	if lines != 10 {
		t.Fatalf("%d JSON records, want 10", lines)
	}
}

// TestFedLoadSmoke runs the federated manager-load sweep briefly over
// real sockets and checks every (managers, writers) cell lands with a
// positive aggregate tps, that the member transaction counters show the
// partitioned traffic, and that the JSON record stream round-trips. This
// is the CI gate that keeps the federation wiring (router, partition
// filter, epoch checks, multi-member registration) from rotting.
func TestFedLoadSmoke(t *testing.T) {
	var buf, js bytes.Buffer
	// Runs is the only knob fedload scales by (sizes are fixed, see its doc).
	if err := FedLoad(Config{Runs: 1, Out: &buf, JSON: &js}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"managers", "aggregate tps", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Six JSON lines: 3 manager counts x 2 writer counts.
	lines := 0
	for _, line := range strings.Split(strings.TrimSpace(js.String()), "\n") {
		if line == "" {
			continue
		}
		lines++
		var rec struct {
			Experiment string  `json:"experiment"`
			Managers   int     `json:"managers"`
			Writers    int     `json:"writers"`
			TPS        float64 `json:"tps"`
			MemberTxns []int64 `json:"memberTransactions"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSON record %q: %v", line, err)
		}
		if rec.Experiment != "fedload" || rec.TPS <= 0 || rec.Managers <= 0 || rec.Writers <= 0 {
			t.Fatalf("implausible record: %+v", rec)
		}
		if len(rec.MemberTxns) != rec.Managers {
			t.Fatalf("record has %d member counters for %d managers", len(rec.MemberTxns), rec.Managers)
		}
		// With 16+ writers over <=4 members, every member must have seen
		// transactions: the partition function spreads dataset keys.
		for i, txns := range rec.MemberTxns {
			if txns <= 0 {
				t.Fatalf("member %d idle in %d-manager cell: %v", i, rec.Managers, rec.MemberTxns)
			}
		}
	}
	if lines != 6 {
		t.Fatalf("%d JSON records, want 6", lines)
	}
}

// TestTable2Smoke checks the trace table renders all four workloads.
func TestTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(Config{Scale: 256, Runs: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BMS", "library (BLCR)", "VM (Xen)", "902 x 279.6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
