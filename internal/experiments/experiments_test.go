package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"table2", "table3", "table4", "fig7", "fig8", "table5",
	}
	runners := All()
	if len(runners) != len(want) {
		t.Fatalf("registry has %d runners, want %d", len(runners), len(want))
	}
	for i, name := range want {
		if runners[i].Name != name {
			t.Errorf("runner %d = %q, want %q", i, runners[i].Name, name)
		}
		if runners[i].Title == "" || runners[i].Run == nil {
			t.Errorf("runner %q incomplete", name)
		}
	}
	if _, ok := Find("table1"); !ok {
		t.Fatal("Find(table1) failed")
	}
	if _, ok := Find("bogus"); ok {
		t.Fatal("Find(bogus) succeeded")
	}
}

func TestConfigScaling(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 64 || cfg.Runs != 3 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if got := cfg.scaled(1 << 30); got != 16<<20 {
		t.Fatalf("scaled(1GB) = %d, want 16MB", got)
	}
	if got := cfg.scaled(100); got != 64<<10 {
		t.Fatalf("scaled floor = %d, want 64KB", got)
	}
	if cs := cfg.chunkSize(); cs != 256<<10 {
		t.Fatalf("chunkSize at /64 = %d, want 256KB", cs)
	}
	full := Config{Scale: 1}.withDefaults()
	if cs := full.chunkSize(); cs != 1<<20 {
		t.Fatalf("chunkSize at /1 = %d, want 1MB", cs)
	}
	tiny := Config{Scale: 1024}.withDefaults()
	if cs := tiny.chunkSize(); cs != 64<<10 {
		t.Fatalf("chunkSize at /1024 = %d, want 64KB floor", cs)
	}
}

// TestTable1Smoke runs the cheapest experiment end to end at an extreme
// scale to keep CI fast, and checks the Table 1 ordering: null is much
// faster than local, FUSE ≈ local.
func TestTable1Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(Config{Scale: 256, Runs: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Local I/O", "FUSE to local I/O", "/stdchk/null", "paper"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestTable2Smoke checks the trace table renders all four workloads.
func TestTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(Config{Scale: 256, Runs: 1, Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BMS", "library (BLCR)", "VM (Xen)", "902 x 279.6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
