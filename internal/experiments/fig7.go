package experiments

import (
	"fmt"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/metrics"
	"stdchk/internal/workload"
)

// Fig7 regenerates the incremental-checkpointing write experiment: 75
// successive BLCR checkpoint images written through the sliding-window
// protocol with and without FsCH dedup, across write-buffer sizes. The
// paper reports slightly lower OAB with FsCH (hashing overhead, worst with
// large buffers where the write is memory-bound) in exchange for ~24% less
// storage space and network effort.
func Fig7(cfg Config) error {
	cfg = cfg.withDefaults()
	chunk := cfg.chunkSize()
	images := 75
	if cfg.Scale > 8 {
		images = 25 // keep the sweep quick at small scales
	}
	imgSize := cfg.scaled(279_600_000) // BLCR average checkpoint, 279.6 MB

	c, err := paperCluster(4, 0)
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Fprintf(cfg.Out, "Figure 7: sliding window ± FsCH, %d successive BLCR images of %d KB (scaled 1/%d)\n",
		images, imgSize>>10, cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-14s %-8s %10s %10s %14s\n",
		"buffer", "FsCH", "OAB MB/s", "ASB MB/s", "bytes saved")

	for _, paperBuf := range []int64{64 << 20, 128 << 20, 256 << 20} {
		for _, incremental := range []bool{false, true} {
			tr := workload.BLCR5Min(42, images, imgSize)
			cl, _, err := c.NewClient(client.Config{
				Protocol:    client.SlidingWindow,
				StripeWidth: 4,
				ChunkSize:   chunk,
				BufferBytes: cfg.scaled(paperBuf),
				Incremental: incremental,
				Replication: 1,
				Semantics:   core.WriteOptimistic,
			}, device.PaperNode())
			if err != nil {
				return err
			}
			var oab, asb metrics.Summary
			var logical, uploaded int64
			for i, img := range tr.Images {
				name := fmt.Sprintf("fsch%d%v.n1.t%d", paperBuf>>20, incremental, i)
				w, err := cl.Create(name)
				if err != nil {
					cl.Close()
					return err
				}
				if _, err := w.Write(img); err != nil {
					cl.Close()
					return err
				}
				if err := w.Close(); err != nil {
					cl.Close()
					return err
				}
				if err := w.Wait(); err != nil {
					cl.Close()
					return err
				}
				m := w.Metrics()
				oab.Add(m.OABMBps())
				asb.Add(m.ASBMBps())
				logical += m.Bytes
				uploaded += m.Uploaded
			}
			saved := 0.0
			if logical > 0 {
				saved = 100 * float64(logical-uploaded) / float64(logical)
			}
			fmt.Fprintf(cfg.Out, "%5dMB (paper) %-8v %s %s %13.1f%%\n",
				paperBuf>>20, incremental, fmtMB(oab.Mean()), fmtMB(asb.Mean()), saved)
			// Clear state between configurations.
			cl.Delete(fmt.Sprintf("fsch%d%v.n1", paperBuf>>20, incremental), 0)
			cl.Close()
			c.CollectAll()
		}
	}
	fmt.Fprintf(cfg.Out, "paper: SW-FsCH ≈116 MB/s OAB / 84 MB/s ASB, 24%% space+network saving;\n")
	fmt.Fprintf(cfg.Out, "       at 256 MB buffers OAB drops ≈25%% (memory-bound write pays the hashing)\n\n")
	return nil
}
