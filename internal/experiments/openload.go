package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/federation"
	"stdchk/internal/manager"
	"stdchk/internal/metrics"
	"stdchk/internal/proto"
	"stdchk/internal/workload"
)

// OpenLoad is the open-loop traffic experiment: Poisson checkpoint
// arrivals driven at a sweep of offered-load levels against a federated
// metadata plane over real sockets, reporting per-level latency
// percentiles (p50/p99/p999) instead of throughput alone. Open-loop
// means arrivals never wait for completions — latency is measured from
// each request's *scheduled* arrival time, so queueing delay a
// closed-loop driver would hide (coordinated omission) is charged to the
// server.
//
// The grid runs the full million-writer plane: clients share multiplexed
// session-tagged connections (RouterConfig.SharedConns), and managers
// run bounded admission queues that shed past the bound with typed
// retry-after errors the router honors. A final ablation re-drives the
// overload level against an unbounded-queue federation to show what the
// admission gate buys: bounded queue depth and a flat tail instead of
// unbounded growth.
func OpenLoad(cfg Config) error {
	cfg = cfg.withDefaults()
	const (
		managers    = 2
		benefactors = 8
		imageSize   = 64 << 10
		chunksPerCk = 32
		maxPending  = 128
	)
	chunkSize := int64(imageSize / chunksPerCk)
	levelDur := 400 * time.Millisecond * time.Duration(cfg.Runs)

	fmt.Fprintf(cfg.Out, "Open-loop traffic: Poisson checkpoint arrivals vs a %d-manager federation (mux'd conns, admission bound %d)\n",
		managers, maxPending)
	fmt.Fprintf(cfg.Out, "GOMAXPROCS=%d; latency measured from scheduled arrival (coordinated-omission-free)\n", runtime.GOMAXPROCS(0))

	grid, err := newOpenLoadGrid(managers, benefactors, maxPending)
	if err != nil {
		return err
	}
	defer grid.close()

	// Closed-loop calibration: the plane's approximate capacity in
	// checkpoints/s anchors the offered-load sweep so levels mean the
	// same thing on a laptop and a 32-core CI box.
	capacity, err := openLoadCapacity(grid.router, 250*time.Millisecond*time.Duration(cfg.Runs), 8, chunksPerCk, chunkSize)
	if err != nil {
		return fmt.Errorf("openload: calibrate: %w", err)
	}
	fmt.Fprintf(cfg.Out, "calibrated closed-loop capacity: ~%.0f checkpoints/s\n\n", capacity)

	type cell struct {
		Experiment string  `json:"experiment"`
		Variant    string  `json:"variant"`
		Offered    float64 `json:"offeredPerSec"`
		Achieved   float64 `json:"achievedPerSec"`
		P50Micros  int64   `json:"p50Micros"`
		P99Micros  int64   `json:"p99Micros"`
		P999Micros int64   `json:"p999Micros"`
		Completed  int64   `json:"completed"`
		ShedFailed int64   `json:"shedFailed"`
		Dropped    int64   `json:"dropped"`
		Shed       int64   `json:"shed"`
		ConnShed   int64   `json:"connShed"`
		PeakDepth  int64   `json:"peakQueueDepth"`
	}
	var cells []cell

	fmt.Fprintf(cfg.Out, "%-10s %10s %10s %10s %10s %10s %8s %8s %8s %10s\n",
		"load", "offered/s", "achvd/s", "p50", "p99", "p999", "shed", "connshed", "failed", "peakdepth")
	levels := []float64{0.25, 0.5, 0.75, 1.0, 1.5}
	for li, frac := range levels {
		rate := capacity * frac
		if rate < 20 {
			rate = 20
		}
		res, err := openLoadLevel(grid, li, rate, levelDur, chunksPerCk, chunkSize)
		if err != nil {
			return fmt.Errorf("openload level %.2fx: %w", frac, err)
		}
		fmt.Fprintf(cfg.Out, "%-10s %10.0f %10.0f %10v %10v %10v %8d %8d %8d %10d\n",
			fmt.Sprintf("%.2fx", frac), res.offered, res.achieved,
			res.p50.Round(10*time.Microsecond), res.p99.Round(10*time.Microsecond),
			res.p999.Round(10*time.Microsecond), res.shed, res.connShed, res.shedFailed, res.peakDepth)
		cells = append(cells, cell{
			Experiment: "openload", Variant: "admission", Offered: res.offered,
			Achieved: res.achieved, P50Micros: res.p50.Microseconds(),
			P99Micros: res.p99.Microseconds(), P999Micros: res.p999.Microseconds(),
			Completed: res.completed, ShedFailed: res.shedFailed, Dropped: res.dropped,
			Shed: res.shed, ConnShed: res.connShed, PeakDepth: res.peakDepth,
		})
	}
	fmt.Fprintf(cfg.Out, "\nunder overload the admission gate sheds with typed retry-after: peak queue depth stays ≤ %d by construction\n", maxPending)

	// Ablation: the same overload level against an UNBOUNDED queue. The
	// server accepts everything; queue depth (and therefore tail latency)
	// grows with the backlog instead of being bounded.
	grid.close()
	unbounded, err := newOpenLoadGrid(managers, benefactors, 0)
	if err != nil {
		return err
	}
	defer unbounded.close()
	overloadRate := capacity * 1.5
	if overloadRate < 30 {
		overloadRate = 30
	}
	ares, err := openLoadLevel(unbounded, len(levels), overloadRate, levelDur, chunksPerCk, chunkSize)
	if err != nil {
		return fmt.Errorf("openload ablation: %w", err)
	}
	fmt.Fprintf(cfg.Out, "\nablation at 1.50x offered load      %10s %10s %10s %8s %8s %8s %10s\n",
		"p50", "p99", "p999", "shed", "connshed", "failed", "peakdepth")
	bounded := cells[len(cells)-1]
	fmt.Fprintf(cfg.Out, "  admission (bound %4d)            %10v %10v %10v %8d %8d %8d %10d\n",
		maxPending, time.Duration(bounded.P50Micros)*time.Microsecond,
		time.Duration(bounded.P99Micros)*time.Microsecond,
		time.Duration(bounded.P999Micros)*time.Microsecond,
		bounded.Shed, bounded.ConnShed, bounded.ShedFailed, bounded.PeakDepth)
	fmt.Fprintf(cfg.Out, "  unbounded queue                   %10v %10v %10v %8d %8d %8d %10d\n",
		ares.p50.Round(10*time.Microsecond), ares.p99.Round(10*time.Microsecond),
		ares.p999.Round(10*time.Microsecond), ares.shed, ares.connShed, ares.shedFailed, ares.peakDepth)
	cells = append(cells, cell{
		Experiment: "openload", Variant: "unbounded", Offered: ares.offered,
		Achieved: ares.achieved, P50Micros: ares.p50.Microseconds(),
		P99Micros: ares.p99.Microseconds(), P999Micros: ares.p999.Microseconds(),
		Completed: ares.completed, ShedFailed: ares.shedFailed, Dropped: ares.dropped,
		Shed: ares.shed, ConnShed: ares.connShed, PeakDepth: ares.peakDepth,
	})
	fmt.Fprintln(cfg.Out)

	if cfg.JSON != nil {
		enc := json.NewEncoder(cfg.JSON)
		for _, c := range cells {
			if err := enc.Encode(c); err != nil {
				return fmt.Errorf("openload: json: %w", err)
			}
		}
	}
	return nil
}

// openLoadGrid is the traffic-plane fixture: a federation of managers
// with (optionally bounded) admission queues behind a shared-connection
// router, plus fake benefactor registrations so allocs have somewhere to
// stripe.
type openLoadGrid struct {
	mgrs   []*manager.Manager
	router *federation.Router
}

func newOpenLoadGrid(managers, benefactors, maxPending int) (*openLoadGrid, error) {
	mgrs, members, err := manager.NewFederation(managers, manager.Config{
		HeartbeatInterval:   time.Hour, // load cells outlive no heartbeats
		ReplicationInterval: time.Hour,
		PruneInterval:       time.Hour,
		SessionTTL:          time.Hour,
		MaxPendingOps:       maxPending,
	})
	if err != nil {
		return nil, err
	}
	g := &openLoadGrid{mgrs: mgrs}
	router, err := federation.NewRouter(federation.RouterConfig{
		Members:     members,
		SharedConns: true,
		// 2 mux'd conns per member carry the whole open-loop fleet —
		// the point of session multiplexing.
		PerMemberConns: 2,
	})
	if err != nil {
		g.close()
		return nil, err
	}
	g.router = router
	if err := router.CheckHealth(); err != nil {
		g.close()
		return nil, fmt.Errorf("federation unhealthy at start: %w", err)
	}
	for i := 0; i < benefactors; i++ {
		req := proto.RegisterReq{
			ID:       core.NodeID(fmt.Sprintf("ol%02d:1", i)),
			Addr:     fmt.Sprintf("ol%02d:1", i),
			Capacity: 1 << 40,
			Free:     1 << 40,
		}
		if _, err := router.Register(req); err != nil {
			g.close()
			return nil, err
		}
	}
	return g, nil
}

func (g *openLoadGrid) close() {
	if g.router != nil {
		g.router.Close()
		g.router = nil
	}
	for _, m := range g.mgrs {
		m.Close()
	}
	g.mgrs = nil
}

// mergedStats folds the grid's per-member counters.
func (g *openLoadGrid) mergedStats() proto.ManagerStats {
	all := make([]proto.ManagerStats, len(g.mgrs))
	for i, m := range g.mgrs {
		all[i] = m.Stats()
	}
	return federation.MergeStats(all)
}

// openLoadCapacity estimates the plane's closed-loop checkpoint
// throughput with a small worker fleet — the anchor for offered-load
// fractions.
func openLoadCapacity(router *federation.Router, dur time.Duration, workers, chunksPerCk int, chunkSize int64) (float64, error) {
	var ops atomic.Int64
	var errOnce sync.Once
	var loadErr error
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for t := 0; time.Now().Before(deadline); t++ {
				name := fmt.Sprintf("olcal.n%d.t%d", w, t)
				_, err := driveRouterCheckpoint(router, name, int64(w), t, chunksPerCk, chunkSize, w%2 == 1)
				if err != nil {
					errOnce.Do(func() { loadErr = err })
					return
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if loadErr != nil {
		return 0, loadErr
	}
	elapsed := time.Since(start)
	return float64(ops.Load()) / elapsed.Seconds(), nil
}

// openLoadMaxOutstanding bounds concurrently in-flight open-loop
// requests so an overloaded run cannot spawn unbounded goroutines.
// Arrivals past the bound are counted as dropped and reported — never
// silently discarded from the statistics.
const openLoadMaxOutstanding = 512

type openLoadResult struct {
	offered, achieved float64
	p50, p99, p999    time.Duration
	completed         int64
	shedFailed        int64 // exhausted retry-after budget (typed shed)
	dropped           int64 // arrivals past the outstanding bound
	shed, connShed    int64 // server-side admission counters (delta)
	peakDepth         int64
	otherErrors       int64
}

// openLoadLevel drives one offered-load level: Poisson arrivals at
// `rate` checkpoints/s for roughly dur, latency measured from each
// arrival's scheduled time.
func openLoadLevel(g *openLoadGrid, level int, rate float64, dur time.Duration, chunksPerCk int, chunkSize int64) (openLoadResult, error) {
	n := int(rate * dur.Seconds())
	if n < 8 {
		n = 8
	}
	sched := workload.PoissonSchedule(int64(4242+level), rate, n)
	before := g.mergedStats().Admission

	var hist metrics.LatencyHistogram
	var shedFailed, dropped, otherErrors atomic.Int64
	sem := make(chan struct{}, openLoadMaxOutstanding)
	start := time.Now()
	var wg sync.WaitGroup
	for i, off := range sched {
		if d := time.Until(start.Add(off)); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			dropped.Add(1)
			continue
		}
		wg.Add(1)
		go func(i int, scheduled time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			name := fmt.Sprintf("ol.l%d.n%d", level, i)
			_, err := driveRouterCheckpoint(g.router, name, int64(i), 0, chunksPerCk, chunkSize, i%2 == 1)
			if err != nil {
				if core.IsRetryAfter(err) {
					shedFailed.Add(1)
				} else {
					otherErrors.Add(1)
				}
				return
			}
			hist.Observe(time.Since(scheduled))
		}(i, start.Add(off))
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := g.mergedStats().Admission
	count, _, buckets := hist.Snapshot()
	res := openLoadResult{
		offered:     float64(n) / elapsed.Seconds(),
		achieved:    float64(count) / elapsed.Seconds(),
		p50:         metrics.Percentile(buckets, 0.50),
		p99:         metrics.Percentile(buckets, 0.99),
		p999:        metrics.Percentile(buckets, 0.999),
		completed:   count,
		shedFailed:  shedFailed.Load(),
		dropped:     dropped.Load(),
		shed:        after.Shed - before.Shed,
		connShed:    after.ConnShed - before.ConnShed,
		peakDepth:   after.PeakQueueDepth,
		otherErrors: otherErrors.Load(),
	}
	if res.otherErrors > 0 {
		return res, fmt.Errorf("%d non-shed errors during open-loop level %d", res.otherErrors, level)
	}
	return res, nil
}
