package experiments

import (
	"fmt"

	"stdchk/internal/chunker"
	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/workload"
)

// liveCbCHParams picks span bounds for the live CbCH write path at the
// run's scale: expected spans (Min + 2^Bits) a small multiple of the
// offline sweep's ~330 KB average, shrunk with the images so each stable
// BLCR zone still spans many chunks.
func liveCbCHParams(chunk int64) chunker.StreamParams {
	min := chunk / 8
	if min < 8<<10 {
		min = 8 << 10
	}
	var bits uint
	for bits = 10; int64(1)<<(bits+1) < chunk/2; bits++ {
	}
	return chunker.StreamParams{Window: 48, Bits: bits, Min: min, Max: chunk}
}

// Table3Live re-measures the paper's central similarity result (Table 3)
// through the real wire path instead of the offline chunker harness: the
// BLCR trace is written version by version into a live cluster with
// incremental checkpointing on, once with fixed-size chunks (FsCH) and
// once with content-based variable-size chunks (CbCH), and the detected
// similarity is read off the writer's byte accounting. The manager's
// MHasChunks counters (DedupBatches/DedupChunks/DedupHits) provide the
// server-side ground truth for the same quantity. The offline ratio of
// the identical boundary parameterization is printed alongside so
// harness-vs-wire divergence is visible.
func Table3Live(cfg Config) error {
	cfg = cfg.withDefaults()
	images := 4
	size := cfg.scaled(279_600_000) // BLCR average checkpoint, 279.6 MB
	if size < 8<<20 {
		// Chunk statistics need images well above the max span bound.
		size = 8 << 20
	}
	chunk := cfg.chunkSize()
	cbch := liveCbCHParams(chunk)

	c, err := paperCluster(4, 0)
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Fprintf(cfg.Out, "Table 3 (live): detected similarity through the wire path, %d BLCR images of %d KB (scaled 1/%d)\n",
		images, size>>10, cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-38s %12s %12s %14s %12s %12s\n",
		"technique", "live dedup", "offline", "uploaded MB", "dedup hits", "probe RPCs")

	type mode struct {
		name    string
		offline chunker.Chunker
		cfg     client.Config
	}
	modes := []mode{
		{
			name:    fmt.Sprintf("FsCH(%dKB)", chunk>>10),
			offline: chunker.Fixed{Size: chunk},
			cfg: client.Config{
				StripeWidth: 4,
				ChunkSize:   chunk,
				Incremental: true,
				Replication: 1,
				Semantics:   core.WriteOptimistic,
			},
		},
		{
			name:    cbch.Name(),
			offline: cbch,
			cfg: client.Config{
				StripeWidth: 4,
				Chunking:    client.ChunkCbCH,
				CbCH:        cbch,
				Incremental: true,
				Replication: 1,
				Semantics:   core.WriteOptimistic,
			},
		},
	}

	// runMode writes the trace through one chunking configuration and
	// prints its row; the client is scoped here so every error path
	// releases its connections.
	runMode := func(mi int, m mode) error {
		tr := workload.BLCR5Min(42, images, size)
		cl, _, err := c.NewClient(m.cfg, device.PaperNode())
		if err != nil {
			return err
		}
		defer cl.Close()
		before, err := cl.ManagerStats()
		if err != nil {
			return err
		}
		// Live pass: logical/deduped accounting over versions after the
		// first (the same convention as the offline SimilarityRatio).
		var logical, deduped, uploaded int64
		for i, img := range tr.Images {
			name := fmt.Sprintf("live%d.n1.t%d", mi, i)
			w, err := cl.Create(name)
			if err != nil {
				return err
			}
			if _, err := w.Write(img); err != nil {
				return err
			}
			if err := w.Close(); err != nil {
				return err
			}
			if err := w.Wait(); err != nil {
				return err
			}
			wm := w.Metrics()
			uploaded += wm.Uploaded
			if i > 0 {
				logical += wm.Bytes
				deduped += wm.Deduped
			}
		}
		after, err := cl.ManagerStats()
		if err != nil {
			return err
		}

		offline := chunker.EvalTrace(m.offline, tr.Images)
		live := 0.0
		if logical > 0 {
			live = float64(deduped) / float64(logical)
		}
		fmt.Fprintf(cfg.Out, "%-38s %11.1f%% %11.1f%% %14.1f %12d %12d\n",
			m.name, 100*live, 100*offline.SimilarityRatio(), float64(uploaded)/1e6,
			after.DedupHits-before.DedupHits, after.DedupBatches-before.DedupBatches)

		cl.Delete(fmt.Sprintf("live%d.n1", mi), 0)
		return nil
	}
	for mi, m := range modes {
		if err := runMode(mi, m); err != nil {
			return err
		}
		c.CollectAll()
	}
	fmt.Fprintf(cfg.Out, "paper: FsCH detects ~25%% on BLCR-5min (offset-aligned prefix only); overlap CbCH ~84%%.\n")
	fmt.Fprintf(cfg.Out, "       Live dedup tracks the offline ratio of the same boundary set: what the harness\n")
	fmt.Fprintf(cfg.Out, "       predicts is what the wire path saves (bytes never uploaded, counted by DedupHits).\n\n")
	return nil
}
