package experiments

import (
	"fmt"
	"time"

	"stdchk/internal/chunker"
	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/erasure"
	"stdchk/internal/grid"
	"stdchk/internal/manager"
	"stdchk/internal/metrics"
	"stdchk/internal/workload"
)

// Ablations returns the extension experiments: design-choice benches that
// the paper argues qualitatively (DESIGN.md §7) plus the paper's stated
// future work.
func Ablations() []Runner {
	return []Runner{
		{Name: "ablation-rolling", Title: "Rolling-hash CbCH vs paper's overlap/no-overlap", Run: AblationRolling},
		{Name: "ablation-erasure", Title: "Erasure coding vs replication write-path cost", Run: AblationErasure},
		{Name: "ablation-xenfix", Title: "Ordered Xen dumps restore similarity", Run: AblationXenFix},
		{Name: "ablation-writepriority", Title: "Replication write-priority throttling", Run: AblationWritePriority},
		{Name: "ablation-readpath", Title: "Restart read throughput vs stripe width and read-ahead", Run: AblationReadPath},
	}
}

// FindAblation locates an ablation runner by name.
func FindAblation(name string) (Runner, bool) {
	for _, r := range Ablations() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// AblationRolling compares the paper's overlap CbCH (window hash
// recomputed at every byte) against an O(1)-per-byte rolling-hash variant,
// on the same BLCR trace. The paper motivates GPU offload with overlap
// CbCH's cost; the rolling hash is the software fix LBFS used.
func AblationRolling(cfg Config) error {
	cfg = cfg.withDefaults()
	size := cfg.scaled(279_600_000)
	if size < 16<<20 {
		size = 16 << 20
	}
	tr := workload.BLCR5Min(21, 5, size)
	fmt.Fprintf(cfg.Out, "Ablation: overlap CbCH vs rolling-hash CbCH (BLCR-5min, %d x %d MB)\n",
		tr.Count(), size>>20)
	fmt.Fprintf(cfg.Out, "%-36s %12s %12s\n", "technique", "similarity", "MB/s")
	for _, h := range []chunker.Chunker{
		chunker.ContentDefined{Window: 20, Bits: 14, Advance: 1},
		chunker.ContentDefined{Window: 20, Bits: 14, Advance: 1, Rolling: true},
		chunker.ContentDefined{Window: 20, Bits: 14, Advance: 20},
		chunker.Fixed{Size: 256 << 10},
	} {
		stats := chunker.EvalTrace(h, tr.Images)
		fmt.Fprintf(cfg.Out, "%-36s %11.1f%% %12.1f\n",
			h.Name(), 100*stats.SimilarityRatio(), stats.ThroughputMBps())
	}
	fmt.Fprintf(cfg.Out, "takeaway: the rolling hash keeps overlap CbCH's similarity detection at a\n")
	fmt.Fprintf(cfg.Out, "fraction of its cost — an alternative to the paper's proposed GPU offload\n\n")
	return nil
}

// AblationErasure quantifies paper §IV.A's replication-vs-erasure
// argument: the time to make a checkpoint k+m-redundant via Reed-Solomon
// encoding (CPU in the write path, fragments to k+m nodes) versus
// replication (no CPU, whole copies to m extra nodes), under the same
// device calibration.
func AblationErasure(cfg Config) error {
	cfg = cfg.withDefaults()
	size := cfg.scaled(1 << 30)
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 131)
	}
	nic := device.NewNIC(device.Gbps(1))

	// Replication r=2: ship the image twice (background copies add one
	// more transfer; the write path ships it once).
	repStart := time.Now()
	nic.TX.Acquire(len(data)) // primary copy
	nic.TX.Acquire(len(data)) // replica
	repDur := time.Since(repStart)

	// Erasure RS(4,2): encode, then ship 6 fragments of size/4.
	coder, err := erasure.New(4, 2)
	if err != nil {
		return err
	}
	encStart := time.Now()
	shards := coder.Split(data)
	parity, err := coder.Encode(shards)
	if err != nil {
		return err
	}
	encodeDur := time.Since(encStart)
	shipStart := time.Now()
	for _, s := range append(shards, parity...) {
		nic.TX.Acquire(len(s))
	}
	shipDur := time.Since(shipStart)

	repBytes := 2 * int64(len(data))
	eraBytes := int64(len(shards[0]) * (coder.K() + coder.M()))
	fmt.Fprintf(cfg.Out, "Ablation: replication (r=2) vs Reed-Solomon RS(4,2), %d MB checkpoint, 1 Gbps NIC\n", size>>20)
	fmt.Fprintf(cfg.Out, "%-24s %12s %14s %14s\n", "scheme", "cpu time", "network time", "bytes shipped")
	fmt.Fprintf(cfg.Out, "%-24s %12s %14s %14d\n", "replication r=2", "0", repDur.Round(time.Millisecond), repBytes)
	fmt.Fprintf(cfg.Out, "%-24s %12s %14s %14d\n", "RS(4,2)",
		encodeDur.Round(time.Millisecond), shipDur.Round(time.Millisecond), eraBytes)
	fmt.Fprintf(cfg.Out, "takeaway: RS ships %.0f%% of replication's bytes but pays %.1f MB/s of\n",
		100*float64(eraBytes)/float64(repBytes), metrics.MBps(int64(len(data)), encodeDur))
	fmt.Fprintf(cfg.Out, "write-path encoding throughput; with transient checkpoint data the space\n")
	fmt.Fprintf(cfg.Out, "saving buys little, which is the paper's argument for replication\n\n")
	return nil
}

// AblationXenFix evaluates the paper's stated future work: Xen checkpoint
// images that preserve page order (and keep per-page metadata stable)
// become dedup-friendly again.
func AblationXenFix(cfg Config) error {
	cfg = cfg.withDefaults()
	size := cfg.scaled(1_024_800_000)
	if size < 16<<20 {
		size = 16 << 20
	}
	shuffled := workload.Xen(workload.XenParams{Seed: 31, Images: 4, Size: size})
	ordered := workload.Xen(workload.XenParams{Seed: 31, Images: 4, Size: size, PreserveOrder: true})

	fmt.Fprintf(cfg.Out, "Ablation: Xen page-order fix (%d x %d MB VM images)\n", 4, size>>20)
	fmt.Fprintf(cfg.Out, "%-28s %18s %18s\n", "heuristic", "shuffled (stock)", "ordered (fix)")
	for _, h := range []chunker.Chunker{
		chunker.Fixed{Size: 4 << 10},
		chunker.Fixed{Size: 256 << 10},
		chunker.ContentDefined{Window: 48, Bits: 13, Advance: 1, Rolling: true},
	} {
		s1 := chunker.EvalTrace(h, shuffled.Images)
		s2 := chunker.EvalTrace(h, ordered.Images)
		fmt.Fprintf(cfg.Out, "%-28s %17.1f%% %17.1f%%\n",
			h.Name(), 100*s1.SimilarityRatio(), 100*s2.SimilarityRatio())
	}
	fmt.Fprintf(cfg.Out, "takeaway: ordering pages (and stabilizing per-page metadata) restores the\n")
	fmt.Fprintf(cfg.Out, "similarity that stock Xen destroys (paper §V.E 'surprising result')\n\n")
	return nil
}

// AblationWritePriority measures foreground write bandwidth while the
// replication scheduler runs with and without write priority
// (paper §IV.A: "Creation of new files has priority over replication").
func AblationWritePriority(cfg Config) error {
	cfg = cfg.withDefaults()
	size := cfg.scaled(1 << 30)

	run := func(priority bool) (float64, error) {
		c, err := grid.Start(grid.Options{
			Benefactors:       4,
			BenefactorProfile: device.PaperNode(),
			Manager: manager.Config{
				HeartbeatInterval:   200 * time.Millisecond,
				ReplicationInterval: 50 * time.Millisecond,
				ReplicationParallel: 8,
				WritePriority:       priority,
				DefaultReplication:  3,
			},
			GCGrace:    time.Hour,
			GCInterval: time.Hour,
		})
		if err != nil {
			return 0, err
		}
		defer c.Close()
		cl, _, err := c.NewClient(client.Config{
			Protocol:    client.SlidingWindow,
			StripeWidth: 2,
			ChunkSize:   cfg.chunkSize(),
			BufferBytes: cfg.scaled(32 << 20),
			Replication: 3,
			Semantics:   core.WriteOptimistic,
		}, device.PaperNode())
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		// A background seeder keeps producing under-replicated files for
		// the whole measurement window, so the replication scheduler has
		// a standing backlog of copies in both configurations.
		seedCl, _, err := c.NewClient(client.Config{
			Protocol:    client.SlidingWindow,
			StripeWidth: 2,
			ChunkSize:   cfg.chunkSize(),
			Replication: 3,
			Semantics:   core.WriteOptimistic,
		}, device.PaperNode())
		if err != nil {
			return 0, err
		}
		defer seedCl.Close()
		stopSeed := make(chan struct{})
		seedDone := make(chan struct{})
		go func() {
			defer close(seedDone)
			for i := 0; ; i++ {
				select {
				case <-stopSeed:
					return
				default:
				}
				if _, err := writeOnce(seedCl, fmt.Sprintf("seed.n%d.t0", i), size/2, appBlock); err != nil {
					return
				}
			}
		}()

		var sum metrics.Summary
		for i := 0; i < cfg.Runs+2; i++ {
			m, err := writeOnce(cl, fmt.Sprintf("wp.n%d.t0", i), size, appBlock)
			if err != nil {
				close(stopSeed)
				<-seedDone
				return 0, err
			}
			sum.Add(m.ASBMBps())
		}
		close(stopSeed)
		<-seedDone
		return sum.Mean(), nil
	}

	with, err := run(true)
	if err != nil {
		return err
	}
	without, err := run(false)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "Ablation: foreground ASB while replication runs (target r=3, %d MB files)\n", size>>20)
	fmt.Fprintf(cfg.Out, "%-28s %12.1f MB/s\n", "with write priority", with)
	fmt.Fprintf(cfg.Out, "%-28s %12.1f MB/s\n", "without write priority", without)
	fmt.Fprintf(cfg.Out, "note: replication copies move benefactor-to-benefactor, off the client's\n")
	fmt.Fprintf(cfg.Out, "links, so in this topology the interference the paper's priority rule\n")
	fmt.Fprintf(cfg.Out, "guards against is modest; the rule matters when donors' disks/links are\n")
	fmt.Fprintf(cfg.Out, "the shared bottleneck (narrower pools, busier donors)\n\n")
	return nil
}
