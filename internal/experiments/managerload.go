package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/manager"
	"stdchk/internal/proto"
	"stdchk/internal/workload"
)

// ManagerLoad reproduces the §V.E manager-throughput claim ("the manager
// is able to sustain well over 1,000 transactions per second") and
// measures how it scales with concurrent writers — the regime the paper
// never pushed: hundreds of small checkpointing clients hitting the
// metadata plane at once (workload.ManyWriters).
//
// Five manager variants run the same sweep on the same machine:
//
//   - stripes=1: the historical single-mutex catalog (every alloc,
//     extend, dedup probe and commit serializes on one lock);
//   - striped: the default lock-striped catalog + chunk index;
//   - striped+jsync: journaling in the historical synchronous mode —
//     every commit marshals, writes and flushes its journal record
//     inside the dataset stripe's critical section, so journaled commits
//     re-serialize on the journal mutex;
//   - striped+jasync: journaling through the ordered async writer — the
//     critical section only takes an order ticket, so the jasync/jsync
//     tps ratio is the journal unserialization win measured in one run;
//   - striped+jfsync: the async writer with group-commit fsync — every
//     commit blocks until its batch is on disk, but concurrent commits
//     share one fsync, so the jfsync/jasync ratio prices crash-proof
//     durability and the records-per-fsync column shows the amortization.
//
// Writers drive the manager's real handler path in-process
// (Manager.Invoke) so the measurement isolates the metadata plane — the
// paper's §V.E measurement likewise counted manager transactions, not
// data transfer. Each checkpoint costs five metadata RPCs: alloc, extend,
// a batched dedup probe, commit (half the chunks shared copy-on-write
// after the first version), and a chunk-map fetch.
func ManagerLoad(cfg Config) error {
	cfg = cfg.withDefaults()
	const (
		imageSize   = 64 << 10
		chunksPerCk = 32
		benefactors = 16
	)
	writersSweep := []int{1, 4, 16, 64, 256}
	cellDur := 200 * time.Millisecond * time.Duration(cfg.Runs)

	type cell struct {
		Variant    string  `json:"variant"`
		Stripes    int     `json:"stripes"`
		Writers    int     `json:"writers"`
		Journal    string  `json:"journal,omitempty"`
		TPS        float64 `json:"tps"`
		Checkpoint float64 `json:"checkpointsPerSec"`
		Contended  int64   `json:"stripeContention"`
		StripeOps  int64   `json:"stripeOps"`
		// Group-commit accounting (journaled variants): fsync syscalls and
		// the records they covered — their ratio is the amortization that
		// makes durable commits affordable under concurrency.
		JournalFsyncs   int64 `json:"journalFsyncs,omitempty"`
		JournalBatchLen int64 `json:"journalBatchLen,omitempty"`
	}
	variants := []struct {
		name    string
		stripes int
		journal string // "" | "sync" | "async" | "fsync"
	}{
		{"single-mutex", 1, ""},
		{"striped", 0, ""}, // manager default
		{"striped+jsync", 0, "sync"},
		{"striped+jasync", 0, "async"},
		// Crash-durable commits through the group-commit fsync path: each
		// commit waits for its batch's fsync, concurrent commits share it.
		{"striped+jfsync", 0, "fsync"},
	}

	fmt.Fprintf(cfg.Out, "Manager metadata-plane load (§V.E): %d-chunk checkpoints of %d KB, 5 metadata RPCs per checkpoint\n",
		chunksPerCk, imageSize>>10)
	fmt.Fprintf(cfg.Out, "GOMAXPROCS=%d (striping needs >1 CPU to turn reduced contention into parallel tps)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(cfg.Out, "%-14s %8s %12s %14s %16s\n", "variant", "writers", "tps", "ckpts/s", "lock contention")

	var cells []cell
	tpsAt := make(map[string]map[int]float64)
	for _, v := range variants {
		tpsAt[v.name] = make(map[int]float64)
		for _, w := range writersSweep {
			c, err := managerLoadCell(v.stripes, v.journal, w, cellDur, imageSize, chunksPerCk, benefactors)
			if err != nil {
				return fmt.Errorf("managerload %s/%d: %w", v.name, w, err)
			}
			contPct := 0.0
			if c.stripeOps > 0 {
				contPct = 100 * float64(c.contended) / float64(c.stripeOps)
			}
			fmt.Fprintf(cfg.Out, "%-14s %8d %12.0f %14.0f %11.1f%% (%d/%d)\n",
				v.name, w, c.tps, c.ckps, contPct, c.contended, c.stripeOps)
			tpsAt[v.name][w] = c.tps
			cells = append(cells, cell{
				Variant: v.name, Stripes: c.stripes, Writers: w, Journal: v.journal,
				TPS: c.tps, Checkpoint: c.ckps,
				Contended: c.contended, StripeOps: c.stripeOps,
				JournalFsyncs: c.fsyncs, JournalBatchLen: c.batchLen,
			})
		}
	}

	ratio := func(num, den string, w int) float64 {
		if tpsAt[den][w] <= 0 {
			return 0
		}
		return tpsAt[num][w] / tpsAt[den][w]
	}
	fmt.Fprintf(cfg.Out, "striped/single-mutex tps: %.2fx at 64 writers, %.2fx at 256 writers\n",
		ratio("striped", "single-mutex", 64), ratio("striped", "single-mutex", 256))
	fmt.Fprintf(cfg.Out, "async/sync journal tps: %.2fx at 64 writers, %.2fx at 256 writers (ordered async writer win)\n",
		ratio("striped+jasync", "striped+jsync", 64), ratio("striped+jasync", "striped+jsync", 256))
	var fsAmort float64
	for _, c := range cells {
		if c.Variant == "striped+jfsync" && c.Writers == writersSweep[len(writersSweep)-1] && c.JournalFsyncs > 0 {
			fsAmort = float64(c.JournalBatchLen) / float64(c.JournalFsyncs)
		}
	}
	fmt.Fprintf(cfg.Out, "group-commit fsync tps: %.2fx of relaxed async at 256 writers, %.1f records amortized per fsync\n",
		ratio("striped+jfsync", "striped+jasync", 256), fsAmort)
	fmt.Fprintf(cfg.Out, "paper: manager sustains well over 1,000 transactions per second (§V.E)\n\n")

	if cfg.JSON != nil {
		enc := json.NewEncoder(cfg.JSON)
		for _, c := range cells {
			if err := enc.Encode(c); err != nil {
				return fmt.Errorf("managerload: json: %w", err)
			}
		}
	}
	return nil
}

type loadResult struct {
	tps       float64
	ckps      float64
	stripes   int
	contended int64
	stripeOps int64
	fsyncs    int64
	batchLen  int64
}

// managerLoadCell runs one (stripes, journal-mode, writers) configuration
// for roughly dur and returns the measured rates. journal "" runs
// unjournaled; "sync"/"async"/"fsync" journal to a fresh temp file in the
// corresponding mode (fsync = async writer with group-commit durability).
func managerLoadCell(stripes int, journal string, writers int, dur time.Duration, imageSize int64, chunksPerCk, benefactors int) (loadResult, error) {
	mcfg := manager.Config{
		MetadataStripes:     stripes,
		HeartbeatInterval:   time.Hour, // load cells outlive no heartbeats
		ReplicationInterval: time.Hour,
		PruneInterval:       time.Hour,
		SessionTTL:          time.Hour,
	}
	if journal != "" {
		dir, err := os.MkdirTemp("", "stdchk-managerload")
		if err != nil {
			return loadResult{}, err
		}
		defer os.RemoveAll(dir)
		mcfg.JournalPath = filepath.Join(dir, "journal")
		mcfg.SyncJournal = journal == "sync"
		mcfg.FsyncJournal = journal == "fsync"
	}
	m, err := manager.New(mcfg)
	if err != nil {
		return loadResult{}, err
	}
	defer m.Close()
	for i := 0; i < benefactors; i++ {
		req := proto.RegisterReq{
			ID:       core.NodeID(fmt.Sprintf("ld%02d:1", i)),
			Addr:     fmt.Sprintf("ld%02d:1", i),
			Capacity: 1 << 40,
			Free:     1 << 40,
		}
		if err := m.Invoke(proto.MRegister, req, nil); err != nil {
			return loadResult{}, err
		}
	}

	specs := workload.ManyWriters(42, writers, 0, imageSize)
	chunkSize := imageSize / int64(chunksPerCk)
	var ops atomic.Int64
	var errOnce sync.Once
	var loadErr error
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		go func(spec workload.WriterSpec) {
			defer wg.Done()
			for t := 0; time.Now().Before(deadline); t++ {
				// The identical driver BenchmarkManagerOps runs, so the
				// CI-gated benchmark and this sweep measure one workload.
				n, err := manager.DriveCheckpoint(m, spec.FileName(t), spec.Seed, t, chunksPerCk, chunkSize, spec.CbCH)
				ops.Add(n)
				if err != nil {
					errOnce.Do(func() { loadErr = err })
					return
				}
			}
		}(spec)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if loadErr != nil {
		return loadResult{}, loadErr
	}
	stats := m.Stats()
	total := float64(ops.Load())
	res := loadResult{
		tps:       total / elapsed.Seconds(),
		ckps:      total / manager.DriveCheckpointOps / elapsed.Seconds(),
		contended: stats.StripeContention,
		stripeOps: stats.StripeOps,
		stripes:   len(stats.CatalogStripes),
		fsyncs:    stats.JournalFsyncs,
		batchLen:  stats.JournalBatchLen,
	}
	return res, nil
}
