package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/grid"
	"stdchk/internal/manager"
)

// RestoreDelta measures full versus incremental restore: a reader that
// already holds version N locally re-opens version N+1 with
// OpenOptions.Baseline, so only the chunks the two versions do NOT share
// cross the network. The sweep varies how much of the checkpoint changed
// between the versions (the delta fraction) and records, per restore,
// the bytes fetched, the bytes reused from the local baseline, and the
// manager's answer to MDiff — the three numbers whose agreement is the
// feature's acceptance criterion (fetched ≈ diff, fetched + local =
// file size, output byte-identical either way).
//
// The metadata plane is a 2-member federation over real sockets, so the
// history/diff query plane and the cross-member map prefetch (MGetMaps,
// one round trip per member touched) run through the Router exactly as
// a deployment would drive them.
//
// Like managerload/fedload the shape is fixed (Config.Scale has no
// effect): 512 KB images in 32 KB chunks, delta fractions 1/16, 1/4,
// 1/2; Config.Runs sets the repetitions averaged per cell.
func RestoreDelta(cfg Config) error {
	cfg = cfg.withDefaults()
	const (
		managers  = 2
		imageSize = 512 << 10
		chunkSize = 32 << 10
		nChunks   = imageSize / chunkSize
	)
	deltaFracs := []float64{1.0 / 16, 1.0 / 4, 1.0 / 2}

	type cell struct {
		Experiment string  `json:"experiment"`
		DeltaFrac  float64 `json:"deltaFrac"`
		Mode       string  `json:"mode"` // "full" | "incremental"
		FileBytes  int64   `json:"fileBytes"`
		DiffBytes  int64   `json:"diffBytes"`
		Fetched    int64   `json:"fetchedBytes"`
		Local      int64   `json:"localBytes"`
		RestoreMs  float64 `json:"restoreMs"`
	}

	c, err := grid.Start(grid.Options{
		Managers:          managers,
		Benefactors:       8,
		BenefactorProfile: device.Unshaped(),
		Manager: manager.Config{
			HeartbeatInterval:   200 * time.Millisecond,
			ReplicationInterval: time.Hour, // no replica churn mid-measurement
			PruneInterval:       time.Hour,
		},
		GCGrace:    time.Hour,
		GCInterval: time.Hour,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	cl, _, err := c.NewClient(client.Config{
		StripeWidth: 2, ChunkSize: chunkSize, Replication: 1,
		Semantics: core.WriteOptimistic,
	}, device.Unshaped())
	if err != nil {
		return err
	}
	defer cl.Close()

	// Seed one dataset per delta fraction: t0 is the base image, t1 the
	// mutated one. Fixed chunking keeps unchanged regions chunk-identical,
	// so the catalog's chunk-span diff is exact.
	baseData := make([]byte, imageSize)
	for i := range baseData {
		baseData[i] = byte(i*31 + 7)
	}
	names := make([]string, len(deltaFracs))
	baseVer := make([]core.VersionID, len(deltaFracs))
	newVer := make([]core.VersionID, len(deltaFracs))
	newData := make([][]byte, len(deltaFracs))
	writeImage := func(name string, data []byte) error {
		w, err := cl.Create(name)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		return w.Wait()
	}
	for d, frac := range deltaFracs {
		names[d] = fmt.Sprintf("rd.n%d", d)
		if err := writeImage(names[d]+".t0", baseData); err != nil {
			return err
		}
		mutated := append([]byte(nil), baseData...)
		changed := int(float64(nChunks) * frac)
		if changed < 1 {
			changed = 1
		}
		// Spread the changed chunks across the image.
		for i := 0; i < changed; i++ {
			ch := i * nChunks / changed
			off := ch * chunkSize
			for j := off; j < off+chunkSize; j++ {
				mutated[j] ^= 0xA5
			}
		}
		if err := writeImage(names[d]+".t1", mutated); err != nil {
			return err
		}
		newData[d] = mutated
		info, err := cl.Stat(names[d])
		if err != nil {
			return err
		}
		baseVer[d] = info.Versions[0].Version
		newVer[d] = info.Versions[1].Version
	}

	// Warm the client's chunk-map cache for every dataset in one batched
	// round trip per federation member (MGetMaps through the Router).
	if _, err := cl.PrefetchMaps(names); err != nil {
		return err
	}

	fmt.Fprintf(cfg.Out, "Full vs incremental restore: %d KB images in %d KB chunks through a %d-manager router\n",
		imageSize>>10, chunkSize>>10, managers)
	fmt.Fprintf(cfg.Out, "%-7s %10s %10s %13s %12s %12s %10s\n",
		"delta", "mode", "bytes", "diff bytes", "fetched", "local", "ms")

	var cells []cell
	restore := func(d int, mode string) (cell, error) {
		diff, err := cl.Diff(names[d], baseVer[d], newVer[d])
		if err != nil {
			return cell{}, err
		}
		opt := client.OpenOptions{Version: newVer[d]}
		if mode == "incremental" {
			opt.Baseline = baseVer[d]
			opt.BaselineData = baseData
		}
		start := time.Now()
		r, err := cl.Open(names[d], opt)
		if err != nil {
			return cell{}, err
		}
		got, err := r.ReadAll()
		if err != nil {
			r.Close()
			return cell{}, err
		}
		elapsed := time.Since(start)
		fetched, local := r.BytesFetched(), r.BytesLocal()
		r.Close()
		if !bytes.Equal(got, newData[d]) {
			return cell{}, fmt.Errorf("%s restore of %s.t1 is not byte-identical to the committed image", mode, names[d])
		}
		return cell{
			Experiment: "restoredelta", DeltaFrac: deltaFracs[d], Mode: mode,
			FileBytes: int64(len(got)), DiffBytes: diff.DiffBytes,
			Fetched: fetched, Local: local,
			RestoreMs: float64(elapsed.Microseconds()) / 1000,
		}, nil
	}
	for d := range deltaFracs {
		for _, mode := range []string{"full", "incremental"} {
			// Average the latency over Runs; byte counters are per restore
			// and identical across repetitions, so the last cell carries them.
			var acc cell
			for rep := 0; rep < cfg.Runs; rep++ {
				cc, err := restore(d, mode)
				if err != nil {
					return fmt.Errorf("restoredelta %s %.3f: %w", mode, deltaFracs[d], err)
				}
				cc.RestoreMs += acc.RestoreMs
				acc = cc
			}
			acc.RestoreMs /= float64(cfg.Runs)
			cells = append(cells, acc)
			fmt.Fprintf(cfg.Out, "%-7.3f %10s %10d %13d %12d %12d %10.1f\n",
				acc.DeltaFrac, acc.Mode, acc.FileBytes, acc.DiffBytes, acc.Fetched, acc.Local, acc.RestoreMs)
		}
	}
	fmt.Fprintf(cfg.Out, "incremental restores fetch only the version delta; unchanged chunks are hash-verified local copies\n")
	fmt.Fprintf(cfg.Out, "paper: read performance minimizes restart delays (§IV.A); 1-CPU boxes time-slice reader and servers, see EXPERIMENTS.md\n\n")

	if cfg.JSON != nil {
		enc := json.NewEncoder(cfg.JSON)
		for _, cl := range cells {
			if err := enc.Encode(cl); err != nil {
				return fmt.Errorf("restoredelta: json: %w", err)
			}
		}
	}
	return nil
}
