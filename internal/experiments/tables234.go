package experiments

import (
	"fmt"

	"stdchk/internal/chunker"
	"stdchk/internal/workload"
)

// traceSet builds the four evaluation traces at the configured scale.
// Counts are reduced along with sizes so the sweep stays quick; the
// similarity statistics depend on per-image structure, not trace length.
//
// Image sizes for the similarity tables have a floor: the paper's CbCH
// parameterization (m=20, k=14) produces ~330 KB average chunks, so images
// must stay tens of MB for the chunk-count statistics to be meaningful.
func traceSet(cfg Config) map[string]*workload.Trace {
	images := 6
	if cfg.Scale <= 4 {
		images = 10
	}
	// Paper Table 2 average image sizes, scaled by cfg.Scale.
	const (
		bmsSize    = 2_700_000     // 2.7 MB
		blcr5Size  = 279_600_000   // 279.6 MB
		blcr15Size = 308_100_000   // 308.1 MB
		xenSize    = 1_024_800_000 // 1024.8 MB
	)
	floor := func(n int64) int64 {
		if n < 16<<20 {
			return 16 << 20
		}
		return n
	}
	return map[string]*workload.Trace{
		"BMS/app/1min":     workload.AppLevel(11, images, cfg.scaled(bmsSize)),
		"BLAST/BLCR/5min":  workload.BLCR5Min(12, images, floor(cfg.scaled(blcr5Size))),
		"BLAST/BLCR/15min": workload.BLCR15Min(13, images, floor(cfg.scaled(blcr15Size))),
		"BLAST/Xen/5min":   workload.Xen(workload.XenParams{Seed: 14, Images: images, Size: floor(cfg.scaled(xenSize))}),
	}
}

// Table2 regenerates the trace-characteristics table: checkpoint type,
// interval, count and average image size for each collected workload.
// Counts and sizes are scaled; the paper's originals are printed alongside.
func Table2(cfg Config) error {
	cfg = cfg.withDefaults()
	traces := traceSet(cfg)
	fmt.Fprintf(cfg.Out, "Table 2: characteristics of the checkpoint traces (sizes scaled 1/%d)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-18s %-16s %10s %8s %12s %22s\n",
		"Application", "Type", "Interval", "Images", "Avg MB", "paper (count x MB)")
	rows := []struct {
		key   string
		paper string
	}{
		{"BMS/app/1min", "100 x 2.7"},
		{"BLAST/BLCR/5min", "902 x 279.6"},
		{"BLAST/BLCR/15min", "654 x 308.1"},
		{"BLAST/Xen/5min", "100 x 1024.8"},
	}
	for _, r := range rows {
		tr := traces[r.key]
		fmt.Fprintf(cfg.Out, "%-18s %-16s %10s %8d %12.2f %22s\n",
			tr.Application, tr.Type, tr.Interval, tr.Count(), tr.AvgSizeMB(), r.paper)
	}
	fmt.Fprintln(cfg.Out)
	return nil
}

// table3Heuristics are the compared configurations (paper Table 3).
func table3Heuristics() []chunker.Chunker {
	return []chunker.Chunker{
		chunker.Fixed{Size: 1 << 10},
		chunker.Fixed{Size: 256 << 10},
		chunker.Fixed{Size: 1 << 20},
		chunker.ContentDefined{Window: 20, Bits: 14, Advance: 1},  // overlap
		chunker.ContentDefined{Window: 20, Bits: 14, Advance: 20}, // no-overlap
	}
}

// Table3 regenerates the similarity-heuristics comparison: detected
// similarity and processing throughput for FsCH at three chunk sizes and
// CbCH in overlap and no-overlap configurations, over all four traces.
//
// Reproduction note (also in EXPERIMENTS.md): the paper reports no-overlap
// CbCH detecting almost as much similarity as overlap CbCH (82% vs 84% on
// BLCR-5min). A no-overlap window grid cannot re-synchronize after a shift
// that is not a multiple of the advance, so an implementation from the
// paper's description behaves like a variable-size FsCH under byte-level
// shifts; our measured no-overlap similarity therefore tracks FsCH, not
// overlap. The paper's headline contrasts — overlap CbCH finds the most,
// FsCH is by far the fastest, Xen and application-level traces defeat
// everything — all reproduce.
func Table3(cfg Config) error {
	cfg = cfg.withDefaults()
	traces := traceSet(cfg)
	order := []string{"BMS/app/1min", "BLAST/BLCR/5min", "BLAST/BLCR/15min", "BLAST/Xen/5min"}

	fmt.Fprintf(cfg.Out, "Table 3: similarity %% [throughput MB/s] per heuristic and trace (scaled 1/%d)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%-30s", "technique \\ trace")
	for _, key := range order {
		fmt.Fprintf(cfg.Out, " %22s", key)
	}
	fmt.Fprintln(cfg.Out)
	for _, h := range table3Heuristics() {
		fmt.Fprintf(cfg.Out, "%-30s", h.Name())
		for _, key := range order {
			stats := chunker.EvalTrace(h, traces[key].Images)
			fmt.Fprintf(cfg.Out, "   %6.1f%% [%8.1f]", 100*stats.SimilarityRatio(), stats.ThroughputMBps())
		}
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintf(cfg.Out, "paper: FsCH ≈0/25/9%% on app/BLCR5/BLCR15 at ≈100-113 MB/s; CbCH overlap ≈0/84/71%% at ≈1.1-1.5 MB/s;\n")
	fmt.Fprintf(cfg.Out, "       CbCH no-overlap ≈0/82/70%% at ≈26-28 MB/s; Xen near zero for all (see EXPERIMENTS.md note)\n\n")
	return nil
}

// Table4 regenerates the CbCH no-overlap parameter sweep on the
// BLCR-5min trace: similarity, throughput and chunk-size statistics as
// the window size m and the boundary-bit count k vary.
func Table4(cfg Config) error {
	cfg = cfg.withDefaults()
	images := 5
	size := cfg.scaled(279_600_000)
	if size < 32<<20 {
		// The sweep's largest parameterization (k=14, m=256) averages
		// multi-MB chunks; keep enough chunks per image for the trend
		// rows to be meaningful.
		size = 32 << 20
	}
	tr := workload.BLCR5Min(12, images, size)

	fmt.Fprintf(cfg.Out, "Table 4: CbCH no-overlap sweep on BLAST/BLCR-5min (scaled 1/%d)\n", cfg.Scale)
	fmt.Fprintf(cfg.Out, "%4s %5s %12s %12s %12s %12s %12s\n",
		"k", "m(B)", "similarity", "MB/s", "avg KB", "min KB", "max KB")
	for _, k := range []uint{8, 10, 12, 14} {
		for _, m := range []int{20, 32, 64, 128, 256} {
			h := chunker.ContentDefined{Window: m, Bits: k, Advance: m}
			stats := chunker.EvalTrace(h, tr.Images)
			fmt.Fprintf(cfg.Out, "%4d %5d %11.1f%% %12.1f %12.1f %12.1f %12.1f\n",
				k, m, 100*stats.SimilarityRatio(), stats.ThroughputMBps(),
				stats.AvgChunk/1024, stats.AvgMinChunk/1024, stats.AvgMaxChunk/1024)
		}
	}
	fmt.Fprintf(cfg.Out, "paper: chunk size grows with k and m (k=8,m=20: ≈519 KB avg ... k=14,m=256: ≈2.9 MB);\n")
	fmt.Fprintf(cfg.Out, "       similarity peaks at small m / large k; throughput 27-87 MB/s across the sweep\n\n")
	return nil
}
