// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each experiment is a named runner that drives the real
// stdchk stack — manager, benefactors, clients over loopback TCP — with
// device models calibrated to the paper's testbed, and prints rows in the
// paper's layout next to the paper's reported values.
//
// Sizes are scaled down by Config.Scale (default 64: the paper's 1 GB
// test file becomes 16 MB) so a full sweep finishes in minutes; bandwidth
// calibrations are NOT scaled, so every bottleneck ratio — and therefore
// the shape of each result — is preserved. EXPERIMENTS.md records
// paper-vs-measured for every row.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/grid"
	"stdchk/internal/manager"
)

// Config parameterizes a run.
type Config struct {
	// Scale divides the paper's data sizes (1 = full size, 64 default).
	Scale int64
	// Runs is the number of repetitions per configuration (the paper
	// averages 20; 3 keeps the full sweep quick).
	Runs int
	// Out receives the formatted tables.
	Out io.Writer
	// JSON, when non-nil, receives machine-readable result records
	// (JSON lines) from experiments that emit them (managerload). The
	// nightly CI job archives this stream.
	JSON io.Writer
	// DisableMapCache runs cache-sensitive experiments (restartload) with
	// the client and manager chunk-map caches off — the read fast path's
	// before baseline (stdchk-bench -map-cache=false).
	DisableMapCache bool
	// SyncJournal runs journaled experiments (restartload's metadata
	// plane) with the historical synchronous journal writer instead of
	// the ordered async one (stdchk-bench -sync-journal). The managerload
	// sweep always measures both journal modes side by side.
	SyncJournal bool
	// FsyncJournal runs journaled experiments with group-commit fsync
	// (stdchk-bench -fsync-journal): commits wait for their batch's fsync,
	// concurrent commits share it. The managerload sweep always measures
	// the fsync variant side by side regardless of this flag.
	FsyncJournal bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 64
	}
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// scaled converts a paper-sized byte count to this run's size.
func (c Config) scaled(paperBytes int64) int64 {
	v := paperBytes / c.Scale
	if v < 64<<10 {
		v = 64 << 10
	}
	return v
}

// chunkSize picks the striping chunk size for the scale: the paper uses
// 1 MB chunks on 1 GB files (1024 chunks); keeping at least tens of chunks
// per file preserves the striping pipeline behaviour.
func (c Config) chunkSize() int64 {
	cs := (1 << 20) * 16 / c.Scale
	if cs < 64<<10 {
		return 64 << 10
	}
	if cs > 1<<20 {
		return 1 << 20
	}
	return cs
}

// Runner is one experiment.
type Runner struct {
	// Name is the CLI identifier, e.g. "table1", "fig2".
	Name string
	// Title is the paper artifact it regenerates.
	Title string
	// Run executes the experiment and prints its table(s).
	Run func(Config) error
}

// All returns the experiment registry in paper order.
func All() []Runner {
	return []Runner{
		{Name: "table1", Title: "Table 1: time to write 1 GB (local vs FUSE vs /stdchk/null)", Run: Table1},
		{Name: "fig2", Title: "Figure 2: observed application bandwidth vs stripe width", Run: Fig2},
		{Name: "fig3", Title: "Figure 3: achieved storage bandwidth vs stripe width", Run: Fig3},
		{Name: "fig4", Title: "Figure 4: sliding-window OAB vs buffer size", Run: Fig4},
		{Name: "fig5", Title: "Figure 5: sliding-window ASB vs buffer size", Run: Fig5},
		{Name: "fig6", Title: "Figure 6: 10 Gbps client OAB/ASB", Run: Fig6},
		{Name: "table2", Title: "Table 2: checkpoint trace characteristics", Run: Table2},
		{Name: "table3", Title: "Table 3: similarity heuristics comparison", Run: Table3},
		{Name: "table3live", Title: "Table 3 (live): similarity re-measured through the wire path", Run: Table3Live},
		{Name: "table4", Title: "Table 4: CbCH no-overlap parameter sweep", Run: Table4},
		{Name: "fig7", Title: "Figure 7: sliding window with/without FsCH", Run: Fig7},
		{Name: "fig8", Title: "Figure 8: aggregate throughput under load", Run: Fig8},
		{Name: "table5", Title: "Table 5: BLAST end-to-end (local disk vs stdchk)", Run: Table5},
		{Name: "managerload", Title: "Manager load (§V.E): metadata tps vs concurrent writers, striped vs single-lock catalog", Run: ManagerLoad},
		{Name: "fedload", Title: "Federated manager load (§V.E extension): aggregate metadata tps at 1/2/4 partitioned managers over sockets", Run: FedLoad},
		{Name: "restartload", Title: "Restart storm (§V read path): cold vs warm chunk-map caches, N readers re-opening M datasets through the router", Run: RestartLoad},
		{Name: "restoredelta", Title: "Incremental restore (§IV.A read goal): full vs baseline-delta restore bytes and latency through the router", Run: RestoreDelta},
		{Name: "openload", Title: "Open-loop traffic: latency vs Poisson offered load over mux'd connections, with the admission-control ablation", Run: OpenLoad},
		{Name: "readload", Title: "Pipelined data plane (§IV.E read path): restore MB/s vs chunk size, serial stop-and-wait vs batched mux transport", Run: ReadLoad},
		{Name: "churnload", Title: "Benefactor churn (§III donation dynamics): flap/death/rejoin cycles, priority repair timeline, zero-loss restores", Run: ChurnLoad},
	}
}

// Find locates a runner by name.
func Find(name string) (Runner, bool) {
	for _, r := range All() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// paperCluster starts a shaped cluster with paper-calibrated benefactors.
func paperCluster(benefactors int, fabricBps float64) (*grid.Cluster, error) {
	return grid.Start(grid.Options{
		Benefactors:       benefactors,
		BenefactorProfile: device.PaperNode(),
		FabricBps:         fabricBps,
		Manager: manager.Config{
			HeartbeatInterval:   200 * time.Millisecond,
			ReplicationInterval: 500 * time.Millisecond,
			WritePriority:       true,
		},
		// GC runs only when the harness calls Cluster.CollectAll between
		// repetitions (after deletes), so a tiny grace is safe here.
		GCGrace:    time.Millisecond,
		GCInterval: time.Hour,
	})
}

// writeOnce writes size bytes through a fresh writer and returns the
// metrics. Block size models the application's write() granularity.
func writeOnce(cl *client.Client, name string, size int64, block int) (client.WriteMetrics, error) {
	w, err := cl.Create(name)
	if err != nil {
		return client.WriteMetrics{}, err
	}
	buf := make([]byte, block)
	for i := range buf {
		buf[i] = byte(i*31 + 7)
	}
	var written int64
	for written < size {
		n := int64(len(buf))
		if written+n > size {
			n = size - written
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return client.WriteMetrics{}, err
		}
		written += n
	}
	if err := w.Close(); err != nil {
		return client.WriteMetrics{}, err
	}
	if err := w.Wait(); err != nil {
		return client.WriteMetrics{}, err
	}
	return w.Metrics(), nil
}

// appBlock is the application write granularity used throughout the
// evaluation (a typical FUSE max write of the era).
const appBlock = 128 << 10

// protoClient builds a shaped client for a protocol experiment.
func protoClient(c *grid.Cluster, p client.Protocol, width int, chunk int64, buffer, temp int64, profile device.Profile) (*client.Client, error) {
	cl, _, err := c.NewClient(client.Config{
		Protocol:      p,
		StripeWidth:   width,
		ChunkSize:     chunk,
		BufferBytes:   buffer,
		TempFileBytes: temp,
		Replication:   1, // protocol benches isolate the write path
		Semantics:     core.WriteOptimistic,
	}, profile)
	return cl, err
}

// fmtMB formats a throughput cell.
func fmtMB(v float64) string { return fmt.Sprintf("%7.1f", v) }

// sortedKeys returns sorted map keys for deterministic table output.
func sortedKeys(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
