package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/federation"
	"stdchk/internal/manager"
	"stdchk/internal/proto"
	"stdchk/internal/workload"
)

// FedLoad extends the §V.E manager-load sweep across a federated metadata
// plane: the same many-small-writers workload (workload.ManyWriters, the
// same five metadata RPCs per checkpoint as managerload) driven through
// the client-side partition router against 1, 2 and 4 manager processes
// over real loopback sockets. Aggregate transactions per second should
// scale with the member count once the single manager saturates — the
// federation's reason to exist — with the usual caveat that a 1-CPU dev
// box time-slices the members instead of running them in parallel, so the
// scaling shows there only as reduced per-member contention.
//
// Unlike managerload (in-process Manager.Invoke, isolating the metadata
// plane), fedload pays the full socket stack: wire framing, connection
// pools, and the router's owner lookup on every dataset-scoped RPC.
//
// Like managerload, the checkpoint shape (64 KB, 32 chunks) and the sweep
// sizes are fixed so runs stay comparable; Config.Scale has no effect
// here and only Runs stretches the per-cell duration.
func FedLoad(cfg Config) error {
	cfg = cfg.withDefaults()
	const (
		imageSize   = 64 << 10
		chunksPerCk = 32
		benefactors = 16
	)
	managersSweep := []int{1, 2, 4}
	writersSweep := []int{16, 64}
	cellDur := 200 * time.Millisecond * time.Duration(cfg.Runs)

	type cell struct {
		Experiment string  `json:"experiment"`
		Managers   int     `json:"managers"`
		Writers    int     `json:"writers"`
		TPS        float64 `json:"tps"`
		Checkpoint float64 `json:"checkpointsPerSec"`
		MemberTxns []int64 `json:"memberTransactions"`
	}

	fmt.Fprintf(cfg.Out, "Federated metadata plane load (§V.E extension): %d-chunk checkpoints of %d KB over real sockets\n",
		chunksPerCk, imageSize>>10)
	fmt.Fprintf(cfg.Out, "GOMAXPROCS=%d (aggregate scaling needs enough CPUs to run the members in parallel)\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(cfg.Out, "%-9s %8s %12s %14s %22s\n", "managers", "writers", "tps", "ckpts/s", "member txn spread")

	var cells []cell
	tpsAt := make(map[[2]int]float64)
	for _, w := range writersSweep {
		for _, n := range managersSweep {
			res, err := fedLoadCell(n, w, cellDur, imageSize, chunksPerCk, benefactors)
			if err != nil {
				return fmt.Errorf("fedload %dx%d: %w", n, w, err)
			}
			fmt.Fprintf(cfg.Out, "%-9d %8d %12.0f %14.0f %22s\n",
				n, w, res.tps, res.ckps, fmtSpread(res.memberTxns))
			tpsAt[[2]int{n, w}] = res.tps
			cells = append(cells, cell{
				Experiment: "fedload", Managers: n, Writers: w,
				TPS: res.tps, Checkpoint: res.ckps, MemberTxns: res.memberTxns,
			})
		}
	}
	for _, w := range writersSweep {
		base := tpsAt[[2]int{1, w}]
		if base > 0 {
			fmt.Fprintf(cfg.Out, "aggregate tps at %d writers: %.2fx (2 managers), %.2fx (4 managers) vs one manager\n",
				w, tpsAt[[2]int{2, w}]/base, tpsAt[[2]int{4, w}]/base)
		}
	}
	fmt.Fprintf(cfg.Out, "paper: one manager sustains well over 1,000 transactions per second (§V.E); federation multiplies managers\n\n")

	if cfg.JSON != nil {
		enc := json.NewEncoder(cfg.JSON)
		for _, c := range cells {
			if err := enc.Encode(c); err != nil {
				return fmt.Errorf("fedload: json: %w", err)
			}
		}
	}
	return nil
}

func fmtSpread(txns []int64) string {
	s := ""
	for i, t := range txns {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprintf("%d", t)
	}
	return s
}

type fedLoadResult struct {
	tps        float64
	ckps       float64
	memberTxns []int64
}

// fedLoadCell runs one (managers, writers) configuration for roughly dur:
// a real federation over loopback TCP with a shared partition router.
func fedLoadCell(managers, writers int, dur time.Duration, imageSize int64, chunksPerCk, benefactors int) (fedLoadResult, error) {
	mgrs, members, err := manager.NewFederation(managers, manager.Config{
		HeartbeatInterval:   time.Hour, // load cells outlive no heartbeats
		ReplicationInterval: time.Hour,
		PruneInterval:       time.Hour,
		SessionTTL:          time.Hour,
	})
	if err != nil {
		return fedLoadResult{}, err
	}
	defer func() {
		for _, m := range mgrs {
			m.Close()
		}
	}()

	router, err := federation.NewRouter(federation.RouterConfig{Members: members})
	if err != nil {
		return fedLoadResult{}, err
	}
	defer router.Close()
	if err := router.CheckHealth(); err != nil {
		return fedLoadResult{}, fmt.Errorf("federation unhealthy at start: %w", err)
	}
	for i := 0; i < benefactors; i++ {
		req := proto.RegisterReq{
			ID:       core.NodeID(fmt.Sprintf("fd%02d:1", i)),
			Addr:     fmt.Sprintf("fd%02d:1", i),
			Capacity: 1 << 40,
			Free:     1 << 40,
		}
		if _, err := router.Register(req); err != nil {
			return fedLoadResult{}, err
		}
	}

	specs := workload.ManyWriters(42, writers, 0, imageSize)
	chunkSize := imageSize / int64(chunksPerCk)
	var ops atomic.Int64
	var errOnce sync.Once
	var loadErr error
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		go func(spec workload.WriterSpec) {
			defer wg.Done()
			for t := 0; time.Now().Before(deadline); t++ {
				n, err := driveRouterCheckpoint(router, spec.FileName(t), spec.Seed, t, chunksPerCk, chunkSize, spec.CbCH)
				ops.Add(n)
				if err != nil {
					errOnce.Do(func() { loadErr = err })
					return
				}
			}
		}(spec)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if loadErr != nil {
		return fedLoadResult{}, loadErr
	}
	memberTxns := make([]int64, len(mgrs))
	for i, m := range mgrs {
		memberTxns[i] = m.Stats().Transactions
	}
	total := float64(ops.Load())
	return fedLoadResult{
		tps:        total / elapsed.Seconds(),
		ckps:       total / manager.DriveCheckpointOps / elapsed.Seconds(),
		memberTxns: memberTxns,
	}, nil
}

// driveRouterCheckpoint pushes one synthetic writer checkpoint through
// the partition router over real sockets — the same five metadata RPCs
// and the same payload shape as manager.DriveCheckpoint, so managerload
// (in-process) and fedload (federated, on the wire) measure one workload.
func driveRouterCheckpoint(r *federation.Router, name string, seed int64, t, chunksPer int, chunkSize int64, variable bool) (int64, error) {
	var ops int64
	reserve := int64(chunksPer) * chunkSize / 2

	alloc, err := r.Alloc(proto.AllocReq{
		Name: name, StripeWidth: 4, ChunkSize: chunkSize,
		Variable: variable, ReserveBytes: reserve, Replication: 1,
	})
	ops++
	if err != nil {
		return ops, err
	}
	locs := make([]core.NodeID, 0, len(alloc.Stripe))
	for _, st := range alloc.Stripe {
		locs = append(locs, st.ID)
	}

	if _, err := r.Extend(name, proto.ExtendReq{WriteID: alloc.WriteID, Bytes: reserve}); err != nil {
		return ops + 1, err
	}
	ops++

	ids, chunks, fileSize := manager.BuildCheckpoint(seed, t, chunksPer, chunkSize, variable, locs)

	if _, err := r.HasChunks(name, ids); err != nil {
		return ops + 1, err
	}
	ops++

	if _, err := r.Commit(name, proto.CommitReq{WriteID: alloc.WriteID, FileSize: fileSize, Chunks: chunks}); err != nil {
		return ops + 1, err
	}
	ops++

	if _, err := r.GetMap(proto.GetMapReq{Name: name}); err != nil {
		return ops + 1, err
	}
	ops++
	return ops, nil
}
