package experiments

import (
	"fmt"
	"sync"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/metrics"
)

// Fig8 regenerates the scalability experiment (§V.F): 7 clients each
// write 100 files of 100 MB to a pool of 20 benefactors, clients starting
// at 10-second intervals. The paper sustains ≈280 MB/s aggregate, limited
// by the testbed's networking configuration — modelled here as a shared
// fabric cap.
func Fig8(cfg Config) error {
	cfg = cfg.withDefaults()
	const (
		clients       = 7
		filesPerCl    = 100
		paperFileSize = 100 << 20
		// The paper's sustained aggregate was fabric-limited at
		// ≈280 MB/s; the switch model carries that calibration.
		fabricBps = 280e6
	)
	fileSize := cfg.scaled(paperFileSize)
	stagger := time.Duration(int64(10*time.Second) / cfg.Scale)
	bucket := time.Duration(int64(10*time.Second) / cfg.Scale)
	if bucket < 50*time.Millisecond {
		bucket = 50 * time.Millisecond
	}
	files := filesPerCl
	if cfg.Scale > 8 {
		files = 30 // bound total wall time at small scales
	}

	c, err := paperCluster(20, fabricBps)
	if err != nil {
		return err
	}
	defer c.Close()

	agg := metrics.NewThroughput(bucket)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * stagger) // ramp-up
			cl, _, err := c.NewClient(client.Config{
				Protocol:    client.SlidingWindow,
				StripeWidth: 4,
				ChunkSize:   cfg.chunkSize(),
				BufferBytes: cfg.scaled(64 << 20),
				// Scaled so the eager-reservation protocol issues the
				// paper's ~4 manager transactions per 100 MB write.
				ReserveQuantum: cfg.scaled(32 << 20),
				Replication:    1,
				Semantics:      core.WriteOptimistic,
			}, device.PaperNode())
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			for f := 0; f < files; f++ {
				name := fmt.Sprintf("load.n%d.t%d", i, f)
				m, err := writeOnce(cl, name, fileSize, appBlock)
				if err != nil {
					errCh <- fmt.Errorf("client %d file %d: %w", i, f, err)
					return
				}
				agg.Add(m.Bytes)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	elapsed := time.Since(start)

	fmt.Fprintf(cfg.Out, "Figure 8: %d clients x %d files x %d MB over 20 benefactors (scaled 1/%d)\n",
		clients, files, fileSize>>20, cfg.Scale)
	fmt.Fprintf(cfg.Out, "%10s %12s\n", "t (bucket)", "MB/s")
	for _, p := range agg.Series() {
		fmt.Fprintf(cfg.Out, "%10v %12.1f\n", p.T, p.MBps)
	}
	fmt.Fprintf(cfg.Out, "total: %.1f MB in %v; sustained peak (3 buckets): %.1f MB/s\n",
		float64(agg.Total())/1e6, elapsed.Round(time.Millisecond), agg.SustainedPeak(3))
	stats := c.Manager.Stats()
	fmt.Fprintf(cfg.Out, "manager transactions: %d (%0.1f per write)\n",
		stats.Transactions, float64(stats.Transactions)/float64(clients*files))
	fmt.Fprintf(cfg.Out, "paper: sustained ≈280 MB/s (fabric-limited), ≈2800 transactions for 700 writes\n\n")
	return nil
}
