package store

import (
	"testing"

	"stdchk/internal/core"
)

// BenchmarkStorePutGet measures the steady-state store hot path: store one
// 1 MB chunk, read it back, delete it.
func BenchmarkStorePutGet(b *testing.B) {
	s := NewMemory(0, nil)
	defer s.Close()
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 7)
	}
	id := core.HashChunk(data)
	dst := make([]byte, 0, len(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		retained, err := s.Put(id, data)
		if err != nil {
			b.Fatal(err)
		}
		got, err := s.GetInto(id, dst)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(data) {
			b.Fatal("short read")
		}
		if err := s.Delete(id); err != nil {
			b.Fatal(err)
		}
		if retained {
			// The store took ownership; hand a fresh copy in next round.
			data = append([]byte(nil), got...)
		}
	}
}
