// Package store implements the chunk storage a benefactor contributes:
// content-addressed chunk persistence with integrity verification, capacity
// accounting and the inventory listing used by the manager's garbage
// collection protocol (paper §IV.A).
//
// Two implementations are provided: an in-memory store (tests, simulation)
// and a disk-backed store (daemon deployments). Both verify that chunk
// bytes match their content-based name, which is stdchk's defence against
// faulty or malicious benefactors (paper §IV.C).
//
// The interface is zero-copy friendly: Put may take ownership of the
// caller's buffer instead of copying it (reported via its retained
// result), and GetInto serves reads into a caller-provided buffer so the
// steady-state read path allocates nothing.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"stdchk/internal/core"
	"stdchk/internal/device"
)

// Store is the benefactor-side chunk repository.
type Store interface {
	// Put stores a chunk under its content-based name, verifying
	// integrity. Storing an already-present chunk is a no-op. The store
	// may take ownership of data instead of copying it; retained reports
	// that, and a caller recycling buffers must not reuse data once it
	// has been retained.
	Put(id core.ChunkID, data []byte) (retained bool, err error)
	// Get returns a copy of the chunk bytes. core.ErrNotFound if absent.
	Get(id core.ChunkID) ([]byte, error)
	// GetInto returns the chunk bytes, served into dst when cap(dst) is
	// large enough (the result then aliases dst); otherwise a fresh
	// buffer is allocated. core.ErrNotFound if absent.
	GetInto(id core.ChunkID, dst []byte) ([]byte, error)
	// Has reports presence without transferring data.
	Has(id core.ChunkID) bool
	// Size returns the stored size of a chunk without transferring data,
	// so callers can size read buffers exactly. ok is false if absent.
	Size(id core.ChunkID) (size int64, ok bool)
	// Delete removes a chunk. Deleting an absent chunk is a no-op.
	Delete(id core.ChunkID) error
	// Inventory lists all stored chunk IDs (sorted, for determinism).
	Inventory() []core.ChunkID
	// Used returns the stored byte total.
	Used() int64
	// Capacity returns the configured byte capacity (0 = unlimited).
	Capacity() int64
	// Len returns the number of stored chunks.
	Len() int
	// Close releases resources.
	Close() error
}

// Memory is an in-memory Store paced by an optional disk model, so a
// simulated benefactor exhibits the paper's disk bandwidth without
// physical I/O.
type Memory struct {
	disk     *device.Disk
	capacity int64

	mu     sync.RWMutex
	chunks map[core.ChunkID][]byte
	used   int64
	closed bool
}

var _ Store = (*Memory)(nil)

// NewMemory returns an in-memory store with the given capacity in bytes
// (0 = unlimited), paced by disk (nil = unpaced).
func NewMemory(capacity int64, disk *device.Disk) *Memory {
	return &Memory{
		disk:     disk,
		capacity: capacity,
		chunks:   make(map[core.ChunkID][]byte),
	}
}

// Put implements Store. The memory store takes ownership of data (it keeps
// the slice as the stored chunk, saving a 1 MB copy per chunk on the write
// path); callers must not mutate the buffer after a retained Put.
func (m *Memory) Put(id core.ChunkID, data []byte) (bool, error) {
	if core.HashChunk(data) != id {
		return false, fmt.Errorf("put %s: %w", id.Short(), core.ErrIntegrity)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false, core.ErrClosed
	}
	if _, ok := m.chunks[id]; ok {
		m.mu.Unlock()
		return false, nil
	}
	if m.capacity > 0 && m.used+int64(len(data)) > m.capacity {
		m.mu.Unlock()
		return false, fmt.Errorf("put %s (%d bytes): %w", id.Short(), len(data), core.ErrNoSpace)
	}
	m.chunks[id] = data
	m.used += int64(len(data))
	m.mu.Unlock()

	m.disk.Write(len(data)) // pace outside the lock: the spindle queue serializes
	return true, nil
}

// Get implements Store.
func (m *Memory) Get(id core.ChunkID) ([]byte, error) {
	return m.GetInto(id, nil)
}

// GetInto implements Store: the chunk is copied into dst when it fits
// (stored bytes are never aliased out, so callers can mutate the result).
func (m *Memory) GetInto(id core.ChunkID, dst []byte) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.chunks[id]
	closed := m.closed
	m.mu.RUnlock()
	if closed {
		return nil, core.ErrClosed
	}
	if !ok {
		return nil, fmt.Errorf("get %s: %w", id.Short(), core.ErrNotFound)
	}
	m.disk.Read(len(data))
	if cap(dst) >= len(data) {
		dst = dst[:len(data)]
		copy(dst, data)
		return dst, nil
	}
	return append([]byte(nil), data...), nil
}

// Has implements Store.
func (m *Memory) Has(id core.ChunkID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.chunks[id]
	return ok
}

// Size implements Store.
func (m *Memory) Size(id core.ChunkID) (int64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.chunks[id]
	return int64(len(data)), ok
}

// Delete implements Store.
func (m *Memory) Delete(id core.ChunkID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return core.ErrClosed
	}
	if data, ok := m.chunks[id]; ok {
		m.used -= int64(len(data))
		delete(m.chunks, id)
	}
	return nil
}

// Inventory implements Store.
func (m *Memory) Inventory() []core.ChunkID {
	m.mu.RLock()
	ids := make([]core.ChunkID, 0, len(m.chunks))
	for id := range m.chunks {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	sortIDs(ids)
	return ids
}

// Used implements Store.
func (m *Memory) Used() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used
}

// Capacity implements Store.
func (m *Memory) Capacity() int64 { return m.capacity }

// Len implements Store.
func (m *Memory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.chunks)
}

// Close implements Store.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.chunks = nil
	m.used = 0
	return nil
}

// Disk is a file-backed Store: each chunk is a file named by its hex hash
// under a two-level fan-out directory, the layout used by content-addressed
// stores to keep directories small.
type Disk struct {
	dir      string
	capacity int64
	model    *device.Disk

	mu     sync.Mutex
	index  map[core.ChunkID]int64 // id -> size
	used   int64
	closed bool
}

var _ Store = (*Disk)(nil)

// OpenDisk opens (creating if necessary) a disk store rooted at dir and
// rebuilds its index from the existing files, so a restarted benefactor
// re-offers its chunks (the GC protocol reconciles them with the manager).
func OpenDisk(dir string, capacity int64, model *device.Disk) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("open disk store: %w", err)
	}
	d := &Disk{
		dir:      dir,
		capacity: capacity,
		model:    model,
		index:    make(map[core.ChunkID]int64),
	}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		id, perr := core.ParseChunkID(info.Name())
		if perr != nil {
			return nil // foreign file; ignore
		}
		d.index[id] = info.Size()
		d.used += info.Size()
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("index disk store: %w", err)
	}
	return d, nil
}

func (d *Disk) path(id core.ChunkID) string {
	name := id.String()
	return filepath.Join(d.dir, name[:2], name)
}

// Put implements Store. The disk store writes data out and never retains
// the slice, so it always reports retained=false.
func (d *Disk) Put(id core.ChunkID, data []byte) (bool, error) {
	if core.HashChunk(data) != id {
		return false, fmt.Errorf("put %s: %w", id.Short(), core.ErrIntegrity)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return false, core.ErrClosed
	}
	if _, ok := d.index[id]; ok {
		d.mu.Unlock()
		return false, nil
	}
	if d.capacity > 0 && d.used+int64(len(data)) > d.capacity {
		d.mu.Unlock()
		return false, fmt.Errorf("put %s (%d bytes): %w", id.Short(), len(data), core.ErrNoSpace)
	}
	// Reserve the space under the lock; write the file outside it.
	d.index[id] = int64(len(data))
	d.used += int64(len(data))
	d.mu.Unlock()

	path := d.path(id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		d.unindex(id, int64(len(data)))
		return false, fmt.Errorf("put %s: %w", id.Short(), err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		d.unindex(id, int64(len(data)))
		return false, fmt.Errorf("put %s: %w", id.Short(), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		d.unindex(id, int64(len(data)))
		return false, fmt.Errorf("put %s: %w", id.Short(), err)
	}
	d.model.Write(len(data))
	return false, nil
}

func (d *Disk) unindex(id core.ChunkID, size int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.index[id]; ok {
		delete(d.index, id)
		d.used -= size
	}
}

// Get implements Store.
func (d *Disk) Get(id core.ChunkID) ([]byte, error) {
	return d.GetInto(id, nil)
}

// GetInto implements Store: the chunk file is read directly into dst when
// it fits, so pooled read buffers make the serve path allocation-free.
func (d *Disk) GetInto(id core.ChunkID, dst []byte) ([]byte, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, core.ErrClosed
	}
	size, ok := d.index[id]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("get %s: %w", id.Short(), core.ErrNotFound)
	}
	f, err := os.Open(d.path(id))
	if err != nil {
		return nil, fmt.Errorf("get %s: %w", id.Short(), err)
	}
	defer f.Close()
	if int64(cap(dst)) >= size {
		dst = dst[:size]
	} else {
		dst = make([]byte, size)
	}
	if _, err := io.ReadFull(f, dst); err != nil {
		return nil, fmt.Errorf("get %s: %w", id.Short(), err)
	}
	if core.HashChunk(dst) != id {
		return nil, fmt.Errorf("get %s: %w", id.Short(), core.ErrIntegrity)
	}
	d.model.Read(len(dst))
	return dst, nil
}

// Has implements Store.
func (d *Disk) Has(id core.ChunkID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.index[id]
	return ok
}

// Size implements Store.
func (d *Disk) Size(id core.ChunkID) (int64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	size, ok := d.index[id]
	return size, ok
}

// Delete implements Store.
func (d *Disk) Delete(id core.ChunkID) error {
	d.mu.Lock()
	size, ok := d.index[id]
	if ok {
		delete(d.index, id)
		d.used -= size
	}
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return core.ErrClosed
	}
	if !ok {
		return nil
	}
	if err := os.Remove(d.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("delete %s: %w", id.Short(), err)
	}
	return nil
}

// Inventory implements Store.
func (d *Disk) Inventory() []core.ChunkID {
	d.mu.Lock()
	ids := make([]core.ChunkID, 0, len(d.index))
	for id := range d.index {
		ids = append(ids, id)
	}
	d.mu.Unlock()
	sortIDs(ids)
	return ids
}

// Used implements Store.
func (d *Disk) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Capacity implements Store.
func (d *Disk) Capacity() int64 { return d.capacity }

// Len implements Store.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

func sortIDs(ids []core.ChunkID) {
	sort.Slice(ids, func(i, j int) bool {
		for k := range ids[i] {
			if ids[i][k] != ids[j][k] {
				return ids[i][k] < ids[j][k]
			}
		}
		return false
	})
}
