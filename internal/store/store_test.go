package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"stdchk/internal/core"
)

// stores returns one of each implementation, fresh, for table-driven tests.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"memory": NewMemory(0, nil),
		"disk":   disk,
	}
}

func chunk(seed int64, n int) (core.ChunkID, []byte) {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return core.HashChunk(b), b
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			id, data := chunk(1, 4096)
			if _, err := s.Put(id, data); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("payload mismatch")
			}
			if !s.Has(id) {
				t.Fatal("Has() false after Put")
			}
			if s.Used() != 4096 || s.Len() != 1 {
				t.Fatalf("Used=%d Len=%d", s.Used(), s.Len())
			}
		})
	}
}

func TestPutRejectsCorruptChunk(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			_, data := chunk(2, 128)
			var bogus core.ChunkID
			bogus[0] = 0xde
			if _, err := s.Put(bogus, data); !errors.Is(err, core.ErrIntegrity) {
				t.Fatalf("want ErrIntegrity, got %v", err)
			}
			if s.Len() != 0 {
				t.Fatal("corrupt chunk was stored")
			}
		})
	}
}

func TestPutIdempotent(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			id, data := chunk(3, 1024)
			for i := 0; i < 3; i++ {
				if _, err := s.Put(id, data); err != nil {
					t.Fatal(err)
				}
			}
			if s.Used() != 1024 || s.Len() != 1 {
				t.Fatalf("duplicate Put changed accounting: Used=%d Len=%d", s.Used(), s.Len())
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			id, _ := chunk(4, 10)
			if _, err := s.Get(id); !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("want ErrNotFound, got %v", err)
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			id, data := chunk(5, 512)
			if _, err := s.Put(id, data); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(id); err != nil {
				t.Fatal(err)
			}
			if s.Has(id) || s.Used() != 0 || s.Len() != 0 {
				t.Fatal("chunk survives Delete")
			}
			// Deleting again is a no-op.
			if err := s.Delete(id); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCapacityEnforced(t *testing.T) {
	mem := NewMemory(1000, nil)
	defer mem.Close()
	disk, err := OpenDisk(t.TempDir(), 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	for name, s := range map[string]Store{"memory": mem, "disk": disk} {
		t.Run(name, func(t *testing.T) {
			id1, d1 := chunk(6, 600)
			if _, err := s.Put(id1, d1); err != nil {
				t.Fatal(err)
			}
			id2, d2 := chunk(7, 600)
			if _, err := s.Put(id2, d2); !errors.Is(err, core.ErrNoSpace) {
				t.Fatalf("want ErrNoSpace, got %v", err)
			}
			if s.Capacity() != 1000 {
				t.Fatalf("Capacity() = %d", s.Capacity())
			}
			// Freeing space allows the put to succeed.
			if err := s.Delete(id1); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Put(id2, d2); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInventorySorted(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			want := 20
			for i := 0; i < want; i++ {
				id, data := chunk(int64(100+i), 64)
				if _, err := s.Put(id, data); err != nil {
					t.Fatal(err)
				}
			}
			inv := s.Inventory()
			if len(inv) != want {
				t.Fatalf("inventory has %d ids, want %d", len(inv), want)
			}
			for i := 1; i < len(inv); i++ {
				if bytes.Compare(inv[i-1][:], inv[i][:]) >= 0 {
					t.Fatal("inventory not sorted")
				}
			}
		})
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			id, data := chunk(8, 64)
			if _, err := s.Put(id, data); err != nil {
				t.Fatal(err)
			}
			s.Close()
			if _, err := s.Put(id, data); !errors.Is(err, core.ErrClosed) {
				t.Fatalf("Put after close: %v", err)
			}
			if _, err := s.Get(id); !errors.Is(err, core.ErrClosed) {
				t.Fatalf("Get after close: %v", err)
			}
			if err := s.Delete(id); !errors.Is(err, core.ErrClosed) {
				t.Fatalf("Delete after close: %v", err)
			}
		})
	}
}

func TestDiskStoreReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ids []core.ChunkID
	var payloads [][]byte
	for i := 0; i < 5; i++ {
		id, data := chunk(int64(200+i), 256)
		if _, err := d1.Put(id, data); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		payloads = append(payloads, data)
	}
	d1.Close()

	d2, err := OpenDisk(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 5 || d2.Used() != 5*256 {
		t.Fatalf("reopened store: Len=%d Used=%d", d2.Len(), d2.Used())
	}
	for i, id := range ids {
		got, err := d2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatal("payload corrupted across reopen")
		}
	}
}

func TestMemoryOwnershipAndReadIsolation(t *testing.T) {
	s := NewMemory(0, nil)
	defer s.Close()
	id, data := chunk(9, 64)
	retained, err := s.Put(id, data)
	if err != nil {
		t.Fatal(err)
	}
	if !retained {
		t.Fatal("memory store should take ownership of a new chunk's buffer")
	}
	// A duplicate put must not be retained (the caller keeps the buffer).
	dup := append([]byte(nil), data...)
	retained, err = s.Put(id, dup)
	if err != nil {
		t.Fatal(err)
	}
	if retained {
		t.Fatal("duplicate Put retained the caller's buffer")
	}
	// Reads never alias the stored bytes: mutating the result is safe.
	got, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	got[1] ^= 0xff
	again, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if core.HashChunk(again) != id {
		t.Fatal("store returned its internal buffer")
	}
}

func TestGetIntoServesCallerBuffer(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			defer s.Close()
			id, data := chunk(11, 4096)
			if _, err := s.Put(id, append([]byte(nil), data...)); err != nil {
				t.Fatal(err)
			}
			// Large enough: the result must alias dst (no allocation).
			dst := make([]byte, 0, 8192)
			got, err := s.GetInto(id, dst)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("payload mismatch")
			}
			if &got[0] != &dst[:1][0] {
				t.Fatal("GetInto did not serve into the caller's buffer")
			}
			// Too small: the store allocates a fresh buffer.
			small := make([]byte, 0, 16)
			got, err = s.GetInto(id, small)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("payload mismatch after grow")
			}
		})
	}
}

func TestStorePropertyRandomOps(t *testing.T) {
	f := func(seeds []int64) bool {
		if len(seeds) > 24 {
			seeds = seeds[:24]
		}
		s := NewMemory(0, nil)
		defer s.Close()
		live := make(map[core.ChunkID][]byte)
		for _, seed := range seeds {
			size := int(uint64(seed) % 977)
			id, data := chunk(seed, size+1)
			switch uint64(seed) % 3 {
			case 0, 1:
				if _, err := s.Put(id, data); err != nil {
					return false
				}
				live[id] = data
			case 2:
				if err := s.Delete(id); err != nil {
					return false
				}
				delete(live, id)
			}
		}
		if s.Len() != len(live) {
			return false
		}
		var want int64
		for id, data := range live {
			want += int64(len(data))
			got, err := s.Get(id)
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return s.Used() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := NewMemory(0, nil)
	defer s.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				id, data := chunk(int64(i*1000+j), 512)
				if _, err := s.Put(id, data); err != nil {
					errs <- err
					return
				}
				got, err := s.Get(id)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("mismatch on %s", id.Short())
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
