package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestMBps(t *testing.T) {
	if got := MBps(1e6, time.Second); got != 1.0 {
		t.Fatalf("MBps(1MB, 1s) = %v", got)
	}
	if got := MBps(5e6, 2*time.Second); got != 2.5 {
		t.Fatalf("MBps(5MB, 2s) = %v", got)
	}
	if got := MBps(100, 0); got != 0 {
		t.Fatalf("MBps zero duration = %v", got)
	}
}

func TestThroughputSeries(t *testing.T) {
	tp := NewThroughput(20 * time.Millisecond)
	tp.Add(1000)
	time.Sleep(25 * time.Millisecond)
	tp.Add(2000)
	series := tp.Series()
	if len(series) < 2 {
		t.Fatalf("series has %d buckets, want >= 2", len(series))
	}
	if tp.Total() != 3000 {
		t.Fatalf("Total = %d", tp.Total())
	}
	if series[0].T != 0 || series[1].T != 20*time.Millisecond {
		t.Fatalf("bucket offsets: %v %v", series[0].T, series[1].T)
	}
}

func TestThroughputPeakAndSustained(t *testing.T) {
	tp := NewThroughput(10 * time.Millisecond)
	tp.Add(10e6) // one hot bucket
	if tp.Peak() <= 0 {
		t.Fatal("no peak recorded")
	}
	// Sustained over 3 buckets is smaller than the single-bucket peak
	// when only one bucket is hot.
	time.Sleep(35 * time.Millisecond)
	tp.Add(1)
	if s := tp.SustainedPeak(3); s > tp.Peak() {
		t.Fatalf("sustained %v > peak %v", s, tp.Peak())
	}
	if s := tp.SustainedPeak(1); s != tp.Peak() {
		t.Fatalf("window 1 sustained %v != peak %v", s, tp.Peak())
	}
	if s := NewThroughput(time.Second).SustainedPeak(5); s != 0 {
		t.Fatalf("empty sustained = %v", s)
	}
}

func TestThroughputConcurrent(t *testing.T) {
	tp := NewThroughput(time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tp.Add(10)
			}
		}()
	}
	wg.Wait()
	if tp.Total() != 8000 {
		t.Fatalf("Total = %d, want 8000", tp.Total())
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Fatal("empty summary not zero")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample stddev of this classic set is ~2.138.
	if got := s.StdDev(); math.Abs(got-2.138) > 0.01 {
		t.Fatalf("StdDev = %v, want ~2.138", got)
	}
}
