package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramPercentiles(t *testing.T) {
	var h LatencyHistogram
	// 90 fast samples (~100µs) and 10 slow (~100ms): p50 must sit near
	// the fast mode, p99 near the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	count, sum, buckets := h.Snapshot()
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	if sum <= 0 {
		t.Fatalf("sum = %d", sum)
	}
	p50 := Percentile(buckets, 0.50)
	p99 := Percentile(buckets, 0.99)
	if p50 < 50*time.Microsecond || p50 > 300*time.Microsecond {
		t.Fatalf("p50 = %v, want ~100µs", p50)
	}
	if p99 < 50*time.Millisecond || p99 > 300*time.Millisecond {
		t.Fatalf("p99 = %v, want ~100ms", p99)
	}
	if p999 := Percentile(buckets, 0.999); p999 < p99 {
		t.Fatalf("p999 %v < p99 %v", p999, p99)
	}
}

func TestLatencyHistogramConcurrent(t *testing.T) {
	var h LatencyHistogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	count, _, buckets := h.Snapshot()
	if count != 8000 {
		t.Fatalf("count = %d", count)
	}
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total != 8000 {
		t.Fatalf("bucket total = %d", total)
	}
}

func TestMergeBuckets(t *testing.T) {
	a := []int64{1, 2}
	b := []int64{0, 1, 5}
	m := MergeBuckets(a, b)
	want := []int64{1, 3, 5}
	if len(m) != len(want) {
		t.Fatalf("len = %d", len(m))
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("m[%d] = %d, want %d", i, m[i], want[i])
		}
	}
	if Percentile(nil, 0.99) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}
