// Package metrics provides the measurements the paper's evaluation
// reports: observed application bandwidth (OAB), achieved storage
// bandwidth (ASB), and time-bucketed aggregate throughput (the §V.F
// scalability timeseries).
package metrics

import (
	"math"
	"sync"
	"time"
)

// MBps converts (bytes, duration) to decimal megabytes per second, the
// paper's unit.
func MBps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}

// Throughput accumulates transferred bytes into fixed-width time buckets,
// producing the aggregate-throughput-over-time series of Figure 8.
type Throughput struct {
	bucket time.Duration

	mu      sync.Mutex
	start   time.Time
	buckets []int64
}

// NewThroughput returns a collector with the given bucket width.
func NewThroughput(bucket time.Duration) *Throughput {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Throughput{bucket: bucket, start: time.Now()}
}

// Add records n bytes transferred now.
func (t *Throughput) Add(n int64) {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := int(now.Sub(t.start) / t.bucket)
	for len(t.buckets) <= idx {
		t.buckets = append(t.buckets, 0)
	}
	t.buckets[idx] += n
}

// Point is one bucket of the throughput series.
type Point struct {
	// T is the bucket's start offset from collection start.
	T time.Duration
	// MBps is the bucket's average throughput.
	MBps float64
}

// Series snapshots the buckets as (time, MB/s) points.
func (t *Throughput) Series() []Point {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Point, len(t.buckets))
	for i, b := range t.buckets {
		out[i] = Point{
			T:    time.Duration(i) * t.bucket,
			MBps: MBps(b, t.bucket),
		}
	}
	return out
}

// Peak returns the maximum bucket throughput.
func (t *Throughput) Peak() float64 {
	peak := 0.0
	for _, p := range t.Series() {
		if p.MBps > peak {
			peak = p.MBps
		}
	}
	return peak
}

// SustainedPeak returns the maximum throughput sustained over `window`
// consecutive buckets (a fairer "sustained peak" than a single bucket).
func (t *Throughput) SustainedPeak(window int) float64 {
	if window <= 1 {
		return t.Peak()
	}
	series := t.Series()
	if len(series) < window {
		window = len(series)
	}
	if window == 0 {
		return 0
	}
	best := 0.0
	sum := 0.0
	for i, p := range series {
		sum += p.MBps
		if i >= window {
			sum -= series[i-window].MBps
		}
		if i >= window-1 {
			if avg := sum / float64(window); avg > best {
				best = avg
			}
		}
	}
	return best
}

// Total returns the total bytes recorded.
func (t *Throughput) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for _, b := range t.buckets {
		total += b
	}
	return total
}

// Summary aggregates repeated scalar measurements (the paper reports
// averages and standard deviations over 20 runs).
type Summary struct {
	mu     sync.Mutex
	values []float64
}

// Add records one measurement.
func (s *Summary) Add(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.values = append(s.values, v)
}

// N returns the number of measurements.
func (s *Summary) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.values)
}

// Mean returns the average.
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range s.values {
		mean += v
	}
	mean /= float64(n)
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}
