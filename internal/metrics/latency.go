package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the number of log2-spaced microsecond buckets a
// LatencyHistogram carries: bucket i counts observations in
// [2^i, 2^(i+1)) µs, so 40 buckets span sub-microsecond to ~12 days —
// every latency this system can produce.
const LatencyBuckets = 40

// LatencyHistogram is a lock-free log2 latency histogram. Observe is
// wait-free (three atomic adds), so it can sit on the manager's request
// path and inside an open-loop load generator without perturbing the
// latencies it measures. The zero value is ready to use.
type LatencyHistogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // microseconds
	buckets [LatencyBuckets]atomic.Int64
}

// latencyBucket maps a duration to its log2-µs bucket index.
func latencyBucket(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(d.Microseconds())
	h.buckets[latencyBucket(d)].Add(1)
}

// Count returns the number of samples observed.
func (h *LatencyHistogram) Count() int64 { return h.count.Load() }

// Snapshot returns the histogram's current counters as a wire-friendly
// (count, sumMicros, buckets) triple; trailing empty buckets are trimmed.
func (h *LatencyHistogram) Snapshot() (count, sumMicros int64, buckets []int64) {
	count = h.count.Load()
	sumMicros = h.sum.Load()
	last := -1
	var full [LatencyBuckets]int64
	for i := range h.buckets {
		full[i] = h.buckets[i].Load()
		if full[i] > 0 {
			last = i
		}
	}
	if last < 0 {
		return count, sumMicros, nil
	}
	return count, sumMicros, append([]int64(nil), full[:last+1]...)
}

// Percentile returns the q-quantile (0 < q ≤ 1) latency from log2-µs
// buckets, interpolating linearly within the winning bucket. It is the
// decode half of Snapshot: use it on LatencyStats that crossed the wire
// or were merged across federation members.
func Percentile(buckets []int64, q float64) time.Duration {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		if seen+c > rank {
			lo := int64(1) << uint(i) // bucket lower bound, µs
			hi := lo << 1
			frac := float64(rank-seen) / float64(c)
			us := float64(lo) + frac*float64(hi-lo)
			return time.Duration(us * float64(time.Microsecond))
		}
		seen += c
	}
	return 0
}

// MergeBuckets adds src element-wise into dst, growing dst as needed —
// the federation-side combiner for per-member LatencyStats.
func MergeBuckets(dst, src []int64) []int64 {
	if len(src) > len(dst) {
		grown := make([]int64, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, c := range src {
		dst[i] += c
	}
	return dst
}
