package workload

import (
	"fmt"
	"time"
)

// CheckpointSink is where a simulated application run stores its images.
// WriteImage returns the wall-clock duration the application was blocked
// by the checkpoint and the number of bytes that actually had to be stored
// (after any dedup).
type CheckpointSink interface {
	WriteImage(name string, img []byte) (blocked time.Duration, stored int64, err error)
}

// RunParams configure an end-to-end application run (the Table 5
// experiment: BLAST checkpointing periodically to local disk vs stdchk).
type RunParams struct {
	// Trace supplies the checkpoint images in order.
	Trace *Trace
	// ComputePerPhase is the virtual compute time between checkpoints.
	// It is accounted, not slept: Table 5's total-time comparison needs
	// the compute:checkpoint ratio, not a week of wall clock.
	ComputePerPhase time.Duration
	// NamePattern formats the checkpoint file name for timestep i.
	NamePattern string
}

// RunResult aggregates the Table 5 row quantities.
type RunResult struct {
	// TotalTime is virtual compute plus measured checkpoint time.
	TotalTime time.Duration
	// CheckpointTime is the time the application spent blocked on
	// checkpoints.
	CheckpointTime time.Duration
	// DataBytes is the logical volume of checkpoint data produced.
	DataBytes int64
	// StoredBytes is the volume actually stored (post-dedup).
	StoredBytes int64
	// Checkpoints is the number of images written.
	Checkpoints int
}

// Improvement returns the percentage improvement of this result over a
// baseline for the three Table 5 rows: total time, checkpoint time, data
// size.
func (r RunResult) Improvement(base RunResult) (totalPct, ckptPct, dataPct float64) {
	pct := func(baseV, v float64) float64 {
		if baseV == 0 {
			return 0
		}
		return 100 * (baseV - v) / baseV
	}
	return pct(base.TotalTime.Seconds(), r.TotalTime.Seconds()),
		pct(base.CheckpointTime.Seconds(), r.CheckpointTime.Seconds()),
		pct(float64(base.StoredBytes), float64(r.StoredBytes))
}

// SimulateRun drives the trace through a sink, modelling an application
// with distinct compute and checkpoint phases (paper §III.A).
func SimulateRun(p RunParams, sink CheckpointSink) (RunResult, error) {
	if p.Trace == nil || sink == nil {
		return RunResult{}, fmt.Errorf("workload: trace and sink are required")
	}
	if p.NamePattern == "" {
		p.NamePattern = "blast.n1.t%d"
	}
	var res RunResult
	for i, img := range p.Trace.Images {
		res.TotalTime += p.ComputePerPhase // compute phase (virtual)
		name := fmt.Sprintf(p.NamePattern, i)
		blocked, stored, err := sink.WriteImage(name, img)
		if err != nil {
			return res, fmt.Errorf("workload: checkpoint %d: %w", i, err)
		}
		res.TotalTime += blocked
		res.CheckpointTime += blocked
		res.DataBytes += int64(len(img))
		res.StoredBytes += stored
		res.Checkpoints++
	}
	return res, nil
}
