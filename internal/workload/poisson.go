package workload

import (
	"math"
	"math/rand"
	"time"
)

// PoissonSchedule generates the arrival offsets of an open-loop load
// test: n events whose inter-arrival gaps are exponentially distributed
// around 1/rate (a Poisson process), the standard model for independent
// clients hitting a shared service. Offsets are measured from the start
// of the run and strictly non-decreasing. Deterministic in seed.
//
// Open-loop is the point: arrivals do NOT wait for completions, so a
// slow server faces a growing backlog exactly as a production service
// would — closed-loop drivers (each writer waits for itself) can never
// observe that regime, which is why latency-vs-offered-load curves need
// this schedule rather than the ManyWriters spec list.
func PoissonSchedule(seed int64, rate float64, n int) []time.Duration {
	if n <= 0 || rate <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]time.Duration, n)
	var t float64 // seconds
	for i := range out {
		// Inverse-CDF sample of Exp(rate); 1-U avoids log(0).
		gap := -math.Log(1-rng.Float64()) / rate
		t += gap
		out[i] = time.Duration(t * float64(time.Second))
	}
	return out
}
