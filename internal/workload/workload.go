// Package workload generates synthetic checkpoint-image traces with the
// statistical structure of the paper's three real workloads (§V.E,
// Table 2):
//
//   - BMS, application-level checkpointing: the application writes its own
//     ideally-compressed state, so successive images share nothing a
//     compare-by-hash heuristic can find.
//   - BLAST under BLCR, library-level checkpointing: a process address
//     space. Much of the image is identical between checkpoints, but
//     dynamic regions grow and shrink, shifting the byte offsets of the
//     stable content that follows them. Offset-sensitive heuristics
//     (FsCH) therefore find only the aligned prefix fraction, while
//     content-anchored CbCH finds nearly all of it — the paper's central
//     Table 3 contrast.
//   - BLAST under Xen, VM-level checkpointing: Xen dumps memory pages in
//     essentially random order and prepends per-page metadata, destroying
//     detectable similarity for every heuristic (the paper's "surprising
//     result").
//
// Images are deterministic functions of (seed, version), so traces are
// reproducible without storing multi-GB fixtures.
package workload

import (
	"encoding/binary"
	"math/rand"
	"time"
)

// Trace is a sequence of checkpoint images of one application.
type Trace struct {
	// Application is the workload label, e.g. "BMS" or "BLAST".
	Application string
	// Type is the checkpointing technique ("application", "library
	// (BLCR)", "VM (Xen)").
	Type string
	// Interval is the checkpoint interval the trace models.
	Interval time.Duration
	// Images are the successive checkpoint images.
	Images [][]byte
}

// Count returns the number of checkpoints.
func (t *Trace) Count() int { return len(t.Images) }

// AvgSizeMB returns the average image size in decimal MB (Table 2 column).
func (t *Trace) AvgSizeMB() float64 {
	if len(t.Images) == 0 {
		return 0
	}
	var total int64
	for _, img := range t.Images {
		total += int64(len(img))
	}
	return float64(total) / 1e6 / float64(len(t.Images))
}

// TotalBytes returns the cumulative trace size.
func (t *Trace) TotalBytes() int64 {
	var total int64
	for _, img := range t.Images {
		total += int64(len(img))
	}
	return total
}

// fill writes deterministic high-entropy bytes.
func fill(rng *rand.Rand, b []byte) {
	// rand.Read never fails for math/rand.
	rng.Read(b)
}

// AppLevel generates a BMS-style application-level trace: every image is
// freshly "compressed" state with no inter-version similarity.
func AppLevel(seed int64, images int, size int64) *Trace {
	t := &Trace{
		Application: "BMS",
		Type:        "application",
		Interval:    time.Minute,
		Images:      make([][]byte, 0, images),
	}
	for v := 0; v < images; v++ {
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(v)))
		img := make([]byte, size)
		fill(rng, img)
		t.Images = append(t.Images, img)
	}
	return t
}

// BLCRParams shape a library-level (process address space) trace.
type BLCRParams struct {
	// Seed selects the dataset.
	Seed int64
	// Images is the number of checkpoints.
	Images int
	// Size is the approximate image size in bytes.
	Size int64
	// AlignedFrac is the fraction of bytes that stay identical at
	// identical offsets across versions: stable mmapped regions ahead of
	// any size-changing region. Only this fraction is visible to FsCH.
	AlignedFrac float64
	// StableFrac is the fraction of bytes whose content survives between
	// versions but whose offsets shift because dynamic regions before
	// them changed size. Content-anchored (overlap) CbCH sees
	// AlignedFrac+StableFrac.
	StableFrac float64
	// Interval annotates the trace.
	Interval time.Duration
}

// BLCR5Min is the paper's BLAST+BLCR 5-minute-interval calibration:
// FsCH detects ≈25%, overlap CbCH ≈84% (Table 3).
func BLCR5Min(seed int64, images int, size int64) *Trace {
	return BLCR(BLCRParams{
		Seed: seed, Images: images, Size: size,
		AlignedFrac: 0.25, StableFrac: 0.60,
		Interval: 5 * time.Minute,
	})
}

// BLCR15Min is the 15-minute-interval calibration: more drift between
// checkpoints; FsCH ≈8%, overlap CbCH ≈70% (Table 3).
func BLCR15Min(seed int64, images int, size int64) *Trace {
	return BLCR(BLCRParams{
		Seed: seed, Images: images, Size: size,
		AlignedFrac: 0.08, StableFrac: 0.63,
		Interval: 15 * time.Minute,
	})
}

// BLCRShortInterval models high-frequency checkpointing (the Table 5
// end-to-end run, checkpointing every 30 time units): most of the image is
// untouched and unshifted, so even FsCH dedups ≈70% of the data.
func BLCRShortInterval(seed int64, images int, size int64) *Trace {
	return BLCR(BLCRParams{
		Seed: seed, Images: images, Size: size,
		AlignedFrac: 0.72, StableFrac: 0.18,
		Interval: 30 * time.Second,
	})
}

// BLCR generates a library-level trace from explicit parameters.
//
// Image layout: [aligned zone][dynamic pad | stable zone]... The aligned
// zone and the stable zones keep their content across versions; the pads
// are rewritten fresh each version and vary in size, shifting every stable
// zone behind them by a few bytes.
func BLCR(p BLCRParams) *Trace {
	if p.Images <= 0 || p.Size <= 0 {
		return &Trace{Application: "BLAST", Type: "library (BLCR)", Interval: p.Interval}
	}
	base := rand.New(rand.NewSource(p.Seed))

	alignedLen := int64(float64(p.Size) * p.AlignedFrac)
	stableTotal := int64(float64(p.Size) * p.StableFrac)
	padTotal := p.Size - alignedLen - stableTotal

	// Persistent content for the aligned zone and stable zones. The zone
	// count scales with the image so stable regions stay large relative
	// to any reasonable chunk size (a real address space's stable
	// mappings are MBs, not KBs).
	aligned := make([]byte, alignedLen)
	fill(base, aligned)
	zones := int(p.Size / (1536 << 10))
	if zones < 4 {
		zones = 4
	}
	if zones > 64 {
		zones = 64
	}
	stableZones := make([][]byte, zones)
	for i := range stableZones {
		z := make([]byte, stableTotal/int64(zones))
		fill(base, z)
		stableZones[i] = z
	}
	padBase := padTotal / int64(zones)

	t := &Trace{
		Application: "BLAST",
		Type:        "library (BLCR)",
		Interval:    p.Interval,
		Images:      make([][]byte, 0, p.Images),
	}
	for v := 0; v < p.Images; v++ {
		rng := rand.New(rand.NewSource(p.Seed*2_000_003 + int64(v)))
		img := make([]byte, 0, int(p.Size)+zones*64)
		img = append(img, aligned...)
		for i := 0; i < zones; i++ {
			// Dynamic pad: fresh content, size jittered by a few
			// bytes so the following stable zone shifts.
			padLen := padBase + int64(rng.Intn(129)) - 64
			if padLen < 1 {
				padLen = 1
			}
			pad := make([]byte, padLen)
			fill(rng, pad)
			img = append(img, pad...)
			img = append(img, stableZones[i]...)
		}
		t.Images = append(t.Images, img)
	}
	return t
}

// XenParams shape a VM-level trace.
type XenParams struct {
	Seed     int64
	Images   int
	Size     int64
	Interval time.Duration
	// PreserveOrder emits pages in index order without shuffling — the
	// "Xen fix" the paper says it is exploring; similarity is restored.
	PreserveOrder bool
}

// Xen generates a VM-level trace: the same underlying memory as a BLCR
// trace, but dumped page-by-page in a per-version random order with a
// per-page metadata header, which is how Xen defeats similarity detection
// (paper §V.E).
func Xen(p XenParams) *Trace {
	const pageSize = 4096
	const headerSize = 16
	if p.Interval == 0 {
		p.Interval = 5 * time.Minute
	}
	pages := int(p.Size / pageSize)
	if pages == 0 {
		pages = 1
	}
	base := rand.New(rand.NewSource(p.Seed))

	// Underlying memory: mostly stable pages, some dirtied per version.
	memory := make([][]byte, pages)
	for i := range memory {
		pg := make([]byte, pageSize)
		fill(base, pg)
		memory[i] = pg
	}

	typ := "VM (Xen)"
	if p.PreserveOrder {
		typ = "VM (Xen, ordered)"
	}
	t := &Trace{
		Application: "BLAST",
		Type:        typ,
		Interval:    p.Interval,
		Images:      make([][]byte, 0, p.Images),
	}
	for v := 0; v < p.Images; v++ {
		rng := rand.New(rand.NewSource(p.Seed*3_000_017 + int64(v)))
		// Dirty ~10% of pages in place.
		for d := 0; d < pages/10; d++ {
			fill(rng, memory[rng.Intn(pages)])
		}
		order := make([]int, pages)
		for i := range order {
			order[i] = i
		}
		if !p.PreserveOrder {
			rng.Shuffle(pages, func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		img := make([]byte, 0, pages*(pageSize+headerSize))
		var hdr [headerSize]byte
		for seq, idx := range order {
			// Per-page metadata Xen adds to recreate correct images:
			// page frame number, sequence, version counter. The
			// PreserveOrder fix also stabilizes the metadata (ordering
			// alone is not enough: a changing version counter in every
			// page header would still defeat chunk hashing).
			binary.BigEndian.PutUint32(hdr[0:4], uint32(idx))
			binary.BigEndian.PutUint32(hdr[4:8], uint32(seq))
			if p.PreserveOrder {
				binary.BigEndian.PutUint64(hdr[8:16], 0)
			} else {
				binary.BigEndian.PutUint64(hdr[8:16], uint64(v))
			}
			img = append(img, hdr[:]...)
			img = append(img, memory[idx]...)
		}
		t.Images = append(t.Images, img)
	}
	return t
}
