package workload

import (
	"fmt"
	"time"
)

// ManyWriters models the manager-saturation workload shape of §V.E: many
// concurrent grid clients, each checkpointing a small application image at
// a short interval. Individually every writer is cheap; collectively they
// hammer the manager's metadata plane with alloc/extend/dedup/commit
// traffic — the regime where a single catalog lock serializes the site
// (and where adaptive P2P checkpointing systems place their workloads).
//
// Writers alternate chunking regimes: even writers use fixed-size striping
// (FsCH-style dedup probes), odd writers content-based chunking (CbCH), so
// a saturation run exercises both commit validation paths at once.
type WriterSpec struct {
	// Name is the writer's dataset key, e.g. "mw.n17"; checkpoint t of
	// this writer is the file name Name + ".t<t>".
	Name string
	// CbCH selects content-based (variable-size) chunking for this
	// writer; false means fixed-size striping.
	CbCH bool
	// Checkpoints is the number of images the writer commits.
	Checkpoints int
	// Size is the approximate image size in bytes.
	Size int64
	// Seed derives the writer's deterministic image content.
	Seed int64
}

// FileName returns the full checkpoint file name for timestep t.
func (w WriterSpec) FileName(t int) string { return fmt.Sprintf("%s.t%d", w.Name, t) }

// Trace materializes the writer's checkpoint images lazily (hundreds of
// writers would otherwise hold every image in memory at once). Images are
// BLCR-shaped: mostly stable content with shifting offsets, so CbCH
// writers dedup across versions while fixed writers mostly re-upload.
func (w WriterSpec) Trace() *Trace {
	return BLCR(BLCRParams{
		Seed: w.Seed, Images: w.Checkpoints, Size: w.Size,
		AlignedFrac: 0.25, StableFrac: 0.60,
		Interval: 30 * time.Second,
	})
}

// ManyWriters builds the spec list for a saturation run: `writers`
// concurrent clients each committing `checkpoints` images of roughly
// `size` bytes. Deterministic in seed.
func ManyWriters(seed int64, writers, checkpoints int, size int64) []WriterSpec {
	if writers <= 0 {
		return nil
	}
	out := make([]WriterSpec, writers)
	for i := range out {
		out[i] = WriterSpec{
			Name:        fmt.Sprintf("mw.n%d", i),
			CbCH:        i%2 == 1,
			Checkpoints: checkpoints,
			Size:        size,
			Seed:        seed*5_000_011 + int64(i),
		}
	}
	return out
}
