package workload

import (
	"bytes"
	"testing"
	"time"

	"stdchk/internal/chunker"
)

func TestAppLevelNoSimilarity(t *testing.T) {
	tr := AppLevel(1, 4, 1<<20)
	if tr.Count() != 4 {
		t.Fatalf("Count = %d", tr.Count())
	}
	stats := chunker.EvalTrace(chunker.Fixed{Size: 4 << 10}, tr.Images)
	if sim := stats.SimilarityRatio(); sim > 0.01 {
		t.Fatalf("app-level FsCH similarity = %.3f, want ~0", sim)
	}
	cb := chunker.EvalTrace(chunker.ContentDefined{Window: 32, Bits: 10, Advance: 1, Rolling: true}, tr.Images)
	if sim := cb.SimilarityRatio(); sim > 0.01 {
		t.Fatalf("app-level CbCH similarity = %.3f, want ~0", sim)
	}
}

func TestAppLevelDeterministic(t *testing.T) {
	a := AppLevel(7, 2, 1<<18)
	b := AppLevel(7, 2, 1<<18)
	for i := range a.Images {
		if !bytes.Equal(a.Images[i], b.Images[i]) {
			t.Fatalf("image %d differs across identical seeds", i)
		}
	}
	c := AppLevel(8, 1, 1<<18)
	if bytes.Equal(a.Images[0], c.Images[0]) {
		t.Fatal("different seeds produced identical images")
	}
}

func TestBLCR5MinCalibration(t *testing.T) {
	tr := BLCR5Min(1, 4, 8<<20)
	fsch := chunker.EvalTrace(chunker.Fixed{Size: 256 << 10}, tr.Images)
	if sim := fsch.SimilarityRatio(); sim < 0.15 || sim > 0.35 {
		t.Fatalf("BLCR-5min FsCH similarity = %.3f, want ≈0.25 (paper 24-25%%)", sim)
	}
	cbch := chunker.EvalTrace(chunker.ContentDefined{Window: 48, Bits: 13, Advance: 1, Rolling: true}, tr.Images)
	if sim := cbch.SimilarityRatio(); sim < 0.75 || sim > 0.95 {
		t.Fatalf("BLCR-5min CbCH similarity = %.3f, want ≈0.84", sim)
	}
	if fsch.SimilarityRatio() >= cbch.SimilarityRatio() {
		t.Fatal("FsCH should detect less than content-anchored CbCH on shifty traces")
	}
}

func TestBLCR15MinCalibration(t *testing.T) {
	tr := BLCR15Min(2, 4, 8<<20)
	fsch := chunker.EvalTrace(chunker.Fixed{Size: 256 << 10}, tr.Images)
	if sim := fsch.SimilarityRatio(); sim < 0.03 || sim > 0.15 {
		t.Fatalf("BLCR-15min FsCH similarity = %.3f, want ≈0.08", sim)
	}
	cbch := chunker.EvalTrace(chunker.ContentDefined{Window: 48, Bits: 13, Advance: 1, Rolling: true}, tr.Images)
	if sim := cbch.SimilarityRatio(); sim < 0.60 || sim > 0.85 {
		t.Fatalf("BLCR-15min CbCH similarity = %.3f, want ≈0.70", sim)
	}
}

func TestBLCRIntervalOrdering(t *testing.T) {
	// Longer checkpoint intervals mean more drift: both heuristics must
	// detect less on the 15-minute trace than the 5-minute one.
	five := BLCR5Min(3, 3, 4<<20)
	fifteen := BLCR15Min(3, 3, 4<<20)
	f5 := chunker.EvalTrace(chunker.Fixed{Size: 256 << 10}, five.Images).SimilarityRatio()
	f15 := chunker.EvalTrace(chunker.Fixed{Size: 256 << 10}, fifteen.Images).SimilarityRatio()
	if f15 >= f5 {
		t.Fatalf("FsCH: 15min (%.3f) >= 5min (%.3f)", f15, f5)
	}
}

func TestBLCRShortIntervalHighAlignment(t *testing.T) {
	tr := BLCRShortInterval(4, 4, 4<<20)
	fsch := chunker.EvalTrace(chunker.Fixed{Size: 256 << 10}, tr.Images)
	if sim := fsch.SimilarityRatio(); sim < 0.60 {
		t.Fatalf("short-interval FsCH similarity = %.3f, want >= 0.60 (Table 5 69%% dedup)", sim)
	}
}

func TestXenDefeatsSimilarity(t *testing.T) {
	tr := Xen(XenParams{Seed: 5, Images: 3, Size: 4 << 20})
	fsch := chunker.EvalTrace(chunker.Fixed{Size: 256 << 10}, tr.Images)
	if sim := fsch.SimilarityRatio(); sim > 0.10 {
		t.Fatalf("Xen FsCH similarity = %.3f, want near zero", sim)
	}
	cbch := chunker.EvalTrace(chunker.ContentDefined{Window: 48, Bits: 13, Advance: 1, Rolling: true}, tr.Images)
	if sim := cbch.SimilarityRatio(); sim > 0.25 {
		t.Fatalf("Xen CbCH similarity = %.3f, want low", sim)
	}
}

func TestXenOrderedRestoresSimilarity(t *testing.T) {
	// The paper's "we are exploring solutions" fix: stable page order and
	// stable metadata make VM images dedup-friendly again.
	tr := Xen(XenParams{Seed: 6, Images: 3, Size: 4 << 20, PreserveOrder: true})
	// With ~10% of pages dirtied per interval, a chunk spanning k pages
	// survives with probability 0.9^k; page-scale chunks are the right
	// granularity for VM images (4 KB chunk ≈ 2 page records -> ≈0.81).
	fsch := chunker.EvalTrace(chunker.Fixed{Size: 4 << 10}, tr.Images)
	if sim := fsch.SimilarityRatio(); sim < 0.6 {
		t.Fatalf("ordered-Xen FsCH similarity = %.3f, want >= 0.6", sim)
	}
	// The same trace shuffled (default Xen) is near zero even at page
	// granularity, isolating ordering as the root cause.
	shuffled := Xen(XenParams{Seed: 6, Images: 3, Size: 4 << 20})
	if sim := chunker.EvalTrace(chunker.Fixed{Size: 4 << 10}, shuffled.Images).SimilarityRatio(); sim > 0.1 {
		t.Fatalf("shuffled-Xen FsCH similarity = %.3f, want near zero", sim)
	}
}

func TestTraceMetadata(t *testing.T) {
	tr := BLCR5Min(7, 3, 2<<20)
	if tr.Application != "BLAST" || tr.Type != "library (BLCR)" {
		t.Fatalf("labels: %s / %s", tr.Application, tr.Type)
	}
	if tr.Interval != 5*time.Minute {
		t.Fatalf("interval = %v", tr.Interval)
	}
	if mb := tr.AvgSizeMB(); mb < 1.9 || mb > 2.4 {
		t.Fatalf("AvgSizeMB = %.2f, want ≈2.1", mb)
	}
	if tr.TotalBytes() <= 0 {
		t.Fatal("TotalBytes = 0")
	}
	empty := &Trace{}
	if empty.AvgSizeMB() != 0 {
		t.Fatal("empty AvgSizeMB != 0")
	}
}

type fakeSink struct {
	perByte time.Duration
	ratio   float64 // stored fraction
	fail    bool
}

func (f *fakeSink) WriteImage(name string, img []byte) (time.Duration, int64, error) {
	if f.fail {
		return 0, 0, bytes.ErrTooLarge
	}
	d := time.Duration(len(img)) * f.perByte
	return d, int64(float64(len(img)) * f.ratio), nil
}

func TestSimulateRunAccounting(t *testing.T) {
	tr := AppLevel(8, 5, 1<<10)
	res, err := SimulateRun(RunParams{
		Trace:           tr,
		ComputePerPhase: time.Second,
	}, &fakeSink{perByte: time.Microsecond, ratio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 5 {
		t.Fatalf("Checkpoints = %d", res.Checkpoints)
	}
	wantCkpt := time.Duration(5*1024) * time.Microsecond
	if res.CheckpointTime != wantCkpt {
		t.Fatalf("CheckpointTime = %v, want %v", res.CheckpointTime, wantCkpt)
	}
	if res.TotalTime != 5*time.Second+wantCkpt {
		t.Fatalf("TotalTime = %v", res.TotalTime)
	}
	if res.DataBytes != 5*1024 || res.StoredBytes != 5*512 {
		t.Fatalf("bytes: %d/%d", res.StoredBytes, res.DataBytes)
	}
}

func TestSimulateRunErrors(t *testing.T) {
	if _, err := SimulateRun(RunParams{}, nil); err == nil {
		t.Fatal("nil trace accepted")
	}
	tr := AppLevel(9, 1, 128)
	if _, err := SimulateRun(RunParams{Trace: tr}, &fakeSink{fail: true}); err == nil {
		t.Fatal("sink failure not propagated")
	}
}

func TestImprovement(t *testing.T) {
	base := RunResult{TotalTime: 100 * time.Second, CheckpointTime: 20 * time.Second, StoredBytes: 1000}
	better := RunResult{TotalTime: 90 * time.Second, CheckpointTime: 10 * time.Second, StoredBytes: 310}
	total, ckpt, data := better.Improvement(base)
	if total < 9.9 || total > 10.1 {
		t.Fatalf("total improvement = %.1f", total)
	}
	if ckpt < 49.9 || ckpt > 50.1 {
		t.Fatalf("ckpt improvement = %.1f", ckpt)
	}
	if data < 68.9 || data > 69.1 {
		t.Fatalf("data improvement = %.1f", data)
	}
}

func TestManyWritersSpecs(t *testing.T) {
	specs := ManyWriters(3, 10, 2, 32<<10)
	if len(specs) != 10 {
		t.Fatalf("%d specs, want 10", len(specs))
	}
	names := make(map[string]struct{})
	cbch := 0
	for i, s := range specs {
		if _, dup := names[s.Name]; dup {
			t.Fatalf("duplicate writer name %q", s.Name)
		}
		names[s.Name] = struct{}{}
		if s.CbCH {
			cbch++
		}
		if s.FileName(1) != s.Name+".t1" {
			t.Fatalf("writer %d file name %q", i, s.FileName(1))
		}
	}
	if cbch != 5 {
		t.Fatalf("%d CbCH writers of 10, want an even fixed/CbCH mix", cbch)
	}
	// Traces are deterministic in seed and per-writer distinct.
	a := specs[0].Trace()
	b := ManyWriters(3, 10, 2, 32<<10)[0].Trace()
	if a.Count() != 2 || b.Count() != 2 {
		t.Fatalf("trace counts %d/%d, want 2", a.Count(), b.Count())
	}
	if !bytes.Equal(a.Images[0], b.Images[0]) {
		t.Fatal("same spec produced different images")
	}
	if bytes.Equal(a.Images[0], specs[1].Trace().Images[0]) {
		t.Fatal("distinct writers produced identical images")
	}
}
