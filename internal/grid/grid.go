// Package grid assembles an in-process stdchk deployment: one metadata
// manager plus N benefactors, each a real TCP server on loopback with its
// own device models (disk, NIC) and an optional shared fabric limiter
// modelling the site switch. It is the reproduction's stand-in for the
// paper's 28-node LAN testbed: real concurrency and real sockets, with
// calibrated capacities.
package grid

import (
	"fmt"
	"net"
	"time"

	"stdchk/internal/benefactor"
	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/federation"
	"stdchk/internal/manager"
	"stdchk/internal/proto"
	"stdchk/internal/store"
	"stdchk/internal/wire"
)

// The federation router is the client's metadata endpoint in federated
// clusters; keep the structural match checked at compile time.
var _ client.ManagerEndpoint = (*federation.Router)(nil)

// Options configures a cluster.
type Options struct {
	// Managers is the number of federated metadata managers (0 or 1 =
	// one standalone manager). With N > 1 the dataset namespace is
	// partitioned across the members and every client routes through a
	// federation router; benefactors register with all members.
	Managers int
	// Benefactors is the number of donor nodes to start.
	Benefactors int
	// BenefactorCapacity is each node's contributed bytes (0 = unlimited).
	BenefactorCapacity int64
	// BenefactorProfile calibrates each donor's disk and NIC
	// (device.Unshaped() for tests, device.PaperNode() for benches).
	BenefactorProfile device.Profile
	// FabricBps caps total cross-node traffic, modelling the shared
	// switch (0 = uncapped). This is the §V.F bottleneck.
	FabricBps float64
	// Manager overrides manager defaults; ListenAddr and shapers are
	// filled in by Start.
	Manager manager.Config
	// GCInterval / GCGrace configure benefactor garbage collection.
	GCInterval time.Duration
	GCGrace    time.Duration
	// ScrubInterval enables benefactor integrity scrubbing (0 = off).
	ScrubInterval time.Duration
	// ScrubBatch caps chunks verified per scrub tick (0 = default).
	ScrubBatch int
	// DiskBacked stores chunks in per-node temp directories instead of
	// memory.
	DiskBacked bool
	// DiskDir is the root for disk-backed stores.
	DiskDir string
}

// Cluster is a running in-process deployment.
type Cluster struct {
	// Manager is the standalone manager — or federation member 0, kept
	// for the single-manager API surface most tests use.
	Manager *manager.Manager
	// Managers lists every federation member (length 1 when standalone).
	Managers    []*manager.Manager
	Benefactors []*benefactor.Benefactor
	Fabric      *device.Limiter

	opts  Options
	nodes []*device.Node
	specs []benefSpec
}

// benefSpec pins a benefactor slot's durable identity: the node ID and
// disk directory survive a stop/restart cycle, so a restarted donor
// rejoins as itself (same registry entry, same on-disk chunks) instead of
// as a stranger — what a real machine does after a reboot.
type benefSpec struct {
	id   core.NodeID
	dir  string // disk store directory ("" = memory-backed)
	node *device.Node
}

// ManagerAddrs lists the metadata-plane member addresses in member order.
func (c *Cluster) ManagerAddrs() []string {
	out := make([]string, len(c.Managers))
	for i, m := range c.Managers {
		out[i] = m.Addr()
	}
	return out
}

// Federated reports whether the cluster runs more than one manager.
func (c *Cluster) Federated() bool { return len(c.Managers) > 1 }

// NewRouter builds a federation router over the cluster's metadata plane
// (also usable with a single manager). The caller owns it — unless it is
// handed to a client, which closes its endpoint itself.
func (c *Cluster) NewRouter(shaper wire.Shaper) (*federation.Router, error) {
	return federation.NewRouter(federation.RouterConfig{
		Members: c.ManagerAddrs(),
		Shaper:  shaper,
	})
}

// Start launches the manager and benefactors and waits until every
// benefactor has registered.
func Start(opts Options) (*Cluster, error) {
	if opts.Benefactors <= 0 {
		opts.Benefactors = 4
	}
	if opts.GCInterval <= 0 {
		opts.GCInterval = 2 * time.Second
	}
	if opts.GCGrace <= 0 {
		opts.GCGrace = 30 * time.Second
	}
	c := &Cluster{opts: opts}
	if opts.FabricBps > 0 {
		c.Fabric = device.NewLimiter(opts.FabricBps)
	}

	if opts.Managers <= 0 {
		opts.Managers = 1
	}
	mcfg := opts.Manager
	if mcfg.HeartbeatInterval <= 0 {
		mcfg.HeartbeatInterval = 200 * time.Millisecond
	}
	mgrs, _, err := manager.NewFederation(opts.Managers, mcfg)
	if err != nil {
		return nil, fmt.Errorf("grid: start managers: %w", err)
	}
	c.Managers = mgrs
	c.Manager = c.Managers[0]

	for i := 0; i < opts.Benefactors; i++ {
		if _, err := c.AddBenefactor(); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := c.AwaitOnline(opts.Benefactors, 10*time.Second); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// AddBenefactor starts one more donor node (it registers asynchronously;
// use AwaitOnline to wait). The node gets a stable identity ("benef-N")
// so a later RestartBenefactor rejoins as the same registry entry.
func (c *Cluster) AddBenefactor() (*benefactor.Benefactor, error) {
	node := device.NewNode(c.opts.BenefactorProfile)
	c.nodes = append(c.nodes, node)
	spec := benefSpec{
		id:   core.NodeID(fmt.Sprintf("benef-%d", len(c.specs))),
		node: node,
	}
	if c.opts.DiskBacked {
		dir := c.opts.DiskDir
		if dir == "" {
			dir = "."
		}
		spec.dir = fmt.Sprintf("%s/%s", dir, spec.id)
	}
	b, err := c.startBenefactor(spec)
	if err != nil {
		return nil, err
	}
	c.specs = append(c.specs, spec)
	c.Benefactors = append(c.Benefactors, b)
	return b, nil
}

// startBenefactor launches a donor for one spec (initial start or
// restart): the disk store reopens the spec's directory, memory-backed
// slots come back empty.
func (c *Cluster) startBenefactor(spec benefSpec) (*benefactor.Benefactor, error) {
	var st store.Store
	if spec.dir != "" {
		ds, err := store.OpenDisk(spec.dir, c.opts.BenefactorCapacity, spec.node.Disk)
		if err != nil {
			return nil, fmt.Errorf("grid: open disk store: %w", err)
		}
		st = ds
	} else {
		st = store.NewMemory(c.opts.BenefactorCapacity, spec.node.Disk)
	}
	b, err := benefactor.New(benefactor.Config{
		ID:            spec.id,
		ListenAddr:    "127.0.0.1:0",
		ManagerAddrs:  c.ManagerAddrs(),
		Store:         st,
		GCInterval:    c.opts.GCInterval,
		GCGrace:       c.opts.GCGrace,
		ScrubInterval: c.opts.ScrubInterval,
		ScrubBatch:    c.opts.ScrubBatch,
		Shaper:        ShaperFor(spec.node, c.Fabric),
		DialShaper:    ShaperFor(spec.node, c.Fabric),
	})
	if err != nil {
		return nil, fmt.Errorf("grid: start benefactor: %w", err)
	}
	return b, nil
}

// StopBenefactor kills one donor node (failure injection).
func (c *Cluster) StopBenefactor(i int) error {
	if i < 0 || i >= len(c.Benefactors) || c.Benefactors[i] == nil {
		return fmt.Errorf("grid: no benefactor %d", i)
	}
	err := c.Benefactors[i].Close()
	c.Benefactors[i] = nil
	return err
}

// RestartBenefactor revives a stopped donor slot under its original
// identity (churn injection). Disk-backed slots come back with their
// chunks intact — the rejoin-reconciliation case — while memory-backed
// slots come back empty, modelling a reimaged machine. A still-running
// slot is stopped first. The new process listens on a fresh port; the
// registration it sends updates the manager's address record.
func (c *Cluster) RestartBenefactor(i int) (*benefactor.Benefactor, error) {
	if i < 0 || i >= len(c.specs) {
		return nil, fmt.Errorf("grid: no benefactor %d", i)
	}
	if c.Benefactors[i] != nil {
		if err := c.Benefactors[i].Close(); err != nil {
			return nil, fmt.Errorf("grid: stop benefactor %d: %w", i, err)
		}
		c.Benefactors[i] = nil
	}
	b, err := c.startBenefactor(c.specs[i])
	if err != nil {
		return nil, err
	}
	c.Benefactors[i] = b
	return b, nil
}

// AwaitOnline blocks until every manager reports at least n online
// benefactors (federated clusters require the whole membership to see the
// donor pool).
func (c *Cluster) AwaitOnline(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		min := -1
		for _, m := range c.Managers {
			stats := m.Stats()
			if min < 0 || stats.OnlineBenefactors < min {
				min = stats.OnlineBenefactors
			}
		}
		if min >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("grid: %d/%d benefactors online after %v", min, n, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// AwaitOffline blocks until the manager notices at most n online
// benefactors (heartbeat expiry after failure injection).
func (c *Cluster) AwaitOffline(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		max := 0
		for _, m := range c.Managers {
			if stats := m.Stats(); stats.OnlineBenefactors > max {
				max = stats.OnlineBenefactors
			}
		}
		if max <= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("grid: still %d benefactors online after %v", max, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// RestartManager simulates a manager failure: the manager process dies and
// a replacement starts on the same address. With recover=true the
// replacement reconstructs its metadata from benefactor-held chunk-map
// replicas (paper §IV.A); with a journal-configured cfg it replays the
// journal instead.
func (c *Cluster) RestartManager(cfg manager.Config, recover bool) error {
	addr := c.Manager.Addr()
	if err := c.Manager.Close(); err != nil {
		return fmt.Errorf("grid: stop manager: %w", err)
	}
	cfg.ListenAddr = addr
	cfg.Recover = recover
	if c.Federated() {
		// The replacement must keep member 0's partition identity, or it
		// would come back standalone with the partition filter disabled
		// and accept every member's keys. The address list is unchanged
		// (the replacement binds the same address), so the epoch holds.
		cfg.FederationMembers = c.ManagerAddrs()
		cfg.MemberIndex = 0
		if cfg.JournalPath != "" {
			cfg.JournalPath = manager.MemberJournalPath(cfg.JournalPath, 0)
		}
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 200 * time.Millisecond
	}
	var mgr *manager.Manager
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		mgr, err = manager.New(cfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("grid: restart manager: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.Manager = mgr
	c.Managers[0] = mgr
	return nil
}

// NewClient builds a client against this cluster. The profile models the
// client machine (its NIC shapes all its connections); pass
// device.Unshaped() for tests.
func (c *Cluster) NewClient(cfg client.Config, profile device.Profile) (*client.Client, *device.Node, error) {
	node := device.NewNode(profile)
	cfg.ManagerAddr = c.Manager.Addr()
	cfg.Shaper = ShaperFor(node, c.Fabric)
	if c.Federated() {
		r, err := c.NewRouter(cfg.Shaper)
		if err != nil {
			return nil, nil, fmt.Errorf("grid: new client router: %w", err)
		}
		cfg.Endpoint = r // the client owns and closes it
	}
	if cfg.LocalDisk == nil {
		cfg.LocalDisk = node.Disk
	}
	if cfg.Mem == nil {
		cfg.Mem = node.Mem
	}
	cl, err := client.New(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("grid: new client: %w", err)
	}
	return cl, node, nil
}

// ShaperFor builds a wire.Shaper from a node's NIC and the shared fabric.
func ShaperFor(node *device.Node, fabric *device.Limiter) wire.Shaper {
	if node == nil {
		return nil
	}
	return func(conn net.Conn) net.Conn {
		return device.Shape(conn, node.NIC, fabric)
	}
}

// Close tears the cluster down: benefactors first, then the manager.
func (c *Cluster) Close() {
	for _, b := range c.Benefactors {
		if b != nil {
			b.Close()
		}
	}
	for _, m := range c.Managers {
		m.Close()
	}
}

// Stats merges every member's counters into one metadata-plane snapshot.
// Standalone clusters get the manager's full snapshot (per-stripe detail
// included); the merged federated view drops per-stripe slices, which
// stay available per member via Managers[i].Stats().
func (c *Cluster) Stats() proto.ManagerStats {
	if len(c.Managers) == 1 {
		return c.Managers[0].Stats()
	}
	all := make([]proto.ManagerStats, len(c.Managers))
	for i, m := range c.Managers {
		all[i] = m.Stats()
	}
	return federation.MergeStats(all)
}

// CollectAll runs one synchronous GC round on every benefactor (bench
// harness hygiene between repetitions).
func (c *Cluster) CollectAll() {
	for _, b := range c.Benefactors {
		if b != nil {
			b.CollectGarbage() // errors ignored: best-effort cleanup
		}
	}
}

// NodeIDs lists the running benefactors' identities.
func (c *Cluster) NodeIDs() []core.NodeID {
	var ids []core.NodeID
	for _, b := range c.Benefactors {
		if b != nil {
			ids = append(ids, b.ID())
		}
	}
	return ids
}
