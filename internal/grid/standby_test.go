package grid

import (
	"bytes"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/manager"
)

// TestHotStandbyTakeover exercises the paper's hot-standby failover
// option: a standby watches the primary manager, detects its death, takes
// over its address in recovery mode, and the benefactor-quorum protocol
// restores the metadata so reads keep working.
func TestHotStandbyTakeover(t *testing.T) {
	c := testCluster(t, 3, manager.Config{HeartbeatInterval: 100 * time.Millisecond})
	cl := testClient(t, c, client.Config{
		ChunkSize:       32 << 10,
		StripeWidth:     3,
		PushMapReplicas: true,
	})
	data := payload(600, 256<<10)
	writeFile(t, cl, "ha.n1.t0", data)

	primaryAddr := c.Manager.Addr()
	standby, err := manager.NewStandby(manager.StandbyConfig{
		PrimaryAddr:   primaryAddr,
		ListenAddr:    primaryAddr, // same-host failover onto the same address
		ProbeInterval: 50 * time.Millisecond,
		FailAfter:     2,
		Manager:       manager.Config{HeartbeatInterval: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()

	// While the primary is healthy, no takeover.
	time.Sleep(300 * time.Millisecond)
	if standby.TookOver() {
		t.Fatal("standby took over while primary was alive")
	}

	// Kill the primary.
	if err := c.Manager.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for !standby.TookOver() {
		if time.Now().After(deadline) {
			t.Fatal("standby never took over")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Hand the replacement to the cluster for cleanup bookkeeping.
	c.Manager = standby.Manager()

	// Benefactors re-register with the replacement; quorum recovery
	// restores the dataset; reads succeed.
	if err := c.AwaitOnline(3, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	cl2 := testClient(t, c, client.Config{ChunkSize: 32 << 10})
	readDeadline := time.Now().Add(10 * time.Second)
	for {
		r, err := cl2.Open("ha.n1.t0")
		if err == nil {
			got, rerr := r.ReadAll()
			r.Close()
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("data corrupted across failover")
			}
			break
		}
		if time.Now().After(readDeadline) {
			t.Fatalf("dataset not recovered after takeover: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestStandbyCloseBeforeTakeover verifies clean shutdown of an idle
// standby.
func TestStandbyCloseBeforeTakeover(t *testing.T) {
	c := testCluster(t, 1, manager.Config{})
	standby, err := manager.NewStandby(manager.StandbyConfig{
		PrimaryAddr:   c.Manager.Addr(),
		ListenAddr:    "127.0.0.1:0",
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := standby.Close(); err != nil {
		t.Fatal(err)
	}
	if err := standby.Close(); err != nil {
		t.Fatal(err)
	}
}
