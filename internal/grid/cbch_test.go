package grid

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"stdchk/internal/chunker"
	"stdchk/internal/client"
	"stdchk/internal/manager"
	"stdchk/internal/workload"
)

// cbchTestParams bounds live CbCH spans small enough that a multi-MB test
// image yields hundreds of chunks (expected span ~= Min + 2^Bits = 32 KiB).
func cbchTestParams() chunker.StreamParams {
	return chunker.StreamParams{Window: 48, Bits: 14, Min: 16 << 10, Max: 128 << 10}
}

// TestCbCHLiveIncrementalCheckpointing is the live Table 3 contrast
// (paper §IV.C): two successive BLCR-style checkpoint images — mostly
// identical content whose offsets shift between versions — written through
// the real wire path with incremental checkpointing on, once with
// fixed-size chunking and once with content-based chunking. Fixed-size
// dedup only catches the offset-aligned prefix; content-anchored
// boundaries re-synchronize after every shifted region, so CbCH must dedup
// at least 2x the bytes. Ground truth comes from both sides of the wire:
// writer byte accounting (Uploaded/Deduped) and the manager's dedup-probe
// counters (DedupHits).
func TestCbCHLiveIncrementalCheckpointing(t *testing.T) {
	c := testCluster(t, 3, manager.Config{})
	tr := workload.BLCR5Min(77, 2, 8<<20)

	// run writes both trace versions and returns the second version's
	// metrics plus the manager-side dedup-hit delta for the run.
	run := func(prefix string, cfg client.Config) (second client.WriteMetrics, hits int64) {
		t.Helper()
		cl := testClient(t, c, cfg)
		before, err := cl.ManagerStats()
		if err != nil {
			t.Fatal(err)
		}
		var last client.WriteMetrics
		for i, img := range tr.Images {
			w := writeFile(t, cl, fmt.Sprintf("%s.n1.t%d", prefix, i), img)
			last = w.Metrics()
			if got, want := last.Uploaded+last.Deduped, int64(len(img)); got != want {
				t.Fatalf("%s v%d: uploaded %d + deduped %d != written %d",
					prefix, i, last.Uploaded, last.Deduped, want)
			}
		}
		// Round-trip integrity: both versions, including the COW-shared
		// chunks, must read back exactly.
		for i, img := range tr.Images {
			if got := readFile(t, cl, fmt.Sprintf("%s.n1.t%d", prefix, i)); !bytes.Equal(got, img) {
				t.Fatalf("%s v%d corrupted on round trip", prefix, i)
			}
		}
		after, err := cl.ManagerStats()
		if err != nil {
			t.Fatal(err)
		}
		return last, after.DedupHits - before.DedupHits
	}

	fixed, fixedHits := run("fsch", client.Config{
		ChunkSize:   128 << 10,
		StripeWidth: 2,
		Incremental: true,
	})
	cbch, cbchHits := run("cbch", client.Config{
		Chunking:    client.ChunkCbCH,
		CbCH:        cbchTestParams(),
		StripeWidth: 2,
		Incremental: true,
	})

	// The BLCR trace keeps ~25% of bytes offset-aligned, so fixed-size
	// dedup must find some sharing — otherwise the workload (not the
	// chunking) is what changed.
	if fixed.Deduped == 0 {
		t.Fatal("fixed-size dedup found nothing; BLCR trace lost its aligned prefix")
	}
	if fixedHits == 0 || cbchHits == 0 {
		t.Fatalf("manager saw no dedup hits (fixed %d, cbch %d)", fixedHits, cbchHits)
	}
	if cbch.Deduped < 2*fixed.Deduped {
		t.Fatalf("CbCH deduped %d bytes of %d, fixed %d of %d; want >= 2x",
			cbch.Deduped, cbch.Bytes, fixed.Deduped, fixed.Bytes)
	}
	// And the flip side: CbCH moved correspondingly fewer bytes on the wire.
	if cbch.Uploaded >= fixed.Uploaded {
		t.Fatalf("CbCH uploaded %d bytes, fixed %d; content chunking saved nothing",
			cbch.Uploaded, fixed.Uploaded)
	}
}

// TestCbCHAllProtocolsRoundTrip: the streaming boundary finder sits in the
// shared chunk-emit path, so all three write protocols must produce
// correct (and identical) committed content with variable-size chunks.
func TestCbCHAllProtocolsRoundTrip(t *testing.T) {
	c := testCluster(t, 3, manager.Config{})
	data := payload(81, 3<<20+4321)
	for _, p := range []client.Protocol{client.SlidingWindow, client.IncrementalWrite, client.CompleteLocalWrite} {
		t.Run(p.String(), func(t *testing.T) {
			cl := testClient(t, c, client.Config{
				Protocol:      p,
				Chunking:      client.ChunkCbCH,
				CbCH:          cbchTestParams(),
				StripeWidth:   2,
				TempFileBytes: 256 << 10,
			})
			name := fmt.Sprintf("cbchproto%d.n1.t0", p)
			writeFile(t, cl, name, data)
			if got := readFile(t, cl, name); !bytes.Equal(got, data) {
				t.Fatalf("%s: CbCH round trip corrupted", p)
			}
			// The committed map must be flagged variable with in-bounds
			// heterogeneous spans.
			r, err := cl.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			m := r.Map()
			if !m.Variable {
				t.Fatal("committed map not flagged Variable")
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(m.Chunks) < 20 {
				t.Fatalf("only %d chunks; CbCH bounds not applied", len(m.Chunks))
			}
		})
	}
}

// TestReaderFailsOverMidReadToReplica kills the benefactor listed first
// for the tail chunks while a read is in progress and asserts the
// remaining fetches fall over to the second replica, with content-hash
// integrity intact end to end.
func TestReaderFailsOverMidReadToReplica(t *testing.T) {
	c := testCluster(t, 3, manager.Config{
		ReplicationInterval: 50 * time.Millisecond,
		DefaultReplication:  2,
		HeartbeatInterval:   100 * time.Millisecond,
	})
	cl := testClient(t, c, client.Config{
		ChunkSize:   32 << 10,
		Replication: 2,
		StripeWidth: 2,
		ReadAhead:   1, // keep the prefetch window behind the kill point
	})
	data := payload(55, 512<<10)
	writeFile(t, cl, "fo.n1.t0", data)

	// Wait until every chunk has a second replica to fall over to.
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := cl.Stat("fo.n1")
		if err != nil {
			t.Fatal(err)
		}
		if info.Versions[0].Replication >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication stuck at %d", info.Versions[0].Replication)
		}
		time.Sleep(20 * time.Millisecond)
	}

	r, err := cl.Open("fo.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Consume the head of the file, then kill the benefactor that every
	// remaining chunk would try first.
	head := make([]byte, 64<<10)
	if _, err := io.ReadFull(r, head); err != nil {
		t.Fatal(err)
	}
	m := r.Map()
	victimID := m.Locations[len(m.Locations)-1][0]
	victim := -1
	for i, id := range c.NodeIDs() {
		if id == victimID {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatalf("benefactor %s not found in cluster", victimID)
	}
	if err := c.StopBenefactor(victim); err != nil {
		t.Fatal(err)
	}

	rest, err := r.ReadAll()
	if err != nil {
		t.Fatalf("read after first-replica death: %v", err)
	}
	got := append(head, rest...)
	if !bytes.Equal(got, data) {
		t.Fatalf("failover read corrupted: %d bytes, want %d", len(got), len(data))
	}
}

// TestReaderCloseDrainsInflightPrefetches closes a reader while its
// read-ahead window is full of in-flight fetches. The drain must recycle
// every pool-backed buffer (verified by the race detector seeing the
// async receives) and later reads must be unaffected.
func TestReaderCloseDrainsInflightPrefetches(t *testing.T) {
	c := testCluster(t, 2, manager.Config{})
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, StripeWidth: 2, ReadAhead: 8})
	data := payload(56, 1<<20)
	writeFile(t, cl, "drain.n1.t0", data)

	r, err := cl.Open("drain.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	// One small read primes the full prefetch window.
	small := make([]byte, 10)
	if _, err := io.ReadFull(r, small); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(small); err == nil {
		t.Fatal("read succeeded on closed reader")
	}
	// Closing again is a no-op, and the store is still fully readable.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, cl, "drain.n1.t0"); !bytes.Equal(got, data) {
		t.Fatal("data disturbed by abandoned prefetches")
	}
}
