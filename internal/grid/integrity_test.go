package grid

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/device"
	"stdchk/internal/manager"
)

// TestTamperedChunkDetectedAndReadFailsOver exercises the paper's §IV.C
// integrity claim: content-based naming lets the system detect faulty or
// malicious benefactors. A chunk is corrupted on disk behind the store's
// back; the read detects the hash mismatch and falls over to a healthy
// replica.
func TestTamperedChunkDetectedAndReadFailsOver(t *testing.T) {
	dir := t.TempDir()
	c, err := Start(Options{
		Benefactors:       2,
		BenefactorProfile: device.Unshaped(),
		Manager: manager.Config{
			ReplicationInterval: 50 * time.Millisecond,
			DefaultReplication:  2,
		},
		DiskBacked: true,
		DiskDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, StripeWidth: 2, Replication: 2})
	data := payload(900, 256<<10)
	writeFile(t, cl, "tamper.n1.t0", data)

	// Wait for full replication so every chunk exists on both nodes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := cl.Stat("tamper.n1")
		if err != nil {
			t.Fatal(err)
		}
		if info.Versions[0].Replication >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replication never reached 2")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Tamper with every chunk file under the first benefactor's
	// directory, behind the store's index.
	tampered := 0
	root := filepath.Join(dir, "benef-0")
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if len(b) == 0 {
			return nil
		}
		b[0] ^= 0xff
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		tampered++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tampered == 0 {
		t.Fatal("no chunk files found to tamper with")
	}

	// Reads must still return the correct bytes, sourced from replicas.
	if got := readFile(t, cl, "tamper.n1.t0"); !bytes.Equal(got, data) {
		t.Fatal("tampered data reached the application")
	}
}
