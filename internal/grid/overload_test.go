package grid

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/faultpoint"
	"stdchk/internal/federation"
	"stdchk/internal/manager"
	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

// startOverloadPlane builds the smallest traffic plane that can overload:
// a 1-member federation with a tiny admission bound, a shared-connection
// router, and one fake benefactor so allocs have somewhere to stripe.
func startOverloadPlane(t *testing.T, maxPending int, hint time.Duration) ([]*manager.Manager, []string, *federation.Router) {
	t.Helper()
	mgrs, members, err := manager.NewFederation(1, manager.Config{
		HeartbeatInterval:   time.Hour,
		ReplicationInterval: time.Hour,
		PruneInterval:       time.Hour,
		SessionTTL:          time.Hour,
		MaxPendingOps:       maxPending,
		RetryAfterHint:      hint,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, m := range mgrs {
			m.Close()
		}
	})
	router, err := federation.NewRouter(federation.RouterConfig{
		Members:        members,
		SharedConns:    true,
		PerMemberConns: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	if _, err := router.Register(proto.RegisterReq{
		ID: "ovl0:1", Addr: "ovl0:1", Capacity: 1 << 40, Free: 1 << 40,
	}); err != nil {
		t.Fatal(err)
	}
	return mgrs, members, router
}

// rawCheckpoint drives one full checkpoint (alloc/extend/commit/getmap)
// over a plain serial connection with NO retry policy — the probe that
// sees the manager's typed shed verbatim.
func rawCheckpoint(conn *wire.Conn, name string, seed int64, chunks int, chunkSize int64) error {
	var alloc proto.AllocResp
	if _, err := conn.Call(proto.MAlloc, proto.AllocReq{
		Name: name, StripeWidth: 1, ChunkSize: chunkSize,
		ReserveBytes: int64(chunks) * chunkSize, Replication: 1,
	}, nil, &alloc); err != nil {
		return err
	}
	locs := make([]core.NodeID, 0, len(alloc.Stripe))
	for _, st := range alloc.Stripe {
		locs = append(locs, st.ID)
	}
	_, commit, fileSize := manager.BuildCheckpoint(seed, 0, chunks, chunkSize, false, locs)
	if _, err := conn.Call(proto.MCommit, proto.CommitReq{
		WriteID: alloc.WriteID, FileSize: fileSize, Chunks: commit,
	}, nil, &proto.CommitResp{}); err != nil {
		return err
	}
	_, err := conn.Call(proto.MGetMap, proto.GetMapReq{Name: name}, nil, &proto.GetMapResp{})
	return err
}

// TestOverloadShedsTypedRetryAfter is the grid-level acceptance test for
// the admission plane: with the single admission slot held by a commit
// stalled at the manager.commit.publish faultpoint,
//
//   - a raw client with no retry policy gets the typed core.ErrRetryAfter
//     across the wire, with the manager's configured hint intact;
//   - a retry-after-honoring client (the federation router) started during
//     the same overload backs off per the hint and completes — overload
//     means delay, never failure or hang;
//   - the manager's queue depth never exceeds the configured bound, and
//     the shed is visible in its counters.
func TestOverloadShedsTypedRetryAfter(t *testing.T) {
	defer faultpoint.Reset()
	const (
		maxPending = 1
		// The router retries a shed op with hint*attempt backoff; the
		// cumulative budget (100+200+250ms) must comfortably outlast the
		// hold so the honoring client always rides through.
		hint      = 100 * time.Millisecond
		holdFor   = 250 * time.Millisecond
		chunkSize = int64(4 << 10)
		chunks    = 4
	)
	mgrs, members, router := startOverloadPlane(t, maxPending, hint)

	// Every commit now stalls inside publish while still holding its
	// admission slot — the controllable stand-in for a saturated manager.
	if err := faultpoint.Enable("manager.commit.publish", faultpoint.Config{
		Mode: faultpoint.ModeDelay, Delay: holdFor,
	}); err != nil {
		t.Fatal(err)
	}

	// The holder runs alloc up front (admission slot held only briefly),
	// signals, then commits — so once holderReady fires, the next gated
	// op seen by the manager is the stalled commit and nothing else.
	holderConn, err := wire.Dial(members[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	defer holderConn.Close()
	var alloc proto.AllocResp
	if _, err := holderConn.Call(proto.MAlloc, proto.AllocReq{
		Name: "ovl.n0.t0", StripeWidth: 1, ChunkSize: chunkSize,
		ReserveBytes: int64(chunks) * chunkSize, Replication: 1,
	}, nil, &alloc); err != nil {
		t.Fatal(err)
	}
	locs := make([]core.NodeID, 0, len(alloc.Stripe))
	for _, st := range alloc.Stripe {
		locs = append(locs, st.ID)
	}
	_, commit, fileSize := manager.BuildCheckpoint(1, 0, chunks, chunkSize, false, locs)
	holderDone := make(chan error, 1)
	go func() {
		_, err := holderConn.Call(proto.MCommit, proto.CommitReq{
			WriteID: alloc.WriteID, FileSize: fileSize, Chunks: commit,
		}, nil, &proto.CommitResp{})
		holderDone <- err
	}()

	// Wait until the stalled commit actually occupies the slot.
	deadline := time.Now().Add(5 * time.Second)
	for mgrs[0].Stats().Admission.QueueDepth < maxPending {
		if time.Now().After(deadline) {
			t.Fatal("stalled commit never occupied the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	// A retry-less probe must be shed with the typed error, not queued.
	probeConn, err := wire.Dial(members[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	defer probeConn.Close()
	_, probeErr := probeConn.Call(proto.MAlloc, proto.AllocReq{
		Name: "ovl.n1.t0", StripeWidth: 1, ChunkSize: chunkSize,
		ReserveBytes: chunkSize, Replication: 1,
	}, nil, &proto.AllocResp{})
	if probeErr == nil {
		t.Fatal("probe alloc admitted past a full queue")
	}
	var ra core.ErrRetryAfter
	if !errors.As(probeErr, &ra) {
		t.Fatalf("probe error is not typed retry-after: %v", probeErr)
	}
	if ra.Delay != hint {
		t.Fatalf("retry-after hint %v crossed the wire as %v", hint, ra.Delay)
	}
	if !errors.Is(probeErr, core.ErrRetryAfter{}) {
		t.Fatalf("errors.Is(err, ErrRetryAfter{}) false for %v", probeErr)
	}
	if !strings.Contains(probeErr.Error(), "retry after") {
		t.Fatalf("shed error unreadable: %v", probeErr)
	}
	// A shed is NOT a transport fault: nothing should tell the caller to
	// blindly re-dial, only to back off.
	if errors.Is(probeErr, core.ErrRetryable) {
		t.Fatalf("typed shed classified as transport-retryable: %v", probeErr)
	}

	// The router honors the hint: a checkpoint launched while the slot is
	// still held backs off and lands once the holder drains.
	routerDone := make(chan error, 1)
	go func() {
		routerDone <- driveOverloadRouterCheckpoint(router, "ovl.n2.t0", chunks, chunkSize)
	}()

	select {
	case err := <-holderDone:
		if err != nil {
			t.Fatalf("holder commit failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("holder commit hung")
	}
	select {
	case err := <-routerDone:
		if err != nil {
			t.Fatalf("retrying client failed under overload: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retrying client hung under overload")
	}

	st := mgrs[0].Stats()
	if st.Admission.Shed < 1 {
		t.Fatalf("no shed recorded: %+v", st.Admission)
	}
	if st.Admission.PeakQueueDepth > maxPending {
		t.Fatalf("peak queue depth %d exceeds bound %d", st.Admission.PeakQueueDepth, maxPending)
	}
	if st.Admission.MaxPending != maxPending || st.Admission.Admitted <= 0 {
		t.Fatalf("implausible admission stats: %+v", st.Admission)
	}
	if st.Admission.RetryAfterMicros != hint.Microseconds() {
		t.Fatalf("stats advertise hint %dµs, configured %v", st.Admission.RetryAfterMicros, hint)
	}
}

// driveOverloadRouterCheckpoint is the retry-after-honoring client: the
// federation router's calls back off on typed sheds internally.
func driveOverloadRouterCheckpoint(r *federation.Router, name string, chunks int, chunkSize int64) error {
	alloc, err := r.Alloc(proto.AllocReq{
		Name: name, StripeWidth: 1, ChunkSize: chunkSize,
		ReserveBytes: int64(chunks) * chunkSize, Replication: 1,
	})
	if err != nil {
		return fmt.Errorf("alloc: %w", err)
	}
	locs := make([]core.NodeID, 0, len(alloc.Stripe))
	for _, st := range alloc.Stripe {
		locs = append(locs, st.ID)
	}
	_, commit, fileSize := manager.BuildCheckpoint(2, 0, chunks, chunkSize, false, locs)
	if _, err := r.Commit(name, proto.CommitReq{
		WriteID: alloc.WriteID, FileSize: fileSize, Chunks: commit,
	}); err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	if _, err := r.GetMap(proto.GetMapReq{Name: name}); err != nil {
		return fmt.Errorf("getmap: %w", err)
	}
	return nil
}

// TestOverloadUnboundedBaseline pins the ablation contrast at the grid
// level: with MaxPendingOps zero the gate admits everything — no sheds,
// no typed errors — while the depth accounting still runs.
func TestOverloadUnboundedBaseline(t *testing.T) {
	defer faultpoint.Reset()
	const (
		chunkSize = int64(4 << 10)
		chunks    = 4
	)
	mgrs, members, _ := startOverloadPlane(t, 0, 0)
	if err := faultpoint.Enable("manager.commit.publish", faultpoint.Config{
		Mode: faultpoint.ModeDelay, Delay: 30 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	// Several concurrent slow checkpoints: all must be admitted.
	const writers = 4
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			conn, err := wire.Dial(members[0], nil)
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			done <- rawCheckpoint(conn, fmt.Sprintf("ovlu.n%d.t0", w), int64(10+w), chunks, chunkSize)
		}(w)
	}
	for w := 0; w < writers; w++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("unbounded writer failed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("unbounded writer hung")
		}
	}

	st := mgrs[0].Stats()
	if st.Admission.Shed != 0 || st.Admission.ConnShed != 0 {
		t.Fatalf("unbounded gate shed traffic: %+v", st.Admission)
	}
	if st.Admission.MaxPending != 0 {
		t.Fatalf("unbounded gate advertises a bound: %+v", st.Admission)
	}
	if st.Admission.Admitted < writers {
		t.Fatalf("admitted %d < %d writers: %+v", st.Admission.Admitted, writers, st.Admission)
	}
	if st.Admission.PeakQueueDepth < 1 {
		t.Fatalf("depth accounting dead: %+v", st.Admission)
	}
}
