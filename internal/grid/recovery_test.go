package grid

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/manager"
)

// TestManagerQuorumRecovery exercises the paper's manager-failure story
// end to end: clients push chunk-map replicas to the stripe benefactors at
// commit; the manager dies and restarts empty; re-registering benefactors
// return their replicas; datasets are restored once two-thirds of a map's
// stripe concur; reads then succeed against the recovered metadata.
func TestManagerQuorumRecovery(t *testing.T) {
	c := testCluster(t, 3, manager.Config{HeartbeatInterval: 100 * time.Millisecond})
	cl := testClient(t, c, client.Config{
		ChunkSize:       32 << 10,
		StripeWidth:     3,
		PushMapReplicas: true,
	})
	data1 := payload(201, 300<<10)
	data2 := payload(202, 200<<10)
	writeFile(t, cl, "rec.n1.t0", data1)
	writeFile(t, cl, "rec.n1.t1", data2)

	if err := c.RestartManager(manager.Config{HeartbeatInterval: 100 * time.Millisecond}, true); err != nil {
		t.Fatal(err)
	}
	// Benefactors notice the restart via heartbeat rejection, re-register,
	// and the recovering manager pulls their map replicas.
	if err := c.AwaitOnline(3, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// A fresh client (the old one may hold stale pooled conns).
	cl2 := testClient(t, c, client.Config{ChunkSize: 32 << 10})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := cl2.Stat("rec.n1"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dataset not recovered from benefactor quorum")
		}
		time.Sleep(50 * time.Millisecond)
	}
	info, err := cl2.Stat("rec.n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 2 {
		t.Fatalf("recovered %d versions, want 2", len(info.Versions))
	}
	if got := readFile(t, cl2, "rec.n1.t0"); !bytes.Equal(got, data1) {
		t.Fatal("t0 content wrong after recovery")
	}
	if got := readFile(t, cl2, "rec.n1.t1"); !bytes.Equal(got, data2) {
		t.Fatal("t1 content wrong after recovery")
	}
	c.Manager.FinishRecovery()
	if c.Manager.Recovering() {
		t.Fatal("FinishRecovery did not clear the flag")
	}
}

// TestManagerJournalRecovery restarts the manager with a journal and no
// benefactor quorum needed.
func TestManagerJournalRecovery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "mgr.journal")
	c := testCluster(t, 2, manager.Config{
		HeartbeatInterval: 100 * time.Millisecond,
		JournalPath:       jpath,
	})
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, StripeWidth: 2})
	data := payload(300, 256<<10)
	writeFile(t, cl, "jr.n1.t0", data)

	if err := c.RestartManager(manager.Config{
		HeartbeatInterval: 100 * time.Millisecond,
		JournalPath:       jpath,
	}, false); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitOnline(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	cl2 := testClient(t, c, client.Config{ChunkSize: 32 << 10})
	if got := readFile(t, cl2, "jr.n1"); !bytes.Equal(got, data) {
		t.Fatal("journal recovery lost data")
	}
}

// TestSessionExpiryReleasesReservations abandons a write mid-flight and
// verifies the manager's reservation GC reclaims the space.
func TestSessionExpiryReleasesReservations(t *testing.T) {
	c := testCluster(t, 1, manager.Config{
		SessionTTL:        100 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, ReserveQuantum: 1 << 20})
	w, err := cl.Create("abandoned.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload(400, 64<<10)); err != nil {
		t.Fatal(err)
	}
	// Abandon: no Close. The reservation must be GC'd.
	deadline := time.Now().Add(5 * time.Second)
	for {
		infos, err := cl.Benefactors()
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) == 1 && infos[0].Reserved == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reservation not reclaimed: %+v", infos)
		}
		time.Sleep(50 * time.Millisecond)
	}
	stats := c.Manager.Stats()
	if stats.ActiveSessions != 0 {
		t.Fatalf("active sessions = %d after expiry", stats.ActiveSessions)
	}
}
