package grid

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/manager"
)

// testCluster starts an unshaped cluster suitable for unit-speed tests.
// The GC grace deliberately exceeds any test's write-session duration:
// the grace period is the mechanism that protects in-flight (uncommitted)
// chunks from collection, so deployments must keep it above the longest
// expected session (see DESIGN.md). Tests that need fast GC build their
// own cluster.
func testCluster(t *testing.T, benefactors int, mcfg manager.Config) *Cluster {
	t.Helper()
	c, err := Start(Options{
		Benefactors:       benefactors,
		BenefactorProfile: device.Unshaped(),
		Manager:           mcfg,
		GCInterval:        200 * time.Millisecond,
		GCGrace:           30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func testClient(t *testing.T, c *Cluster, cfg client.Config) *client.Client {
	t.Helper()
	cl, _, err := c.NewClient(cfg, device.Unshaped())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func payload(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func writeFile(t *testing.T, cl *client.Client, name string, data []byte) *client.Writer {
	t.Helper()
	w, err := cl.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	return w
}

func readFile(t *testing.T, cl *client.Client, name string) []byte {
	t.Helper()
	r, err := cl.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWriteReadRoundTripAllProtocols(t *testing.T) {
	c := testCluster(t, 4, manager.Config{})
	protocols := []client.Protocol{client.SlidingWindow, client.IncrementalWrite, client.CompleteLocalWrite}
	for _, p := range protocols {
		t.Run(p.String(), func(t *testing.T) {
			cl := testClient(t, c, client.Config{
				Protocol:      p,
				StripeWidth:   4,
				ChunkSize:     64 << 10,
				TempFileBytes: 256 << 10,
			})
			data := payload(int64(p), 3<<20+12345) // deliberately not chunk-aligned
			name := fmt.Sprintf("app%d.n1.t1", p)
			writeFile(t, cl, name, data)
			got := readFile(t, cl, name)
			if !bytes.Equal(got, data) {
				t.Fatalf("read back %d bytes, want %d; content mismatch", len(got), len(data))
			}
		})
	}
}

func TestSmallAndEmptyFiles(t *testing.T) {
	c := testCluster(t, 2, manager.Config{})
	cl := testClient(t, c, client.Config{ChunkSize: 64 << 10})
	tests := []struct {
		name string
		size int
	}{
		{"tiny.n1.t1", 1},
		{"small.n1.t1", 1000},
		{"exact.n1.t1", 64 << 10},
		{"empty.n1.t1", 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			data := payload(int64(tt.size), tt.size)
			writeFile(t, cl, tt.name, data)
			got := readFile(t, cl, tt.name)
			if !bytes.Equal(got, data) {
				t.Fatalf("mismatch for %d-byte file", tt.size)
			}
		})
	}
}

func TestVersionChainAndOpenVersion(t *testing.T) {
	c := testCluster(t, 3, manager.Config{})
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10})

	var versions []core.VersionID
	var images [][]byte
	for ts := 0; ts < 3; ts++ {
		data := payload(int64(100+ts), 200<<10)
		images = append(images, data)
		writeFile(t, cl, fmt.Sprintf("app.n1.t%d", ts), data)
	}
	info, err := cl.Stat("app.n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 3 {
		t.Fatalf("got %d versions, want 3", len(info.Versions))
	}
	for _, v := range info.Versions {
		versions = append(versions, v.Version)
	}
	// Latest must be t2's image.
	if got := readFile(t, cl, "app.n1"); !bytes.Equal(got, images[2]) {
		t.Fatal("latest version is not the last write")
	}
	// Every version individually addressable.
	for i, ver := range versions {
		r, err := cl.Open("app.n1", client.OpenOptions{Version: ver})
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAll()
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, images[i]) {
			t.Fatalf("version %d content mismatch", ver)
		}
	}
	// Timestep-addressed read.
	if got := readFile(t, cl, "app.n1.t0"); !bytes.Equal(got, images[0]) {
		t.Fatal("timestep-addressed read mismatch")
	}
}

func TestIncrementalDedupSharesChunks(t *testing.T) {
	c := testCluster(t, 3, manager.Config{})
	cl := testClient(t, c, client.Config{ChunkSize: 64 << 10, Incremental: true})

	base := payload(7, 1<<20)
	w1 := writeFile(t, cl, "inc.n1.t0", base)
	m1 := w1.Metrics()
	if m1.Uploaded != int64(len(base)) || m1.Deduped != 0 {
		t.Fatalf("first write: uploaded %d deduped %d", m1.Uploaded, m1.Deduped)
	}

	// Second version: identical but one modified chunk-sized region.
	next := append([]byte(nil), base...)
	copy(next[128<<10:], payload(8, 64<<10))
	w2 := writeFile(t, cl, "inc.n1.t1", next)
	m2 := w2.Metrics()
	if m2.Deduped < int64(len(base))*3/4 {
		t.Fatalf("second write deduped only %d of %d bytes", m2.Deduped, len(base))
	}
	if m2.Uploaded > int64(len(base))/4 {
		t.Fatalf("second write uploaded %d bytes, want only the changed region", m2.Uploaded)
	}

	// Both versions still read back correctly (COW sharing intact).
	if got := readFile(t, cl, "inc.n1.t0"); !bytes.Equal(got, base) {
		t.Fatal("v0 corrupted by COW sharing")
	}
	if got := readFile(t, cl, "inc.n1.t1"); !bytes.Equal(got, next) {
		t.Fatal("v1 corrupted by COW sharing")
	}

	// Manager-side accounting: stored bytes < logical bytes.
	stats, err := cl.ManagerStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.StoredBytes >= stats.LogicalBytes {
		t.Fatalf("no dedup in accounting: stored %d logical %d", stats.StoredBytes, stats.LogicalBytes)
	}
}

func TestPessimisticWriteWaitsForReplication(t *testing.T) {
	c := testCluster(t, 4, manager.Config{
		ReplicationInterval: 50 * time.Millisecond,
		DefaultReplication:  2,
	})
	cl := testClient(t, c, client.Config{
		ChunkSize:   32 << 10,
		Semantics:   core.WritePessimistic,
		Replication: 2,
		StripeWidth: 2,
	})
	data := payload(9, 256<<10)
	w, err := cl.Create("pess.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Pessimistic Close returns only after replication target reached.
	info, err := cl.Stat("pess.n1")
	if err != nil {
		t.Fatal(err)
	}
	last := info.Versions[len(info.Versions)-1]
	if last.Replication < 2 {
		t.Fatalf("replication %d after pessimistic close, want >= 2", last.Replication)
	}
}

func TestBackgroundReplicationReachesTarget(t *testing.T) {
	c := testCluster(t, 4, manager.Config{
		ReplicationInterval: 50 * time.Millisecond,
		DefaultReplication:  3,
	})
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, Replication: 3, StripeWidth: 2})
	writeFile(t, cl, "repl.n1.t0", payload(10, 256<<10))

	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := cl.Stat("repl.n1")
		if err != nil {
			t.Fatal(err)
		}
		if info.Versions[0].Replication >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication stuck at %d, want 3", info.Versions[0].Replication)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestBenefactorFailureReadFailoverAndReRepair(t *testing.T) {
	c := testCluster(t, 4, manager.Config{
		ReplicationInterval: 50 * time.Millisecond,
		DefaultReplication:  2,
		HeartbeatInterval:   100 * time.Millisecond,
	})
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, Replication: 2, StripeWidth: 2})
	data := payload(11, 512<<10)
	writeFile(t, cl, "fail.n1.t0", data)

	// Wait for replication level 2.
	awaitLevel := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			info, err := cl.Stat("fail.n1")
			if err != nil {
				t.Fatal(err)
			}
			if info.Versions[0].Replication >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("replication %d, want %d", info.Versions[0].Replication, want)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	awaitLevel(2)

	// Kill one benefactor holding data; the read must fall over to
	// replicas, and the system must re-replicate to a healthy node.
	if err := c.StopBenefactor(0); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitOffline(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, cl, "fail.n1"); !bytes.Equal(got, data) {
		t.Fatal("read after benefactor failure returned wrong data")
	}
	awaitLevel(2) // repaired on surviving nodes
}

func TestDeleteAndGarbageCollection(t *testing.T) {
	// Aggressive GC settings: grace far below session length would race
	// in-flight writes, so this dedicated cluster only writes fast files
	// and then deletes them.
	c, err := Start(Options{
		Benefactors:       2,
		BenefactorProfile: device.Unshaped(),
		GCInterval:        100 * time.Millisecond,
		GCGrace:           50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, Replication: 1, StripeWidth: 2})
	writeFile(t, cl, "gc.n1.t0", payload(12, 256<<10))

	used := func() int64 {
		var total int64
		for _, b := range c.Benefactors {
			if b != nil {
				total += b.Store().Used()
			}
		}
		return total
	}
	if used() == 0 {
		t.Fatal("no data stored")
	}
	if err := cl.Delete("gc.n1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("gc.n1"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("open after delete: %v, want ErrNotFound", err)
	}
	// GC (grace 50ms, interval 100ms) must reclaim the orphaned chunks.
	deadline := time.Now().Add(5 * time.Second)
	for used() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d bytes still stored after delete + GC", used())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestGCDoesNotCollectLiveChunks(t *testing.T) {
	c, err := Start(Options{
		Benefactors:       2,
		BenefactorProfile: device.Unshaped(),
		GCInterval:        time.Hour, // rounds triggered manually below
		GCGrace:           50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, Replication: 1})
	data := payload(13, 256<<10)
	writeFile(t, cl, "keep.n1.t0", data)

	// Force several GC rounds past the grace period.
	time.Sleep(150 * time.Millisecond)
	for _, b := range c.Benefactors {
		if _, err := b.CollectGarbage(); err != nil {
			t.Fatal(err)
		}
	}
	if got := readFile(t, cl, "keep.n1"); !bytes.Equal(got, data) {
		t.Fatal("GC damaged live data")
	}
}

func TestReplacePolicyPrunesOldVersions(t *testing.T) {
	c := testCluster(t, 2, manager.Config{})
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10})
	if err := cl.SetPolicy("app", core.Policy{Kind: core.PolicyReplace}); err != nil {
		t.Fatal(err)
	}
	for ts := 0; ts < 4; ts++ {
		writeFile(t, cl, fmt.Sprintf("app.n1.t%d", ts), payload(int64(20+ts), 64<<10))
	}
	info, err := cl.Stat("app.n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 1 {
		t.Fatalf("replace policy kept %d versions, want 1", len(info.Versions))
	}
	if info.Versions[0].Name != "app.n1.t3" {
		t.Fatalf("survivor is %s, want app.n1.t3", info.Versions[0].Name)
	}
}

func TestPurgePolicyExpiresVersions(t *testing.T) {
	c := testCluster(t, 2, manager.Config{PruneInterval: 50 * time.Millisecond})
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10})
	if err := cl.SetPolicy("tmp", core.Policy{Kind: core.PolicyPurge, PurgeAfter: 200 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	writeFile(t, cl, "tmp.n1.t0", payload(30, 64<<10))
	deadline := time.Now().Add(5 * time.Second)
	for {
		list, err := cl.List("tmp")
		if err != nil {
			t.Fatal(err)
		}
		if len(list) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("purge policy did not expire the version")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestPolicyDryRunAuditsWithoutMutating drives the retention audit end
// to end through a federated metadata plane: the dry run names exactly
// the versions the next sweep would prune, merged across members into
// one per-folder report, and leaves the catalog untouched.
func TestPolicyDryRunAuditsWithoutMutating(t *testing.T) {
	c := fedCluster(t, 2, 2)
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, StripeWidth: 1})
	if err := cl.SetPolicy("aud", core.Policy{Kind: core.PolicyNone, Retention: core.Retention{KeepLast: 1}}); err != nil {
		t.Fatal(err)
	}
	// Two datasets, two versions each; KeepLast 1 condemns each .t0.
	for _, ds := range []string{"aud.n0", "aud.n1"} {
		for ts := 0; ts < 2; ts++ {
			writeFile(t, cl, fmt.Sprintf("%s.t%d", ds, ts), payload(int64(len(ds)+ts), 64<<10))
		}
	}
	resp, err := cl.PolicyDryRun("")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Folders) != 1 || resp.Folders[0].Folder != "aud" {
		t.Fatalf("dry run folders = %+v, want exactly [aud]", resp.Folders)
	}
	folder := resp.Folders[0]
	if folder.Policy.Retention.KeepLast != 1 {
		t.Fatalf("dry run echoes policy %+v, want KeepLast 1", folder.Policy)
	}
	var names []string
	for _, v := range folder.Victims {
		names = append(names, v.Name)
	}
	want := []string{"aud.n0.t0", "aud.n1.t0"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("dry run victims %v, want %v (merged across members, sorted)", names, want)
	}
	// Folder filter: a named folder restricts the report; an unenforced
	// folder yields nothing.
	if resp, err = cl.PolicyDryRun("aud"); err != nil || len(resp.Folders) != 1 {
		t.Fatalf("filtered dry run: %+v, %v", resp.Folders, err)
	}
	if resp, err = cl.PolicyDryRun("other"); err != nil || len(resp.Folders) != 0 {
		t.Fatalf("dry run of unenforced folder: %+v, %v", resp.Folders, err)
	}
	// The audit mutated nothing: both datasets still hold both versions.
	for _, ds := range []string{"aud.n0", "aud.n1"} {
		info, err := cl.Stat(ds)
		if err != nil {
			t.Fatal(err)
		}
		if len(info.Versions) != 2 {
			t.Fatalf("%s has %d versions after dry run, want 2", ds, len(info.Versions))
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	c := testCluster(t, 4, manager.Config{})
	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, _, err := c.NewClient(client.Config{ChunkSize: 64 << 10, StripeWidth: 2}, device.Unshaped())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for f := 0; f < 3; f++ {
				name := fmt.Sprintf("cc%d.n%d.t%d", i, i, f)
				data := payload(int64(i*10+f), 300<<10)
				w, err := cl.Create(name)
				if err != nil {
					errs <- err
					return
				}
				if _, err := w.Write(data); err != nil {
					errs <- err
					return
				}
				if err := w.Close(); err != nil {
					errs <- err
					return
				}
				if err := w.Wait(); err != nil {
					errs <- err
					return
				}
				r, err := cl.Open(name)
				if err != nil {
					errs <- fmt.Errorf("open %s: %w", name, err)
					return
				}
				got, err := r.ReadAll()
				r.Close()
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("%s corrupted", name)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestManagerStatsTransactions(t *testing.T) {
	c := testCluster(t, 2, manager.Config{})
	cl := testClient(t, c, client.Config{ChunkSize: 64 << 10, ReserveQuantum: 1 << 20})
	writeFile(t, cl, "tx.n1.t0", payload(40, 2<<20))
	stats, err := cl.ManagerStats()
	if err != nil {
		t.Fatal(err)
	}
	// alloc + extend(s) + commit: the paper reports four manager
	// transactions per 100 MB write; here just assert they are counted.
	if stats.Transactions < 3 {
		t.Fatalf("transactions = %d, want >= 3", stats.Transactions)
	}
	if stats.Datasets != 1 || stats.Versions != 1 {
		t.Fatalf("datasets %d versions %d", stats.Datasets, stats.Versions)
	}
}
