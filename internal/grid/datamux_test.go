package grid

import (
	"bytes"
	"io"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/manager"
)

// TestBatchedReadFailsOverMidBatchReplicaDeath kills a replica while a
// pipelined (DataMux) reader has batched BGetBatch requests in flight
// against it. The invariant under test is per-chunk — not per-batch —
// failover: chunks the dead node's batches could not serve are re-fetched
// individually from the surviving replica, chunks any batch did serve are
// never fetched twice (BytesFetched stays exactly the file size), and the
// restored bytes are identical.
func TestBatchedReadFailsOverMidBatchReplicaDeath(t *testing.T) {
	c := testCluster(t, 3, manager.Config{
		ReplicationInterval: 50 * time.Millisecond,
		DefaultReplication:  2,
		HeartbeatInterval:   100 * time.Millisecond,
	})
	cl := testClient(t, c, client.Config{
		ChunkSize:   16 << 10,
		Replication: 2,
		StripeWidth: 2,
		DataMux:     true,
		ReadBatch:   8,
		ReadAhead:   2, // keep the prefetch window behind the kill point
	})
	data := payload(73, 512<<10) // 32 chunks
	writeFile(t, cl, "muxfo.n1.t0", data)

	// Wait until every chunk has a second replica to fall over to.
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := cl.Stat("muxfo.n1")
		if err != nil {
			t.Fatal(err)
		}
		if info.Versions[0].Replication >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication stuck at %d", info.Versions[0].Replication)
		}
		time.Sleep(20 * time.Millisecond)
	}

	r, err := cl.Open("muxfo.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Consume the head, then kill the node the final chunk's batch will
	// be addressed to. The reader rotates each chunk's replica preference
	// by its index, so the batch target for chunk i is Locations[i][i%n].
	head := make([]byte, 64<<10)
	if _, err := io.ReadFull(r, head); err != nil {
		t.Fatal(err)
	}
	m := r.Map()
	last := len(m.Locations) - 1
	victimID := m.Locations[last][last%len(m.Locations[last])]
	victim := -1
	for i, id := range c.NodeIDs() {
		if id == victimID {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatalf("benefactor %s not found in cluster", victimID)
	}
	if err := c.StopBenefactor(victim); err != nil {
		t.Fatal(err)
	}

	rest, err := r.ReadAll()
	if err != nil {
		t.Fatalf("batched read after replica death: %v", err)
	}
	got := append(head, rest...)
	if !bytes.Equal(got, data) {
		t.Fatalf("failover read corrupted: %d bytes, want %d", len(got), len(data))
	}
	// Per-chunk failover must not re-fetch chunks a batch already served:
	// each chunk counts exactly once, so the total is exactly the file.
	if r.BytesFetched() != int64(len(data)) {
		t.Fatalf("fetched %d bytes for a %d-byte file: some chunk was fetched twice (per-batch failover?)",
			r.BytesFetched(), len(data))
	}
	// And batching must have engaged at all — on the surviving replicas
	// if nowhere else.
	if r.BytesBatched() == 0 {
		t.Fatal("no bytes served by BGetBatch; the batch scheduler never engaged")
	}
}
