package grid

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/federation"
)

// TestFederatedTimeTravel is the acceptance test for the version query
// plane and incremental restore over real sockets: two checkpoint
// versions with partial chunk sharing, written by distinct writer
// identities, queried for history and diff both through the federation
// router AND through a direct connection to the owning member (the
// answers must be identical), then restored both ways — the incremental
// restore must fetch no more than the diff plus one chunk of slack and
// produce output byte-identical to the full restore.
func TestFederatedTimeTravel(t *testing.T) {
	const (
		managers  = 2
		chunkSize = 32 << 10
		nChunks   = 8
		imageSize = nChunks * chunkSize
	)
	c := fedCluster(t, managers, 6)

	clA := testClient(t, c, client.Config{
		StripeWidth: 2, ChunkSize: chunkSize, Replication: 1, Writer: "rank0",
	})
	clB := testClient(t, c, client.Config{
		StripeWidth: 2, ChunkSize: chunkSize, Replication: 1, Writer: "rank1",
	})

	// Version 1: a random image. Version 2: same image with chunks 1, 4,
	// and 7 rewritten — fixed chunking keeps the other five chunks
	// byte-identical, so the expected diff is exactly those three spans.
	base := fedImage(4242, imageSize)
	mutated := append([]byte(nil), base...)
	changedChunks := []int{1, 4, 7}
	for _, ch := range changedChunks {
		off := ch * chunkSize
		for j := off; j < off+chunkSize; j++ {
			mutated[j] ^= 0xA5
		}
	}
	wantDiffBytes := int64(len(changedChunks) * chunkSize)

	write := func(cl *client.Client, name string, img []byte) {
		t.Helper()
		w, err := cl.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(img); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	write(clA, "tt.n0.t0", base)
	time.Sleep(10 * time.Millisecond) // distinct commit timestamps for AsOf
	write(clB, "tt.n0.t1", mutated)

	// History through the router: two versions, oldest first, with the
	// copy-on-write sharing and writer identity the commits declared.
	hist, err := clA.History("tt.n0")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.Versions) != 2 {
		t.Fatalf("history has %d versions, want 2", len(hist.Versions))
	}
	v1, v2 := hist.Versions[0], hist.Versions[1]
	if v1.Name != "tt.n0.t0" || v2.Name != "tt.n0.t1" {
		t.Fatalf("history names %q, %q", v1.Name, v2.Name)
	}
	if v1.Writer != "rank0" || v2.Writer != "rank1" {
		t.Fatalf("history writers %q, %q, want rank0, rank1", v1.Writer, v2.Writer)
	}
	if v1.FileSize != imageSize || v2.FileSize != imageSize {
		t.Fatalf("history sizes %d, %d, want %d", v1.FileSize, v2.FileSize, imageSize)
	}
	if v1.Chunks != nChunks || v2.Chunks != nChunks {
		t.Fatalf("history chunk counts %d, %d, want %d", v1.Chunks, v2.Chunks, nChunks)
	}
	if v1.SharedChunks != 0 || v1.SharedBytes != 0 {
		t.Fatalf("first version reports sharing: %d chunks, %d bytes", v1.SharedChunks, v1.SharedBytes)
	}
	wantShared := nChunks - len(changedChunks)
	if v2.SharedChunks != wantShared || v2.SharedBytes != int64(wantShared*chunkSize) {
		t.Fatalf("v2 shares %d chunks / %d bytes with v1, want %d / %d",
			v2.SharedChunks, v2.SharedBytes, wantShared, wantShared*chunkSize)
	}
	if v2.NewBytes != wantDiffBytes {
		t.Fatalf("v2 added %d new bytes, want %d", v2.NewBytes, wantDiffBytes)
	}
	if !v2.CommittedAt.After(v1.CommittedAt) {
		t.Fatalf("commit times not ordered: %v then %v", v1.CommittedAt, v2.CommittedAt)
	}

	// Diff through the router: exactly the three rewritten chunk spans,
	// sorted and non-overlapping.
	diff, err := clA.Diff("tt.n0", v1.Version, v2.Version)
	if err != nil {
		t.Fatal(err)
	}
	if diff.From != v1.Version || diff.To != v2.Version {
		t.Fatalf("diff resolved %d..%d, want %d..%d", diff.From, diff.To, v1.Version, v2.Version)
	}
	if diff.DiffBytes != wantDiffBytes {
		t.Fatalf("diff reports %d changed bytes, want %d", diff.DiffBytes, wantDiffBytes)
	}
	if len(diff.Ranges) != len(changedChunks) {
		t.Fatalf("diff has %d ranges, want %d: %+v", len(diff.Ranges), len(changedChunks), diff.Ranges)
	}
	for i, ch := range changedChunks {
		r := diff.Ranges[i]
		if r.Offset != int64(ch*chunkSize) || r.Length != chunkSize {
			t.Fatalf("range %d is [%d,+%d), want [%d,+%d)", i, r.Offset, r.Length, ch*chunkSize, chunkSize)
		}
	}

	// The same queries through a direct connection to the owning member
	// (bypassing the router) must return identical answers — the query
	// plane is owner-routed, so the router adds routing, not semantics.
	owner := federation.OwnerIndex("tt.n0", managers)
	direct, err := client.New(client.Config{ManagerAddr: c.Managers[owner].Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	dhist, err := direct.History("tt.n0")
	if err != nil {
		t.Fatalf("history via direct owner connection: %v", err)
	}
	if !reflect.DeepEqual(hist, dhist) {
		t.Fatalf("history differs between router and direct owner:\nrouter: %+v\ndirect: %+v", hist, dhist)
	}
	ddiff, err := direct.Diff("tt.n0", v1.Version, v2.Version)
	if err != nil {
		t.Fatalf("diff via direct owner connection: %v", err)
	}
	if !reflect.DeepEqual(diff, ddiff) {
		t.Fatalf("diff differs between router and direct owner:\nrouter: %+v\ndirect: %+v", diff, ddiff)
	}

	// AsOf resolution: an as-of open pinned to v1's commit instant must
	// serve v1's bytes even though v2 is newer.
	readAll := func(opts ...client.OpenOptions) ([]byte, *client.Reader) {
		t.Helper()
		r, err := clA.Open("tt.n0", opts...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAll()
		if err != nil {
			r.Close()
			t.Fatal(err)
		}
		return got, r
	}
	beforeAsOf := c.Stats()
	asOfGot, asOfR := readAll(client.OpenOptions{AsOf: v1.CommittedAt})
	asOfR.Close()
	if !bytes.Equal(asOfGot, base) {
		t.Fatal("as-of open pinned to v1's commit time did not serve v1's bytes")
	}
	// The instant must resolve manager-side, under the dataset stripe:
	// one lightweight MStatVersion probe and the map fetch — no MHistory
	// walk (the old client-side fallback, kept only for old servers).
	afterAsOf := c.Stats()
	if d := afterAsOf.Histories - beforeAsOf.Histories; d != 0 {
		t.Fatalf("as-of open issued %d MHistory RPCs, want 0 (server-side resolution)", d)
	}
	if d := afterAsOf.StatVersions - beforeAsOf.StatVersions; d != 1 {
		t.Fatalf("as-of open issued %d MStatVersion probes, want 1", d)
	}

	// Full restore of v2, then incremental restore of v2 against a local
	// v1 baseline: identical output, but the incremental fetch must stay
	// within the diff plus one chunk of slack, the remainder served as
	// hash-verified local copies.
	fullGot, fullR := readAll(client.OpenOptions{Version: v2.Version})
	fullFetched, fullLocal := fullR.BytesFetched(), fullR.BytesLocal()
	fullR.Close()
	if !bytes.Equal(fullGot, mutated) {
		t.Fatal("full restore is not byte-identical to the committed image")
	}
	if fullFetched != imageSize || fullLocal != 0 {
		t.Fatalf("full restore fetched %d / local %d, want %d / 0", fullFetched, fullLocal, imageSize)
	}

	incGot, incR := readAll(client.OpenOptions{
		Version: v2.Version, Baseline: v1.Version, BaselineData: base,
	})
	incFetched, incLocal := incR.BytesFetched(), incR.BytesLocal()
	incR.Close()
	if !bytes.Equal(incGot, fullGot) {
		t.Fatal("incremental restore is not byte-identical to the full restore")
	}
	if max := diff.DiffBytes + chunkSize; incFetched > max {
		t.Fatalf("incremental restore fetched %d bytes, want <= diff %d + one chunk slack (%d)",
			incFetched, diff.DiffBytes, max)
	}
	if incFetched+incLocal != imageSize {
		t.Fatalf("incremental restore fetched %d + local %d != file size %d", incFetched, incLocal, imageSize)
	}
	if incLocal == 0 {
		t.Fatal("incremental restore reused no baseline bytes")
	}

	// A diff against a stale epoch through the member that does NOT own
	// the dataset must be refused — the query plane honors the same
	// partition filter as the data plane.
	wrong, err := client.New(client.Config{ManagerAddr: c.Managers[(owner+1)%managers].Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close()
	if _, err := wrong.History("tt.n0"); err == nil {
		t.Fatal("non-owning member answered a history query for a dataset it does not own")
	}
	if _, err := wrong.Diff("tt.n0", v1.Version, v2.Version); err == nil {
		t.Fatal("non-owning member answered a diff query for a dataset it does not own")
	}
}
