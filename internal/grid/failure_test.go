package grid

import (
	"bytes"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/manager"
)

// TestWriteFailsOverToNewSessionAfterNodeDeath documents the write-path
// failure model: a stripe node dying mid-write fails the session (chunks
// already uploaded are GC'd as orphans), and a retry after the manager's
// heartbeat expiry allocates a stripe of live nodes and succeeds — the
// application-level retry the paper's desktop-grid setting assumes.
func TestWriteFailsOverToNewSessionAfterNodeDeath(t *testing.T) {
	c := testCluster(t, 3, manager.Config{HeartbeatInterval: 100 * time.Millisecond})
	cl := testClient(t, c, client.Config{
		ChunkSize:   16 << 10,
		StripeWidth: 3,
		BufferBytes: 32 << 10, // small window so uploads happen during Write
	})

	w, err := cl.Create("retry.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	// Kill a stripe node mid-write. With width 3 on a 3-node cluster the
	// victim is guaranteed to be in the stripe.
	half := payload(700, 256<<10)
	if _, err := w.Write(half); err != nil {
		t.Fatal(err)
	}
	if err := c.StopBenefactor(0); err != nil {
		t.Fatal(err)
	}
	// Keep writing until the failure surfaces (uploads are asynchronous).
	var writeErr error
	for i := 0; i < 64 && writeErr == nil; i++ {
		_, writeErr = w.Write(half)
	}
	if writeErr == nil {
		if err := w.Close(); err != nil {
			writeErr = err
		} else {
			writeErr = w.Wait()
		}
	}
	if writeErr == nil {
		t.Fatal("write pipeline survived a dead stripe node; expected an error")
	}

	// Wait for the manager to expire the dead node, then retry: the new
	// stripe excludes it and the write succeeds.
	if err := c.AwaitOffline(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	data := payload(701, 512<<10)
	writeFile(t, cl, "retry.n1.t1", data)
	if got := readFile(t, cl, "retry.n1.t1"); !bytes.Equal(got, data) {
		t.Fatal("retried write corrupted")
	}
}

// TestAbortedSessionChunksAreCollected verifies the full orphan story: a
// failed/aborted session leaves chunks on benefactors with no committed
// references, and the GC protocol reclaims them once past the grace age.
func TestAbortedSessionChunksAreCollected(t *testing.T) {
	c, err := Start(Options{
		Benefactors: 2,
		Manager:     manager.Config{SessionTTL: 100 * time.Millisecond, HeartbeatInterval: 50 * time.Millisecond},
		GCInterval:  time.Hour, // triggered manually
		GCGrace:     50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl := testClient(t, c, client.Config{ChunkSize: 16 << 10, StripeWidth: 2, BufferBytes: 32 << 10})

	w, err := cl.Create("orphan.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload(702, 256<<10)); err != nil {
		t.Fatal(err)
	}
	// Abandon without commit; wait for session expiry + chunk aging.
	time.Sleep(300 * time.Millisecond)

	used := func() int64 {
		var total int64
		for _, b := range c.Benefactors {
			if b != nil {
				total += b.Store().Used()
			}
		}
		return total
	}
	if used() == 0 {
		t.Skip("uploads had not landed before abandonment; nothing to collect")
	}
	deadline := time.Now().Add(10 * time.Second)
	for used() > 0 {
		c.CollectAll()
		if time.Now().After(deadline) {
			t.Fatalf("%d orphaned bytes never collected", used())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestReadUnaffectedByUnrelatedNodeDeath checks that losing a node that
// holds none of a dataset's chunks does not disturb reads.
func TestReadUnaffectedByUnrelatedNodeDeath(t *testing.T) {
	c := testCluster(t, 4, manager.Config{HeartbeatInterval: 100 * time.Millisecond})
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, StripeWidth: 2})
	data := payload(703, 256<<10)
	writeFile(t, cl, "safe.n1.t0", data)

	// Find a node with no chunks of this file and kill it.
	victim := -1
	for i, b := range c.Benefactors {
		if b != nil && b.Store().Len() == 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Skip("all nodes hold chunks (round-robin landed everywhere)")
	}
	if err := c.StopBenefactor(victim); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, cl, "safe.n1.t0"); !bytes.Equal(got, data) {
		t.Fatal("read disturbed by unrelated node death")
	}
}

// TestClusterSurvivesManagerlessWindow: benefactors keep serving committed
// data while the manager is down; only metadata operations fail.
func TestClusterSurvivesManagerlessWindow(t *testing.T) {
	c := testCluster(t, 2, manager.Config{HeartbeatInterval: 100 * time.Millisecond})
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, StripeWidth: 2, PushMapReplicas: true})
	data := payload(704, 128<<10)
	writeFile(t, cl, "window.n1.t0", data)

	// Fetch the map while the manager is alive.
	r, err := cl.Open("window.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Manager dies. The already-opened reader holds the chunk map and
	// node addresses; data still flows from the benefactors.
	addr := c.Manager.Addr()
	if err := c.Manager.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("read with dead manager: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted during managerless window")
	}
	// Metadata ops fail fast.
	if _, err := cl.Stat("window.n1"); err == nil {
		t.Fatal("stat succeeded with dead manager")
	}

	// Bring a recovery manager back on the same address for cleanup
	// symmetry (and to show the full heal cycle once more).
	if err := c.RestartManager(manager.Config{HeartbeatInterval: 100 * time.Millisecond}, true); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
}
