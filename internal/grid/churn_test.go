package grid

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/device"
	"stdchk/internal/faultpoint"
	"stdchk/internal/manager"
)

// churnCluster is a disk-backed cluster with a node TTL long enough that
// a prompt restart rejoins before the victim is ever suspected — the
// flap regime, where healing must be metadata-only.
func churnCluster(t *testing.T, donors int, scrub time.Duration) *Cluster {
	t.Helper()
	c, err := Start(Options{
		Benefactors:       donors,
		BenefactorProfile: device.Unshaped(),
		DiskBacked:        true,
		DiskDir:           t.TempDir(),
		ScrubInterval:     scrub,
		ScrubBatch:        1024,
		Manager: manager.Config{
			HeartbeatInterval:   50 * time.Millisecond,
			NodeTTL:             2 * time.Second,
			ReplicationInterval: 100 * time.Millisecond,
		},
		GCInterval: time.Hour,
		GCGrace:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// awaitReplicationTargets polls the manager's on-demand scan until every
// committed chunk is back at its dataset's replication target.
func awaitReplicationTargets(t *testing.T, c *Cluster, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		crit, bulk := c.Manager.UnderReplicated()
		if crit == 0 && bulk == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication never converged: %d critical + %d bulk chunks still under target", crit, bulk)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChurnMidStormRestartReconcilesWithoutRecopy kills a donor in the
// middle of a multi-writer storm and restarts it disk-intact. Writers
// whose stripe hit the dead node retry (the paper's application-level
// retry model); every committed file must restore byte-identical. Then,
// with the cluster quiescent and every chunk at target, a second flap of
// the same kind must heal purely by rejoin reconciliation: inventory
// re-adopted, zero repair bytes copied.
func TestChurnMidStormRestartReconcilesWithoutRecopy(t *testing.T) {
	c := churnCluster(t, 5, 0)
	const writers, files = 4, 3
	data := make(map[string][]byte) // final committed name -> payload
	var mu sync.Mutex

	var wg, firstFile sync.WaitGroup
	gate := make(chan struct{}) // closed once the flap has been injected
	errs := make(chan error, writers)
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		firstFile.Add(1)
		go func(wid int) {
			defer wg.Done()
			cl, _, err := c.NewClient(client.Config{
				ChunkSize: 16 << 10, StripeWidth: 2, Replication: 2,
				BufferBytes: 32 << 10,
			}, device.Unshaped())
			if err != nil {
				firstFile.Done()
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < files; i++ {
				img := payload(int64(800+wid*10+i), 96<<10)
				var lastErr error
				committed := false
				// A stripe node dying mid-write fails the session; the
				// application retries as a new version.
				for attempt := 0; attempt < 50 && !committed; attempt++ {
					name := fmt.Sprintf("storm.w%dn%d.t%d", wid, i, attempt)
					w, err := cl.Create(name)
					if err == nil {
						if _, err = w.Write(img); err == nil {
							if err = w.Close(); err == nil {
								err = w.Wait()
							}
						}
					}
					if err == nil {
						mu.Lock()
						data[name] = img
						mu.Unlock()
						committed = true
						break
					}
					lastErr = err
					time.Sleep(100 * time.Millisecond)
				}
				if !committed {
					if i == 0 {
						firstFile.Done()
					}
					errs <- fmt.Errorf("writer %d file %d never committed: %w", wid, i, lastErr)
					return
				}
				if i == 0 {
					// First file committed pre-kill; the rest of the storm
					// runs against the flapping donor.
					firstFile.Done()
					<-gate
				}
			}
		}(wid)
	}

	// Kill the victim only once it demonstrably holds chunk data (its own
	// stripes or replication copies), with every writer mid-storm.
	firstFile.Wait()
	for deadline := time.Now().Add(10 * time.Second); c.Benefactors[2].Store().Len() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("victim never received a chunk to carry through the flap")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.StopBenefactor(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartBenefactor(2); err != nil {
		t.Fatal(err)
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The disk-intact rejoin must re-adopt the victim's inventory.
	deadline := time.Now().Add(10 * time.Second)
	for c.Manager.Stats().Repair.Reconciled <= 0 {
		if time.Now().After(deadline) {
			t.Fatal("restart under storm reconciled 0 locations, want > 0")
		}
		time.Sleep(20 * time.Millisecond)
	}
	awaitReplicationTargets(t, c, 15*time.Second)
	verify := func() {
		t.Helper()
		cl := testClient(t, c, client.Config{ChunkSize: 16 << 10})
		for name, img := range data {
			if got := readFile(t, cl, name); !bytes.Equal(got, img) {
				t.Fatalf("%s corrupted across the churn", name)
			}
		}
	}
	verify()

	// Quiescent flap: all chunks at target, so the rejoin must re-adopt
	// the donor's inventory without copying a single repair byte.
	before := c.Manager.Stats().Repair
	if err := c.StopBenefactor(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartBenefactor(1); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for c.Manager.Stats().Repair.Reconciled <= before.Reconciled {
		if time.Now().After(deadline) {
			t.Fatal("quiescent flap never reconciled the rejoining donor's inventory")
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond) // several replication rounds
	awaitReplicationTargets(t, c, 5*time.Second)
	after := c.Manager.Stats().Repair
	if after.CopiedBytes != before.CopiedBytes {
		t.Fatalf("quiescent flap re-replicated %d bytes; reconciliation should have healed it for free",
			after.CopiedBytes-before.CopiedBytes)
	}
	verify()
}

// TestScrubCorruptionQuarantinedAndRepaired injects a latent corruption
// via the benefactor.scrub.corrupt faultpoint: the scrubber must fail
// verification, quarantine the replica, report it on the next heartbeat
// (manager drops the location and counts it), and repair must rebuild the
// lost replica — with the file restoring byte-identical throughout.
func TestScrubCorruptionQuarantinedAndRepaired(t *testing.T) {
	defer faultpoint.Reset()
	c := churnCluster(t, 3, 100*time.Millisecond)
	cl := testClient(t, c, client.Config{
		ChunkSize: 16 << 10, StripeWidth: 3, Replication: 2,
	})
	img := payload(810, 128<<10)
	writeFile(t, cl, "scrub.n1.t0", img)
	awaitReplicationTargets(t, c, 15*time.Second)

	// One scrub verification — on whichever donor's loop hits first —
	// fails as if a bit had flipped on disk.
	if err := faultpoint.Enable("benefactor.scrub.corrupt", faultpoint.Config{
		Mode: faultpoint.ModeError, Count: 1,
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.Manager.Stats().Repair.CorruptReported < 1 {
		if time.Now().After(deadline) {
			t.Fatal("scrub corruption never reported to the manager")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The dropped location leaves the chunk one failure from loss; repair
	// must bring it back to target from the surviving replica.
	awaitReplicationTargets(t, c, 15*time.Second)
	if copied := c.Manager.Stats().Repair.CopiedBytes; copied <= 0 {
		t.Fatalf("quarantined replica healed with %d copied bytes, want > 0", copied)
	}
	if got := readFile(t, cl, "scrub.n1.t0"); !bytes.Equal(got, img) {
		t.Fatal("file not byte-identical after scrub quarantine + repair")
	}
}
