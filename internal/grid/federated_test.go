package grid

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/federation"
	"stdchk/internal/manager"
	"stdchk/internal/proto"
)

// fedCluster starts a federated in-process deployment.
func fedCluster(t *testing.T, managers, benefactors int) *Cluster {
	t.Helper()
	c, err := Start(Options{
		Managers:          managers,
		Benefactors:       benefactors,
		BenefactorProfile: device.Unshaped(),
		Manager:           manager.Config{ReplicationInterval: time.Hour},
		GCInterval:        time.Hour, // GC only when the test asks
		GCGrace:           time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func fedImage(seed int64, size int) []byte {
	img := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(img)
	return img
}

// TestFederatedGrid is the federation acceptance test over real sockets:
// N managers each owning a namespace partition, benefactors registered
// with every member, and clients speaking through the partition router.
// Datasets must land on exactly the member the partition function names,
// read back intact from any client, list/stat/delete must work through
// the merged view, and a client that dials the wrong member directly must
// be refused by the partition filter.
func TestFederatedGrid(t *testing.T) {
	const managers, benefactors, datasets = 3, 4, 9
	c := fedCluster(t, managers, benefactors)

	// Every member must see the whole donor pool.
	for i, m := range c.Managers {
		if st := m.Stats(); st.OnlineBenefactors != benefactors {
			t.Fatalf("member %d sees %d/%d benefactors", i, st.OnlineBenefactors, benefactors)
		}
	}

	cl := testClient(t, c, client.Config{StripeWidth: 2, ChunkSize: 32 << 10, Replication: 1, Incremental: true})
	images := make(map[string][]byte, datasets)
	for i := 0; i < datasets; i++ {
		name := fmt.Sprintf("fedgrid.n%d.t0", i)
		img := fedImage(int64(1000+i), 96<<10)
		images[name] = img
		w, err := cl.Create(name)
		if err != nil {
			t.Fatalf("create %s: %v", name, err)
		}
		if _, err := w.Write(img); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			t.Fatalf("wait %s: %v", name, err)
		}
	}

	// The namespace must be partitioned exactly as the shared partition
	// function says: each member holds its own datasets and nothing else.
	wantPer := make([]int, managers)
	for i := 0; i < datasets; i++ {
		wantPer[federation.OwnerIndex(fmt.Sprintf("fedgrid.n%d", i), managers)]++
	}
	total := 0
	for i, m := range c.Managers {
		st := m.Stats()
		if st.Datasets != wantPer[i] {
			t.Fatalf("member %d holds %d datasets, partition function says %d", i, st.Datasets, wantPer[i])
		}
		if st.Federation == nil || st.Federation.MemberIndex != i || len(st.Federation.Members) != managers {
			t.Fatalf("member %d stats carry federation info %+v", i, st.Federation)
		}
		total += st.Datasets
	}
	if total != datasets {
		t.Fatalf("federation holds %d datasets, want %d", total, datasets)
	}
	// The partitioning must actually spread: with 9 datasets over 3
	// members, at least two members own something.
	busy := 0
	for _, n := range wantPer {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("all datasets hashed to one member (%v); partition test is vacuous", wantPer)
	}

	// Round-trip through the router from a fresh client.
	rcl := testClient(t, c, client.Config{StripeWidth: 2, ChunkSize: 32 << 10})
	for name, img := range images {
		r, err := rcl.Open(name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		got, err := r.ReadAll()
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, img) {
			t.Fatalf("%s read back %d bytes, mismatch", name, len(got))
		}
	}

	// Merged list and per-dataset stat through the router.
	list, err := rcl.List("fedgrid")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != datasets {
		t.Fatalf("merged list has %d datasets, want %d", len(list), datasets)
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Name >= list[i].Name {
			t.Fatalf("merged list unsorted at %d: %q >= %q", i, list[i-1].Name, list[i].Name)
		}
	}
	info, err := rcl.Stat("fedgrid.n0")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 1 || info.Versions[0].FileSize != 96<<10 {
		t.Fatalf("stat fedgrid.n0: %+v", info)
	}

	// Merged stats through the router-backed client.
	stats, err := rcl.ManagerStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Datasets != datasets || stats.OnlineBenefactors != benefactors {
		t.Fatalf("merged stats: datasets %d benefactors %d", stats.Datasets, stats.OnlineBenefactors)
	}
	if stats.Federation == nil || len(stats.Federation.Members) != managers {
		t.Fatalf("merged stats missing federation info: %+v", stats.Federation)
	}

	// Version chains stay member-local: a second timestep of n0 routes to
	// the same member, and incremental dedup against version 1 lands.
	img2 := append([]byte(nil), images["fedgrid.n0.t0"]...)
	copy(img2[4<<10:], fedImage(7777, 8<<10)) // mutate a slice in place
	w, err := cl.Create("fedgrid.n0.t1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(img2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	if m := w.Metrics(); m.Deduped == 0 {
		t.Fatalf("second timestep deduped %d bytes; version chain not member-local?", m.Deduped)
	}

	// Delete through the router removes the dataset from its owner.
	if err := rcl.Delete("fedgrid.n1", 0); err != nil {
		t.Fatal(err)
	}
	list, err = rcl.List("fedgrid")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != datasets-1 {
		t.Fatalf("after delete, merged list has %d datasets, want %d", len(list), datasets-1)
	}

	// The partition filter refuses a client that dials the wrong member
	// directly (bypassing the router).
	ownerOfN2 := federation.OwnerIndex("fedgrid.n2", managers)
	wrong := (ownerOfN2 + 1) % managers
	direct, err := client.New(client.Config{ManagerAddr: c.Managers[wrong].Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	if _, err := direct.Open("fedgrid.n2"); !errors.Is(err, core.ErrNotOwner) {
		t.Fatalf("wrong member served fedgrid.n2: %v, want ErrNotOwner", err)
	}
	ownerDirect, err := client.New(client.Config{ManagerAddr: c.Managers[ownerOfN2].Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ownerDirect.Close()
	r, err := ownerDirect.Open("fedgrid.n2")
	if err != nil {
		t.Fatalf("owner refused fedgrid.n2: %v", err)
	}
	r.Close()
}

// TestFederatedGCIntersection checks the federation's conservative
// garbage collection: a chunk physically shared by datasets on two
// different members survives the deletion of either one — the benefactor
// deletes it only when no member references it.
func TestFederatedGCIntersection(t *testing.T) {
	const managers = 2
	c := fedCluster(t, managers, 2)

	// Two dataset names owned by different members.
	nameAt := func(member int) string {
		for i := 0; ; i++ {
			key := fmt.Sprintf("gcx.n%d", i)
			if federation.OwnerIndex(key, managers) == member {
				return key + ".t0"
			}
		}
	}
	nameA, nameB := nameAt(0), nameAt(1)
	img := fedImage(9, 64<<10) // identical content: same chunk IDs on both members

	cl := testClient(t, c, client.Config{StripeWidth: 1, ChunkSize: 16 << 10, Replication: 1})
	for _, name := range []string{nameA, nameB} {
		w, err := cl.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(img); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
	}

	collect := func() int {
		t.Helper()
		time.Sleep(5 * time.Millisecond) // let the GC grace lapse
		total := 0
		for _, b := range c.Benefactors {
			n, err := b.CollectGarbage()
			if err != nil {
				t.Fatal(err)
			}
			total += n
		}
		return total
	}

	// Delete A: B's member still references the chunks, so the
	// intersection keeps them and B stays readable.
	if err := cl.Delete(nameA, 0); err != nil {
		t.Fatal(err)
	}
	if n := collect(); n != 0 {
		t.Fatalf("GC deleted %d chunks while member 1 still references them", n)
	}
	r, err := cl.Open(nameB)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	r.Close()
	if err != nil || !bytes.Equal(got, img) {
		t.Fatalf("dataset B corrupted after A's deletion and GC: %v", err)
	}

	// Delete B too: now no member references the chunks and GC reaps.
	if err := cl.Delete(nameB, 0); err != nil {
		t.Fatal(err)
	}
	if n := collect(); n == 0 {
		t.Fatal("GC reclaimed nothing after both datasets were deleted")
	}
}

// TestFederatedMemberDownDegradation pins the federation's degraded mode:
// with one member dead, benefactors keep heartbeating the survivors
// without falling into a re-register loop (re-registration clears live
// reservations — the bug this guards against), open write sessions on
// surviving members complete, and only the dead member's partition is
// unavailable.
func TestFederatedMemberDownDegradation(t *testing.T) {
	const managers = 2
	c := fedCluster(t, managers, 2)
	nameAt := func(member int) string {
		for i := 0; ; i++ {
			key := fmt.Sprintf("deg.n%d", i)
			if federation.OwnerIndex(key, managers) == member {
				return key + ".t0"
			}
		}
	}

	cl := testClient(t, c, client.Config{StripeWidth: 2, ChunkSize: 32 << 10, Replication: 1})
	// Open a write session on member 0's partition: its alloc reserves
	// benefactor space in member 0's registry.
	w, err := cl.Create(nameAt(0))
	if err != nil {
		t.Fatal(err)
	}

	reservedAt := func(m *manager.Manager) int64 {
		t.Helper()
		var resp proto.BenefactorsResp
		if err := m.Invoke(proto.MBenefactors, nil, &resp); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, b := range resp.Benefactors {
			total += b.Reserved
		}
		return total
	}
	if reservedAt(c.Managers[0]) == 0 {
		t.Fatal("open session reserved nothing on member 0")
	}

	// Kill member 1 and sit through several announce rounds (heartbeat
	// interval is 200ms in test clusters).
	if err := c.Managers[1].Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Second)

	// The dead member must not have pushed the benefactors into global
	// re-registration: member 0 still holds the session's reservations.
	if got := reservedAt(c.Managers[0]); got == 0 {
		t.Fatal("member 1's death wiped live reservations on member 0 (re-register loop)")
	}

	// The open session completes and reads back through the router.
	img := fedImage(21, 64<<10)
	if _, err := w.Write(img); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatalf("write on surviving member failed: %v", err)
	}
	r, err := cl.Open(nameAt(0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	r.Close()
	if err != nil || !bytes.Equal(got, img) {
		t.Fatalf("read on surviving member failed: %v", err)
	}

	// The dead member's partition is unavailable — and says so.
	if _, err := cl.Create(nameAt(1)); err == nil {
		t.Fatal("create on the dead member's partition succeeded")
	}
}
