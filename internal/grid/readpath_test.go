package grid

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/federation"
	"stdchk/internal/manager"
)

// TestReadPathCacheEndToEnd drives the whole read fast path over real
// sockets: repeat opens are served by the client chunk-map cache (zero
// getMaps for explicit versions, one MStatVersion probe for latest), a
// second client's cold opens hit the manager-side hot-map cache, and —
// the correctness half — a commit of version v+1 invalidates both layers
// so "latest" never serves stale bytes.
func TestReadPathCacheEndToEnd(t *testing.T) {
	c, err := Start(Options{
		Benefactors:       3,
		BenefactorProfile: device.Unshaped(),
		Manager:           manager.Config{ReplicationInterval: time.Hour},
		GCInterval:        time.Hour,
		GCGrace:           time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	cl1 := testClient(t, c, client.Config{StripeWidth: 2, ChunkSize: 16 << 10, Replication: 1})
	cl2 := testClient(t, c, client.Config{StripeWidth: 2, ChunkSize: 16 << 10, Replication: 1})

	write := func(name string, img []byte) {
		t.Helper()
		w, err := cl1.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(img); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	readLatest := func(cl *client.Client) []byte {
		t.Helper()
		r, err := cl.Open("rp.n1")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		got, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	v1 := fedImage(51, 64<<10)
	write("rp.n1.t0", v1)

	if got := readLatest(cl1); !bytes.Equal(got, v1) {
		t.Fatal("cold open read wrong bytes")
	}
	base := c.Stats()

	// Warm latest re-open: one revalidation probe, no map fetch, and the
	// bytes still verify (integrity is checked per chunk on read).
	if got := readLatest(cl1); !bytes.Equal(got, v1) {
		t.Fatal("warm open read wrong bytes")
	}
	after := c.Stats()
	if d := after.GetMaps - base.GetMaps; d != 0 {
		t.Fatalf("warm latest re-open issued %d getMaps, want 0", d)
	}
	if d := after.StatVersions - base.StatVersions; d != 1 {
		t.Fatalf("warm latest re-open issued %d statVersions, want 1", d)
	}

	// A second client is cold client-side but the manager has the map
	// memoized: its fetch must be a hot-map cache hit.
	if got := readLatest(cl2); !bytes.Equal(got, v1) {
		t.Fatal("second client read wrong bytes")
	}
	after2 := c.Stats()
	if d := after2.MapCache.Hits - after.MapCache.Hits; d != 1 {
		t.Fatalf("second client's fetch recorded %d hot-map cache hits, want 1", d)
	}

	// Version v+1: both cache layers must be invalidated — a stale
	// "latest" would return v1's bytes.
	v2 := fedImage(52, 64<<10)
	write("rp.n1.t1", v2)
	if got := readLatest(cl1); !bytes.Equal(got, v2) {
		t.Fatal("open after commit of v+1 served stale bytes")
	}
	if got := readLatest(cl2); !bytes.Equal(got, v2) {
		t.Fatal("second client served stale bytes after commit of v+1")
	}

	// The explicit old version stays addressable — from cl1's cache with
	// zero additional map fetches.
	info, err := cl1.Stat("rp.n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Versions) != 2 {
		t.Fatalf("chain has %d versions, want 2", len(info.Versions))
	}
	before := c.Stats()
	r, err := cl1.Open("rp.n1", client.OpenOptions{Version: info.Versions[0].Version})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	r.Close()
	if err != nil || !bytes.Equal(got, v1) {
		t.Fatalf("explicit old-version read failed: %v", err)
	}
	afterOld := c.Stats()
	if d := afterOld.GetMaps - before.GetMaps; d != 0 {
		t.Fatalf("cached explicit-version open issued %d getMaps, want 0", d)
	}
	if d := afterOld.StatVersions - before.StatVersions; d != 0 {
		t.Fatalf("cached explicit-version open issued %d statVersions, want 0", d)
	}
}

// TestFederatedCachedMapEpochCheck pins the federation satellite: a
// client holding a warm cached map keeps revalidating "latest" opens
// through the owner member, so when that member is restarted WITHOUT its
// federation identity (a real misconfiguration: -federation flags
// dropped), the epoch check refuses the probe and the client surfaces
// ErrEpochMismatch instead of quietly serving its cached map.
func TestFederatedCachedMapEpochCheck(t *testing.T) {
	const managers = 2
	c := fedCluster(t, managers, 2)

	// A dataset owned by member 0 — the member we will break.
	name := ""
	for i := 0; ; i++ {
		key := fmt.Sprintf("ep.n%d", i)
		if federation.OwnerIndex(key, managers) == 0 {
			name = key
			break
		}
	}
	cl := testClient(t, c, client.Config{StripeWidth: 1, ChunkSize: 16 << 10, Replication: 1})
	img := fedImage(77, 48<<10)
	w, err := cl.Create(name + ".t0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(img); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}

	// Warm the client cache and record the explicit version.
	r, err := cl.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	ver := r.Map().Version
	r.Close()

	// Replace member 0 with a standalone manager on the same address —
	// same socket, no partition identity.
	addr := c.Managers[0].Addr()
	if err := c.Managers[0].Close(); err != nil {
		t.Fatal(err)
	}
	var repl *manager.Manager
	deadline := time.Now().Add(5 * time.Second)
	for {
		repl, err = manager.New(manager.Config{
			ListenAddr:        addr,
			HeartbeatInterval: 200 * time.Millisecond,
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind standalone replacement: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.Managers[0] = repl
	c.Manager = repl

	// A "latest" open must revalidate — and the replacement, seeing a
	// partition epoch it does not carry, must refuse. The cached map is
	// NOT served.
	if _, err := cl.Open(name); !errors.Is(err, core.ErrEpochMismatch) {
		t.Fatalf("latest open against de-federated owner returned %v, want ErrEpochMismatch", err)
	}

	// An explicit-version open never consults the manager: committed
	// versions are immutable, so the cached map still serves reads (the
	// data plane is untouched by the metadata misconfiguration).
	r2, err := cl.Open(name, client.OpenOptions{Version: ver})
	if err != nil {
		t.Fatalf("explicit-version open from cache failed: %v", err)
	}
	got, err := r2.ReadAll()
	r2.Close()
	if err != nil || !bytes.Equal(got, img) {
		t.Fatalf("cached explicit-version read failed: %v", err)
	}
}
