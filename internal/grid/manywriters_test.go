package grid

import (
	"bytes"
	"sync"
	"testing"

	"stdchk/internal/chunker"
	"stdchk/internal/client"
	"stdchk/internal/device"
	"stdchk/internal/manager"
	"stdchk/internal/workload"
)

// TestManyWritersSaturation is the client-scale-out acceptance test for
// the striped metadata plane: dozens of concurrent clients, each
// checkpointing a small image trace with a mix of fixed and content-based
// chunking, all through real sockets against one manager. Every commit
// must land, every dataset must read back intact, and the manager's
// per-stripe counters must account for the traffic. Run under -race this
// doubles as the concurrency audit of the sharded catalog, session table
// and chunk index.
func TestManyWritersSaturation(t *testing.T) {
	writers, checkpoints := 24, 3
	imageSize := int64(96 << 10)
	if testing.Short() {
		writers, checkpoints = 8, 2
	}
	c := testCluster(t, 4, manager.Config{})
	specs := workload.ManyWriters(7, writers, checkpoints, imageSize)

	var wg sync.WaitGroup
	errCh := make(chan error, len(specs))
	for _, spec := range specs {
		wg.Add(1)
		go func(spec workload.WriterSpec) {
			defer wg.Done()
			cfg := client.Config{
				StripeWidth: 2,
				ChunkSize:   16 << 10,
				Replication: 1,
				Incremental: true,
			}
			if spec.CbCH {
				cfg.Chunking = client.ChunkCbCH
				cfg.CbCH = chunker.StreamParams{Window: 48, Bits: 12, Min: 4 << 10, Max: 16 << 10}
			}
			cl, _, err := c.NewClient(cfg, device.Unshaped())
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			for ti, img := range spec.Trace().Images {
				w, err := cl.Create(spec.FileName(ti))
				if err != nil {
					errCh <- err
					return
				}
				if _, err := w.Write(img); err != nil {
					errCh <- err
					return
				}
				if err := w.Close(); err != nil {
					errCh <- err
					return
				}
				if err := w.Wait(); err != nil {
					errCh <- err
					return
				}
			}
		}(spec)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	stats := c.Manager.Stats()
	if stats.Datasets != writers {
		t.Fatalf("manager has %d datasets, want %d", stats.Datasets, writers)
	}
	if stats.Versions != writers*checkpoints {
		t.Fatalf("manager has %d versions, want %d", stats.Versions, writers*checkpoints)
	}
	if len(stats.CatalogStripes) == 0 || len(stats.ChunkStripes) == 0 {
		t.Fatal("per-stripe counters missing from ManagerStats")
	}
	if stats.StripeOps == 0 {
		t.Fatal("stripe ops counter never moved under load")
	}
	// Striping must spread the traffic: with 24 datasets over 16 stripes,
	// more than one dataset stripe has to see lock activity.
	busy := 0
	for _, s := range stats.CatalogStripes {
		if s.Ops > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d dataset stripes saw traffic; sharding is not spreading load", busy)
	}

	// Spot-check round-trip integrity across both chunking regimes: the
	// first fixed writer and the first CbCH writer, every version.
	for _, spec := range specs[:2] {
		cl, _, err := c.NewClient(client.Config{StripeWidth: 2, ChunkSize: 16 << 10}, device.Unshaped())
		if err != nil {
			t.Fatal(err)
		}
		for ti, img := range spec.Trace().Images {
			r, err := cl.Open(spec.FileName(ti))
			if err != nil {
				t.Fatalf("%s: %v", spec.FileName(ti), err)
			}
			got, err := r.ReadAll()
			r.Close()
			if err != nil {
				t.Fatalf("%s: %v", spec.FileName(ti), err)
			}
			if !bytes.Equal(got, img) {
				t.Fatalf("%s corrupted on round trip (%d bytes, want %d)", spec.FileName(ti), len(got), len(img))
			}
		}
		cl.Close()
	}
}
