package grid

import (
	"bytes"
	"testing"

	"stdchk/internal/client"
	"stdchk/internal/device"
	"stdchk/internal/manager"
)

// TestDiskBackedClusterRoundTrip runs the full stack with file-backed
// benefactor stores (the daemon deployment configuration) instead of the
// in-memory stores the other tests use.
func TestDiskBackedClusterRoundTrip(t *testing.T) {
	c, err := Start(Options{
		Benefactors:       2,
		BenefactorProfile: device.Unshaped(),
		Manager:           manager.Config{},
		DiskBacked:        true,
		DiskDir:           t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, StripeWidth: 2, Replication: 1})
	data := payload(800, 700<<10)
	writeFile(t, cl, "disk.n1.t0", data)
	if got := readFile(t, cl, "disk.n1.t0"); !bytes.Equal(got, data) {
		t.Fatal("disk-backed round trip mismatch")
	}

	// The chunks really are on disk.
	var stored int64
	for _, b := range c.Benefactors {
		stored += b.Store().Used()
	}
	if stored < int64(len(data)) {
		t.Fatalf("stores hold %d bytes, wrote %d", stored, len(data))
	}
}
