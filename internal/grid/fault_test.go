package grid

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/faultpoint"
	"stdchk/internal/federation"
	"stdchk/internal/manager"
)

// copyTree copies the regular files of src into dst (recreated): the
// crash handler's kill -9 image of the manager's durable directory.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.RemoveAll(dst); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// crashRestart replaces the standalone manager with one recovering from
// cfg's journal, on the same address. Unlike Cluster.RestartManager it
// tolerates the dying manager's Close error — after an injected journal
// fault, Close deliberately reports the sticky write failure.
func crashRestart(t *testing.T, c *Cluster, cfg manager.Config) {
	t.Helper()
	addr := c.Manager.Addr()
	c.Manager.Close() // sticky journal error expected after an injected crash
	cfg.ListenAddr = addr
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 100 * time.Millisecond
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mgr, err := manager.New(cfg)
		if err == nil {
			c.Manager = mgr
			c.Managers[0] = mgr
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart manager from crash image: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestManagerCrashAtCommitPathPreservesCheckpoints is the end-to-end
// crash-consistency proof: for each fault point on the commit durability
// path, a manager crash at that instant (durable files captured with
// kill -9 semantics) followed by a restart from the crash image must
// leave every acknowledged checkpoint byte-identical on read-back.
func TestManagerCrashAtCommitPathPreservesCheckpoints(t *testing.T) {
	points := []string{
		"manager.journal.append",
		"manager.journal.fsync",
		"manager.commit.publish",
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			defer faultpoint.Reset()
			jdir := t.TempDir() // holds ONLY the journal + snapshots: the crash image
			crashDir := filepath.Join(t.TempDir(), "crash-image")
			jpath := filepath.Join(jdir, "mgr.journal")
			c := testCluster(t, 3, manager.Config{
				HeartbeatInterval: 100 * time.Millisecond,
				JournalPath:       jpath,
				FsyncJournal:      true,
			})
			cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, StripeWidth: 2})

			// Acknowledged checkpoints, half of them covered by a snapshot
			// so the restart exercises snapshot load + journal suffix.
			acked := map[string][]byte{}
			for i := 0; i < 3; i++ {
				name := fmt.Sprintf("crash.n%d.t0", i)
				data := payload(int64(500+i), 96<<10)
				writeFile(t, cl, name, data)
				acked[name] = data
			}
			if _, err := c.Manager.Snapshot(); err != nil {
				t.Fatal(err)
			}
			for i := 3; i < 6; i++ {
				name := fmt.Sprintf("crash.n%d.t0", i)
				data := payload(int64(500+i), 96<<10)
				writeFile(t, cl, name, data)
				acked[name] = data
			}

			faultpoint.SetCrashHandler(func(string) {
				copyTree(t, jdir, crashDir)
			})
			if err := faultpoint.Enable(point, faultpoint.Config{Mode: faultpoint.ModeCrash, Count: 1}); err != nil {
				t.Fatal(err)
			}
			// Write until the crash fires; the failed write was never
			// acknowledged, so it carries no durability promise.
			crashed := false
			for i := 0; i < 5 && !crashed; i++ {
				name := fmt.Sprintf("crash.x%d.t0", i)
				data := payload(int64(600+i), 96<<10)
				w, err := cl.Create(name)
				if err != nil {
					crashed = true
					break
				}
				if _, err := w.Write(data); err != nil {
					crashed = true
					break
				}
				if err := w.Close(); err != nil {
					crashed = true
					break
				}
				if err := w.Wait(); err != nil {
					crashed = true
					break
				}
				acked[name] = data
			}
			if !crashed {
				t.Fatalf("fault point %s never fired across 5 commits", point)
			}
			if _, err := os.Stat(crashDir); err != nil {
				t.Fatalf("crash handler left no image: %v", err)
			}

			// The manager "process" dies and restarts from the image taken
			// at the fault instant; benefactors (whose chunk stores
			// survived) re-register after heartbeat rejection.
			crashRestart(t, c, manager.Config{
				JournalPath:  filepath.Join(crashDir, "mgr.journal"),
				FsyncJournal: true,
			})
			if err := c.AwaitOnline(3, 10*time.Second); err != nil {
				t.Fatal(err)
			}

			cl2 := testClient(t, c, client.Config{ChunkSize: 32 << 10})
			for name, want := range acked {
				if got := readFile(t, cl2, name); !bytes.Equal(got, want) {
					t.Fatalf("crash at %s: acknowledged checkpoint %s corrupted (%d bytes read)", point, name, len(got))
				}
			}
			if st := c.Manager.Stats(); st.SnapshotSeq == 0 {
				t.Fatal("restart did not recover from the snapshot")
			}
		})
	}
}

// stormCluster is fedCluster with a journal and group-commit fsync: the
// configuration under which the federation must degrade gracefully.
func stormCluster(t *testing.T, jpath string) *Cluster {
	t.Helper()
	c, err := Start(Options{
		Managers:          2,
		Benefactors:       3,
		BenefactorProfile: device.Unshaped(),
		Manager: manager.Config{
			HeartbeatInterval:   100 * time.Millisecond,
			ReplicationInterval: time.Hour,
			JournalPath:         jpath,
			FsyncJournal:        true,
		},
		GCInterval: time.Hour,
		GCGrace:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestWriteStormSurvivesMemberRestart pins the client-side graceful
// degradation path end to end: a federation member is killed and
// restarted (journal recovery) in the middle of a multi-writer storm.
// Writes may fail while the member is down — but only gracefully (typed
// retryable exhaustion or an application-level refusal), every
// acknowledged write must read back byte-identical afterwards, and the
// partition must accept writes again once the member returns.
func TestWriteStormSurvivesMemberRestart(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "fed.journal")
	c := stormCluster(t, jpath)

	type outcome struct {
		name string
		data []byte
	}
	var (
		mu     sync.Mutex
		acked  []outcome
		failed []error
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const writers = 4
	for wid := 0; wid < writers; wid++ {
		// Clients are built on the test goroutine (testClient may Fatal).
		cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, StripeWidth: 2})
		wg.Add(1)
		go func(wid int, cl *client.Client) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("storm.w%dn%d.t0", wid, i)
				data := payload(int64(wid*1000+i), 64<<10)
				err := func() error {
					w, err := cl.Create(name)
					if err != nil {
						return err
					}
					if _, err := w.Write(data); err != nil {
						return err
					}
					if err := w.Close(); err != nil {
						return err
					}
					return w.Wait()
				}()
				mu.Lock()
				if err != nil {
					failed = append(failed, fmt.Errorf("%s: %w", name, err))
				} else {
					acked = append(acked, outcome{name, data})
				}
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
			}
		}(wid, cl)
	}

	// Let the storm establish, then kill and restart member 0 with journal
	// recovery while writes are in flight.
	time.Sleep(100 * time.Millisecond)
	if err := c.RestartManager(manager.Config{
		HeartbeatInterval: 100 * time.Millisecond,
		JournalPath:       jpath,
		FsyncJournal:      true,
	}, false); err != nil {
		t.Fatal(err)
	}
	if err := c.AwaitOnline(3, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // storm continues against the recovered member
	close(stop)
	wg.Wait()

	if len(acked) == 0 {
		t.Fatal("storm acknowledged nothing")
	}
	t.Logf("storm: %d acknowledged, %d failed during the restart window", len(acked), len(failed))

	// Zero acknowledged-but-lost: every ack survives the crash window.
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10})
	for _, o := range acked {
		if got := readFile(t, cl, o.name); !bytes.Equal(got, o.data) {
			t.Fatalf("acknowledged write %s lost or corrupted across member restart", o.name)
		}
	}

	// The restarted member's partition accepts new work: write to a
	// dataset that hashes to member 0 and read it back.
	nameAt := func(member int) string {
		for i := 0; ; i++ {
			key := fmt.Sprintf("poststorm.n%d", i)
			if federation.OwnerIndex(key, 2) == member {
				return key + ".t0"
			}
		}
	}
	data := payload(42, 64<<10)
	writeFile(t, cl, nameAt(0), data)
	if got := readFile(t, cl, nameAt(0)); !bytes.Equal(got, data) {
		t.Fatal("post-restart write to the recovered partition corrupted")
	}
}

// TestRouterRetriesTransientTransportFaults deterministically pins the
// router's degradation contract with injected transport failures: a
// bounded burst of send errors is absorbed by retries, an unbounded
// outage surfaces as core.ErrRetryable after backoff exhaustion, and
// service resumes once the fault clears.
func TestRouterRetriesTransientTransportFaults(t *testing.T) {
	defer faultpoint.Reset()
	// Hour-scale background intervals: while the fault is armed, the only
	// wire traffic is the calls this test makes, so hit accounting is
	// deterministic.
	c, err := Start(Options{
		Managers:          2,
		Benefactors:       2,
		BenefactorProfile: device.Unshaped(),
		Manager: manager.Config{
			HeartbeatInterval:   time.Hour,
			ReplicationInterval: time.Hour,
		},
		GCInterval: time.Hour,
		GCGrace:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl := testClient(t, c, client.Config{ChunkSize: 32 << 10, StripeWidth: 1})
	writeFile(t, cl, "rt.n0.t0", payload(7, 48<<10))

	// A transient two-failure burst: the router's four bounded attempts
	// absorb it and the caller never sees an error.
	if err := faultpoint.Enable("wire.send", faultpoint.Config{Mode: faultpoint.ModeError, Count: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat("rt.n0"); err != nil {
		t.Fatalf("stat failed despite retry budget covering the fault burst: %v", err)
	}

	// A persistent outage: retries exhaust and the failure surfaces as the
	// typed retryable sentinel, so callers can degrade gracefully instead
	// of treating it as data loss.
	if err := faultpoint.Enable("wire.send", faultpoint.Config{Mode: faultpoint.ModeError}); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Stat("rt.n0")
	if err == nil {
		t.Fatal("stat succeeded during a total transport outage")
	}
	if !errors.Is(err, core.ErrRetryable) {
		t.Fatalf("outage error %v is not marked core.ErrRetryable", err)
	}

	// Fault clears; the next call dials fresh connections and succeeds.
	faultpoint.Disable("wire.send")
	if _, err := cl.Stat("rt.n0"); err != nil {
		t.Fatalf("stat failed after the fault cleared: %v", err)
	}
}
