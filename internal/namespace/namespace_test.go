package namespace

import (
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	tests := []struct {
		in   string
		want Name
	}{
		{"blast.n1.t0", Name{App: "blast", Node: "n1", Timestep: 0}},
		{"blast.n1.t17", Name{App: "blast", Node: "n1", Timestep: 17}},
		{"bms.node-04.t3", Name{App: "bms", Node: "node-04", Timestep: 3}},
		{"sim.v2.n9.t12", Name{App: "sim.v2", Node: "n9", Timestep: 12}},
		{"app.n1.42", Name{App: "app", Node: "n1", Timestep: 42}},
		{"app.n1.T8", Name{App: "app", Node: "n1", Timestep: 8}},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := Parse(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("Parse(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{
		"", "noversion", "two.parts", "app.n1.txyz", "app.n1.t-3",
		"app.n1.t", ".n1.t3", "app..t3",
	} {
		t.Run(in, func(t *testing.T) {
			if _, err := Parse(in); err == nil {
				t.Fatalf("Parse(%q) succeeded", in)
			}
		})
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(app, node string, ts uint16) bool {
		if app == "" || node == "" {
			return true
		}
		// Dots inside node would be re-split into the app; the convention
		// reserves dots as separators for the last two fields.
		for _, r := range app + node {
			if r == '.' || r == '/' {
				return true
			}
		}
		n := Name{App: app, Node: node, Timestep: int(ts)}
		got, err := Parse(n.String())
		return err == nil && got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetAndFolder(t *testing.T) {
	n := Name{App: "blast", Node: "n3", Timestep: 9}
	if n.Dataset() != "blast.n3" {
		t.Fatalf("Dataset() = %q", n.Dataset())
	}
	if n.Folder() != "blast" {
		t.Fatalf("Folder() = %q", n.Folder())
	}
}

func TestDatasetOfFallback(t *testing.T) {
	if got := DatasetOf("blast.n1.t5"); got != "blast.n1" {
		t.Fatalf("DatasetOf convention name = %q", got)
	}
	if got := DatasetOf("random-file.dat"); got != "random-file.dat" {
		t.Fatalf("DatasetOf plain name = %q", got)
	}
	if got := FolderOf("blast.n1.t5"); got != "blast" {
		t.Fatalf("FolderOf = %q", got)
	}
	if got := FolderOf("plain"); got != "" {
		t.Fatalf("FolderOf plain = %q", got)
	}
}

func TestSplitJoinPath(t *testing.T) {
	tests := []struct {
		in         string
		folder, fn string
	}{
		{"blast/blast.n1.t3", "blast", "blast.n1.t3"},
		{"/blast/blast.n1.t3/", "blast", "blast.n1.t3"},
		{"file.only", "", "file.only"},
		{"a/b/c", "a/b", "c"},
	}
	for _, tt := range tests {
		folder, fn := SplitPath(tt.in)
		if folder != tt.folder || fn != tt.fn {
			t.Errorf("SplitPath(%q) = (%q,%q), want (%q,%q)", tt.in, folder, fn, tt.folder, tt.fn)
		}
	}
	if got := JoinPath("blast", "f"); got != "blast/f" {
		t.Fatalf("JoinPath = %q", got)
	}
	if got := JoinPath("", "f"); got != "f" {
		t.Fatalf("JoinPath root = %q", got)
	}
}
