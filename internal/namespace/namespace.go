// Package namespace implements stdchk's checkpoint naming convention and
// folder layout (paper §IV.D): a file named A.Ni.Tj is application A,
// running on node Ni, checkpointing at timestep Tj. All timesteps of the
// same (application, node) pair are versions of one dataset, and all
// datasets of an application live in one folder whose metadata carries the
// data-lifetime policy.
package namespace

import (
	"fmt"
	"strconv"
	"strings"
)

// Name is a parsed checkpoint file name following the A.Ni.Tj convention.
type Name struct {
	// App is the application identifier (the folder).
	App string
	// Node is the compute node / process identifier.
	Node string
	// Timestep is the checkpoint timestep Tj.
	Timestep int
}

// Parse parses "A.Ni.Tj". The application part may itself contain dots;
// the final two dot-separated fields are the node and the timestep.
func Parse(s string) (Name, error) {
	parts := strings.Split(s, ".")
	if len(parts) < 3 {
		return Name{}, fmt.Errorf("namespace: %q does not follow A.Ni.Tj", s)
	}
	tsPart := parts[len(parts)-1]
	node := parts[len(parts)-2]
	app := strings.Join(parts[:len(parts)-2], ".")
	if app == "" || node == "" {
		return Name{}, fmt.Errorf("namespace: %q has empty application or node field", s)
	}
	ts, err := parseTimestep(tsPart)
	if err != nil {
		return Name{}, fmt.Errorf("namespace: %q: %w", s, err)
	}
	return Name{App: app, Node: node, Timestep: ts}, nil
}

func parseTimestep(s string) (int, error) {
	trimmed := strings.TrimPrefix(strings.TrimPrefix(s, "t"), "T")
	if trimmed == "" {
		return 0, fmt.Errorf("empty timestep field %q", s)
	}
	ts, err := strconv.Atoi(trimmed)
	if err != nil {
		return 0, fmt.Errorf("timestep field %q: %w", s, err)
	}
	if ts < 0 {
		return 0, fmt.Errorf("negative timestep %d", ts)
	}
	return ts, nil
}

// String formats the name back to its A.Ni.Tj form.
func (n Name) String() string {
	return fmt.Sprintf("%s.%s.t%d", n.App, n.Node, n.Timestep)
}

// Dataset is the version-chain key: all timesteps of one (application,
// node) pair are versions of the same dataset.
func (n Name) Dataset() string {
	return n.App + "." + n.Node
}

// Folder is the per-application folder carrying policy metadata.
func (n Name) Folder() string {
	return n.App
}

// DatasetOf returns the dataset key for an arbitrary file name: A.Ni.Tj
// names collapse to their (application, node) chain; other names are their
// own dataset (stdchk accepts non-checkpoint files, they just get no
// timestep semantics).
func DatasetOf(file string) string {
	n, err := Parse(file)
	if err != nil {
		return file
	}
	return n.Dataset()
}

// FolderOf returns the policy folder for an arbitrary file name. Names that
// do not follow the convention fall into the root folder "".
func FolderOf(file string) string {
	n, err := Parse(file)
	if err != nil {
		return ""
	}
	return n.Folder()
}

// SplitPath splits a "/stdchk/<folder>/<file>"-style mount path into folder
// and file. Accepted forms: "<file>", "<folder>/<file>", and absolute
// variants with the mount prefix already stripped.
func SplitPath(path string) (folder, file string) {
	path = strings.Trim(path, "/")
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[:i], path[i+1:]
	}
	return "", path
}

// JoinPath reassembles a folder and file into a mount-relative path.
func JoinPath(folder, file string) string {
	if folder == "" {
		return file
	}
	return folder + "/" + file
}
