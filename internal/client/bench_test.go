package client_test

import (
	"io"
	"testing"
	"time"

	"stdchk/internal/benefactor"
	"stdchk/internal/chunker"
	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/manager"
)

// BenchmarkEmitChunkPipeline measures the full sliding-window write path —
// chunking, hashing, framing, upload, commit — against an unshaped in-process
// manager and a 4-wide stripe, 8 MB per op. Allocation count is the metric
// of interest: the steady-state path should recycle chunk buffers instead of
// allocating per chunk.
func BenchmarkEmitChunkPipeline(b *testing.B) {
	benchEmitChunkPipeline(b, client.Config{StripeWidth: 4})
}

// BenchmarkEmitChunkPipelineCbCH is the same write with the streaming
// content-defined boundary finder in the path: the delta against the
// fixed-size bench is the rolling-hash scan cost on the filling thread.
func BenchmarkEmitChunkPipelineCbCH(b *testing.B) {
	benchEmitChunkPipeline(b, client.Config{
		StripeWidth: 4,
		Chunking:    client.ChunkCbCH,
		CbCH:        chunker.StreamParams{Window: 48, Bits: 18, Min: 256 << 10, Max: 1 << 20},
	})
}

// BenchmarkOpenRead measures the restart fast path end to end: one op is
// Open (or OpenVersion) of a committed 8-chunk image plus a full read and
// Close, against an unshaped in-process manager and 4 benefactors. The
// cached variants re-open through the client chunk-map cache (explicit
// version: zero manager RPCs; latest: one MStatVersion probe); uncached
// is the historical full-getMap path. The bench-compare CI job gates
// allocs/op on this path.
func BenchmarkOpenRead(b *testing.B) {
	for _, variant := range []struct {
		name         string
		cacheEntries int
		version      bool // open by explicit version
	}{
		{"version-cached", 0, true},
		{"latest-cached", 0, false},
		{"latest-uncached", -1, false},
	} {
		b.Run(variant.name, func(b *testing.B) {
			benchOpenRead(b, variant.cacheEntries, variant.version)
		})
	}
}

// BenchmarkUploadPipeline contrasts the two write transports over the
// same stripe: "serial" is one blocking BPut per chunk per stripe node,
// "mux" the DataMux windowed pipeline (in-flight BPuts over shared
// session-tagged connections, acks decoupled from sends). Rides the
// bench-compare allocs gate: the pipelined path must not add per-chunk
// allocations over the serial one.
func BenchmarkUploadPipeline(b *testing.B) {
	for _, variant := range []struct {
		name string
		cfg  client.Config
	}{
		{"serial", client.Config{StripeWidth: 4}},
		{"mux", client.Config{StripeWidth: 4, DataMux: true, UploadWindow: 8}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			benchEmitChunkPipeline(b, variant.cfg)
		})
	}
}

// BenchmarkReadPath contrasts the two restore transports: "serial" is the
// per-chunk BGet path, "mux" the DataMux plane (prefetch window grouped
// by replica into BGetBatch requests over shared connections). One op is
// an explicit-version cached open plus a full read of an 8-chunk image,
// so the delta between the variants is pure data-plane transport. Rides
// the bench-compare allocs gate.
func BenchmarkReadPath(b *testing.B) {
	for _, variant := range []struct {
		name string
		mux  bool
	}{
		{"serial", false},
		{"mux", true},
	} {
		b.Run(variant.name, func(b *testing.B) {
			benchReadPath(b, variant.mux)
		})
	}
}

func benchReadPath(b *testing.B, mux bool) {
	mgr, err := manager.New(manager.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	for i := 0; i < 4; i++ {
		bf, err := benefactor.New(benefactor.Config{ManagerAddr: mgr.Addr()})
		if err != nil {
			b.Fatal(err)
		}
		defer bf.Close()
	}
	for deadline := time.Now().Add(5 * time.Second); mgr.Stats().OnlineBenefactors < 4; {
		if time.Now().After(deadline) {
			b.Fatalf("only %d benefactors registered", mgr.Stats().OnlineBenefactors)
		}
		time.Sleep(time.Millisecond)
	}
	cl, err := client.New(client.Config{
		ManagerAddr: mgr.Addr(),
		StripeWidth: 4,
		ChunkSize:   64 << 10,
		Replication: 1,
		ReadAhead:   8,
		DataMux:     mux,
		ReadBatch:   8,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	const name = "bench.n3.t0"
	w, err := cl.Create(name)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 512<<10) // 8 chunks of 64 KB
	for i := range data {
		data[i] = byte(i * 29)
	}
	if _, err := w.Write(data); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		b.Fatal(err)
	}
	info, err := cl.Stat(name)
	if err != nil {
		b.Fatal(err)
	}
	ver := info.Versions[len(info.Versions)-1].Version

	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := cl.Open(name, client.OpenOptions{Version: ver})
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.Read(buf); err != nil {
				if err == io.EOF {
					break
				}
				b.Fatal(err)
			}
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchOpenRead(b *testing.B, cacheEntries int, byVersion bool) {
	mgr, err := manager.New(manager.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	for i := 0; i < 4; i++ {
		bf, err := benefactor.New(benefactor.Config{ManagerAddr: mgr.Addr()})
		if err != nil {
			b.Fatal(err)
		}
		defer bf.Close()
	}
	for deadline := time.Now().Add(5 * time.Second); mgr.Stats().OnlineBenefactors < 4; {
		if time.Now().After(deadline) {
			b.Fatalf("only %d benefactors registered", mgr.Stats().OnlineBenefactors)
		}
		time.Sleep(time.Millisecond)
	}
	cl, err := client.New(client.Config{
		ManagerAddr:     mgr.Addr(),
		StripeWidth:     4,
		ChunkSize:       64 << 10,
		Replication:     1,
		MapCacheEntries: cacheEntries,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	const name = "bench.n2.t0"
	w, err := cl.Create(name)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 512<<10) // 8 chunks of 64 KB
	for i := range data {
		data[i] = byte(i * 17)
	}
	if _, err := w.Write(data); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		b.Fatal(err)
	}
	ver := core.VersionID(0)
	if byVersion {
		info, err := cl.Stat(name)
		if err != nil {
			b.Fatal(err)
		}
		ver = info.Versions[len(info.Versions)-1].Version
	}

	buf := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := cl.Open(name, client.OpenOptions{Version: ver})
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := r.Read(buf); err != nil {
				if err == io.EOF {
					break
				}
				b.Fatal(err)
			}
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEmitChunkPipeline(b *testing.B, cfg client.Config) {
	mgr, err := manager.New(manager.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	var benefs []*benefactor.Benefactor
	for i := 0; i < 4; i++ {
		bf, err := benefactor.New(benefactor.Config{ManagerAddr: mgr.Addr()})
		if err != nil {
			b.Fatal(err)
		}
		defer bf.Close()
		benefs = append(benefs, bf)
	}
	_ = benefs
	for deadline := time.Now().Add(5 * time.Second); mgr.Stats().OnlineBenefactors < 4; {
		if time.Now().After(deadline) {
			b.Fatalf("only %d benefactors registered", mgr.Stats().OnlineBenefactors)
		}
		time.Sleep(time.Millisecond)
	}
	cfg.ManagerAddr = mgr.Addr()
	cl, err := client.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 13)
	}
	const chunks = 8
	b.SetBytes(chunks << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := cl.Create("bench.n1.t0")
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < chunks; j++ {
			data[0] = byte(i + j) // distinct chunks per op
			if _, err := w.Write(data); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}
