package client_test

import (
	"testing"

	"stdchk/internal/benefactor"
	"stdchk/internal/client"
	"stdchk/internal/manager"
)

// BenchmarkEmitChunkPipeline measures the full sliding-window write path —
// chunking, hashing, framing, upload, commit — against an unshaped in-process
// manager and a 4-wide stripe, 8 MB per op. Allocation count is the metric
// of interest: the steady-state path should recycle chunk buffers instead of
// allocating per chunk.
func BenchmarkEmitChunkPipeline(b *testing.B) {
	mgr, err := manager.New(manager.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	var benefs []*benefactor.Benefactor
	for i := 0; i < 4; i++ {
		bf, err := benefactor.New(benefactor.Config{ManagerAddr: mgr.Addr()})
		if err != nil {
			b.Fatal(err)
		}
		defer bf.Close()
		benefs = append(benefs, bf)
	}
	_ = benefs
	cl, err := client.New(client.Config{ManagerAddr: mgr.Addr(), StripeWidth: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 13)
	}
	const chunks = 8
	b.SetBytes(chunks << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := cl.Create("bench.n1.t0")
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < chunks; j++ {
			data[0] = byte(i + j) // distinct chunks per op
			if _, err := w.Write(data); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}
