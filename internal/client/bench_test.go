package client_test

import (
	"testing"
	"time"

	"stdchk/internal/benefactor"
	"stdchk/internal/chunker"
	"stdchk/internal/client"
	"stdchk/internal/manager"
)

// BenchmarkEmitChunkPipeline measures the full sliding-window write path —
// chunking, hashing, framing, upload, commit — against an unshaped in-process
// manager and a 4-wide stripe, 8 MB per op. Allocation count is the metric
// of interest: the steady-state path should recycle chunk buffers instead of
// allocating per chunk.
func BenchmarkEmitChunkPipeline(b *testing.B) {
	benchEmitChunkPipeline(b, client.Config{StripeWidth: 4})
}

// BenchmarkEmitChunkPipelineCbCH is the same write with the streaming
// content-defined boundary finder in the path: the delta against the
// fixed-size bench is the rolling-hash scan cost on the filling thread.
func BenchmarkEmitChunkPipelineCbCH(b *testing.B) {
	benchEmitChunkPipeline(b, client.Config{
		StripeWidth: 4,
		Chunking:    client.ChunkCbCH,
		CbCH:        chunker.StreamParams{Window: 48, Bits: 18, Min: 256 << 10, Max: 1 << 20},
	})
}

func benchEmitChunkPipeline(b *testing.B, cfg client.Config) {
	mgr, err := manager.New(manager.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	var benefs []*benefactor.Benefactor
	for i := 0; i < 4; i++ {
		bf, err := benefactor.New(benefactor.Config{ManagerAddr: mgr.Addr()})
		if err != nil {
			b.Fatal(err)
		}
		defer bf.Close()
		benefs = append(benefs, bf)
	}
	_ = benefs
	for deadline := time.Now().Add(5 * time.Second); mgr.Stats().OnlineBenefactors < 4; {
		if time.Now().After(deadline) {
			b.Fatalf("only %d benefactors registered", mgr.Stats().OnlineBenefactors)
		}
		time.Sleep(time.Millisecond)
	}
	cfg.ManagerAddr = mgr.Addr()
	cl, err := client.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i * 13)
	}
	const chunks = 8
	b.SetBytes(chunks << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := cl.Create("bench.n1.t0")
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < chunks; j++ {
			data[0] = byte(i + j) // distinct chunks per op
			if _, err := w.Write(data); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}
