package client

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"stdchk/internal/core"
	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

// baseline is an incremental-restore chunk source: the bytes of a version
// the caller already holds locally, indexed by content-based chunk name.
// A chunk of the opened version whose ID appears here is copied from the
// local bytes (hash-verified) instead of fetched over the network, so a
// restore onto a warm node fetches only the delta between the two
// versions. Verification makes a corrupt local baseline cost correctness
// nothing — a mismatched chunk silently falls back to the network.
type baseline struct {
	data  []byte
	index map[core.ChunkID]int64 // chunk ID -> first byte offset in data
}

// newBaseline indexes a local copy of baseline version cm. The data
// length must match the version's committed size — a truncated or grown
// local file means the caller's premise ("I hold version N") is wrong.
func newBaseline(cm *core.ChunkMap, data []byte) (*baseline, error) {
	if int64(len(data)) != cm.FileSize {
		return nil, fmt.Errorf("baseline data is %d bytes, version %d holds %d", len(data), cm.Version, cm.FileSize)
	}
	b := &baseline{data: data, index: make(map[core.ChunkID]int64, len(cm.Chunks))}
	var off int64
	for _, ref := range cm.Chunks {
		if _, dup := b.index[ref.ID]; !dup {
			b.index[ref.ID] = off
		}
		off += ref.Size
	}
	return b, nil
}

// chunk returns the local bytes for ref if the baseline holds them and
// they verify against the chunk's content-based name.
func (b *baseline) chunk(ref core.ChunkRef) ([]byte, bool) {
	off, ok := b.index[ref.ID]
	if !ok || off+ref.Size > int64(len(b.data)) {
		return nil, false
	}
	local := b.data[off : off+ref.Size]
	if core.HashChunk(local) != ref.ID {
		return nil, false
	}
	return local, true
}

// Reader streams one committed version of a checkpoint image. Chunks are
// prefetched in parallel (read-ahead) from the benefactors named in the
// chunk-map; a fetch that fails on one replica falls over to the next
// (paper §IV.E: read performance via read-ahead and caching; §IV.A:
// replicas provide availability).
//
// The prefetch window is bounded in bytes, not chunks, so variable-size
// (CbCH) maps — whose spans range from tens of KB to the max bound — hold
// a stable amount of memory in flight regardless of boundary luck.
//
// With Config.DataMux the scheduler batches: each dispatch round groups
// the window's chunks by their preferred replica and issues one BGetBatch
// request per node over the shared multiplexed pool, instead of one BGet
// connection-acquire/RTT per chunk. A miss inside a batch — node down,
// chunk absent, integrity failure — demotes only the affected chunks to
// the per-chunk fetch path, which walks the remaining replicas; chunks
// the batch did serve are never re-fetched (per-chunk, not per-batch,
// failover).
type Reader struct {
	c    *Client
	name string
	// cm may be shared with the client's chunk-map cache and with other
	// Readers of the same version; it is immutable here.
	cm *core.ChunkMap
	// locs is the per-chunk replica preference order, computed once at
	// map-install time (newReader) rather than per fetch: the manager
	// serves location sets in sorted order, so without a per-reader
	// rotation every reader of every chunk would hammer the
	// lexicographically first replica while the others idle. Rotating by
	// chunk index spreads one reader's fetches across the stripe;
	// failover still walks the full list. Building the order here also
	// keeps fetch from touching (or re-ordering) the shared map.
	locs [][]core.NodeID
	// base, when non-nil, serves chunks shared with a local baseline
	// version without touching the network (incremental restore).
	base *baseline

	// bytesFetched / bytesLocal split the bytes handed to the application
	// by source: network fetches vs. hash-verified local baseline copies.
	bytesFetched atomic.Int64
	bytesLocal   atomic.Int64
	// bytesBatched counts the subset of bytesFetched served by BGetBatch
	// replies (Config.DataMux) rather than per-chunk BGets — the
	// observable that proves batching engaged instead of silently falling
	// back.
	bytesBatched atomic.Int64

	mu       sync.Mutex
	pending  map[int]chan fetchResult
	next     int // next chunk index to hand to the application
	off      int // offset within the current chunk
	cur      []byte
	started  int   // chunks dispatched so far
	inflight int64 // bytes dispatched but not yet handed to the application
	budget   int64 // read-ahead window in bytes
	closed   bool
	err      error
}

type fetchResult struct {
	data []byte
	err  error
}

func newReader(c *Client, name string, cm *core.ChunkMap) *Reader {
	budget := c.cfg.ReadAheadBytes
	if budget <= 0 {
		cs := cm.ChunkSize
		if cs <= 0 {
			cs = core.DefaultChunkSize
		}
		budget = int64(c.cfg.ReadAhead) * cs
	}
	locs := make([][]core.NodeID, len(cm.Locations))
	for i, replicas := range cm.Locations {
		ordered := make([]core.NodeID, len(replicas))
		if n := len(replicas); n > 0 {
			rot := i % n
			copy(ordered, replicas[rot:])
			copy(ordered[n-rot:], replicas[:rot])
		}
		locs[i] = ordered
	}
	r := &Reader{
		c:       c,
		name:    name,
		cm:      cm,
		locs:    locs,
		budget:  budget,
		pending: make(map[int]chan fetchResult),
	}
	r.warmAddrs()
	return r
}

// warmAddrs pre-resolves every non-address node ID in the chunk map
// while the manager is still reachable, so an already-opened reader
// keeps working through a managerless window (the reader holds the map
// AND the addresses). Best-effort: on failure resolution falls back to
// the lazy per-read path.
func (r *Reader) warmAddrs() {
	need := false
	r.c.benefMu.Lock()
scan:
	for _, replicas := range r.locs {
		for _, node := range replicas {
			if strings.ContainsRune(string(node), ':') {
				continue
			}
			if _, ok := r.c.benefAddrs[node]; !ok {
				need = true
				break scan
			}
		}
	}
	r.c.benefMu.Unlock()
	if !need {
		return
	}
	infos, err := r.c.Benefactors()
	if err != nil {
		return
	}
	r.c.benefMu.Lock()
	for _, info := range infos {
		r.c.benefAddrs[info.ID] = info.Addr
	}
	r.c.benefMu.Unlock()
}

// Name returns the file name of the opened version.
func (r *Reader) Name() string { return r.name }

// Size returns the file size.
func (r *Reader) Size() int64 { return r.cm.FileSize }

// Map returns a copy of the chunk-map (diagnostics, tooling).
func (r *Reader) Map() *core.ChunkMap { return r.cm.Clone() }

// BytesFetched reports how many bytes this reader pulled over the
// network so far (chunks dispatched count once they verify).
func (r *Reader) BytesFetched() int64 { return r.bytesFetched.Load() }

// BytesLocal reports how many bytes were served from the incremental-
// restore baseline instead of the network (0 without a baseline).
func (r *Reader) BytesLocal() int64 { return r.bytesLocal.Load() }

// BytesBatched reports how many of the fetched bytes arrived in BGetBatch
// replies — always 0 without Config.DataMux, and less than BytesFetched
// whenever per-chunk failover had to re-fetch slots a batch missed.
func (r *Reader) BytesBatched() int64 { return r.bytesBatched.Load() }

var _ io.ReadCloser = (*Reader)(nil)

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, core.ErrClosed
	}
	if r.err != nil {
		return 0, r.err
	}
	if r.cur == nil || r.off >= len(r.cur) {
		if r.next >= len(r.cm.Chunks) {
			return 0, io.EOF
		}
		if err := r.advanceLocked(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.cur[r.off:])
	r.off += n
	return n, nil
}

// advanceLocked ensures the read-ahead window is primed and blocks for the
// next chunk. Dispatch is bounded by the byte budget (always at least the
// chunk the application is waiting on), so a map of heterogeneous chunk
// sizes prefetches roughly the same number of bytes as a fixed-size one.
func (r *Reader) advanceLocked() error {
	// Refill hysteresis: top the window up only once it has drained to
	// half (or the consumer's chunk was never dispatched). Without it the
	// steady state dispatches exactly one chunk per chunk consumed, which
	// degrades the DataMux batch path to single-ID requests; draining to
	// the low-water mark keeps each dispatch round wide enough for
	// dispatchBatches to group.
	var batched []batchItem
	if r.started == r.next || r.inflight < r.budget/2 {
		for r.started < len(r.cm.Chunks) && (r.started == r.next || r.inflight < r.budget) {
			idx := r.started
			ch := make(chan fetchResult, 1)
			r.pending[idx] = ch
			r.inflight += r.cm.Chunks[idx].Size
			r.started++
			if r.batchable(idx) {
				batched = append(batched, batchItem{idx: idx, ch: ch})
			} else {
				go r.fetch(idx, ch)
			}
		}
	}
	r.dispatchBatches(batched)
	ch, ok := r.pending[r.next]
	if !ok {
		return fmt.Errorf("reader: chunk %d not scheduled", r.next)
	}
	delete(r.pending, r.next)
	r.mu.Unlock()
	res := <-ch
	r.mu.Lock()
	if r.closed {
		// Closed while blocked: the result's buffer has no consumer.
		if res.data != nil {
			wire.PutBuf(res.data)
		}
		return core.ErrClosed
	}
	if res.err != nil {
		return res.err
	}
	// The previous chunk has been fully copied out to the application;
	// its pool-backed fetch buffer can go back to the wire pool.
	if r.cur != nil {
		wire.PutBuf(r.cur)
	}
	r.cur = res.data
	r.off = 0
	r.inflight -= r.cm.Chunks[r.next].Size
	r.next++
	return nil
}

// batchItem is one prefetch-window chunk staged for a batched read: its
// map index and the pending channel that must receive exactly one result.
type batchItem struct {
	idx int
	ch  chan fetchResult
}

// batchable reports whether a chunk should ride a BGetBatch request.
// Chunks the local baseline may serve, and chunks with no replicas at
// all, keep the per-chunk path (which handles both cases); everything
// else batches when the data mux is on.
func (r *Reader) batchable(idx int) bool {
	if r.c.dataPool == nil || len(r.locs[idx]) == 0 {
		return false
	}
	if r.base != nil {
		if _, local := r.base.index[r.cm.Chunks[idx].ID]; local {
			return false
		}
	}
	return true
}

// dispatchBatches groups one dispatch round's chunks by preferred replica
// (the head of each chunk's rotated preference order, so one reader's
// batches still spread across the stripe) and issues one BGetBatch per
// node per Config.ReadBatch IDs.
func (r *Reader) dispatchBatches(items []batchItem) {
	if len(items) == 0 {
		return
	}
	groups := make(map[core.NodeID][]batchItem)
	var order []core.NodeID
	for _, it := range items {
		node := r.locs[it.idx][0]
		if _, ok := groups[node]; !ok {
			order = append(order, node)
		}
		groups[node] = append(groups[node], it)
	}
	limit := r.c.cfg.ReadBatch
	for _, node := range order {
		group := groups[node]
		for len(group) > limit {
			part := group[:limit]
			group = group[limit:]
			go r.fetchBatch(node, part)
		}
		go r.fetchBatch(node, group)
	}
}

// fetchBatch retrieves one node's share of the dispatch window with a
// single BGetBatch request over the shared multiplexed pool. The reply
// carries per-slot sizes (-1 = unserved) and the served chunks
// concatenated in request order; each served chunk is hash-verified and
// copied into its own pooled buffer before delivery, so the per-chunk
// buffer lifecycle is identical to the serial path. Any slot the batch
// could not serve — request-level transport failure, per-slot miss,
// integrity mismatch, malformed framing — falls back to the per-chunk
// fetch, which walks that chunk's remaining replicas.
func (r *Reader) fetchBatch(node core.NodeID, items []batchItem) {
	fallback := func(rest []batchItem) {
		for _, it := range rest {
			go r.fetch(it.idx, it.ch)
		}
	}
	addr, err := r.resolve(node)
	if err != nil {
		fallback(items)
		return
	}
	ids := make([]core.ChunkID, len(items))
	for i, it := range items {
		ids[i] = r.cm.Chunks[it.idx].ID
	}
	var resp proto.BatchGetResp
	body, err := r.c.dataPool.Call(addr, proto.BGetBatch, proto.BatchGetReq{IDs: ids}, nil, &resp)
	if err != nil || len(resp.Sizes) != len(items) {
		if body != nil {
			wire.PutBuf(body)
		}
		fallback(items)
		return
	}
	var off int64
	for i, it := range items {
		sz := resp.Sizes[i]
		if sz < 0 {
			go r.fetch(it.idx, it.ch)
			continue
		}
		if off+sz > int64(len(body)) {
			// Sizes promise more bytes than arrived: nothing at or past
			// this slot can be framed.
			fallback(items[i:])
			break
		}
		data := body[off : off+sz]
		off += sz
		ref := r.cm.Chunks[it.idx]
		if sz != ref.Size || core.HashChunk(data) != ref.ID {
			go r.fetch(it.idx, it.ch)
			continue
		}
		buf := wire.GetBuf(len(data))
		copy(buf, data)
		r.bytesFetched.Add(sz)
		r.bytesBatched.Add(sz)
		it.ch <- fetchResult{data: buf}
	}
	if body != nil {
		wire.PutBuf(body)
	}
}

// fetch retrieves one chunk, trying each replica in the preference order
// installed at open time and verifying content integrity against the
// chunk's content-based name.
func (r *Reader) fetch(idx int, ch chan<- fetchResult) {
	ref := r.cm.Chunks[idx]
	if r.base != nil {
		if local, ok := r.base.chunk(ref); ok {
			// Copy into a wire buffer so every result, local or fetched,
			// returns to the pool the same way.
			buf := wire.GetBuf(len(local))
			copy(buf, local)
			r.bytesLocal.Add(ref.Size)
			ch <- fetchResult{data: buf}
			return
		}
	}
	locs := r.locs[idx]
	var lastErr error
	for _, node := range locs {
		addr, err := r.resolve(node)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := r.c.pool.Call(addr, proto.BGet, proto.GetReq{ID: ref.ID}, nil, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if core.HashChunk(body) != ref.ID {
			lastErr = fmt.Errorf("chunk %d from %s: %w", idx, node, core.ErrIntegrity)
			wire.PutBuf(body)
			continue
		}
		r.bytesFetched.Add(int64(len(body)))
		ch <- fetchResult{data: body}
		return
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("chunk %d has no replicas: %w", idx, core.ErrNotFound)
	}
	ch <- fetchResult{err: fmt.Errorf("reader: %w", lastErr)}
}

// resolve maps a benefactor node ID to its current address. Node IDs
// default to their service address (host:port), which needs no lookup —
// committed data stays readable even while the manager is down. Custom
// IDs are resolved through the manager's registry and cached.
func (r *Reader) resolve(node core.NodeID) (string, error) {
	if strings.ContainsRune(string(node), ':') {
		return string(node), nil
	}
	r.c.benefMu.Lock()
	addr, ok := r.c.benefAddrs[node]
	r.c.benefMu.Unlock()
	if ok {
		return addr, nil
	}
	infos, err := r.c.Benefactors()
	if err != nil {
		return "", err
	}
	r.c.benefMu.Lock()
	for _, info := range infos {
		r.c.benefAddrs[info.ID] = info.Addr
	}
	addr, ok = r.c.benefAddrs[node]
	r.c.benefMu.Unlock()
	if !ok {
		return "", fmt.Errorf("benefactor %s: %w", node, core.ErrNotFound)
	}
	return addr, nil
}

// ReadAll reads the whole version into memory. Fetched chunks are copied
// straight from their pool-backed buffers into the sized output slice —
// no intermediate scratch buffer.
func (r *Reader) ReadAll() ([]byte, error) {
	out := make([]byte, r.cm.FileSize)
	var n int
	for int64(n) < r.cm.FileSize {
		m, err := r.Read(out[n:])
		n += m
		if err == io.EOF {
			break
		}
		if err != nil {
			return out[:n], err
		}
	}
	return out[:n], nil
}

// Close releases the reader. Outstanding prefetches are drained
// asynchronously so their pool-backed buffers return to the wire pool
// instead of leaking: each in-flight fetch delivers exactly one result to
// its (buffered) channel, and an abandoned channel would strand that
// buffer outside the pool forever.
func (r *Reader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	for _, ch := range r.pending {
		go func(ch chan fetchResult) {
			if res := <-ch; res.data != nil {
				wire.PutBuf(res.data)
			}
		}(ch)
	}
	r.pending = map[int]chan fetchResult{}
	if r.cur != nil {
		wire.PutBuf(r.cur)
		r.cur = nil
	}
	return nil
}
