package client

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"stdchk/internal/core"
	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

// Reader streams one committed version of a checkpoint image. Chunks are
// prefetched in parallel (read-ahead) from the benefactors named in the
// chunk-map; a fetch that fails on one replica falls over to the next
// (paper §IV.E: read performance via read-ahead and caching; §IV.A:
// replicas provide availability).
type Reader struct {
	c    *Client
	name string
	cm   *core.ChunkMap

	mu      sync.Mutex
	pending map[int]chan fetchResult
	next    int // next chunk index to hand to the application
	off     int // offset within the current chunk
	cur     []byte
	started int // chunks dispatched so far
	closed  bool
	err     error
}

type fetchResult struct {
	data []byte
	err  error
}

func newReader(c *Client, name string, cm *core.ChunkMap) *Reader {
	return &Reader{
		c:       c,
		name:    name,
		cm:      cm,
		pending: make(map[int]chan fetchResult),
	}
}

// Name returns the file name of the opened version.
func (r *Reader) Name() string { return r.name }

// Size returns the file size.
func (r *Reader) Size() int64 { return r.cm.FileSize }

// Map returns a copy of the chunk-map (diagnostics, tooling).
func (r *Reader) Map() *core.ChunkMap { return r.cm.Clone() }

var _ io.ReadCloser = (*Reader)(nil)

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, core.ErrClosed
	}
	if r.err != nil {
		return 0, r.err
	}
	if r.cur == nil || r.off >= len(r.cur) {
		if r.next >= len(r.cm.Chunks) {
			return 0, io.EOF
		}
		if err := r.advanceLocked(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.cur[r.off:])
	r.off += n
	return n, nil
}

// advanceLocked ensures the read-ahead window is primed and blocks for the
// next chunk.
func (r *Reader) advanceLocked() error {
	window := r.c.cfg.ReadAhead
	for r.started < len(r.cm.Chunks) && r.started < r.next+window {
		idx := r.started
		ch := make(chan fetchResult, 1)
		r.pending[idx] = ch
		r.started++
		go r.fetch(idx, ch)
	}
	ch, ok := r.pending[r.next]
	if !ok {
		return fmt.Errorf("reader: chunk %d not scheduled", r.next)
	}
	delete(r.pending, r.next)
	r.mu.Unlock()
	res := <-ch
	r.mu.Lock()
	if res.err != nil {
		return res.err
	}
	// The previous chunk has been fully copied out to the application;
	// its pool-backed fetch buffer can go back to the wire pool.
	if r.cur != nil {
		wire.PutBuf(r.cur)
	}
	r.cur = res.data
	r.off = 0
	r.next++
	return nil
}

// fetch retrieves one chunk, trying each replica in turn and verifying
// content integrity against the chunk's content-based name.
func (r *Reader) fetch(idx int, ch chan<- fetchResult) {
	ref := r.cm.Chunks[idx]
	locs := r.cm.Locations[idx]
	var lastErr error
	for _, node := range locs {
		addr, err := r.resolve(node)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := r.c.pool.Call(addr, proto.BGet, proto.GetReq{ID: ref.ID}, nil, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if core.HashChunk(body) != ref.ID {
			lastErr = fmt.Errorf("chunk %d from %s: %w", idx, node, core.ErrIntegrity)
			wire.PutBuf(body)
			continue
		}
		ch <- fetchResult{data: body}
		return
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("chunk %d has no replicas: %w", idx, core.ErrNotFound)
	}
	ch <- fetchResult{err: fmt.Errorf("reader: %w", lastErr)}
}

// resolve maps a benefactor node ID to its current address. Node IDs
// default to their service address (host:port), which needs no lookup —
// committed data stays readable even while the manager is down. Custom
// IDs are resolved through the manager's registry and cached.
func (r *Reader) resolve(node core.NodeID) (string, error) {
	if strings.ContainsRune(string(node), ':') {
		return string(node), nil
	}
	r.c.benefMu.Lock()
	addr, ok := r.c.benefAddrs[node]
	r.c.benefMu.Unlock()
	if ok {
		return addr, nil
	}
	infos, err := r.c.Benefactors()
	if err != nil {
		return "", err
	}
	r.c.benefMu.Lock()
	for _, info := range infos {
		r.c.benefAddrs[info.ID] = info.Addr
	}
	addr, ok = r.c.benefAddrs[node]
	r.c.benefMu.Unlock()
	if !ok {
		return "", fmt.Errorf("benefactor %s: %w", node, core.ErrNotFound)
	}
	return addr, nil
}

// ReadAll reads the whole version into memory.
func (r *Reader) ReadAll() ([]byte, error) {
	out := make([]byte, 0, r.cm.FileSize)
	buf := make([]byte, 256<<10)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
	}
}

// Close releases the reader. Outstanding prefetches drain in the
// background.
func (r *Reader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.pending = map[int]chan fetchResult{}
	if r.cur != nil {
		wire.PutBuf(r.cur)
		r.cur = nil
	}
	return nil
}
