package client

import (
	"container/list"
	"sync"
	"sync/atomic"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// mapCache is the client-side chunk-map cache behind Open/OpenVersion,
// keyed by (dataset key, version). Checkpoint versions are immutable once
// committed — the chunk list of (dataset, version) never changes — so an
// explicit-version open that hits serves its map with zero manager RPCs.
// A "latest" open revalidates with one MStatVersion round trip (name →
// committed version identity, a few bytes) and falls back to the cached
// map on match; only a genuinely new version pays the full MGetMap.
//
// This is the client half of the restart fast path: a DMTCP-style restart
// storm re-opens the same checkpoint from every process of a job, and
// without the cache each open is a full map fetch (§IV.E read
// performance; the manager-side hotMapCache covers the server half).
//
// Staleness: cached location sets can lag replicas added after the fetch
// (benign — locations only grow while a version lives) and, for
// explicit-version hits, cannot see deletes or replica death on the
// manager. The reader's per-chunk replica failover absorbs individual
// stale locations; a fully stale map surfaces as a read error, and
// re-opening after Invalidate gives the fresh view. A TTL for long-lived
// caches under replica churn is a recorded follow-on.
type mapCache struct {
	mu    sync.Mutex
	cap   int
	byKey map[mapCacheKey]*list.Element
	lru   *list.List // front = most recently used

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

type mapCacheKey struct {
	dataset string
	version core.VersionID
}

type mapCacheEntry struct {
	key      mapCacheKey
	fileName string
	// m is shared with every Reader opened from this entry; Readers (and
	// everyone else) treat installed maps as immutable.
	m *core.ChunkMap
}

// defaultClientMapCacheEntries bounds the client cache when the config
// does not. A restarting job re-opens a handful of datasets; 256 covers
// generous multi-dataset jobs while keeping worst-case memory modest.
const defaultClientMapCacheEntries = 256

// newMapCache builds a cache of up to capEntries maps; capEntries <= 0
// disables caching (the -map-cache=false ablation).
func newMapCache(capEntries int) *mapCache {
	c := &mapCache{cap: capEntries}
	if capEntries > 0 {
		c.byKey = make(map[mapCacheKey]*list.Element)
		c.lru = list.New()
	}
	return c
}

func (c *mapCache) enabled() bool { return c.cap > 0 }

// get returns the cached map for (dataset, version), or nil on a miss.
// The returned map is shared — callers must not mutate it.
func (c *mapCache) get(dataset string, version core.VersionID) (string, *core.ChunkMap) {
	if !c.enabled() {
		c.misses.Add(1)
		return "", nil
	}
	key := mapCacheKey{dataset: dataset, version: version}
	c.mu.Lock()
	el, ok := c.byKey[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return "", nil
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*mapCacheEntry)
	name, m := e.fileName, e.m
	c.mu.Unlock()
	c.hits.Add(1)
	return name, m
}

// put caches a freshly fetched map under (dataset, m.Version). The cache
// takes shared ownership: the caller and every future Reader must treat m
// as immutable.
func (c *mapCache) put(dataset, fileName string, m *core.ChunkMap) {
	if !c.enabled() || m == nil {
		return
	}
	key := mapCacheKey{dataset: dataset, version: m.Version}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*mapCacheEntry)
		e.fileName, e.m = fileName, m // refetch can only be fresher
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&mapCacheEntry{key: key, fileName: fileName, m: m})
	c.byKey[key] = el
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byKey, back.Value.(*mapCacheEntry).key)
	}
}

// hasDataset reports whether any version of the dataset is cached. A
// "latest" open only pays the revalidation probe when this is true —
// with nothing cached, the probe could not save the map fetch, so the
// cold path keeps the historical single-RPC shape.
func (c *mapCache) hasDataset(dataset string) bool {
	if !c.enabled() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key := range c.byKey {
		if key.dataset == dataset {
			return true
		}
	}
	return false
}

// invalidateDataset drops every cached version of one dataset (local
// deletes; remote deletes by other clients are invisible until a read
// fails).
func (c *mapCache) invalidateDataset(dataset string) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	var n int64
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*mapCacheEntry)
		if e.key.dataset == dataset {
			c.lru.Remove(el)
			delete(c.byKey, e.key)
			n++
		}
		el = next
	}
	c.mu.Unlock()
	if n > 0 {
		c.invalidations.Add(n)
	}
}

// snapshot reports cache counters.
func (c *mapCache) snapshot() proto.MapCacheStats {
	return proto.MapCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}
