package client

import (
	"bytes"
	"fmt"
	"testing"

	"stdchk/internal/faultpoint"
)

// TestDataMuxRoundTrip covers the pipelined data plane end to end: a
// DataMux client uploads through windowed multiplexed puts and restores
// through batched reads, the bytes come back identical, every pooled
// chunk buffer returns exactly once, and the batch path demonstrably
// served the read (it did not silently fall back to per-chunk BGets).
func TestDataMuxRoundTrip(t *testing.T) {
	mgr, _ := startCluster(t, 3, 0)
	cl, err := New(Config{
		ManagerAddr:  mgr.Addr(),
		StripeWidth:  3,
		ChunkSize:    32 << 10,
		DataMux:      true,
		UploadWindow: 4,
		ReadBatch:    8,
		ReadAhead:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tr := trackChunkBufs(t, cl)

	data := fill(48*32<<10+999, 11) // 49 chunks, final one short
	w, err := cl.Create("mux.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	tr.check()

	r, err := cl.Open("mux.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("readback mismatch over the pipelined data plane")
	}
	if r.BytesFetched() != int64(len(data)) {
		t.Fatalf("fetched %d bytes, want %d", r.BytesFetched(), len(data))
	}
	if r.BytesBatched() != int64(len(data)) {
		t.Fatalf("batched reads served %d of %d bytes; the scheduler fell back to per-chunk fetches",
			r.BytesBatched(), len(data))
	}
}

// TestDataMuxSerialInterop pins wire compatibility between the two data
// planes: a version written by a pipelined (DataMux) client restores
// byte-identically through a serial client, and vice versa — the mux is
// a transport choice, not a format change.
func TestDataMuxSerialInterop(t *testing.T) {
	mgr, _ := startCluster(t, 2, 0)
	mk := func(mux bool) *Client {
		cl, err := New(Config{
			ManagerAddr: mgr.Addr(),
			StripeWidth: 2,
			ChunkSize:   32 << 10,
			DataMux:     mux,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	muxed, serial := mk(true), mk(false)

	for i, pair := range []struct{ writer, reader *Client }{
		{writer: muxed, reader: serial},
		{writer: serial, reader: muxed},
	} {
		name := fmt.Sprintf("interop.n1.t%d", i)
		data := fill(17*32<<10+33, byte(20+i))
		w, err := pair.writer.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
		r, err := pair.reader.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.ReadAll()
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round %d: cross-transport readback mismatch", i)
		}
	}
}

// TestPipelinedUploadFaultSweep arms the wire.send faultpoint at
// escalating trigger counts while a pipelined upload window is in
// flight. The invariant under every fault placement: either the session
// fails (and every pooled chunk buffer still returns exactly once), or
// it commits — in which case every acked chunk must be readable and the
// restored bytes identical. A send fault mid-window must never produce a
// committed version with a hole in it.
func TestPipelinedUploadFaultSweep(t *testing.T) {
	mgr, _ := startCluster(t, 2, 0)
	defer faultpoint.Reset()

	data := fill(24*32<<10, 31) // 24 chunks across a 2-wide stripe
	for count := 1; count <= 5; count++ {
		count := count
		t.Run(fmt.Sprintf("count=%d", count), func(t *testing.T) {
			cl, err := New(Config{
				ManagerAddr:  mgr.Addr(),
				StripeWidth:  2,
				ChunkSize:    32 << 10,
				DataMux:      true,
				UploadWindow: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			tr := trackChunkBufs(t, cl)

			name := fmt.Sprintf("sweep.n1.t%d", count)
			w, err := cl.Create(name)
			if err != nil {
				t.Fatal(err) // faultpoint not armed yet: Create must work
			}
			if err := faultpoint.Enable("wire.send", faultpoint.Config{
				Mode: faultpoint.ModeError, Count: count,
			}); err != nil {
				t.Fatal(err)
			}
			_, writeErr := w.Write(data)
			closeErr := w.Close()
			waitErr := w.Wait()
			faultpoint.Disable("wire.send")
			tr.check()

			if writeErr != nil || closeErr != nil || waitErr != nil {
				// Session failed: the version must not exist.
				if _, err := cl.Open(name, OpenOptions{Latest: true}); err == nil {
					t.Fatalf("failed session (write=%v close=%v wait=%v) left a committed version",
						writeErr, closeErr, waitErr)
				}
				return
			}
			// Session survived the faults (e.g. a mux retry absorbed them):
			// every acked chunk must be present and intact.
			r, err := cl.Open(name)
			if err != nil {
				t.Fatalf("committed session not openable: %v", err)
			}
			got, err := r.ReadAll()
			r.Close()
			if err != nil {
				t.Fatalf("committed session not fully readable: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("committed version differs from written bytes after fault sweep")
			}
		})
	}
}
