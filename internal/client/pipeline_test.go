package client

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"stdchk/internal/benefactor"
	"stdchk/internal/chunker"
	"stdchk/internal/core"
	"stdchk/internal/manager"
	"stdchk/internal/store"
)

// startCluster spins a real manager plus width benefactors for pipeline
// tests, each with the given per-node capacity (0 = unlimited).
func startCluster(t *testing.T, width int, capacity int64) (*manager.Manager, []*benefactor.Benefactor) {
	t.Helper()
	mgr, err := manager.New(manager.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	var benefs []*benefactor.Benefactor
	for i := 0; i < width; i++ {
		bf, err := benefactor.New(benefactor.Config{ManagerAddr: mgr.Addr(), Capacity: capacity})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { bf.Close() })
		benefs = append(benefs, bf)
	}
	waitForBenefactors(t, mgr, width)
	return mgr, benefs
}

// waitForBenefactors blocks until the asynchronous registrations land.
func waitForBenefactors(t *testing.T, mgr *manager.Manager, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for mgr.Stats().OnlineBenefactors < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d benefactors registered", mgr.Stats().OnlineBenefactors, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
	return b
}

// TestSingleExtendSpansMultipleQuanta verifies the reservation accounting
// fix: one Write that jumps several quanta past the reservation costs one
// MExtend RPC covering the whole gap, not one RPC per quantum.
func TestSingleExtendSpansMultipleQuanta(t *testing.T) {
	mgr, _ := startCluster(t, 1, 0)
	cl, err := New(Config{
		ManagerAddr:    mgr.Addr(),
		StripeWidth:    1,
		ChunkSize:      64 << 10,
		ReserveQuantum: 128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	w, err := cl.Create("extend.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	// 2 MB in one call: 15 quanta past the initial 128 KB reservation.
	if _, err := w.Write(fill(2<<20, 1)); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().Extends; got != 1 {
		t.Fatalf("first multi-quantum Write cost %d MExtend RPCs, want 1", got)
	}
	if w.reserved < 2<<20 {
		t.Fatalf("reserved %d bytes, want at least the written 2 MB", w.reserved)
	}
	// A second jump costs exactly one more.
	if _, err := w.Write(fill(1<<20, 2)); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().Extends; got != 2 {
		t.Fatalf("after second jump: %d MExtend RPCs, want 2", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedDedupProbes verifies that the hashing stage coalesces
// per-chunk content-index lookups: a whole application Write becomes a
// handful of MHasChunks RPCs (at most one per in-flight batch), not one
// per chunk.
func TestBatchedDedupProbes(t *testing.T) {
	mgr, _ := startCluster(t, 2, 0)
	cl, err := New(Config{
		ManagerAddr: mgr.Addr(),
		StripeWidth: 2,
		ChunkSize:   64 << 10,
		Incremental: true,
		BufferBytes: 64 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const chunks = 32
	data := fill(chunks*64<<10, 3)
	w, err := cl.Create("dedup.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}

	st := mgr.Stats()
	if st.DedupChunks != chunks {
		t.Fatalf("dedup probes covered %d chunks, want %d", st.DedupChunks, chunks)
	}
	if st.DedupBatches < 1 || st.DedupBatches > chunks/4 {
		t.Fatalf("%d chunks took %d MHasChunks RPCs; batching is broken (want <= %d)",
			chunks, st.DedupBatches, chunks/4)
	}

	// Same content again: every chunk is a dedup hit, still batched.
	w2, err := cl.Create("dedup.n1.t1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Wait(); err != nil {
		t.Fatal(err)
	}
	if m := w2.Metrics(); m.Deduped != int64(len(data)) || m.Uploaded != 0 {
		t.Fatalf("second version: deduped %d uploaded %d, want all %d deduped", m.Deduped, m.Uploaded, len(data))
	}

	// The dedup'd version must still read back correctly.
	r, err := cl.Open("dedup.n1.t1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if !bytes.Equal(got, data) {
		t.Fatal("readback mismatch after dedup")
	}
}

// bufTracker asserts the chunk-buffer pool discipline: every buffer handed
// out comes back exactly once, and nothing is returned that was not handed
// out.
type bufTracker struct {
	t *testing.T

	mu          sync.Mutex
	outstanding map[*[]byte]bool
	gets, puts  int
	violations  []string
}

func trackChunkBufs(t *testing.T, c *Client) *bufTracker {
	tr := &bufTracker{t: t, outstanding: make(map[*[]byte]bool)}
	c.onChunkGet = func(bp *[]byte) {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		tr.gets++
		if tr.outstanding[bp] {
			tr.violations = append(tr.violations, fmt.Sprintf("buffer %p handed out twice", bp))
		}
		tr.outstanding[bp] = true
	}
	c.onChunkPut = func(bp *[]byte) {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		tr.puts++
		if !tr.outstanding[bp] {
			tr.violations = append(tr.violations, fmt.Sprintf("buffer %p double-returned to the pool", bp))
		}
		delete(tr.outstanding, bp)
	}
	return tr
}

func (tr *bufTracker) check() {
	tr.t.Helper()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, v := range tr.violations {
		tr.t.Error(v)
	}
	if len(tr.outstanding) != 0 {
		tr.t.Errorf("%d chunk buffers never returned to the pool (%d gets, %d puts)",
			len(tr.outstanding), tr.gets, tr.puts)
	}
	if tr.gets != tr.puts {
		tr.t.Errorf("pool imbalance: %d gets, %d puts", tr.gets, tr.puts)
	}
}

// TestChunkBufferLifecycleDedupHit covers the write → dedup-hit path under
// the race detector: buffers released by the dedup short-circuit must come
// back exactly once.
func TestChunkBufferLifecycleDedupHit(t *testing.T) {
	mgr, _ := startCluster(t, 2, 0)
	_ = mgr
	cl, err := New(Config{
		ManagerAddr: mgr.Addr(),
		StripeWidth: 2,
		ChunkSize:   64 << 10,
		Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tr := trackChunkBufs(t, cl)

	data := fill(16*64<<10, 5)
	for i := 0; i < 3; i++ { // v0 uploads; v1, v2 dedup every chunk
		w, err := cl.Create("life.n1.t" + fmt.Sprint(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	tr.check()
}

// TestChunkBufferLifecycleCbCH covers the variable-size (CbCH) write path
// under the race detector: spans cut by the streaming boundary finder are
// smaller than the pooled buffer capacity, and every buffer — uploaded or
// dedup-hit — must still come back exactly once.
func TestChunkBufferLifecycleCbCH(t *testing.T) {
	mgr, _ := startCluster(t, 2, 0)
	cl, err := New(Config{
		ManagerAddr: mgr.Addr(),
		StripeWidth: 2,
		Chunking:    ChunkCbCH,
		CbCH:        chunker.StreamParams{Window: 48, Bits: 12, Min: 4 << 10, Max: 64 << 10},
		Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tr := trackChunkBufs(t, cl)

	data := fill(16*64<<10+777, 6)
	for i := 0; i < 2; i++ { // v0 uploads; v1 dedups every span
		w, err := cl.Create("cbchlife.n1.t" + fmt.Sprint(i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Wait(); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if m := w.Metrics(); m.Deduped != int64(len(data)) {
				t.Fatalf("identical rewrite deduped %d of %d bytes", m.Deduped, len(data))
			}
		}
	}
	tr.check()

	r, err := cl.Open("cbchlife.n1.t1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("CbCH readback mismatch")
	}
}

// rejectingStore fails every Put, simulating a benefactor that ran out of
// space after stripe allocation.
type rejectingStore struct{ store.Store }

func (r rejectingStore) Put(id core.ChunkID, data []byte) (bool, error) {
	return false, core.ErrNoSpace
}

// TestChunkBufferLifecycleUploadError covers the write → upload-error
// path: when a benefactor rejects chunks, the writer fails but every
// buffer still comes back exactly once.
func TestChunkBufferLifecycleUploadError(t *testing.T) {
	mgr, err := manager.New(manager.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	for i := 0; i < 2; i++ {
		bf, err := benefactor.New(benefactor.Config{
			ManagerAddr: mgr.Addr(),
			Store:       rejectingStore{store.NewMemory(0, nil)},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { bf.Close() })
	}
	waitForBenefactors(t, mgr, 2)
	cl, err := New(Config{
		ManagerAddr: mgr.Addr(),
		StripeWidth: 2,
		ChunkSize:   64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tr := trackChunkBufs(t, cl)

	w, err := cl.Create("fail.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	var writeErr error
	for i := 0; i < 8 && writeErr == nil; i++ {
		_, writeErr = w.Write(fill(2*64<<10, byte(i)))
	}
	closeErr := w.Close()
	waitErr := w.Wait()
	if writeErr == nil && closeErr == nil && waitErr == nil {
		t.Fatal("writer succeeded against full benefactors")
	}
	if !errors.Is(waitErr, core.ErrNoSpace) && !errors.Is(closeErr, core.ErrNoSpace) && !errors.Is(writeErr, core.ErrNoSpace) {
		t.Fatalf("expected ErrNoSpace somewhere; write=%v close=%v wait=%v", writeErr, closeErr, waitErr)
	}
	tr.check()
}

// TestPartialFinalChunkRoundTrip pins the final-short-chunk path of the
// pooled pipeline.
func TestPartialFinalChunkRoundTrip(t *testing.T) {
	mgr, _ := startCluster(t, 2, 0)
	_ = mgr
	cl, err := New(Config{ManagerAddr: mgr.Addr(), StripeWidth: 2, ChunkSize: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tr := trackChunkBufs(t, cl)

	data := fill(3*64<<10+1234, 9)
	w, err := cl.Create("short.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(w, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Wait(); err != nil {
		t.Fatal(err)
	}
	tr.check()

	r, err := cl.Open("short.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("readback mismatch")
	}
}
