package client

import (
	"strings"
	"testing"
	"time"

	"stdchk/internal/core"
)

func TestProtocolString(t *testing.T) {
	tests := []struct {
		p    Protocol
		want string
	}{
		{SlidingWindow, "sliding-window"},
		{IncrementalWrite, "incremental"},
		{CompleteLocalWrite, "complete-local"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if !strings.Contains(Protocol(99).String(), "99") {
		t.Error("unknown protocol String() should embed the value")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Protocol != SlidingWindow {
		t.Errorf("default protocol = %v", cfg.Protocol)
	}
	if cfg.Semantics != core.WriteOptimistic {
		t.Errorf("default semantics = %v", cfg.Semantics)
	}
	if cfg.BufferBytes <= 0 || cfg.TempFileBytes <= 0 || cfg.ReserveQuantum <= 0 {
		t.Error("default staging sizes not set")
	}
	if cfg.PessimisticTimeout <= 0 || cfg.ReadAhead <= 0 {
		t.Error("default timeouts not set")
	}
}

func TestNewRequiresManagerAddr(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted empty ManagerAddr")
	}
}

func TestWriteMetricsBandwidths(t *testing.T) {
	m := WriteMetrics{
		Bytes:        10e6,
		OpenToClose:  time.Second,
		OpenToStored: 2 * time.Second,
	}
	if got := m.OABMBps(); got != 10 {
		t.Errorf("OAB = %v, want 10", got)
	}
	if got := m.ASBMBps(); got != 5 {
		t.Errorf("ASB = %v, want 5", got)
	}
	var zero WriteMetrics
	if zero.OABMBps() != 0 || zero.ASBMBps() != 0 {
		t.Error("zero metrics should report zero bandwidth")
	}
}

func TestCreateFailsWithoutManager(t *testing.T) {
	cl, err := New(Config{ManagerAddr: "127.0.0.1:1"}) // nothing listens
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Create("x.n1.t0"); err == nil {
		t.Fatal("Create succeeded with no manager")
	}
	if _, err := cl.Open("x.n1.t0"); err == nil {
		t.Fatal("Open succeeded with no manager")
	}
	if _, err := cl.List(""); err == nil {
		t.Fatal("List succeeded with no manager")
	}
}

func TestSetPolicyValidatesLocally(t *testing.T) {
	cl, err := New(Config{ManagerAddr: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Invalid policy must fail before any network I/O.
	if err := cl.SetPolicy("f", core.Policy{Kind: core.PolicyPurge}); err == nil {
		t.Fatal("invalid policy accepted")
	}
}
