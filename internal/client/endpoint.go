package client

import (
	"errors"
	"math/rand"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

// ManagerEndpoint is the client's seam to the metadata service. A single
// manager and a federated metadata plane (internal/federation's Router)
// both satisfy it, so everything above this interface — the writer
// pipeline, the reader, the facade — is agnostic about whether "the
// manager" is one process or N partitioned ones.
//
// Dataset-scoped calls carry the dataset-owning file name even when the
// wire request is keyed by something else (a WriteID): write sessions are
// member-local in a federation, so the name is what routes the call to
// the member that allocated the session.
type ManagerEndpoint interface {
	// Alloc opens a write session for req.Name.
	Alloc(req proto.AllocReq) (proto.AllocResp, error)
	// Extend grows the named session's space reservation.
	Extend(name string, req proto.ExtendReq) (proto.ExtendResp, error)
	// Commit atomically publishes the named session's chunk-map.
	Commit(name string, req proto.CommitReq) (proto.CommitResp, error)
	// Abort abandons the named session.
	Abort(name string, req proto.AbortReq) error
	// HasChunks answers the incremental-checkpointing dedup probe for a
	// write session on name.
	HasChunks(name string, ids []core.ChunkID) ([]bool, error)
	// GetMap fetches a committed chunk-map.
	GetMap(req proto.GetMapReq) (proto.GetMapResp, error)
	// GetMaps batch-fetches committed chunk-maps (cache prefetch).
	// Best-effort: unknown names are absent from the reply.
	GetMaps(req proto.GetMapsReq) (proto.GetMapsResp, error)
	// History reports a dataset's version lineage, oldest first.
	History(req proto.HistoryReq) (proto.HistoryResp, error)
	// Diff reports the byte ranges that changed between two committed
	// versions of a dataset.
	Diff(req proto.DiffReq) (proto.DiffResp, error)
	// StatVersion resolves a name to its committed version identity (no
	// location payload): the chunk-map cache's lightweight "is my cached
	// map still the latest?" revalidation probe.
	StatVersion(req proto.StatVersionReq) (proto.StatVersionResp, error)
	// List summarizes datasets, optionally restricted to a folder.
	List(folder string) ([]core.DatasetInfo, error)
	// Stat summarizes one dataset.
	Stat(name string) (core.DatasetInfo, error)
	// Delete removes a version or a whole dataset.
	Delete(req proto.DeleteReq) error
	// SetPolicy attaches a data-lifetime policy to a folder.
	SetPolicy(folder string, p core.Policy) error
	// GetPolicy reads a folder's policy.
	GetPolicy(folder string) (core.Policy, error)
	// PolicyDryRun reports which versions the next retention sweep would
	// prune (folder "" = every enforced folder), without mutating
	// anything.
	PolicyDryRun(req proto.PolicyDryRunReq) (proto.PolicyDryRunResp, error)
	// ReplStatus reports the replication level of a dataset's latest
	// version.
	ReplStatus(name string) (proto.ReplStatusResp, error)
	// ManagerStats snapshots service-wide counters.
	ManagerStats() (proto.ManagerStats, error)
	// Benefactors lists registered benefactors.
	Benefactors() ([]core.BenefactorInfo, error)
	// Close releases endpoint resources. The owning Client calls it once.
	Close() error
}

// Retry-after handling for the single-manager endpoint: a shed call is
// retried up to retryAfterAttempts times, sleeping the server's delay
// hint (escalated per attempt, jittered, capped at maxRetryAfterDelay)
// between tries. The federation Router applies the same policy in its
// owner-retry loop, so clients behave identically against one manager or
// a federated plane.
const (
	retryAfterAttempts = 4
	maxRetryAfterDelay = 250 * time.Millisecond
)

// singleManager is the historical endpoint: every call goes to one
// manager address over the client's shared connection pool. Its Close is
// a no-op because the pool belongs to the Client.
type singleManager struct {
	pool *wire.Pool
	addr string
}

func (s *singleManager) call(op string, req, resp interface{}) error {
	var err error
	for attempt := 0; attempt < retryAfterAttempts; attempt++ {
		if attempt > 0 {
			var ra core.ErrRetryAfter
			errors.As(err, &ra)
			d := ra.Delay * time.Duration(attempt)
			if d < ra.Delay {
				d = ra.Delay
			}
			if d > maxRetryAfterDelay {
				d = maxRetryAfterDelay
			}
			if d > 0 {
				d += time.Duration(rand.Int63n(int64(d) + 1))
			}
			time.Sleep(d)
		}
		_, err = s.pool.Call(s.addr, op, req, nil, resp)
		if err == nil || !errors.Is(err, core.ErrRetryAfter{}) {
			return err
		}
		// Manager shed the op: honor the typed retry-after and try again.
	}
	return err
}

func (s *singleManager) Alloc(req proto.AllocReq) (proto.AllocResp, error) {
	var resp proto.AllocResp
	err := s.call(proto.MAlloc, req, &resp)
	return resp, err
}

func (s *singleManager) Extend(_ string, req proto.ExtendReq) (proto.ExtendResp, error) {
	var resp proto.ExtendResp
	err := s.call(proto.MExtend, req, &resp)
	return resp, err
}

func (s *singleManager) Commit(_ string, req proto.CommitReq) (proto.CommitResp, error) {
	var resp proto.CommitResp
	err := s.call(proto.MCommit, req, &resp)
	return resp, err
}

func (s *singleManager) Abort(_ string, req proto.AbortReq) error {
	return s.call(proto.MAbort, req, nil)
}

func (s *singleManager) HasChunks(_ string, ids []core.ChunkID) ([]bool, error) {
	var resp proto.HasResp
	if err := s.call(proto.MHasChunks, proto.HasReq{IDs: ids}, &resp); err != nil {
		return nil, err
	}
	return resp.Present, nil
}

func (s *singleManager) GetMap(req proto.GetMapReq) (proto.GetMapResp, error) {
	var resp proto.GetMapResp
	err := s.call(proto.MGetMap, req, &resp)
	return resp, err
}

func (s *singleManager) GetMaps(req proto.GetMapsReq) (proto.GetMapsResp, error) {
	var resp proto.GetMapsResp
	err := s.call(proto.MGetMaps, req, &resp)
	return resp, err
}

func (s *singleManager) History(req proto.HistoryReq) (proto.HistoryResp, error) {
	var resp proto.HistoryResp
	err := s.call(proto.MHistory, req, &resp)
	return resp, err
}

func (s *singleManager) Diff(req proto.DiffReq) (proto.DiffResp, error) {
	var resp proto.DiffResp
	err := s.call(proto.MDiff, req, &resp)
	return resp, err
}

func (s *singleManager) StatVersion(req proto.StatVersionReq) (proto.StatVersionResp, error) {
	var resp proto.StatVersionResp
	err := s.call(proto.MStatVersion, req, &resp)
	return resp, err
}

func (s *singleManager) List(folder string) ([]core.DatasetInfo, error) {
	var resp proto.ListResp
	if err := s.call(proto.MList, proto.ListReq{Folder: folder}, &resp); err != nil {
		return nil, err
	}
	return resp.Datasets, nil
}

func (s *singleManager) Stat(name string) (core.DatasetInfo, error) {
	var resp proto.StatResp
	err := s.call(proto.MStat, proto.StatReq{Name: name}, &resp)
	return resp.Dataset, err
}

func (s *singleManager) Delete(req proto.DeleteReq) error {
	return s.call(proto.MDelete, req, nil)
}

func (s *singleManager) SetPolicy(folder string, p core.Policy) error {
	return s.call(proto.MPolicySet, proto.PolicySetReq{Folder: folder, Policy: p}, nil)
}

func (s *singleManager) GetPolicy(folder string) (core.Policy, error) {
	var resp proto.PolicyGetResp
	err := s.call(proto.MPolicyGet, proto.PolicyGetReq{Folder: folder}, &resp)
	return resp.Policy, err
}

func (s *singleManager) PolicyDryRun(req proto.PolicyDryRunReq) (proto.PolicyDryRunResp, error) {
	var resp proto.PolicyDryRunResp
	err := s.call(proto.MPolicyDryRun, req, &resp)
	return resp, err
}

func (s *singleManager) ReplStatus(name string) (proto.ReplStatusResp, error) {
	var resp proto.ReplStatusResp
	err := s.call(proto.MReplStatus, proto.ReplStatusReq{Name: name}, &resp)
	return resp, err
}

func (s *singleManager) ManagerStats() (proto.ManagerStats, error) {
	var resp proto.ManagerStats
	err := s.call(proto.MStats, nil, &resp)
	return resp, err
}

func (s *singleManager) Benefactors() ([]core.BenefactorInfo, error) {
	var resp proto.BenefactorsResp
	if err := s.call(proto.MBenefactors, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Benefactors, nil
}

func (s *singleManager) Close() error { return nil }
