// Package client implements the stdchk client proxy (paper §IV): striped
// writes to a stripe of benefactors with eager space reservation, the
// three write-optimized protocols (complete local write, incremental
// write, sliding-window write), optimistic/pessimistic write semantics,
// incremental checkpointing via fixed-size compare-by-hash dedup, session
// semantics (atomic chunk-map commit at close), and parallel reads with
// replica failover.
package client

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"stdchk/internal/chunker"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/namespace"
	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

// Protocol selects the write data path (paper §IV.B).
type Protocol int

const (
	// SlidingWindow pushes data from the write memory buffer directly to
	// stdchk storage, eliminating local disk entirely.
	SlidingWindow Protocol = iota + 1
	// IncrementalWrite stages data in bounded local temporary files and
	// pushes each as it fills, overlapping creation and propagation.
	IncrementalWrite
	// CompleteLocalWrite dumps the whole file locally first and pushes it
	// to stdchk after close.
	CompleteLocalWrite
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case SlidingWindow:
		return "sliding-window"
	case IncrementalWrite:
		return "incremental"
	case CompleteLocalWrite:
		return "complete-local"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ChunkingMode selects how the write path fragments the checkpoint stream
// into chunks (paper §IV.C).
type ChunkingMode int

const (
	// ChunkFixed cuts equal ChunkSize pieces at fixed offsets (FsCH when
	// combined with Incremental). The fastest mode, but any byte
	// insertion/deletion shifts all subsequent chunk contents and defeats
	// cross-version dedup.
	ChunkFixed ChunkingMode = iota
	// ChunkCbCH anchors chunk boundaries to the content itself with a
	// rolling hash, so shifted-but-identical regions across checkpoint
	// versions still hash to the same chunks — the paper's Table 3 result,
	// applied live on the wire path.
	ChunkCbCH
)

// String implements fmt.Stringer.
func (m ChunkingMode) String() string {
	switch m {
	case ChunkFixed:
		return "fixed"
	case ChunkCbCH:
		return "cbch"
	default:
		return fmt.Sprintf("ChunkingMode(%d)", int(m))
	}
}

// Config parameterizes a Client.
type Config struct {
	// ManagerAddr is the metadata manager address. Ignored when Endpoint
	// is set.
	ManagerAddr string
	// Endpoint overrides the default single-manager metadata endpoint —
	// a federation router, for instance. The Client takes ownership and
	// closes it.
	Endpoint ManagerEndpoint
	// StripeWidth is the number of benefactors to stripe writes across
	// (0 = manager default).
	StripeWidth int
	// ChunkSize is the striping chunk size (0 = manager default, 1 MB).
	// In CbCH mode it is ignored in favor of CbCH.Max.
	ChunkSize int64
	// Chunking selects fixed-size striping (default) or content-based
	// variable-size chunking on the write path.
	Chunking ChunkingMode
	// CbCH bounds the content-defined spans when Chunking == ChunkCbCH;
	// zero fields take chunker.StreamParams defaults. Both writers of a
	// version chain must use the same parameters for dedup to land.
	CbCH chunker.StreamParams
	// Replication is the user-defined replication target (0 = manager
	// default).
	Replication int
	// Semantics selects optimistic (default) or pessimistic writes.
	Semantics core.WriteSemantics
	// Protocol selects the write data path. Default SlidingWindow.
	Protocol Protocol
	// BufferBytes bounds the sliding-window in-memory buffer: bytes
	// accepted from the application but not yet pushed to benefactors.
	BufferBytes int64
	// TempFileBytes bounds incremental-write temporary files.
	TempFileBytes int64
	// Incremental enables FsCH chunk dedup against the manager's content
	// index (paper §IV.C): chunks whose hash the system already stores
	// are not uploaded again.
	Incremental bool
	// ReserveQuantum is the eager space-reservation granularity. The
	// paper's workload averages four manager transactions per 100 MB
	// write; the default (32 MB) reproduces that order.
	ReserveQuantum int64
	// PushMapReplicas stores chunk-map copies on the stripe benefactors
	// at commit time, enabling manager recovery by benefactor quorum
	// (paper §IV.A).
	PushMapReplicas bool
	// PessimisticTimeout bounds the pessimistic-write replication wait.
	PessimisticTimeout time.Duration
	// LocalDisk paces the complete-local protocol's staging I/O: writes
	// at the disk's sustained write rate, and the post-close push pays
	// the disk read back (nil = unpaced). Incremental-write temp files
	// are bounded and short-lived, so they are modelled as served from
	// the OS write cache (memory-paced) instead.
	LocalDisk *device.Disk
	// Mem paces in-memory copies (nil = unpaced).
	Mem *device.Limiter
	// Shaper wraps every connection the client dials (its NIC model).
	Shaper wire.Shaper
	// ReadAhead is the number of chunks fetched ahead during reads.
	ReadAhead int
	// ReadAheadBytes bounds the prefetch window in bytes instead of chunk
	// count, which keeps prefetch memory stable when chunk sizes are
	// heterogeneous (CbCH maps mix spans from tens of KB to the max
	// bound). 0 derives the budget as ReadAhead x the map's chunk-size
	// bound.
	ReadAheadBytes int64
	// MapCacheEntries bounds the client's chunk-map cache (see mapCache):
	// explicit-version re-opens hit it with zero manager RPCs, "latest"
	// opens revalidate with one MStatVersion probe. 0 selects the default
	// (256 entries); negative disables caching — every open then pays a
	// full MGetMap, the historical behavior and the -map-cache=false
	// ablation baseline.
	MapCacheEntries int
	// Writer is an optional identity stamped on every version this client
	// commits, surfaced in the dataset's version history (provenance: which
	// job/rank wrote each checkpoint). Empty leaves lineage anonymous.
	Writer string
	// SharedManagerConns, when positive, multiplexes the client's
	// metadata RPCs over that many shared session-tagged connections to
	// the manager instead of one pooled connection per outstanding call
	// — the million-writer topology, where socket count stops scaling
	// with writer count. Zero keeps the historical per-call pool. Chunk
	// traffic to benefactors is governed separately by DataMux. Ignored
	// when Endpoint is set; a federated Router selects shared mode via
	// its own RouterConfig.SharedConns.
	SharedManagerConns int
	// DataMux moves chunk traffic to benefactors onto shared
	// session-tagged (multiplexed) connections and pipelines the data
	// plane: each stripe uploader keeps UploadWindow BPuts in flight per
	// node (acks decoupled from sends), and the reader batches its
	// prefetch window into one BGetBatch request per replica node. Off
	// (the default), chunk traffic keeps the historical stop-and-wait
	// path — one blocking call per chunk on untagged connections,
	// byte-identical on the wire to older clients.
	DataMux bool
	// UploadWindow bounds the in-flight (sent, unacked) BPuts per stripe
	// node when DataMux is on (0 = 8). The write window is additionally
	// bounded by BufferBytes, which caps total buffered chunk bytes.
	UploadWindow int
	// ReadBatch bounds the chunk IDs one BGetBatch request carries when
	// DataMux is on (0 = 16). The read window is additionally bounded by
	// the ReadAhead/ReadAheadBytes prefetch budget.
	ReadBatch int
	// Logger receives operational messages; nil discards.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Protocol == 0 {
		c.Protocol = SlidingWindow
	}
	if c.Semantics == 0 {
		c.Semantics = core.WriteOptimistic
	}
	if c.BufferBytes <= 0 {
		c.BufferBytes = 64 << 20
	}
	if c.TempFileBytes <= 0 {
		c.TempFileBytes = 16 << 20
	}
	if c.ReserveQuantum <= 0 {
		c.ReserveQuantum = 32 << 20
	}
	if c.PessimisticTimeout <= 0 {
		c.PessimisticTimeout = 2 * time.Minute
	}
	if c.ReadAhead <= 0 {
		c.ReadAhead = 4
	}
	if c.UploadWindow <= 0 {
		c.UploadWindow = 8
	}
	if c.ReadBatch <= 0 {
		c.ReadBatch = 16
	}
	if c.Chunking == ChunkCbCH {
		c.CbCH = c.CbCH.WithDefaults()
	}
	return c
}

// Client is a stdchk client proxy.
type Client struct {
	cfg  Config
	pool *wire.Pool
	// mgrPool, when non-nil, is a shared (multiplexed) pool dedicated to
	// manager metadata RPCs (Config.SharedManagerConns); owned here.
	mgrPool *wire.Pool
	// dataPool, when non-nil, is the shared (multiplexed) pool carrying
	// pipelined chunk traffic to benefactors (Config.DataMux): batched
	// reads and windowed uploads tag their frames and share these
	// sockets instead of dialing per call. Owned here; nil when DataMux
	// is off and chunk traffic rides the serial pool.
	dataPool *wire.Pool
	// mgr is the metadata service seam: a single manager or a federated
	// router, resolved once at construction.
	mgr ManagerEndpoint

	// maps caches committed chunk-maps by (dataset, version) — the
	// restart fast path. See mapCache.
	maps *mapCache

	// chunkPool recycles write-path chunk buffers: filled → hashed →
	// uploaded (or dedup-hit) → returned. Buffers are handled as *[]byte
	// so the steady-state pipeline allocates nothing per chunk.
	chunkPool sync.Pool

	// onChunkGet / onChunkPut observe pool traffic; nil outside tests.
	onChunkGet func(*[]byte)
	onChunkPut func(*[]byte)

	benefMu    sync.Mutex
	benefAddrs map[core.NodeID]string // node id -> service address cache
}

// getChunkBuf returns an empty chunk buffer with at least size capacity.
func (c *Client) getChunkBuf(size int64) *[]byte {
	if v := c.chunkPool.Get(); v != nil {
		bp := v.(*[]byte)
		if int64(cap(*bp)) >= size {
			*bp = (*bp)[:0]
			if c.onChunkGet != nil {
				c.onChunkGet(bp)
			}
			return bp
		}
	}
	b := make([]byte, 0, size)
	bp := &b
	if c.onChunkGet != nil {
		c.onChunkGet(bp)
	}
	return bp
}

// putChunkBuf returns a chunk buffer to the pool. Each buffer handed out
// by getChunkBuf must come back exactly once, and never after its bytes
// have been handed to anyone else.
func (c *Client) putChunkBuf(bp *[]byte) {
	if bp == nil {
		return
	}
	if c.onChunkPut != nil {
		c.onChunkPut(bp)
	}
	*bp = (*bp)[:0]
	c.chunkPool.Put(bp)
}

// New returns a client for the given configuration.
func New(cfg Config) (*Client, error) {
	if cfg.ManagerAddr == "" && cfg.Endpoint == nil {
		return nil, errors.New("client: ManagerAddr or Endpoint is required")
	}
	cfg = cfg.withDefaults()
	cacheEntries := cfg.MapCacheEntries
	if cacheEntries == 0 {
		cacheEntries = defaultClientMapCacheEntries
	}
	c := &Client{
		cfg:        cfg,
		pool:       wire.NewPool(cfg.Shaper, 8),
		maps:       newMapCache(cacheEntries),
		benefAddrs: make(map[core.NodeID]string),
	}
	switch {
	case cfg.Endpoint != nil:
		c.mgr = cfg.Endpoint
	case cfg.SharedManagerConns > 0:
		c.mgrPool = wire.NewSharedPool(cfg.Shaper, cfg.SharedManagerConns)
		c.mgr = &singleManager{pool: c.mgrPool, addr: cfg.ManagerAddr}
	default:
		c.mgr = &singleManager{pool: c.pool, addr: cfg.ManagerAddr}
	}
	if cfg.DataMux {
		// Two shared conns per benefactor: one keeps the pipe full for
		// bulk bodies, the second lets small control frames (batch
		// headers, acks) interleave instead of queueing behind a 1 MB
		// chunk mid-flight.
		c.dataPool = wire.NewSharedPool(cfg.Shaper, 2)
	}
	return c, nil
}

// Close releases the metadata endpoint and pooled connections.
func (c *Client) Close() error {
	err := c.mgr.Close()
	c.pool.Close()
	if c.mgrPool != nil {
		c.mgrPool.Close()
	}
	if c.dataPool != nil {
		c.dataPool.Close()
	}
	return err
}

func (c *Client) logf(format string, args ...interface{}) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Printf("client: "+format, args...)
	}
}

// Create opens a write session for a new checkpoint image. The returned
// Writer implements the configured protocol; Close marks the
// application-visible end of the write (the OAB endpoint) and Wait blocks
// until the image is safely stored and committed (the ASB endpoint).
func (c *Client) Create(name string) (*Writer, error) {
	return newWriter(c, name)
}

// OpenOptions selects which committed version Open serves and how. The
// zero value means "the latest version, fetched in full" — exactly what
// Open with no options does. At most one of Version, AsOf, and Latest may
// select a version.
type OpenOptions struct {
	// Version opens a specific committed version (0 = unset).
	Version core.VersionID
	// Latest explicitly requests the newest committed version — the
	// default when no selector is set; it exists so call sites can spell
	// the intent out and so option structs built programmatically can
	// assert "no explicit version leaked in here".
	Latest bool
	// AsOf opens the newest version committed at or before this instant
	// (time-travel read). New managers resolve the instant server-side
	// under the dataset lock (one lightweight stat probe); old managers
	// cost one history RPC instead.
	AsOf time.Time
	// Baseline enables incremental restore: the version the caller
	// already holds locally. Chunks the opened version shares with the
	// baseline are served from BaselineData (hash-verified) instead of
	// the network, so a restore after a small delta fetches only the
	// delta. Requires BaselineData.
	Baseline core.VersionID
	// BaselineData is the full content of the Baseline version as the
	// caller holds it locally. Length must equal the baseline version's
	// file size; bytes that fail per-chunk hash verification fall back to
	// a network fetch, so a corrupt local baseline costs correctness
	// nothing.
	BaselineData []byte
}

// validate rejects contradictory selector combinations.
func (o OpenOptions) validate() error {
	selectors := 0
	if o.Version != 0 {
		selectors++
	}
	if o.Latest {
		selectors++
	}
	if !o.AsOf.IsZero() {
		selectors++
	}
	if selectors > 1 {
		return errors.New("client: OpenOptions: Version, Latest, and AsOf are mutually exclusive")
	}
	if o.Baseline != 0 && o.BaselineData == nil {
		return errors.New("client: OpenOptions: Baseline requires BaselineData")
	}
	if o.Baseline == 0 && o.BaselineData != nil {
		return errors.New("client: OpenOptions: BaselineData requires Baseline")
	}
	return nil
}

// Open opens a committed version for reading. With no options it serves
// the latest version — the historical behavior. One OpenOptions value
// may select an explicit Version, the newest version AsOf an instant, or
// (the default) the latest; adding Baseline/BaselineData turns the open
// into an incremental restore that fetches only chunks the opened
// version does not share with the caller's local baseline copy.
//
// The chunk-map cache makes re-opens cheap: an explicit version that hits
// needs no manager RPC at all (committed versions are immutable), and a
// warm latest/timestep open revalidates with one lightweight MStatVersion
// probe — name to committed version identity, no location payload —
// paying the full map fetch only when the resolved version is not cached.
// A cold open (no version of the dataset cached) skips the probe and
// keeps the historical single-RPC getMap shape. Any revalidation error
// (not-found, federation partition epoch mismatch, member unreachable)
// propagates instead of falling back to the cache: a cached map must
// never mask the metadata plane refusing the request.
func (c *Client) Open(name string, opts ...OpenOptions) (*Reader, error) {
	var opt OpenOptions
	switch len(opts) {
	case 0:
	case 1:
		opt = opts[0]
	default:
		return nil, errors.New("client: Open takes at most one OpenOptions")
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	ver := opt.Version
	if !opt.AsOf.IsZero() {
		v, err := c.resolveAsOf(name, opt.AsOf)
		if err != nil {
			return nil, err
		}
		ver = v
	}
	fileName, cm, err := c.openMap(name, ver)
	if err != nil {
		return nil, err
	}
	r := newReader(c, fileName, cm)
	if opt.Baseline != 0 {
		_, baseMap, err := c.openMap(name, opt.Baseline)
		if err != nil {
			return nil, fmt.Errorf("client: open %s: baseline version %d: %w", name, opt.Baseline, err)
		}
		base, err := newBaseline(baseMap, opt.BaselineData)
		if err != nil {
			return nil, fmt.Errorf("client: open %s: %w", name, err)
		}
		r.base = base
	}
	return r, nil
}

// OpenVersion opens a specific committed version (0 = latest).
//
// Deprecated: use Open(name, OpenOptions{Version: ver}).
func (c *Client) OpenVersion(name string, ver core.VersionID) (*Reader, error) {
	if ver == 0 {
		return c.Open(name)
	}
	return c.Open(name, OpenOptions{Version: ver})
}

// resolveAsOf maps an instant to the newest version committed at or
// before it. New managers resolve it server-side, under the dataset
// stripe, from one lightweight MStatVersion probe carrying the instant;
// the AsOfResolved echo proves the server honored it. Servers predating
// as-of resolution ignore the unknown field and answer "latest" with no
// echo, and the client falls back to the historical MHistory walk. Probe
// errors fall back too: the history path re-derives the authoritative
// answer (dataset missing, or no version that old) at the cost of one
// extra round trip on an already-failing open.
func (c *Client) resolveAsOf(name string, asOf time.Time) (core.VersionID, error) {
	sv, err := c.mgr.StatVersion(proto.StatVersionReq{Name: name, AsOf: asOf})
	if err == nil && sv.AsOfResolved {
		return sv.Version, nil
	}
	return c.resolveAsOfFromHistory(name, asOf)
}

// resolveAsOfFromHistory is the client-side fallback: walk the dataset's
// version history and pick the newest commit not after the instant.
func (c *Client) resolveAsOfFromHistory(name string, asOf time.Time) (core.VersionID, error) {
	hist, err := c.History(name)
	if err != nil {
		return 0, fmt.Errorf("client: open %s as of %s: %w", name, asOf.Format(time.RFC3339), err)
	}
	var ver core.VersionID
	for _, v := range hist.Versions { // oldest first
		if !v.CommittedAt.After(asOf) {
			ver = v.Version
		}
	}
	if ver == 0 {
		return 0, fmt.Errorf("client: open %s as of %s: no version that old: %w",
			name, asOf.Format(time.RFC3339), core.ErrNotFound)
	}
	return ver, nil
}

// openMap resolves name (+ optional explicit version) to a committed
// chunk-map, serving from the client cache when it can.
func (c *Client) openMap(name string, ver core.VersionID) (string, *core.ChunkMap, error) {
	dsKey := namespace.DatasetOf(name)
	if ver != 0 {
		if fileName, cm := c.maps.get(dsKey, ver); cm != nil {
			return fileName, cm, nil
		}
		return c.fetchMap(name, dsKey, ver)
	}
	if !c.maps.hasDataset(dsKey) {
		// Nothing cached for this dataset (or caching disabled): the
		// revalidation probe cannot save the fetch, so keep the
		// historical single-RPC cold path.
		return c.fetchMap(name, dsKey, 0)
	}
	sv, err := c.mgr.StatVersion(proto.StatVersionReq{Name: name})
	if err != nil {
		return "", nil, fmt.Errorf("client: open %s: %w", name, err)
	}
	if fileName, cm := c.maps.get(dsKey, sv.Version); cm != nil {
		return fileName, cm, nil
	}
	// Fetch the exact version the probe resolved: a commit racing this
	// open must not slide a different version under the cache key.
	return c.fetchMap(name, dsKey, sv.Version)
}

// fetchMap pays the full MGetMap and caches the result.
func (c *Client) fetchMap(name, dsKey string, ver core.VersionID) (string, *core.ChunkMap, error) {
	resp, err := c.mgr.GetMap(proto.GetMapReq{Name: name, Version: ver})
	if err != nil {
		return "", nil, fmt.Errorf("client: open %s: %w", name, err)
	}
	c.maps.put(dsKey, resp.Name, resp.Map)
	return resp.Name, resp.Map, nil
}

// History reports the dataset's version lineage, oldest first: identity,
// commit time, writer, size, and how much each version shares with its
// predecessor.
func (c *Client) History(name string) (proto.HistoryResp, error) {
	resp, err := c.mgr.History(proto.HistoryReq{Name: name})
	if err != nil {
		return proto.HistoryResp{}, fmt.Errorf("client: history %s: %w", name, err)
	}
	return resp, nil
}

// Diff reports the byte ranges of version to that differ from version
// from (0 = latest for to). Bytes outside the returned ranges are
// guaranteed identical in both versions.
func (c *Client) Diff(name string, from, to core.VersionID) (proto.DiffResp, error) {
	resp, err := c.mgr.Diff(proto.DiffReq{Name: name, From: from, To: to})
	if err != nil {
		return proto.DiffResp{}, fmt.Errorf("client: diff %s: %w", name, err)
	}
	return resp, nil
}

// PrefetchMaps warms the client chunk-map cache for a set of names in
// one metadata round trip per federation member touched (cross-member
// map prefetch). Best-effort: names the metadata plane does not know are
// skipped, not errors. Returns how many maps were installed.
func (c *Client) PrefetchMaps(names []string) (int, error) {
	if len(names) == 0 {
		return 0, nil
	}
	resp, err := c.mgr.GetMaps(proto.GetMapsReq{Names: names})
	if err != nil {
		return 0, fmt.Errorf("client: prefetch maps: %w", err)
	}
	for _, nm := range resp.Maps {
		c.maps.put(namespace.DatasetOf(nm.Name), nm.Name, nm.Map)
	}
	return len(resp.Maps), nil
}

// MapCacheStats snapshots the client chunk-map cache counters.
func (c *Client) MapCacheStats() proto.MapCacheStats { return c.maps.snapshot() }

// Delete removes one version, or the whole dataset when ver is 0. The
// dataset's cached chunk-maps are dropped — a deleted version's chunks
// may be garbage collected, so serving it from cache would read garbage.
func (c *Client) Delete(name string, ver core.VersionID) error {
	if err := c.mgr.Delete(proto.DeleteReq{Name: name, Version: ver}); err != nil {
		return fmt.Errorf("client: delete %s: %w", name, err)
	}
	c.InvalidateMaps(name)
	return nil
}

// InvalidateMaps drops every cached chunk-map of name's dataset. Local
// deletes call it automatically; callers who learn out-of-band that the
// server pruned versions (retention policies fire on the manager, not
// here) use it to stop serving condemned maps.
func (c *Client) InvalidateMaps(name string) {
	c.maps.invalidateDataset(namespace.DatasetOf(name))
}

// List lists datasets, optionally restricted to a folder.
func (c *Client) List(folder string) ([]core.DatasetInfo, error) {
	datasets, err := c.mgr.List(folder)
	if err != nil {
		return nil, fmt.Errorf("client: list: %w", err)
	}
	return datasets, nil
}

// Stat summarizes one dataset.
func (c *Client) Stat(name string) (core.DatasetInfo, error) {
	info, err := c.mgr.Stat(name)
	if err != nil {
		return core.DatasetInfo{}, fmt.Errorf("client: stat %s: %w", name, err)
	}
	return info, nil
}

// SetPolicy attaches a data-lifetime policy to a folder.
func (c *Client) SetPolicy(folder string, p core.Policy) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("client: set policy: %w", err)
	}
	if err := c.mgr.SetPolicy(folder, p); err != nil {
		return fmt.Errorf("client: set policy on %q: %w", folder, err)
	}
	return nil
}

// GetPolicy reads a folder's policy.
func (c *Client) GetPolicy(folder string) (core.Policy, error) {
	p, err := c.mgr.GetPolicy(folder)
	if err != nil {
		return core.Policy{}, fmt.Errorf("client: get policy of %q: %w", folder, err)
	}
	return p, nil
}

// PolicyDryRun audits retention without mutating anything: for each
// enforced folder (or just the given one, when non-empty) it reports the
// versions the next sweep would prune under the policy in force now.
func (c *Client) PolicyDryRun(folder string) (proto.PolicyDryRunResp, error) {
	resp, err := c.mgr.PolicyDryRun(proto.PolicyDryRunReq{Folder: folder})
	if err != nil {
		return proto.PolicyDryRunResp{}, fmt.Errorf("client: policy dry-run: %w", err)
	}
	return resp, nil
}

// ManagerStats snapshots metadata-service counters (merged across members
// when the endpoint is federated).
func (c *Client) ManagerStats() (proto.ManagerStats, error) {
	resp, err := c.mgr.ManagerStats()
	if err != nil {
		return proto.ManagerStats{}, fmt.Errorf("client: manager stats: %w", err)
	}
	return resp, nil
}

// Benefactors lists registered benefactors.
func (c *Client) Benefactors() ([]core.BenefactorInfo, error) {
	benefs, err := c.mgr.Benefactors()
	if err != nil {
		return nil, fmt.Errorf("client: benefactors: %w", err)
	}
	return benefs, nil
}

// replicationLevel polls the live replication of a dataset's latest
// version (pessimistic writes).
func (c *Client) replicationLevel(name string) (proto.ReplStatusResp, error) {
	return c.mgr.ReplStatus(name)
}
