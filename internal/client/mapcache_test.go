package client

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// fakeMetadata is an in-memory ManagerEndpoint that counts the RPCs the
// client issues — the cache tests' ground truth for "zero getMap RPCs".
type fakeMetadata struct {
	getMaps      int
	statVersions int
	deletes      int
	// chains maps a dataset key to its committed versions in order.
	chains map[string][]*core.ChunkMap
	// statVersionErr, when set, fails StatVersion (the restarted-owner /
	// epoch-mismatch shape).
	statVersionErr error
}

func newFakeMetadata() *fakeMetadata {
	return &fakeMetadata{chains: make(map[string][]*core.ChunkMap)}
}

// commit appends a new version to a dataset's chain and returns it.
func (f *fakeMetadata) commit(dataset string, ver core.VersionID, locs []core.NodeID) *core.ChunkMap {
	m := &core.ChunkMap{
		Dataset:   1,
		Version:   ver,
		FileSize:  64,
		ChunkSize: 64,
		Chunks:    []core.ChunkRef{{Index: 0, ID: core.HashChunk([]byte(fmt.Sprintf("%s@%d", dataset, ver))), Size: 64}},
		Locations: [][]core.NodeID{locs},
	}
	f.chains[dataset] = append(f.chains[dataset], m)
	return m
}

func (f *fakeMetadata) fileName(dataset string, m *core.ChunkMap) string {
	return fmt.Sprintf("%s.t%d", dataset, m.Version)
}

func (f *fakeMetadata) GetMap(req proto.GetMapReq) (proto.GetMapResp, error) {
	f.getMaps++
	chain := f.chains[req.Name]
	if len(chain) == 0 {
		return proto.GetMapResp{}, core.ErrNotFound
	}
	if req.Version == 0 {
		m := chain[len(chain)-1]
		return proto.GetMapResp{Name: f.fileName(req.Name, m), Map: m.Clone()}, nil
	}
	for _, m := range chain {
		if m.Version == req.Version {
			return proto.GetMapResp{Name: f.fileName(req.Name, m), Map: m.Clone()}, nil
		}
	}
	return proto.GetMapResp{}, core.ErrNotFound
}

func (f *fakeMetadata) StatVersion(req proto.StatVersionReq) (proto.StatVersionResp, error) {
	f.statVersions++
	if f.statVersionErr != nil {
		return proto.StatVersionResp{}, f.statVersionErr
	}
	chain := f.chains[req.Name]
	if len(chain) == 0 {
		return proto.StatVersionResp{}, core.ErrNotFound
	}
	m := chain[len(chain)-1]
	return proto.StatVersionResp{Name: f.fileName(req.Name, m), Dataset: m.Dataset, Version: m.Version}, nil
}

func (f *fakeMetadata) Delete(req proto.DeleteReq) error {
	f.deletes++
	delete(f.chains, req.Name)
	return nil
}

func (f *fakeMetadata) GetMaps(req proto.GetMapsReq) (proto.GetMapsResp, error) {
	var resp proto.GetMapsResp
	for _, name := range req.Names {
		chain := f.chains[name]
		if len(chain) == 0 {
			continue // best-effort: unknown names are skipped
		}
		m := chain[len(chain)-1]
		resp.Maps = append(resp.Maps, proto.NamedMap{Name: f.fileName(name, m), Map: m})
	}
	return resp, nil
}
func (f *fakeMetadata) History(req proto.HistoryReq) (proto.HistoryResp, error) {
	chain := f.chains[req.Name]
	if len(chain) == 0 {
		return proto.HistoryResp{}, core.ErrNotFound
	}
	var resp proto.HistoryResp
	for _, m := range chain {
		resp.Versions = append(resp.Versions, proto.VersionLineage{
			Version: m.Version, Name: f.fileName(req.Name, m),
			FileSize: m.FileSize, CommittedAt: m.CreatedAt, Chunks: len(m.Chunks),
		})
	}
	return resp, nil
}
func (f *fakeMetadata) Diff(proto.DiffReq) (proto.DiffResp, error) {
	return proto.DiffResp{}, errors.New("fake: not implemented")
}
func (f *fakeMetadata) Alloc(proto.AllocReq) (proto.AllocResp, error) {
	return proto.AllocResp{}, errors.New("fake: not implemented")
}
func (f *fakeMetadata) Extend(string, proto.ExtendReq) (proto.ExtendResp, error) {
	return proto.ExtendResp{}, errors.New("fake: not implemented")
}
func (f *fakeMetadata) Commit(string, proto.CommitReq) (proto.CommitResp, error) {
	return proto.CommitResp{}, errors.New("fake: not implemented")
}
func (f *fakeMetadata) Abort(string, proto.AbortReq) error {
	return errors.New("fake: not implemented")
}
func (f *fakeMetadata) HasChunks(string, []core.ChunkID) ([]bool, error) {
	return nil, errors.New("fake: not implemented")
}
func (f *fakeMetadata) List(string) ([]core.DatasetInfo, error) { return nil, nil }
func (f *fakeMetadata) Stat(string) (core.DatasetInfo, error) {
	return core.DatasetInfo{}, core.ErrNotFound
}
func (f *fakeMetadata) SetPolicy(string, core.Policy) error { return nil }
func (f *fakeMetadata) GetPolicy(string) (core.Policy, error) {
	return core.Policy{}, nil
}
func (f *fakeMetadata) PolicyDryRun(proto.PolicyDryRunReq) (proto.PolicyDryRunResp, error) {
	return proto.PolicyDryRunResp{}, nil
}
func (f *fakeMetadata) ReplStatus(string) (proto.ReplStatusResp, error) {
	return proto.ReplStatusResp{}, core.ErrNotFound
}
func (f *fakeMetadata) ManagerStats() (proto.ManagerStats, error) {
	return proto.ManagerStats{}, nil
}
func (f *fakeMetadata) Benefactors() ([]core.BenefactorInfo, error) { return nil, nil }
func (f *fakeMetadata) Close() error                                { return nil }

func cacheTestClient(t *testing.T, f *fakeMetadata, entries int) *Client {
	t.Helper()
	c, err := New(Config{Endpoint: f, MapCacheEntries: entries})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestMapCacheExplicitVersionZeroRPCs: once a version's map is cached,
// re-opening that explicit version issues no manager RPC of any kind —
// committed versions are immutable, so there is nothing to revalidate.
func TestMapCacheExplicitVersionZeroRPCs(t *testing.T) {
	f := newFakeMetadata()
	f.commit("app.n1", 7, []core.NodeID{"b1:1"})
	c := cacheTestClient(t, f, 0)

	r, err := c.Open("app.n1", OpenOptions{Version: 7})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if f.getMaps != 1 || f.statVersions != 0 {
		t.Fatalf("cold open: %d getMaps, %d statVersions; want 1, 0", f.getMaps, f.statVersions)
	}
	for i := 0; i < 3; i++ {
		r, err := c.Open("app.n1", OpenOptions{Version: 7})
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != "app.n1.t7" || r.Size() != 64 {
			t.Fatalf("cached open: name %q size %d", r.Name(), r.Size())
		}
		r.Close()
	}
	if f.getMaps != 1 || f.statVersions != 0 {
		t.Fatalf("warm explicit-version opens issued RPCs: %d getMaps, %d statVersions; want 1, 0",
			f.getMaps, f.statVersions)
	}
	if s := c.MapCacheStats(); s.Hits != 3 || s.Misses != 1 {
		t.Fatalf("cache stats %+v, want 3 hits / 1 miss", s)
	}
}

// TestMapCacheLatestRevalidation: a cold "latest" open keeps the
// historical single-RPC shape (nothing cached to revalidate), a warm
// one costs exactly one MStatVersion probe and zero getMaps — and a
// commit of version v+1 invalidates the cached answer, forcing one full
// fetch of the new map.
func TestMapCacheLatestRevalidation(t *testing.T) {
	f := newFakeMetadata()
	f.commit("app.n1", 1, []core.NodeID{"b1:1"})
	c := cacheTestClient(t, f, 0)

	if _, err := c.Open("app.n1"); err != nil {
		t.Fatal(err)
	}
	if f.statVersions != 0 || f.getMaps != 1 {
		t.Fatalf("cold latest open: %d statVersions, %d getMaps; want 0, 1", f.statVersions, f.getMaps)
	}
	r, err := c.Open("app.n1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Map().Version != 1 {
		t.Fatalf("warm latest open served version %d, want 1", r.Map().Version)
	}
	r.Close()
	if f.statVersions != 1 || f.getMaps != 1 {
		t.Fatalf("warm latest open: %d statVersions, %d getMaps; want 1, 1", f.statVersions, f.getMaps)
	}

	// Version v+1 commits elsewhere: the revalidation probe must see it
	// and the client must fetch the new map, not serve the stale one.
	f.commit("app.n1", 2, []core.NodeID{"b2:1"})
	r, err = c.Open("app.n1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Map().Version != 2 {
		t.Fatalf("post-commit latest open served version %d, want 2", r.Map().Version)
	}
	r.Close()
	if f.statVersions != 2 || f.getMaps != 2 {
		t.Fatalf("post-commit open: %d statVersions, %d getMaps; want 2, 2", f.statVersions, f.getMaps)
	}
	// The superseded version remains cached and servable explicitly.
	if _, err := c.Open("app.n1", OpenOptions{Version: 1}); err != nil {
		t.Fatal(err)
	}
	if f.getMaps != 2 {
		t.Fatalf("explicit open of superseded version refetched (%d getMaps)", f.getMaps)
	}
}

// TestMapCacheRevalidationErrorDoesNotServeCache: when the revalidation
// probe fails — a federation owner restarted without its partition
// identity answers ErrEpochMismatch — the open must fail rather than
// fall back to the cached map.
func TestMapCacheRevalidationErrorDoesNotServeCache(t *testing.T) {
	f := newFakeMetadata()
	f.commit("app.n1", 1, []core.NodeID{"b1:1"})
	c := cacheTestClient(t, f, 0)
	if _, err := c.Open("app.n1"); err != nil {
		t.Fatal(err)
	}
	f.statVersionErr = core.ErrEpochMismatch
	if _, err := c.Open("app.n1"); !errors.Is(err, core.ErrEpochMismatch) {
		t.Fatalf("open with failing revalidation returned %v, want ErrEpochMismatch", err)
	}
}

// TestMapCacheDeleteInvalidates: a local delete drops the dataset's
// cached maps, so a later explicit-version open consults the manager
// (and fails) instead of serving the deleted version from cache.
func TestMapCacheDeleteInvalidates(t *testing.T) {
	f := newFakeMetadata()
	f.commit("app.n1", 1, []core.NodeID{"b1:1"})
	c := cacheTestClient(t, f, 0)
	if _, err := c.Open("app.n1", OpenOptions{Version: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("app.n1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("app.n1", OpenOptions{Version: 1}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("open of deleted version returned %v, want ErrNotFound", err)
	}
	if s := c.MapCacheStats(); s.Invalidations != 1 {
		t.Fatalf("delete recorded %d invalidations, want 1", s.Invalidations)
	}
}

// TestMapCacheDisabled: MapCacheEntries < 0 restores the historical
// behavior — every open is one full getMap, no revalidation probes.
func TestMapCacheDisabled(t *testing.T) {
	f := newFakeMetadata()
	f.commit("app.n1", 1, []core.NodeID{"b1:1"})
	c := cacheTestClient(t, f, -1)
	for i := 0; i < 3; i++ {
		r, err := c.Open("app.n1")
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
	}
	if f.getMaps != 3 || f.statVersions != 0 {
		t.Fatalf("disabled cache: %d getMaps, %d statVersions; want 3, 0", f.getMaps, f.statVersions)
	}
}

// TestMapCacheLRUEviction: the cache holds at most MapCacheEntries maps;
// the least recently used falls out first.
func TestMapCacheLRUEviction(t *testing.T) {
	f := newFakeMetadata()
	for d := 0; d < 3; d++ {
		f.commit(fmt.Sprintf("ds%d.n1", d), core.VersionID(d+1), []core.NodeID{"b1:1"})
	}
	c := cacheTestClient(t, f, 2)
	open := func(d int) {
		t.Helper()
		r, err := c.Open(fmt.Sprintf("ds%d.n1", d), OpenOptions{Version: core.VersionID(d + 1)})
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
	}
	open(0)
	open(1)
	open(0) // refresh ds0; ds1 is now LRU
	open(2) // evicts ds1
	before := f.getMaps
	open(0)
	if f.getMaps != before {
		t.Fatal("ds0 should still be cached")
	}
	open(1)
	if f.getMaps != before+1 {
		t.Fatal("ds1 should have been evicted and refetched")
	}
}

// TestReaderInstallTimeReplicaOrder: the reader computes its per-chunk
// replica preference order once at map-install time — rotated by chunk
// index so readers spread over the stripe — and never mutates the
// (possibly cache-shared) map's own location lists.
func TestReaderInstallTimeReplicaOrder(t *testing.T) {
	f := newFakeMetadata()
	c := cacheTestClient(t, f, 0)
	replicas := []core.NodeID{"a:1", "b:1", "c:1"}
	cm := &core.ChunkMap{
		Version: 1, FileSize: 3, ChunkSize: 1,
		Chunks: []core.ChunkRef{
			{Index: 0, ID: core.HashChunk([]byte("x")), Size: 1},
			{Index: 1, ID: core.HashChunk([]byte("y")), Size: 1},
			{Index: 2, ID: core.HashChunk([]byte("z")), Size: 1},
		},
		Locations: [][]core.NodeID{
			append([]core.NodeID(nil), replicas...),
			append([]core.NodeID(nil), replicas...),
			append([]core.NodeID(nil), replicas...),
		},
	}
	r := newReader(c, "rot.n1.t0", cm)
	defer r.Close()
	want := [][]core.NodeID{
		{"a:1", "b:1", "c:1"},
		{"b:1", "c:1", "a:1"},
		{"c:1", "a:1", "b:1"},
	}
	if !reflect.DeepEqual(r.locs, want) {
		t.Fatalf("installed order %v, want %v", r.locs, want)
	}
	for i, locs := range cm.Locations {
		if !reflect.DeepEqual(locs, replicas) {
			t.Fatalf("chunk %d of the shared map was reordered: %v", i, locs)
		}
	}
}
