package client

import (
	"fmt"
	"sync"
	"time"

	"stdchk/internal/chunker"
	"stdchk/internal/core"
	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

// Writer is one write session. The application writes sequentially and
// closes; Close marks the application-perceived end of the checkpoint
// operation (the OAB endpoint) while Wait blocks until all remote I/O has
// completed and the chunk-map is committed (the ASB endpoint).
//
// The three protocols differ in what happens between Write and the
// benefactor uploads:
//
//   - sliding-window: Write lands in a bounded memory buffer that uploader
//     goroutines drain directly to the stripe; no local disk at all.
//   - incremental: Write fills bounded in-memory temporary files; each full
//     temp file is handed to a background pusher, overlapping data creation
//     with remote propagation.
//   - complete-local: Write stages the whole image on the local disk
//     (paced by its model); the push to stdchk happens only after Close.
//
// The remote data path is a pipeline of recycled chunk buffers: the
// application (or pusher) thread fills pooled buffers, a hashing stage
// computes SHA-1 off the application thread and batches dedup probes into
// one MHasChunks RPC per in-flight window, and per-stripe-node uploaders
// stream the chunks out and return the buffers to the pool. The
// application thread therefore pays only the memcpy into the buffer — no
// hashing, no allocation, no per-chunk manager RPCs.
//
// With Config.Chunking == ChunkCbCH the filling thread additionally runs a
// streaming rolling-hash boundary finder, so cuts are content-anchored
// (variable-size spans) instead of offset-anchored; the downstream stages
// are size-agnostic and unchanged.
type Writer struct {
	c        *Client
	name     string
	protocol Protocol

	openedAt time.Time

	mu           sync.Mutex
	cond         *sync.Cond
	err          error         // sticky first failure
	failed       chan struct{} // closed when err is first set
	inflight     int64         // bytes accepted but not yet stored remotely
	commitChunks []proto.CommitChunk
	closedAt     time.Time
	storedAt     time.Time
	written      int64
	uploaded     int64 // bytes actually moved to benefactors
	deduped      int64 // bytes skipped thanks to FsCH dedup
	closed       bool

	sess      proto.AllocResp
	stripe    []proto.Stripe
	chunkSize int64 // fixed chunk size, or the CbCH max span bound
	reserved  int64

	// cbch, when non-nil, is the streaming content-defined boundary
	// finder: instead of cutting at fixed chunkSize offsets, the filling
	// thread scans each application write with a rolling hash and emits
	// variable-size spans (cbch.Params().Min..Max). The rest of the
	// pipeline — hashing stage, dedup batching, round-robin uploaders —
	// is size-agnostic and unchanged.
	cbch *chunker.Stream

	cur      *[]byte // pooled buffer being filled; nil between chunks
	chunkIdx int

	workers  []*uploadWorker
	workerWg sync.WaitGroup

	// hashing stage between the filling thread and the uploaders
	hashCh chan chunkItem
	hashWg sync.WaitGroup

	// incremental-write staging
	temp      []byte
	tempQueue chan []byte
	pushWg    sync.WaitGroup

	done    chan struct{}
	waitErr error
}

type uploadWorker struct {
	addr string
	ch   chan uploadItem
	// Exactly one of conn/mux is set. conn is the historical transport:
	// untagged frames, one blocking stop-and-wait call per chunk. mux
	// (Config.DataMux) tags frames on a multiplexed connection so up to
	// Config.UploadWindow puts ride it concurrently.
	conn *wire.Conn
	mux  *wire.MuxConn
}

func (u *uploadWorker) close() {
	if u.mux != nil {
		u.mux.Close()
		return
	}
	u.conn.Close()
}

// chunkItem is a filled, not-yet-hashed chunk travelling from the filling
// thread to the hashing stage. flush asks the hasher to probe/dispatch its
// current batch once this chunk is folded in (set at the end of a Write
// call and at end of file, so a whole application write becomes one dedup
// probe).
type chunkItem struct {
	idx   int
	buf   *[]byte
	flush bool
}

// hashedChunk is a chunk with its content name, staged for one batched
// dedup probe and then dispatch to its round-robin stripe worker.
type hashedChunk struct {
	idx int
	id  core.ChunkID
	buf *[]byte
}

type uploadItem struct {
	idx int
	id  core.ChunkID
	buf *[]byte
}

// maxProbeBatch caps how many chunk IDs one MHasChunks dedup probe
// carries.
const maxProbeBatch = 32

func newWriter(c *Client, name string) (*Writer, error) {
	w := &Writer{
		c:        c,
		name:     name,
		protocol: c.cfg.Protocol,
		openedAt: time.Now(),
		failed:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)

	chunkSize := c.cfg.ChunkSize
	if chunkSize <= 0 {
		chunkSize = core.DefaultChunkSize
	}
	if c.cfg.Chunking == ChunkCbCH {
		// Variable-size session: the max span bound plays the chunk-size
		// role everywhere sizes matter — pooled buffer capacity, the
		// manager's per-chunk validation bound, reservation rounding.
		w.cbch = chunker.NewStream(c.cfg.CbCH)
		chunkSize = w.cbch.Params().Max
	}
	req := proto.AllocReq{
		Name:         name,
		StripeWidth:  c.cfg.StripeWidth,
		ChunkSize:    chunkSize,
		Variable:     w.cbch != nil,
		ReserveBytes: c.cfg.ReserveQuantum,
		Replication:  c.cfg.Replication,
		Writer:       c.cfg.Writer,
	}
	sess, err := c.mgr.Alloc(req)
	if err != nil {
		return nil, fmt.Errorf("client: create %s: %w", name, err)
	}
	w.sess = sess
	w.stripe = w.sess.Stripe
	w.chunkSize = chunkSize
	w.reserved = c.cfg.ReserveQuantum

	for _, st := range w.stripe {
		worker := &uploadWorker{addr: st.Addr, ch: make(chan uploadItem, 4)}
		if c.cfg.DataMux {
			worker.mux, err = wire.DialMux(st.Addr, c.cfg.Shaper)
		} else {
			worker.conn, err = wire.Dial(st.Addr, c.cfg.Shaper)
		}
		if err != nil {
			w.abort()
			for _, prev := range w.workers {
				prev.close()
			}
			return nil, fmt.Errorf("client: create %s: dial stripe node %s: %w", name, st.Addr, err)
		}
		w.workers = append(w.workers, worker)
	}
	for _, worker := range w.workers {
		w.workerWg.Add(1)
		go w.runUploader(worker)
	}

	w.hashCh = make(chan chunkItem, 2*maxProbeBatch)
	w.hashWg.Add(1)
	go w.runHasher()

	if w.protocol == IncrementalWrite {
		// Capacity one bounds outstanding temp files to: one being
		// filled, one queued, one being pushed.
		w.tempQueue = make(chan []byte, 1)
		w.pushWg.Add(1)
		go w.runTempPusher()
	}
	return w, nil
}

// Name returns the file name being written.
func (w *Writer) Name() string { return w.name }

// Write implements io.Writer. Data is accepted in application-sized blocks
// and re-chunked to the striping chunk size.
func (w *Writer) Write(p []byte) (int, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, core.ErrClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	w.written += int64(len(p))
	w.mu.Unlock()

	if err := w.ensureReservation(); err != nil {
		return 0, err
	}

	switch w.protocol {
	case SlidingWindow:
		w.c.cfg.Mem.Acquire(len(p))
		return len(p), w.appendChunked(p)
	case IncrementalWrite:
		w.c.cfg.Mem.Acquire(len(p))
		return len(p), w.appendTemp(p)
	case CompleteLocalWrite:
		if w.c.cfg.LocalDisk != nil {
			w.c.cfg.LocalDisk.Write(len(p))
		} else {
			w.c.cfg.Mem.Acquire(len(p))
		}
		w.mu.Lock()
		w.temp = append(w.temp, p...)
		w.mu.Unlock()
		return len(p), nil
	default:
		return 0, fmt.Errorf("client: unknown protocol %v", w.protocol)
	}
}

// ensureReservation extends the eager space reservation as the file grows.
// However many quanta a Write jumps past the current reservation, the gap
// is covered with a single MExtend RPC (rounded up to whole quanta).
func (w *Writer) ensureReservation() error {
	w.mu.Lock()
	need := w.written - w.reserved
	w.mu.Unlock()
	if need <= 0 {
		return nil
	}
	quantum := w.c.cfg.ReserveQuantum
	ext := (need + quantum - 1) / quantum * quantum
	if _, err := w.c.mgr.Extend(w.name, proto.ExtendReq{WriteID: w.sess.WriteID, Bytes: ext}); err != nil {
		w.fail(fmt.Errorf("extend reservation: %w", err))
		return err
	}
	w.mu.Lock()
	w.reserved += ext
	w.mu.Unlock()
	return nil
}

// appendChunked accumulates bytes into pooled chunk buffers and emits
// completed chunks to the hashing stage. Fixed mode cuts at chunkSize
// offsets; CbCH mode cuts wherever the streaming boundary finder anchors a
// span end (at most chunkSize bytes, its max bound, so the pooled buffer
// never reallocates). The chunk completing when p runs out is flagged to
// flush the hasher's dedup batch, so one application Write maps to at most
// one dedup probe.
func (w *Writer) appendChunked(p []byte) error {
	for len(p) > 0 {
		if w.cur == nil {
			w.cur = w.c.getChunkBuf(w.chunkSize)
		}
		take, cut := w.nextCut(p)
		*w.cur = append(*w.cur, p[:take]...)
		p = p[take:]
		if cut {
			buf := w.cur
			w.cur = nil
			if err := w.emitChunk(buf, len(p) == 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// nextCut decides how many of p's bytes extend the current chunk and
// whether they complete it. The CbCH stream tracks the span length
// internally and stays in lockstep with w.cur because every byte it
// accepts is appended there.
func (w *Writer) nextCut(p []byte) (take int, cut bool) {
	if w.cbch != nil {
		return w.cbch.Feed(p)
	}
	room := int(w.chunkSize) - len(*w.cur)
	if room > len(p) {
		return len(p), false
	}
	return room, true
}

// appendTemp implements the incremental-write staging.
func (w *Writer) appendTemp(p []byte) error {
	limit := w.c.cfg.TempFileBytes
	for len(p) > 0 {
		room := limit - int64(len(w.temp))
		take := int64(len(p))
		if take > room {
			take = room
		}
		w.temp = append(w.temp, p[:take]...)
		p = p[take:]
		if int64(len(w.temp)) >= limit {
			if err := w.flushTemp(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flushTemp hands the current temp file to the background pusher. Blocks
// when too many temps are outstanding, which is what bounds local space
// usage (the point of incremental writes over complete-local writes).
// Backpressure is a plain channel send raced against the failure signal,
// so waiting costs no wakeups.
func (w *Writer) flushTemp() error {
	if len(w.temp) == 0 {
		return nil
	}
	t := w.temp
	w.temp = nil
	select {
	case w.tempQueue <- t:
		return nil
	case <-w.failed:
		w.mu.Lock()
		err := w.err
		w.mu.Unlock()
		return err
	}
}

func (w *Writer) runTempPusher() {
	defer w.pushWg.Done()
	for t := range w.tempQueue {
		// Temp files are bounded and short-lived: they are read back
		// from the OS cache, so the push pays a memory copy, not a disk
		// read (the complete-local protocol, whose staged file is
		// large, does pay the disk read). This extra copy is what keeps
		// incremental writes slightly behind the sliding window.
		w.c.cfg.Mem.Acquire(len(t))
		if err := w.appendChunked(t); err != nil {
			w.fail(err)
		}
	}
}

// emitChunk hands a full (or final short) chunk to the hashing stage,
// taking ownership of the pooled buffer. It blocks while the in-memory
// window is full; hashing, dedup and upload all happen downstream, off
// this thread.
func (w *Writer) emitChunk(buf *[]byte, flush bool) error {
	n := int64(len(*buf))
	w.mu.Lock()
	for w.err == nil && w.inflight+n > w.c.cfg.BufferBytes && w.inflight > 0 {
		w.cond.Wait()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		w.c.putChunkBuf(buf)
		return err
	}
	idx := w.chunkIdx
	w.chunkIdx++
	w.inflight += n
	w.growCommitChunks(idx + 1)
	w.commitChunks[idx].Size = n
	w.mu.Unlock()

	w.hashCh <- chunkItem{idx: idx, buf: buf, flush: flush}
	return nil
}

func (w *Writer) growCommitChunks(n int) {
	for len(w.commitChunks) < n {
		w.commitChunks = append(w.commitChunks, proto.CommitChunk{})
	}
}

// runHasher is the hashing stage: it names chunks (SHA-1) off the
// application thread and gathers them into batches that cost one MHasChunks
// dedup probe each. A batch closes on a flush marker (end of an application
// Write), on reaching maxProbeBatch, or when the queue momentarily runs dry
// — whichever comes first — so chunks are never held back waiting for more.
func (w *Writer) runHasher() {
	defer w.hashWg.Done()
	batch := make([]hashedChunk, 0, maxProbeBatch)
	ids := make([]core.ChunkID, 0, maxProbeBatch)
	for item := range w.hashCh {
		flush := w.hashInto(&batch, item)
		for !flush {
			select {
			case next, ok := <-w.hashCh:
				if !ok {
					w.flushBatch(batch, ids)
					return
				}
				flush = w.hashInto(&batch, next)
			default:
				flush = true // queue dry: probe what we have
			}
		}
		w.flushBatch(batch, ids)
		batch = batch[:0]
	}
	w.flushBatch(batch, ids)
}

// hashInto names one chunk, records it in the commit map, and folds it
// into the pending batch. It reports whether the batch should flush now.
func (w *Writer) hashInto(batch *[]hashedChunk, item chunkItem) bool {
	id := core.HashChunk(*item.buf)
	w.mu.Lock()
	w.commitChunks[item.idx].ID = id
	w.mu.Unlock()
	*batch = append(*batch, hashedChunk{idx: item.idx, id: id, buf: item.buf})
	return item.flush || len(*batch) >= maxProbeBatch
}

// flushBatch resolves one batch: a single dedup probe (when incremental
// checkpointing is on), then dispatch of the misses to their round-robin
// stripe workers and release of the hits.
func (w *Writer) flushBatch(batch []hashedChunk, ids []core.ChunkID) {
	if len(batch) == 0 {
		return
	}
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	if err != nil {
		w.releaseChunks(batch)
		return
	}
	if !w.c.cfg.Incremental {
		for _, hc := range batch {
			w.dispatch(hc)
		}
		return
	}
	ids = ids[:0]
	for _, hc := range batch {
		ids = append(ids, hc.id)
	}
	present, err := w.c.mgr.HasChunks(w.name, ids)
	if err != nil {
		w.fail(fmt.Errorf("dedup query: %w", err))
		w.releaseChunks(batch)
		return
	}
	for i, hc := range batch {
		if i < len(present) && present[i] {
			// Chunk already stored: copy-on-write reuse, no upload.
			n := int64(len(*hc.buf))
			w.mu.Lock()
			w.deduped += n
			w.inflight -= n
			w.cond.Broadcast()
			w.mu.Unlock()
			w.c.putChunkBuf(hc.buf)
			continue
		}
		w.dispatch(hc)
	}
}

// dispatch routes one named chunk to its round-robin stripe worker.
func (w *Writer) dispatch(hc hashedChunk) {
	w.mu.Lock()
	workers := w.workers
	w.mu.Unlock()
	if len(workers) == 0 {
		// Torn down under us: record the failure so the chunk is not
		// silently dropped from the committed map.
		w.fail(core.ErrClosed)
		w.releaseChunks([]hashedChunk{hc})
		return
	}
	workers[hc.idx%len(workers)].ch <- uploadItem{idx: hc.idx, id: hc.id, buf: hc.buf}
}

// releaseChunks drops a batch on the failure path: window accounting is
// unwound and every buffer goes back to the pool exactly once.
func (w *Writer) releaseChunks(batch []hashedChunk) {
	var n int64
	for _, hc := range batch {
		n += int64(len(*hc.buf))
	}
	w.mu.Lock()
	w.inflight -= n
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, hc := range batch {
		w.c.putChunkBuf(hc.buf)
	}
}

// runUploader is one stripe node's upload goroutine: chunks bound to this
// node by round-robin stream through a dedicated connection, and their
// buffers return to the pool once the frame is on the wire.
func (w *Writer) runUploader(worker *uploadWorker) {
	defer w.workerWg.Done()
	if worker.mux != nil {
		w.runPipelinedUploader(worker)
		return
	}
	for item := range worker.ch {
		n := int64(len(*item.buf))
		w.mu.Lock()
		failed := w.err != nil
		w.mu.Unlock()
		if !failed {
			_, err := worker.conn.Call(proto.BPut, proto.PutReq{ID: item.id}, *item.buf, nil)
			if err != nil {
				w.fail(fmt.Errorf("upload chunk %d to %s: %w", item.idx, worker.addr, err))
			} else {
				w.recordUpload(item, worker, n)
			}
		}
		w.settleUpload(item, n)
	}
}

// runPipelinedUploader is the Config.DataMux upload loop: up to
// Config.UploadWindow puts ride this node's multiplexed connection
// concurrently, so a chunk's send no longer waits for the previous
// chunk's ack — on a high-latency path the window, not the RTT, sets the
// upload rate. Acks settle in whatever order they land: recordUpload
// appends locations to commitChunks[idx] under the session lock and the
// commit map is index-addressed, so completion order is irrelevant. Any
// failed put fails the whole session (sticky), after which queued chunks
// drain unsent; the loop returns only when every in-flight call has
// settled, so teardown never closes the connection under a live call and
// every pooled buffer is back exactly once.
func (w *Writer) runPipelinedUploader(worker *uploadWorker) {
	var calls sync.WaitGroup
	window := make(chan struct{}, w.c.cfg.UploadWindow)
	for item := range worker.ch {
		item := item
		n := int64(len(*item.buf))
		w.mu.Lock()
		failed := w.err != nil
		w.mu.Unlock()
		if failed {
			w.settleUpload(item, n)
			continue
		}
		window <- struct{}{}
		calls.Add(1)
		go func() {
			defer calls.Done()
			defer func() { <-window }()
			_, err := worker.mux.Call(proto.BPut, proto.PutReq{ID: item.id}, *item.buf, nil)
			if err != nil {
				w.fail(fmt.Errorf("upload chunk %d to %s: %w", item.idx, worker.addr, err))
			} else {
				w.recordUpload(item, worker, n)
			}
			w.settleUpload(item, n)
		}()
	}
	calls.Wait()
}

// settleUpload unwinds one chunk's write-window accounting and returns
// its buffer to the pool, after its upload completed, failed, or was
// skipped on an already-failed session.
func (w *Writer) settleUpload(item uploadItem, n int64) {
	w.mu.Lock()
	w.inflight -= n
	w.cond.Broadcast()
	w.mu.Unlock()
	w.c.putChunkBuf(item.buf)
}

func (w *Writer) recordUpload(item uploadItem, worker *uploadWorker, n int64) {
	nodeID := w.nodeIDFor(worker.addr)
	w.mu.Lock()
	w.uploaded += n
	w.commitChunks[item.idx].Locations = append(w.commitChunks[item.idx].Locations, nodeID)
	w.mu.Unlock()
}

func (w *Writer) nodeIDFor(addr string) core.NodeID {
	for _, st := range w.stripe {
		if st.Addr == addr {
			return st.ID
		}
	}
	return core.NodeID(addr)
}

// fail records the first error and wakes all waiters.
func (w *Writer) fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
		close(w.failed)
	}
	w.cond.Broadcast()
}

// Close ends the application's write. Semantics per protocol:
// sliding-window and incremental return once the remaining data has been
// handed to the background pipeline; complete-local returns once the local
// staging copy is complete (its push starts now). With pessimistic
// semantics Close additionally blocks until the configured replication
// level is reached.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return core.ErrClosed
	}
	w.closed = true
	firstErr := w.err
	w.mu.Unlock()

	var closeErr error
	if firstErr == nil {
		switch w.protocol {
		case SlidingWindow:
			if w.cur != nil {
				buf := w.cur
				w.cur = nil
				closeErr = w.emitChunk(buf, true)
			}
		case IncrementalWrite:
			closeErr = w.flushTemp()
		case CompleteLocalWrite:
			// Local staging already complete; push happens in background.
		}
	} else if w.cur != nil && w.protocol == SlidingWindow {
		w.c.putChunkBuf(w.cur)
		w.cur = nil
	}

	w.mu.Lock()
	w.closedAt = time.Now()
	w.mu.Unlock()

	// finish() owns pipeline drain and teardown even on the error path,
	// so background goroutines never race a closing channel.
	go w.finish()
	if closeErr != nil {
		return closeErr
	}
	if firstErr != nil {
		return firstErr
	}

	if w.c.cfg.Semantics == core.WritePessimistic {
		if err := w.Wait(); err != nil {
			return err
		}
		return w.awaitReplication()
	}
	return nil
}

// finish drains the pipeline, commits the chunk-map (session semantics)
// and, when configured, pushes map replicas to the stripe benefactors.
func (w *Writer) finish() {
	defer close(w.done)

	if w.protocol == IncrementalWrite {
		close(w.tempQueue)
		w.pushWg.Wait()
		if w.cur != nil {
			buf := w.cur
			w.cur = nil
			if err := w.emitChunk(buf, true); err != nil {
				w.waitErr = err
			}
		}
	}
	if w.protocol == CompleteLocalWrite {
		// Push the staged file: the read back from local disk is paced
		// by the disk model (a complete staged image does not fit the
		// cache), then chunks flow through the regular upload path.
		data := w.temp
		w.temp = nil
		if w.c.cfg.LocalDisk != nil {
			w.c.cfg.LocalDisk.Read(len(data))
		}
		if err := w.appendChunked(data); err != nil {
			w.waitErr = err
		}
		if w.cur != nil {
			buf := w.cur
			w.cur = nil
			if err := w.emitChunk(buf, true); err != nil && w.waitErr == nil {
				w.waitErr = err
			}
		}
	}

	// All producers are done: drain the hashing stage, then the uploaders.
	close(w.hashCh)
	w.hashWg.Wait()
	w.mu.Lock()
	for w.err == nil && w.inflight > 0 {
		w.cond.Wait()
	}
	err := w.err
	w.mu.Unlock()
	w.teardown()
	if err != nil && w.waitErr == nil {
		w.waitErr = err
	}
	if w.waitErr != nil {
		w.abort()
		return
	}

	if err := w.commit(); err != nil {
		w.waitErr = err
		return
	}
	w.mu.Lock()
	w.storedAt = time.Now()
	w.mu.Unlock()
}

// teardown closes worker channels, waits for the uploaders to drain, and
// closes their connections, exactly once.
func (w *Writer) teardown() {
	w.mu.Lock()
	workers := w.workers
	w.workers = nil
	w.mu.Unlock()
	for _, worker := range workers {
		close(worker.ch)
	}
	w.workerWg.Wait()
	for _, worker := range workers {
		worker.close()
	}
}

// commit atomically publishes the chunk-map.
func (w *Writer) commit() error {
	w.mu.Lock()
	chunks := make([]proto.CommitChunk, len(w.commitChunks))
	copy(chunks, w.commitChunks)
	written := w.written
	w.mu.Unlock()

	req := proto.CommitReq{WriteID: w.sess.WriteID, FileSize: written, Chunks: chunks}
	resp, err := w.c.mgr.Commit(w.name, req)
	if err != nil {
		return fmt.Errorf("commit %s: %w", w.name, err)
	}

	if w.c.cfg.PushMapReplicas {
		w.pushMapReplicas(resp, chunks)
	}
	return nil
}

// pushMapReplicas stores copies of the committed chunk-map on the stripe
// benefactors so a failed manager can be reconstructed by quorum
// (paper §IV.A).
func (w *Writer) pushMapReplicas(resp proto.CommitResp, chunks []proto.CommitChunk) {
	cm := &core.ChunkMap{
		Dataset:   resp.Dataset,
		Version:   resp.Version,
		FileSize:  w.written,
		ChunkSize: w.chunkSize,
		Variable:  w.cbch != nil,
		CreatedAt: time.Now(),
	}
	for i, ch := range chunks {
		cm.Chunks = append(cm.Chunks, core.ChunkRef{Index: i, ID: ch.ID, Size: ch.Size})
		cm.Locations = append(cm.Locations, append([]core.NodeID(nil), ch.Locations...))
	}
	for _, st := range w.stripe {
		req := proto.MapPutReq{Name: w.name, Map: cm}
		if _, err := w.c.pool.Call(st.Addr, proto.BMapPut, req, nil, nil); err != nil {
			w.c.logf("push map replica to %s: %v", st.Addr, err)
		}
	}
}

// awaitReplication implements the pessimistic write semantics: poll the
// manager until the dataset's replication target is met.
func (w *Writer) awaitReplication() error {
	deadline := time.Now().Add(w.c.cfg.PessimisticTimeout)
	for {
		st, err := w.c.replicationLevel(w.name)
		if err == nil && st.Level >= st.Target {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("pessimistic wait on %s: %w", w.name, err)
			}
			return fmt.Errorf("pessimistic wait on %s: level %d < target %d after %v",
				w.name, st.Level, st.Target, w.c.cfg.PessimisticTimeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Wait blocks until the image is stored and committed (the ASB endpoint).
func (w *Writer) Wait() error {
	<-w.done
	return w.waitErr
}

// abort releases the manager-side session after a failure.
func (w *Writer) abort() {
	_ = w.c.mgr.Abort(w.name, proto.AbortReq{WriteID: w.sess.WriteID})
}

// Metrics exposes the timing and byte counters the evaluation uses.
type WriteMetrics struct {
	// Bytes is the application file size.
	Bytes int64
	// Uploaded is the number of bytes actually transferred to
	// benefactors (the network effort).
	Uploaded int64
	// Deduped is the number of bytes skipped by incremental
	// checkpointing.
	Deduped int64
	// OpenToClose is the application-perceived duration (OAB interval).
	OpenToClose time.Duration
	// OpenToStored is the time until all remote I/O completed and the
	// map committed (ASB interval).
	OpenToStored time.Duration
}

// OABMBps is the observed application bandwidth in decimal MB/s.
func (m WriteMetrics) OABMBps() float64 {
	if m.OpenToClose <= 0 {
		return 0
	}
	return float64(m.Bytes) / 1e6 / m.OpenToClose.Seconds()
}

// ASBMBps is the achieved storage bandwidth in decimal MB/s.
func (m WriteMetrics) ASBMBps() float64 {
	if m.OpenToStored <= 0 {
		return 0
	}
	return float64(m.Bytes) / 1e6 / m.OpenToStored.Seconds()
}

// Metrics returns the session's measurements. Valid after Wait.
func (w *Writer) Metrics() WriteMetrics {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := WriteMetrics{
		Bytes:    w.written,
		Uploaded: w.uploaded,
		Deduped:  w.deduped,
	}
	if !w.closedAt.IsZero() {
		m.OpenToClose = w.closedAt.Sub(w.openedAt)
	}
	if !w.storedAt.IsZero() {
		m.OpenToStored = w.storedAt.Sub(w.openedAt)
	}
	return m
}
