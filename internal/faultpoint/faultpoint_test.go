package faultpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedPointIsNoop(t *testing.T) {
	defer Reset()
	p := Register("test.noop")
	for i := 0; i < 3; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("disarmed hit returned %v", err)
		}
	}
	if p.Hits() != 0 {
		t.Fatalf("disarmed point counted %d hits", p.Hits())
	}
}

func TestErrorModeAndDisable(t *testing.T) {
	defer Reset()
	p := Register("test.error")
	if err := Enable("test.error", Config{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	if err := p.Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed hit returned %v, want ErrInjected", err)
	}
	Disable("test.error")
	if err := p.Hit(); err != nil {
		t.Fatalf("hit after disable returned %v", err)
	}
	if p.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", p.Hits())
	}
}

func TestCountSelfDisarms(t *testing.T) {
	defer Reset()
	p := Register("test.count")
	if err := Enable("test.count", Config{Mode: ModeError, Count: 2}); err != nil {
		t.Fatal(err)
	}
	var failures int
	for i := 0; i < 5; i++ {
		if p.Hit() != nil {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("count=2 point failed %d hits", failures)
	}
}

func TestCrashModeInvokesHandler(t *testing.T) {
	defer Reset()
	p := Register("test.crash")
	var crashed string
	SetCrashHandler(func(name string) { crashed = name })
	if err := Enable("test.crash", Config{Mode: ModeCrash}); err != nil {
		t.Fatal(err)
	}
	if err := p.Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("crash hit returned %v, want ErrInjected", err)
	}
	if crashed != "test.crash" {
		t.Fatalf("crash handler saw %q", crashed)
	}
}

func TestDelayMode(t *testing.T) {
	defer Reset()
	p := Register("test.delay")
	if err := Enable("test.delay", Config{Mode: ModeDelay, Delay: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.Hit(); err != nil {
		t.Fatalf("delay hit returned %v", err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("delay hit returned after %v", elapsed)
	}
}

func TestEnableFromEnvSpec(t *testing.T) {
	defer Reset()
	Register("test.env.a")
	Register("test.env.b")
	if err := EnableFromEnv("test.env.a=error, test.env.b=delay:1ms"); err != nil {
		t.Fatal(err)
	}
	if err := Register("test.env.a").Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("env-armed point returned %v", err)
	}
	if err := EnableFromEnv("test.env.missing=error"); err == nil {
		t.Fatal("unknown point accepted")
	}
	if err := EnableFromEnv("test.env.a=warp"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
