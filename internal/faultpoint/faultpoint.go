// Package faultpoint provides named fault-injection points compiled into
// production code paths (manager journal append/fsync, snapshot
// write/rename, commit publish, wire send). A point is a no-op until armed
// — the disarmed fast path is one atomic load shared by every point — so
// the hooks can stay in hot paths permanently. Tests arm points
// programmatically; processes arm them from the STDCHK_FAULTPOINTS
// environment variable, e.g.
//
//	STDCHK_FAULTPOINTS="manager.journal.append=error,wire.send=delay:5ms"
//
// Three modes exist: error (the operation fails with ErrInjected), delay
// (the operation stalls, then proceeds), and crash (the registered crash
// handler runs — typically capturing the durable state exactly as a
// kill -9 would leave it — and the operation fails). Crash is what the
// recovery test harness uses to prove the crash-consistency invariant
// without actually killing the test process.
package faultpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by points armed in error or crash mode.
var ErrInjected = errors.New("injected fault")

// Mode selects what an armed point does when hit.
type Mode int

const (
	// ModeError fails the operation with ErrInjected.
	ModeError Mode = iota + 1
	// ModeDelay stalls the operation for the configured duration.
	ModeDelay
	// ModeCrash invokes the process crash handler (see SetCrashHandler)
	// and fails the operation with ErrInjected.
	ModeCrash
)

// Config arms a point.
type Config struct {
	Mode Mode
	// Delay applies under ModeDelay.
	Delay time.Duration
	// Count limits how many hits trigger before the point self-disarms;
	// 0 means every hit triggers until Disable.
	Count int
}

// Point is one named injection site. Obtain via Register (package init
// time); Hit from the instrumented code path.
type Point struct {
	name  string
	armed atomic.Pointer[armedState]
	hits  atomic.Int64
}

type armedState struct {
	cfg       Config
	remaining atomic.Int64 // only meaningful when cfg.Count > 0
}

var (
	mu         sync.Mutex
	points     = make(map[string]*Point)
	armedCount atomic.Int32

	crashMu      sync.Mutex
	crashHandler func(name string)
)

// Register creates (or returns) the point with the given name. Call it from
// package-level var initializers so every point exists before any test or
// env sweep enumerates them.
func Register(name string) *Point {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p
	}
	p := &Point{name: name}
	points[name] = p
	return p
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Hits reports how many times the point has triggered while armed.
func (p *Point) Hits() int64 { return p.hits.Load() }

// Hit is the injection site. Disarmed (the common case) it costs one
// shared atomic load. Armed, it applies the configured mode and returns
// ErrInjected for error/crash modes.
func (p *Point) Hit() error {
	if armedCount.Load() == 0 {
		return nil
	}
	st := p.armed.Load()
	if st == nil {
		return nil
	}
	if st.cfg.Count > 0 {
		if st.remaining.Add(-1) < 0 {
			return nil
		}
		if st.remaining.Load() == 0 {
			p.disarm()
		}
	}
	p.hits.Add(1)
	switch st.cfg.Mode {
	case ModeDelay:
		time.Sleep(st.cfg.Delay)
		return nil
	case ModeCrash:
		crashMu.Lock()
		h := crashHandler
		crashMu.Unlock()
		if h != nil {
			h(p.name)
		}
		return fmt.Errorf("faultpoint %s (crash): %w", p.name, ErrInjected)
	default:
		return fmt.Errorf("faultpoint %s: %w", p.name, ErrInjected)
	}
}

func (p *Point) disarm() {
	if p.armed.Swap(nil) != nil {
		armedCount.Add(-1)
	}
}

// Enable arms the named point. The point must have been registered.
func Enable(name string, cfg Config) error {
	mu.Lock()
	p, ok := points[name]
	mu.Unlock()
	if !ok {
		return fmt.Errorf("faultpoint: unknown point %q", name)
	}
	if cfg.Mode < ModeError || cfg.Mode > ModeCrash {
		return fmt.Errorf("faultpoint %s: unknown mode %d", name, cfg.Mode)
	}
	st := &armedState{cfg: cfg}
	st.remaining.Store(int64(cfg.Count))
	if p.armed.Swap(st) == nil {
		armedCount.Add(1)
	}
	return nil
}

// Disable disarms the named point (no-op if unknown or already disarmed).
func Disable(name string) {
	mu.Lock()
	p, ok := points[name]
	mu.Unlock()
	if ok {
		p.disarm()
	}
}

// Reset disarms every point and clears the crash handler and hit counters.
func Reset() {
	mu.Lock()
	for _, p := range points {
		p.disarm()
		p.hits.Store(0)
	}
	mu.Unlock()
	SetCrashHandler(nil)
}

// SetCrashHandler installs the process-wide handler invoked by points armed
// in ModeCrash, typically to capture durable state at the fault instant
// with kill -9 semantics. nil clears it (crash then behaves like error).
func SetCrashHandler(h func(name string)) {
	crashMu.Lock()
	crashHandler = h
	crashMu.Unlock()
}

// Registered lists every registered point name, sorted.
func Registered() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EnableFromEnv arms points from a spec like
// "name=error,name=delay:10ms,name=crash" (the STDCHK_FAULTPOINTS format).
// Unknown point names are an error so a typo cannot silently disable a
// fault sweep.
func EnableFromEnv(spec string) error {
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, mode, ok := strings.Cut(field, "=")
		if !ok {
			return fmt.Errorf("faultpoint: malformed spec %q (want name=mode)", field)
		}
		cfg := Config{}
		mode, arg, _ := strings.Cut(mode, ":")
		switch mode {
		case "error":
			cfg.Mode = ModeError
		case "crash":
			cfg.Mode = ModeCrash
		case "delay":
			cfg.Mode = ModeDelay
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("faultpoint: bad delay in %q: %w", field, err)
			}
			cfg.Delay = d
		default:
			return fmt.Errorf("faultpoint: unknown mode %q in %q", mode, field)
		}
		if err := Enable(name, cfg); err != nil {
			return err
		}
	}
	return nil
}

// InitFromEnv arms points from the STDCHK_FAULTPOINTS environment variable
// (empty = no-op). CLI main functions call it once at startup.
func InitFromEnv() error {
	spec := os.Getenv("STDCHK_FAULTPOINTS")
	if spec == "" {
		return nil
	}
	return EnableFromEnv(spec)
}
