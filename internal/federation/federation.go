// Package federation partitions the stdchk metadata plane across multiple
// manager processes. The paper keeps the manager off the critical path by
// making it cheap (§V.E, >1,000 tps); PR 3 striped the catalog inside one
// process, but a single manager still owns the whole namespace — one
// machine and one failure domain. Federation removes that ceiling the way
// storage-cloud metadata services do (Chelonia; P2P checkpointing): N
// managers, each owning a deterministic partition of dataset keys, fronted
// by a thin client-side Router.
//
// The partition function reuses the catalog's FNV-1a stripe hash over the
// dataset key, taken modulo the member count, so the mapping is a pure
// function of (key, member list): any router and any member derive the
// same owner with no coordination, and the map is stable across process
// restarts. Membership is static configuration; every party fingerprints
// its member list into a partition epoch, and members reject requests
// whose epoch disagrees with theirs, so a router and a member configured
// with different federations can never silently cross-route datasets.
package federation

import (
	"fmt"
	"strings"

	"stdchk/internal/hashing"
	"stdchk/internal/namespace"
)

// SplitMembers parses a comma-separated member list, trimming whitespace
// and dropping empty entries. Every CLI accepting a federation list
// parses it through here, so the parsing can never diverge between the
// manager, benefactor and client — member-list divergence is exactly
// what the partition epoch exists to catch.
func SplitMembers(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

// OwnerIndex maps a dataset key onto its owning member index in a
// federation of `members` managers, hashing with the same FNV-1a
// (hashing.FNV1aString) the catalog stripes datasets with. It is a pure
// function: every caller with the same inputs derives the same owner,
// which is what lets the client-side router and the manager-side
// partition filter agree without coordination.
func OwnerIndex(key string, members int) int {
	if members <= 1 {
		return 0
	}
	return int(hashing.FNV1aString(key) % uint64(members))
}

// Epoch fingerprints a member list into the partition epoch. Routers put
// it on dataset-scoped requests and members check it, so configuration
// drift (different lists, different order, different counts) is detected
// instead of misrouting datasets. Epoch 0 is reserved for "not
// federation-aware"; the hash is nudged away from it.
func Epoch(members []string) uint64 {
	// One FNV-1a over the framed list: the count, then each member
	// terminated by a byte no address contains, so neither reordering nor
	// re-splitting addresses can collide.
	h := hashing.FNV1aString(fmt.Sprintf("%d\xff%s\xff", len(members), strings.Join(members, "\xff")))
	if h == 0 {
		h = 1
	}
	return h
}

// Membership is a static federation configuration: the ordered member
// service addresses and the derived partition epoch.
type Membership struct {
	members []string
	epoch   uint64
}

// NewMembership validates and fingerprints a member list. The order is
// significant: member i in the list is the manager started with
// MemberIndex i.
func NewMembership(members []string) (*Membership, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("federation: membership requires at least one member")
	}
	seen := make(map[string]struct{}, len(members))
	for i, m := range members {
		if m == "" {
			return nil, fmt.Errorf("federation: member %d has an empty address", i)
		}
		if _, dup := seen[m]; dup {
			return nil, fmt.Errorf("federation: member address %q listed twice", m)
		}
		seen[m] = struct{}{}
	}
	return &Membership{
		members: append([]string(nil), members...),
		epoch:   Epoch(members),
	}, nil
}

// Members returns the ordered member addresses.
func (ms *Membership) Members() []string {
	return append([]string(nil), ms.members...)
}

// Len returns the member count.
func (ms *Membership) Len() int { return len(ms.members) }

// Epoch returns the partition epoch.
func (ms *Membership) Epoch() uint64 { return ms.epoch }

// OwnerOf resolves an arbitrary file name (A.Ni.Tj or plain) to its
// owning member: all timesteps of one dataset collapse to the same key
// and therefore the same member, which is what keeps a dataset's version
// chain, content index entries and copy-on-write sharing member-local.
func (ms *Membership) OwnerOf(name string) (index int, addr string) {
	index = OwnerIndex(namespace.DatasetOf(name), len(ms.members))
	return index, ms.members[index]
}
