package federation

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/metrics"
	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

// Router is the thin client-side front of a federated metadata plane. It
// maps every dataset-scoped RPC (alloc/extend/commit/getMap/stat/delete/
// replication status) to the member owning the dataset's partition, and
// fans membership-scoped RPCs (register, heartbeat, GC reconciliation,
// list, stats) out to all members with merged replies. Each member gets a
// health-checked connection pool; per-member success/failure counters are
// kept so operators (and tests) can see a member degrading.
//
// A Router is safe for concurrent use. It satisfies the client package's
// ManagerEndpoint seam structurally, so a *client.Client configured with a
// Router speaks to "the metadata service" instead of "a manager" without
// any other change.
type Router struct {
	ms     *Membership
	pool   *wire.Pool
	logger *log.Logger
	health []*memberHealth

	retryAttempts int
	retryBase     time.Duration
}

// RouterConfig parameterizes a Router.
type RouterConfig struct {
	// Members is the ordered federation member list; index i must be the
	// manager started with MemberIndex i.
	Members []string
	// Shaper wraps every connection the router dials (the caller's NIC
	// model); nil leaves connections unshaped.
	Shaper wire.Shaper
	// PerMemberConns caps pooled connections per member (0 = 8), or — in
	// shared-connection mode — the multiplexed connections per member.
	PerMemberConns int
	// SharedConns selects shared-connection mode: instead of one pooled
	// connection per outstanding call, up to PerMemberConns multiplexed
	// connections per member carry all calls concurrently with
	// session-tagged frames. This is the topology that scales to
	// millions of client sessions without a socket per session.
	SharedConns bool
	// RetryAttempts bounds how many times a dataset-scoped call is tried
	// against its owner when the failure is a transport one (dial refused,
	// reset, timeout) — the owner may simply be restarting. 0 selects the
	// default (4); 1 disables retries. Application-level errors, including
	// remote errors, are never retried: an answer proves the member is up.
	RetryAttempts int
	// RetryBase is the first backoff delay; each further attempt doubles
	// it, plus up to 100% jitter. 0 selects the default (25ms).
	RetryBase time.Duration
	// Logger receives operational messages; nil discards.
	Logger *log.Logger
}

// memberHealth tracks one member's observed liveness.
type memberHealth struct {
	mu       sync.Mutex
	ok       int64
	failed   int64
	streak   int64 // consecutive failures
	lastErr  error
	lastSeen time.Time
}

// MemberHealth is a snapshot of one member's health counters.
type MemberHealth struct {
	Addr string
	// OK and Failed count completed calls; Streak is the current run of
	// consecutive failures (0 = last call succeeded).
	OK, Failed, Streak int64
	// LastErr is the most recent failure (nil if none).
	LastErr error
	// LastSeen is the time of the last successful call.
	LastSeen time.Time
}

// NewRouter builds a router over a static member list.
func NewRouter(cfg RouterConfig) (*Router, error) {
	ms, err := NewMembership(cfg.Members)
	if err != nil {
		return nil, err
	}
	per := cfg.PerMemberConns
	if per <= 0 {
		per = 8
	}
	attempts := cfg.RetryAttempts
	if attempts <= 0 {
		attempts = 4
	}
	base := cfg.RetryBase
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	pool := wire.NewPool(cfg.Shaper, per)
	if cfg.SharedConns {
		pool = wire.NewSharedPool(cfg.Shaper, per)
	}
	r := &Router{
		ms:            ms,
		pool:          pool,
		logger:        cfg.Logger,
		health:        make([]*memberHealth, ms.Len()),
		retryAttempts: attempts,
		retryBase:     base,
	}
	for i := range r.health {
		r.health[i] = &memberHealth{}
	}
	return r, nil
}

// Membership returns the router's federation configuration.
func (r *Router) Membership() *Membership { return r.ms }

// Close releases the router's pooled connections.
func (r *Router) Close() error {
	r.pool.Close()
	return nil
}

func (r *Router) logf(format string, args ...interface{}) {
	if r.logger != nil {
		r.logger.Printf("router: "+format, args...)
	}
}

// call performs one RPC against member i and records its health. Only
// transport failures count against the member: a RemoteError reply proves
// the member answered, so application-level errors (not-found, not-owner,
// validation) advance lastSeen like a success — a client probing missing
// datasets must not make a live member look dead.
func (r *Router) call(i int, op string, req, resp interface{}) error {
	addr := r.ms.members[i]
	_, err := r.pool.Call(addr, op, req, nil, resp)
	var remote *wire.RemoteError
	h := r.health[i]
	h.mu.Lock()
	if err == nil || errors.As(err, &remote) {
		h.ok++
		h.streak = 0
		h.lastSeen = time.Now()
	} else {
		h.failed++
		h.streak++
		h.lastErr = err
	}
	h.mu.Unlock()
	if err != nil {
		return fmt.Errorf("member %d (%s): %w", i, addr, err)
	}
	return nil
}

// maxRetryAfterDelay caps how long the router honors a server's
// retry-after hint per attempt, so a misconfigured hint cannot stall a
// caller indefinitely.
const maxRetryAfterDelay = 250 * time.Millisecond

// callOwner routes one dataset-scoped RPC to the member owning name,
// retrying transport failures with bounded exponential backoff plus jitter:
// a member that cannot be reached may simply be restarting, and a client
// mid-write-storm should degrade to a short stall instead of an error. A
// RemoteError reply stops retrying immediately — the member answered, and
// replaying a non-idempotent op (commit) against a member that already
// applied it would surface confusing secondary errors — with one
// exception: an admission-control shed (core.ErrRetryAfter) is the
// server asking to be called back, so the router sleeps the server's
// delay hint (scaled by attempt, jittered, capped) and retries within
// the same bounded attempt budget. When all attempts fail on transport
// errors the error is marked core.ErrRetryable so callers can
// distinguish "the owner never answered" from an application-level
// rejection; an exhausted retry-after budget returns the typed shed
// error itself, delay hint intact.
func (r *Router) callOwner(name, op string, req, resp interface{}) error {
	i, _ := r.ms.OwnerOf(name)
	var err error
	for attempt := 0; attempt < r.retryAttempts; attempt++ {
		if attempt > 0 {
			var ra core.ErrRetryAfter
			var d time.Duration
			if errors.As(err, &ra) {
				// Server-directed backoff: the hint, escalated per
				// attempt so persistent overload spreads callers out.
				d = ra.Delay * time.Duration(attempt)
				if d < ra.Delay {
					d = ra.Delay
				}
				if d > maxRetryAfterDelay {
					d = maxRetryAfterDelay
				}
				r.logf("member %d shed %s, honoring retry-after %v (attempt %d)", i, op, d, attempt+1)
			} else {
				d = r.retryBase << (attempt - 1)
				r.logf("retrying %s on member %d after transport failure (attempt %d): %v", op, i, attempt+1, err)
			}
			d += time.Duration(rand.Int63n(int64(d) + 1))
			time.Sleep(d)
		}
		if err = r.call(i, op, req, resp); err == nil {
			return nil
		}
		var remote *wire.RemoteError
		if errors.As(err, &remote) {
			if errors.Is(err, core.ErrRetryAfter{}) {
				continue // honored in the backoff branch above
			}
			return err
		}
	}
	if errors.Is(err, core.ErrRetryAfter{}) {
		return err // typed shed, delay hint intact — not a transport fault
	}
	return fmt.Errorf("%w: %w", core.ErrRetryable, err)
}

// wireEpoch is the partition epoch stamped on dataset-scoped requests.
// A single-member "federation" routes trivially and is typically fronting
// a standalone (non-federated) manager, which rejects nonzero epochs —
// so only genuine multi-member routers assert one.
func (r *Router) wireEpoch() uint64 {
	if r.ms.Len() <= 1 {
		return 0
	}
	return r.ms.epoch
}

// fanOut runs fn once per member, concurrently, and returns the
// lowest-indexed member's error (every member is attempted, so one dead
// member can neither shadow another's failure accounting nor stretch the
// call's latency past the slowest member). fn(i) must only touch state
// owned by member i — call sites collect into per-member slots and merge
// after the barrier.
func (r *Router) fanOut(fn func(i int) error) error {
	errs := make([]error, len(r.ms.members))
	var wg sync.WaitGroup
	for i := range r.ms.members {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Health snapshots per-member health counters.
func (r *Router) Health() []MemberHealth {
	out := make([]MemberHealth, len(r.health))
	for i, h := range r.health {
		h.mu.Lock()
		out[i] = MemberHealth{
			Addr: r.ms.members[i], OK: h.ok, Failed: h.failed,
			Streak: h.streak, LastErr: h.lastErr, LastSeen: h.lastSeen,
		}
		h.mu.Unlock()
	}
	return out
}

// CheckHealth probes every member with a stats call and returns the first
// failure (nil when the whole federation answered).
func (r *Router) CheckHealth() error {
	return r.fanOut(func(i int) error {
		var st proto.ManagerStats
		return r.call(i, proto.MStats, nil, &st)
	})
}

// ---- dataset-scoped endpoints (routed to the partition owner) ----

// Alloc opens a write session on the owner of req.Name.
func (r *Router) Alloc(req proto.AllocReq) (proto.AllocResp, error) {
	req.PartitionEpoch = r.wireEpoch()
	var resp proto.AllocResp
	err := r.callOwner(req.Name, proto.MAlloc, req, &resp)
	return resp, err
}

// Extend grows a session's reservation on the owner of name (sessions
// are member-local: the WriteID only means something to the member that
// allocated it).
func (r *Router) Extend(name string, req proto.ExtendReq) (proto.ExtendResp, error) {
	var resp proto.ExtendResp
	err := r.callOwner(name, proto.MExtend, req, &resp)
	return resp, err
}

// Commit publishes a session's chunk-map on the owner of name.
func (r *Router) Commit(name string, req proto.CommitReq) (proto.CommitResp, error) {
	var resp proto.CommitResp
	err := r.callOwner(name, proto.MCommit, req, &resp)
	return resp, err
}

// Abort abandons a session on the owner of name.
func (r *Router) Abort(name string, req proto.AbortReq) error {
	return r.callOwner(name, proto.MAbort, req, nil)
}

// HasChunks answers a write session's dedup probe from the owner of name.
// The probe deliberately does NOT fan out: a copy-on-write commit is
// validated against the owner's content index, so only the owner's answer
// may suppress an upload — a chunk known solely to another member would
// commit as an unresolvable reference. Cross-partition physical sharing is
// visible through HasChunksAnywhere instead.
func (r *Router) HasChunks(name string, ids []core.ChunkID) ([]bool, error) {
	var resp proto.HasResp
	if err := r.callOwner(name, proto.MHasChunks, proto.HasReq{IDs: ids}, &resp); err != nil {
		return nil, err
	}
	return resp.Present, nil
}

// HasChunksAnywhere fans a dedup probe out to every member and ORs the
// replies: whether any member's content index knows each chunk
// (diagnostics and cross-partition dedup accounting, not commit
// validation — see HasChunks).
func (r *Router) HasChunksAnywhere(ids []core.ChunkID) ([]bool, error) {
	resps := make([]proto.HasResp, r.ms.Len())
	err := r.fanOut(func(i int) error {
		return r.call(i, proto.MHasChunks, proto.HasReq{IDs: ids}, &resps[i])
	})
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(ids))
	for _, resp := range resps {
		for j, p := range resp.Present {
			if j < len(out) && p {
				out[j] = true
			}
		}
	}
	return out, nil
}

// GetMap fetches a committed chunk-map from the owner of req.Name.
func (r *Router) GetMap(req proto.GetMapReq) (proto.GetMapResp, error) {
	req.PartitionEpoch = r.wireEpoch()
	var resp proto.GetMapResp
	err := r.callOwner(req.Name, proto.MGetMap, req, &resp)
	return resp, err
}

// GetMaps batch-fetches committed chunk-maps, grouping req.Names by
// partition owner so each touched member is asked exactly once. The
// call keeps the manager's best-effort contract: names a member does
// not know are silently absent from the merged reply (prefetch is an
// optimization, the per-name GetMap path remains authoritative).
func (r *Router) GetMaps(req proto.GetMapsReq) (proto.GetMapsResp, error) {
	req.PartitionEpoch = r.wireEpoch()
	byOwner := make(map[int][]string)
	for _, name := range req.Names {
		i, _ := r.ms.OwnerOf(name)
		byOwner[i] = append(byOwner[i], name)
	}
	var (
		mu     sync.Mutex
		merged proto.GetMapsResp
		wg     sync.WaitGroup
		errs   = make([]error, r.ms.Len())
	)
	for i, names := range byOwner {
		wg.Add(1)
		go func(i int, names []string) {
			defer wg.Done()
			var resp proto.GetMapsResp
			mreq := proto.GetMapsReq{Names: names, PartitionEpoch: req.PartitionEpoch}
			if err := r.callOwner(names[0], proto.MGetMaps, mreq, &resp); err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			merged.Maps = append(merged.Maps, resp.Maps...)
			mu.Unlock()
		}(i, names)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return proto.GetMapsResp{}, err
		}
	}
	return merged, nil
}

// History reports a dataset's version lineage from the owner of req.Name.
func (r *Router) History(req proto.HistoryReq) (proto.HistoryResp, error) {
	req.PartitionEpoch = r.wireEpoch()
	var resp proto.HistoryResp
	err := r.callOwner(req.Name, proto.MHistory, req, &resp)
	return resp, err
}

// Diff computes the changed byte ranges between two versions on the
// owner of req.Name — both versions of a dataset live on one member, so
// the diff never crosses a partition boundary.
func (r *Router) Diff(req proto.DiffReq) (proto.DiffResp, error) {
	req.PartitionEpoch = r.wireEpoch()
	var resp proto.DiffResp
	err := r.callOwner(req.Name, proto.MDiff, req, &resp)
	return resp, err
}

// StatVersion resolves a name to its committed version identity on the
// owner of req.Name — the client chunk-map cache's "latest" revalidation
// probe. The partition epoch rides along like every dataset-scoped call,
// so a member restarted without its federation identity answers
// ErrEpochMismatch and the client must not trust (or serve) a cached map.
func (r *Router) StatVersion(req proto.StatVersionReq) (proto.StatVersionResp, error) {
	req.PartitionEpoch = r.wireEpoch()
	var resp proto.StatVersionResp
	err := r.callOwner(req.Name, proto.MStatVersion, req, &resp)
	return resp, err
}

// Stat summarizes one dataset from its owner.
func (r *Router) Stat(name string) (core.DatasetInfo, error) {
	var resp proto.StatResp
	err := r.callOwner(name, proto.MStat, proto.StatReq{Name: name, PartitionEpoch: r.wireEpoch()}, &resp)
	return resp.Dataset, err
}

// Delete removes a version (or dataset) on its owner.
func (r *Router) Delete(req proto.DeleteReq) error {
	req.PartitionEpoch = r.wireEpoch()
	return r.callOwner(req.Name, proto.MDelete, req, nil)
}

// ReplStatus reports a dataset's replication level from its owner.
func (r *Router) ReplStatus(name string) (proto.ReplStatusResp, error) {
	var resp proto.ReplStatusResp
	err := r.callOwner(name, proto.MReplStatus, proto.ReplStatusReq{Name: name, PartitionEpoch: r.wireEpoch()}, &resp)
	return resp, err
}

// ---- membership-scoped endpoints (fanned out, replies merged) ----

// List merges dataset summaries from every member. Dataset and version
// IDs are member-local identifiers, so the merged list orders by name.
func (r *Router) List(folder string) ([]core.DatasetInfo, error) {
	resps := make([]proto.ListResp, r.ms.Len())
	err := r.fanOut(func(i int) error {
		return r.call(i, proto.MList, proto.ListReq{Folder: folder}, &resps[i])
	})
	if err != nil {
		return nil, err
	}
	var out []core.DatasetInfo
	for _, resp := range resps {
		out = append(out, resp.Datasets...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out, nil
}

// SetPolicy attaches a folder policy on every member: a folder's datasets
// hash across the whole federation, and each member prunes only the
// datasets it owns, so the policy must exist everywhere to be complete.
// The fan-out is not atomic: on error some members may hold the new
// policy and some the old, and nothing reconciles them — the caller must
// retry until it succeeds (a policy anti-entropy sweep is a recorded
// ROADMAP follow-on of static membership).
func (r *Router) SetPolicy(folder string, p core.Policy) error {
	return r.fanOut(func(i int) error {
		return r.call(i, proto.MPolicySet, proto.PolicySetReq{Folder: folder, Policy: p}, nil)
	})
}

// GetPolicy reads a folder policy from the first healthy member
// (SetPolicy keeps all members in agreement).
func (r *Router) GetPolicy(folder string) (core.Policy, error) {
	var firstErr error
	for i := range r.ms.members {
		var resp proto.PolicyGetResp
		if err := r.call(i, proto.MPolicyGet, proto.PolicyGetReq{Folder: folder}, &resp); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return resp.Policy, nil
	}
	return core.Policy{}, firstErr
}

// PolicyDryRun audits the next retention sweep across the whole
// federation: every member scans its own partition of the namespace, and
// the per-folder victim lists merge (datasets partition across members,
// so the lists are disjoint). Victims within a merged folder stay sorted
// by name then version, matching the single-manager answer.
func (r *Router) PolicyDryRun(req proto.PolicyDryRunReq) (proto.PolicyDryRunResp, error) {
	var mu sync.Mutex
	byFolder := make(map[string]*proto.FolderDryRun)
	err := r.fanOut(func(i int) error {
		var resp proto.PolicyDryRunResp
		if err := r.call(i, proto.MPolicyDryRun, req, &resp); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		for _, f := range resp.Folders {
			if have, ok := byFolder[f.Folder]; ok {
				have.Victims = append(have.Victims, f.Victims...)
			} else {
				folder := f
				byFolder[f.Folder] = &folder
			}
		}
		return nil
	})
	if err != nil {
		return proto.PolicyDryRunResp{}, err
	}
	var out proto.PolicyDryRunResp
	for _, f := range byFolder {
		sort.Slice(f.Victims, func(a, b int) bool {
			if f.Victims[a].Name != f.Victims[b].Name {
				return f.Victims[a].Name < f.Victims[b].Name
			}
			return f.Victims[a].Version < f.Victims[b].Version
		})
		out.Folders = append(out.Folders, *f)
	}
	sort.Slice(out.Folders, func(a, b int) bool {
		return out.Folders[a].Folder < out.Folders[b].Folder
	})
	return out, nil
}

// ManagerStats merges every member's counters into a federation-wide
// snapshot: partitioned quantities (datasets, versions, chunks, bytes,
// transaction counters) sum; benefactor counts — every member sees the
// same donor pool — take the maximum. Per-stripe detail stays per member
// (MemberStats).
func (r *Router) ManagerStats() (proto.ManagerStats, error) {
	all, err := r.MemberStats()
	if err != nil {
		return proto.ManagerStats{}, err
	}
	agg := MergeStats(all)
	agg.Federation = &proto.FederationInfo{
		Members: r.ms.Members(), MemberIndex: -1, Epoch: r.ms.epoch,
	}
	return agg, nil
}

// MergeStats folds per-member manager counters into one federation-wide
// snapshot: partitioned quantities sum, benefactor counts (every member
// sees the same donor pool) take the maximum, per-stripe detail is
// dropped. Shared by the Router's remote path and the grid's in-process
// aggregation.
func MergeStats(all []proto.ManagerStats) proto.ManagerStats {
	var agg proto.ManagerStats
	for _, st := range all {
		if st.Benefactors > agg.Benefactors {
			agg.Benefactors = st.Benefactors
		}
		if st.OnlineBenefactors > agg.OnlineBenefactors {
			agg.OnlineBenefactors = st.OnlineBenefactors
		}
		if st.SuspectBenefactors > agg.SuspectBenefactors {
			agg.SuspectBenefactors = st.SuspectBenefactors
		}
		if st.DeadBenefactors > agg.DeadBenefactors {
			agg.DeadBenefactors = st.DeadBenefactors
		}
		agg.Datasets += st.Datasets
		agg.Versions += st.Versions
		agg.UniqueChunks += st.UniqueChunks
		agg.LogicalBytes += st.LogicalBytes
		agg.StoredBytes += st.StoredBytes
		agg.ActiveSessions += st.ActiveSessions
		agg.Transactions += st.Transactions
		agg.Extends += st.Extends
		agg.DedupBatches += st.DedupBatches
		agg.DedupChunks += st.DedupChunks
		agg.DedupHits += st.DedupHits
		agg.GetMaps += st.GetMaps
		agg.StatVersions += st.StatVersions
		agg.Histories += st.Histories
		agg.Diffs += st.Diffs
		agg.PrefetchBatches += st.PrefetchBatches
		agg.MapCache.Hits += st.MapCache.Hits
		agg.MapCache.Misses += st.MapCache.Misses
		agg.MapCache.Invalidations += st.MapCache.Invalidations
		agg.ReplicasCopied += st.ReplicasCopied
		// Repair gauges and counters are partition-local work, so they sum
		// like the other partitioned quantities.
		agg.Repair.Pending += st.Repair.Pending
		agg.Repair.Critical += st.Repair.Critical
		agg.Repair.CopiedBytes += st.Repair.CopiedBytes
		agg.Repair.Failed += st.Repair.Failed
		agg.Repair.CorruptReported += st.Repair.CorruptReported
		agg.Repair.Reconciled += st.Repair.Reconciled
		agg.Repair.Decommissions += st.Repair.Decommissions
		agg.ChunksCollected += st.ChunksCollected
		agg.VersionsPruned += st.VersionsPruned
		agg.JournalBatches += st.JournalBatches
		agg.JournalBatchLen += st.JournalBatchLen
		agg.JournalFsyncs += st.JournalFsyncs
		agg.JournalErrors += st.JournalErrors
		agg.JournalReplayed += st.JournalReplayed
		agg.Snapshots += st.Snapshots
		if st.SnapshotSeq > agg.SnapshotSeq {
			agg.SnapshotSeq = st.SnapshotSeq // watermarks are member-local; report the newest
		}
		agg.StripeOps += st.StripeOps
		agg.StripeContention += st.StripeContention
		agg.Registry.Ops += st.Registry.Ops
		agg.Registry.Contended += st.Registry.Contended
		agg.Registry.Allocs += st.Registry.Allocs
		agg.Registry.Reserves += st.Registry.Reserves
		agg.Registry.Releases += st.Registry.Releases
		agg.Registry.Heartbeats += st.Registry.Heartbeats
		// Admission: throughput counters sum; bounds and high-water marks
		// are per-member properties, so the merged view takes the max
		// (the federation "respected its bounds" iff every member did).
		agg.Admission.Admitted += st.Admission.Admitted
		agg.Admission.Shed += st.Admission.Shed
		agg.Admission.ConnShed += st.Admission.ConnShed
		agg.Admission.QueueDepth += st.Admission.QueueDepth
		if st.Admission.PeakQueueDepth > agg.Admission.PeakQueueDepth {
			agg.Admission.PeakQueueDepth = st.Admission.PeakQueueDepth
		}
		if st.Admission.MaxPending > agg.Admission.MaxPending {
			agg.Admission.MaxPending = st.Admission.MaxPending
		}
		if st.Admission.RetryAfterMicros > agg.Admission.RetryAfterMicros {
			agg.Admission.RetryAfterMicros = st.Admission.RetryAfterMicros
		}
		agg.AllocLatency = mergeLatency(agg.AllocLatency, st.AllocLatency)
		agg.CommitLatency = mergeLatency(agg.CommitLatency, st.CommitLatency)
	}
	return agg
}

// mergeLatency combines two wire-form latency histograms element-wise.
func mergeLatency(dst, src proto.LatencyStats) proto.LatencyStats {
	dst.Count += src.Count
	dst.SumMicros += src.SumMicros
	dst.Buckets = metrics.MergeBuckets(dst.Buckets, src.Buckets)
	return dst
}

// MemberStats snapshots every member's counters, indexed by member.
func (r *Router) MemberStats() ([]proto.ManagerStats, error) {
	out := make([]proto.ManagerStats, r.ms.Len())
	err := r.fanOut(func(i int) error {
		return r.call(i, proto.MStats, nil, &out[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Benefactors merges the donor listings; every member sees the same pool,
// so entries deduplicate by node ID (first member's view wins). Because
// the views are redundant, an unreachable member only degrades the
// listing, never fails it: readers resolving node IDs to addresses must
// keep working while a member is down. Only the whole federation being
// unreachable is an error.
func (r *Router) Benefactors() ([]core.BenefactorInfo, error) {
	resps := make([]proto.BenefactorsResp, r.ms.Len())
	answered := make([]bool, r.ms.Len())
	err := r.fanOut(func(i int) error {
		if e := r.call(i, proto.MBenefactors, nil, &resps[i]); e != nil {
			return e
		}
		answered[i] = true
		return nil
	})
	if err != nil {
		any := false
		for _, ok := range answered {
			any = any || ok
		}
		if !any {
			return nil, err
		}
	}
	seen := make(map[core.NodeID]struct{})
	var out []core.BenefactorInfo
	for _, resp := range resps {
		for _, b := range resp.Benefactors {
			if _, dup := seen[b.ID]; dup {
				continue
			}
			seen[b.ID] = struct{}{}
			out = append(out, b)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// Register announces a benefactor to every member: each manager allocates
// stripes from its own registry, so a donor that skipped a member would be
// invisible to that member's partitions. The merged reply takes the
// shortest heartbeat interval (refresh fast enough for the most demanding
// member) and ORs the recovery flags.
func (r *Router) Register(req proto.RegisterReq) (proto.RegisterResp, error) {
	resps := make([]proto.RegisterResp, r.ms.Len())
	err := r.fanOut(func(i int) error {
		return r.call(i, proto.MRegister, req, &resps[i])
	})
	if err != nil {
		return proto.RegisterResp{}, err
	}
	return mergeRegisterResps(resps, nil), nil
}

// mergeRegisterResps folds per-member registration replies: the shortest
// heartbeat interval any member asked for (refresh fast enough for the
// most demanding member), the OR of the recovery flags, and the sum of
// the reconciled-location counts. Shared by Register and Announce so the
// benefactor's two soft-state paths can never diverge.
//
// The garbage sets follow the GC protocol's conservatism: a chunk is
// garbage only when EVERY member condemned it, and only in a round where
// every member actually registered (registeredNow nil means all did; a
// partial Announce round defers the verdict to the periodic GC protocol).
// A member voting garbage for a chunk another member's partition still
// references must never get the chunk deleted.
func mergeRegisterResps(resps []proto.RegisterResp, registeredNow []bool) proto.RegisterResp {
	var merged proto.RegisterResp
	allRegistered := true
	for i, resp := range resps {
		if merged.HeartbeatInterval == 0 || (resp.HeartbeatInterval > 0 && resp.HeartbeatInterval < merged.HeartbeatInterval) {
			merged.HeartbeatInterval = resp.HeartbeatInterval
		}
		merged.Recovering = merged.Recovering || resp.Recovering
		merged.Reconciled += resp.Reconciled
		if registeredNow != nil && !registeredNow[i] {
			allRegistered = false
		}
	}
	if allRegistered {
		votes := make(map[core.ChunkID]int)
		for _, resp := range resps {
			for _, id := range resp.Garbage {
				votes[id]++
			}
		}
		for id, n := range votes {
			if n == len(resps) {
				merged.Garbage = append(merged.Garbage, id)
			}
		}
		sort.Slice(merged.Garbage, func(a, b int) bool {
			return bytes.Compare(merged.Garbage[a][:], merged.Garbage[b][:]) < 0
		})
	}
	return merged
}

// Announce performs one soft-state round for a benefactor across the
// federation: members the node has not registered with yet — and members
// that reject the heartbeat as coming from an unknown node (they
// restarted and lost their soft state) — get an MRegister; the rest get
// an MHeartbeat. registered[i] tracks member i's state across rounds and
// is updated in place (len must equal the member count).
//
// Crucially, an *unreachable* member is merely skipped for the round
// (health-tracked, retried next round): it must not flip the node into a
// global re-register. Only a member that explicitly forgot the node — a
// restart, or a decommission after the member declared the node dead —
// is re-registered, and only that member; the registration carries the
// node's chunk inventory, which that member reconciles against its
// catalog (and its reservation counter against the node's live write
// sessions). The merged reply carries the shortest heartbeat interval
// any member asked for, ORs the recovery flags, sums the reconciled
// counts, and intersects the garbage sets (only when every member
// registered this round; see mergeRegisterResps); the error is the first
// member's failure, after every member was attempted.
func (r *Router) Announce(reg proto.RegisterReq, hb proto.HeartbeatReq, registered []bool) (proto.RegisterResp, error) {
	if len(registered) != r.ms.Len() {
		return proto.RegisterResp{}, fmt.Errorf("federation: announce with %d member flags, membership has %d", len(registered), r.ms.Len())
	}
	resps := make([]proto.RegisterResp, r.ms.Len())
	registeredNow := make([]bool, r.ms.Len())
	err := r.fanOut(func(i int) error {
		if registered[i] {
			var hresp proto.HeartbeatResp
			err := r.call(i, proto.MHeartbeat, hb, &hresp)
			if err == nil {
				resps[i] = proto.RegisterResp{Recovering: hresp.Recovering}
				return nil
			}
			if !errors.Is(err, core.ErrNotFound) {
				return err // unreachable or transient: keep state, retry next round
			}
			registered[i] = false // member restarted or decommissioned the node
		}
		var rresp proto.RegisterResp
		if err := r.call(i, proto.MRegister, reg, &rresp); err != nil {
			return err
		}
		registered[i] = true
		registeredNow[i] = true
		resps[i] = rresp
		return nil
	})
	return mergeRegisterResps(resps, registeredNow), err
}

// Heartbeat refreshes a benefactor's soft state on every member.
func (r *Router) Heartbeat(req proto.HeartbeatReq) (proto.HeartbeatResp, error) {
	resps := make([]proto.HeartbeatResp, r.ms.Len())
	err := r.fanOut(func(i int) error {
		return r.call(i, proto.MHeartbeat, req, &resps[i])
	})
	if err != nil {
		return proto.HeartbeatResp{}, err
	}
	merged := proto.HeartbeatResp{OK: true}
	for _, resp := range resps {
		merged.Recovering = merged.Recovering || resp.Recovering
	}
	return merged, nil
}

// GCReport reconciles a benefactor's chunk inventory with every member
// and intersects the replies: a chunk is deletable only when NO member
// references it. Any member failing makes the round answer "keep
// everything" — garbage collection must be conservative when the
// federation's view is incomplete.
func (r *Router) GCReport(req proto.GCReportReq) (proto.GCReportResp, error) {
	resps := make([]proto.GCReportResp, r.ms.Len())
	err := r.fanOut(func(i int) error {
		return r.call(i, proto.MGCReport, req, &resps[i])
	})
	if err != nil {
		r.logf("gc report incomplete, keeping all %d candidates: %v", len(req.IDs), err)
		return proto.GCReportResp{}, err
	}
	votes := make(map[core.ChunkID]int, len(req.IDs))
	for _, resp := range resps {
		for _, id := range resp.Deletable {
			votes[id]++
		}
	}
	var deletable []core.ChunkID
	n := r.ms.Len()
	for _, id := range req.IDs {
		if votes[id] == n {
			deletable = append(deletable, id)
		}
	}
	return proto.GCReportResp{Deletable: deletable}, nil
}
