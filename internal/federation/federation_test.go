package federation

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestOwnerExactlyOne is the partition-mapping property test: for any key
// and any federation size, exactly one member owns the key, the owner is
// in range, and recomputing through a freshly built Membership (a
// "restarted" router or member) yields the same owner.
func TestOwnerExactlyOne(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for members := 1; members <= 8; members++ {
		addrs := make([]string, members)
		for i := range addrs {
			addrs[i] = fmt.Sprintf("host%d:9400", i)
		}
		ms, err := NewMembership(addrs)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 500; trial++ {
			key := fmt.Sprintf("app%d.n%d", rng.Intn(50), rng.Intn(100))
			owner := OwnerIndex(key, members)
			if owner < 0 || owner >= members {
				t.Fatalf("members=%d key=%q: owner %d out of range", members, key, owner)
			}
			// Exactly one member considers itself the owner.
			owners := 0
			for idx := 0; idx < members; idx++ {
				if OwnerIndex(key, members) == idx {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("members=%d key=%q: %d owners", members, key, owners)
			}
			// Stable across restarts: a fresh Membership from the same
			// list maps the key identically.
			fresh, err := NewMembership(addrs)
			if err != nil {
				t.Fatal(err)
			}
			gotIdx, gotAddr := fresh.OwnerOf(key)
			if gotIdx != owner || gotAddr != addrs[owner] {
				t.Fatalf("members=%d key=%q: restart moved owner %d->%d", members, key, owner, gotIdx)
			}
			if ms.Epoch() != fresh.Epoch() {
				t.Fatalf("members=%d: epoch changed across restart: %#x vs %#x", members, ms.Epoch(), fresh.Epoch())
			}
		}
	}
}

// TestOwnerOfCollapsesTimesteps checks the routing invariant that keeps a
// version chain member-local: every timestep of one (app, node) pair
// routes to the dataset key's owner.
func TestOwnerOfCollapsesTimesteps(t *testing.T) {
	ms, err := NewMembership([]string{"a:1", "b:1", "c:1", "d:1"})
	if err != nil {
		t.Fatal(err)
	}
	keyIdx, _ := ms.OwnerOf("blast.n7")
	for ts := 0; ts < 32; ts++ {
		idx, _ := ms.OwnerOf(fmt.Sprintf("blast.n7.t%d", ts))
		if idx != keyIdx {
			t.Fatalf("timestep %d routed to member %d, dataset key to %d", ts, idx, keyIdx)
		}
	}
}

// TestOwnerDistribution guards against a degenerate partition function:
// over many keys every member of a 4-way federation must own a
// non-trivial share.
func TestOwnerDistribution(t *testing.T) {
	const members, keys = 4, 4000
	counts := make([]int, members)
	for i := 0; i < keys; i++ {
		counts[OwnerIndex(fmt.Sprintf("app%d.n%d", i%97, i), members)]++
	}
	for i, c := range counts {
		if c < keys/members/2 {
			t.Fatalf("member %d owns %d of %d keys; partition badly skewed: %v", i, c, keys, counts)
		}
	}
}

// TestEpoch checks the configuration-drift detector: identical lists
// agree, and any difference in content, order, or size changes the epoch.
func TestEpoch(t *testing.T) {
	base := []string{"a:1", "b:1", "c:1"}
	if Epoch(base) != Epoch([]string{"a:1", "b:1", "c:1"}) {
		t.Fatal("identical member lists produced different epochs")
	}
	variants := [][]string{
		{"a:1", "b:1"},
		{"b:1", "a:1", "c:1"},
		{"a:1", "b:1", "c:1", "d:1"},
		{"a:1", "b:1", "x:1"},
	}
	for _, v := range variants {
		if Epoch(v) == Epoch(base) {
			t.Fatalf("variant %v collides with base epoch", v)
		}
	}
	if Epoch(base) == 0 {
		t.Fatal("epoch 0 is reserved for non-federated callers")
	}
}

// TestNewMembershipValidation rejects empty and duplicate member lists.
func TestNewMembershipValidation(t *testing.T) {
	if _, err := NewMembership(nil); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewMembership([]string{"a:1", ""}); err == nil {
		t.Fatal("empty member address accepted")
	}
	if _, err := NewMembership([]string{"a:1", "a:1"}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	ms, err := NewMembership([]string{"a:1", "b:1"})
	if err != nil {
		t.Fatal(err)
	}
	if ms.Len() != 2 || ms.Members()[1] != "b:1" {
		t.Fatalf("membership mangled: %v", ms.Members())
	}
}
