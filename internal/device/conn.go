package device

import (
	"net"
	"time"
)

// ShapedConn wraps a net.Conn so that traffic is paced by the local NIC's
// transmit/receive limiters and, optionally, a shared fabric limiter
// modelling the site switch (the §V.F bottleneck). Each endpoint of a
// connection wraps its own half with its own NIC.
type ShapedConn struct {
	net.Conn
	nic    *NIC
	fabric *Limiter
}

var _ net.Conn = (*ShapedConn)(nil)

// Shape wraps conn with the node's NIC and an optional shared fabric.
// A nil NIC (or nil limiters inside it) leaves that direction unshaped.
func Shape(conn net.Conn, nic *NIC, fabric *Limiter) net.Conn {
	if conn == nil {
		return nil
	}
	if nic == nil && fabric == nil {
		return conn
	}
	return &ShapedConn{Conn: conn, nic: nic, fabric: fabric}
}

// writeQuantum is the pacing granularity for transmissions. Pacing before
// each quantum (instead of once for the whole message) lets the receiving
// end overlap with the sender in wall-clock time, as a real pipelined link
// does.
const writeQuantum = 64 << 10

// Write paces the outgoing bytes through the NIC TX queue and the fabric.
// A NIC with a Delay first pays the one-way link latency: the blocking
// charge models a stop-and-wait sender, so each serial request costs one
// latency while a windowed transport overlaps the charges of its in-flight
// requests across connections. A frame emitted as several Write segments
// (header then body) pays per segment; the harnesses that calibrate
// against Delay put it on the request side, whose frames are single-
// segment.
func (s *ShapedConn) Write(p []byte) (int, error) {
	if s.nic != nil && s.nic.Delay > 0 {
		time.Sleep(s.nic.Delay)
	}
	if s.nic == nil && s.fabric == nil {
		return s.Conn.Write(p)
	}
	written := 0
	for off := 0; off < len(p); off += writeQuantum {
		end := off + writeQuantum
		if end > len(p) {
			end = len(p)
		}
		if s.nic != nil {
			s.nic.TX.Acquire(end - off)
		}
		s.fabric.Acquire(end - off)
		n, err := s.Conn.Write(p[off:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Read paces the incoming bytes through the NIC RX queue. The fabric is
// charged on the transmit side only, so a byte crossing the switch is not
// double-counted.
func (s *ShapedConn) Read(p []byte) (int, error) {
	n, err := s.Conn.Read(p)
	if n > 0 && s.nic != nil {
		s.nic.RX.Acquire(n)
	}
	return n, err
}
