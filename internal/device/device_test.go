package device

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

func TestLimiterUnshaped(t *testing.T) {
	var nilL *Limiter
	start := time.Now()
	nilL.Acquire(1 << 30) // must not block or panic
	NewLimiter(0).Acquire(1 << 30)
	NewLimiter(-1).Acquire(1 << 30)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("unshaped limiter blocked")
	}
	if nilL.Rate() != 0 || NewLimiter(0).Rate() != 0 {
		t.Fatal("unshaped limiter reports a rate")
	}
}

func TestLimiterPacing(t *testing.T) {
	// 10 MB/s, transfer 1 MB -> ~100 ms.
	l := NewLimiter(10e6)
	start := time.Now()
	l.Acquire(1e6)
	got := time.Since(start)
	if got < 80*time.Millisecond || got > 400*time.Millisecond {
		t.Fatalf("1MB at 10MB/s took %v, want ~100ms", got)
	}
}

func TestLimiterSerializesConcurrentUsers(t *testing.T) {
	// Two concurrent 1 MB transfers through a 20 MB/s device take ~100 ms
	// in total (they share the queue), not ~50 ms each in parallel.
	l := NewLimiter(20e6)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Acquire(1e6)
		}()
	}
	wg.Wait()
	got := time.Since(start)
	if got < 80*time.Millisecond {
		t.Fatalf("two queued transfers finished in %v, want >= ~100ms", got)
	}
}

func TestLimiterBusy(t *testing.T) {
	l := NewLimiter(1e6) // 1 MB/s
	if l.Busy() {
		t.Fatal("fresh limiter busy")
	}
	done := make(chan struct{})
	go func() {
		l.Acquire(200e3) // 200 ms of work
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	if !l.Busy() {
		t.Fatal("limiter with queued work not busy")
	}
	<-done
	time.Sleep(10 * time.Millisecond)
	if l.Busy() {
		t.Fatal("drained limiter still busy")
	}
}

func TestLimiterSetRate(t *testing.T) {
	l := NewLimiter(1)
	l.SetRate(1e12)
	start := time.Now()
	l.Acquire(1e6)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("SetRate did not take effect")
	}
	if l.Rate() != 1e12 {
		t.Fatalf("Rate() = %v, want 1e12", l.Rate())
	}
}

func TestDiskPacingAndBusy(t *testing.T) {
	d := NewDisk(MBps(100), MBps(10))
	start := time.Now()
	d.Write(1e6) // 1 MB at 10 MB/s -> ~100 ms
	wrote := time.Since(start)
	if wrote < 80*time.Millisecond || wrote > 400*time.Millisecond {
		t.Fatalf("write took %v, want ~100ms", wrote)
	}
	start = time.Now()
	d.Read(1e6) // 1 MB at 100 MB/s -> ~10 ms
	read := time.Since(start)
	if read > wrote {
		t.Fatalf("read (%v) slower than write (%v) despite faster rate", read, wrote)
	}
	if d.Busy() {
		t.Fatal("idle disk busy")
	}
}

func TestUnshapedDisk(t *testing.T) {
	d := UnshapedDisk()
	start := time.Now()
	d.Write(1 << 30)
	d.Read(1 << 30)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("unshaped disk blocked")
	}
	var nilDisk *Disk
	nilDisk.Write(10) // must not panic
	if nilDisk.Busy() {
		t.Fatal("nil disk busy")
	}
}

func TestCallCost(t *testing.T) {
	c := NewCallCost(20 * time.Millisecond)
	start := time.Now()
	c.Pay()
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("CallCost did not block")
	}
	if c.Cost() != 20*time.Millisecond {
		t.Fatalf("Cost() = %v", c.Cost())
	}
	var free *CallCost
	free.Pay() // nil is free
	if free.Cost() != 0 {
		t.Fatal("nil CallCost has non-zero cost")
	}
}

func TestUnitHelpers(t *testing.T) {
	if MBps(1) != 1e6 {
		t.Fatalf("MBps(1) = %v", MBps(1))
	}
	if Gbps(1) != 125e6 {
		t.Fatalf("Gbps(1) = %v", Gbps(1))
	}
}

func TestProfiles(t *testing.T) {
	p := PaperNode()
	if p.DiskWriteBps != MBps(86.2) {
		t.Fatalf("paper disk write = %v", p.DiskWriteBps)
	}
	if p.LinkBps != Gbps(1) {
		t.Fatalf("paper link = %v", p.LinkBps)
	}
	ten := PaperTenGigClient()
	if ten.LinkBps != Gbps(10) {
		t.Fatalf("10G client link = %v", ten.LinkBps)
	}
	n := NewNode(Unshaped())
	if n.Disk == nil || n.NIC == nil || n.Mem == nil || n.Fuse == nil {
		t.Fatal("NewNode left nil devices")
	}
}

func TestShapedConnRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	// Shape only the client side; 1 MB/s TX.
	nic := NewNIC(1e6)
	shaped := Shape(client, nic, nil)

	msg := bytes.Repeat([]byte("x"), 100e3) // 100 KB -> ~100 ms at 1 MB/s
	var got []byte
	var rerr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, len(msg))
		n := 0
		for n < len(buf) {
			k, err := server.Read(buf[n:])
			n += k
			if err != nil {
				rerr = err
				return
			}
		}
		got = buf
	}()

	start := time.Now()
	if _, err := shaped.Write(msg); err != nil {
		t.Fatal(err)
	}
	<-done
	if rerr != nil {
		t.Fatal(rerr)
	}
	if time.Since(start) < 80*time.Millisecond {
		t.Fatal("shaped write did not pace")
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted through shaping")
	}
}

func TestShapeNilPassthrough(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	if Shape(c, nil, nil) != c {
		t.Fatal("Shape(nil nic, nil fabric) should return conn unchanged")
	}
	if Shape(nil, nil, nil) != nil {
		t.Fatal("Shape(nil conn) should be nil")
	}
}

func TestFabricSharedAcrossConns(t *testing.T) {
	fabric := NewLimiter(1e6) // 1 MB/s shared
	c1, s1 := net.Pipe()
	c2, s2 := net.Pipe()
	defer func() { c1.Close(); s1.Close(); c2.Close(); s2.Close() }()
	a := Shape(c1, nil, fabric)
	b := Shape(c2, nil, fabric)

	drain := func(conn net.Conn, n int) chan struct{} {
		ch := make(chan struct{})
		go func() {
			defer close(ch)
			buf := make([]byte, 32<<10)
			read := 0
			for read < n {
				k, err := conn.Read(buf)
				read += k
				if err != nil {
					return
				}
			}
		}()
		return ch
	}

	const each = 50e3 // 2 x 50 KB over 1 MB/s shared fabric -> >= ~100 ms
	d1 := drain(s1, each)
	d2 := drain(s2, each)
	start := time.Now()
	var wg sync.WaitGroup
	for _, conn := range []net.Conn{a, b} {
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			c.Write(make([]byte, each))
		}(conn)
	}
	wg.Wait()
	<-d1
	<-d2
	if got := time.Since(start); got < 80*time.Millisecond {
		t.Fatalf("fabric not shared: both transfers done in %v", got)
	}
}
