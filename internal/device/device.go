// Package device models the capacity of the paper's testbed hardware:
// disks, NICs, a shared network fabric, and fixed per-call overheads (the
// FUSE context switch). stdchk's components are real concurrent TCP
// servers; only their *capacity* is simulated, by pacing transfers through
// calibrated rate limiters. This reproduces the evaluation's bottleneck
// structure (disk vs NIC vs stripe width vs shared server) independent of
// the machine the benchmarks run on.
//
// The model is a virtual single-server queue per device: a transfer of n
// bytes occupies the device for n/bandwidth seconds, and concurrent
// transfers serialize. This is the behaviour that produces the paper's
// saturation effects (two 1 Gbps benefactors saturating a 1 Gbps client,
// the NFS server crowding under simultaneous checkpoints, the §V.F fabric
// ceiling of ~280 MB/s).
package device

import (
	"sync"
	"time"
)

// MBps converts a decimal-megabyte-per-second figure (the unit used in the
// paper) into bytes per second.
func MBps(mb float64) float64 { return mb * 1e6 }

// Gbps converts a gigabit-per-second link speed into bytes per second.
func Gbps(g float64) float64 { return g * 1e9 / 8 }

// Limiter paces transfers to a fixed bandwidth. The zero value and the nil
// limiter are unshaped (infinite bandwidth); tests use unshaped devices,
// benchmarks use calibrated ones.
type Limiter struct {
	mu       sync.Mutex
	rate     float64 // bytes per second; <= 0 means unshaped
	nextFree time.Time
	// credit is scheduler debt: how long past the modeled completion
	// time sleeps actually woke. It may be repaid by starting later
	// requests slightly in the past, so aggregate throughput converges
	// on the configured rate. Idle time is never banked — an unused
	// link's capacity is lost, as on real hardware.
	credit time.Duration
}

// NewLimiter returns a limiter paced at bytesPerSec. Non-positive rates
// yield an unshaped limiter.
func NewLimiter(bytesPerSec float64) *Limiter {
	return &Limiter{rate: bytesPerSec}
}

// Rate returns the configured bandwidth in bytes per second (0 when
// unshaped).
func (l *Limiter) Rate() float64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.rate <= 0 {
		return 0
	}
	return l.rate
}

// SetRate changes the bandwidth. Safe for concurrent use.
func (l *Limiter) SetRate(bytesPerSec float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rate = bytesPerSec
}

// minSleep is the shortest pause worth issuing: time.Sleep overshoots
// sub-millisecond requests badly, so shorter debts stay recorded in the
// virtual queue and are slept off in a later, larger pause.
const minSleep = time.Millisecond

// maxCredit caps the banked scheduler debt.
const maxCredit = 10 * time.Millisecond

// Acquire blocks until a transfer of n bytes completes under the device
// model: the request is queued behind earlier transfers and occupies the
// device for n/rate seconds. Unshaped limiters return immediately.
func (l *Limiter) Acquire(n int) {
	if l == nil || n <= 0 {
		return
	}
	l.mu.Lock()
	if l.rate <= 0 {
		l.mu.Unlock()
		return
	}
	dur := time.Duration(float64(n) / l.rate * float64(time.Second))
	now := time.Now()
	start := l.nextFree
	if start.IsZero() || start.Before(now) {
		// The device is idle. Repay banked scheduler debt by starting
		// slightly in the past, but never earlier than the previous
		// request's modeled completion: idle capacity itself is lost.
		back := l.credit
		if !start.IsZero() && back > now.Sub(start) {
			back = now.Sub(start)
		}
		l.credit -= back
		start = now.Add(-back)
	}
	end := start.Add(dur)
	l.nextFree = end
	l.mu.Unlock()

	if wait := time.Until(end); wait >= minSleep {
		time.Sleep(wait)
		if over := time.Since(end); over > 0 {
			l.mu.Lock()
			l.credit += over
			if l.credit > maxCredit {
				l.credit = maxCredit
			}
			l.mu.Unlock()
		}
	}
}

// Busy reports whether the device currently has queued work (its virtual
// availability lies in the future). The replication scheduler uses this to
// give foreground writes priority.
func (l *Limiter) Busy() bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rate > 0 && l.nextFree.After(time.Now())
}

// Disk models a node-local disk with distinct sustained read and write
// bandwidths sharing one spindle (a single queue). The queue is paced in
// nanoseconds of spindle time so reads and writes with different bandwidths
// contend correctly.
type Disk struct {
	q         *Limiter // rate 1e9 units/s; one unit = 1 ns of spindle time
	readRate  float64
	writeRate float64
}

// NewDisk returns a disk with the given sustained read/write bandwidths in
// bytes per second. Non-positive rates are unshaped.
func NewDisk(readBps, writeBps float64) *Disk {
	return &Disk{q: NewLimiter(1e9), readRate: readBps, writeRate: writeBps}
}

// UnshapedDisk returns a disk with no pacing, for tests.
func UnshapedDisk() *Disk { return &Disk{} }

// Read blocks for the duration of reading n bytes.
func (d *Disk) Read(n int) {
	if d == nil {
		return
	}
	d.acquire(n, d.readRate)
}

// Write blocks for the duration of writing n bytes.
func (d *Disk) Write(n int) {
	if d == nil {
		return
	}
	d.acquire(n, d.writeRate)
}

// Busy reports whether the spindle has queued work.
func (d *Disk) Busy() bool {
	if d == nil || d.q == nil {
		return false
	}
	return d.q.Busy()
}

func (d *Disk) acquire(n int, rate float64) {
	if d == nil || d.q == nil || rate <= 0 || n <= 0 {
		return
	}
	d.q.Acquire(int(float64(n) / rate * 1e9))
}

// NIC models a full-duplex network interface: independent transmit and
// receive queues at the link speed, plus an optional fixed per-transmission
// latency.
type NIC struct {
	TX *Limiter
	RX *Limiter
	// Delay is the one-way latency a transmission pays before its bytes
	// enter the link: propagation plus the sender's protocol-stack cost.
	// It is charged per transmit segment, which makes a stop-and-wait
	// exchange pay it once per request — the per-RPC cost that pipelined
	// and batched transports amortize across a window (paper §IV.E). Zero
	// is a latency-free link.
	Delay time.Duration
}

// NewNIC returns a NIC with the given link bandwidth (bytes per second) in
// each direction. Non-positive is unshaped.
func NewNIC(bps float64) *NIC {
	return &NIC{TX: NewLimiter(bps), RX: NewLimiter(bps)}
}

// UnshapedNIC returns a NIC with no pacing, for tests.
func UnshapedNIC() *NIC { return &NIC{} }

// CallCost models a fixed per-invocation overhead, such as the ~32 µs
// kernel/user context switch a FUSE call pays (paper Table 1). Costs
// accumulate in a virtual queue and are slept off in >= minSleep pauses,
// the same self-correcting scheme the Limiter uses, because individual
// 32 µs sleeps are unachievable.
type CallCost struct {
	mu       sync.Mutex
	cost     time.Duration
	nextFree time.Time
	credit   time.Duration
}

// NewCallCost returns a per-call cost model. Non-positive costs are free.
func NewCallCost(d time.Duration) *CallCost { return &CallCost{cost: d} }

// Pay blocks for the per-call cost.
func (c *CallCost) Pay() {
	if c == nil || c.cost <= 0 {
		return
	}
	c.mu.Lock()
	now := time.Now()
	start := c.nextFree
	if start.IsZero() || start.Before(now) {
		back := c.credit
		if !start.IsZero() && back > now.Sub(start) {
			back = now.Sub(start)
		}
		c.credit -= back
		start = now.Add(-back)
	}
	end := start.Add(c.cost)
	c.nextFree = end
	c.mu.Unlock()
	if wait := time.Until(end); wait >= minSleep {
		time.Sleep(wait)
		if over := time.Since(end); over > 0 {
			c.mu.Lock()
			c.credit += over
			if c.credit > maxCredit {
				c.credit = maxCredit
			}
			c.mu.Unlock()
		}
	}
}

// Cost returns the per-call duration.
func (c *CallCost) Cost() time.Duration {
	if c == nil {
		return 0
	}
	return c.cost
}

// Profile bundles the calibrated capacities of one node.
type Profile struct {
	// DiskReadBps / DiskWriteBps are the node-local disk's sustained
	// bandwidths in bytes per second (paper: 86.2 MB/s write).
	DiskReadBps  float64
	DiskWriteBps float64
	// LinkBps is the NIC speed in bytes per second (paper: 1 Gbps
	// benefactors; 10 Gbps client in §V.D).
	LinkBps float64
	// LinkDelay is the NIC's one-way per-transmission latency (see
	// NIC.Delay). The readload harness uses it to model the LAN round
	// trip a serial chunk transfer pays per request.
	LinkDelay time.Duration
	// MemCopyBps bounds in-memory copies (the /stdchk/null path in
	// Table 1 is memcpy-limited at about 1 GB/s).
	MemCopyBps float64
	// FuseCallCost is the per-syscall user-space file system overhead
	// (paper: ~32 µs).
	FuseCallCost time.Duration
}

// PaperNode is the calibration for a standard testbed node in §V: dual
// 3.0 GHz Xeon, SCSI disk at 86.2 MB/s sustained write, Gigabit Ethernet.
func PaperNode() Profile {
	return Profile{
		DiskReadBps:  MBps(90),
		DiskWriteBps: MBps(86.2),
		LinkBps:      Gbps(1),
		MemCopyBps:   1.35e9, // calibrated so /stdchk/null writes 1 GB in ~1.04 s (Table 1)
		FuseCallCost: 32 * time.Microsecond,
	}
}

// PaperTenGigClient is the §V.D client: SATA disk, 8 GB RAM, 10 Gbps NIC.
func PaperTenGigClient() Profile {
	p := PaperNode()
	p.LinkBps = Gbps(10)
	p.DiskWriteBps = MBps(60) // commodity SATA of the era
	p.DiskReadBps = MBps(70)
	return p
}

// NFSServerMBps is the calibrated throughput of the dedicated NFS server
// baseline (paper §V.A: 24.8 MB/s).
const NFSServerMBps = 24.8

// Unshaped is a profile with no pacing at all, for unit tests.
func Unshaped() Profile { return Profile{} }

// NewNode materializes a profile into device instances.
func NewNode(p Profile) *Node {
	nic := NewNIC(p.LinkBps)
	nic.Delay = p.LinkDelay
	return &Node{
		Disk: NewDisk(p.DiskReadBps, p.DiskWriteBps),
		NIC:  nic,
		Mem:  NewLimiter(p.MemCopyBps),
		Fuse: NewCallCost(p.FuseCallCost),
	}
}

// Node is the set of device models for one machine.
type Node struct {
	Disk *Disk
	NIC  *NIC
	Mem  *Limiter
	Fuse *CallCost
}
