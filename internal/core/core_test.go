package core

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHashChunkDeterministic(t *testing.T) {
	a := HashChunk([]byte("hello stdchk"))
	b := HashChunk([]byte("hello stdchk"))
	if a != b {
		t.Fatalf("same payload hashed to %s and %s", a, b)
	}
	c := HashChunk([]byte("hello stdchk!"))
	if a == c {
		t.Fatalf("different payloads collided: %s", a)
	}
}

func TestChunkIDStringRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		id := HashChunk(data)
		parsed, err := ParseChunkID(id.String())
		return err == nil && parsed == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseChunkIDErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "abcd"},
		{"not hex", strings.Repeat("zz", HashSize)},
		{"too long", strings.Repeat("ab", HashSize+1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseChunkID(tt.in); err == nil {
				t.Fatalf("ParseChunkID(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestChunkIDShortAndZero(t *testing.T) {
	var zero ChunkID
	if !zero.IsZero() {
		t.Fatal("zero value not IsZero")
	}
	id := HashChunk([]byte("x"))
	if id.IsZero() {
		t.Fatal("hash of data reported zero")
	}
	if got := id.Short(); len(got) != 8 {
		t.Fatalf("Short() = %q, want 8 hex digits", got)
	}
}

func validMap() *ChunkMap {
	const cs = 4
	data := [][]byte{[]byte("aaaa"), []byte("bbbb"), []byte("cc")}
	m := &ChunkMap{
		Dataset:   1,
		Version:   1,
		ChunkSize: cs,
		CreatedAt: time.Now(),
	}
	for i, d := range data {
		m.Chunks = append(m.Chunks, ChunkRef{Index: i, ID: HashChunk(d), Size: int64(len(d))})
		m.Locations = append(m.Locations, []NodeID{"n1", "n2"})
		m.FileSize += int64(len(d))
	}
	return m
}

func TestChunkMapValidate(t *testing.T) {
	m := validMap()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}

	tests := []struct {
		name string
		mut  func(*ChunkMap)
	}{
		{"mismatched locations", func(m *ChunkMap) { m.Locations = m.Locations[:1] }},
		{"bad index", func(m *ChunkMap) { m.Chunks[1].Index = 5 }},
		{"oversized chunk", func(m *ChunkMap) { m.Chunks[0].Size = m.ChunkSize + 1 }},
		{"zero chunk", func(m *ChunkMap) { m.Chunks[2].Size = 0 }},
		{"short interior chunk", func(m *ChunkMap) { m.Chunks[0].Size = 1 }},
		{"file size mismatch", func(m *ChunkMap) { m.FileSize++ }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := validMap()
			tt.mut(m)
			if err := m.Validate(); err == nil {
				t.Fatal("corrupted map validated")
			}
		})
	}
}

// TestChunkMapValidateVariable: the variable (CbCH) regime frees per-chunk
// sizes within (0, ChunkSize] — interior chunks may be short — while the
// cover/index/bound invariants still hold.
func TestChunkMapValidateVariable(t *testing.T) {
	m := validMap()
	m.Variable = true
	// Heterogeneous interior sizes: illegal fixed, legal variable.
	m.Chunks[0].Size = 1
	m.FileSize -= 3
	if err := m.Validate(); err != nil {
		t.Fatalf("variable map with short interior chunk rejected: %v", err)
	}
	m.Variable = false
	if err := m.Validate(); err == nil {
		t.Fatal("fixed map accepted a short interior chunk")
	}

	tests := []struct {
		name string
		mut  func(*ChunkMap)
	}{
		{"oversized span", func(m *ChunkMap) { m.Chunks[1].Size = m.ChunkSize + 1 }},
		{"zero span", func(m *ChunkMap) { m.Chunks[1].Size = 0 }},
		{"cover mismatch", func(m *ChunkMap) { m.FileSize++ }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := validMap()
			m.Variable = true
			tt.mut(m)
			if err := m.Validate(); err == nil {
				t.Fatal("corrupted variable map validated")
			}
		})
	}
}

func TestChunkMapClone(t *testing.T) {
	m := validMap()
	c := m.Clone()
	c.Chunks[0].Size = 99
	c.Locations[0][0] = "evil"
	if m.Chunks[0].Size == 99 {
		t.Fatal("Clone shares chunk slice")
	}
	if m.Locations[0][0] == "evil" {
		t.Fatal("Clone shares location slice")
	}
	if (*ChunkMap)(nil).Clone() != nil {
		t.Fatal("nil Clone not nil")
	}
}

func TestChunkMapMinReplication(t *testing.T) {
	m := validMap()
	if got := m.MinReplication(); got != 2 {
		t.Fatalf("MinReplication = %d, want 2", got)
	}
	m.Locations[1] = m.Locations[1][:1]
	if got := m.MinReplication(); got != 1 {
		t.Fatalf("MinReplication = %d, want 1", got)
	}
	empty := &ChunkMap{}
	if got := empty.MinReplication(); got != 0 {
		t.Fatalf("empty MinReplication = %d, want 0", got)
	}
}

func TestChunkMapUniqueChunks(t *testing.T) {
	m := validMap()
	// Duplicate the first chunk's content at a new index (dedup case).
	m.Chunks = append(m.Chunks, ChunkRef{Index: 3, ID: m.Chunks[0].ID, Size: 4})
	m.Locations = append(m.Locations, []NodeID{"n1"})
	m.FileSize += 4
	if err := m.Validate(); err == nil {
		// Final chunk is now index 3 with size 4 == chunk size: valid only
		// if previous final chunk has full size; it doesn't (size 2), so
		// Validate should fail. This guards the test's own setup.
		t.Fatal("expected invalid interior short chunk")
	}
	u := m.UniqueChunks()
	if len(u) != 3 {
		t.Fatalf("UniqueChunks = %d entries, want 3", len(u))
	}
}

func TestChunkCount(t *testing.T) {
	tests := []struct {
		file, chunk int64
		want        int
	}{
		{0, 4, 0},
		{-5, 4, 0},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{8, 4, 2},
		{9, 4, 3},
	}
	for _, tt := range tests {
		if got := ChunkCount(tt.file, tt.chunk); got != tt.want {
			t.Errorf("ChunkCount(%d,%d) = %d, want %d", tt.file, tt.chunk, got, tt.want)
		}
	}
}

func TestWriteSemanticsString(t *testing.T) {
	if WriteOptimistic.String() != "optimistic" || WritePessimistic.String() != "pessimistic" {
		t.Fatal("semantics String() wrong")
	}
	if !strings.Contains(WriteSemantics(42).String(), "42") {
		t.Fatal("unknown semantics String() should embed value")
	}
}

func TestPolicyValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Policy
		wantErr bool
	}{
		{"none", Policy{Kind: PolicyNone}, false},
		{"replace", Policy{Kind: PolicyReplace}, false},
		{"replace keep 3", Policy{Kind: PolicyReplace, KeepVersions: 3}, false},
		{"replace negative", Policy{Kind: PolicyReplace, KeepVersions: -1}, true},
		{"purge ok", Policy{Kind: PolicyPurge, PurgeAfter: time.Minute}, false},
		{"purge zero", Policy{Kind: PolicyPurge}, true},
		{"unknown", Policy{Kind: PolicyKind(9)}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPolicyKindRoundTrip(t *testing.T) {
	for _, k := range []PolicyKind{PolicyNone, PolicyReplace, PolicyPurge} {
		got, err := ParsePolicyKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v err %v", k, got, err)
		}
	}
	if _, err := ParsePolicyKind("bogus"); err == nil {
		t.Fatal("ParsePolicyKind accepted bogus kind")
	}
}

func TestPolicyKeep(t *testing.T) {
	if (Policy{Kind: PolicyReplace}).Keep() != 1 {
		t.Fatal("default Keep() should be 1")
	}
	if (Policy{Kind: PolicyReplace, KeepVersions: 4}).Keep() != 4 {
		t.Fatal("Keep() should honor KeepVersions")
	}
}
