package core

import (
	"fmt"
	"time"
)

// PolicyKind selects the automated data-lifetime behaviour for a folder of
// checkpoint images (paper §IV.D).
type PolicyKind int

const (
	// PolicyNone persists all versions indefinitely ("no intervention").
	PolicyNone PolicyKind = iota + 1
	// PolicyReplace makes a newly committed version obsolete all older
	// versions of the same dataset ("automated replace").
	PolicyReplace
	// PolicyPurge removes versions after a predefined interval
	// ("automated purge").
	PolicyPurge
)

// String implements fmt.Stringer.
func (k PolicyKind) String() string {
	switch k {
	case PolicyNone:
		return "none"
	case PolicyReplace:
		return "replace"
	case PolicyPurge:
		return "purge"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// ParsePolicyKind parses the string form produced by String.
func ParsePolicyKind(s string) (PolicyKind, error) {
	switch s {
	case "none":
		return PolicyNone, nil
	case "replace":
		return PolicyReplace, nil
	case "purge":
		return PolicyPurge, nil
	default:
		return 0, fmt.Errorf("unknown policy kind %q", s)
	}
}

// Durability selects how hard the manager journal pushes a folder's
// commits toward stable storage. It is orthogonal to the lifetime Kind: a
// scratch folder can run relaxed/1-replica while a results folder demands
// group-commit fsync, on the same manager.
type Durability int

const (
	// DurabilityDefault inherits the manager's configured journal mode.
	DurabilityDefault Durability = iota
	// DurabilityRelaxed explicitly accepts the async journal's crash
	// window (buffered, no fsync requested).
	DurabilityRelaxed
	// DurabilityFsync asks the journal writer to fsync the batch carrying
	// this folder's records before more commits are acknowledged, even
	// when the manager's global fsync mode is off.
	DurabilityFsync
)

// String implements fmt.Stringer.
func (d Durability) String() string {
	switch d {
	case DurabilityDefault:
		return "default"
	case DurabilityRelaxed:
		return "relaxed"
	case DurabilityFsync:
		return "fsync"
	default:
		return fmt.Sprintf("Durability(%d)", int(d))
	}
}

// ParseDurability parses the string form produced by String.
func ParseDurability(s string) (Durability, error) {
	switch s {
	case "", "default":
		return DurabilityDefault, nil
	case "relaxed":
		return DurabilityRelaxed, nil
	case "fsync":
		return DurabilityFsync, nil
	default:
		return 0, fmt.Errorf("unknown durability %q", s)
	}
}

// Retention is a per-folder version-retention schedule, orthogonal to
// the lifetime Kind the way Durability is. A zero Retention retains
// everything. When set, the retention worker keeps, per dataset:
//
//   - the KeepLast most recent versions, always including the newest, and
//   - the newest version within each of the last KeepHourly distinct
//     hour buckets (commit time truncated to the hour),
//
// and removes every version in neither set. KeepLast <= 0 with
// KeepHourly > 0 means "hourly only" still never drops the newest
// version.
type Retention struct {
	// KeepLast retains the N most recent versions.
	KeepLast int `json:"keepLast,omitempty"`
	// KeepHourly retains the newest version of each of the last N
	// distinct commit hours.
	KeepHourly int `json:"keepHourly,omitempty"`
}

// Enabled reports whether the schedule retains anything selectively
// (a zero Retention disables retention pruning entirely).
func (r Retention) Enabled() bool { return r.KeepLast > 0 || r.KeepHourly > 0 }

// Validate checks the schedule's parameters.
func (r Retention) Validate() error {
	if r.KeepLast < 0 {
		return fmt.Errorf("retention: negative keepLast %d", r.KeepLast)
	}
	if r.KeepHourly < 0 {
		return fmt.Errorf("retention: negative keepHourly %d", r.KeepHourly)
	}
	return nil
}

// RetainVersions applies schedule r to a version chain and reports which
// entries survive. times lists the commit timestamps oldest-first (the
// catalog's version-chain order); the returned keep slice is parallel to
// it. The function is pure — the retention property tests drive it
// directly — and the newest version is always retained, so an enabled
// schedule can never empty a dataset.
func (r Retention) RetainVersions(times []time.Time) []bool {
	keep := make([]bool, len(times))
	if len(times) == 0 {
		return keep
	}
	if !r.Enabled() {
		for i := range keep {
			keep[i] = true
		}
		return keep
	}
	// KeepLast most recent, and the newest unconditionally.
	keep[len(times)-1] = true
	for i := len(times) - r.KeepLast; i < len(times); i++ {
		if i >= 0 {
			keep[i] = true
		}
	}
	if r.KeepHourly > 0 {
		// Walk newest-to-oldest; the first version seen in each hour
		// bucket is that bucket's newest. Buckets are counted in the
		// order encountered, so the "last KeepHourly distinct hours"
		// are the KeepHourly newest buckets that actually have versions.
		buckets := 0
		var last time.Time
		haveLast := false
		for i := len(times) - 1; i >= 0; i-- {
			h := times[i].Truncate(time.Hour)
			if haveLast && h.Equal(last) {
				continue
			}
			buckets++
			if buckets > r.KeepHourly {
				break
			}
			last, haveLast = h, true
			keep[i] = true
		}
	}
	return keep
}

// Policy is the per-folder data-lifetime policy. KeepVersions optionally
// retains the most recent N versions under PolicyReplace (N=1 reproduces the
// paper's "new images make older ones obsolete"); PurgeAfter applies under
// PolicyPurge. Durability selects the folder's journal durability tier and
// Retention the folder's version-retention schedule (both orthogonal to
// Kind).
type Policy struct {
	Kind         PolicyKind    `json:"kind"`
	KeepVersions int           `json:"keepVersions,omitempty"`
	PurgeAfter   time.Duration `json:"purgeAfter,omitempty"`
	Durability   Durability    `json:"durability,omitempty"`
	Retention    Retention     `json:"retention,omitempty"`
}

// DefaultPolicy is applied to folders without explicit metadata.
func DefaultPolicy() Policy {
	return Policy{Kind: PolicyNone}
}

// Validate checks that the policy parameters are consistent with its kind.
func (p Policy) Validate() error {
	switch p.Durability {
	case DurabilityDefault, DurabilityRelaxed, DurabilityFsync:
	default:
		return fmt.Errorf("policy: unknown durability %d", int(p.Durability))
	}
	if err := p.Retention.Validate(); err != nil {
		return err
	}
	switch p.Kind {
	case PolicyNone:
		return nil
	case PolicyReplace:
		if p.KeepVersions < 0 {
			return fmt.Errorf("policy replace: negative keepVersions %d", p.KeepVersions)
		}
		return nil
	case PolicyPurge:
		if p.PurgeAfter <= 0 {
			return fmt.Errorf("policy purge: non-positive purgeAfter %v", p.PurgeAfter)
		}
		return nil
	default:
		return fmt.Errorf("policy: unknown kind %d", int(p.Kind))
	}
}

// Keep reports the number of most-recent versions PolicyReplace retains
// (at least one).
func (p Policy) Keep() int {
	if p.KeepVersions <= 0 {
		return 1
	}
	return p.KeepVersions
}

// ReplicationTarget is a user-defined replication level for a dataset or
// folder (paper §IV.A "User-defined replication targets").
type ReplicationTarget struct {
	Level int `json:"level"`
}

// DefaultReplicationLevel is used when the application does not specify a
// target. One replica means "stored once, no redundancy"; the paper's
// availability experiments use 2.
const DefaultReplicationLevel = 2
