package core

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// retainOracle is an independent, by-the-definition reimplementation of
// the retention schedule: the KeepLast most recent versions, plus the
// newest version of each of the KeepHourly newest distinct commit hours,
// plus — unconditionally — the newest version. The property test below
// pins the production single-pass implementation against it.
func retainOracle(r Retention, times []time.Time) map[int]bool {
	keep := make(map[int]bool)
	if len(times) == 0 {
		return keep
	}
	if !r.Enabled() {
		for i := range times {
			keep[i] = true
		}
		return keep
	}
	keep[len(times)-1] = true
	for i := len(times) - r.KeepLast; i < len(times); i++ {
		if i >= 0 {
			keep[i] = true
		}
	}
	// Newest index of every hour bucket, then the KeepHourly newest buckets.
	newestIn := make(map[time.Time]int)
	for i, ts := range times {
		h := ts.Truncate(time.Hour)
		if cur, ok := newestIn[h]; !ok || i > cur {
			newestIn[h] = i
		}
	}
	var buckets []time.Time
	for h := range newestIn {
		buckets = append(buckets, h)
	}
	sort.Slice(buckets, func(a, b int) bool { return buckets[a].After(buckets[b]) })
	for k := 0; k < r.KeepHourly && k < len(buckets); k++ {
		keep[newestIn[buckets[k]]] = true
	}
	return keep
}

// TestRetainVersionsPropertyMatchesOracle checks RetainVersions against
// the oracle over random schedules and random ascending commit chains,
// and asserts the schedule's standalone invariants: the newest version
// always survives an enabled schedule, a disabled schedule keeps
// everything, and the keep slice stays parallel to the input.
func TestRetainVersionsPropertyMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(12)
		times := make([]time.Time, n)
		ts := base
		for i := range times {
			// Gaps from seconds to hours, so chains cross bucket boundaries
			// unevenly: some hours dense with versions, some empty.
			ts = ts.Add(time.Duration(1+rng.Intn(7200)) * time.Second)
			times[i] = ts
		}
		r := Retention{KeepLast: rng.Intn(5), KeepHourly: rng.Intn(5)}

		keep := r.RetainVersions(times)
		if len(keep) != n {
			t.Fatalf("trial %d: keep slice has %d entries for %d versions", trial, len(keep), n)
		}
		want := retainOracle(r, times)
		for i := range keep {
			if keep[i] != want[i] {
				t.Fatalf("trial %d (%+v): keep[%d] = %v, oracle says %v\ntimes: %v",
					trial, r, i, keep[i], want[i], times)
			}
		}
		if n > 0 {
			if !r.Enabled() {
				for i, k := range keep {
					if !k {
						t.Fatalf("trial %d: disabled schedule dropped version %d", trial, i)
					}
				}
			} else if !keep[n-1] {
				t.Fatalf("trial %d (%+v): newest version not retained", trial, r)
			}
		}
	}
}

// TestRetainVersionsHourlyBoundaries pins keep-hourly's bucket edges
// explicitly: commits a second apart straddling an hour boundary land in
// distinct buckets, while a dense run inside one hour collapses to its
// newest member.
func TestRetainVersionsHourlyBoundaries(t *testing.T) {
	h := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	times := []time.Time{
		h.Add(5 * time.Minute),             // 10:05  bucket 10
		h.Add(30 * time.Minute),            // 10:30  bucket 10
		h.Add(time.Hour - time.Second),     // 10:59:59  bucket 10 (newest in it)
		h.Add(time.Hour),                   // 11:00:00  bucket 11 — one second later, new bucket
		h.Add(2*time.Hour + 7*time.Minute), // 12:07  bucket 12
	}
	keep := Retention{KeepHourly: 2}.RetainVersions(times)
	want := []bool{false, false, false, true, true} // newest of buckets 11 and 12
	for i := range want {
		if keep[i] != want[i] {
			t.Fatalf("KeepHourly=2: keep = %v, want %v", keep, want)
		}
	}
	keep = Retention{KeepHourly: 3}.RetainVersions(times)
	want = []bool{false, false, true, true, true} // 10:59:59 is bucket 10's newest
	for i := range want {
		if keep[i] != want[i] {
			t.Fatalf("KeepHourly=3: keep = %v, want %v", keep, want)
		}
	}
	// Combined schedule: keep-last widens the hourly selection.
	keep = Retention{KeepLast: 2, KeepHourly: 3}.RetainVersions(times)
	want = []bool{false, false, true, true, true}
	for i := range want {
		if keep[i] != want[i] {
			t.Fatalf("KeepLast=2,KeepHourly=3: keep = %v, want %v", keep, want)
		}
	}
}
