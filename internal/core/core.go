// Package core defines the domain types shared by every stdchk component:
// content-addressed chunk identifiers, chunk maps, dataset versions, write
// semantics, replication targets and data-lifetime policies.
//
// The types here mirror the vocabulary of the paper (ICDCS'08): datasets are
// fragmented into fixed-size chunks striped round-robin across benefactor
// nodes; a chunk-map records the chunks of a committed version and where
// each chunk lives; versions of the same checkpoint file form a chain and
// may share chunks (copy-on-write) when incremental checkpointing detects
// inter-version similarity.
package core

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"time"
)

// DefaultChunkSize is the fixed chunk size used for striping. The paper uses
// chunks "of the order of a megabyte" and evaluates with 1 MB chunks.
const DefaultChunkSize = 1 << 20

// HashSize is the size in bytes of a content hash (SHA-1, as in
// compare-by-hash systems contemporary with the paper).
const HashSize = sha1.Size

// ChunkID is the content-based name of a chunk: the SHA-1 hash of its
// contents. Content-based naming deduplicates identical chunks across
// checkpoint versions and doubles as an integrity check against faulty or
// malicious benefactors (paper §IV.C).
type ChunkID [HashSize]byte

// HashChunk computes the content-based name for a chunk payload.
func HashChunk(data []byte) ChunkID {
	return ChunkID(sha1.Sum(data))
}

// String returns the hexadecimal form of the chunk ID.
func (c ChunkID) String() string {
	return hex.EncodeToString(c[:])
}

// Short returns an abbreviated (8 hex digit) form for logs.
func (c ChunkID) Short() string {
	return hex.EncodeToString(c[:4])
}

// IsZero reports whether the ID is the all-zero value.
func (c ChunkID) IsZero() bool {
	return c == ChunkID{}
}

// ParseChunkID parses the hexadecimal form produced by String.
func ParseChunkID(s string) (ChunkID, error) {
	var id ChunkID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("parse chunk id %q: %w", s, err)
	}
	if len(b) != HashSize {
		return id, fmt.Errorf("parse chunk id %q: %w", s, ErrBadChunkID)
	}
	copy(id[:], b)
	return id, nil
}

// NodeID identifies a benefactor node. It is the node's service address
// (host:port), which is what clients dial to reach its chunk service.
type NodeID string

// DatasetID identifies a logical dataset (one checkpoint file name, all of
// its versions) at the manager.
type DatasetID uint64

// VersionID identifies one committed version of a dataset. Versions are
// assigned in increasing order by the manager at commit time.
type VersionID uint64

// WriteSemantics selects the durability/throughput tradeoff for writes
// (paper §IV.A "Tunable write semantics").
type WriteSemantics int

const (
	// WriteOptimistic returns as soon as every chunk is safely stored on
	// one benefactor; background replication raises the replication level.
	WriteOptimistic WriteSemantics = iota + 1
	// WritePessimistic returns only after the dataset has reached its
	// replication target.
	WritePessimistic
)

// String implements fmt.Stringer.
func (w WriteSemantics) String() string {
	switch w {
	case WriteOptimistic:
		return "optimistic"
	case WritePessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("WriteSemantics(%d)", int(w))
	}
}

// Sentinel errors shared across components.
var (
	// ErrNotFound indicates a dataset, version, or chunk that the manager
	// or a benefactor does not know about.
	ErrNotFound = errors.New("not found")
	// ErrNoSpace indicates the storage pool cannot satisfy a reservation.
	ErrNoSpace = errors.New("insufficient storage space")
	// ErrNoBenefactors indicates no live benefactor can host a stripe.
	ErrNoBenefactors = errors.New("no live benefactors")
	// ErrNotCommitted indicates a read of a version that was never
	// committed (session semantics expose only committed versions).
	ErrNotCommitted = errors.New("version not committed")
	// ErrAlreadyCommitted indicates a duplicate commit of a session.
	ErrAlreadyCommitted = errors.New("session already committed")
	// ErrBadChunkID indicates a malformed content hash.
	ErrBadChunkID = errors.New("malformed chunk id")
	// ErrIntegrity indicates stored chunk bytes do not match their
	// content-based name.
	ErrIntegrity = errors.New("chunk integrity violation")
	// ErrBenefactorDown indicates the addressed benefactor is offline.
	ErrBenefactorDown = errors.New("benefactor down")
	// ErrClosed indicates use of a closed component.
	ErrClosed = errors.New("closed")
	// ErrReadOnly indicates a write to a handle opened for reading.
	ErrReadOnly = errors.New("handle is read-only")
	// ErrQuorum indicates manager recovery could not assemble the
	// two-thirds benefactor concurrence required to restore a dataset.
	ErrQuorum = errors.New("insufficient recovery quorum")
	// ErrNotOwner indicates a dataset-scoped request reached a federation
	// member that does not own the dataset's partition (the client-side
	// router misrouted, or a non-federated client dialed a member
	// directly).
	ErrNotOwner = errors.New("dataset not owned by this federation member")
	// ErrEpochMismatch indicates a request carried a partition epoch that
	// does not match the member's federation configuration: the caller's
	// member list and the member's disagree, so routing cannot be trusted.
	ErrEpochMismatch = errors.New("federation partition epoch mismatch")
	// ErrRetryable marks a transient transport failure (dial refused,
	// connection reset, timeout) on a call that may be retried: the remote
	// never answered, so it may simply be restarting. Application-level
	// replies — including remote errors — are never wrapped in it.
	ErrRetryable = errors.New("transient transport failure")
)

// retryAfterMarker is the wire form of an ErrRetryAfter rejection. The
// delay is embedded in the error string so the typed error survives the
// framed protocol's string-only error channel (see ParseRetryAfter).
const retryAfterMarker = "overloaded, retry after "

// ErrRetryAfter is an admission-control rejection: the metadata service is
// shedding load and names the earliest moment the caller should try
// again. It is deliberately distinct from ErrRetryable — a transport that
// never answered — because a retry-after IS an answer: the server is
// alive and protecting itself, so retrying sooner than Delay only deepens
// the overload. Clients and the federation router honor Delay with
// bounded backoff; errors.Is(err, ErrRetryAfter{}) matches any delay and
// errors.As extracts it.
type ErrRetryAfter struct {
	// Delay is the server's backoff hint.
	Delay time.Duration
}

// Error implements the error interface; the format round-trips through
// ParseRetryAfter.
func (e ErrRetryAfter) Error() string {
	return retryAfterMarker + e.Delay.String()
}

// Is matches any ErrRetryAfter regardless of delay, so
// errors.Is(err, core.ErrRetryAfter{}) works as a class test.
func (e ErrRetryAfter) Is(target error) bool {
	_, ok := target.(ErrRetryAfter)
	return ok
}

// IsRetryAfter reports whether err is (or wraps) an admission-control
// retry-after rejection, regardless of its delay.
func IsRetryAfter(err error) bool { return errors.Is(err, ErrRetryAfter{}) }

// ParseRetryAfter recovers a typed ErrRetryAfter from an error string that
// crossed the wire (remote errors travel as strings; see
// wire.RemoteError.Unwrap). ok is false when s carries no retry-after
// marker or the embedded delay does not parse.
func ParseRetryAfter(s string) (ErrRetryAfter, bool) {
	i := strings.LastIndex(s, retryAfterMarker)
	if i < 0 {
		return ErrRetryAfter{}, false
	}
	rest := s[i+len(retryAfterMarker):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	d, err := time.ParseDuration(rest)
	if err != nil || d < 0 {
		return ErrRetryAfter{}, false
	}
	return ErrRetryAfter{Delay: d}, true
}

// ChunkRef names one chunk of a version: its position in the file, its
// content-based name, and its size (the final chunk of a file may be short).
type ChunkRef struct {
	Index int     `json:"index"`
	ID    ChunkID `json:"id"`
	Size  int64   `json:"size"`
}

// ChunkMap is the full description of one version of a dataset: the ordered
// chunk list and, for each chunk, the benefactors currently holding a
// replica. The chunk-map is the unit of atomic commit (session semantics,
// paper §IV.A): a version is visible iff its chunk-map is committed.
//
// Two chunking regimes share this type. Fixed-size striping (the paper's
// default) fragments the file into ChunkSize pieces, so every chunk but the
// last has exactly that size. Content-defined chunking (CbCH, paper §IV.C)
// anchors boundaries to the content itself; chunk sizes then vary per chunk
// and ChunkSize only bounds them from above. Variable selects the regime.
type ChunkMap struct {
	Dataset  DatasetID `json:"dataset"`
	Version  VersionID `json:"version"`
	FileSize int64     `json:"fileSize"`
	// ChunkSize is the striping size in the fixed regime, and the maximum
	// span bound in the variable (CbCH) regime.
	ChunkSize int64 `json:"chunkSize"`
	// Variable marks content-defined (variable-size) chunking: per-chunk
	// sizes are free within (0, ChunkSize].
	Variable  bool       `json:"variable,omitempty"`
	Chunks    []ChunkRef `json:"chunks"`
	Locations [][]NodeID `json:"locations"` // parallel to Chunks
	CreatedAt time.Time  `json:"createdAt"`
}

// Validate checks structural invariants of the chunk map. The fixed regime
// keeps the strict equal-size invariant (non-final chunks are exactly
// ChunkSize); the variable regime checks each chunk independently against
// the ChunkSize upper bound.
func (m *ChunkMap) Validate() error {
	if len(m.Chunks) != len(m.Locations) {
		return fmt.Errorf("chunkmap: %d chunks but %d location lists", len(m.Chunks), len(m.Locations))
	}
	var total int64
	for i, c := range m.Chunks {
		if c.Index != i {
			return fmt.Errorf("chunkmap: chunk %d has index %d", i, c.Index)
		}
		if c.Size <= 0 || c.Size > m.ChunkSize {
			return fmt.Errorf("chunkmap: chunk %d has size %d (chunk size %d)", i, c.Size, m.ChunkSize)
		}
		if !m.Variable && i < len(m.Chunks)-1 && c.Size != m.ChunkSize {
			return fmt.Errorf("chunkmap: non-final chunk %d has short size %d", i, c.Size)
		}
		total += c.Size
	}
	if total != m.FileSize {
		return fmt.Errorf("chunkmap: chunk sizes sum to %d, file size %d", total, m.FileSize)
	}
	return nil
}

// Clone returns a deep copy of the map. Chunk maps cross API boundaries;
// per the style guides, slices are copied at those boundaries.
func (m *ChunkMap) Clone() *ChunkMap {
	if m == nil {
		return nil
	}
	out := *m
	out.Chunks = make([]ChunkRef, len(m.Chunks))
	copy(out.Chunks, m.Chunks)
	out.Locations = make([][]NodeID, len(m.Locations))
	for i, locs := range m.Locations {
		out.Locations[i] = append([]NodeID(nil), locs...)
	}
	return &out
}

// MinReplication returns the smallest replica count across chunks, which is
// the replication level of the version as a whole. An empty map has level 0.
func (m *ChunkMap) MinReplication() int {
	if len(m.Locations) == 0 {
		return 0
	}
	min := len(m.Locations[0])
	for _, locs := range m.Locations[1:] {
		if len(locs) < min {
			min = len(locs)
		}
	}
	return min
}

// UniqueChunks returns the set of distinct chunk IDs in the map. With
// incremental checkpointing, versions share chunks and the distinct set is
// smaller than the chunk list.
func (m *ChunkMap) UniqueChunks() map[ChunkID]int64 {
	out := make(map[ChunkID]int64, len(m.Chunks))
	for _, c := range m.Chunks {
		out[c.ID] = c.Size
	}
	return out
}

// ChunkCount returns the number of chunks a file of size fileSize splits
// into at the given chunk size.
func ChunkCount(fileSize, chunkSize int64) int {
	if fileSize <= 0 {
		return 0
	}
	return int((fileSize + chunkSize - 1) / chunkSize)
}

// VersionInfo summarizes one committed version for listings and policy
// decisions.
type VersionInfo struct {
	Dataset     DatasetID `json:"dataset"`
	Version     VersionID `json:"version"`
	Name        string    `json:"name"`
	FileSize    int64     `json:"fileSize"`
	StoredBytes int64     `json:"storedBytes"` // bytes of *new* chunks this version introduced
	Replication int       `json:"replication"`
	CreatedAt   time.Time `json:"createdAt"`
}

// DatasetInfo summarizes a dataset (a named checkpoint file and its version
// chain).
type DatasetInfo struct {
	ID       DatasetID     `json:"id"`
	Name     string        `json:"name"`
	Folder   string        `json:"folder"`
	Versions []VersionInfo `json:"versions"`
}

// NodeState is a benefactor's position in the registry's lifecycle state
// machine: Online (heartbeating) → Suspect (missed heartbeats past the
// node TTL) → Dead (silent past the dead timeout; decommissioned). A
// heartbeat from a Suspect node restores Online; a Dead node must
// re-register, and its chunk locations were already dropped.
type NodeState string

// Node lifecycle states (see NodeState).
const (
	NodeOnline  NodeState = "online"
	NodeSuspect NodeState = "suspect"
	NodeDead    NodeState = "dead"
)

// BenefactorInfo summarizes a benefactor's registration state at the
// manager (soft-state registry, paper §IV.A). Online mirrors
// State == NodeOnline for older consumers of the listing.
type BenefactorInfo struct {
	ID        NodeID    `json:"id"`
	Addr      string    `json:"addr"`
	Capacity  int64     `json:"capacity"`
	Free      int64     `json:"free"`
	Reserved  int64     `json:"reserved"`
	Online    bool      `json:"online"`
	State     NodeState `json:"state,omitempty"`
	LastSeen  time.Time `json:"lastSeen"`
	ChunkHeld int       `json:"chunksHeld"`
}
