// Package chunker implements the similarity-detection heuristics of paper
// §IV.C: fixed-size compare-by-hash (FsCH) and content-based compare-by-hash
// (CbCH), in both the "overlap" (window advanced by one byte) and
// "no-overlap" (window advanced by its own size) configurations, plus a
// rolling-hash variant of overlap CbCH as an ablation.
//
// A chunker deterministically splits a checkpoint image into spans; spans
// are then named by their content hash. Two versions of a checkpoint image
// share all spans whose hashes collide, which is what the storage system
// exploits to store and transfer only new chunks.
package chunker

import (
	"fmt"

	"stdchk/internal/core"
	"stdchk/internal/hashing"
)

// Span is a half-open byte range [Off, Off+Len) of an image.
type Span struct {
	Off int64
	Len int64
}

// Chunk is a span plus its content-based name.
type Chunk struct {
	Span
	ID core.ChunkID
}

// Chunker deterministically splits an image into contiguous spans covering
// it exactly.
type Chunker interface {
	// Name identifies the heuristic and its parameters, e.g. "FsCH(1MB)".
	Name() string
	// Split returns the chunk boundaries for the image. The spans are
	// contiguous, non-empty and cover the image exactly.
	Split(data []byte) []Span
}

// Fixed is FsCH: equal-size chunks at fixed offsets. It is the fastest
// heuristic (one content hash per chunk, no boundary scan) but any byte
// insertion or deletion shifts all subsequent chunk contents and defeats
// matching (paper §IV.C).
type Fixed struct {
	// Size is the chunk size in bytes.
	Size int64
}

var _ Chunker = Fixed{}

// Name implements Chunker.
func (f Fixed) Name() string { return fmt.Sprintf("FsCH(%s)", byteSize(f.Size)) }

// Split implements Chunker.
func (f Fixed) Split(data []byte) []Span {
	size := f.Size
	if size <= 0 {
		size = core.DefaultChunkSize
	}
	n := int64(len(data))
	spans := make([]Span, 0, int(n/size)+1)
	for off := int64(0); off < n; off += size {
		l := size
		if off+l > n {
			l = n - off
		}
		spans = append(spans, Span{Off: off, Len: l})
	}
	return spans
}

// ContentDefined is CbCH: a window of Window bytes slides over the image
// advancing Advance bytes per step; a step whose window hash has its lowest
// Bits bits zero ends the current chunk (paper §IV.C). Advance=1 is the
// paper's "overlap" configuration; Advance=Window is "no-overlap".
type ContentDefined struct {
	// Window is m, the window size in bytes.
	Window int
	// Bits is k, the number of low hash bits compared to zero. Expected
	// spacing between boundaries is Advance << Bits bytes.
	Bits uint
	// Advance is p, the number of bytes the window advances per step.
	// Values <= 0 default to 1 (overlap).
	Advance int
	// MaxLen optionally caps chunk length (0 = no cap). A cap bounds the
	// worst case for pathological content (e.g. long runs of zeros that
	// never produce a boundary).
	MaxLen int64
	// Rolling selects the O(1)-per-byte rolling-hash implementation.
	// Only meaningful with Advance == 1; it is the standard fix (LBFS)
	// for the overlap configuration's throughput collapse and is
	// benchmarked as an ablation.
	Rolling bool
}

var _ Chunker = ContentDefined{}

// Name implements Chunker.
func (c ContentDefined) Name() string {
	mode := "no-overlap"
	if c.advance() == 1 {
		mode = "overlap"
		if c.Rolling {
			mode = "rolling"
		}
	}
	return fmt.Sprintf("CbCH(%s,m=%dB,k=%db)", mode, c.window(), c.Bits)
}

func (c ContentDefined) window() int {
	if c.Window <= 0 {
		return 48
	}
	return c.Window
}

func (c ContentDefined) advance() int {
	if c.Advance <= 0 {
		return 1
	}
	return c.Advance
}

// Split implements Chunker.
func (c ContentDefined) Split(data []byte) []Span {
	if len(data) == 0 {
		return nil
	}
	if c.Rolling && c.advance() == 1 {
		return c.splitRolling(data)
	}
	return c.splitScan(data)
}

// splitScan recomputes the window hash at every position, which is what the
// paper's measured configurations do: cost is O(Window) per step, hence
// O(n*Window/Advance) per image.
func (c ContentDefined) splitScan(data []byte) []Span {
	m, p := c.window(), c.advance()
	n := int64(len(data))
	var spans []Span
	start := int64(0)
	for pos := int64(0); pos+int64(m) <= n; pos += int64(p) {
		h := hashing.WindowHash(data[pos : pos+int64(m)])
		end := pos + int64(m)
		if hashing.Boundary(h, c.Bits) && end > start {
			spans = append(spans, Span{Off: start, Len: end - start})
			start = end
			pos = end - int64(p) // next window starts at the boundary
			continue
		}
		if c.MaxLen > 0 && end-start >= c.MaxLen {
			spans = append(spans, Span{Off: start, Len: end - start})
			start = end
			pos = end - int64(p)
		}
	}
	if start < n {
		spans = append(spans, Span{Off: start, Len: n - start})
	}
	return spans
}

// splitRolling produces boundaries with a polynomial rolling hash updated in
// O(1) per byte. The boundary set differs from splitScan (different hash
// function) but has the same statistical spacing; it exists to quantify how
// much of overlap-CbCH's cost is algorithmic rather than essential.
func (c ContentDefined) splitRolling(data []byte) []Span {
	m := c.window()
	n := int64(len(data))
	if n < int64(m) {
		return []Span{{Off: 0, Len: n}}
	}
	r := hashing.NewRolling(m)
	var spans []Span
	start := int64(0)
	h := r.Prime(data[:m])
	pos := int64(0)
	for {
		end := pos + int64(m)
		if hashing.Boundary(h, c.Bits) && end > start {
			spans = append(spans, Span{Off: start, Len: end - start})
			start = end
		} else if c.MaxLen > 0 && end-start >= c.MaxLen {
			spans = append(spans, Span{Off: start, Len: end - start})
			start = end
		}
		if end >= n {
			break
		}
		h = r.Roll(data[end])
		pos++
	}
	if start < n {
		spans = append(spans, Span{Off: start, Len: n - start})
	}
	return spans
}

// HashSpans names each span by the content hash of its bytes.
func HashSpans(data []byte, spans []Span) []Chunk {
	chunks := make([]Chunk, len(spans))
	for i, s := range spans {
		chunks[i] = Chunk{Span: s, ID: core.HashChunk(data[s.Off : s.Off+s.Len])}
	}
	return chunks
}

// SplitAndHash runs the chunker and names every chunk.
func SplitAndHash(c Chunker, data []byte) []Chunk {
	return HashSpans(data, c.Split(data))
}

// Validate checks that spans are contiguous, non-empty and cover exactly
// [0, size).
func Validate(spans []Span, size int64) error {
	var off int64
	for i, s := range spans {
		if s.Len <= 0 {
			return fmt.Errorf("span %d has non-positive length %d", i, s.Len)
		}
		if s.Off != off {
			return fmt.Errorf("span %d starts at %d, want %d", i, s.Off, off)
		}
		off += s.Len
	}
	if off != size {
		return fmt.Errorf("spans cover %d bytes, image is %d", off, size)
	}
	return nil
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n/(1<<20))
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
