package chunker

import (
	"bytes"
	"math/rand"
	"testing"

	"stdchk/internal/core"
)

func streamTestParams() StreamParams {
	return StreamParams{Window: 48, Bits: 12, Min: 2 << 10, Max: 32 << 10}
}

// TestStreamSpansValid: spans from the streaming boundary finder are
// contiguous, cover the input exactly, and respect the Min/Max bounds
// (the final span may be short).
func TestStreamSpansValid(t *testing.T) {
	p := streamTestParams()
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	spans := p.Split(data)
	if err := Validate(spans, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if len(spans) < 8 {
		t.Fatalf("only %d spans over 1 MB with expected ~6 KB spacing", len(spans))
	}
	for i, s := range spans {
		if s.Len > p.Max {
			t.Fatalf("span %d has length %d > max %d", i, s.Len, p.Max)
		}
		if i < len(spans)-1 && s.Len < p.Min {
			t.Fatalf("non-final span %d has length %d < min %d", i, s.Len, p.Min)
		}
	}
}

// TestStreamFeedGranularityInvariance: the boundary set must not depend on
// how the byte stream is sliced into Feed calls — the property that makes
// all three write protocols (different staging granularities) produce
// identical chunk sequences.
func TestStreamFeedGranularityInvariance(t *testing.T) {
	p := streamTestParams()
	data := make([]byte, 512<<10)
	rand.New(rand.NewSource(2)).Read(data)
	want := p.Split(data)

	for _, block := range []int{1, 7, 4096, 100_000, len(data)} {
		s := NewStream(p)
		var got []Span
		var off, start int64
		for pos := 0; pos < len(data); {
			end := pos + block
			if end > len(data) {
				end = len(data)
			}
			chunk := data[pos:end]
			for len(chunk) > 0 {
				n, cut := s.Feed(chunk)
				off += int64(n)
				chunk = chunk[n:]
				if cut {
					got = append(got, Span{Off: start, Len: off - start})
					start = off
				}
			}
			pos = end
		}
		if tail := s.Flush(); tail > 0 {
			got = append(got, Span{Off: start, Len: tail})
		}
		if len(got) != len(want) {
			t.Fatalf("block %d: %d spans, want %d", block, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("block %d: span %d = %+v, want %+v", block, i, got[i], want[i])
			}
		}
	}
}

// TestStreamResynchronizesAfterShift: inserting bytes near the front must
// leave the boundary set past the insertion point aligned with the
// original (modulo one resync chunk) — the property fixed-size chunking
// lacks and the reason CbCH dedups shifted checkpoint content.
func TestStreamResynchronizesAfterShift(t *testing.T) {
	p := streamTestParams()
	base := make([]byte, 512<<10)
	rand.New(rand.NewSource(3)).Read(base)

	shifted := make([]byte, 0, len(base)+13)
	shifted = append(shifted, base[:100]...)
	shifted = append(shifted, []byte("thirteen-byte")...)
	shifted = append(shifted, base[100:]...)

	hashSet := func(data []byte) map[core.ChunkID]int64 {
		out := make(map[core.ChunkID]int64)
		for _, c := range SplitAndHash(p, data) {
			out[c.ID] = c.Len
		}
		return out
	}
	prev := hashSet(base)
	var matched, total int64
	for id, n := range hashSet(shifted) {
		total += n
		if _, ok := prev[id]; ok {
			matched += n
		}
	}
	if ratio := float64(matched) / float64(total); ratio < 0.90 {
		t.Fatalf("only %.1f%% of shifted content re-matched; boundaries did not resynchronize", 100*ratio)
	}
}

// TestStreamPathologicalInput: constant bytes never produce a hash
// boundary, so Max must force cuts.
func TestStreamPathologicalInput(t *testing.T) {
	p := streamTestParams()
	data := bytes.Repeat([]byte{0}, 256<<10)
	spans := p.Split(data)
	if err := Validate(spans, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	for i, s := range spans {
		if s.Len > p.Max {
			t.Fatalf("span %d exceeds max: %d", i, s.Len)
		}
	}
}

// TestStreamDefaults: zero params resolve to sane bounds.
func TestStreamDefaults(t *testing.T) {
	p := StreamParams{}.WithDefaults()
	if p.Window != 48 || p.Bits != 16 {
		t.Fatalf("defaults: %+v", p)
	}
	if p.Min <= 0 || p.Max < p.Min {
		t.Fatalf("degenerate bounds: %+v", p)
	}
	if s := NewStream(StreamParams{}); s.Params().Max != p.Max {
		t.Fatalf("NewStream defaults mismatch: %+v", s.Params())
	}
}

// TestStreamEmptyAndTiny: inputs below Window/Min still produce a single
// covering span (or none for empty input).
func TestStreamEmptyAndTiny(t *testing.T) {
	p := streamTestParams()
	if spans := p.Split(nil); len(spans) != 0 {
		t.Fatalf("empty input produced %d spans", len(spans))
	}
	tiny := []byte{1, 2, 3}
	spans := p.Split(tiny)
	if len(spans) != 1 || spans[0].Len != 3 {
		t.Fatalf("tiny input spans: %+v", spans)
	}
}
