package chunker

import (
	"fmt"

	"stdchk/internal/hashing"
)

// StreamParams bound the spans of the live (write-path) CbCH chunker. The
// offline heuristics in this package split a complete in-memory image; the
// write path instead sees the checkpoint as a byte stream, so the boundary
// finder must be incremental and its spans must be bounded on both sides to
// keep buffer pooling and space-reservation math sane:
//
//   - Min suppresses boundaries until a span has at least Min bytes, which
//     caps the per-chunk metadata overhead.
//   - Bits sets the expected spacing past Min (one boundary per 2^Bits
//     window positions, as in the offline ContentDefined chunker).
//   - Max force-cuts pathological content (e.g. long zero runs) so a span
//     never exceeds the pooled buffer capacity the writer reserves.
type StreamParams struct {
	// Window is the rolling-hash window in bytes (0 = 48, the LBFS-style
	// default used by the rolling ablation).
	Window int
	// Bits is k: a window hash whose low k bits are zero ends the span.
	// Expected span length is Min + 2^Bits bytes.
	Bits uint
	// Min is the minimum span length; boundaries earlier than this are
	// suppressed (0 = Window).
	Min int64
	// Max is the hard span cap (0 = 4 * (Min + 2^Bits)).
	Max int64
}

// WithDefaults fills unset fields.
func (p StreamParams) WithDefaults() StreamParams {
	if p.Window <= 0 {
		p.Window = 48
	}
	if p.Bits == 0 {
		p.Bits = 16 // 64 KiB expected spacing past Min
	}
	if p.Min <= 0 {
		p.Min = int64(p.Window)
	}
	if p.Max <= 0 {
		p.Max = 4 * (p.Min + int64(1)<<p.Bits)
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	return p
}

// Name identifies the parameterization, mirroring Chunker.Name.
func (p StreamParams) Name() string {
	p = p.WithDefaults()
	return fmt.Sprintf("CbCH(stream,m=%dB,k=%db,%s..%s)", p.Window, p.Bits, byteSize(p.Min), byteSize(p.Max))
}

// Stream finds content-defined chunk boundaries incrementally, one Feed
// call per arbitrary application write. The rolling hash runs continuously
// over the byte stream (it is NOT reset at a cut), so a boundary depends
// only on the Window bytes before it — after an insertion or deletion the
// boundary sequence re-synchronizes within one window, which is what lets
// shifted-but-identical content across checkpoint versions hash to the
// same chunks (the paper's Table 3 CbCH result, live).
type Stream struct {
	p StreamParams
	r *hashing.Rolling
	// length is the size of the span being accumulated.
	length int64
}

// NewStream returns a boundary finder with the given (defaulted) bounds.
func NewStream(p StreamParams) *Stream {
	p = p.WithDefaults()
	return &Stream{p: p, r: hashing.NewRolling(p.Window)}
}

// Params returns the effective (defaulted) parameters.
func (s *Stream) Params() StreamParams { return s.p }

// Feed scans p for the end of the current span. It returns how many bytes
// of p belong to the current span and whether those bytes complete it
// (boundary found or Max reached). When cut is false, all of p has been
// consumed and the span continues into the next Feed call.
func (s *Stream) Feed(p []byte) (n int, cut bool) {
	for i := 0; i < len(p); i++ {
		h := s.r.Roll(p[i])
		s.length++
		if s.length >= s.p.Max || (s.length >= s.p.Min && hashing.Boundary(h, s.p.Bits)) {
			s.length = 0
			return i + 1, true
		}
	}
	return len(p), false
}

// Flush ends the stream: any bytes accumulated since the last cut form the
// final (possibly sub-Min) span. It returns that span's length and resets
// the stream for reuse on a new byte stream.
func (s *Stream) Flush() int64 {
	n := s.length
	s.Reset()
	return n
}

// Reset prepares the stream for a new input.
func (s *Stream) Reset() {
	s.r.Reset()
	s.length = 0
}

// Split implements Chunker by driving a fresh Stream over the whole image,
// so offline measurements (Table 3 harness) can evaluate exactly the
// boundary set the live write path produces.
func (p StreamParams) Split(data []byte) []Span {
	s := NewStream(p)
	var spans []Span
	var off int64
	rest := data
	for len(rest) > 0 {
		n, cut := s.Feed(rest)
		if !cut {
			break
		}
		spans = append(spans, Span{Off: off, Len: int64(n)})
		off += int64(n)
		rest = rest[n:]
	}
	if tail := s.Flush(); tail > 0 {
		spans = append(spans, Span{Off: off, Len: tail})
	}
	return spans
}

var _ Chunker = StreamParams{}
