package chunker

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func reassemble(data []byte, spans []Span) []byte {
	out := make([]byte, 0, len(data))
	for _, s := range spans {
		out = append(out, data[s.Off:s.Off+s.Len]...)
	}
	return out
}

func chunkersUnderTest() []Chunker {
	return []Chunker{
		Fixed{Size: 1 << 10},
		Fixed{Size: 256 << 10},
		Fixed{Size: 1 << 20},
		ContentDefined{Window: 20, Bits: 8, Advance: 20},
		ContentDefined{Window: 32, Bits: 10, Advance: 32},
		ContentDefined{Window: 48, Bits: 6, Advance: 1},
		ContentDefined{Window: 48, Bits: 6, Advance: 1, Rolling: true},
		ContentDefined{Window: 64, Bits: 12, Advance: 64, MaxLen: 1 << 16},
	}
}

func TestSplitCoversInput(t *testing.T) {
	data := randBytes(1, 1<<18)
	for _, c := range chunkersUnderTest() {
		t.Run(c.Name(), func(t *testing.T) {
			spans := c.Split(data)
			if err := Validate(spans, int64(len(data))); err != nil {
				t.Fatalf("invalid spans: %v", err)
			}
			if !bytes.Equal(reassemble(data, spans), data) {
				t.Fatal("reassembled image differs from input")
			}
		})
	}
}

func TestSplitCoversInputQuick(t *testing.T) {
	chunkers := chunkersUnderTest()
	f := func(data []byte, pick uint8) bool {
		c := chunkers[int(pick)%len(chunkers)]
		spans := c.Split(data)
		if err := Validate(spans, int64(len(data))); err != nil {
			return false
		}
		return bytes.Equal(reassemble(data, spans), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDeterministic(t *testing.T) {
	data := randBytes(2, 1<<17)
	for _, c := range chunkersUnderTest() {
		a := c.Split(data)
		b := c.Split(data)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic span count %d vs %d", c.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: span %d differs across runs", c.Name(), i)
			}
		}
	}
}

func TestSplitEmpty(t *testing.T) {
	for _, c := range chunkersUnderTest() {
		if spans := c.Split(nil); len(spans) != 0 {
			t.Errorf("%s: empty input produced %d spans", c.Name(), len(spans))
		}
	}
}

func TestFixedSizes(t *testing.T) {
	data := randBytes(3, 10<<10) // 10 KB
	spans := Fixed{Size: 4 << 10}.Split(data)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Len != 4<<10 || spans[1].Len != 4<<10 || spans[2].Len != 2<<10 {
		t.Fatalf("span sizes %d,%d,%d", spans[0].Len, spans[1].Len, spans[2].Len)
	}
}

func TestFixedDefaultsChunkSize(t *testing.T) {
	data := randBytes(4, 3<<20)
	spans := Fixed{}.Split(data)
	if len(spans) != 3 {
		t.Fatalf("default chunk size: got %d spans, want 3 (1MB default)", len(spans))
	}
}

// FsCH must detect no similarity after a one-byte insertion at the front,
// while CbCH must still detect most of it (paper §IV.C).
func TestInsertionResilience(t *testing.T) {
	base := randBytes(5, 1<<20)
	shifted := append([]byte{0x42}, base...)

	fsch := Fixed{Size: 4 << 10}
	simF := Similarity(SplitAndHash(fsch, base), SplitAndHash(fsch, shifted))
	if simF > 0.05 {
		t.Fatalf("FsCH similarity after shift = %.2f, want ~0", simF)
	}

	// Overlap CbCH (window advanced by one byte) is content-anchored:
	// boundaries depend only on the preceding m bytes, so a shift moves
	// all boundaries with the content and chunks still match.
	cbch := ContentDefined{Window: 32, Bits: 10, Advance: 1, Rolling: true}
	simC := Similarity(SplitAndHash(cbch, base), SplitAndHash(cbch, shifted))
	if simC < 0.80 {
		t.Fatalf("overlap CbCH similarity after shift = %.2f, want > 0.80", simC)
	}

	// No-overlap CbCH samples windows on a grid anchored at the previous
	// boundary; a one-byte shift desynchronizes the grid and similarity
	// collapses, like FsCH. (This is the inherent price of the cheaper
	// configuration; see EXPERIMENTS.md notes on Table 3.)
	noOverlap := ContentDefined{Window: 32, Bits: 10, Advance: 32}
	simN := Similarity(SplitAndHash(noOverlap, base), SplitAndHash(noOverlap, shifted))
	if simN > 0.20 {
		t.Fatalf("no-overlap CbCH similarity after shift = %.2f, want near 0", simN)
	}
}

func TestIdenticalImagesFullSimilarity(t *testing.T) {
	data := randBytes(6, 1<<19)
	for _, c := range chunkersUnderTest() {
		chunks := SplitAndHash(c, data)
		if sim := Similarity(chunks, chunks); sim != 1.0 {
			t.Errorf("%s: self-similarity = %.3f, want 1.0", c.Name(), sim)
		}
	}
}

func TestDisjointImagesZeroSimilarity(t *testing.T) {
	a := randBytes(7, 1<<19)
	b := randBytes(8, 1<<19)
	for _, c := range chunkersUnderTest() {
		sim := Similarity(SplitAndHash(c, a), SplitAndHash(c, b))
		if sim > 0.01 {
			t.Errorf("%s: random-image similarity = %.3f, want ~0", c.Name(), sim)
		}
	}
}

func TestSimilarityEmptyNext(t *testing.T) {
	if got := Similarity(nil, nil); got != 0 {
		t.Fatalf("Similarity(nil,nil) = %v, want 0", got)
	}
}

func TestCbCHExpectedChunkSpacing(t *testing.T) {
	// With advance p and k boundary bits, expected chunk size is about
	// p * 2^k. Allow a generous factor since the image is finite.
	data := randBytes(9, 4<<20)
	c := ContentDefined{Window: 32, Bits: 8, Advance: 32}
	spans := c.Split(data)
	want := float64(32 * 256)
	got := float64(len(data)) / float64(len(spans))
	if got < want/4 || got > want*4 {
		t.Fatalf("mean chunk %.0f bytes, want around %.0f", got, want)
	}
}

func TestCbCHMaxLenCap(t *testing.T) {
	// All-zero content never produces boundaries (hash of constant window
	// is constant); MaxLen must still bound chunk size.
	data := make([]byte, 1<<20)
	c := ContentDefined{Window: 48, Bits: 16, Advance: 48, MaxLen: 64 << 10}
	spans := c.Split(data)
	for i, s := range spans {
		if s.Len > 64<<10+48 {
			t.Fatalf("span %d length %d exceeds cap", i, s.Len)
		}
	}
	if err := Validate(spans, int64(len(data))); err != nil {
		t.Fatal(err)
	}
}

func TestRollingAndScanSameSpacingClass(t *testing.T) {
	// Rolling CbCH uses a different hash so boundaries differ, but the
	// statistical chunk-size class must match the scan version.
	data := randBytes(10, 4<<20)
	scan := ContentDefined{Window: 48, Bits: 10, Advance: 1}
	roll := ContentDefined{Window: 48, Bits: 10, Advance: 1, Rolling: true}
	ns, nr := len(scan.Split(data)), len(roll.Split(data))
	if ns == 0 || nr == 0 {
		t.Fatal("no spans")
	}
	ratio := float64(ns) / float64(nr)
	if ratio < 0.25 || ratio > 4 {
		t.Fatalf("scan %d spans vs rolling %d spans: outside same spacing class", ns, nr)
	}
}

func TestEvalTraceCountsAndThroughput(t *testing.T) {
	imgs := [][]byte{randBytes(11, 1<<16), randBytes(11, 1<<16), randBytes(12, 1<<16)}
	stats := EvalTrace(Fixed{Size: 4 << 10}, imgs)
	if stats.Images != 3 {
		t.Fatalf("Images = %d, want 3", stats.Images)
	}
	// Image 2 identical to image 1 -> fully matched; image 3 disjoint.
	if got := stats.SimilarityRatio(); got < 0.45 || got > 0.55 {
		t.Fatalf("SimilarityRatio = %.3f, want ~0.5", got)
	}
	if stats.ThroughputMBps() <= 0 {
		t.Fatal("throughput not measured")
	}
	if stats.AvgChunk <= 0 || stats.AvgMinChunk <= 0 || stats.AvgMaxChunk < stats.AvgChunk {
		t.Fatalf("chunk stats inconsistent: avg %.0f min %.0f max %.0f",
			stats.AvgChunk, stats.AvgMinChunk, stats.AvgMaxChunk)
	}
}

func TestDedupBytes(t *testing.T) {
	img := randBytes(13, 1<<18)
	unique, total := DedupBytes(Fixed{Size: 4 << 10}, [][]byte{img, img, img})
	if total != 3<<18 {
		t.Fatalf("total = %d, want %d", total, 3<<18)
	}
	if unique != 1<<18 {
		t.Fatalf("unique = %d, want %d (identical images dedup to one)", unique, 1<<18)
	}
}

func TestChunkerNames(t *testing.T) {
	tests := []struct {
		c    Chunker
		want string
	}{
		{Fixed{Size: 1 << 20}, "FsCH(1MB)"},
		{Fixed{Size: 1 << 10}, "FsCH(1KB)"},
		{Fixed{Size: 100}, "FsCH(100B)"},
		{ContentDefined{Window: 20, Bits: 14, Advance: 20}, "CbCH(no-overlap,m=20B,k=14b)"},
		{ContentDefined{Window: 20, Bits: 14, Advance: 1}, "CbCH(overlap,m=20B,k=14b)"},
		{ContentDefined{Window: 20, Bits: 14, Advance: 1, Rolling: true}, "CbCH(rolling,m=20B,k=14b)"},
	}
	for _, tt := range tests {
		if got := tt.c.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func BenchmarkFsCH1MB(b *testing.B) {
	benchChunker(b, Fixed{Size: 1 << 20})
}

func BenchmarkCbCHNoOverlap(b *testing.B) {
	benchChunker(b, ContentDefined{Window: 20, Bits: 14, Advance: 20})
}

func BenchmarkCbCHOverlap(b *testing.B) {
	benchChunker(b, ContentDefined{Window: 20, Bits: 14, Advance: 1})
}

func BenchmarkCbCHRolling(b *testing.B) {
	benchChunker(b, ContentDefined{Window: 20, Bits: 14, Advance: 1, Rolling: true})
}

func benchChunker(b *testing.B, c Chunker) {
	data := randBytes(99, 4<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SplitAndHash(c, data)
	}
}
