package chunker

import (
	"time"

	"stdchk/internal/core"
)

// Similarity returns the fraction of next's bytes that are covered by
// chunks whose content hash also occurs in prev. This is the paper's
// "rate of detected similarity": the bytes of a new checkpoint image that
// do not need to be stored or transferred again.
func Similarity(prev, next []Chunk) float64 {
	var total int64
	for _, c := range next {
		total += c.Len
	}
	if total == 0 {
		return 0
	}
	seen := make(map[core.ChunkID]struct{}, len(prev))
	for _, c := range prev {
		seen[c.ID] = struct{}{}
	}
	var matched int64
	for _, c := range next {
		if _, ok := seen[c.ID]; ok {
			matched += c.Len
		}
	}
	return float64(matched) / float64(total)
}

// TraceStats aggregates a heuristic's behaviour over a sequence of
// checkpoint images: the quantities reported in paper Tables 3 and 4.
type TraceStats struct {
	// Heuristic is the chunker's Name().
	Heuristic string
	// Images is the number of images processed.
	Images int
	// TotalBytes is the cumulative input size.
	TotalBytes int64
	// MatchedBytes is the cumulative size of chunks already present in the
	// immediately preceding image.
	MatchedBytes int64
	// Elapsed is the total time spent splitting and hashing.
	Elapsed time.Duration
	// AvgChunk, AvgMinChunk and AvgMaxChunk average, per image, the mean,
	// minimum and maximum chunk sizes (Table 4 columns).
	AvgChunk    float64
	AvgMinChunk float64
	AvgMaxChunk float64
}

// SimilarityRatio is the average fraction of bytes matched against the
// previous image, over all images after the first.
func (s TraceStats) SimilarityRatio() float64 {
	if s.TotalBytes == 0 {
		return 0
	}
	return float64(s.MatchedBytes) / float64(s.TotalBytes)
}

// ThroughputMBps is the heuristic's processing throughput in MB/s
// (decimal MB, as the paper reports).
func (s TraceStats) ThroughputMBps() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.TotalBytes) / 1e6 / s.Elapsed.Seconds()
}

// EvalTrace runs a chunker over successive checkpoint images and measures
// detected similarity (each image against its predecessor), processing
// throughput, and chunk-size statistics.
func EvalTrace(c Chunker, images [][]byte) TraceStats {
	stats := TraceStats{Heuristic: c.Name()}
	var prev map[core.ChunkID]struct{}
	var sumAvg, sumMin, sumMax float64
	for _, img := range images {
		start := time.Now()
		chunks := SplitAndHash(c, img)
		stats.Elapsed += time.Since(start)
		stats.Images++

		var minLen, maxLen, total int64
		for i, ch := range chunks {
			if i == 0 || ch.Len < minLen {
				minLen = ch.Len
			}
			if ch.Len > maxLen {
				maxLen = ch.Len
			}
			total += ch.Len
		}
		if len(chunks) > 0 {
			sumAvg += float64(total) / float64(len(chunks))
			sumMin += float64(minLen)
			sumMax += float64(maxLen)
		}

		if prev != nil {
			stats.TotalBytes += int64(len(img))
			for _, ch := range chunks {
				if _, ok := prev[ch.ID]; ok {
					stats.MatchedBytes += ch.Len
				}
			}
		}
		next := make(map[core.ChunkID]struct{}, len(chunks))
		for _, ch := range chunks {
			next[ch.ID] = struct{}{}
		}
		prev = next
	}
	if stats.Images > 0 {
		stats.AvgChunk = sumAvg / float64(stats.Images)
		stats.AvgMinChunk = sumMin / float64(stats.Images)
		stats.AvgMaxChunk = sumMax / float64(stats.Images)
	}
	return stats
}

// DedupBytes reports, across a whole trace, how many bytes a
// content-addressed store would actually hold (unique chunks) versus the
// total checkpointed bytes — the paper's "storage space and network effort"
// saving (Fig 7, Table 5).
func DedupBytes(c Chunker, images [][]byte) (unique, total int64) {
	seen := make(map[core.ChunkID]struct{})
	for _, img := range images {
		total += int64(len(img))
		for _, ch := range SplitAndHash(c, img) {
			if _, ok := seen[ch.ID]; !ok {
				seen[ch.ID] = struct{}{}
				unique += ch.Len
			}
		}
	}
	return unique, total
}
