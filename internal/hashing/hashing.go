// Package hashing provides the hash primitives used by stdchk's similarity
// detection heuristics (paper §IV.C): a cheap window hash for detecting
// content-defined chunk boundaries, and a Rabin-style rolling hash used by
// the rolling-CbCH ablation (an O(1)-per-byte variant of the paper's
// "overlap" configuration).
package hashing

// WindowHash computes an FNV-1a style 64-bit hash of the window. CbCH calls
// it once per window position; its cost is O(len(window)), which is what
// makes the paper's overlap configuration (advance by one byte) two orders
// of magnitude slower than the no-overlap configuration (advance by the
// window size).
func WindowHash(window []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range window {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// FNV1aString computes the 64-bit FNV-1a hash of a string. The manager's
// catalog stripes datasets with it and the federation layer partitions
// the namespace with it — one implementation, so the stripe hash and the
// partition function provably stay the same function.
func FNV1aString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Boundary reports whether a window hash marks a content-defined chunk
// boundary: the lowest k bits of the hash are all zero (paper §IV.C).
// Statistically this yields one boundary every 2^k window positions.
func Boundary(h uint64, k uint) bool {
	mask := (uint64(1) << k) - 1
	return h&mask == 0
}

// Rolling is a polynomial rolling hash over a fixed-size window
// (Rabin-Karp form: h = sum b[i] * P^(w-1-i) mod 2^64). Unlike WindowHash it
// supports O(1) updates when the window slides by one byte, which is the
// standard fix (used by LBFS) for the overlap-CbCH throughput collapse the
// paper measures.
type Rolling struct {
	window int
	pow    uint64 // P^(window-1)
	hash   uint64
	buf    []byte
	head   int
	primed bool
}

// rollingPrime is the polynomial base. Any odd multiplier works for a
// 2^64 modulus; this is the FNV prime for familiarity.
const rollingPrime = 1099511628211

// NewRolling returns a rolling hash over windows of the given size.
func NewRolling(window int) *Rolling {
	if window <= 0 {
		window = 1
	}
	return &Rolling{
		window: window,
		pow:    powMod64(rollingPrime, uint64(window-1)),
		buf:    make([]byte, window),
	}
}

// powMod64 computes base^exp mod 2^64 by binary exponentiation, so
// constructing a Rolling costs O(log window) multiplies instead of
// O(window).
func powMod64(base, exp uint64) uint64 {
	result := uint64(1)
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}

// Window returns the configured window size.
func (r *Rolling) Window() int { return r.window }

// Reset clears the hash state so the instance can be reused on a new input.
func (r *Rolling) Reset() {
	r.hash = 0
	r.head = 0
	r.primed = false
	clear(r.buf)
}

// Prime initializes the window with the first r.window bytes of data and
// returns the hash of that window. len(data) must be at least the window
// size; extra bytes are ignored.
func (r *Rolling) Prime(data []byte) uint64 {
	r.Reset()
	n := r.window
	if len(data) < n {
		n = len(data)
	}
	for i := 0; i < n; i++ {
		r.hash = r.hash*rollingPrime + uint64(data[i])
		r.buf[i] = data[i]
	}
	r.head = 0
	r.primed = true
	return r.hash
}

// Roll slides the window forward by one byte and returns the new hash.
// Prime must have been called first.
func (r *Rolling) Roll(in byte) uint64 {
	out := r.buf[r.head]
	r.hash = (r.hash-uint64(out)*r.pow)*rollingPrime + uint64(in)
	r.buf[r.head] = in
	r.head++
	if r.head == r.window {
		r.head = 0
	}
	return r.hash
}

// Sum returns the current window hash.
func (r *Rolling) Sum() uint64 { return r.hash }

// HashFull computes the same polynomial hash over exactly one window
// directly; used to cross-check Roll in tests.
func HashFull(window []byte) uint64 {
	var h uint64
	for _, b := range window {
		h = h*rollingPrime + uint64(b)
	}
	return h
}
