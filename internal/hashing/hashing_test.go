package hashing

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowHashDeterministic(t *testing.T) {
	a := WindowHash([]byte("abcdef"))
	b := WindowHash([]byte("abcdef"))
	if a != b {
		t.Fatal("WindowHash not deterministic")
	}
	if WindowHash([]byte("abcdeg")) == a {
		t.Fatal("single-byte change did not alter hash")
	}
}

func TestBoundaryMask(t *testing.T) {
	tests := []struct {
		h    uint64
		k    uint
		want bool
	}{
		{0, 14, true},
		{1 << 14, 14, true},
		{1, 14, false},
		{0x4000, 14, true},
		{0x3fff, 14, false},
		{0xffffffffffff0000, 16, true},
		{0xffffffffffff0001, 16, false},
		{7, 0, true}, // k=0: every position is a boundary
	}
	for _, tt := range tests {
		if got := Boundary(tt.h, tt.k); got != tt.want {
			t.Errorf("Boundary(%#x, %d) = %v, want %v", tt.h, tt.k, got, tt.want)
		}
	}
}

func TestBoundaryRate(t *testing.T) {
	// With random hashes, boundaries at k bits should appear at a rate of
	// about 2^-k. Check within a loose factor.
	const k = 8
	rng := rand.New(rand.NewSource(1))
	n := 1 << 16
	hits := 0
	for i := 0; i < n; i++ {
		if Boundary(rng.Uint64(), k) {
			hits++
		}
	}
	want := n >> k
	if hits < want/2 || hits > want*2 {
		t.Fatalf("boundary rate %d hits in %d, want around %d", hits, n, want)
	}
}

func TestRollingMatchesFull(t *testing.T) {
	const window = 16
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 1024)
	rng.Read(data)

	r := NewRolling(window)
	got := r.Prime(data[:window])
	if want := HashFull(data[:window]); got != want {
		t.Fatalf("Prime hash %#x, want %#x", got, want)
	}
	for i := window; i < len(data); i++ {
		got := r.Roll(data[i])
		want := HashFull(data[i-window+1 : i+1])
		if got != want {
			t.Fatalf("Roll at %d: %#x, want %#x", i, got, want)
		}
	}
}

func TestRollingMatchesFullQuick(t *testing.T) {
	f := func(data []byte, wseed uint8) bool {
		window := int(wseed%31) + 2
		if len(data) < window+2 {
			return true
		}
		r := NewRolling(window)
		r.Prime(data[:window])
		for i := window; i < len(data); i++ {
			if r.Roll(data[i]) != HashFull(data[i-window+1:i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRollingReset(t *testing.T) {
	r := NewRolling(8)
	data := []byte("abcdefghijklmnop")
	first := r.Prime(data[:8])
	r.Roll(data[8])
	r.Reset()
	second := r.Prime(data[:8])
	if first != second {
		t.Fatalf("hash after Reset+Prime %#x, want %#x", second, first)
	}
	if r.Sum() != second {
		t.Fatal("Sum disagrees with Prime result")
	}
}

func TestNewRollingClampsWindow(t *testing.T) {
	r := NewRolling(0)
	if r.Window() != 1 {
		t.Fatalf("window = %d, want clamp to 1", r.Window())
	}
	r = NewRolling(-5)
	if r.Window() != 1 {
		t.Fatalf("window = %d, want clamp to 1", r.Window())
	}
}

func TestPrimeShortData(t *testing.T) {
	r := NewRolling(16)
	// Priming with fewer bytes than the window must not panic.
	_ = r.Prime([]byte("abc"))
}

func BenchmarkWindowHash64(b *testing.B) {
	data := make([]byte, 64)
	rand.New(rand.NewSource(7)).Read(data)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		_ = WindowHash(data)
	}
}

func BenchmarkRollingRoll(b *testing.B) {
	data := make([]byte, 1<<16)
	rand.New(rand.NewSource(7)).Read(data)
	r := NewRolling(48)
	r.Prime(data[:48])
	b.SetBytes(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Roll(data[i&(1<<16-1)])
	}
}

func TestPowMod64MatchesNaive(t *testing.T) {
	for _, window := range []int{1, 2, 3, 16, 48, 100, 1024} {
		naive := uint64(1)
		for i := 0; i < window-1; i++ {
			naive *= rollingPrime
		}
		if got := powMod64(rollingPrime, uint64(window-1)); got != naive {
			t.Fatalf("powMod64(window=%d) = %d, want %d", window, got, naive)
		}
	}
}

func TestResetClearsState(t *testing.T) {
	r := NewRolling(8)
	data := []byte("abcdefghijklmnop")
	first := r.Prime(data)
	for _, b := range data[8:] {
		r.Roll(b)
	}
	r.Reset()
	if r.Sum() != 0 {
		t.Fatalf("Sum after Reset = %d", r.Sum())
	}
	if got := r.Prime(data); got != first {
		t.Fatalf("Prime after Reset = %d, want %d", got, first)
	}
}

func BenchmarkNewRolling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NewRolling(4096)
	}
}
