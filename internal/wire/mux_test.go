package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"stdchk/internal/core"
)

// delayEchoServer echoes body+meta like echoServer, but sleeps for the
// duration named in the request meta first — so concurrent responses
// complete (and hit the wire) out of request order.
func delayEchoServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Handler == nil {
		cfg.Handler = func(req *Req) (Resp, error) {
			var m struct {
				DelayMs int `json:"delay_ms"`
			}
			if err := UnmarshalMeta(req.Meta, &m); err != nil {
				return Resp{}, err
			}
			if m.DelayMs > 0 {
				time.Sleep(time.Duration(m.DelayMs) * time.Millisecond)
			}
			return Resp{Meta: json.RawMessage(req.Meta), Body: req.Body}, nil
		}
	}
	srv := NewServerWithConfig(ln, cfg)
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

// TestMuxDemuxInterleaved is the demux correctness test: many concurrent
// sessions on ONE connection, server-side delays inverted so the first
// request answers last, every reply must still land with its own caller.
func TestMuxDemuxInterleaved(t *testing.T) {
	_, addr := delayEchoServer(t, ServerConfig{})
	mc, err := DialMux(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Earlier goroutines sleep longer: responses come back in
			// roughly reverse order of requests.
			meta := map[string]int{"delay_ms": (n - i) % 8 * 3, "tag": i}
			payload := []byte(fmt.Sprintf("payload-%d", i))
			var respMeta map[string]int
			body, err := mc.Call("echo", meta, payload, &respMeta)
			if err != nil {
				errs <- err
				return
			}
			if respMeta["tag"] != i {
				errs <- fmt.Errorf("session %d got meta for %d", i, respMeta["tag"])
				return
			}
			if !bytes.Equal(body, payload) {
				errs <- fmt.Errorf("session %d got body %q", i, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestUntaggedFrameBackCompat pins the frame-level compatibility promise:
// a session-less frame's bytes are identical to the pre-mux encoding (no
// "sid" key), and frames from old peers — no sid, any field order —
// still decode.
func TestUntaggedFrameBackCompat(t *testing.T) {
	// Untagged frames must not leak the new header key.
	var buf bytes.Buffer
	if err := Write(&buf, &Msg{Op: "put", Meta: json.RawMessage(`{"x":1}`)}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("sid")) {
		t.Fatalf("untagged frame mentions sid: %q", buf.Bytes())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != 0 || got.Op != "put" {
		t.Fatalf("decoded %+v", got)
	}

	// A hand-built old-style header (as an old client would send) parses,
	// in both canonical order (fast path) and reordered (json fallback).
	for _, hdr := range []string{
		`{"op":"commit","meta":{"n":1}}`,
		`{"meta":{"n":1},"op":"commit"}`,
		`{ "op" : "commit" }`,
	} {
		frame := make([]byte, 12+len(hdr))
		frame[3] = byte(len(hdr))
		copy(frame[12:], hdr)
		m, err := Read(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("old frame %q: %v", hdr, err)
		}
		if m.Op != "commit" || m.Session != 0 {
			t.Fatalf("old frame %q decoded as %+v", hdr, m)
		}
	}

	// Tagged frames round-trip the session through both decode paths.
	buf.Reset()
	if err := Write(&buf, &Msg{Op: "alloc", Session: 7, Meta: json.RawMessage(`{"a":2}`)}); err != nil {
		t.Fatal(err)
	}
	got, err = Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Session != 7 || got.Op != "alloc" || string(got.Meta) != `{"a":2}` {
		t.Fatalf("tagged round trip decoded %+v", got)
	}
	reordered := `{"sid":9,"op":"alloc"}`
	frame := make([]byte, 12+len(reordered))
	frame[3] = byte(len(reordered))
	copy(frame[12:], reordered)
	m, err := Read(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if m.Session != 9 {
		t.Fatalf("fallback decoder lost sid: %+v", m)
	}

	// And an old-style serial client still works against the new server.
	_, addr := delayEchoServer(t, ServerConfig{})
	conn, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body, err := conn.Call("echo", map[string]int{"delay_ms": 0}, []byte("old"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "old" {
		t.Fatalf("serial client against mux server got %q", body)
	}
}

// TestSharedPoolConcurrent drives many goroutines through a shared pool
// (one mux connection) and checks every call routes correctly.
func TestSharedPoolConcurrent(t *testing.T) {
	_, addr := delayEchoServer(t, ServerConfig{})
	pool := NewSharedPool(nil, 1)
	defer pool.Close()
	if !pool.Shared() {
		t.Fatal("NewSharedPool not in shared mode")
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("p%d", i))
			body, err := pool.Call(addr, "echo", map[string]int{"delay_ms": i % 4}, payload, nil)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(body, payload) {
				errs <- fmt.Errorf("call %d got %q", i, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSharedPoolRedialsBrokenConn kills the server between calls; the
// pool must evict the dead mux connection and retry on a fresh dial.
func TestSharedPoolRedialsBrokenConn(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	handler := func(req *Req) (Resp, error) { return Resp{Body: req.Body}, nil }
	srv := NewServer(ln, handler, nil)
	addr := srv.Addr()

	pool := NewSharedPool(nil, 1)
	defer pool.Close()
	if _, err := pool.Call(addr, "echo", nil, []byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Restart on the same address so the retry's fresh dial can land.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := NewServer(ln2, handler, nil)
	defer srv2.Close()
	body, err := pool.Call(addr, "echo", nil, []byte("b"), nil)
	if err != nil {
		t.Fatalf("call after server restart: %v", err)
	}
	if string(body) != "b" {
		t.Fatalf("got %q", body)
	}
}

// TestServerShedsTaggedOverload saturates a MaxConnInflight=1 server with
// a slow handler: the second tagged request must be rejected with a typed
// retry-after carrying the server's delay hint — not queued, not hung.
func TestServerShedsTaggedOverload(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	cfg := ServerConfig{
		Handler: func(req *Req) (Resp, error) {
			started <- struct{}{}
			<-release
			return Resp{Body: req.Body}, nil
		},
		MaxConnInflight: 1,
		Overload: func(op string) error {
			return core.ErrRetryAfter{Delay: 5 * time.Millisecond}
		},
	}
	_, addr := delayEchoServer(t, cfg)
	mc, err := DialMux(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	firstDone := make(chan error, 1)
	go func() {
		_, err := mc.Call("slow", nil, []byte("x"), nil)
		firstDone <- err
	}()
	<-started // the one inflight slot is now held

	// Second tagged call on the same connection: must shed immediately.
	_, err = mc.Call("slow", nil, nil, nil)
	var ra core.ErrRetryAfter
	if !errors.As(err, &ra) {
		t.Fatalf("want ErrRetryAfter, got %v", err)
	}
	if ra.Delay != 5*time.Millisecond {
		t.Fatalf("delay hint lost across the wire: %v", ra.Delay)
	}
	if !errors.Is(err, core.ErrRetryAfter{}) {
		t.Fatal("errors.Is class-match failed")
	}
	if !strings.Contains(err.Error(), "retry after") {
		t.Fatalf("unexpected message %q", err)
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("admitted call failed: %v", err)
	}
}
