package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"stdchk/internal/core"
	"stdchk/internal/faultpoint"
)

// fpWireSend injects transport failures into client-side sends (no-op
// unless armed; see internal/faultpoint). Grid tests use it to exercise
// the router's transient-failure retry path.
var fpWireSend = faultpoint.Register("wire.send")

// Shaper optionally wraps an accepted or dialed connection with traffic
// shaping (device models). A nil Shaper leaves connections unshaped.
type Shaper func(net.Conn) net.Conn

// connReadBufSize is the bufio read buffer applied to every connection so a
// frame's prefix+header reads don't each cost a syscall; bulk bodies larger
// than the buffer bypass it and read straight into their pooled buffer.
const connReadBufSize = 32 << 10

// Req is one inbound request. Body is backed by a pooled buffer owned by
// the server: it is valid until the response frame has been written, after
// which the server recycles it — handlers that retain the body past return
// (e.g. a store taking ownership of the chunk bytes) must call DisownBody.
type Req struct {
	Op   string
	Meta json.RawMessage
	Body []byte

	retained bool
}

// DisownBody transfers ownership of Body to the handler: the server will
// not return it to the buffer pool.
func (r *Req) DisownBody() { r.retained = true }

// Resp is a handler's reply.
type Resp struct {
	// Meta is marshalled into the response frame's metadata (nil omits it).
	Meta interface{}
	// Body is the bulk payload. It may alias the request body (the frame
	// is written before the request buffer is recycled).
	Body []byte
	// Recycle hands Body back to the wire buffer pool once the frame has
	// been written. Set it only for pool-backed buffers the handler owns —
	// never for a Body aliasing the request body or a store-internal slice.
	Recycle bool
}

// Handler processes one request. Returning an error sends it to the peer
// as a string; sentinel errors from package core survive the round trip
// (see RemoteError.Unwrap).
type Handler func(req *Req) (Resp, error)

// Server accepts framed-RPC connections and dispatches requests to a
// Handler. Each connection is served by one goroutine; requests on a
// connection are processed in order (the protocol is synchronous per
// connection, clients use pools for parallelism).
type Server struct {
	ln      net.Listener
	handler Handler
	shaper  Shaper

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts serving on ln. It returns immediately; the accept loop
// runs until Close.
func NewServer(ln net.Listener, handler Handler, shaper Shaper) *Server {
	s := &Server{
		ln:      ln,
		handler: handler,
		shaper:  shaper,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes all connections and waits for the serving
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(raw net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, raw)
		s.mu.Unlock()
		raw.Close()
	}()
	conn := raw
	if s.shaper != nil {
		conn = s.shaper(raw)
	}
	br := bufio.NewReaderSize(conn, connReadBufSize)
	var msg Msg
	for {
		if err := ReadInto(br, &msg); err != nil {
			return // peer gone or protocol error; drop the connection
		}
		req := Req{Op: msg.Op, Meta: msg.Meta, Body: msg.Body}
		hresp, herr := s.handler(&req)
		out := Msg{Op: msg.Op}
		if herr != nil {
			out.Err = herr.Error()
		} else {
			if hresp.Meta != nil {
				raw, merr := MarshalMeta(hresp.Meta)
				if merr != nil {
					out.Err = merr.Error()
				} else {
					out.Meta = raw
				}
			}
			if out.Err == "" {
				out.Body = hresp.Body
			}
		}
		werr := Write(conn, &out)
		if msg.Body != nil && !req.retained {
			PutBuf(msg.Body)
		}
		if hresp.Recycle && hresp.Body != nil {
			PutBuf(hresp.Body)
		}
		if werr != nil {
			return
		}
	}
}

// RemoteError is an error reported by a peer over the wire.
type RemoteError struct {
	Op  string
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return fmt.Sprintf("remote %s: %s", e.Op, e.Msg) }

// Unwrap maps well-known remote error strings back to the core sentinel
// errors so errors.Is works across the wire.
func (e *RemoteError) Unwrap() error {
	for _, sentinel := range []error{
		core.ErrNotFound, core.ErrNoSpace, core.ErrNoBenefactors,
		core.ErrNotCommitted, core.ErrAlreadyCommitted, core.ErrIntegrity,
		core.ErrBenefactorDown, core.ErrClosed, core.ErrQuorum,
		core.ErrNotOwner, core.ErrEpochMismatch,
	} {
		if strings.Contains(e.Msg, sentinel.Error()) {
			return sentinel
		}
	}
	return nil
}

// Conn is a client connection carrying synchronous request/response calls.
// It is safe for concurrent use; calls serialize on the connection.
type Conn struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	resp Msg // reused response frame; Body ownership passes to the caller
}

// Dial connects to addr and applies the optional shaper.
func Dial(addr string, shaper Shaper) (*Conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	conn := raw
	if shaper != nil {
		conn = shaper(raw)
	}
	return &Conn{conn: conn, br: bufio.NewReaderSize(conn, connReadBufSize)}, nil
}

// Call sends one request and waits for its response. respMeta, when
// non-nil, receives the decoded response metadata. The returned bytes are
// the response body; it is backed by a pooled buffer whose ownership
// passes to the caller (return it with PutBuf once consumed, or let the GC
// take it).
func (c *Conn) Call(op string, reqMeta interface{}, reqBody []byte, respMeta interface{}) ([]byte, error) {
	meta, err := MarshalMeta(reqMeta)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, core.ErrClosed
	}
	// Injectable transport failure (delay or error) before the request
	// leaves: the fault surfaces exactly like a network send failing.
	if err := fpWireSend.Hit(); err != nil {
		return nil, fmt.Errorf("wire: send %s: %w", op, err)
	}
	if err := Write(c.conn, &Msg{Op: op, Meta: meta, Body: reqBody}); err != nil {
		return nil, err
	}
	if err := ReadInto(c.br, &c.resp); err != nil {
		return nil, err
	}
	if c.resp.Err != "" {
		if c.resp.Body != nil {
			PutBuf(c.resp.Body)
		}
		return nil, &RemoteError{Op: op, Msg: c.resp.Err}
	}
	if respMeta != nil {
		if err := UnmarshalMeta(c.resp.Meta, respMeta); err != nil {
			if c.resp.Body != nil {
				PutBuf(c.resp.Body)
			}
			return nil, err
		}
	}
	return c.resp.Body, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Pool maintains reusable connections per remote address. Broken
// connections are discarded on error; callers just retry the Call.
type Pool struct {
	shaper Shaper

	mu    sync.Mutex
	idle  map[string][]*Conn
	total int
	limit int
}

// NewPool returns a pool applying shaper to every dialed connection.
// perAddrLimit caps idle connections kept per address (not total
// concurrency).
func NewPool(shaper Shaper, perAddrLimit int) *Pool {
	if perAddrLimit <= 0 {
		perAddrLimit = 8
	}
	return &Pool{shaper: shaper, idle: make(map[string][]*Conn), limit: perAddrLimit}
}

// Call performs one RPC against addr using a pooled connection. On
// transport errors the connection is discarded and the call retried once on
// a fresh connection. Response-body ownership matches Conn.Call.
func (p *Pool) Call(addr, op string, reqMeta interface{}, reqBody []byte, respMeta interface{}) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		conn, fresh, err := p.get(addr)
		if err != nil {
			return nil, err
		}
		body, err := conn.Call(op, reqMeta, reqBody, respMeta)
		if err == nil {
			p.put(addr, conn)
			return body, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			// Remote errors are application-level; the transport
			// completed the exchange, so the connection is reusable.
			p.put(addr, conn)
			return nil, err
		}
		conn.Close()
		if fresh || attempt >= 1 {
			return nil, err
		}
		// A stale pooled connection may have been closed by the peer;
		// retry once on a fresh dial.
	}
}

func (p *Pool) get(addr string) (conn *Conn, fresh bool, err error) {
	p.mu.Lock()
	conns := p.idle[addr]
	if len(conns) > 0 {
		conn = conns[len(conns)-1]
		p.idle[addr] = conns[:len(conns)-1]
		p.mu.Unlock()
		return conn, false, nil
	}
	p.mu.Unlock()
	conn, err = Dial(addr, p.shaper)
	if err != nil {
		return nil, true, err
	}
	return conn, true, nil
}

func (p *Pool) put(addr string, conn *Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle[addr]) >= p.limit {
		conn.Close()
		return
	}
	p.idle[addr] = append(p.idle[addr], conn)
}

// Close closes all idle connections.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, conns := range p.idle {
		for _, c := range conns {
			c.Close()
		}
	}
	p.idle = make(map[string][]*Conn)
}

// keep RemoteError usable with errors.As in this package's own retry logic.
var _ error = (*RemoteError)(nil)
