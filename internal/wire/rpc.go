package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"stdchk/internal/core"
	"stdchk/internal/faultpoint"
)

// fpWireSend injects transport failures into client-side sends (no-op
// unless armed; see internal/faultpoint). Grid tests use it to exercise
// the router's transient-failure retry path.
var fpWireSend = faultpoint.Register("wire.send")

// Shaper optionally wraps an accepted or dialed connection with traffic
// shaping (device models). A nil Shaper leaves connections unshaped.
type Shaper func(net.Conn) net.Conn

// connReadBufSize is the bufio read buffer applied to every connection so a
// frame's prefix+header reads don't each cost a syscall; bulk bodies larger
// than the buffer bypass it and read straight into their pooled buffer.
const connReadBufSize = 32 << 10

// Req is one inbound request. Body is backed by a pooled buffer owned by
// the server: it is valid until the response frame has been written, after
// which the server recycles it — handlers that retain the body past return
// (e.g. a store taking ownership of the chunk bytes) must call DisownBody.
type Req struct {
	Op   string
	Meta json.RawMessage
	Body []byte

	retained bool
}

// DisownBody transfers ownership of Body to the handler: the server will
// not return it to the buffer pool.
func (r *Req) DisownBody() { r.retained = true }

// Resp is a handler's reply.
type Resp struct {
	// Meta is marshalled into the response frame's metadata (nil omits it).
	Meta interface{}
	// Body is the bulk payload. It may alias the request body (the frame
	// is written before the request buffer is recycled).
	Body []byte
	// Recycle hands Body back to the wire buffer pool once the frame has
	// been written. Set it only for pool-backed buffers the handler owns —
	// never for a Body aliasing the request body or a store-internal slice.
	Recycle bool
}

// Handler processes one request. Returning an error sends it to the peer
// as a string; sentinel errors from package core survive the round trip
// (see RemoteError.Unwrap).
type Handler func(req *Req) (Resp, error)

// DefaultConnInflight is the per-connection cap on concurrently dispatched
// session-tagged requests when ServerConfig.MaxConnInflight is zero.
const DefaultConnInflight = 64

// ServerConfig parameterizes a Server beyond the handler: traffic shaping,
// the per-connection inflight bound for multiplexed sessions, and the
// overload hook that turns an over-budget frame into a typed rejection.
type ServerConfig struct {
	// Handler processes each request (required).
	Handler Handler
	// Shaper optionally wraps accepted connections (device models).
	Shaper Shaper
	// MaxConnInflight caps how many session-tagged requests one connection
	// may have dispatched concurrently. Zero means DefaultConnInflight.
	// Untagged requests are always serial and never counted.
	MaxConnInflight int
	// Overload, when non-nil, is consulted for a tagged frame arriving with
	// the inflight budget exhausted; its error is sent to the peer as the
	// rejection (typically a core.ErrRetryAfter). When nil, over-budget
	// frames fall back to serial in-order processing instead of shedding.
	Overload func(op string) error
}

// Server accepts framed-RPC connections and dispatches requests to a
// Handler. Untagged requests on a connection are processed in order (the
// classic synchronous protocol); session-tagged requests dispatch
// concurrently up to MaxConnInflight, with responses echoing the session
// ID so the client-side mux can demultiplex them.
type Server struct {
	ln       net.Listener
	handler  Handler
	shaper   Shaper
	inflight int
	overload func(op string) error

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts serving on ln. It returns immediately; the accept loop
// runs until Close.
func NewServer(ln net.Listener, handler Handler, shaper Shaper) *Server {
	return NewServerWithConfig(ln, ServerConfig{Handler: handler, Shaper: shaper})
}

// NewServerWithConfig starts serving on ln with explicit server options.
func NewServerWithConfig(ln net.Listener, cfg ServerConfig) *Server {
	if cfg.MaxConnInflight <= 0 {
		cfg.MaxConnInflight = DefaultConnInflight
	}
	s := &Server{
		ln:       ln,
		handler:  cfg.Handler,
		shaper:   cfg.Shaper,
		inflight: cfg.MaxConnInflight,
		overload: cfg.Overload,
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes all connections and waits for the serving
// goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(raw net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, raw)
		s.mu.Unlock()
		raw.Close()
	}()
	conn := raw
	if s.shaper != nil {
		conn = s.shaper(raw)
	}
	br := bufio.NewReaderSize(conn, connReadBufSize)
	// Tagged requests dispatch concurrently, so responses from dispatch
	// goroutines and the serial loop interleave on one socket: every frame
	// write serializes on wmu. sem bounds dispatched-but-unanswered tagged
	// requests; dispatched waits them out before the connection is torn
	// down so no goroutine writes to a closed-and-reused buffer.
	var (
		wmu        sync.Mutex
		dispatched sync.WaitGroup
	)
	sem := make(chan struct{}, s.inflight)
	defer dispatched.Wait()
	var msg Msg
	for {
		if err := ReadInto(br, &msg); err != nil {
			return // peer gone or protocol error; drop the connection
		}
		if msg.Session != 0 {
			select {
			case sem <- struct{}{}:
				// The dispatch goroutine takes over Meta and Body; detach
				// them so the next ReadInto cannot reuse their backing
				// arrays while the handler still reads them.
				m := msg
				msg.Meta, msg.Body = nil, nil
				dispatched.Add(1)
				go func() {
					defer dispatched.Done()
					defer func() { <-sem }()
					s.serveOne(conn, &wmu, &m)
				}()
				continue
			default:
				if s.overload != nil {
					// Budget exhausted: shed before touching the handler.
					if msg.Body != nil {
						PutBuf(msg.Body)
						msg.Body = nil
					}
					out := Msg{Op: msg.Op, Session: msg.Session, Err: s.overload(msg.Op).Error()}
					wmu.Lock()
					werr := Write(conn, &out)
					wmu.Unlock()
					if werr != nil {
						return
					}
					continue
				}
				// No shed policy: process in-line, which naturally stalls
				// the read loop until capacity frees (backpressure).
			}
		}
		if werr := s.serveOne(conn, &wmu, &msg); werr != nil {
			return
		}
	}
}

// serveOne runs the handler for one decoded request and writes its
// response frame (echoing the session tag), recycling the request body
// unless the handler retained it. The write lock serializes frames from
// concurrent dispatches.
func (s *Server) serveOne(conn net.Conn, wmu *sync.Mutex, msg *Msg) error {
	req := Req{Op: msg.Op, Meta: msg.Meta, Body: msg.Body}
	hresp, herr := s.handler(&req)
	out := Msg{Op: msg.Op, Session: msg.Session}
	if herr != nil {
		out.Err = herr.Error()
	} else {
		if hresp.Meta != nil {
			raw, merr := MarshalMeta(hresp.Meta)
			if merr != nil {
				out.Err = merr.Error()
			} else {
				out.Meta = raw
			}
		}
		if out.Err == "" {
			out.Body = hresp.Body
		}
	}
	wmu.Lock()
	werr := Write(conn, &out)
	wmu.Unlock()
	if msg.Body != nil && !req.retained {
		PutBuf(msg.Body)
	}
	if hresp.Recycle && hresp.Body != nil {
		PutBuf(hresp.Body)
	}
	return werr
}

// RemoteError is an error reported by a peer over the wire.
type RemoteError struct {
	Op  string
	Msg string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return fmt.Sprintf("remote %s: %s", e.Op, e.Msg) }

// Unwrap maps well-known remote error strings back to the core sentinel
// errors so errors.Is works across the wire. Admission-control rejections
// are parsed back into a typed core.ErrRetryAfter (before sentinel
// matching, so the server's delay hint survives the round trip).
func (e *RemoteError) Unwrap() error {
	if ra, ok := core.ParseRetryAfter(e.Msg); ok {
		return ra
	}
	for _, sentinel := range []error{
		core.ErrNotFound, core.ErrNoSpace, core.ErrNoBenefactors,
		core.ErrNotCommitted, core.ErrAlreadyCommitted, core.ErrIntegrity,
		core.ErrBenefactorDown, core.ErrClosed, core.ErrQuorum,
		core.ErrNotOwner, core.ErrEpochMismatch,
	} {
		if strings.Contains(e.Msg, sentinel.Error()) {
			return sentinel
		}
	}
	return nil
}

// Conn is a client connection carrying synchronous request/response calls.
// It is safe for concurrent use; calls serialize on the connection.
type Conn struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	resp Msg // reused response frame; Body ownership passes to the caller
}

// Dial connects to addr and applies the optional shaper.
func Dial(addr string, shaper Shaper) (*Conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	conn := raw
	if shaper != nil {
		conn = shaper(raw)
	}
	return &Conn{conn: conn, br: bufio.NewReaderSize(conn, connReadBufSize)}, nil
}

// Call sends one request and waits for its response. respMeta, when
// non-nil, receives the decoded response metadata. The returned bytes are
// the response body; it is backed by a pooled buffer whose ownership
// passes to the caller (return it with PutBuf once consumed, or let the GC
// take it).
func (c *Conn) Call(op string, reqMeta interface{}, reqBody []byte, respMeta interface{}) ([]byte, error) {
	meta, err := MarshalMeta(reqMeta)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, core.ErrClosed
	}
	// Injectable transport failure (delay or error) before the request
	// leaves: the fault surfaces exactly like a network send failing.
	if err := fpWireSend.Hit(); err != nil {
		return nil, fmt.Errorf("wire: send %s: %w", op, err)
	}
	if err := Write(c.conn, &Msg{Op: op, Meta: meta, Body: reqBody}); err != nil {
		return nil, err
	}
	if err := ReadInto(c.br, &c.resp); err != nil {
		return nil, err
	}
	if c.resp.Err != "" {
		if c.resp.Body != nil {
			PutBuf(c.resp.Body)
		}
		return nil, &RemoteError{Op: op, Msg: c.resp.Err}
	}
	if respMeta != nil {
		if err := UnmarshalMeta(c.resp.Meta, respMeta); err != nil {
			if c.resp.Body != nil {
				PutBuf(c.resp.Body)
			}
			return nil, err
		}
	}
	return c.resp.Body, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Pool maintains reusable connections per remote address. Broken
// connections are discarded on error; callers just retry the Call.
//
// A pool built with NewSharedPool runs in shared-connection (multiplexed)
// mode instead: a small fixed set of MuxConns per address carries every
// call concurrently, each tagged with a session ID. The Call signature is
// identical, so callers switch modes at construction only.
type Pool struct {
	shaper Shaper

	mu    sync.Mutex
	idle  map[string][]*Conn
	total int
	limit int

	mux      bool
	muxConns map[string][]*MuxConn
	rr       map[string]int
}

// NewPool returns a pool applying shaper to every dialed connection.
// perAddrLimit caps idle connections kept per address (not total
// concurrency).
func NewPool(shaper Shaper, perAddrLimit int) *Pool {
	if perAddrLimit <= 0 {
		perAddrLimit = 8
	}
	return &Pool{shaper: shaper, idle: make(map[string][]*Conn), limit: perAddrLimit}
}

// NewSharedPool returns a pool in shared-connection mode: up to
// perAddrConns multiplexed connections per address carry all calls, with
// session-tagged frames demultiplexed by a per-connection reader. This is
// the million-writer topology — concurrency no longer implies socket
// count.
func NewSharedPool(shaper Shaper, perAddrConns int) *Pool {
	if perAddrConns <= 0 {
		perAddrConns = 2
	}
	return &Pool{
		shaper:   shaper,
		idle:     make(map[string][]*Conn),
		limit:    perAddrConns,
		mux:      true,
		muxConns: make(map[string][]*MuxConn),
		rr:       make(map[string]int),
	}
}

// Shared reports whether the pool runs in shared-connection mode.
func (p *Pool) Shared() bool { return p.mux }

// Call performs one RPC against addr using a pooled connection. On
// transport errors the connection is discarded and the call retried once on
// a fresh connection. Response-body ownership matches Conn.Call.
func (p *Pool) Call(addr, op string, reqMeta interface{}, reqBody []byte, respMeta interface{}) ([]byte, error) {
	if p.mux {
		return p.muxCall(addr, op, reqMeta, reqBody, respMeta)
	}
	for attempt := 0; ; attempt++ {
		conn, fresh, err := p.get(addr)
		if err != nil {
			return nil, err
		}
		body, err := conn.Call(op, reqMeta, reqBody, respMeta)
		if err == nil {
			p.put(addr, conn)
			return body, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			// Remote errors are application-level; the transport
			// completed the exchange, so the connection is reusable.
			p.put(addr, conn)
			return nil, err
		}
		conn.Close()
		if fresh || attempt >= 1 {
			return nil, err
		}
		// A stale pooled connection may have been closed by the peer;
		// retry once on a fresh dial.
	}
}

func (p *Pool) get(addr string) (conn *Conn, fresh bool, err error) {
	p.mu.Lock()
	conns := p.idle[addr]
	if len(conns) > 0 {
		conn = conns[len(conns)-1]
		p.idle[addr] = conns[:len(conns)-1]
		p.mu.Unlock()
		return conn, false, nil
	}
	p.mu.Unlock()
	conn, err = Dial(addr, p.shaper)
	if err != nil {
		return nil, true, err
	}
	return conn, true, nil
}

// muxCall routes one RPC over a shared multiplexed connection, retrying
// once on a fresh connection when a pooled one turns out broken. Remote
// errors — including retry-after sheds — are answers, not transport
// faults, and return immediately.
func (p *Pool) muxCall(addr, op string, reqMeta interface{}, reqBody []byte, respMeta interface{}) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		mc, fresh, err := p.muxGet(addr)
		if err != nil {
			return nil, err
		}
		body, err := mc.Call(op, reqMeta, reqBody, respMeta)
		if err == nil {
			return body, nil
		}
		var remote *RemoteError
		if errors.As(err, &remote) {
			return nil, err
		}
		p.muxEvict(addr, mc)
		if fresh || attempt >= 1 {
			return nil, err
		}
	}
}

// muxGet picks a live shared connection for addr round-robin, dialing new
// ones until the per-address budget is full.
func (p *Pool) muxGet(addr string) (mc *MuxConn, fresh bool, err error) {
	p.mu.Lock()
	if p.muxConns == nil { // pool closed
		p.mu.Unlock()
		return nil, true, core.ErrClosed
	}
	conns := p.muxConns[addr]
	// Prune broken connections eagerly so the budget refills with live
	// ones rather than round-robining onto known-dead sockets.
	live := conns[:0]
	for _, c := range conns {
		if c.broken() {
			c.Close()
			continue
		}
		live = append(live, c)
	}
	p.muxConns[addr] = live
	if len(live) >= p.limit {
		i := p.rr[addr] % len(live)
		p.rr[addr] = i + 1
		mc = live[i]
		p.mu.Unlock()
		return mc, false, nil
	}
	p.mu.Unlock()
	mc, err = DialMux(addr, p.shaper)
	if err != nil {
		return nil, true, err
	}
	p.mu.Lock()
	if p.muxConns == nil { // pool closed while dialing
		p.mu.Unlock()
		mc.Close()
		return nil, true, core.ErrClosed
	}
	p.muxConns[addr] = append(p.muxConns[addr], mc)
	p.mu.Unlock()
	return mc, true, nil
}

// muxEvict drops a broken shared connection from the per-address set.
func (p *Pool) muxEvict(addr string, mc *MuxConn) {
	p.mu.Lock()
	conns := p.muxConns[addr]
	for i, c := range conns {
		if c == mc {
			p.muxConns[addr] = append(conns[:i], conns[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	mc.Close()
}

func (p *Pool) put(addr string, conn *Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle[addr]) >= p.limit {
		conn.Close()
		return
	}
	p.idle[addr] = append(p.idle[addr], conn)
}

// Close closes all idle and shared connections.
func (p *Pool) Close() {
	p.mu.Lock()
	for _, conns := range p.idle {
		for _, c := range conns {
			c.Close()
		}
	}
	p.idle = make(map[string][]*Conn)
	shared := p.muxConns
	if p.mux {
		p.muxConns = nil // reject post-Close dials in muxGet
	}
	p.mu.Unlock()
	for _, conns := range shared {
		for _, c := range conns {
			c.Close()
		}
	}
}

// keep RemoteError usable with errors.As in this package's own retry logic.
var _ error = (*RemoteError)(nil)
