package wire

import (
	"math/rand"
	"net"
	"testing"
	"time"
)

// TestServerSurvivesGarbageConnections throws malformed bytes at a server:
// the offending connections must be dropped without taking the server (or
// other clients) down.
func TestServerSurvivesGarbageConnections(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, func(req *Req) (Resp, error) {
		return Resp{Body: req.Body}, nil
	}, nil)
	defer srv.Close()

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 16; i++ {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, rng.Intn(2048)+1)
		rng.Read(junk)
		conn.Write(junk)
		conn.Close()
	}
	// Frames claiming absurd lengths.
	for _, prefix := range [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, '{', '}'},
		{0, 0, 0, 0},
	} {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(prefix)
		conn.Close()
	}
	time.Sleep(50 * time.Millisecond)

	// A well-formed client still gets service.
	c, err := Dial(srv.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	body, err := c.Call("echo", nil, []byte("still alive"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "still alive" {
		t.Fatalf("body = %q", body)
	}
}

// TestReadGarbageNeverPanics fuzzes the frame decoder with random bytes.
func TestReadGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		junk := make([]byte, rng.Intn(256))
		rng.Read(junk)
		// Cap the claimed lengths so ReadFull fails fast instead of
		// allocating: the decoder itself enforces the caps.
		r := &capReader{data: junk}
		_, _ = Read(r) // must not panic
	}
}

type capReader struct{ data []byte }

func (c *capReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, net.ErrClosed
	}
	n := copy(p, c.data)
	c.data = c.data[n:]
	return n, nil
}
