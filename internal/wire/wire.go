// Package wire implements the framed message protocol spoken between
// stdchk components (client ↔ manager, client ↔ benefactor, benefactor ↔
// manager, benefactor ↔ benefactor for replication).
//
// A message is a small JSON control header plus an optional raw body for
// bulk chunk data:
//
//	[4-byte big-endian header length][header JSON]
//	[8-byte big-endian body length][body bytes]
//
// Control metadata stays human-debuggable while chunk payloads move as raw
// bytes without re-encoding.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

const (
	// MaxHeaderLen bounds the JSON control header.
	MaxHeaderLen = 1 << 20
	// MaxBodyLen bounds a bulk body (a chunk plus slack).
	MaxBodyLen = 256 << 20
)

// Errors returned by the codec.
var (
	ErrHeaderTooLarge = errors.New("wire: header exceeds limit")
	ErrBodyTooLarge   = errors.New("wire: body exceeds limit")
)

// Msg is one framed message. For requests, Op names the operation and Meta
// carries its parameters; for responses, Op is echoed, Err carries a
// remote error (empty on success) and Meta carries the result.
type Msg struct {
	Op   string          `json:"op"`
	Err  string          `json:"err,omitempty"`
	Meta json.RawMessage `json:"meta,omitempty"`
	Body []byte          `json:"-"`
}

// header is the wire form of the JSON control portion.
type header struct {
	Op   string          `json:"op"`
	Err  string          `json:"err,omitempty"`
	Meta json.RawMessage `json:"meta,omitempty"`
}

// Write frames and writes m to w.
func Write(w io.Writer, m *Msg) error {
	hb, err := json.Marshal(header{Op: m.Op, Err: m.Err, Meta: m.Meta})
	if err != nil {
		return fmt.Errorf("wire: marshal header: %w", err)
	}
	if len(hb) > MaxHeaderLen {
		return ErrHeaderTooLarge
	}
	if int64(len(m.Body)) > MaxBodyLen {
		return ErrBodyTooLarge
	}
	var pre [12]byte
	binary.BigEndian.PutUint32(pre[0:4], uint32(len(hb)))
	binary.BigEndian.PutUint64(pre[4:12], uint64(len(m.Body)))
	if _, err := w.Write(pre[:]); err != nil {
		return fmt.Errorf("wire: write frame prefix: %w", err)
	}
	if _, err := w.Write(hb); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if len(m.Body) > 0 {
		if _, err := w.Write(m.Body); err != nil {
			return fmt.Errorf("wire: write body: %w", err)
		}
	}
	return nil
}

// Read reads one framed message from r.
func Read(r io.Reader) (*Msg, error) {
	var pre [12]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read frame prefix: %w", err)
	}
	hlen := binary.BigEndian.Uint32(pre[0:4])
	blen := binary.BigEndian.Uint64(pre[4:12])
	if hlen > MaxHeaderLen {
		return nil, ErrHeaderTooLarge
	}
	if blen > MaxBodyLen {
		return nil, ErrBodyTooLarge
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(r, hb); err != nil {
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	var h header
	if err := json.Unmarshal(hb, &h); err != nil {
		return nil, fmt.Errorf("wire: decode header: %w", err)
	}
	m := &Msg{Op: h.Op, Err: h.Err, Meta: h.Meta}
	if blen > 0 {
		m.Body = make([]byte, blen)
		if _, err := io.ReadFull(r, m.Body); err != nil {
			return nil, fmt.Errorf("wire: read body: %w", err)
		}
	}
	return m, nil
}

// MarshalMeta encodes v as a message's Meta field.
func MarshalMeta(v interface{}) (json.RawMessage, error) {
	if v == nil {
		return nil, nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal meta: %w", err)
	}
	return b, nil
}

// UnmarshalMeta decodes a message's Meta field into v. A nil Meta leaves v
// untouched.
func UnmarshalMeta(raw json.RawMessage, v interface{}) error {
	if len(raw) == 0 {
		return nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("wire: decode meta: %w", err)
	}
	return nil
}
