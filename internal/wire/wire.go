// Package wire implements the framed message protocol spoken between
// stdchk components (client ↔ manager, client ↔ benefactor, benefactor ↔
// manager, benefactor ↔ benefactor for replication).
//
// A message is a small JSON control header plus an optional raw body for
// bulk chunk data:
//
//	[4-byte big-endian header length][header JSON]
//	[8-byte big-endian body length][body bytes]
//
// Control metadata stays human-debuggable while chunk payloads move as raw
// bytes without re-encoding.
//
// The codec is allocation-conscious: frame prefixes and headers are
// marshalled into pooled scratch buffers, a frame with a body is written
// with one vectored net.Buffers write (a single writev on TCP) instead of
// three Write calls, and message bodies are read into pooled buffers that
// callers hand back with PutBuf once consumed.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
)

const (
	// MaxHeaderLen bounds the JSON control header.
	MaxHeaderLen = 1 << 20
	// MaxBodyLen bounds a bulk body (a chunk plus slack).
	MaxBodyLen = 256 << 20
)

// Errors returned by the codec.
var (
	ErrHeaderTooLarge = errors.New("wire: header exceeds limit")
	ErrBodyTooLarge   = errors.New("wire: body exceeds limit")
)

// Msg is one framed message. For requests, Op names the operation and Meta
// carries its parameters; for responses, Op is echoed, Err carries a
// remote error (empty on success) and Meta carries the result.
//
// Session, when non-zero, tags the frame with a multiplexing session ID:
// many logical sessions share one connection, requests carry the ID, and
// responses echo it so the client-side demux can route each reply to its
// waiter. Zero means "untagged" — the classic one-outstanding-call
// protocol — and is omitted from the wire form entirely, so old peers and
// new peers interoperate frame-for-frame.
type Msg struct {
	Op      string          `json:"op"`
	Err     string          `json:"err,omitempty"`
	Session uint64          `json:"sid,omitempty"`
	Meta    json.RawMessage `json:"meta,omitempty"`
	Body    []byte          `json:"-"`
}

// header is the wire form of the JSON control portion.
type header struct {
	Op   string          `json:"op"`
	Err  string          `json:"err,omitempty"`
	Sid  uint64          `json:"sid,omitempty"`
	Meta json.RawMessage `json:"meta,omitempty"`
}

// bufClassSizes are the capacities of the shared buffer pool's size
// classes: control headers/metas, medium frames, and full chunk bodies
// (1 MB default chunk plus frame slack). Larger requests fall through to
// plain allocation.
var bufClassSizes = [...]int{4 << 10, 64 << 10, (1 << 20) + (64 << 10)}

var bufPools [len(bufClassSizes)]sync.Pool

// wrapPool recycles the *[]byte boxes that carry slices through bufPools,
// so PutBuf itself does not allocate in steady state.
var wrapPool = sync.Pool{New: func() interface{} { return new([]byte) }}

// GetBuf returns a length-n byte slice, reusing a pooled buffer when one of
// the size classes covers n. Hand the slice back with PutBuf when done.
func GetBuf(n int) []byte {
	for i, size := range bufClassSizes {
		if n <= size {
			if v := bufPools[i].Get(); v != nil {
				w := v.(*[]byte)
				b := *w
				*w = nil
				wrapPool.Put(w)
				return b[:n]
			}
			return make([]byte, n, size)
		}
	}
	return make([]byte, n)
}

// PutBuf returns a buffer obtained from GetBuf (or any other slice no one
// else retains) to the pool. The caller must not touch b afterwards.
func PutBuf(b []byte) {
	c := cap(b)
	if c > bufClassSizes[len(bufClassSizes)-1] {
		// Larger than any class: GetBuf would never hand it out for a
		// same-size request (oversized reads fall through to plain
		// allocation), so pooling it would only pin the memory.
		return
	}
	for i := len(bufClassSizes) - 1; i >= 0; i-- {
		if c >= bufClassSizes[i] {
			w := wrapPool.Get().(*[]byte)
			*w = b[:0]
			bufPools[i].Put(w)
			return
		}
	}
	// Below the smallest class: not worth pooling.
}

// frameEncoder is pooled per-Write scratch: the 12-byte prefix and the JSON
// header are built in buf so the control portion goes out as one slice, and
// the vectored-write slice header is recycled with it.
type frameEncoder struct {
	buf  []byte
	vecs net.Buffers
}

var encPool = sync.Pool{New: func() interface{} {
	return &frameEncoder{buf: make([]byte, 0, 512), vecs: make(net.Buffers, 0, 2)}
}}

// appendJSONString appends s as a JSON string literal (quoted, with the
// escapes JSON requires; multi-byte UTF-8 passes through raw, which JSON
// allows).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c >= 0x20:
			dst = append(dst, c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c == '\t':
			dst = append(dst, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(dst, '"')
}

// appendHeader marshals the control header by hand — the shape is a flat
// three-field object, and building it directly into the pooled scratch
// keeps encoding/json (and its per-call scanner state) off the hot path.
func appendHeader(dst []byte, m *Msg) []byte {
	dst = append(dst, `{"op":`...)
	dst = appendJSONString(dst, m.Op)
	if m.Err != "" {
		dst = append(dst, `,"err":`...)
		dst = appendJSONString(dst, m.Err)
	}
	if m.Session != 0 {
		dst = append(dst, `,"sid":`...)
		dst = strconv.AppendUint(dst, m.Session, 10)
	}
	if len(m.Meta) > 0 {
		dst = append(dst, `,"meta":`...)
		dst = append(dst, m.Meta...)
	}
	return append(dst, '}')
}

// Write frames and writes m to w. A frame with a body is emitted as one
// vectored write (net.Buffers), which becomes a single writev syscall on
// TCP connections and two plain writes on wrapped (shaped) ones.
func Write(w io.Writer, m *Msg) error {
	if int64(len(m.Body)) > MaxBodyLen {
		return ErrBodyTooLarge
	}
	fe := encPool.Get().(*frameEncoder)
	defer encPool.Put(fe)
	frame := append(fe.buf[:0], zeroPrefix[:]...)
	frame = appendHeader(frame, m)
	fe.buf = frame
	hlen := len(frame) - 12
	if hlen > MaxHeaderLen {
		return ErrHeaderTooLarge
	}
	binary.BigEndian.PutUint32(frame[0:4], uint32(hlen))
	binary.BigEndian.PutUint64(frame[4:12], uint64(len(m.Body)))
	if len(m.Body) == 0 {
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("wire: write frame: %w", err)
		}
		return nil
	}
	fe.vecs = append(fe.vecs[:0], frame, m.Body)
	vecs := fe.vecs // WriteTo advances its receiver; keep fe.vecs anchored
	_, err := vecs.WriteTo(w)
	fe.vecs[0], fe.vecs[1] = nil, nil // drop the body reference before pooling
	fe.vecs = fe.vecs[:0]
	if err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// Read reads one framed message from r. The returned message's Body is
// backed by a pooled buffer: ownership passes to the caller, who should
// return it with PutBuf once consumed (or let the GC take it).
func Read(r io.Reader) (*Msg, error) {
	m := &Msg{}
	if err := ReadInto(r, m); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadInto reads one framed message into m, overwriting its fields. It is
// the reuse-friendly form of Read: callers that loop over frames can reuse
// one Msg. Body ownership is the same as Read's.
func ReadInto(r io.Reader, m *Msg) error {
	var pre [12]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("wire: read frame prefix: %w", err)
	}
	hlen := binary.BigEndian.Uint32(pre[0:4])
	blen := binary.BigEndian.Uint64(pre[4:12])
	if hlen > MaxHeaderLen {
		return ErrHeaderTooLarge
	}
	if blen > MaxBodyLen {
		return ErrBodyTooLarge
	}
	hb := GetBuf(int(hlen))
	if _, err := io.ReadFull(r, hb); err != nil {
		PutBuf(hb)
		return fmt.Errorf("wire: read header: %w", err)
	}
	err := decodeHeader(hb, m)
	PutBuf(hb) // the decoder copies what it keeps, so hb is free
	if err != nil {
		return fmt.Errorf("wire: decode header: %w", err)
	}
	m.Body = nil
	if blen > 0 {
		body := GetBuf(int(blen))
		if _, err := io.ReadFull(r, body); err != nil {
			PutBuf(body)
			return fmt.Errorf("wire: read body: %w", err)
		}
		m.Body = body
	}
	return nil
}

var zeroPrefix [12]byte

// decodeHeader parses the flat control-header object into m, reusing
// m.Meta's capacity for the copied raw metadata. It hand-parses the shape
// this package's encoder emits and falls back to encoding/json for
// anything else (escaped strings, unknown fields, reordered keys), so any
// valid JSON header still decodes.
func decodeHeader(hb []byte, m *Msg) error {
	op, errStr, meta, sid, ok := scanHeader(hb)
	if !ok {
		var h header
		if err := json.Unmarshal(hb, &h); err != nil {
			return err
		}
		m.Op, m.Err, m.Session, m.Meta = h.Op, h.Err, h.Sid, h.Meta
		return nil
	}
	m.Op = string(op)
	m.Err = string(errStr)
	m.Session = sid
	if len(meta) > 0 {
		m.Meta = append(m.Meta[:0], meta...)
	} else {
		m.Meta = nil
	}
	return nil
}

// scanHeader is the allocation-free fast path for the canonical header
// shape: a flat object with unescaped "op"/"err" strings, a numeric "sid"
// and a "meta" raw value. ok=false means "use the full JSON decoder", not
// "invalid".
func scanHeader(b []byte) (op, errStr, meta []byte, sid uint64, ok bool) {
	i := skipSpace(b, 0)
	if i >= len(b) || b[i] != '{' {
		return nil, nil, nil, 0, false
	}
	i = skipSpace(b, i+1)
	if i < len(b) && b[i] == '}' {
		return nil, nil, nil, 0, true // empty header object
	}
	for {
		key, rest, kok := scanPlainString(b, i)
		if !kok {
			return nil, nil, nil, 0, false
		}
		i = skipSpace(b, rest)
		if i >= len(b) || b[i] != ':' {
			return nil, nil, nil, 0, false
		}
		i = skipSpace(b, i+1)
		switch string(key) {
		case "op":
			v, rest, vok := scanPlainString(b, i)
			if !vok {
				return nil, nil, nil, 0, false
			}
			op, i = v, rest
		case "err":
			v, rest, vok := scanPlainString(b, i)
			if !vok {
				return nil, nil, nil, 0, false
			}
			errStr, i = v, rest
		case "sid":
			v, rest, vok := scanUint(b, i)
			if !vok {
				return nil, nil, nil, 0, false
			}
			sid, i = v, rest
		case "meta":
			end, vok := scanValue(b, i)
			if !vok {
				return nil, nil, nil, 0, false
			}
			meta, i = b[i:end], end
		default:
			return nil, nil, nil, 0, false
		}
		i = skipSpace(b, i)
		if i >= len(b) {
			return nil, nil, nil, 0, false
		}
		if b[i] == '}' {
			if skipSpace(b, i+1) != len(b) {
				return nil, nil, nil, 0, false
			}
			return op, errStr, meta, sid, true
		}
		if b[i] != ',' {
			return nil, nil, nil, 0, false
		}
		i = skipSpace(b, i+1)
	}
}

// scanUint scans an unsigned decimal JSON number. Signs, fractions and
// exponents defer to the full decoder.
func scanUint(b []byte, i int) (v uint64, rest int, ok bool) {
	j := i
	for j < len(b) && b[j] >= '0' && b[j] <= '9' {
		d := uint64(b[j] - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, 0, false // overflow: let encoding/json report it
		}
		v = v*10 + d
		j++
	}
	if j == i {
		return 0, 0, false
	}
	return v, j, true
}

func skipSpace(b []byte, i int) int {
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\n' || b[i] == '\r') {
		i++
	}
	return i
}

// scanPlainString scans a JSON string with no escapes, returning its
// contents. Any backslash defers to the full decoder.
func scanPlainString(b []byte, i int) (s []byte, rest int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, 0, false
	}
	for j := i + 1; j < len(b); j++ {
		switch b[j] {
		case '\\':
			return nil, 0, false
		case '"':
			return b[i+1 : j], j + 1, true
		}
	}
	return nil, 0, false
}

// scanValue returns the end offset of the JSON value starting at i,
// honouring nesting and strings (with escapes).
func scanValue(b []byte, i int) (end int, ok bool) {
	if i >= len(b) {
		return 0, false
	}
	switch b[i] {
	case '{', '[':
		depth := 0
		for j := i; j < len(b); j++ {
			switch b[j] {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
				if depth == 0 {
					return j + 1, true
				}
			case '"':
				strEnd, sok := scanStringAny(b, j)
				if !sok {
					return 0, false
				}
				j = strEnd - 1
			}
		}
		return 0, false
	case '"':
		return scanStringAny(b, i)
	default:
		j := i
		for j < len(b) {
			c := b[j]
			if c == ',' || c == '}' || c == ']' || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				break
			}
			j++
		}
		if j == i {
			return 0, false
		}
		return j, true
	}
}

// scanStringAny scans a JSON string allowing escapes, returning the offset
// just past the closing quote.
func scanStringAny(b []byte, i int) (end int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return 0, false
	}
	for j := i + 1; j < len(b); j++ {
		switch b[j] {
		case '\\':
			j++ // skip the escaped byte
		case '"':
			return j + 1, true
		}
	}
	return 0, false
}

// MarshalMeta encodes v as a message's Meta field.
func MarshalMeta(v interface{}) (json.RawMessage, error) {
	if v == nil {
		return nil, nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal meta: %w", err)
	}
	return b, nil
}

// UnmarshalMeta decodes a message's Meta field into v. A nil Meta leaves v
// untouched.
func UnmarshalMeta(raw json.RawMessage, v interface{}) error {
	if len(raw) == 0 {
		return nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return fmt.Errorf("wire: decode meta: %w", err)
	}
	return nil
}
