package wire

import (
	"bytes"
	"testing"
)

// BenchmarkWireFrame measures one framed request round-trip through the
// codec (Write then ReadInto) with a 1 MB chunk body — the shape of every
// BPut on the client→benefactor hot path. The consumer returns the body
// buffer to the pool, as the server and pooled clients do, so the number
// reflects the steady state.
func BenchmarkWireFrame(b *testing.B) {
	body := make([]byte, 1<<20)
	for i := range body {
		body[i] = byte(i)
	}
	msg := &Msg{Op: "b.put", Meta: []byte(`{"id":"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"}`), Body: body}
	var buf bytes.Buffer
	var got Msg
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := Write(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if err := ReadInto(&buf, &got); err != nil {
			b.Fatal(err)
		}
		if len(got.Body) != len(body) {
			b.Fatalf("body length %d", len(got.Body))
		}
		PutBuf(got.Body)
	}
}
