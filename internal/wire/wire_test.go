package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"stdchk/internal/core"
)

func TestMsgRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		msg  Msg
	}{
		{"op only", Msg{Op: "ping"}},
		{"with meta", Msg{Op: "put", Meta: json.RawMessage(`{"x":1}`)}},
		{"with body", Msg{Op: "put", Body: []byte("chunk data")}},
		{"error response", Msg{Op: "get", Err: "not found"}},
		{"everything", Msg{Op: "x", Err: "e", Meta: json.RawMessage(`[1,2]`), Body: []byte{0, 1, 2}}},
		{"empty body slice", Msg{Op: "x", Body: []byte{}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Write(&buf, &tt.msg); err != nil {
				t.Fatal(err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.Op != tt.msg.Op || got.Err != tt.msg.Err {
				t.Fatalf("got %+v, want %+v", got, tt.msg)
			}
			if string(got.Meta) != string(tt.msg.Meta) {
				t.Fatalf("meta %q, want %q", got.Meta, tt.msg.Meta)
			}
			if len(tt.msg.Body) > 0 && !bytes.Equal(got.Body, tt.msg.Body) {
				t.Fatalf("body %q, want %q", got.Body, tt.msg.Body)
			}
		})
	}
}

func TestMsgRoundTripQuick(t *testing.T) {
	f := func(op string, body []byte) bool {
		var buf bytes.Buffer
		if err := Write(&buf, &Msg{Op: op, Body: body}); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Op != op {
			return false
		}
		return bytes.Equal(got.Body, body) || (len(body) == 0 && len(got.Body) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsOversizedFrames(t *testing.T) {
	var buf bytes.Buffer
	// Forge a prefix claiming a huge header.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0})
	if _, err := Read(&buf); !errors.Is(err, ErrHeaderTooLarge) {
		t.Fatalf("got %v, want ErrHeaderTooLarge", err)
	}
	buf.Reset()
	// Tiny header, huge body.
	buf.Write([]byte{0, 0, 0, 2})
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	buf.WriteString("{}")
	if _, err := Read(&buf); !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("got %v, want ErrBodyTooLarge", err)
	}
}

func TestReadTruncatedStream(t *testing.T) {
	var full bytes.Buffer
	if err := Write(&full, &Msg{Op: "op", Body: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	for cut := 1; cut < len(raw); cut += 3 {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes went unnoticed", cut)
		}
	}
}

func TestMetaHelpers(t *testing.T) {
	type payload struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	raw, err := MarshalMeta(payload{A: 7, B: "x"})
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := UnmarshalMeta(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.A != 7 || got.B != "x" {
		t.Fatalf("round trip got %+v", got)
	}
	if raw, err := MarshalMeta(nil); err != nil || raw != nil {
		t.Fatal("MarshalMeta(nil) should be nil,nil")
	}
	if err := UnmarshalMeta(nil, &got); err != nil {
		t.Fatal("UnmarshalMeta(nil) should be a no-op")
	}
}

func echoServer(t *testing.T) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln, func(req *Req) (Resp, error) {
		switch req.Op {
		case "echo":
			return Resp{Meta: json.RawMessage(req.Meta), Body: req.Body}, nil
		case "fail":
			return Resp{}, fmt.Errorf("boom: %w", core.ErrNotFound)
		default:
			return Resp{}, fmt.Errorf("unknown op %q", req.Op)
		}
	}, nil)
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addr()
}

func TestRPCEcho(t *testing.T) {
	_, addr := echoServer(t)
	conn, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var respMeta map[string]int
	body, err := conn.Call("echo", map[string]int{"n": 42}, []byte("bulk"), &respMeta)
	if err != nil {
		t.Fatal(err)
	}
	if respMeta["n"] != 42 {
		t.Fatalf("meta round trip got %v", respMeta)
	}
	if string(body) != "bulk" {
		t.Fatalf("body round trip got %q", body)
	}
}

func TestRPCRemoteErrorSentinel(t *testing.T) {
	_, addr := echoServer(t)
	conn, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	_, err = conn.Call("fail", nil, nil, nil)
	if err == nil {
		t.Fatal("expected remote error")
	}
	if !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("sentinel lost across the wire: %v", err)
	}
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Op != "fail" {
		t.Fatalf("want RemoteError for op fail, got %#v", err)
	}
}

func TestRPCConcurrentCallsOneConn(t *testing.T) {
	_, addr := echoServer(t)
	conn, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("payload-%d", i))
			body, err := conn.Call("echo", nil, payload, nil)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(body, payload) {
				errs <- fmt.Errorf("mismatched response %q for %q", body, payload)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPoolReusesAndRetries(t *testing.T) {
	_, addr := echoServer(t)
	pool := NewPool(nil, 4)
	defer pool.Close()

	for i := 0; i < 10; i++ {
		body, err := pool.Call(addr, "echo", nil, []byte("x"), nil)
		if err != nil {
			t.Fatal(err)
		}
		if string(body) != "x" {
			t.Fatalf("bad body %q", body)
		}
	}
	// Remote errors must keep the connection pooled and not be retried.
	if _, err := pool.Call(addr, "fail", nil, nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestPoolRetriesStaleConnection(t *testing.T) {
	srv, addr := echoServer(t)
	pool := NewPool(nil, 4)
	defer pool.Close()

	if _, err := pool.Call(addr, "echo", nil, []byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the same address so the pooled conn is stale.
	srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := NewServer(ln, func(req *Req) (Resp, error) {
		return Resp{Body: req.Body}, nil
	}, nil)
	defer srv2.Close()

	if _, err := pool.Call(addr, "echo", nil, []byte("b"), nil); err != nil {
		t.Fatalf("pool did not recover from stale connection: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := echoServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConnCallAfterClose(t *testing.T) {
	_, addr := echoServer(t)
	conn, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := conn.Call("echo", nil, nil, nil); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}
