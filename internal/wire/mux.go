package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"stdchk/internal/core"
)

// MuxConn is a multiplexed client connection: many goroutines issue calls
// concurrently over one socket, each request tagged with a fresh session
// ID and a reader goroutine routing every reply to its waiter. Compared
// to Conn — which serializes calls on a mutex — a MuxConn keeps many
// requests in flight at once, which is how millions of logical client
// sessions share a small number of manager connections.
//
// A transport error is sticky: it fails every pending and future call,
// and the owner (normally a shared Pool) replaces the connection.
type MuxConn struct {
	conn net.Conn
	wmu  sync.Mutex // serializes request frames onto the socket

	mu      sync.Mutex
	calls   map[uint64]chan muxReply
	nextSid uint64
	err     error // sticky transport error; set once

	readerDone chan struct{}
}

// muxReply carries one demultiplexed response (or the connection's fatal
// error) to its waiting caller.
type muxReply struct {
	msg Msg
	err error
}

// DialMux connects to addr and starts the reply-demux reader.
func DialMux(addr string, shaper Shaper) (*MuxConn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	conn := raw
	if shaper != nil {
		conn = shaper(raw)
	}
	c := &MuxConn{
		conn:       conn,
		calls:      make(map[uint64]chan muxReply),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop demultiplexes response frames to waiting callers by session ID
// until the connection dies, then fails every pending call.
func (c *MuxConn) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReaderSize(c.conn, connReadBufSize)
	for {
		// A fresh Msg per frame: Meta and Body ownership pass to the
		// waiter, so the loop must not reuse their backing arrays.
		var m Msg
		if err := ReadInto(br, &m); err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.calls[m.Session]
		delete(c.calls, m.Session)
		c.mu.Unlock()
		if ch == nil {
			// Stray or duplicate session tag; drop the frame.
			if m.Body != nil {
				PutBuf(m.Body)
			}
			continue
		}
		ch <- muxReply{msg: m}
	}
}

// fail records the sticky error, closes the socket and unblocks every
// pending caller with the failure.
func (c *MuxConn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.calls
	c.calls = make(map[uint64]chan muxReply)
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range pending {
		ch <- muxReply{err: err}
	}
}

// Call sends one request and waits for its demultiplexed response. It is
// safe — and intended — to call concurrently; requests interleave on the
// wire and responses may arrive in any order. Response-body ownership
// matches Conn.Call: the returned slice is pooled and passes to the
// caller.
func (c *MuxConn) Call(op string, reqMeta interface{}, reqBody []byte, respMeta interface{}) ([]byte, error) {
	meta, err := MarshalMeta(reqMeta)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextSid++
	sid := c.nextSid
	ch := make(chan muxReply, 1)
	c.calls[sid] = ch
	c.mu.Unlock()

	// Injectable transport failure, as in Conn.Call: the fault surfaces
	// exactly like a network send failing.
	if err := fpWireSend.Hit(); err != nil {
		c.abandon(sid)
		return nil, fmt.Errorf("wire: send %s: %w", op, err)
	}
	c.wmu.Lock()
	werr := Write(c.conn, &Msg{Op: op, Session: sid, Meta: meta, Body: reqBody})
	c.wmu.Unlock()
	if werr != nil {
		c.abandon(sid)
		c.fail(werr)
		return nil, werr
	}

	reply := <-ch
	if reply.err != nil {
		return nil, reply.err
	}
	resp := reply.msg
	if resp.Err != "" {
		if resp.Body != nil {
			PutBuf(resp.Body)
		}
		return nil, &RemoteError{Op: op, Msg: resp.Err}
	}
	if respMeta != nil {
		if err := UnmarshalMeta(resp.Meta, respMeta); err != nil {
			if resp.Body != nil {
				PutBuf(resp.Body)
			}
			return nil, err
		}
	}
	return resp.Body, nil
}

// abandon forgets a registered session before its request ever reached
// the wire (or after a failed write), so a late stray reply is dropped
// rather than delivered to a departed caller.
func (c *MuxConn) abandon(sid uint64) {
	c.mu.Lock()
	delete(c.calls, sid)
	c.mu.Unlock()
}

// Close tears the connection down, failing any pending calls with
// core.ErrClosed, and waits for the reader to exit.
func (c *MuxConn) Close() error {
	c.fail(core.ErrClosed)
	<-c.readerDone
	return nil
}

// broken reports whether the connection has hit its sticky error.
func (c *MuxConn) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}
