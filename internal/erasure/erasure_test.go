package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldProperties(t *testing.T) {
	// Multiplicative inverses round-trip for all non-zero elements.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d", got, a)
		}
	}
	// Table-based multiply agrees with the slow shift-and-add multiply.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a, b := byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b) != mulSlow(a, b) {
			t.Fatalf("gfMul(%d,%d) != mulSlow", a, b)
		}
	}
	// Division inverts multiplication.
	for i := 0; i < 1000; i++ {
		a, b := byte(rng.Intn(256)), byte(rng.Intn(255)+1)
		if gfDiv(gfMul(a, b), b) != a {
			t.Fatalf("div(mul(%d,%d),%d) != %d", a, b, b, a)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); !errors.Is(err, ErrShardCount) {
		t.Fatal("k=0 accepted")
	}
	if _, err := New(4, -1); !errors.Is(err, ErrShardCount) {
		t.Fatal("m<0 accepted")
	}
	if _, err := New(200, 100); !errors.Is(err, ErrShardCount) {
		t.Fatal("k+m>256 accepted")
	}
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 4 || c.M() != 2 {
		t.Fatalf("K/M = %d/%d", c.K(), c.M())
	}
}

func TestEncodeReconstructAllErasurePatterns(t *testing.T) {
	const k, m = 4, 2
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(7)).Read(data)
	shards := c.Split(data)
	parity, err := c.Encode(shards)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([][]byte(nil), shards...), parity...)

	// Every way of losing up to m shards must reconstruct.
	for i := 0; i < k+m; i++ {
		for j := i; j < k+m; j++ {
			lost := append([][]byte(nil), all...)
			lost[i] = nil
			lost[j] = nil // i == j loses one shard
			recovered, err := c.Reconstruct(lost)
			if err != nil {
				t.Fatalf("lose(%d,%d): %v", i, j, err)
			}
			if got := Join(recovered, len(data)); !bytes.Equal(got, data) {
				t.Fatalf("lose(%d,%d): data corrupted", i, j)
			}
		}
	}
}

func TestReconstructTooFew(t *testing.T) {
	c, _ := New(4, 2)
	data := make([]byte, 4096)
	rand.New(rand.NewSource(8)).Read(data)
	shards := c.Split(data)
	parity, _ := c.Encode(shards)
	all := append(append([][]byte(nil), shards...), parity...)
	all[0], all[1], all[2] = nil, nil, nil // 3 lost > m=2
	if _, err := c.Reconstruct(all); !errors.Is(err, ErrTooFew) {
		t.Fatalf("want ErrTooFew, got %v", err)
	}
}

func TestReconstructValidation(t *testing.T) {
	c, _ := New(4, 2)
	if _, err := c.Reconstruct(make([][]byte, 3)); !errors.Is(err, ErrShardCount) {
		t.Fatal("wrong shard count accepted")
	}
	bad := [][]byte{make([]byte, 4), make([]byte, 5), nil, nil, nil, nil}
	if _, err := c.Reconstruct(bad); !errors.Is(err, ErrShardSize) {
		t.Fatal("inconsistent sizes accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	c, _ := New(4, 2)
	if _, err := c.Encode(make([][]byte, 3)); !errors.Is(err, ErrShardCount) {
		t.Fatal("wrong data shard count accepted")
	}
	bad := [][]byte{make([]byte, 4), make([]byte, 4), make([]byte, 4), make([]byte, 5)}
	if _, err := c.Encode(bad); !errors.Is(err, ErrShardSize) {
		t.Fatal("inconsistent data shard sizes accepted")
	}
}

func TestSplitJoinRoundTripQuick(t *testing.T) {
	c, _ := New(5, 3)
	f := func(data []byte) bool {
		shards := c.Split(data)
		return bytes.Equal(Join(shards, len(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructQuick(t *testing.T) {
	c, _ := New(6, 3)
	f := func(data []byte, loseSeed uint32) bool {
		if len(data) == 0 {
			return true
		}
		shards := c.Split(data)
		parity, err := c.Encode(shards)
		if err != nil {
			return false
		}
		all := append(append([][]byte(nil), shards...), parity...)
		rng := rand.New(rand.NewSource(int64(loseSeed)))
		for _, idx := range rng.Perm(len(all))[:c.M()] {
			all[idx] = nil
		}
		recovered, err := c.Reconstruct(all)
		if err != nil {
			return false
		}
		return bytes.Equal(Join(recovered, len(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroParity(t *testing.T) {
	// m=0 is legal: pure striping, no redundancy.
	c, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("plain striping")
	shards := c.Split(data)
	parity, err := c.Encode(shards)
	if err != nil || len(parity) != 0 {
		t.Fatalf("Encode with m=0: %v, %d parity", err, len(parity))
	}
	got, err := c.Reconstruct(shards)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Join(got, len(data)), data) {
		t.Fatal("m=0 round trip failed")
	}
}

func BenchmarkEncodeRS42(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(9)).Read(data)
	shards := c.Split(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructRS42(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(10)).Read(data)
	shards := c.Split(data)
	parity, _ := c.Encode(shards)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		all := append(append([][]byte(nil), shards...), parity...)
		all[0], all[2] = nil, nil
		if _, err := c.Reconstruct(all); err != nil {
			b.Fatal(err)
		}
	}
}
