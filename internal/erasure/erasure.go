// Package erasure implements systematic Reed-Solomon coding over GF(2^8).
//
// The paper (§IV.A "Data replication") weighs erasure coding against
// replication for checkpoint data and chooses replication: coding costs
// CPU in the write path (or extra network traffic if done in the
// background), complicates reads, and its space advantage matters little
// for transient data. This package exists to *quantify* that argument —
// the ablation bench compares the erasure write path against replication
// under the same device models (see internal/experiments).
//
// The code is a standard Cauchy-matrix systematic RS(k, m): k data
// shards, m parity shards, any k of the k+m shards reconstruct the data.
package erasure

import (
	"errors"
	"fmt"
)

// Field tables for GF(2^8) with the AES polynomial 0x11b.
var (
	expTable [512]byte
	logTable [256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		logTable[x] = byte(i)
		// multiply x by the generator 0x03 = x+1
		x = mulSlow(x, 3)
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
}

func mulSlow(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// gfMul multiplies in GF(2^8) via log/exp tables.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// gfDiv divides a by b (b != 0).
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte { return expTable[255-int(logTable[a])] }

// Coder is a systematic RS(k, m) encoder/decoder.
type Coder struct {
	k, m   int
	parity [][]byte // m x k Cauchy coefficients
}

// Errors.
var (
	ErrShardCount = errors.New("erasure: invalid shard counts")
	ErrShardSize  = errors.New("erasure: inconsistent shard sizes")
	ErrTooFew     = errors.New("erasure: too few shards to reconstruct")
)

// New returns a coder with k data shards and m parity shards.
// k + m must be at most 256 (distinct field elements for the Cauchy
// construction).
func New(k, m int) (*Coder, error) {
	if k <= 0 || m < 0 || k+m > 256 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrShardCount, k, m)
	}
	c := &Coder{k: k, m: m, parity: make([][]byte, m)}
	// Cauchy matrix: rows i = 0..m-1, cols j = 0..k-1 with
	// a_ij = 1 / (x_i + y_j), x_i = i + k, y_j = j (all distinct in GF).
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = gfInv(byte(i+k) ^ byte(j))
		}
		c.parity[i] = row
	}
	return c, nil
}

// K returns the data shard count.
func (c *Coder) K() int { return c.k }

// M returns the parity shard count.
func (c *Coder) M() int { return c.m }

// Split pads data to a multiple of k and splits it into k equal data
// shards. The original length must be carried out of band (Join takes it).
func (c *Coder) Split(data []byte) [][]byte {
	shardLen := (len(data) + c.k - 1) / c.k
	if shardLen == 0 {
		shardLen = 1
	}
	shards := make([][]byte, c.k)
	for i := range shards {
		shards[i] = make([]byte, shardLen)
		start := i * shardLen
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	return shards
}

// Encode computes the m parity shards for k data shards of equal length.
func (c *Coder) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("%w: got %d data shards, want %d", ErrShardCount, len(data), c.k)
	}
	size := len(data[0])
	for _, s := range data {
		if len(s) != size {
			return nil, ErrShardSize
		}
	}
	parity := make([][]byte, c.m)
	for i := 0; i < c.m; i++ {
		p := make([]byte, size)
		row := c.parity[i]
		for j := 0; j < c.k; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			shard := data[j]
			for b := 0; b < size; b++ {
				p[b] ^= gfMul(coef, shard[b])
			}
		}
		parity[i] = p
	}
	return parity, nil
}

// Reconstruct rebuilds the k data shards from any k available shards.
// shards has length k+m; missing shards are nil. It returns the data
// shards (indexes 0..k-1), repaired in place where missing.
func (c *Coder) Reconstruct(shards [][]byte) ([][]byte, error) {
	if len(shards) != c.k+c.m {
		return nil, fmt.Errorf("%w: got %d shards, want %d", ErrShardCount, len(shards), c.k+c.m)
	}
	size := -1
	available := 0
	for _, s := range shards {
		if s != nil {
			if size < 0 {
				size = len(s)
			} else if len(s) != size {
				return nil, ErrShardSize
			}
			available++
		}
	}
	if available < c.k {
		return nil, fmt.Errorf("%w: %d of %d", ErrTooFew, available, c.k)
	}

	// Fast path: all data shards present.
	missing := false
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			missing = true
			break
		}
	}
	if !missing {
		return shards[:c.k], nil
	}

	// Build the k x k system from the first k available shards: rows are
	// identity rows (data shard present) or Cauchy rows (parity shard).
	matrix := make([][]byte, 0, c.k)
	rhs := make([][]byte, 0, c.k)
	for idx := 0; idx < c.k+c.m && len(matrix) < c.k; idx++ {
		if shards[idx] == nil {
			continue
		}
		row := make([]byte, c.k)
		if idx < c.k {
			row[idx] = 1
		} else {
			copy(row, c.parity[idx-c.k])
		}
		matrix = append(matrix, row)
		rhs = append(rhs, shards[idx])
	}

	data, err := solve(matrix, rhs, size)
	if err != nil {
		return nil, err
	}
	for i := 0; i < c.k; i++ {
		shards[i] = data[i]
	}
	return data, nil
}

// solve performs Gaussian elimination over GF(2^8) on [matrix | rhs],
// returning the solution vectors (the data shards).
func solve(matrix [][]byte, rhs [][]byte, size int) ([][]byte, error) {
	k := len(matrix)
	// Work on copies: rhs rows are caller-owned shard buffers.
	m := make([][]byte, k)
	r := make([][]byte, k)
	for i := range matrix {
		m[i] = append([]byte(nil), matrix[i]...)
		r[i] = append([]byte(nil), rhs[i]...)
	}
	for col := 0; col < k; col++ {
		// Find pivot.
		pivot := -1
		for row := col; row < k; row++ {
			if m[row][col] != 0 {
				pivot = row
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("erasure: singular decode matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		r[col], r[pivot] = r[pivot], r[col]
		// Normalize pivot row.
		if inv := m[col][col]; inv != 1 {
			d := gfInv(inv)
			for j := col; j < k; j++ {
				m[col][j] = gfMul(m[col][j], d)
			}
			for b := 0; b < size; b++ {
				r[col][b] = gfMul(r[col][b], d)
			}
		}
		// Eliminate.
		for row := 0; row < k; row++ {
			if row == col || m[row][col] == 0 {
				continue
			}
			coef := m[row][col]
			for j := col; j < k; j++ {
				m[row][j] ^= gfMul(coef, m[col][j])
			}
			for b := 0; b < size; b++ {
				r[row][b] ^= gfMul(coef, r[col][b])
			}
		}
	}
	return r, nil
}

// Join concatenates data shards back into the original byte stream of
// length n.
func Join(shards [][]byte, n int) []byte {
	out := make([]byte, 0, n)
	for _, s := range shards {
		take := len(s)
		if len(out)+take > n {
			take = n - len(out)
		}
		out = append(out, s[:take]...)
		if len(out) == n {
			break
		}
	}
	return out
}
