package benefactor

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

func startNode(t *testing.T, cfg Config) *Benefactor {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return b
}

func call(t *testing.T, addr, op string, meta interface{}, body []byte, out interface{}) []byte {
	t.Helper()
	conn, err := wire.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	respBody, err := conn.Call(op, meta, body, out)
	if err != nil {
		t.Fatal(err)
	}
	return respBody
}

func TestPutGetHasDel(t *testing.T) {
	b := startNode(t, Config{})
	data := []byte("the chunk payload")
	id := core.HashChunk(data)

	call(t, b.Addr(), proto.BPut, proto.PutReq{ID: id}, data, nil)
	got := call(t, b.Addr(), proto.BGet, proto.GetReq{ID: id}, nil, nil)
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch")
	}

	var has proto.HasResp
	ghost := core.HashChunk([]byte("ghost"))
	call(t, b.Addr(), proto.BHas, proto.HasReq{IDs: []core.ChunkID{id, ghost}}, nil, &has)
	if !has.Present[0] || has.Present[1] {
		t.Fatalf("has = %v", has.Present)
	}

	call(t, b.Addr(), proto.BDel, proto.DelReq{IDs: []core.ChunkID{id}}, nil, nil)
	conn, err := wire.Dial(b.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Call(proto.BGet, proto.GetReq{ID: id}, nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("get after del: %v", err)
	}
}

func TestPutRejectsCorruption(t *testing.T) {
	b := startNode(t, Config{})
	conn, err := wire.Dial(b.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var bogus core.ChunkID
	bogus[3] = 0xaa
	if _, err := conn.Call(proto.BPut, proto.PutReq{ID: bogus}, []byte("data"), nil); !errors.Is(err, core.ErrIntegrity) {
		t.Fatalf("corrupt put: %v", err)
	}
}

func TestReplicateBetweenNodes(t *testing.T) {
	src := startNode(t, Config{})
	dst := startNode(t, Config{})
	data := []byte("replicate me")
	id := core.HashChunk(data)
	call(t, src.Addr(), proto.BPut, proto.PutReq{ID: id}, data, nil)

	call(t, src.Addr(), proto.BReplicate, proto.ReplicateReq{ID: id, Target: dst.Addr()}, nil, nil)
	if !dst.Store().Has(id) {
		t.Fatal("chunk not replicated to target")
	}
	got := call(t, dst.Addr(), proto.BGet, proto.GetReq{ID: id}, nil, nil)
	if !bytes.Equal(got, data) {
		t.Fatal("replica corrupted")
	}
}

func TestReplicateMissingChunk(t *testing.T) {
	src := startNode(t, Config{})
	dst := startNode(t, Config{})
	conn, err := wire.Dial(src.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ghost := core.HashChunk([]byte("nothing"))
	if _, err := conn.Call(proto.BReplicate, proto.ReplicateReq{ID: ghost, Target: dst.Addr()}, nil, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("replicating missing chunk: %v", err)
	}
}

func TestMapReplicaStorage(t *testing.T) {
	b := startNode(t, Config{})
	data := []byte("chunk for the map")
	id := core.HashChunk(data)
	cm := &core.ChunkMap{
		Dataset:   1,
		Version:   2,
		FileSize:  int64(len(data)),
		ChunkSize: 1024,
		Chunks:    []core.ChunkRef{{Index: 0, ID: id, Size: int64(len(data))}},
		Locations: [][]core.NodeID{{"n1"}},
		CreatedAt: time.Now(),
	}
	call(t, b.Addr(), proto.BMapPut, proto.MapPutReq{Name: "a.n1.t0", Map: cm}, nil, nil)
	// A second version of the same file must coexist.
	cm2 := cm.Clone()
	cm2.Version = 3
	call(t, b.Addr(), proto.BMapPut, proto.MapPutReq{Name: "a.n1.t1", Map: cm2}, nil, nil)

	var list proto.MapListResp
	call(t, b.Addr(), proto.BMapList, nil, nil, &list)
	if len(list.Maps) != 2 {
		t.Fatalf("stored %d maps, want 2", len(list.Maps))
	}
	if list.Maps[0].Name != "a.n1.t0" || list.Maps[0].Map.Version != 2 {
		t.Fatalf("map[0] = %+v", list.Maps[0])
	}
}

func TestStatsAndPing(t *testing.T) {
	b := startNode(t, Config{Capacity: 1 << 20})
	data := bytes.Repeat([]byte("x"), 1024)
	call(t, b.Addr(), proto.BPut, proto.PutReq{ID: core.HashChunk(data)}, data, nil)

	var stats proto.StatsResp
	call(t, b.Addr(), proto.BStats, nil, nil, &stats)
	if stats.Used != 1024 || stats.Capacity != 1<<20 || stats.Chunks != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	var pong proto.HeartbeatResp
	call(t, b.Addr(), proto.BPing, nil, nil, &pong)
	if !pong.OK {
		t.Fatal("ping not OK")
	}
}

func TestUnknownOp(t *testing.T) {
	b := startNode(t, Config{})
	conn, err := wire.Dial(b.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Call("b.bogus", nil, nil, nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestCollectGarbageUnmanaged(t *testing.T) {
	b := startNode(t, Config{})
	n, err := b.CollectGarbage()
	if err != nil || n != 0 {
		t.Fatalf("unmanaged GC = %d, %v", n, err)
	}
}

func TestIDDefaultsToAddr(t *testing.T) {
	b := startNode(t, Config{})
	if string(b.ID()) != b.Addr() {
		t.Fatalf("ID %q != addr %q", b.ID(), b.Addr())
	}
	named := startNode(t, Config{ID: "donor-7"})
	if named.ID() != "donor-7" {
		t.Fatalf("ID = %q", named.ID())
	}
}

func TestCloseIdempotent(t *testing.T) {
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroLengthChunkRoundTrip pins the empty-chunk corner of the pooled
// serve path: fetchChunk must hand the pooled buffer back exactly once
// (a double PutBuf here corrupts the shared wire buffer pool).
func TestZeroLengthChunkRoundTrip(t *testing.T) {
	b := startNode(t, Config{})
	id := core.HashChunk(nil) // SHA-1 of the empty payload

	call(t, b.Addr(), proto.BPut, proto.PutReq{ID: id}, nil, nil)
	for i := 0; i < 4; i++ {
		got := call(t, b.Addr(), proto.BGet, proto.GetReq{ID: id}, nil, nil)
		if len(got) != 0 {
			t.Fatalf("empty chunk read back %d bytes", len(got))
		}
	}
	// Interleave a normal chunk to catch pool aliasing: a double-put of
	// the empty chunk's buffer would hand the same backing array to two
	// concurrent frames and corrupt one of them.
	data := bytes.Repeat([]byte("x"), 3000)
	did := core.HashChunk(data)
	call(t, b.Addr(), proto.BPut, proto.PutReq{ID: did}, data, nil)
	for i := 0; i < 4; i++ {
		if len(call(t, b.Addr(), proto.BGet, proto.GetReq{ID: id}, nil, nil)) != 0 {
			t.Fatal("empty chunk grew")
		}
		got := call(t, b.Addr(), proto.BGet, proto.GetReq{ID: did}, nil, nil)
		if core.HashChunk(got) != did {
			t.Fatal("payload corrupted by pooled-buffer aliasing")
		}
	}
}
