// Package benefactor implements a stdchk storage donor node (paper §IV.A):
// it publishes its status and free space to the manager with soft-state
// registration, serves client requests to store and retrieve data chunks,
// executes manager-driven replication copies, runs the garbage-collection
// protocol, and keeps chunk-map replicas for manager-failure recovery.
package benefactor

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/federation"
	"stdchk/internal/proto"
	"stdchk/internal/store"
	"stdchk/internal/wire"
)

// Config parameterizes a benefactor.
type Config struct {
	// ID identifies the node at the manager. Defaults to the listen
	// address.
	ID core.NodeID
	// ListenAddr is the chunk-service address ("127.0.0.1:0" for
	// ephemeral).
	ListenAddr string
	// ManagerAddr is the metadata manager to register with. Empty runs
	// the node unmanaged (unit tests). Ignored when ManagerAddrs is set.
	ManagerAddr string
	// ManagerAddrs lists a federated metadata plane's members. The node
	// registers and heartbeats with every member (each manager allocates
	// stripes from its own registry), and garbage collection intersects
	// the members' answers so a chunk is deleted only when no member
	// references it.
	ManagerAddrs []string
	// Capacity is the contributed space in bytes (0 = unlimited). Used
	// when Store is nil.
	Capacity int64
	// Store overrides the default in-memory chunk store.
	Store store.Store
	// GCInterval paces inventory reports to the manager.
	GCInterval time.Duration
	// GCGrace protects freshly written chunks from collection: only
	// chunks older than this are reported as GC candidates, which keeps
	// in-flight (uncommitted) uploads safe.
	GCGrace time.Duration
	// ScrubInterval paces the background integrity scrub: every tick,
	// up to ScrubBatch stored chunks are re-read and re-hashed against
	// their content addresses, and any that fail are quarantined (deleted
	// locally, reported on the next heartbeat so the manager drops the
	// location and schedules critical-priority repair). Zero disables
	// scrubbing.
	ScrubInterval time.Duration
	// ScrubBatch caps the chunks verified per scrub tick — the rate limit
	// that keeps scrub I/O from competing with the serve path. Defaults
	// to 16.
	ScrubBatch int
	// Shaper wraps accepted connections with device models (the node's
	// NIC/disk).
	Shaper wire.Shaper
	// MaxConnInflight bounds concurrently dispatched session-tagged
	// frames per connection (0 = wire.DefaultConnInflight). Pipelined
	// clients ride this: a window of tagged BPut/BGetBatch frames is
	// served concurrently, while untagged (serial) clients are untouched.
	MaxConnInflight int
	// DialShaper wraps outbound connections (replication pushes, manager
	// calls).
	DialShaper wire.Shaper
	// Logger receives operational messages. Nil discards them.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.GCInterval <= 0 {
		c.GCInterval = 2 * time.Second
	}
	if c.GCGrace <= 0 {
		c.GCGrace = 30 * time.Second
	}
	if c.ScrubBatch <= 0 {
		c.ScrubBatch = 16
	}
	return c
}

// Benefactor is a running donor node.
type Benefactor struct {
	cfg    Config
	id     core.NodeID
	chunks store.Store
	srv    *wire.Server
	pool   *wire.Pool
	// mgrs fronts the metadata plane (one manager or a federation); nil
	// when the node runs unmanaged.
	mgrs   *federation.Router
	logger *log.Logger

	mu     sync.Mutex
	births map[core.ChunkID]time.Time
	maps   map[string]*core.ChunkMap // chunk-map replicas for recovery
	// Scrub state (guarded by mu). scrubCursor resumes the inventory walk
	// across ticks; corrupt accumulates quarantined chunk IDs until a
	// successful heartbeat delivers them to the manager; the counters feed
	// BStats.
	scrubCursor  core.ChunkID
	corrupt      []core.ChunkID
	scrubbed     int64
	corruptFound int64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New starts a benefactor serving on cfg.ListenAddr and, when a manager is
// configured, registers and begins heartbeating.
func New(cfg Config) (*Benefactor, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("benefactor: listen %s: %w", cfg.ListenAddr, err)
	}
	b := &Benefactor{
		cfg:    cfg,
		chunks: cfg.Store,
		pool:   wire.NewPool(cfg.DialShaper, 4),
		logger: cfg.Logger,
		births: make(map[core.ChunkID]time.Time),
		maps:   make(map[string]*core.ChunkMap),
		stop:   make(chan struct{}),
	}
	if b.chunks == nil {
		b.chunks = store.NewMemory(cfg.Capacity, nil)
	}
	b.id = cfg.ID
	if b.id == "" {
		b.id = core.NodeID(ln.Addr().String())
	}
	// Chunks present at startup (disk store reopen) are treated as born
	// now, so the GC grace period protects them until the manager knows
	// about the node again.
	now := time.Now()
	for _, id := range b.chunks.Inventory() {
		b.births[id] = now
	}
	b.srv = wire.NewServerWithConfig(ln, wire.ServerConfig{
		Handler:         b.handle,
		Shaper:          cfg.Shaper,
		MaxConnInflight: cfg.MaxConnInflight,
	})

	if members := cfg.managerMembers(); len(members) > 0 {
		r, err := federation.NewRouter(federation.RouterConfig{
			Members: members,
			Shaper:  cfg.DialShaper,
			Logger:  cfg.Logger,
		})
		if err != nil {
			b.srv.Close()
			b.pool.Close()
			b.chunks.Close()
			return nil, fmt.Errorf("benefactor: %w", err)
		}
		b.mgrs = r
		b.wg.Add(2)
		go b.managerLoop()
		go b.gcLoop()
	}
	if cfg.ScrubInterval > 0 {
		b.wg.Add(1)
		go b.scrubLoop()
	}
	return b, nil
}

// managerMembers resolves the metadata-plane member list: the federation
// list when configured, else the single manager address, else none.
func (c Config) managerMembers() []string {
	if len(c.ManagerAddrs) > 0 {
		return c.ManagerAddrs
	}
	if c.ManagerAddr != "" {
		return []string{c.ManagerAddr}
	}
	return nil
}

// ID returns the node's identity.
func (b *Benefactor) ID() core.NodeID { return b.id }

// Addr returns the chunk-service address.
func (b *Benefactor) Addr() string { return b.srv.Addr() }

// Store exposes the underlying chunk store (tests, tooling).
func (b *Benefactor) Store() store.Store { return b.chunks }

// Close stops serving and background loops.
func (b *Benefactor) Close() error {
	var err error
	b.closeOnce.Do(func() {
		close(b.stop)
		err = b.srv.Close()
		b.wg.Wait()
		b.pool.Close()
		if b.mgrs != nil {
			b.mgrs.Close()
		}
		b.chunks.Close()
	})
	return err
}

func (b *Benefactor) logf(format string, args ...interface{}) {
	if b.logger != nil {
		b.logger.Printf("benefactor %s: "+format, append([]interface{}{b.id}, args...)...)
	}
}

// handle dispatches one RPC.
func (b *Benefactor) handle(req *wire.Req) (wire.Resp, error) {
	switch req.Op {
	case proto.BPut:
		var put proto.PutReq
		if err := wire.UnmarshalMeta(req.Meta, &put); err != nil {
			return wire.Resp{}, err
		}
		retained, err := b.putChunk(put.ID, req.Body)
		if retained {
			// The store kept the request buffer as the chunk bytes;
			// keep the server from recycling it under the store.
			req.DisownBody()
		}
		if err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: proto.HeartbeatResp{OK: true}}, nil
	case proto.BGet:
		var get proto.GetReq
		if err := wire.UnmarshalMeta(req.Meta, &get); err != nil {
			return wire.Resp{}, err
		}
		data, err := b.fetchChunk(get.ID)
		if err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Body: data, Recycle: true}, nil
	case proto.BGetBatch:
		var batch proto.BatchGetReq
		if err := wire.UnmarshalMeta(req.Meta, &batch); err != nil {
			return wire.Resp{}, err
		}
		meta, body := b.fetchBatch(batch.IDs)
		return wire.Resp{Meta: meta, Body: body, Recycle: body != nil}, nil
	case proto.BHas:
		var has proto.HasReq
		if err := wire.UnmarshalMeta(req.Meta, &has); err != nil {
			return wire.Resp{}, err
		}
		present := make([]bool, len(has.IDs))
		for i, id := range has.IDs {
			present[i] = b.chunks.Has(id)
		}
		return wire.Resp{Meta: proto.HasResp{Present: present}}, nil
	case proto.BDel:
		var del proto.DelReq
		if err := wire.UnmarshalMeta(req.Meta, &del); err != nil {
			return wire.Resp{}, err
		}
		for _, id := range del.IDs {
			if err := b.chunks.Delete(id); err != nil {
				return wire.Resp{}, err
			}
			b.mu.Lock()
			delete(b.births, id)
			b.mu.Unlock()
		}
		return wire.Resp{Meta: proto.HeartbeatResp{OK: true}}, nil
	case proto.BReplicate:
		var rep proto.ReplicateReq
		if err := wire.UnmarshalMeta(req.Meta, &rep); err != nil {
			return wire.Resp{}, err
		}
		if err := b.replicateTo(rep.ID, rep.Target); err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: proto.HeartbeatResp{OK: true}}, nil
	case proto.BMapPut:
		var mp proto.MapPutReq
		if err := wire.UnmarshalMeta(req.Meta, &mp); err != nil {
			return wire.Resp{}, err
		}
		if mp.Name == "" || mp.Map == nil {
			return wire.Resp{}, errors.New("benefactor: mapput requires name and map")
		}
		b.mu.Lock()
		b.maps[mp.Name+"#"+fmt.Sprint(mp.Map.Version)] = mp.Map.Clone()
		b.mu.Unlock()
		return wire.Resp{Meta: proto.HeartbeatResp{OK: true}}, nil
	case proto.BMapList:
		return wire.Resp{Meta: b.mapList()}, nil
	case proto.BPing:
		return wire.Resp{Meta: proto.HeartbeatResp{OK: true}}, nil
	case proto.BStats:
		b.mu.Lock()
		scrubbed, corrupt := b.scrubbed, b.corruptFound
		b.mu.Unlock()
		return wire.Resp{Meta: proto.StatsResp{
			Used:           b.chunks.Used(),
			Capacity:       b.chunks.Capacity(),
			Chunks:         b.chunks.Len(),
			ScrubbedChunks: scrubbed,
			CorruptChunks:  corrupt,
		}}, nil
	default:
		return wire.Resp{}, fmt.Errorf("benefactor: unknown op %q", req.Op)
	}
}

func (b *Benefactor) putChunk(id core.ChunkID, data []byte) (bool, error) {
	retained, err := b.chunks.Put(id, data)
	if err != nil {
		return retained, err
	}
	b.mu.Lock()
	if _, ok := b.births[id]; !ok {
		b.births[id] = time.Now()
	}
	b.mu.Unlock()
	return retained, nil
}

// fetchChunk reads one chunk into a pooled buffer sized to the chunk, so
// the serve path allocates nothing in steady state. The returned slice is
// always caller-owned and safe to hand to wire.PutBuf exactly once.
func (b *Benefactor) fetchChunk(id core.ChunkID) ([]byte, error) {
	size, ok := b.chunks.Size(id)
	if !ok {
		size = core.DefaultChunkSize
	}
	buf := wire.GetBuf(int(size))
	data, err := b.chunks.GetInto(id, buf[:0])
	if err != nil {
		wire.PutBuf(buf)
		return nil, err
	}
	if len(data) == 0 {
		// Zero-length chunk: hand back the pooled buffer itself (empty)
		// so the caller's single PutBuf recycles it exactly once.
		return buf[:0], nil
	}
	if &data[0] != &buf[:1][0] {
		// The store grew past the pooled buffer (e.g. the chunk was
		// replaced under us); the result is a fresh allocation, so the
		// pooled buffer goes straight back.
		wire.PutBuf(buf)
	}
	return data, nil
}

// fetchBatch assembles a BGetBatch response: every present chunk is read
// via GetInto directly into one pooled body buffer (no per-chunk copies),
// concatenated in request order. Chunks that are absent — or that vanish
// or change size between the sizing pass and the read — are reported with
// size -1 so the caller fails over per chunk, never per batch. The body is
// pooled and ownership transfers to the response frame (Recycle).
func (b *Benefactor) fetchBatch(ids []core.ChunkID) (proto.BatchGetResp, []byte) {
	sizes := make([]int64, len(ids))
	var total int64
	for i, id := range ids {
		if sz, ok := b.chunks.Size(id); ok {
			sizes[i] = sz
			total += sz
		} else {
			sizes[i] = -1
		}
	}
	if total == 0 {
		return proto.BatchGetResp{Sizes: sizes}, nil
	}
	body := wire.GetBuf(int(total))[:0]
	for i, id := range ids {
		if sizes[i] < 0 {
			continue
		}
		off := len(body)
		data, err := b.chunks.GetInto(id, body[off:off])
		if err != nil || int64(len(data)) != sizes[i] {
			// Deleted or rewritten between sizing and read: hand the slot
			// to the caller's replica failover instead of failing the batch.
			sizes[i] = -1
			continue
		}
		if len(data) > 0 && &data[0] != &body[off : off+1][0] {
			// The store allocated fresh instead of serving in place (size
			// raced past our budget); skip rather than copy twice.
			sizes[i] = -1
			continue
		}
		body = body[:off+len(data)]
	}
	return proto.BatchGetResp{Sizes: sizes}, body
}

// replicateTo pushes one of this node's chunks to another benefactor
// (the manager-driven shadow-map copy).
func (b *Benefactor) replicateTo(id core.ChunkID, target string) error {
	data, err := b.fetchChunk(id)
	if err != nil {
		return err
	}
	_, err = b.pool.Call(target, proto.BPut, proto.PutReq{ID: id}, data, nil)
	wire.PutBuf(data)
	if err != nil {
		return fmt.Errorf("replicate %s to %s: %w", id.Short(), target, err)
	}
	return nil
}

func (b *Benefactor) mapList() proto.MapListResp {
	b.mu.Lock()
	defer b.mu.Unlock()
	resp := proto.MapListResp{Maps: make([]proto.NamedMap, 0, len(b.maps))}
	for key, m := range b.maps {
		name := key
		if i := lastIndexByte(key, '#'); i >= 0 {
			name = key[:i]
		}
		resp.Maps = append(resp.Maps, proto.NamedMap{Name: name, Map: m.Clone()})
	}
	sort.Slice(resp.Maps, func(i, j int) bool {
		if resp.Maps[i].Name != resp.Maps[j].Name {
			return resp.Maps[i].Name < resp.Maps[j].Name
		}
		return resp.Maps[i].Map.Version < resp.Maps[j].Map.Version
	})
	return resp
}

func lastIndexByte(s string, c byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// managerLoop keeps the node's soft state fresh across the metadata
// plane: each round announces to every member through the router, which
// registers with members that do not know the node yet (first contact, a
// restarted member whose heartbeat rejection proves it forgot us, or a
// member that declared this node dead and decommissioned it) and
// heartbeats the rest. A member being merely unreachable does not trigger
// re-registration anywhere; registrations carry the chunk inventory, so
// the member reconciles the node's surviving replicas in that one RPC and
// answers with the chunks it no longer wants. Heartbeats deliver pending
// scrub verdicts; a verdict stays queued until a fully successful round so
// a flaky member cannot lose a corruption report.
func (b *Benefactor) managerLoop() {
	defer b.wg.Done()
	interval := time.Second
	registered := make([]bool, b.mgrs.Membership().Len())
	for {
		hb := b.heartbeatReq()
		resp, err := b.mgrs.Announce(b.registerReq(), hb, registered)
		if err != nil {
			b.logf("announce: %v", err)
		} else if len(hb.Corrupt) > 0 {
			b.clearReported(hb.Corrupt)
		}
		if resp.Reconciled > 0 || len(resp.Garbage) > 0 {
			n := b.dropGarbage(resp.Garbage)
			b.logf("rejoin: %d locations reconciled, %d/%d garbage chunks dropped",
				resp.Reconciled, n, len(resp.Garbage))
		}
		if resp.HeartbeatInterval > 0 {
			interval = resp.HeartbeatInterval
		}
		select {
		case <-b.stop:
			return
		case <-time.After(interval):
		}
	}
}

// clearReported removes delivered scrub verdicts from the pending corrupt
// list, keeping any that were quarantined while the announce was in
// flight.
func (b *Benefactor) clearReported(ids []core.ChunkID) {
	sent := make(map[core.ChunkID]struct{}, len(ids))
	for _, id := range ids {
		sent[id] = struct{}{}
	}
	b.mu.Lock()
	kept := b.corrupt[:0]
	for _, id := range b.corrupt {
		if _, ok := sent[id]; !ok {
			kept = append(kept, id)
		}
	}
	b.corrupt = kept
	b.mu.Unlock()
}

// dropGarbage deletes chunks the manager condemned at re-registration,
// under the same grace filter as the GC protocol: chunks younger than
// GCGrace survive even when condemned — the condemning member may simply
// not have committed them yet (an in-flight upload racing a flap) — and
// the regular GC rounds collect them once aged if the verdict holds.
func (b *Benefactor) dropGarbage(ids []core.ChunkID) int {
	if len(ids) == 0 {
		return 0
	}
	cutoff := time.Now().Add(-b.cfg.GCGrace)
	dropped := 0
	for _, id := range ids {
		b.mu.Lock()
		birth, known := b.births[id]
		b.mu.Unlock()
		if known && !birth.Before(cutoff) {
			continue
		}
		if err := b.chunks.Delete(id); err != nil {
			continue
		}
		b.mu.Lock()
		delete(b.births, id)
		b.mu.Unlock()
		dropped++
	}
	return dropped
}

// free reports the node's advertised free space ("unlimited" contributions
// advertise 1 TB).
func (b *Benefactor) free() int64 {
	if cap := b.chunks.Capacity(); cap > 0 {
		return cap - b.chunks.Used()
	}
	return 1 << 40
}

func (b *Benefactor) registerReq() proto.RegisterReq {
	// The inventory rides along so a manager that decommissioned this node
	// (or restarted) reconciles surviving replicas in the registration
	// itself instead of re-replicating them.
	inv := b.chunks.Inventory()
	if len(inv) > proto.MaxRegisterChunks {
		inv = inv[:proto.MaxRegisterChunks]
	}
	return proto.RegisterReq{
		ID:       b.id,
		Addr:     b.Addr(),
		Capacity: b.chunks.Capacity(),
		Free:     b.free(),
		Chunks:   inv,
	}
}

func (b *Benefactor) heartbeatReq() proto.HeartbeatReq {
	b.mu.Lock()
	var corrupt []core.ChunkID
	if len(b.corrupt) > 0 {
		corrupt = append(corrupt, b.corrupt...)
	}
	b.mu.Unlock()
	return proto.HeartbeatReq{
		ID:      b.id,
		Free:    b.free(),
		Used:    b.chunks.Used(),
		Chunks:  b.chunks.Len(),
		Corrupt: corrupt,
	}
}

// gcLoop periodically reconciles the chunk inventory with the manager and
// deletes what the manager declares orphaned (paper §IV.A "Garbage
// collection").
func (b *Benefactor) gcLoop() {
	defer b.wg.Done()
	ticker := time.NewTicker(b.cfg.GCInterval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-ticker.C:
			if n, err := b.CollectGarbage(); err != nil {
				b.logf("gc: %v", err)
			} else if n > 0 {
				b.logf("gc: collected %d chunks", n)
			}
		}
	}
}

// CollectGarbage runs one GC round: report aged chunks, delete the ones the
// manager no longer references. Returns the number deleted. Exposed for
// tests and tooling.
func (b *Benefactor) CollectGarbage() (int, error) {
	if b.mgrs == nil {
		return 0, nil
	}
	cutoff := time.Now().Add(-b.cfg.GCGrace)
	var aged []core.ChunkID
	b.mu.Lock()
	for _, id := range b.chunks.Inventory() {
		if birth, ok := b.births[id]; !ok || birth.Before(cutoff) {
			aged = append(aged, id)
		}
	}
	b.mu.Unlock()
	if len(aged) == 0 {
		return 0, nil
	}
	resp, err := b.mgrs.GCReport(proto.GCReportReq{ID: b.id, IDs: aged})
	if err != nil {
		return 0, err
	}
	deleted := 0
	for _, id := range resp.Deletable {
		if err := b.chunks.Delete(id); err != nil {
			return deleted, err
		}
		b.mu.Lock()
		delete(b.births, id)
		b.mu.Unlock()
		deleted++
	}
	return deleted, nil
}
