package benefactor

import (
	"fmt"
	"testing"

	"stdchk/internal/core"
	"stdchk/internal/faultpoint"
	"stdchk/internal/proto"
)

// putChunks stores n distinct chunks and returns their IDs.
func putChunks(t *testing.T, b *Benefactor, n int) []core.ChunkID {
	t.Helper()
	ids := make([]core.ChunkID, n)
	for i := range ids {
		data := []byte(fmt.Sprintf("scrub payload %d", i))
		ids[i] = core.HashChunk(data)
		call(t, b.Addr(), proto.BPut, proto.PutReq{ID: ids[i]}, data, nil)
	}
	return ids
}

// TestScrubCursorResumesAndWraps: with a batch smaller than the
// inventory, successive rounds must cover distinct chunks until the
// cursor wraps — full coverage without ever re-reading the whole store
// in one rate-limit window.
func TestScrubCursorResumesAndWraps(t *testing.T) {
	b := startNode(t, Config{ScrubBatch: 2})
	putChunks(t, b, 5)

	total := 0
	for round := 0; round < 3; round++ {
		checked, corrupt := b.ScrubOnce()
		if checked != 2 || corrupt != 0 {
			t.Fatalf("round %d: checked=%d corrupt=%d, want 2 healthy", round, checked, corrupt)
		}
		total += checked
	}
	if total <= 5 {
		t.Fatalf("scrubbed %d chunk-verifications over 3 rounds of 2; cursor should have wrapped past the 5-chunk inventory", total)
	}
	var stats proto.StatsResp
	call(t, b.Addr(), proto.BStats, nil, nil, &stats)
	if stats.ScrubbedChunks != int64(total) || stats.CorruptChunks != 0 {
		t.Fatalf("stats report %d scrubbed / %d corrupt, want %d / 0", stats.ScrubbedChunks, stats.CorruptChunks, total)
	}
}

// TestScrubQuarantinesCorruptChunk: a failed verification (injected via
// the benefactor.scrub.corrupt faultpoint, standing in for a flipped
// bit) must delete the replica locally and surface in the stats — the
// heartbeat report to the manager is pinned at the grid level.
func TestScrubQuarantinesCorruptChunk(t *testing.T) {
	defer faultpoint.Reset()
	b := startNode(t, Config{ScrubBatch: 64})
	ids := putChunks(t, b, 3)

	if err := faultpoint.Enable("benefactor.scrub.corrupt", faultpoint.Config{
		Mode: faultpoint.ModeError, Count: 1,
	}); err != nil {
		t.Fatal(err)
	}
	checked, corrupt := b.ScrubOnce()
	if checked != 3 || corrupt != 1 {
		t.Fatalf("checked=%d corrupt=%d, want 3 checked with 1 quarantined", checked, corrupt)
	}
	held := 0
	for _, id := range ids {
		if b.Store().Has(id) {
			held++
		}
	}
	if held != 2 {
		t.Fatalf("%d replicas survive the quarantine, want 2 (the corrupt one deleted)", held)
	}
	var stats proto.StatsResp
	call(t, b.Addr(), proto.BStats, nil, nil, &stats)
	if stats.CorruptChunks != 1 {
		t.Fatalf("stats report %d corrupt chunks, want 1", stats.CorruptChunks)
	}

	// The quarantined chunk is gone from the inventory: the next round
	// verifies only survivors and finds them healthy.
	if checked, corrupt := b.ScrubOnce(); checked != 2 || corrupt != 0 {
		t.Fatalf("post-quarantine round: checked=%d corrupt=%d, want 2 healthy", checked, corrupt)
	}
}
