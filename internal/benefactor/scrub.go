package benefactor

import (
	"bytes"
	"sort"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/faultpoint"
	"stdchk/internal/wire"
)

// fpScrubCorrupt simulates a latent storage fault: armed with ModeError,
// the next verified chunk fails its integrity check exactly as if a bit
// had flipped on disk, exercising the full quarantine → report → repair
// path without the test needing to know the store's on-disk layout.
var fpScrubCorrupt = faultpoint.Register("benefactor.scrub.corrupt")

// scrubLoop runs the background integrity scrub. Content addressing makes
// verification self-contained: a chunk's name IS its expected hash (paper
// §IV.C), so a donor can audit its own holdings with no manager round
// trip. Each tick verifies at most ScrubBatch chunks — the rate limit
// that keeps scrub reads from competing with the serve path — resuming
// from a cursor so large stores are covered incrementally across ticks.
func (b *Benefactor) scrubLoop() {
	defer b.wg.Done()
	ticker := time.NewTicker(b.cfg.ScrubInterval)
	defer ticker.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-ticker.C:
			b.ScrubOnce()
		}
	}
}

// ScrubOnce verifies up to ScrubBatch chunks starting after the resumable
// cursor (wrapping at the end of the inventory) and quarantines failures.
// Returns the chunks checked and the corruptions found. Exposed for tests
// and tooling.
func (b *Benefactor) ScrubOnce() (checked, corrupt int) {
	inv := b.chunks.Inventory() // sorted
	if len(inv) == 0 {
		return 0, 0
	}
	b.mu.Lock()
	cursor := b.scrubCursor
	b.mu.Unlock()
	start := sort.Search(len(inv), func(i int) bool {
		return bytes.Compare(inv[i][:], cursor[:]) > 0
	})
	n := b.cfg.ScrubBatch
	if n > len(inv) {
		n = len(inv)
	}
	var last core.ChunkID
	for i := 0; i < n; i++ {
		id := inv[(start+i)%len(inv)]
		last = id
		checked++
		if b.verifyChunk(id) {
			continue
		}
		corrupt++
		b.quarantine(id)
	}
	b.mu.Lock()
	b.scrubCursor = last
	b.scrubbed += int64(checked)
	b.mu.Unlock()
	return checked, corrupt
}

// verifyChunk re-reads one chunk and re-derives its content address. A
// chunk deleted since the inventory snapshot passes vacuously; a read
// error (the disk store's own hash check fires core.ErrIntegrity) or a
// hash mismatch fails.
func (b *Benefactor) verifyChunk(id core.ChunkID) bool {
	if err := fpScrubCorrupt.Hit(); err != nil {
		return false
	}
	size, ok := b.chunks.Size(id)
	if !ok {
		return true
	}
	buf := wire.GetBuf(int(size))
	data, err := b.chunks.GetInto(id, buf[:0])
	healthy := err == nil && core.HashChunk(data) == id
	wire.PutBuf(buf)
	return healthy
}

// quarantine removes a corrupt replica and queues its ID for the next
// heartbeat, where the manager drops this location from the chunk-map
// (readers stop being routed here) and schedules critical-priority repair
// from the surviving replicas. Deleting rather than fencing is safe
// precisely because the data is content-addressed: there is nothing to
// salvage from bytes that no longer hash to their name.
func (b *Benefactor) quarantine(id core.ChunkID) {
	if err := b.chunks.Delete(id); err != nil {
		b.logf("scrub: quarantine %s: %v", id.Short(), err)
	}
	b.mu.Lock()
	delete(b.births, id)
	b.corrupt = append(b.corrupt, id)
	b.corruptFound++
	b.mu.Unlock()
	b.logf("scrub: chunk %s failed verification, quarantined", id.Short())
}
