// Package fsiface provides stdchk's traditional file-system interface
// (paper §IV.E). In the paper this is a FUSE module: system calls against
// the /stdchk mount point are forwarded through the FUSE kernel module to
// the user-space client proxy. A kernel module is out of reach here, so
// the facade reproduces the same call path in user space: every file
// operation pays the measured FUSE round-trip cost (~32 µs) before
// reaching the client proxy, application-sized writes are aggregated into
// storage-sized chunks by the client (fixed stripes or content-anchored
// CbCH spans, per the client's ChunkingMode — the facade is agnostic to
// chunk sizing), and metadata calls (stat/readdir) are served from a
// cache so most do not contact the manager.
//
// The package also implements the evaluation's baselines — local I/O,
// FUSE-to-local, /stdchk/null and NFS — as calibrated device-model writers
// (Table 1, Figures 2-3).
package fsiface

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/namespace"
)

// Config parameterizes the facade.
type Config struct {
	// Client is the stdchk client proxy the facade maps calls onto.
	Client *client.Client
	// FuseCost is the per-call kernel round-trip model (nil = free,
	// device.NewCallCost(32µs) for the paper calibration).
	FuseCost *device.CallCost
	// MetaTTL bounds metadata cache staleness. Default 1s.
	MetaTTL time.Duration
}

// FS is the mounted file-system facade.
type FS struct {
	cl   *client.Client
	fuse *device.CallCost
	ttl  time.Duration

	mu    sync.Mutex
	stats map[string]metaEntry
	dirs  map[string]dirEntry
}

type metaEntry struct {
	info    core.DatasetInfo
	fetched time.Time
}

type dirEntry struct {
	infos   []core.DatasetInfo
	fetched time.Time
}

// New mounts the facade over a client.
func New(cfg Config) (*FS, error) {
	if cfg.Client == nil {
		return nil, errors.New("fsiface: Client is required")
	}
	if cfg.MetaTTL <= 0 {
		cfg.MetaTTL = time.Second
	}
	return &FS{
		cl:    cfg.Client,
		fuse:  cfg.FuseCost,
		ttl:   cfg.MetaTTL,
		stats: make(map[string]metaEntry),
		dirs:  make(map[string]dirEntry),
	}, nil
}

// File is an open file handle. Handles are either write-only (Create) or
// read-only (Open), the two modes checkpoint I/O uses.
type File struct {
	fs   *FS
	name string
	w    *client.Writer
	r    *client.Reader
}

// Create opens a new checkpoint file for writing under the mount point.
// Paths follow "folder/file" or bare "file" naming; the file name carries
// the A.Ni.Tj convention.
func (fs *FS) Create(path string) (*File, error) {
	fs.fuse.Pay()
	_, name := namespace.SplitPath(path)
	if name == "" {
		return nil, fmt.Errorf("fsiface: create %q: empty file name", path)
	}
	w, err := fs.cl.Create(name)
	if err != nil {
		return nil, fmt.Errorf("fsiface: create %q: %w", path, err)
	}
	fs.invalidate(name)
	return &File{fs: fs, name: name, w: w}, nil
}

// Open opens the latest committed version for reading.
func (fs *FS) Open(path string) (*File, error) {
	fs.fuse.Pay()
	_, name := namespace.SplitPath(path)
	r, err := fs.cl.Open(name)
	if err != nil {
		return nil, fmt.Errorf("fsiface: open %q: %w", path, err)
	}
	return &File{fs: fs, name: name, r: r}, nil
}

// Write implements io.Writer, paying the per-call FUSE cost.
func (f *File) Write(p []byte) (int, error) {
	f.fs.fuse.Pay()
	if f.w == nil {
		return 0, core.ErrReadOnly
	}
	return f.w.Write(p)
}

// Read implements io.Reader, paying the per-call FUSE cost.
func (f *File) Read(p []byte) (int, error) {
	f.fs.fuse.Pay()
	if f.r == nil {
		return 0, fmt.Errorf("fsiface: read on write-only handle: %w", core.ErrClosed)
	}
	return f.r.Read(p)
}

// Close ends the handle. For writes this is the application-visible end
// of the checkpoint operation (session semantics commit happens through
// the client proxy).
func (f *File) Close() error {
	f.fs.fuse.Pay()
	switch {
	case f.w != nil:
		err := f.w.Close()
		f.fs.invalidate(f.name)
		return err
	case f.r != nil:
		return f.r.Close()
	default:
		return core.ErrClosed
	}
}

// Wait blocks until a written file is safely stored and committed (the
// ASB endpoint). No-op for read handles.
func (f *File) Wait() error {
	if f.w == nil {
		return nil
	}
	return f.w.Wait()
}

// Metrics exposes the write session's measurements (valid after Wait).
func (f *File) Metrics() client.WriteMetrics {
	if f.w == nil {
		return client.WriteMetrics{}
	}
	return f.w.Metrics()
}

// Size returns a read handle's file size.
func (f *File) Size() int64 {
	if f.r == nil {
		return 0
	}
	return f.r.Size()
}

var (
	_ io.WriteCloser = (*File)(nil)
	_ io.ReadCloser  = (*File)(nil)
)

// Stat describes a dataset; served from the metadata cache when fresh
// (paper §IV.E: "caches metadata information so that most readdir and
// getattr system calls can be answered without contacting the manager").
func (fs *FS) Stat(path string) (core.DatasetInfo, error) {
	fs.fuse.Pay()
	_, name := namespace.SplitPath(path)
	key := namespace.DatasetOf(name)
	fs.mu.Lock()
	if e, ok := fs.stats[key]; ok && time.Since(e.fetched) < fs.ttl {
		fs.mu.Unlock()
		return e.info, nil
	}
	fs.mu.Unlock()
	info, err := fs.cl.Stat(name)
	if err != nil {
		return core.DatasetInfo{}, err
	}
	fs.mu.Lock()
	fs.stats[key] = metaEntry{info: info, fetched: time.Now()}
	fs.mu.Unlock()
	return info, nil
}

// ReadDir lists the datasets in a folder, cached like Stat.
func (fs *FS) ReadDir(folder string) ([]core.DatasetInfo, error) {
	fs.fuse.Pay()
	fs.mu.Lock()
	if e, ok := fs.dirs[folder]; ok && time.Since(e.fetched) < fs.ttl {
		out := append([]core.DatasetInfo(nil), e.infos...)
		fs.mu.Unlock()
		return out, nil
	}
	fs.mu.Unlock()
	infos, err := fs.cl.List(folder)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	fs.dirs[folder] = dirEntry{infos: infos, fetched: time.Now()}
	fs.mu.Unlock()
	return append([]core.DatasetInfo(nil), infos...), nil
}

// Unlink removes a file (all versions of its dataset when the path names
// the dataset, one timestep when it names a full A.Ni.Tj file).
func (fs *FS) Unlink(path string) error {
	fs.fuse.Pay()
	_, name := namespace.SplitPath(path)
	if err := fs.cl.Delete(name, 0); err != nil {
		return err
	}
	fs.invalidate(name)
	return nil
}

// SetPolicy attaches a data-lifetime policy to a folder (exposed in the
// paper as special folder metadata).
func (fs *FS) SetPolicy(folder string, p core.Policy) error {
	fs.fuse.Pay()
	return fs.cl.SetPolicy(folder, p)
}

// Policy reads a folder's policy.
func (fs *FS) Policy(folder string) (core.Policy, error) {
	fs.fuse.Pay()
	return fs.cl.GetPolicy(folder)
}

// invalidate drops cached metadata touched by a mutation.
func (fs *FS) invalidate(name string) {
	key := namespace.DatasetOf(name)
	folder := namespace.FolderOf(name)
	fs.mu.Lock()
	delete(fs.stats, key)
	delete(fs.dirs, folder)
	delete(fs.dirs, "")
	fs.mu.Unlock()
}

// CacheSize reports cached entries (tests).
func (fs *FS) CacheSize() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.stats) + len(fs.dirs)
}
