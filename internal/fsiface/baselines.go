package fsiface

import (
	"time"

	"stdchk/internal/device"
)

// BaselineKind selects one of the evaluation's comparison write paths.
type BaselineKind int

const (
	// BaselineLocal is a plain local-disk write (Table 1 "Local I/O",
	// Figures 2-3 "Local I/O").
	BaselineLocal BaselineKind = iota + 1
	// BaselineFuseLocal routes local writes through the FUSE call path:
	// the same disk plus the per-call kernel round trip (Table 1 "FUSE to
	// local I/O", Figures 2-3 "FUSE").
	BaselineFuseLocal
	// BaselineNull is /stdchk/null: the FUSE call path with the write
	// discarded, isolating interface overhead (Table 1 "/stdchk/null").
	BaselineNull
	// BaselineNFS writes through a shared dedicated NFS server
	// (Figures 2-3 "NFS"; §V.A calibrates it at 24.8 MB/s).
	BaselineNFS
)

// String implements fmt.Stringer.
func (k BaselineKind) String() string {
	switch k {
	case BaselineLocal:
		return "local"
	case BaselineFuseLocal:
		return "fuse-local"
	case BaselineNull:
		return "null"
	case BaselineNFS:
		return "nfs"
	default:
		return "baseline(?)"
	}
}

// Baseline is a calibrated baseline write path. It implements
// io.WriteCloser; Close is when the write is durable for the baseline's
// semantics (local file systems buffer, so like the paper we measure the
// sustained write path, not fsync).
type Baseline struct {
	kind BaselineKind
	node *device.Node
	nfs  *device.Limiter

	written  int64
	openedAt time.Time
	closedAt time.Time
}

// NewBaseline opens a baseline writer. node models the writing machine;
// nfs is the shared NFS server queue (required for BaselineNFS, shared
// across all clients writing to the same server).
func NewBaseline(kind BaselineKind, node *device.Node, nfs *device.Limiter) *Baseline {
	return &Baseline{kind: kind, node: node, nfs: nfs, openedAt: time.Now()}
}

// Write pays the baseline's device costs for n bytes.
func (b *Baseline) Write(p []byte) (int, error) {
	n := len(p)
	switch b.kind {
	case BaselineLocal:
		b.node.Disk.Write(n)
	case BaselineFuseLocal:
		b.node.Fuse.Pay()
		b.node.Disk.Write(n)
	case BaselineNull:
		b.node.Fuse.Pay()
		b.node.Mem.Acquire(n)
	case BaselineNFS:
		// The client's NIC and the shared server queue both apply.
		b.node.NIC.TX.Acquire(n)
		b.nfs.Acquire(n)
	}
	b.written += int64(n)
	return n, nil
}

// Close ends the write.
func (b *Baseline) Close() error {
	b.closedAt = time.Now()
	return nil
}

// Duration is the open-to-close wall time.
func (b *Baseline) Duration() time.Duration {
	if b.closedAt.IsZero() {
		return time.Since(b.openedAt)
	}
	return b.closedAt.Sub(b.openedAt)
}

// Written is the byte count accepted.
func (b *Baseline) Written() int64 { return b.written }

// NewNFSServer returns the shared NFS server queue at the paper's
// calibrated throughput.
func NewNFSServer() *device.Limiter {
	return device.NewLimiter(device.MBps(device.NFSServerMBps))
}
