package fsiface

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"stdchk/internal/client"
	"stdchk/internal/core"
	"stdchk/internal/device"
	"stdchk/internal/grid"
	"stdchk/internal/manager"
)

func testFS(t *testing.T) (*FS, *grid.Cluster) {
	t.Helper()
	c, err := grid.Start(grid.Options{
		Benefactors:       3,
		BenefactorProfile: device.Unshaped(),
		Manager:           manager.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	cl, _, err := c.NewClient(client.Config{ChunkSize: 32 << 10, StripeWidth: 2}, device.Unshaped())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	fs, err := New(Config{Client: cl, MetaTTL: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return fs, c
}

func randData(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestCreateWriteReadCycle(t *testing.T) {
	fs, _ := testFS(t)
	data := randData(1, 300<<10)

	f, err := fs.Create("blast/blast.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	// Application-style small writes (4 KB blocks).
	for off := 0; off < len(data); off += 4 << 10 {
		end := off + 4<<10
		if end > len(data) {
			end = len(data)
		}
		if _, err := f.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}

	r, err := fs.Open("blast/blast.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(data))
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch through the facade")
	}
}

func TestHandleModeEnforcement(t *testing.T) {
	fs, _ := testFS(t)
	f, err := fs.Create("m/m.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(make([]byte, 10)); err == nil {
		t.Fatal("read on write handle succeeded")
	}
	f.Write([]byte("x"))
	f.Close()
	f.Wait()

	r, err := fs.Open("m/m.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Write([]byte("x")); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("write on read handle: %v", err)
	}
}

func TestStatAndReadDirCaching(t *testing.T) {
	fs, c := testFS(t)
	f, err := fs.Create("app/app.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(randData(2, 64<<10))
	f.Close()
	f.Wait()

	before := c.Manager.Stats().Transactions
	for i := 0; i < 20; i++ {
		if _, err := fs.Stat("app/app.n1.t0"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.ReadDir("app"); err != nil {
			t.Fatal(err)
		}
	}
	after := c.Manager.Stats().Transactions
	// Only the first stat/readdir should have contacted the manager
	// (and MList/MStat don't count as transactions anyway); the point is
	// the call volume did not scale with the 20 iterations.
	if after-before > 4 {
		t.Fatalf("metadata cache ineffective: %d manager transactions for cached calls", after-before)
	}
	if fs.CacheSize() == 0 {
		t.Fatal("nothing cached")
	}
}

func TestUnlinkInvalidatesAndDeletes(t *testing.T) {
	fs, _ := testFS(t)
	f, err := fs.Create("d/d.n1.t0")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(randData(3, 32<<10))
	f.Close()
	f.Wait()
	if _, err := fs.Stat("d/d.n1.t0"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("d/d.n1.t0"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("d/d.n1.t0"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("open after unlink: %v", err)
	}
}

func TestPolicyPassThrough(t *testing.T) {
	fs, _ := testFS(t)
	want := core.Policy{Kind: core.PolicyReplace, KeepVersions: 2}
	if err := fs.SetPolicy("pol", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Policy("pol")
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.KeepVersions != want.KeepVersions {
		t.Fatalf("policy = %+v, want %+v", got, want)
	}
}

func TestFuseCostCharged(t *testing.T) {
	fs, _ := testFS(t)
	fs.fuse = device.NewCallCost(5 * time.Millisecond)
	start := time.Now()
	if _, err := fs.ReadDir(""); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("FUSE cost not charged")
	}
}

func TestBaselineKindsCharge(t *testing.T) {
	// A slow profile makes the charging observable.
	profile := device.Profile{
		DiskWriteBps: 1e6, // 1 MB/s
		MemCopyBps:   1e6,
		LinkBps:      1e6,
		FuseCallCost: time.Millisecond,
	}
	nfs := device.NewLimiter(1e6)
	const n = 100 << 10 // 100 KB -> ~100 ms at 1 MB/s
	for _, kind := range []BaselineKind{BaselineLocal, BaselineFuseLocal, BaselineNull, BaselineNFS} {
		t.Run(kind.String(), func(t *testing.T) {
			b := NewBaseline(kind, device.NewNode(profile), nfs)
			start := time.Now()
			if _, err := b.Write(make([]byte, n)); err != nil {
				t.Fatal(err)
			}
			b.Close()
			if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
				t.Fatalf("%v write of 100KB at 1MB/s took only %v", kind, elapsed)
			}
			if b.Written() != n {
				t.Fatalf("Written = %d", b.Written())
			}
			if b.Duration() <= 0 {
				t.Fatal("Duration not recorded")
			}
		})
	}
}

func TestBaselineOrderingMatchesTable1(t *testing.T) {
	// With the paper profile, for the same data: null << local <= fuse.
	// Each run gets a fresh node so one baseline's queue state cannot
	// leak into the next measurement.
	const block = 128 << 10
	// Large enough that the ~2% FUSE overhead exceeds scheduler jitter.
	const total = 32 << 20
	run := func(kind BaselineKind) time.Duration {
		node := device.NewNode(device.Profile{
			DiskWriteBps: device.MBps(86.2),
			MemCopyBps:   1.35e9,
			FuseCallCost: 32 * time.Microsecond,
		})
		b := NewBaseline(kind, node, nil)
		buf := make([]byte, block)
		for w := 0; w < total; w += block {
			b.Write(buf)
		}
		b.Close()
		return b.Duration()
	}
	local := run(BaselineLocal)
	fuse := run(BaselineFuseLocal)
	null := run(BaselineNull)
	if null >= local/2 {
		t.Fatalf("null %v not much faster than local %v", null, local)
	}
	// FUSE overhead is small but positive (paper: ~2%); allow scheduler
	// jitter either way (race-instrumented runs wobble by several
	// percent), reject anything large.
	overhead := float64(fuse-local) / float64(local)
	if overhead < -0.10 || overhead > 0.15 {
		t.Fatalf("fuse overhead %.1f%% (local %v, fuse %v), want ~2%%", 100*overhead, local, fuse)
	}
}

func TestNewRequiresClient(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted nil client")
	}
}
