package manager

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// BenchmarkManagerOps measures the metadata plane end to end through the
// handler path: per iteration one full checkpoint's metadata traffic
// (DriveCheckpoint — alloc, extend, batched dedup probe, commit with
// copy-on-write reuse, chunk-map fetch). RunParallel puts concurrent
// writers on distinct datasets, the stripe-friendly §V.E shape. The
// bench-compare CI job gates allocs/op regressions on this path, and the
// managerload experiment runs the identical driver.
//
// The journal sub-benchmarks measure the commit path's journaling cost in
// one run: journal-sync is the historical mode (marshal + write + flush
// inside the dataset stripe's critical section, all commits serialized on
// the journal mutex), journal-async the ordered ticket writer that keeps
// only an atomic increment and a channel send in the critical section.
func BenchmarkManagerOps(b *testing.B) {
	b.Run("no-journal", func(b *testing.B) { benchManagerOps(b, Config{}) })
	b.Run("journal-async", func(b *testing.B) {
		benchManagerOps(b, Config{JournalPath: filepath.Join(b.TempDir(), "journal")})
	})
	b.Run("journal-sync", func(b *testing.B) {
		benchManagerOps(b, Config{JournalPath: filepath.Join(b.TempDir(), "journal"), SyncJournal: true})
	})
	// Group-commit durability: commits block until their batch is fsynced,
	// but concurrent writers share one fsync per drained batch — the cost
	// to compare against journal-sync with FsyncJournal's per-record fsync.
	b.Run("journal-fsync", func(b *testing.B) {
		benchManagerOps(b, Config{JournalPath: filepath.Join(b.TempDir(), "journal"), FsyncJournal: true})
	})
}

func benchManagerOps(b *testing.B, cfg Config) {
	cfg.HeartbeatInterval = time.Hour
	cfg.ReplicationInterval = time.Hour
	cfg.PruneInterval = time.Hour
	cfg.SessionTTL = time.Hour
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 8; i++ {
		req := proto.RegisterReq{
			ID:   core.NodeID(fmt.Sprintf("bb%d:1", i)),
			Addr: fmt.Sprintf("bb%d:1", i), Capacity: 1 << 40, Free: 1 << 40,
		}
		if err := m.Invoke(proto.MRegister, req, nil); err != nil {
			b.Fatal(err)
		}
	}

	var writerSeq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := writerSeq.Add(1)
		for t := 0; pb.Next(); t++ {
			name := fmt.Sprintf("bench.n%d.t%d", w, t)
			if _, err := DriveCheckpoint(m, name, w, t, 8, 8<<10, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}
