package manager

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// BenchmarkManagerOps measures the metadata plane end to end through the
// handler path: per iteration one full checkpoint's metadata traffic
// (DriveCheckpoint — alloc, extend, batched dedup probe, commit with
// copy-on-write reuse, chunk-map fetch). RunParallel puts concurrent
// writers on distinct datasets, the stripe-friendly §V.E shape. The
// bench-compare CI job gates allocs/op regressions on this path, and the
// managerload experiment runs the identical driver.
func BenchmarkManagerOps(b *testing.B) {
	m, err := New(Config{
		HeartbeatInterval:   time.Hour,
		ReplicationInterval: time.Hour,
		PruneInterval:       time.Hour,
		SessionTTL:          time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 8; i++ {
		req := proto.RegisterReq{
			ID:   core.NodeID(fmt.Sprintf("bb%d:1", i)),
			Addr: fmt.Sprintf("bb%d:1", i), Capacity: 1 << 40, Free: 1 << 40,
		}
		if err := m.Invoke(proto.MRegister, req, nil); err != nil {
			b.Fatal(err)
		}
	}

	var writerSeq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := writerSeq.Add(1)
		for t := 0; pb.Next(); t++ {
			name := fmt.Sprintf("bench.n%d.t%d", w, t)
			if _, err := DriveCheckpoint(m, name, w, t, 8, 8<<10, false); err != nil {
				b.Fatal(err)
			}
		}
	})
}
