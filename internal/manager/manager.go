// Package manager implements the stdchk metadata manager (paper §IV.A):
// the soft-state benefactor registry, dataset/version catalog with
// copy-on-write chunk sharing, write-session space reservation, atomic
// chunk-map commits (session semantics), manager-driven background
// replication with write priority, garbage-collection reconciliation,
// folder data-lifetime policies, and metadata recovery after manager
// failure (journal replay and benefactor-quorum reconstruction).
package manager

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/faultpoint"
	"stdchk/internal/federation"
	"stdchk/internal/metrics"
	"stdchk/internal/namespace"
	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

// fpCommitPublish fires after a commit is journaled and published but
// before the client is acknowledged — the redo-log ambiguity window where a
// crash leaves the commit durable yet unconfirmed. Crash tests use it to
// prove replay resurrects (never loses) such commits.
var fpCommitPublish = faultpoint.Register("manager.commit.publish")

// Config parameterizes a Manager.
type Config struct {
	// ListenAddr is the TCP address to serve on ("127.0.0.1:0" for an
	// ephemeral port).
	ListenAddr string
	// Listener, when non-nil, serves on an already-bound listener instead
	// of ListenAddr. Federated deployments bind all member listeners
	// first so every member can be configured with the complete address
	// list; the manager takes ownership and closes it.
	Listener net.Listener
	// FederationMembers, when it lists more than one address, makes this
	// manager member MemberIndex of a static federation: it owns only the
	// dataset keys that federation.OwnerIndex maps to its index and
	// rejects the rest (the client-side router routes by the same
	// function). All members must be configured with the identical list —
	// the derived partition epoch is checked on routed requests.
	FederationMembers []string
	// MemberIndex is this manager's position in FederationMembers.
	MemberIndex int
	// HeartbeatInterval is what benefactors are told to use.
	HeartbeatInterval time.Duration
	// NodeTTL expires benefactors that stop heartbeating. Defaults to 3x
	// the heartbeat interval.
	NodeTTL time.Duration
	// DeadTimeout is the heartbeat silence past which a suspect (expired)
	// benefactor is declared dead and decommissioned: its chunk locations
	// are dropped from the catalog (journaled, so restarts do not
	// resurrect them) and repair re-replicates from the survivors. Zero
	// defaults to 10x NodeTTL; negative disables death entirely (suspects
	// linger forever, the pre-lifecycle behavior).
	DeadTimeout time.Duration
	// DefaultStripeWidth applies when a client requests width 0.
	DefaultStripeWidth int
	// DefaultChunkSize applies when a client requests chunk size 0.
	DefaultChunkSize int64
	// DefaultReplication is the replication target when the client does
	// not specify one.
	DefaultReplication int
	// ReplicationInterval paces the background replication scheduler.
	ReplicationInterval time.Duration
	// ReplicationParallel caps concurrent replica copies per round.
	ReplicationParallel int
	// RepairBytesPerRound caps the bytes of replica copies one scheduler
	// round may schedule, so a mass failure's repair storm cannot saturate
	// the benefactor links foreground writes need. The scheduler consumes
	// jobs critical-band first, so a tight budget always goes to the most
	// exposed chunks. Zero leaves rounds unbudgeted.
	RepairBytesPerRound int64
	// WritePriority throttles replication to one copy per round while
	// write sessions are active (paper: "Creation of new files has
	// priority over replication").
	WritePriority bool
	// SessionTTL expires abandoned write sessions, garbage collecting
	// their space reservations.
	SessionTTL time.Duration
	// MetadataStripes is the lock-stripe count for the metadata plane
	// (dataset catalog, content-addressed chunk index, session table).
	// Rounded up to a power of two, capped at 256. 0 selects the default
	// (16); 1 degenerates to the historical single-lock catalog and
	// exists for the managerload before/after baseline.
	MetadataStripes int
	// MapCacheEntries bounds the hot-map cache in front of getMap
	// (memoized wire-ready chunk-maps per dataset version; see
	// hotMapCache). 0 selects the default (1024 entries); negative
	// disables the cache — the ablation baseline where every getMap
	// rebuilds and re-sorts its location sets.
	MapCacheEntries int
	// PruneInterval paces the folder-policy pruner.
	PruneInterval time.Duration
	// JournalPath, when set, persists commits/deletes/policies to an
	// append-only journal replayed on restart.
	JournalPath string
	// SyncJournal restores the historical journal mode: every commit and
	// delete marshals, writes and flushes its journal record inline under
	// the dataset stripe's critical section, serializing all journaled
	// mutations on the journal mutex. The default (false) is the ordered
	// async writer: the critical section only takes an order ticket, a
	// writer goroutine appends in ticket order, and a process crash can
	// lose a small window of acknowledged-but-unjournaled entries (clean
	// shutdown drains; see journal).
	SyncJournal bool
	// FsyncJournal arms power-loss durability: the async journal writer
	// fsyncs once per drained batch (group commit) and the sync writer
	// once per record. Off, acknowledged commits survive a process crash
	// (the OS page cache holds the appends) but not the machine going
	// dark. Folders can demand fsync individually via their policy's
	// Durability knob even when this is off.
	FsyncJournal bool
	// SnapshotInterval, when positive, periodically serializes the catalog
	// to a snapshot beside the journal and truncates the journal to the
	// entries the snapshot does not cover, bounding restart time by live
	// state instead of journal history. Zero disables the background loop;
	// Snapshot() can still be called explicitly.
	SnapshotInterval time.Duration
	// Recover starts the manager in recovery mode: registering
	// benefactors are asked for their chunk-map replicas, and datasets
	// are restored once two-thirds of a map's stripe concur (paper §IV.A).
	Recover bool
	// MaxPendingOps bounds the globally admitted, unfinished mutating
	// metadata ops (alloc/extend/commit). Past the bound the manager
	// sheds: the op is rejected immediately with a typed
	// core.ErrRetryAfter carrying RetryAfterHint instead of queueing.
	// Zero leaves the queue unbounded (depth is still tracked).
	MaxPendingOps int
	// MaxConnInflight caps concurrently dispatched session-tagged
	// requests per connection (multiplexed clients); past it frames are
	// shed at the wire layer with the same typed retry-after. Zero uses
	// the wire server's default.
	MaxConnInflight int
	// RetryAfterHint is the backoff delay embedded in shed responses.
	// Zero means a small default (see internal admission gate).
	RetryAfterHint time.Duration
	// Shaper wraps server-side connections with device models.
	Shaper wire.Shaper
	// DialShaper wraps manager-initiated connections to benefactors.
	DialShaper wire.Shaper
	// Logger receives operational messages. Nil discards them.
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.NodeTTL <= 0 {
		c.NodeTTL = 3 * c.HeartbeatInterval
	}
	if c.DeadTimeout == 0 {
		c.DeadTimeout = 10 * c.NodeTTL
	} else if c.DeadTimeout < 0 {
		c.DeadTimeout = 0 // disabled: the registry never declares death
	}
	if c.DefaultStripeWidth <= 0 {
		c.DefaultStripeWidth = 4
	}
	if c.DefaultChunkSize <= 0 {
		c.DefaultChunkSize = core.DefaultChunkSize
	}
	if c.DefaultReplication <= 0 {
		c.DefaultReplication = core.DefaultReplicationLevel
	}
	if c.ReplicationInterval <= 0 {
		c.ReplicationInterval = 500 * time.Millisecond
	}
	if c.ReplicationParallel <= 0 {
		c.ReplicationParallel = 4
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 2 * time.Minute
	}
	if c.PruneInterval <= 0 {
		c.PruneInterval = time.Second
	}
	return c
}

// Manager is the stdchk metadata manager.
type Manager struct {
	cfg      Config
	reg      *registry
	cat      *catalog
	sess     *sessionTable
	pool     *wire.Pool
	srv      *wire.Server
	journal  *journal
	logger   *log.Logger
	policies *policyTable

	recovering atomic.Bool
	recovery   *recoveryState

	// fed is nil on a standalone manager; otherwise the member's place in
	// the federation (partition filter inputs).
	fed *federation.Membership

	// adm gates mutating metadata ops; always constructed (unbounded
	// when MaxPendingOps is zero) so depth accounting is uniform.
	adm *admission
	// allocLat and commitLat time the two metadata ops on a checkpoint's
	// critical path, service-time only (queueing excluded by admission).
	allocLat  metrics.LatencyHistogram
	commitLat metrics.LatencyHistogram

	stats struct {
		transactions       atomic.Int64
		extends            atomic.Int64
		dedupBatches       atomic.Int64
		dedupChunksQueried atomic.Int64
		dedupHits          atomic.Int64
		getMaps            atomic.Int64
		statVersions       atomic.Int64
		histories          atomic.Int64
		diffs              atomic.Int64
		prefetchBatches    atomic.Int64
		replicasCopied     atomic.Int64
		// Repair plane (proto.RepairStats). The first two are gauges
		// sampled at the last scheduler round; the rest are cumulative.
		repairPending       atomic.Int64
		repairCritical      atomic.Int64
		repairCopiedBytes   atomic.Int64
		repairFailed        atomic.Int64
		repairCorrupt       atomic.Int64 // corrupt replicas reported by scrubbing
		repairReconciled    atomic.Int64 // locations re-adopted from rejoin inventories
		repairDecommissions atomic.Int64
		chunksCollected     atomic.Int64
		versionsPruned      atomic.Int64
		journalReplayed     atomic.Int64
		snapshots           atomic.Int64
		snapshotSeq         atomic.Uint64
	}

	stop chan struct{}
	// repairKick nudges the replication scheduler to run immediately
	// (decommission, corruption report, rejoin) instead of waiting out the
	// tick. Buffered: one pending kick covers any number of events.
	repairKick chan struct{}
	wg         sync.WaitGroup

	closeOnce sync.Once
}

// New starts a manager serving on cfg.ListenAddr.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:        cfg,
		reg:        newRegistry(cfg.NodeTTL, cfg.DeadTimeout),
		cat:        newCatalogStripes(cfg.MetadataStripes),
		sess:       newSessionTableStripes(cfg.SessionTTL, cfg.MetadataStripes),
		pool:       wire.NewPool(cfg.DialShaper, 8),
		logger:     cfg.Logger,
		policies:   newPolicyTable(),
		adm:        newAdmission(cfg.MaxPendingOps, cfg.RetryAfterHint),
		stop:       make(chan struct{}),
		repairKick: make(chan struct{}, 1),
	}
	if len(cfg.FederationMembers) > 0 {
		if cfg.MemberIndex < 0 || cfg.MemberIndex >= len(cfg.FederationMembers) {
			return nil, fmt.Errorf("manager: member index %d outside federation of %d", cfg.MemberIndex, len(cfg.FederationMembers))
		}
		ms, err := federation.NewMembership(cfg.FederationMembers)
		if err != nil {
			return nil, fmt.Errorf("manager: %w", err)
		}
		m.fed = ms
	}
	if cfg.MapCacheEntries != 0 {
		n := cfg.MapCacheEntries
		if n < 0 {
			n = 0 // disabled
		}
		m.cat.maps = newHotMapCache(n)
	}
	if cfg.JournalPath != "" {
		// Recovery order: newest valid snapshot first (checksum-verified,
		// falling back to the previous one on corruption), then the journal
		// suffix past the snapshot's ticket watermark. The snapshot loads
		// before the journal opens because the watermark floors the ticket
		// counter, which must be final before the async writer starts.
		watermark, err := m.loadSnapshot()
		if err != nil {
			return nil, fmt.Errorf("manager: load snapshot: %w", err)
		}
		j, err := openJournal(cfg.JournalPath, cfg.SyncJournal, cfg.FsyncJournal, m.logf, watermark)
		if err != nil {
			return nil, fmt.Errorf("manager: %w", err)
		}
		m.journal = j
		if err := m.replayJournal(watermark); err != nil {
			return nil, fmt.Errorf("manager: replay journal: %w", err)
		}
		// Installed only after replay (replayed entries must not be
		// re-journaled). The catalog invokes it inside the dataset
		// stripe's critical section so the journal's global order always
		// respects copy-on-write causality across stripes.
		m.cat.journalHook = m.journalRecord
	}
	if cfg.Recover {
		m.recovering.Store(true)
		m.recovery = newRecoveryState()
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("manager: listen %s: %w", cfg.ListenAddr, err)
		}
	}
	m.srv = wire.NewServerWithConfig(ln, wire.ServerConfig{
		Handler:         m.handle,
		Shaper:          cfg.Shaper,
		MaxConnInflight: cfg.MaxConnInflight,
		Overload:        m.adm.overloadHook,
	})

	m.wg.Add(3)
	go m.sweepLoop()
	go m.replicationLoop()
	go m.retentionLoop()
	if m.journal != nil && cfg.SnapshotInterval > 0 {
		m.wg.Add(1)
		go m.snapshotLoop()
	}
	return m, nil
}

// Addr returns the manager's service address.
func (m *Manager) Addr() string { return m.srv.Addr() }

// MemberJournalPath derives federation member i's journal file from a
// shared journal-path template. Every caller that maps a template to a
// member's journal (NewFederation, the grid's federated restart) must go
// through here: a second copy of the naming scheme would let a restarted
// member open a fresh journal at the wrong path and silently replay
// nothing.
func MemberJournalPath(path string, i int) string {
	return fmt.Sprintf("%s-member%d", path, i)
}

// NewFederation starts n managers as one federation on pre-bound loopback
// listeners, so every member is constructed with the complete (and
// therefore epoch-stable) member address list. tmpl is the per-member
// config template; ListenAddr/Listener/FederationMembers/MemberIndex are
// filled in per member, and a configured JournalPath fans out to one file
// per member (N processes appending to one journal would interleave
// records and each replay would resurrect the others' partitions). n == 1
// starts one standalone manager. The grid test harness and the fedload
// experiment share this bootstrap.
func NewFederation(n int, tmpl Config) ([]*Manager, []string, error) {
	if n <= 0 {
		n = 1
	}
	listeners := make([]net.Listener, n)
	members := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, nil, fmt.Errorf("manager: bind federation listener: %w", err)
		}
		listeners[i] = ln
		members[i] = ln.Addr().String()
	}
	mgrs := make([]*Manager, 0, n)
	for i, ln := range listeners {
		cfg := tmpl
		cfg.ListenAddr = ""
		cfg.Listener = ln
		if n > 1 {
			cfg.FederationMembers = members
			cfg.MemberIndex = i
			if cfg.JournalPath != "" {
				cfg.JournalPath = MemberJournalPath(cfg.JournalPath, i)
			}
		}
		m, err := New(cfg)
		if err != nil {
			for _, l := range listeners[i:] {
				l.Close()
			}
			for _, started := range mgrs {
				started.Close()
			}
			return nil, nil, fmt.Errorf("manager: start federation member %d: %w", i, err)
		}
		mgrs = append(mgrs, m)
	}
	return mgrs, members, nil
}

// Close stops the manager and its background tasks. It returns the first
// error the journal writer could not recover from (entries acknowledged
// before the sticky error tripped may not have reached the file), so
// operators learn about silent durability loss at shutdown at the latest.
func (m *Manager) Close() error {
	var err error
	m.closeOnce.Do(func() {
		close(m.stop)
		err = m.srv.Close()
		m.wg.Wait()
		m.pool.Close()
		if m.journal != nil {
			if jerr := m.journal.close(); jerr != nil && err == nil {
				err = fmt.Errorf("manager: journal: %w", jerr)
			}
		}
	})
	return err
}

func (m *Manager) logf(format string, args ...interface{}) {
	if m.logger != nil {
		m.logger.Printf("manager: "+format, args...)
	}
}

// owns reports whether this manager's partition includes name's dataset
// key (always true on a standalone manager). Recovery uses it to keep
// benefactor-quorum restores partition-local.
func (m *Manager) owns(name string) bool {
	if m.fed == nil {
		return true
	}
	idx, _ := m.fed.OwnerOf(name)
	return idx == m.cfg.MemberIndex
}

// checkPartition enforces the federation partition filter on a
// dataset-scoped request: the epoch (when the caller supplied one) must
// match this member's, and the dataset key must hash to this member.
// Standalone managers accept everything — the filter is what makes a
// federated member safe against a misconfigured router or a direct-dial
// client, not a general admission check.
func (m *Manager) checkPartition(name string, epoch uint64) error {
	if m.fed == nil {
		// A nonzero epoch comes only from a multi-member router: its
		// caller believes this process is a federation member. Accepting
		// would let a member accidentally restarted without its
		// -federation flags serve every partition's keys undetected.
		if epoch != 0 {
			return fmt.Errorf("manager: request epoch %#x but this manager is not federated: %w",
				epoch, core.ErrEpochMismatch)
		}
		return nil
	}
	if epoch != 0 && epoch != m.fed.Epoch() {
		return fmt.Errorf("manager: request epoch %#x, member epoch %#x: %w",
			epoch, m.fed.Epoch(), core.ErrEpochMismatch)
	}
	if idx, _ := m.fed.OwnerOf(name); idx != m.cfg.MemberIndex {
		return fmt.Errorf("manager: dataset %q owned by federation member %d, this is member %d: %w",
			namespace.DatasetOf(name), idx, m.cfg.MemberIndex, core.ErrNotOwner)
	}
	return nil
}

// handle dispatches one RPC.
func (m *Manager) handle(r *wire.Req) (wire.Resp, error) {
	switch r.Op {
	case proto.MRegister:
		var req proto.RegisterReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		return m.handleRegister(req)
	case proto.MHeartbeat:
		var req proto.HeartbeatReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		if err := m.reg.heartbeat(req); err != nil {
			return wire.Resp{}, err
		}
		// Scrub reports: a quarantined replica leaves the chunk-map now, so
		// readers stop being routed to it and the repair scheduler sees the
		// chunk one replica short immediately.
		if len(req.Corrupt) > 0 {
			dropped := 0
			for _, id := range req.Corrupt {
				if m.cat.dropLocation(id, req.ID) {
					dropped++
				}
			}
			m.stats.repairCorrupt.Add(int64(len(req.Corrupt)))
			m.logf("benefactor %s reported %d corrupt chunks (%d locations dropped)", req.ID, len(req.Corrupt), dropped)
			m.kickRepair()
		}
		return wire.Resp{Meta: proto.HeartbeatResp{OK: true, Recovering: m.recovering.Load()}}, nil
	case proto.MAlloc:
		var req proto.AllocReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		if err := m.adm.enter(); err != nil {
			return wire.Resp{}, err
		}
		start := time.Now()
		resp, err := m.handleAlloc(req)
		m.allocLat.Observe(time.Since(start))
		m.adm.exit()
		return resp, err
	case proto.MExtend:
		var req proto.ExtendReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		if err := m.adm.enter(); err != nil {
			return wire.Resp{}, err
		}
		resp, err := m.handleExtend(req)
		m.adm.exit()
		return resp, err
	case proto.MCommit:
		var req proto.CommitReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		if err := m.adm.enter(); err != nil {
			return wire.Resp{}, err
		}
		start := time.Now()
		resp, err := m.handleCommit(req)
		m.commitLat.Observe(time.Since(start))
		m.adm.exit()
		return resp, err
	case proto.MAbort:
		var req proto.AbortReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		return m.handleAbort(req)
	case proto.MHasChunks:
		var req proto.HasReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		m.stats.dedupBatches.Add(1)
		m.stats.dedupChunksQueried.Add(int64(len(req.IDs)))
		present := m.cat.hasChunks(req.IDs)
		var hits int64
		for _, p := range present {
			if p {
				hits++
			}
		}
		m.stats.dedupHits.Add(hits)
		return wire.Resp{Meta: proto.HasResp{Present: present}}, nil
	case proto.MGetMap:
		var req proto.GetMapReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		m.stats.transactions.Add(1)
		m.stats.getMaps.Add(1)
		if err := m.checkPartition(req.Name, req.PartitionEpoch); err != nil {
			return wire.Resp{}, err
		}
		var (
			name string
			cm   *core.ChunkMap
			err  error
		)
		asOf := req.Version == 0 && !req.AsOf.IsZero()
		if asOf {
			name, cm, err = m.cat.getMapAsOf(req.Name, req.AsOf)
		} else {
			name, cm, err = m.cat.getMap(req.Name, req.Version)
		}
		if err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: proto.GetMapResp{Name: name, Map: cm, AsOfResolved: asOf}}, nil
	case proto.MGetMaps:
		var req proto.GetMapsReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		m.stats.transactions.Add(1)
		m.stats.prefetchBatches.Add(1)
		return m.handleGetMaps(req)
	case proto.MHistory:
		var req proto.HistoryReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		m.stats.transactions.Add(1)
		m.stats.histories.Add(1)
		if err := m.checkPartition(req.Name, req.PartitionEpoch); err != nil {
			return wire.Resp{}, err
		}
		resp, err := m.cat.history(req.Name)
		if err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: resp}, nil
	case proto.MDiff:
		var req proto.DiffReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		m.stats.transactions.Add(1)
		m.stats.diffs.Add(1)
		if err := m.checkPartition(req.Name, req.PartitionEpoch); err != nil {
			return wire.Resp{}, err
		}
		resp, err := m.cat.diff(req.Name, req.From, req.To)
		if err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: resp}, nil
	case proto.MStatVersion:
		var req proto.StatVersionReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		m.stats.transactions.Add(1)
		m.stats.statVersions.Add(1)
		if err := m.checkPartition(req.Name, req.PartitionEpoch); err != nil {
			return wire.Resp{}, err
		}
		var (
			name string
			ds   core.DatasetID
			ver  core.VersionID
			err  error
		)
		asOf := !req.AsOf.IsZero()
		if asOf {
			name, ds, ver, err = m.cat.statVersionAsOf(req.Name, req.AsOf)
		} else {
			name, ds, ver, err = m.cat.statVersion(req.Name)
		}
		if err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: proto.StatVersionResp{Name: name, Dataset: ds, Version: ver, AsOfResolved: asOf}}, nil
	case proto.MList:
		var req proto.ListReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: proto.ListResp{Datasets: m.cat.list(req.Folder, m.reg.online)}}, nil
	case proto.MStat:
		var req proto.StatReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		if err := m.checkPartition(req.Name, req.PartitionEpoch); err != nil {
			return wire.Resp{}, err
		}
		info, err := m.cat.stat(req.Name, m.reg.online)
		if err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: proto.StatResp{Dataset: info}}, nil
	case proto.MDelete:
		var req proto.DeleteReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		return m.handleDelete(req)
	case proto.MPolicySet:
		var req proto.PolicySetReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		if err := req.Policy.Validate(); err != nil {
			return wire.Resp{}, err
		}
		// Apply and journal under the policy-table lock so the update is
		// all-or-nothing (a journal failure reverts it) and a snapshot cut
		// can never split the pair.
		if err := m.policies.setJournaled(req.Folder, req.Policy, m.policyJournalFn()); err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: proto.HeartbeatResp{OK: true}}, nil
	case proto.MPolicyGet:
		var req proto.PolicyGetReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: proto.PolicyGetResp{Policy: m.policies.get(req.Folder)}}, nil
	case proto.MPolicyDryRun:
		var req proto.PolicyDryRunReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: m.policyDryRun(req, time.Now())}, nil
	case proto.MGCReport:
		var req proto.GCReportReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		return m.handleGCReport(req)
	case proto.MBenefactors:
		return wire.Resp{Meta: proto.BenefactorsResp{Benefactors: m.reg.list()}}, nil
	case proto.MReplStatus:
		var req proto.ReplStatusReq
		if err := wire.UnmarshalMeta(r.Meta, &req); err != nil {
			return wire.Resp{}, err
		}
		if err := m.checkPartition(req.Name, req.PartitionEpoch); err != nil {
			return wire.Resp{}, err
		}
		resp, err := m.cat.replStatus(req.Name, m.reg.online)
		if err != nil {
			return wire.Resp{}, err
		}
		return wire.Resp{Meta: resp}, nil
	case proto.MStats:
		return wire.Resp{Meta: m.statsSnapshot()}, nil
	default:
		return wire.Resp{}, fmt.Errorf("manager: unknown op %q", r.Op)
	}
}

func (m *Manager) handleRegister(req proto.RegisterReq) (wire.Resp, error) {
	if req.ID == "" || req.Addr == "" {
		return wire.Resp{}, errors.New("manager: register requires id and addr")
	}
	prev := m.reg.register(req, m.sess.reservedOn(req.ID))
	m.logf("registered benefactor %s at %s (capacity %d)", req.ID, req.Addr, req.Capacity)
	recovering := m.recovering.Load()
	if recovering {
		m.wg.Add(1)
		go func(addr string) {
			defer m.wg.Done()
			m.pullRecoveryMaps(addr)
		}(req.Addr)
	}
	resp := proto.RegisterResp{
		HeartbeatInterval: m.cfg.HeartbeatInterval,
		Recovering:        recovering,
	}
	// Rejoin reconciliation: the registration carries the node's chunk
	// inventory. Locations the catalog still wants (committed or
	// mid-commit) are re-adopted — a flap past DeadTimeout heals in this
	// one RPC instead of re-replicating everything the decommission
	// dropped — and the remainder is returned as the node's garbage set.
	// While recovering the catalog is incomplete: adopt what has already
	// been restored, condemn nothing.
	chunks := req.Chunks
	if len(chunks) > proto.MaxRegisterChunks {
		chunks = chunks[:proto.MaxRegisterChunks]
	}
	for _, id := range chunks {
		if m.cat.adoptLocation(id, req.ID) {
			resp.Reconciled++
		} else if !recovering {
			resp.Garbage = append(resp.Garbage, id)
		}
	}
	if resp.Reconciled > 0 {
		m.stats.repairReconciled.Add(int64(resp.Reconciled))
		m.logf("benefactor %s rejoined: %d locations reconciled, %d garbage", req.ID, resp.Reconciled, len(resp.Garbage))
	}
	if prev == core.NodeDead || resp.Reconciled > 0 {
		// Reconciled locations may satisfy repairs the decommission queued;
		// a fresh round recomputes against the healed chunk-map.
		m.kickRepair()
	}
	return wire.Resp{Meta: resp}, nil
}

func (m *Manager) handleAlloc(req proto.AllocReq) (wire.Resp, error) {
	m.stats.transactions.Add(1)
	if req.Name == "" {
		return wire.Resp{}, errors.New("manager: alloc requires a file name")
	}
	if err := m.checkPartition(req.Name, req.PartitionEpoch); err != nil {
		return wire.Resp{}, err
	}
	width := req.StripeWidth
	if width <= 0 {
		width = m.cfg.DefaultStripeWidth
	}
	chunkSize := req.ChunkSize
	if chunkSize <= 0 {
		chunkSize = m.cfg.DefaultChunkSize
	}
	repl := req.Replication
	if repl <= 0 {
		repl = m.cfg.DefaultReplication
	}
	perNode := perNodeShare(req.ReserveBytes, width)
	stripe, err := m.reg.allocateStripe(width, perNode)
	if err != nil {
		return wire.Resp{}, err
	}
	s := m.sess.open(req.Name, stripe, chunkSize, req.Variable, repl, perNode, req.Writer)
	return wire.Resp{Meta: proto.AllocResp{WriteID: s.id, Stripe: stripe}}, nil
}

// handleGetMaps serves the batch map prefetch (MGetMaps): the latest
// chunk-map of every owned, existing name in the request. Non-owned and
// unknown names are skipped, not errors — a router fans the identical
// batch to every touched federation member and each answers for its own
// partition; the client falls back to per-name fetches for the rest. An
// epoch mismatch still fails the whole batch (router config drift).
func (m *Manager) handleGetMaps(req proto.GetMapsReq) (wire.Resp, error) {
	var resp proto.GetMapsResp
	for _, name := range req.Names {
		if err := m.checkPartition(name, req.PartitionEpoch); err != nil {
			if errors.Is(err, core.ErrEpochMismatch) {
				return wire.Resp{}, err
			}
			continue
		}
		fileName, cm, err := m.cat.getMap(name, 0)
		if err != nil {
			continue
		}
		resp.Maps = append(resp.Maps, proto.NamedMap{Name: fileName, Map: cm})
	}
	return wire.Resp{Meta: resp}, nil
}

func (m *Manager) handleExtend(req proto.ExtendReq) (wire.Resp, error) {
	m.stats.transactions.Add(1)
	m.stats.extends.Add(1)
	s, err := m.sess.get(req.WriteID)
	if err != nil {
		return wire.Resp{}, err
	}
	perNode := perNodeShare(req.Bytes, len(s.stripe))
	ids, err := m.sess.extend(req.WriteID, perNode)
	if err != nil {
		return wire.Resp{}, err
	}
	m.reg.reserve(ids, perNode)
	return wire.Resp{Meta: proto.ExtendResp{Reserved: req.Bytes}}, nil
}

func (m *Manager) handleCommit(req proto.CommitReq) (wire.Resp, error) {
	m.stats.transactions.Add(1)
	s, err := m.sess.close(req.WriteID)
	if err != nil {
		return wire.Resp{}, err
	}
	m.reg.release(s.stripeIDs, s.perNode)
	// The catalog journals the commit itself (via the journal hook, inside
	// the dataset stripe's critical section) so journal order matches
	// publication order.
	cm, newBytes, err := m.cat.commit(s.name, namespace.FolderOf(s.name), s.replication, s.chunkSize, s.variable, req.FileSize, req.Chunks, s.writer)
	if err != nil {
		return wire.Resp{}, err
	}
	if err := fpCommitPublish.Hit(); err != nil {
		return wire.Resp{}, err
	}
	// Apply the folder's replace policy synchronously: a new image makes
	// old ones obsolete at commit time (paper §IV.D "Automated replace").
	m.applyReplacePolicy(s.name)
	return wire.Resp{Meta: proto.CommitResp{Dataset: cm.Dataset, Version: cm.Version, NewBytes: newBytes}}, nil
}

func (m *Manager) handleAbort(req proto.AbortReq) (wire.Resp, error) {
	m.stats.transactions.Add(1)
	s, err := m.sess.close(req.WriteID)
	if err != nil {
		return wire.Resp{}, err
	}
	m.reg.release(s.stripeIDs, s.perNode)
	return wire.Resp{Meta: proto.HeartbeatResp{OK: true}}, nil
}

func (m *Manager) handleDelete(req proto.DeleteReq) (wire.Resp, error) {
	m.stats.transactions.Add(1)
	if err := m.checkPartition(req.Name, req.PartitionEpoch); err != nil {
		return wire.Resp{}, err
	}
	orphans, err := m.cat.deleteVersion(req.Name, req.Version)
	if err != nil {
		return wire.Resp{}, err
	}
	m.logf("deleted %s (version %d): %d chunks orphaned", req.Name, req.Version, len(orphans))
	return wire.Resp{Meta: proto.HeartbeatResp{OK: true}}, nil
}

func (m *Manager) handleGCReport(req proto.GCReportReq) (wire.Resp, error) {
	// While recovering, the catalog is incomplete: every chunk would look
	// unreferenced. Answer conservatively until recovery finishes, or
	// benefactors would garbage-collect live data.
	if m.recovering.Load() {
		return wire.Resp{Meta: proto.GCReportResp{}}, nil
	}
	var deletable []core.ChunkID
	for _, id := range req.IDs {
		if !m.cat.referenced(id) {
			deletable = append(deletable, id)
		}
	}
	// Standalone, the deletable set IS the deleted set, so the counter is
	// exact. Federated, this reply is only one member's vote — the router
	// intersects votes and a chunk another member still references is
	// kept, so counting votes here would inflate ChunksCollected every
	// round for chunks that never die. Federated members therefore do not
	// count; the merged stat undercounts (reads 0) rather than lies.
	if m.fed == nil {
		m.stats.chunksCollected.Add(int64(len(deletable)))
	}
	return wire.Resp{Meta: proto.GCReportResp{Deletable: deletable}}, nil
}

func (m *Manager) statsSnapshot() proto.ManagerStats {
	total, online, suspectN, deadN := m.reg.counts()
	datasets, versions, chunks, logical, stored := m.cat.counters()
	dsStripes, ckStripes := m.cat.stripeSnapshot()
	sessStripes := m.sess.stripeSnapshot()
	regStats := m.reg.statsSnapshot()
	stripeOps, stripeContended := regStats.Ops, regStats.Contended
	for _, s := range [][]proto.StripeStats{dsStripes, ckStripes, sessStripes} {
		for _, st := range s {
			stripeOps += st.Ops
			stripeContended += st.Contended
		}
	}
	var fedInfo *proto.FederationInfo
	if m.fed != nil {
		fedInfo = &proto.FederationInfo{
			Members:     m.fed.Members(),
			MemberIndex: m.cfg.MemberIndex,
			Epoch:       m.fed.Epoch(),
		}
	}
	jBatches, jBatchLen, jFsyncs, jErrs := m.journal.counters()
	allocCount, allocSum, allocBuckets := m.allocLat.Snapshot()
	commitCount, commitSum, commitBuckets := m.commitLat.Snapshot()
	return proto.ManagerStats{
		Admission:          m.adm.snapshot(),
		AllocLatency:       proto.LatencyStats{Count: allocCount, SumMicros: allocSum, Buckets: allocBuckets},
		CommitLatency:      proto.LatencyStats{Count: commitCount, SumMicros: commitSum, Buckets: commitBuckets},
		CatalogStripes:     dsStripes,
		ChunkStripes:       ckStripes,
		SessionStripes:     sessStripes,
		Registry:           regStats,
		StripeOps:          stripeOps,
		StripeContention:   stripeContended,
		Federation:         fedInfo,
		Benefactors:        total,
		OnlineBenefactors:  online,
		SuspectBenefactors: suspectN,
		DeadBenefactors:    deadN,
		Datasets:           datasets,
		Versions:           versions,
		UniqueChunks:       chunks,
		LogicalBytes:       logical,
		StoredBytes:        stored,
		ActiveSessions:     m.sess.active(),
		Transactions:       m.stats.transactions.Load(),
		Extends:            m.stats.extends.Load(),
		DedupBatches:       m.stats.dedupBatches.Load(),
		DedupChunks:        m.stats.dedupChunksQueried.Load(),
		DedupHits:          m.stats.dedupHits.Load(),
		GetMaps:            m.stats.getMaps.Load(),
		StatVersions:       m.stats.statVersions.Load(),
		Histories:          m.stats.histories.Load(),
		Diffs:              m.stats.diffs.Load(),
		PrefetchBatches:    m.stats.prefetchBatches.Load(),
		MapCache:           m.cat.maps.snapshot(),
		ReplicasCopied:     m.stats.replicasCopied.Load(),
		Repair: proto.RepairStats{
			Pending:         m.stats.repairPending.Load(),
			Critical:        m.stats.repairCritical.Load(),
			CopiedBytes:     m.stats.repairCopiedBytes.Load(),
			Failed:          m.stats.repairFailed.Load(),
			CorruptReported: m.stats.repairCorrupt.Load(),
			Reconciled:      m.stats.repairReconciled.Load(),
			Decommissions:   m.stats.repairDecommissions.Load(),
		},
		ChunksCollected: m.stats.chunksCollected.Load(),
		VersionsPruned:  m.stats.versionsPruned.Load(),
		JournalBatches:  jBatches,
		JournalBatchLen: jBatchLen,
		JournalFsyncs:   jFsyncs,
		JournalErrors:   jErrs,
		JournalReplayed: m.stats.journalReplayed.Load(),
		Snapshots:       m.stats.snapshots.Load(),
		SnapshotSeq:     int64(m.stats.snapshotSeq.Load()),
	}
}

// Stats returns a snapshot of manager counters (in-process callers).
func (m *Manager) Stats() proto.ManagerStats { return m.statsSnapshot() }

// Invoke dispatches one manager RPC in-process, bypassing the TCP framing
// but exercising the exact handler path (request decode, counters, catalog,
// journal). req is marshalled like a wire metadata header; resp, when
// non-nil, receives the handler's response metadata. Load harnesses
// (BenchmarkManagerOps, the managerload experiment) use it to measure the
// metadata plane without the socket stack in front.
func (m *Manager) Invoke(op string, req, resp interface{}) error {
	var meta json.RawMessage
	if req != nil {
		b, err := json.Marshal(req)
		if err != nil {
			return fmt.Errorf("manager: invoke %s: marshal: %w", op, err)
		}
		meta = b
	}
	out, err := m.handle(&wire.Req{Op: op, Meta: meta})
	if err != nil {
		return err
	}
	if resp == nil || out.Meta == nil {
		return nil
	}
	b, err := json.Marshal(out.Meta)
	if err != nil {
		return fmt.Errorf("manager: invoke %s: marshal response: %w", op, err)
	}
	if err := json.Unmarshal(b, resp); err != nil {
		return fmt.Errorf("manager: invoke %s: unmarshal response: %w", op, err)
	}
	return nil
}

// sweepLoop expires dead benefactors and abandoned sessions.
func (m *Manager) sweepLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-ticker.C:
			suspect, dead := m.reg.sweep(now)
			for _, id := range suspect {
				m.logf("benefactor %s suspect (no heartbeat)", id)
			}
			for _, id := range dead {
				m.decommission(id)
			}
			for _, s := range m.sess.expire(now) {
				m.reg.release(s.stripeIDs, s.perNode)
				m.logf("write session %d (%s) expired; reservations released", s.id, s.name)
			}
		}
	}
}

// decommission drops every chunk location a dead benefactor held and
// journals the drop, so a manager restart cannot resurrect locations on a
// node declared dead before the crash. Repair then re-replicates from the
// survivors; if the node eventually rejoins, register's inventory
// reconciliation re-adopts whatever it still holds. The journal record is
// written outside any dataset stripe's critical section, so its order
// against concurrent commits is best-effort — a replay divergence there
// only re-creates locations that the next sweep or rejoin reconciles.
func (m *Manager) decommission(id core.NodeID) {
	// The drop proceeds even if journaling fails: routing readers to a
	// dead node is worse than a replayed journal missing one drop.
	m.journalRecord(journalEntry{Op: "decommission", Name: string(id)})
	dropped := m.cat.dropLocationEverywhere(id)
	m.stats.repairDecommissions.Add(1)
	m.logf("benefactor %s dead (silent past %v): decommissioned, %d chunk locations dropped", id, m.cfg.DeadTimeout, dropped)
	m.kickRepair()
}

// kickRepair nudges the replication scheduler to run now instead of at its
// next tick. Non-blocking: a pending kick already covers the event.
func (m *Manager) kickRepair() {
	select {
	case m.repairKick <- struct{}{}:
	default:
	}
}

// perNodeShare spreads a byte reservation across a stripe.
func perNodeShare(bytes int64, width int) int64 {
	if bytes <= 0 || width <= 0 {
		return 0
	}
	return (bytes + int64(width) - 1) / int64(width)
}
