package manager

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/federation"
	"stdchk/internal/proto"
)

// fedMembers starts an in-process federation of n managers sharing one
// member list, each with a registered benefactor, and returns them.
func fedMembers(t *testing.T, n int) []*Manager {
	t.Helper()
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("fedtest-member-%d:9400", i)
	}
	out := make([]*Manager, n)
	for i := range out {
		m, err := New(Config{
			FederationMembers: members,
			MemberIndex:       i,
			HeartbeatInterval: time.Hour,
			SessionTTL:        time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		req := proto.RegisterReq{
			ID: core.NodeID(fmt.Sprintf("fb%d", i)), Addr: fmt.Sprintf("fb%d:1", i),
			Capacity: 1 << 40, Free: 1 << 40,
		}
		if err := m.Invoke(proto.MRegister, req, nil); err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

// TestPartitionFilterAgreesWithRouterMap is the manager half of the
// partition property test: for many dataset keys, exactly the member that
// federation.OwnerIndex names accepts an alloc; every other member
// rejects it with ErrNotOwner. The router and the filter share the
// partition function, so this pins their agreement end to end.
func TestPartitionFilterAgreesWithRouterMap(t *testing.T) {
	const n = 3
	mgrs := fedMembers(t, n)
	for trial := 0; trial < 40; trial++ {
		name := fmt.Sprintf("fedapp%d.n%d.t0", trial%7, trial)
		owner := federation.OwnerIndex(fmt.Sprintf("fedapp%d.n%d", trial%7, trial), n)
		for i, m := range mgrs {
			if got := m.owns(name); got != (i == owner) {
				t.Fatalf("%s: member %d owns=%v, want owner %d", name, i, got, owner)
			}
			var alloc proto.AllocResp
			err := m.Invoke(proto.MAlloc, proto.AllocReq{Name: name, ReserveBytes: 1 << 10}, &alloc)
			if i == owner {
				if err != nil {
					t.Fatalf("%s: owner %d rejected alloc: %v", name, i, err)
				}
				if err := m.Invoke(proto.MAbort, proto.AbortReq{WriteID: alloc.WriteID}, nil); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if !errors.Is(err, core.ErrNotOwner) {
				t.Fatalf("%s: member %d (owner %d) returned %v, want ErrNotOwner", name, i, owner, err)
			}
		}
	}
}

// TestPartitionEpochMismatch checks the configuration-drift guard: a
// request carrying a different epoch is rejected even on the owner, a
// request with epoch 0 (a non-federation-aware caller) passes the
// ownership check only.
func TestPartitionEpochMismatch(t *testing.T) {
	const n = 2
	mgrs := fedMembers(t, n)
	// Find a name owned by member 0.
	name := ""
	for i := 0; ; i++ {
		cand := fmt.Sprintf("drift.n%d", i)
		if federation.OwnerIndex(cand, n) == 0 {
			name = cand + ".t0"
			break
		}
	}
	goodEpoch := mgrs[0].fed.Epoch()
	err := mgrs[0].Invoke(proto.MAlloc, proto.AllocReq{Name: name, PartitionEpoch: goodEpoch ^ 1, ReserveBytes: 1}, nil)
	if !errors.Is(err, core.ErrEpochMismatch) {
		t.Fatalf("stale epoch: %v, want ErrEpochMismatch", err)
	}
	var alloc proto.AllocResp
	if err := mgrs[0].Invoke(proto.MAlloc, proto.AllocReq{Name: name, PartitionEpoch: goodEpoch, ReserveBytes: 1}, &alloc); err != nil {
		t.Fatalf("matching epoch rejected: %v", err)
	}
	if err := mgrs[0].Invoke(proto.MAbort, proto.AbortReq{WriteID: alloc.WriteID}, nil); err != nil {
		t.Fatal(err)
	}
	if err := mgrs[0].Invoke(proto.MStat, proto.StatReq{Name: name}, nil); errors.Is(err, core.ErrEpochMismatch) {
		t.Fatalf("epoch-0 caller rejected by epoch check: %v", err)
	}

	// The inverse misconfiguration: a standalone manager (a federation
	// member restarted without its -federation flags) must refuse a
	// multi-member router's epoch instead of silently serving every
	// partition.
	solo, err := New(Config{HeartbeatInterval: time.Hour, SessionTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { solo.Close() })
	err = solo.Invoke(proto.MStat, proto.StatReq{Name: name, PartitionEpoch: goodEpoch}, nil)
	if !errors.Is(err, core.ErrEpochMismatch) {
		t.Fatalf("standalone manager accepted a federated epoch: %v", err)
	}
}

// TestRegistryStatsCounters checks the striped registry's per-op counters
// surface through ManagerStats like the PR 3 stripe counters do.
func TestRegistryStatsCounters(t *testing.T) {
	r := newRegistry(time.Minute, 0)
	r.register(regReq("s1", 1<<20), 0)
	r.register(regReq("s2", 1<<20), 0)
	if err := r.heartbeat(proto.HeartbeatReq{ID: "s1", Free: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	stripe, err := r.allocateStripe(2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]core.NodeID, 0, len(stripe))
	for _, s := range stripe {
		ids = append(ids, s.ID)
	}
	r.reserve(ids, 512)
	r.release(ids, 1536)
	st := r.statsSnapshot()
	if st.Allocs != 1 || st.Reserves != 1 || st.Releases != 1 || st.Heartbeats != 1 {
		t.Fatalf("per-op counters: %+v", st)
	}
	if st.Ops == 0 {
		t.Fatalf("node-table lock ops never counted: %+v", st)
	}
	for _, info := range r.list() {
		if info.Reserved != 0 {
			t.Fatalf("node %s left with %d reserved after full release", info.ID, info.Reserved)
		}
	}
}

// TestRegistryConcurrentAlloc audits the RLock-mostly registry under
// parallel allocation: reservations must balance exactly once everything
// is released, heartbeats must interleave without corrupting soft state,
// and round-robin must keep touching multiple nodes. Run with -race this
// is the concurrency proof for the atomic-cursor redesign.
func TestRegistryConcurrentAlloc(t *testing.T) {
	r := newRegistry(time.Minute, 0)
	const nodes, workers, rounds = 8, 12, 40
	for i := 0; i < nodes; i++ {
		r.register(regReq(fmt.Sprintf("cn%d", i), 1<<30), 0)
	}
	var wg sync.WaitGroup
	touched := make([]map[core.NodeID]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			touched[w] = make(map[core.NodeID]int)
			for i := 0; i < rounds; i++ {
				stripe, err := r.allocateStripe(2, 4096)
				if err != nil {
					t.Error(err)
					return
				}
				ids := make([]core.NodeID, 0, len(stripe))
				for _, s := range stripe {
					ids = append(ids, s.ID)
					touched[w][s.ID]++
				}
				r.reserve(ids, 4096)
				if i%3 == 0 {
					if err := r.heartbeat(proto.HeartbeatReq{ID: ids[0], Free: 1 << 30}); err != nil {
						t.Error(err)
						return
					}
				}
				r.release(ids, 8192)
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	distinct := make(map[core.NodeID]struct{})
	for _, m := range touched {
		for id := range m {
			distinct[id] = struct{}{}
		}
	}
	if len(distinct) < nodes/2 {
		t.Fatalf("round-robin touched only %d of %d nodes", len(distinct), nodes)
	}
	for _, info := range r.list() {
		if info.Reserved != 0 {
			t.Fatalf("node %s left with %d reserved bytes", info.ID, info.Reserved)
		}
	}
	st := r.statsSnapshot()
	if st.Allocs != workers*rounds {
		t.Fatalf("allocs counter %d, want %d", st.Allocs, workers*rounds)
	}
}

// TestFederationConfigValidation rejects inconsistent member/index
// configurations.
func TestFederationConfigValidation(t *testing.T) {
	_, err := New(Config{FederationMembers: []string{"a:1", "b:1"}, MemberIndex: 2})
	if err == nil {
		t.Fatal("out-of-range member index accepted")
	}
	_, err = New(Config{FederationMembers: []string{"a:1", "a:1"}, MemberIndex: 0})
	if err == nil {
		t.Fatal("duplicate member list accepted")
	}
}
