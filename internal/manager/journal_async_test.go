package manager

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// The tests in this file pin the ordered async journal writer's contract:
// ticket order equals the order the synchronous journal would have
// written (so the two modes are byte-identical on a deterministic
// workload), replaying an async journal written under racing COW/dedup
// commits reconstructs exactly the live catalog's final state (in any
// stripe layout — the PR 3 invariance harness extended to the async
// writer), and a clean Close drains every acknowledged entry before the
// file closes.

// driveSequentialJournal pushes a fixed, deterministic workload through a
// manager's handlers: no concurrency, so sync and async journals must
// come out byte-identical.
func driveSequentialJournal(t *testing.T, syncJournal bool) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seq.journal")
	m, err := New(Config{
		JournalPath:       path,
		SyncJournal:       syncJournal,
		HeartbeatInterval: time.Hour,
		SessionTTL:        time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.reg.register(regReq("sq1", 1<<30), 0)
	for w := 0; w < 3; w++ {
		for ti := 0; ti < 4; ti++ {
			name := fmt.Sprintf("seq.n%d.t%d", w, ti)
			alloc, err := m.handleAlloc(proto.AllocReq{Name: name, StripeWidth: 1, ChunkSize: 512, ReserveBytes: 1024})
			if err != nil {
				t.Fatal(err)
			}
			chunks, total := commitChunks(int64(w*100+ti), 2, 512)
			if _, err := m.handleCommit(proto.CommitReq{
				WriteID: alloc.Meta.(proto.AllocResp).WriteID, FileSize: total, Chunks: chunks,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.handleDelete(proto.DeleteReq{Name: "seq.n1.t2"}); err != nil {
		t.Fatal(err)
	}
	m.policies.set("seq", core.Policy{Kind: core.PolicyReplace, KeepVersions: 2})
	m.journalRecord(journalEntry{Op: "policy", Name: "seq", Policy: &core.Policy{Kind: core.PolicyReplace, KeepVersions: 2}})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestAsyncJournalByteIdenticalToSync: on a deterministic sequential
// workload the ticket-ordered async writer must produce byte-for-byte
// the journal the synchronous writer produces.
func TestAsyncJournalByteIdenticalToSync(t *testing.T) {
	syncRaw := driveSequentialJournal(t, true)
	asyncRaw := driveSequentialJournal(t, false)
	if len(syncRaw) == 0 {
		t.Fatal("sync journal is empty")
	}
	if !bytes.Equal(syncRaw, asyncRaw) {
		t.Fatalf("async journal diverged from sync journal:\nsync:  %s\nasync: %s", syncRaw, asyncRaw)
	}
}

// TestAsyncJournalReplayMatchesLiveState: racing COW/dedup commits and
// deletes journaled through the async writer must replay — in any stripe
// layout, including the single-lock reference — to exactly the live
// catalog's final state. The same property must hold in sync mode (it is
// the PR 3 harness's contract), so both run here; a divergence isolates
// whether the async ordering, not the workload, broke replay.
func TestAsyncJournalReplayMatchesLiveState(t *testing.T) {
	for _, mode := range []struct {
		name        string
		syncJournal bool
	}{
		{"async", false},
		{"sync", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			journalPath, live := driveJournalWorkload(t, 8, 5, mode.syncJournal)
			if len(live.Datasets) == 0 || len(live.Chunks) == 0 {
				t.Fatal("live workload produced an empty catalog")
			}
			for _, stripes := range []int{1, 16} {
				replayed := replayCatalogSnap(t, journalPath, stripes, false)
				if !reflect.DeepEqual(live, replayed) {
					t.Fatalf("%s-journal replay with %d stripes diverged from live state:\nlive:     %+v\nreplayed: %+v",
						mode.name, stripes, live, replayed)
				}
			}
		})
	}
}

// TestAsyncJournalCloseDrains: every commit acknowledged before Close
// must be on disk after Close returns — the writer goroutine drains its
// queue and flushes before the file closes, whatever the backlog.
func TestAsyncJournalCloseDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drain.journal")
	m, err := New(Config{
		JournalPath:       path,
		HeartbeatInterval: time.Hour,
		SessionTTL:        time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.reg.register(regReq("dr1", 1<<30), 0)
	const commits = 500
	for i := 0; i < commits; i++ {
		name := fmt.Sprintf("drain.n%d.t0", i)
		alloc, err := m.handleAlloc(proto.AllocReq{Name: name, StripeWidth: 1, ChunkSize: 256, ReserveBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		chunks, total := commitChunks(int64(i), 1, 256)
		if _, err := m.handleCommit(proto.CommitReq{
			WriteID: alloc.Meta.(proto.AllocResp).WriteID, FileSize: total, Chunks: chunks,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Close immediately: the writer goroutine may still hold a large
	// backlog of acknowledged entries.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != commits {
		t.Fatalf("journal holds %d entries after Close, want %d acknowledged commits", len(entries), commits)
	}
	// Ticket order on disk: this workload commits drain.nI sequentially,
	// so the journal must list them in commit order.
	for i, e := range entries {
		if want := fmt.Sprintf("drain.n%d.t0", i); e.Name != want {
			t.Fatalf("entry %d is %q, want %q (ticket order violated)", i, e.Name, want)
		}
	}
	// A replacement manager must see every version.
	m2, err := New(Config{JournalPath: path, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Stats().Versions; got != commits {
		t.Fatalf("replay after drained close restored %d versions, want %d", got, commits)
	}
}

// TestAsyncJournalRecordAfterClose: a record attempted after close must
// report ErrClosed, not hang or panic against the closed queue.
func TestAsyncJournalRecordAfterClose(t *testing.T) {
	j, err := openJournal(filepath.Join(t.TempDir(), "c.journal"), false, false, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.record(journalEntry{Op: "policy", Name: "x", Policy: &core.Policy{}}, false); err != nil {
		t.Fatal(err)
	}
	j.close()
	if err := j.record(journalEntry{Op: "policy", Name: "y", Policy: &core.Policy{}}, false); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("record after close returned %v, want ErrClosed", err)
	}
	// close is idempotent.
	j.close()
}
