package manager

import (
	"container/list"
	"sync"
	"sync/atomic"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// hotMapCache memoizes the wire-ready chunk-map — including the sorted
// per-chunk location sets — per (dataset key, version). Building a map is
// the expensive half of getMap: one read-lock acquisition per touched
// chunk stripe plus a sort of every chunk's location set, repeated for
// every reader of the same version. A restart storm (every process of a
// job re-opening its checkpoint at once) pays that cost N times for one
// unchanged answer; the cache pays it once.
//
// Staleness contract: location sets only ever grow while a version is
// alive (commits and background replication add replicas; nothing removes
// one short of replica death or deletion), so a cached map is at worst
// missing the newest replicas — readers still find live data. The events
// that can shrink a location set or change a dataset's version chain
// invalidate eagerly: commit and delete (and recovery restore) drop the
// dataset's entries, replica death (dropLocationEverywhere) flushes the
// whole cache because a node's chunks span datasets.
//
// The cache is a leaf lock: callers hold at most a dataset stripe lock
// (read or write), never a chunk stripe lock, when touching it.
type hotMapCache struct {
	mu  sync.Mutex
	cap int
	// byKey indexes the LRU list; byDataset tracks each dataset's live
	// entries so commit/delete invalidation is O(entries of that dataset).
	byKey     map[hotMapKey]*list.Element
	byDataset map[string]map[hotMapKey]struct{}
	lru       *list.List // front = most recently used

	// gen counts full flushes. A builder that read the catalog before a
	// flush must not insert its (possibly stale) map after it: getMap
	// snapshots the generation before building and put discards on
	// mismatch. Per-dataset invalidations need no generation — they are
	// serialized against same-dataset builders by the dataset stripe's
	// RW lock.
	gen atomic.Uint64

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

type hotMapKey struct {
	dataset string
	version core.VersionID
}

type hotMapEntry struct {
	key      hotMapKey
	fileName string
	m        *core.ChunkMap // canonical copy; hits return clones
}

// defaultMapCacheEntries bounds the hot-map cache when the config does
// not: at ~100 bytes per chunk ref a 1024-chunk map is ~100 KB, so the
// default worst case stays around a hundred MB of metadata for a cache
// that covers an entire job's restart set.
const defaultMapCacheEntries = 1024

// newHotMapCache builds a cache holding up to capEntries maps.
// capEntries <= 0 disables the cache (every call is a miss and nothing is
// stored) — the ablation baseline.
func newHotMapCache(capEntries int) *hotMapCache {
	c := &hotMapCache{cap: capEntries}
	if capEntries > 0 {
		c.byKey = make(map[hotMapKey]*list.Element)
		c.byDataset = make(map[string]map[hotMapKey]struct{})
		c.lru = list.New()
	}
	return c
}

func (c *hotMapCache) enabled() bool { return c.cap > 0 }

// get returns a clone of the cached map for (dataset, version), or nil on
// a miss. Cloning keeps the canonical copy immutable while callers hand
// the result to the wire layer or in-process readers.
func (c *hotMapCache) get(dataset string, version core.VersionID) (string, *core.ChunkMap) {
	if !c.enabled() {
		c.misses.Add(1)
		return "", nil
	}
	key := hotMapKey{dataset: dataset, version: version}
	c.mu.Lock()
	el, ok := c.byKey[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return "", nil
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*hotMapEntry)
	name, m := e.fileName, e.m
	c.mu.Unlock()
	c.hits.Add(1)
	return name, m.Clone()
}

// generation snapshots the flush counter; pass it back to put.
func (c *hotMapCache) generation() uint64 { return c.gen.Load() }

// put stores the canonical copy of a freshly built map, unless the cache
// was flushed since generation gen was read (the map may then describe
// locations that no longer exist). The caller must not retain or mutate m
// after put — hand clones out instead.
func (c *hotMapCache) put(gen uint64, dataset string, fileName string, m *core.ChunkMap) {
	if !c.enabled() || m == nil {
		return
	}
	key := hotMapKey{dataset: dataset, version: m.Version}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen.Load() != gen {
		return
	}
	if el, ok := c.byKey[key]; ok {
		// A racing miss rebuilt the same version; keep the newer build
		// (it can only have more locations).
		el.Value.(*hotMapEntry).m = m
		el.Value.(*hotMapEntry).fileName = fileName
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&hotMapEntry{key: key, fileName: fileName, m: m})
	c.byKey[key] = el
	ds, ok := c.byDataset[dataset]
	if !ok {
		ds = make(map[hotMapKey]struct{})
		c.byDataset[dataset] = ds
	}
	ds[key] = struct{}{}
	for c.lru.Len() > c.cap {
		c.evictLocked(c.lru.Back())
	}
}

// evictLocked removes one LRU element. Callers hold c.mu.
func (c *hotMapCache) evictLocked(el *list.Element) {
	if el == nil {
		return
	}
	e := el.Value.(*hotMapEntry)
	c.lru.Remove(el)
	delete(c.byKey, e.key)
	if ds, ok := c.byDataset[e.key.dataset]; ok {
		delete(ds, e.key)
		if len(ds) == 0 {
			delete(c.byDataset, e.key.dataset)
		}
	}
}

// invalidateDataset drops every cached version of one dataset (commit,
// delete, recovery restore).
func (c *hotMapCache) invalidateDataset(dataset string) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	var n int64
	for key := range c.byDataset[dataset] {
		if el, ok := c.byKey[key]; ok {
			c.evictLocked(el)
			n++
		}
	}
	c.mu.Unlock()
	if n > 0 {
		c.invalidations.Add(n)
	}
}

// invalidateAll flushes the cache (replica death: a node's chunks span
// datasets, so per-dataset bookkeeping cannot name the affected maps).
func (c *hotMapCache) invalidateAll() {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	c.gen.Add(1)
	n := int64(c.lru.Len())
	c.byKey = make(map[hotMapKey]*list.Element)
	c.byDataset = make(map[string]map[hotMapKey]struct{})
	c.lru.Init()
	c.mu.Unlock()
	if n > 0 {
		c.invalidations.Add(n)
	}
}

// snapshot reports the cache counters.
func (c *hotMapCache) snapshot() proto.MapCacheStats {
	return proto.MapCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Invalidations: c.invalidations.Load(),
	}
}
