package manager

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// TestRegistryLifecycleToDead walks one node through the full state
// machine with synthetic sweep times: online -> suspect (past ttl) ->
// dead (past deadAfter), with a heartbeat rescuing a suspect in between
// and a dead node's heartbeat rejected so it must re-register.
func TestRegistryLifecycleToDead(t *testing.T) {
	r := newRegistry(50*time.Millisecond, 120*time.Millisecond)
	r.register(regReq("n1", 1000), 700)
	t0 := time.Now()

	suspect, dead := r.sweep(t0.Add(60 * time.Millisecond))
	if len(suspect) != 1 || suspect[0] != "n1" || len(dead) != 0 {
		t.Fatalf("sweep past ttl: suspect=%v dead=%v", suspect, dead)
	}
	if r.online("n1") {
		t.Fatal("suspect node still counts as online")
	}

	// A heartbeat rescues the suspect.
	if err := r.heartbeat(proto.HeartbeatReq{ID: "n1", Free: 900}); err != nil {
		t.Fatal(err)
	}
	if !r.online("n1") {
		t.Fatal("heartbeat did not restore a suspect to online")
	}

	// Silence again, this time through to death. Both transitions measure
	// from the same LastSeen, so a single late sweep only moves the node
	// one step (online -> suspect); death needs a second sweep.
	hbAt := time.Now()
	if s, d := r.sweep(hbAt.Add(130 * time.Millisecond)); len(s) != 1 || len(d) != 0 {
		t.Fatalf("late sweep: suspect=%v dead=%v, want one suspect step", s, d)
	}
	suspect, dead = r.sweep(hbAt.Add(140 * time.Millisecond))
	if len(suspect) != 0 || len(dead) != 1 || dead[0] != "n1" {
		t.Fatalf("sweep past deadAfter: suspect=%v dead=%v", suspect, dead)
	}
	st, ok := r.lookup("n1")
	if !ok {
		t.Fatal("dead node vanished from the table")
	}
	st.mu.Lock()
	state, reserved := st.info.State, st.reserved
	st.mu.Unlock()
	if state != core.NodeDead || reserved != 0 {
		t.Fatalf("dead node: state=%s reserved=%d, want dead with reservation zeroed", state, reserved)
	}

	// Dead nodes cannot heartbeat back to life: the rejection forces a
	// re-registration, which is where inventory reconciliation happens.
	if err := r.heartbeat(proto.HeartbeatReq{ID: "n1"}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("heartbeat from dead node: %v, want ErrNotFound", err)
	}
	if prev := r.register(regReq("n1", 1000), 0); prev != core.NodeDead {
		t.Fatalf("re-register returned prev state %q, want dead", prev)
	}
	if !r.online("n1") {
		t.Fatal("re-registered node not online")
	}

	total, online, suspectN, deadN := r.counts()
	if total != 1 || online != 1 || suspectN != 0 || deadN != 0 {
		t.Fatalf("counts after rejoin = %d/%d/%d/%d", total, online, suspectN, deadN)
	}
}

// TestRegisterPreservesSessionReservations: a flapping benefactor that
// re-registers mid-write must keep the space its open sessions were
// promised — clearing it would let the manager over-promise the node.
func TestRegisterPreservesSessionReservations(t *testing.T) {
	m, err := New(Config{HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.reg.register(regReq("n1", 1<<20), 0)
	if _, err := m.handleAlloc(proto.AllocReq{
		Name: "resv.n1.t0", StripeWidth: 1, ChunkSize: 10, ReserveBytes: 4096,
	}); err != nil {
		t.Fatal(err)
	}
	want := m.sess.reservedOn("n1")
	if want <= 0 {
		t.Fatalf("open session reserves %d on n1, want > 0", want)
	}

	if _, err := m.handleRegister(regReq("n1", 1<<20)); err != nil {
		t.Fatal(err)
	}
	st, _ := m.reg.lookup("n1")
	st.mu.Lock()
	got := st.reserved
	st.mu.Unlock()
	if got != want {
		t.Fatalf("re-registration set reserved=%d, want the session's %d", got, want)
	}
}

// TestRegisterReconciliation: a rejoining node's inventory splits into
// re-adopted locations (chunks the catalog still references) and a
// garbage verdict for the rest.
func TestRegisterReconciliation(t *testing.T) {
	m, err := New(Config{HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.reg.register(regReq("n1", 1<<20), 0)
	alloc, err := m.handleAlloc(proto.AllocReq{Name: "rec.n1.t0", StripeWidth: 1, ChunkSize: 10, ReserveBytes: 100, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	chunks, total := commitChunks(41, 3, 10)
	if _, err := m.handleCommit(proto.CommitReq{
		WriteID: alloc.Meta.(proto.AllocResp).WriteID, FileSize: total, Chunks: chunks,
	}); err != nil {
		t.Fatal(err)
	}
	// Simulate the decommission having dropped this node's locations.
	if dropped := m.cat.dropLocationEverywhere("n1"); dropped != 3 {
		t.Fatalf("dropped %d locations, want 3", dropped)
	}

	req := regReq("n1", 1<<20)
	stray := core.HashChunk([]byte("never committed"))
	for _, ch := range chunks {
		req.Chunks = append(req.Chunks, ch.ID)
	}
	req.Chunks = append(req.Chunks, stray)
	resp, err := m.handleRegister(req)
	if err != nil {
		t.Fatal(err)
	}
	reg := resp.Meta.(proto.RegisterResp)
	if reg.Reconciled != 3 {
		t.Fatalf("reconciled %d locations, want 3", reg.Reconciled)
	}
	if len(reg.Garbage) != 1 || reg.Garbage[0] != stray {
		t.Fatalf("garbage = %v, want just the stray chunk", reg.Garbage)
	}
	// The heal is complete: nothing under-replicated, no repair copies.
	if jobs := m.cat.underReplicated(nil); len(jobs) != 0 {
		t.Fatalf("%d repair jobs after reconciliation, want 0", len(jobs))
	}
}

// TestDecommissionJournaledAndReplayed: decommission drops every location
// of the dead node and journals the event, so a restarted manager does
// not resurrect pointers at a node declared dead before the crash.
func TestDecommissionJournaledAndReplayed(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "mgr.journal")
	m1, err := New(Config{JournalPath: jpath, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	m1.reg.register(regReq("n1", 1<<20), 0)
	alloc, err := m1.handleAlloc(proto.AllocReq{Name: "dec.n1.t0", StripeWidth: 1, ChunkSize: 10, ReserveBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	chunks, total := commitChunks(43, 2, 10)
	if _, err := m1.handleCommit(proto.CommitReq{
		WriteID: alloc.Meta.(proto.AllocResp).WriteID, FileSize: total, Chunks: chunks,
	}); err != nil {
		t.Fatal(err)
	}
	m1.decommission("n1")
	noLocations := func(m *Manager, when string) {
		t.Helper()
		_, cm, err := m.cat.getMap("dec.n1", 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, locs := range cm.Locations {
			for _, n := range locs {
				if n == "n1" {
					t.Fatalf("%s: chunk %d still locates decommissioned n1", when, i)
				}
			}
		}
	}
	noLocations(m1, "live")
	if got := m1.Stats().Repair.Decommissions; got != 1 {
		t.Fatalf("decommissions stat = %d, want 1", got)
	}
	m1.Close()

	m2, err := New(Config{JournalPath: jpath, HeartbeatInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	noLocations(m2, "after journal replay")
}

// TestUnderReplicatedPriorityBands: chunks one failure from loss come
// back before merely-degraded ones, so a byte budget consuming jobs in
// order always spends on the most exposed data first.
func TestUnderReplicatedPriorityBands(t *testing.T) {
	c := newCatalog()
	bulk, btotal := commitChunks(51, 2, 10) // 1 live of target 3 after edits below
	for i := range bulk {
		bulk[i].Locations = []core.NodeID{"n1", "n2"}
	}
	if _, _, err := c.commit("b.n1.t0", "b", 3, 10, false, btotal, bulk, ""); err != nil {
		t.Fatal(err)
	}
	critical, ctotal := commitChunks(52, 2, 10)
	if _, _, err := c.commit("c.n1.t0", "c", 2, 10, false, ctotal, critical, ""); err != nil {
		t.Fatal(err)
	}

	jobs := c.underReplicated(nil)
	if len(jobs) != 4 {
		t.Fatalf("%d jobs, want 4", len(jobs))
	}
	for i, j := range jobs {
		if i < 2 && len(j.sources) != 1 {
			t.Fatalf("job %d has %d sources; critical (single-replica) chunks must come first: %+v", i, len(j.sources), jobs)
		}
		if i >= 2 && len(j.sources) != 2 {
			t.Fatalf("job %d has %d sources; bulk chunks must follow the critical band: %+v", i, len(j.sources), jobs)
		}
	}
}

// TestPickTargetsChargesReservation: repair placement charges the copy
// bytes against the target under its leaf lock, so concurrent rounds and
// client allocations cannot oversubscribe a node; release returns it.
func TestPickTargetsChargesReservation(t *testing.T) {
	r := newRegistry(time.Minute, 0)
	r.register(regReq("n1", 1000), 0)
	r.register(regReq("n2", 1000), 0)

	first := r.pickTargets(1, map[core.NodeID]struct{}{"n2": {}}, 400)
	if len(first) != 1 || first[0].ID != "n1" {
		t.Fatalf("targets = %+v, want n1", first)
	}
	// n1 has 600 left: a 700-byte job must not land there.
	if tg := r.pickTargets(2, nil, 700); len(tg) != 1 || tg[0].ID != "n2" {
		t.Fatalf("targets with n1 at 600 free = %+v, want just n2", tg)
	}
	r.release([]core.NodeID{"n2"}, 700)

	r.release([]core.NodeID{"n1"}, 400)
	if tg := r.pickTargets(2, nil, 700); len(tg) != 2 {
		t.Fatalf("targets after release = %+v, want both nodes", tg)
	}
}
