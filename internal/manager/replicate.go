package manager

import (
	"sort"
	"sync"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// replJob is one under-replicated chunk: who holds it and how many more
// replicas it needs to meet its dataset's target.
type replJob struct {
	id      core.ChunkID
	size    int64
	sources []core.NodeID
	needed  int
}

// maxJobsPerRound bounds the work the scheduler picks up in one pass.
const maxJobsPerRound = 256

// underReplicated scans the catalog for chunks whose live replica count is
// below their dataset's target. The manager builds the shadow-chunk-map
// from these (paper §IV.A "Data replication").
//
// The scan streams one dataset stripe at a time under its read lock,
// consulting the content index per version with one grouped acquisition
// per touched chunk stripe (forEachRefShard; chunk stripes nest under
// dataset stripes in the lock order). Like the single-lock scan it
// replaces, it deduplicates only *emitted* jobs — a chunk that satisfies
// one dataset's target is still re-examined against a later dataset's
// higher target — scans to completion unless the per-round job cap stops
// it, and so can never starve a chunk behind fully-replicated ones.
// Memory is O(jobs), bounded by maxJobsPerRound. All locking here is
// uninstrumented: this background pass must not pollute the stripe
// ops/contention metrics that measure client-driven serialization.
func (c *catalog) underReplicated(online func(core.NodeID) bool) []replJob {
	emitted := make(map[core.ChunkID]struct{}, maxJobsPerRound)
	var jobs []replJob
	for _, sh := range c.ds {
		sh.mu.RLock()
		for _, ds := range sh.byName {
			target := ds.replication
			if target <= 1 {
				continue
			}
			for _, v := range ds.versions {
				c.forEachRefShard(v.chunks, false, func(cs *chunkShard, idx []int) {
					for _, i := range idx {
						ref := v.chunks[i]
						if _, dup := emitted[ref.ID]; dup {
							continue
						}
						e, ok := cs.chunks[ref.ID]
						if !ok {
							continue
						}
						var live []core.NodeID
						for node := range e.locations {
							if online == nil || online(node) {
								live = append(live, node)
							}
						}
						if len(live) == 0 || len(live) >= target {
							continue
						}
						emitted[ref.ID] = struct{}{}
						sort.Slice(live, func(a, b int) bool { return live[a] < live[b] })
						jobs = append(jobs, replJob{
							id:      ref.ID,
							size:    ref.Size,
							sources: live,
							needed:  target - len(live),
						})
					}
				})
				if len(jobs) >= maxJobsPerRound {
					sh.mu.RUnlock()
					return jobs[:maxJobsPerRound]
				}
			}
		}
		sh.mu.RUnlock()
	}
	return jobs
}

// replicationLoop runs the background replication scheduler. Foreground
// writes have priority: while write sessions are active the scheduler
// throttles itself to one copy per round (paper §IV.A).
func (m *Manager) replicationLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.ReplicationInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.replicateOnce()
		}
	}
}

// replicateOnce performs one scheduler round and returns the number of
// replicas successfully created. Exposed for tests and the ablation bench.
func (m *Manager) replicateOnce() int {
	jobs := m.cat.underReplicated(m.reg.online)
	if len(jobs) == 0 {
		return 0
	}
	budget := m.cfg.ReplicationParallel
	if m.cfg.WritePriority && m.sess.active() > 0 {
		budget = 1
	}
	if budget > len(jobs) {
		budget = len(jobs)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	copied := 0
	sem := make(chan struct{}, budget)
	for _, job := range jobs {
		select {
		case <-m.stop:
			wg.Wait()
			return copied
		default:
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(job replJob) {
			defer wg.Done()
			defer func() { <-sem }()
			n := m.replicateChunk(job)
			mu.Lock()
			copied += n
			mu.Unlock()
		}(job)
	}
	wg.Wait()
	return copied
}

// replicateChunk copies one chunk to `needed` new benefactors by
// instructing a live holder to push it (source-driven copy, as in the
// paper's shadow-map protocol: "The shadow-map is then sent to the source
// benefactors to initiate a copy to the new set of benefactors").
func (m *Manager) replicateChunk(job replJob) int {
	exclude := make(map[core.NodeID]struct{}, len(job.sources))
	for _, s := range job.sources {
		exclude[s] = struct{}{}
	}
	targets := m.reg.pickTargets(job.needed, exclude)
	if len(targets) == 0 {
		return 0
	}
	var srcAddr string
	for _, s := range job.sources {
		if addr, ok := m.reg.addr(s); ok && m.reg.online(s) {
			srcAddr = addr
			break
		}
	}
	if srcAddr == "" {
		return 0
	}
	copied := 0
	for _, tgt := range targets {
		req := proto.ReplicateReq{ID: job.id, Target: tgt.Addr}
		if _, err := m.pool.Call(srcAddr, proto.BReplicate, req, nil, nil); err != nil {
			m.logf("replicate %s -> %s: %v", job.id.Short(), tgt.ID, err)
			continue
		}
		// Shadow-map commit: the new location becomes part of the
		// authoritative chunk-map only after the copy succeeded.
		m.cat.addLocation(job.id, tgt.ID)
		m.stats.replicasCopied.Add(1)
		copied++
	}
	return copied
}
