package manager

import (
	"sort"
	"sync"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// replJob is one under-replicated chunk: who holds it and how many more
// replicas it needs to meet its dataset's target.
type replJob struct {
	id      core.ChunkID
	size    int64
	sources []core.NodeID
	needed  int
}

// Priority bands. A chunk with a single live replica is one failure from
// loss and repairs before merely-degraded chunks; each band keeps its own
// per-round cap so a deep critical backlog cannot permanently starve bulk
// repair (nor the reverse). The critical band gets most of the round.
const (
	maxJobsPerRound = 256
	criticalBandCap = 192
	bulkBandCap     = maxJobsPerRound - criticalBandCap
)

// underReplicated scans the catalog for chunks whose live replica count is
// below their dataset's target. The manager builds the shadow-chunk-map
// from these (paper §IV.A "Data replication"). Jobs come back ordered by
// liveness deficit — every single-live-replica (critical) chunk before any
// multi-replica (bulk) one — so a downstream byte budget always spends on
// the most exposed data first.
//
// The scan streams one dataset stripe at a time under its read lock,
// consulting the content index per version with one grouped acquisition
// per touched chunk stripe (forEachRefShard; chunk stripes nest under
// dataset stripes in the lock order). Like the single-lock scan it
// replaces, it deduplicates only *emitted* jobs — a chunk that satisfies
// one dataset's target is still re-examined against a later dataset's
// higher target, and a chunk skipped because its band filled stays
// unmarked so the next round picks it up — scans to completion unless
// both band caps stop it, and so can never starve a chunk behind
// fully-replicated ones. Memory is O(jobs), bounded by maxJobsPerRound.
// All locking here is uninstrumented: this background pass must not
// pollute the stripe ops/contention metrics that measure client-driven
// serialization.
func (c *catalog) underReplicated(online func(core.NodeID) bool) []replJob {
	emitted := make(map[core.ChunkID]struct{}, maxJobsPerRound)
	var critical, bulk []replJob
	for _, sh := range c.ds {
		sh.mu.RLock()
		for _, ds := range sh.byName {
			target := ds.replication
			if target <= 1 {
				continue
			}
			for _, v := range ds.versions {
				c.forEachRefShard(v.chunks, false, func(cs *chunkShard, idx []int) {
					for _, i := range idx {
						ref := v.chunks[i]
						if _, dup := emitted[ref.ID]; dup {
							continue
						}
						e, ok := cs.chunks[ref.ID]
						if !ok {
							continue
						}
						var live []core.NodeID
						for node := range e.locations {
							if online == nil || online(node) {
								live = append(live, node)
							}
						}
						if len(live) == 0 || len(live) >= target {
							continue
						}
						band, bandCap := &bulk, bulkBandCap
						if len(live) == 1 {
							band, bandCap = &critical, criticalBandCap
						}
						if len(*band) >= bandCap {
							continue
						}
						emitted[ref.ID] = struct{}{}
						sort.Slice(live, func(a, b int) bool { return live[a] < live[b] })
						*band = append(*band, replJob{
							id:      ref.ID,
							size:    ref.Size,
							sources: live,
							needed:  target - len(live),
						})
					}
				})
				if len(critical) >= criticalBandCap && len(bulk) >= bulkBandCap {
					sh.mu.RUnlock()
					return append(critical, bulk...)
				}
			}
		}
		sh.mu.RUnlock()
	}
	return append(critical, bulk...)
}

// replicationLoop runs the background replication scheduler. Foreground
// writes have priority: while write sessions are active the scheduler
// throttles itself to one copy per round (paper §IV.A). Repair kicks
// (decommission, corruption report, rejoin) start a round immediately
// instead of waiting out the tick.
func (m *Manager) replicationLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.ReplicationInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.replicateOnce()
		case <-m.repairKick:
			m.replicateOnce()
		}
	}
}

// UnderReplicated runs one on-demand under-replication scan and reports
// the band sizes: critical chunks are one failure from loss (a single
// live replica), bulk chunks merely degraded. Both zero means every
// referenced chunk is back at its dataset's replication target — the
// convergence probe churn harnesses poll between failure injections.
func (m *Manager) UnderReplicated() (critical, bulk int) {
	for _, j := range m.cat.underReplicated(m.reg.online) {
		if len(j.sources) == 1 {
			critical++
		} else {
			bulk++
		}
	}
	return critical, bulk
}

// replicateOnce performs one scheduler round and returns the number of
// replicas successfully created. Exposed for tests and the ablation bench.
func (m *Manager) replicateOnce() int {
	jobs := m.cat.underReplicated(m.reg.online)
	critical := 0
	for _, j := range jobs {
		if len(j.sources) == 1 {
			critical++
		}
	}
	m.stats.repairPending.Store(int64(len(jobs)))
	m.stats.repairCritical.Store(int64(critical))
	if len(jobs) == 0 {
		return 0
	}
	// Byte budget. Jobs arrive critical-first, so when the round cannot
	// afford everything the surviving prefix is the critical band. At
	// least one job always survives — a budget smaller than the smallest
	// chunk must still make progress.
	if max := m.cfg.RepairBytesPerRound; max > 0 {
		var scheduled int64
		cut := len(jobs)
		for i, j := range jobs {
			scheduled += j.size * int64(j.needed)
			if scheduled > max && i > 0 {
				cut = i
				break
			}
		}
		jobs = jobs[:cut]
	}
	budget := m.cfg.ReplicationParallel
	if m.cfg.WritePriority && m.sess.active() > 0 {
		budget = 1
	}
	if budget > len(jobs) {
		budget = len(jobs)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	copied := 0
	sem := make(chan struct{}, budget)
	for _, job := range jobs {
		select {
		case <-m.stop:
			wg.Wait()
			return copied
		default:
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(job replJob) {
			defer wg.Done()
			defer func() { <-sem }()
			n := m.replicateChunk(job)
			mu.Lock()
			copied += n
			mu.Unlock()
		}(job)
	}
	wg.Wait()
	return copied
}

// replicateChunk copies one chunk to `needed` new benefactors by
// instructing a live holder to push it (source-driven copy, as in the
// paper's shadow-map protocol: "The shadow-map is then sent to the source
// benefactors to initiate a copy to the new set of benefactors"). Under
// churn the first holder may die between the scan and the copy, so every
// target retries across all live sources before counting as a failure.
func (m *Manager) replicateChunk(job replJob) int {
	exclude := make(map[core.NodeID]struct{}, len(job.sources))
	for _, s := range job.sources {
		exclude[s] = struct{}{}
	}
	targets := m.reg.pickTargets(job.needed, exclude, job.size)
	if len(targets) == 0 {
		return 0
	}
	type src struct {
		id   core.NodeID
		addr string
	}
	var srcs []src
	for _, s := range job.sources {
		if addr, ok := m.reg.addr(s); ok && m.reg.online(s) {
			srcs = append(srcs, src{id: s, addr: addr})
		}
	}
	if len(srcs) == 0 {
		for _, tgt := range targets {
			m.reg.release([]core.NodeID{tgt.ID}, job.size)
		}
		m.stats.repairFailed.Add(int64(len(targets)))
		return 0
	}
	copied := 0
	for _, tgt := range targets {
		ok := false
		for _, s := range srcs {
			req := proto.ReplicateReq{ID: job.id, Target: tgt.Addr}
			if _, err := m.pool.Call(s.addr, proto.BReplicate, req, nil, nil); err != nil {
				m.logf("replicate %s from %s -> %s: %v", job.id.Short(), s.id, tgt.ID, err)
				continue
			}
			ok = true
			break
		}
		// The transfer reservation (charged by pickTargets) is released
		// either way: a landed copy surfaces in the target's next heartbeat
		// Free, a failed one never used the space.
		m.reg.release([]core.NodeID{tgt.ID}, job.size)
		if !ok {
			m.stats.repairFailed.Add(1)
			continue
		}
		// Shadow-map commit: the new location becomes part of the
		// authoritative chunk-map only after the copy succeeded.
		m.cat.addLocation(job.id, tgt.ID)
		m.stats.replicasCopied.Add(1)
		m.stats.repairCopiedBytes.Add(job.size)
		copied++
	}
	return copied
}
