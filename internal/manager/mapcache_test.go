package manager

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// hotCacheChunks builds a simple commit chunk list with locations.
func hotCacheChunks(seed, n int, size int64, locs []core.NodeID) ([]proto.CommitChunk, int64) {
	chunks := make([]proto.CommitChunk, n)
	var total int64
	for i := range chunks {
		chunks[i] = proto.CommitChunk{
			ID:        core.HashChunk([]byte(fmt.Sprintf("hot-%d-%d", seed, i))),
			Size:      size,
			Locations: locs,
		}
		total += size
	}
	return chunks, total
}

// TestHotMapCacheServesRepeatGetMaps: the first getMap of a version
// builds and memoizes; repeats are cache hits that return equal maps.
func TestHotMapCacheServesRepeatGetMaps(t *testing.T) {
	c := newCatalogStripes(16)
	chunks, total := hotCacheChunks(1, 4, 64, []core.NodeID{"n2:1", "n1:1"})
	if _, _, err := c.commit("hot.n1.t0", "hot", 1, 64, false, total, chunks, ""); err != nil {
		t.Fatal(err)
	}
	name1, m1, err := c.getMap("hot.n1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.maps.snapshot(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("after first getMap: %+v, want 0 hits / 1 miss", s)
	}
	name2, m2, err := c.getMap("hot.n1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.maps.snapshot(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after second getMap: %+v, want 1 hit / 1 miss", s)
	}
	if name1 != name2 || !reflect.DeepEqual(m1, m2) {
		t.Fatalf("cached map differs from built map:\nbuilt:  %+v\ncached: %+v", m1, m2)
	}
	// Locations must be sorted in the cached copy exactly as buildMap
	// sorts them.
	for i, locs := range m2.Locations {
		for j := 1; j < len(locs); j++ {
			if locs[j-1] > locs[j] {
				t.Fatalf("cached map chunk %d locations unsorted: %v", i, locs)
			}
		}
	}
	// Hits return clones: mutating one served map must not poison the
	// cache for the next reader.
	m2.Locations[0][0] = "poisoned:1"
	_, m3, err := c.getMap("hot.n1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Locations[0][0] == "poisoned:1" {
		t.Fatal("served map shares memory with the cache's canonical copy")
	}
}

// TestHotMapCacheCommitInvalidates: a commit of version v+1 drops the
// dataset's memoized maps (the version chain changed and the commit may
// have merged new locations into shared chunks).
func TestHotMapCacheCommitInvalidates(t *testing.T) {
	c := newCatalogStripes(16)
	chunks, total := hotCacheChunks(2, 2, 64, []core.NodeID{"n1:1"})
	if _, _, err := c.commit("inv.n1.t0", "inv", 1, 64, false, total, chunks, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.getMap("inv.n1", 0); err != nil {
		t.Fatal(err)
	}
	// v+1 shares v1's chunks copy-on-write but adds a replica location.
	shared := make([]proto.CommitChunk, len(chunks))
	for i, ch := range chunks {
		shared[i] = proto.CommitChunk{ID: ch.ID, Size: ch.Size, Locations: []core.NodeID{"n9:1"}}
	}
	if _, _, err := c.commit("inv.n1.t1", "inv", 1, 64, false, total, shared, ""); err != nil {
		t.Fatal(err)
	}
	if s := c.maps.snapshot(); s.Invalidations != 1 {
		t.Fatalf("commit of v+1 recorded %d invalidations, want 1", s.Invalidations)
	}
	// The rebuilt v1 map must see the merged location.
	_, m, err := c.getMap("inv.n1.t0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.maps.snapshot(); s.Hits != 0 {
		t.Fatalf("post-commit getMap served from cache (%+v), want rebuild", s)
	}
	found := false
	for _, n := range m.Locations[0] {
		if n == "n9:1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("rebuilt map missing merged location n9:1: %v", m.Locations[0])
	}
}

// TestHotMapCacheDeleteInvalidates: deleting a version (or dataset)
// drops its memoized maps.
func TestHotMapCacheDeleteInvalidates(t *testing.T) {
	c := newCatalogStripes(16)
	chunks, total := hotCacheChunks(3, 2, 64, []core.NodeID{"n1:1"})
	if _, _, err := c.commit("del.n1.t0", "del", 1, 64, false, total, chunks, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.getMap("del.n1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.deleteVersion("del.n1", 0); err != nil {
		t.Fatal(err)
	}
	if s := c.maps.snapshot(); s.Invalidations != 1 {
		t.Fatalf("delete recorded %d invalidations, want 1", s.Invalidations)
	}
}

// TestHotMapCachePruneInvalidates: policy pruning removes versions like
// deletes do, so it must evict the dataset's memoized maps too —
// stranded entries would crowd live maps out of the LRU.
func TestHotMapCachePruneInvalidates(t *testing.T) {
	c := newCatalogStripes(16)
	for ti := 0; ti < 3; ti++ {
		chunks, total := hotCacheChunks(40+ti, 2, 64, []core.NodeID{"n1:1"})
		if _, _, err := c.commit(fmt.Sprintf("pr.n1.t%d", ti), "pr", 1, 64, false, total, chunks, ""); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.getMap("pr.n1", 0); err != nil {
		t.Fatal(err)
	}
	invBefore := c.maps.snapshot().Invalidations
	if removed, _, err := c.retain("pr.n1", core.Retention{KeepLast: 1}); err != nil || removed != 2 {
		t.Fatalf("trimmed %d versions (err %v), want 2", removed, err)
	}
	if got := c.maps.snapshot().Invalidations; got != invBefore+1 {
		t.Fatalf("trim recorded %d invalidations, want %d", got, invBefore+1)
	}
	if _, _, err := c.getMap("pr.n1", 0); err != nil {
		t.Fatal(err)
	}
	invBefore = c.maps.snapshot().Invalidations
	if removed, _, err := c.applyRetention("pr", core.Retention{}, time.Now().Add(time.Hour)); err != nil || removed != 1 {
		t.Fatalf("purged %d versions (err %v), want 1", removed, err)
	}
	if got := c.maps.snapshot().Invalidations; got != invBefore+1 {
		t.Fatalf("purge recorded %d invalidations, want %d", got, invBefore+1)
	}
}

// TestHotMapCacheReplicaDeathFlushes: dropLocationEverywhere (permanent
// replica death) flushes the whole cache, and rebuilt maps no longer
// name the dead node.
func TestHotMapCacheReplicaDeathFlushes(t *testing.T) {
	c := newCatalogStripes(16)
	chunks, total := hotCacheChunks(4, 2, 64, []core.NodeID{"dead:1", "live:1"})
	if _, _, err := c.commit("rd.n1.t0", "rd", 1, 64, false, total, chunks, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.getMap("rd.n1", 0); err != nil {
		t.Fatal(err)
	}
	c.dropLocationEverywhere("dead:1")
	if s := c.maps.snapshot(); s.Invalidations != 1 {
		t.Fatalf("replica death recorded %d invalidations, want 1", s.Invalidations)
	}
	_, m, err := c.getMap("rd.n1", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, locs := range m.Locations {
		for _, n := range locs {
			if n == "dead:1" {
				t.Fatalf("chunk %d still lists the dead replica: %v", i, locs)
			}
		}
	}
}

// TestHotMapCacheDisabled: MapCacheEntries < 0 turns the manager cache
// off — every getMap is a miss and nothing is memoized.
func TestHotMapCacheDisabled(t *testing.T) {
	m, err := New(Config{
		MapCacheEntries:   -1,
		HeartbeatInterval: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.reg.register(regReq("n1", 1<<30), 0)
	alloc, err := m.handleAlloc(proto.AllocReq{Name: "off.n1.t0", StripeWidth: 1, ChunkSize: 64, ReserveBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	chunks, total := commitChunks(5, 2, 64)
	if _, err := m.handleCommit(proto.CommitReq{
		WriteID: alloc.Meta.(proto.AllocResp).WriteID, FileSize: total, Chunks: chunks,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := m.cat.getMap("off.n1", 0); err != nil {
			t.Fatal(err)
		}
	}
	if s := m.Stats().MapCache; s.Hits != 0 || s.Misses != 3 {
		t.Fatalf("disabled cache stats %+v, want 0 hits / 3 misses", s)
	}
}

// TestStatVersionResolvesLikeGetMap: the lightweight probe must agree
// with getMap on both dataset-key (latest) and full-name (timestep)
// resolution.
func TestStatVersionResolvesLikeGetMap(t *testing.T) {
	c := newCatalogStripes(16)
	for ti := 0; ti < 3; ti++ {
		chunks, total := hotCacheChunks(10+ti, 2, 64, []core.NodeID{"n1:1"})
		if _, _, err := c.commit(fmt.Sprintf("sv.n1.t%d", ti), "sv", 1, 64, false, total, chunks, ""); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"sv.n1", "sv.n1.t1"} {
		gName, gm, err := c.getMap(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		sName, sDS, sVer, err := c.statVersion(name)
		if err != nil {
			t.Fatal(err)
		}
		if sName != gName || sVer != gm.Version || sDS != gm.Dataset {
			t.Fatalf("statVersion(%q) = (%q, %d, %d); getMap says (%q, %d, %d)",
				name, sName, sDS, sVer, gName, gm.Dataset, gm.Version)
		}
	}
	if _, _, _, err := c.statVersion("sv.n9"); err == nil {
		t.Fatal("statVersion of unknown dataset succeeded")
	}
}
