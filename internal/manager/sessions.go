package manager

import (
	"fmt"
	"sync"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// sessionTable tracks open write sessions: the stripe handed to the
// client, the space eagerly reserved for it (paper §IV.A: "Clients eagerly
// reserve space with the manager for future writes. If this space is not
// used, it is asynchronously garbage collected.") and enough metadata to
// commit the chunk-map atomically at close time.
type sessionTable struct {
	ttl time.Duration

	mu       sync.Mutex
	next     uint64
	sessions map[uint64]*session
}

type session struct {
	id          uint64
	name        string
	stripe      []proto.Stripe
	stripeIDs   []core.NodeID
	chunkSize   int64 // fixed striping size, or max span bound when variable
	variable    bool  // content-defined (variable-size) chunking session
	replication int
	perNode     int64 // cumulative reservation per stripe node
	lastActive  time.Time
}

func newSessionTable(ttl time.Duration) *sessionTable {
	return &sessionTable{ttl: ttl, sessions: make(map[uint64]*session)}
}

func (t *sessionTable) open(name string, stripe []proto.Stripe, chunkSize int64, variable bool, replication int, perNode int64) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	s := &session{
		id:          t.next,
		name:        name,
		stripe:      stripe,
		chunkSize:   chunkSize,
		variable:    variable,
		replication: replication,
		perNode:     perNode,
		lastActive:  time.Now(),
	}
	for _, st := range stripe {
		s.stripeIDs = append(s.stripeIDs, st.ID)
	}
	t.sessions[s.id] = s
	return s
}

// get returns the session and refreshes its activity clock.
func (t *sessionTable) get(id uint64) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	if !ok {
		return nil, fmt.Errorf("write session %d: %w", id, core.ErrNotFound)
	}
	s.lastActive = time.Now()
	return s, nil
}

// extend grows the session's per-node reservation and returns the stripe
// node IDs so the caller can charge the registry.
func (t *sessionTable) extend(id uint64, perNode int64) ([]core.NodeID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	if !ok {
		return nil, fmt.Errorf("write session %d: %w", id, core.ErrNotFound)
	}
	s.perNode += perNode
	s.lastActive = time.Now()
	return s.stripeIDs, nil
}

// close removes the session, returning it for reservation release.
func (t *sessionTable) close(id uint64) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sessions[id]
	if !ok {
		return nil, fmt.Errorf("write session %d: %w", id, core.ErrAlreadyCommitted)
	}
	delete(t.sessions, id)
	return s, nil
}

// expire removes sessions idle past the TTL (the asynchronous reservation
// GC) and returns them for reservation release.
func (t *sessionTable) expire(now time.Time) []*session {
	t.mu.Lock()
	defer t.mu.Unlock()
	var dead []*session
	for id, s := range t.sessions {
		if now.Sub(s.lastActive) > t.ttl {
			dead = append(dead, s)
			delete(t.sessions, id)
		}
	}
	return dead
}

// active returns the number of open sessions (replication gives way to
// active foreground writes).
func (t *sessionTable) active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}
