package manager

import (
	"fmt"
	"sync/atomic"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

// sessionTable tracks open write sessions: the stripe handed to the
// client, the space eagerly reserved for it (paper §IV.A: "Clients eagerly
// reserve space with the manager for future writes. If this space is not
// used, it is asynchronously garbage collected.") and enough metadata to
// commit the chunk-map atomically at close time.
//
// Like the catalog, the table is lock-striped by session ID so concurrent
// writers' alloc/extend/commit traffic on different sessions never
// contends on one mutex.
type sessionTable struct {
	ttl    time.Duration
	next   atomic.Uint64
	shards []*sessionShard // len is a power of two
}

type sessionShard struct {
	stripedMu
	sessions map[uint64]*session
}

type session struct {
	id          uint64
	name        string
	stripe      []proto.Stripe
	stripeIDs   []core.NodeID
	chunkSize   int64 // fixed striping size, or max span bound when variable
	variable    bool  // content-defined (variable-size) chunking session
	replication int
	perNode     int64  // cumulative reservation per stripe node
	writer      string // client identity declared at alloc ("" = none)
	lastActive  time.Time
}

func newSessionTable(ttl time.Duration) *sessionTable {
	return newSessionTableStripes(ttl, defaultStripes)
}

func newSessionTableStripes(ttl time.Duration, stripes int) *sessionTable {
	n := normalizeStripes(stripes)
	t := &sessionTable{ttl: ttl, shards: make([]*sessionShard, n)}
	for i := range t.shards {
		t.shards[i] = &sessionShard{sessions: make(map[uint64]*session)}
	}
	return t
}

func (t *sessionTable) shardOf(id uint64) *sessionShard {
	// Session IDs are sequential, so the low bits alone spread them evenly.
	return t.shards[id&uint64(len(t.shards)-1)]
}

func (t *sessionTable) open(name string, stripe []proto.Stripe, chunkSize int64, variable bool, replication int, perNode int64, writer string) *session {
	s := &session{
		id:          t.next.Add(1),
		name:        name,
		stripe:      stripe,
		chunkSize:   chunkSize,
		variable:    variable,
		replication: replication,
		perNode:     perNode,
		writer:      writer,
		lastActive:  time.Now(),
	}
	for _, st := range stripe {
		s.stripeIDs = append(s.stripeIDs, st.ID)
	}
	sh := t.shardOf(s.id)
	sh.lock()
	sh.sessions[s.id] = s
	sh.unlock()
	return s
}

// get returns the session and refreshes its activity clock.
func (t *sessionTable) get(id uint64) (*session, error) {
	sh := t.shardOf(id)
	sh.lock()
	defer sh.unlock()
	s, ok := sh.sessions[id]
	if !ok {
		return nil, fmt.Errorf("write session %d: %w", id, core.ErrNotFound)
	}
	s.lastActive = time.Now()
	return s, nil
}

// extend grows the session's per-node reservation and returns the stripe
// node IDs so the caller can charge the registry.
func (t *sessionTable) extend(id uint64, perNode int64) ([]core.NodeID, error) {
	sh := t.shardOf(id)
	sh.lock()
	defer sh.unlock()
	s, ok := sh.sessions[id]
	if !ok {
		return nil, fmt.Errorf("write session %d: %w", id, core.ErrNotFound)
	}
	s.perNode += perNode
	s.lastActive = time.Now()
	return s.stripeIDs, nil
}

// close removes the session, returning it for reservation release.
func (t *sessionTable) close(id uint64) (*session, error) {
	sh := t.shardOf(id)
	sh.lock()
	defer sh.unlock()
	s, ok := sh.sessions[id]
	if !ok {
		return nil, fmt.Errorf("write session %d: %w", id, core.ErrAlreadyCommitted)
	}
	delete(sh.sessions, id)
	return s, nil
}

// expire removes sessions idle past the TTL (the asynchronous reservation
// GC) and returns them for reservation release.
func (t *sessionTable) expire(now time.Time) []*session {
	var dead []*session
	for _, sh := range t.shards {
		sh.lock()
		for id, s := range sh.sessions {
			if now.Sub(s.lastActive) > t.ttl {
				dead = append(dead, s)
				delete(sh.sessions, id)
			}
		}
		sh.unlock()
	}
	return dead
}

// reservedOn sums the per-node reservations that open sessions hold on
// one node. Re-registration reconciles against this instead of zeroing
// the node's counter: a flapping benefactor must not wipe space that live
// write sessions were already promised, or the manager over-promises the
// node to the next alloc.
func (t *sessionTable) reservedOn(node core.NodeID) int64 {
	var total int64
	for _, sh := range t.shards {
		sh.rlock()
		for _, s := range sh.sessions {
			for _, id := range s.stripeIDs {
				if id == node {
					total += s.perNode
					break
				}
			}
		}
		sh.runlock()
	}
	return total
}

// active returns the number of open sessions (replication gives way to
// active foreground writes).
func (t *sessionTable) active() int {
	n := 0
	for _, sh := range t.shards {
		sh.rlock()
		n += len(sh.sessions)
		sh.runlock()
	}
	return n
}

// stripeSnapshot copies the per-stripe acquisition counters.
func (t *sessionTable) stripeSnapshot() []proto.StripeStats {
	out := make([]proto.StripeStats, len(t.shards))
	for i, sh := range t.shards {
		out[i] = sh.snapshot()
	}
	return out
}
