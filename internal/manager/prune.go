package manager

import (
	"sort"
	"sync"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/namespace"
	"stdchk/internal/proto"
)

// policyTable holds per-folder data-lifetime policies (paper §IV.D).
// Reads (the per-commit durability lookup, pruner scans) take the read
// lock; writes hold the write lock across apply AND journal so a catalog
// snapshot's watermark cut can never observe an applied policy whose
// journal record is not yet ticketed, or vice versa.
type policyTable struct {
	mu sync.RWMutex
	m  map[string]core.Policy
}

func newPolicyTable() *policyTable {
	return &policyTable{m: make(map[string]core.Policy)}
}

func (p *policyTable) set(folder string, policy core.Policy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[folder] = policy
}

// setJournaled applies a policy and journals it atomically under the
// table lock. A journal failure reverts the apply, so a client whose
// SetPolicy errors has not silently changed behaviour the journal cannot
// replay.
func (p *policyTable) setJournaled(folder string, policy core.Policy, journal func(journalEntry) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	old, had := p.m[folder]
	p.m[folder] = policy
	if journal == nil {
		return nil
	}
	if err := journal(journalEntry{Op: "policy", Name: folder, Policy: &policy}); err != nil {
		if had {
			p.m[folder] = old
		} else {
			delete(p.m, folder)
		}
		return err
	}
	return nil
}

func (p *policyTable) get(folder string) core.Policy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if policy, ok := p.m[folder]; ok {
		return policy
	}
	return core.DefaultPolicy()
}

// enforcedFolders lists folders whose policy prunes anything in the
// background: a purge interval, a retention schedule, or both.
func (p *policyTable) enforcedFolders() map[string]core.Policy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]core.Policy)
	for folder, policy := range p.m {
		if policy.Kind == core.PolicyPurge || policy.Retention.Enabled() {
			out[folder] = policy
		}
	}
	return out
}

// applyReplacePolicy enforces "automated replace" right after a commit:
// the newly committed image makes versions beyond the keep window
// obsolete. It runs through the same centralized (journaled) removal
// path as deletes and the retention worker.
func (m *Manager) applyReplacePolicy(fileName string) {
	folder := namespace.FolderOf(fileName)
	policy := m.policies.get(folder)
	if policy.Kind != core.PolicyReplace {
		return
	}
	removed, orphans, err := m.cat.retain(namespace.DatasetOf(fileName), core.Retention{KeepLast: policy.Keep()})
	if err != nil {
		m.logf("replace policy on %s: %v", fileName, err)
		return
	}
	if removed > 0 {
		m.stats.versionsPruned.Add(int64(removed))
		m.logf("replace policy on %s: pruned %d versions, %d chunks orphaned", fileName, removed, len(orphans))
	}
}

// retentionLoop is the background retention worker: it enforces purge
// intervals and retention schedules (keep-last-N / keep-hourly) per
// folder, and after a round that removed versions it takes a catalog
// snapshot — retention is the journal-compaction trigger, so pruned
// history leaves the journal too instead of replaying forever.
func (m *Manager) retentionLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.PruneInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-ticker.C:
			m.retentionOnce(now)
		}
	}
}

// retentionOnce applies every folder's purge/retention policy once and
// returns the number of versions removed; exposed for tests.
func (m *Manager) retentionOnce(now time.Time) int {
	total := 0
	for folder, policy := range m.policies.enforcedFolders() {
		var cutoff time.Time
		if policy.Kind == core.PolicyPurge {
			cutoff = now.Add(-policy.PurgeAfter)
		}
		removed, orphans, err := m.cat.applyRetention(folder, policy.Retention, cutoff)
		if err != nil {
			m.logf("retention on folder %q: %v", folder, err)
		}
		if removed > 0 {
			m.stats.versionsPruned.Add(int64(removed))
			m.logf("retention on folder %q: pruned %d versions, %d chunks orphaned", folder, removed, len(orphans))
		}
		total += removed
	}
	if total > 0 && m.journal != nil {
		// Fold the removals into a snapshot so the truncated journal stops
		// carrying (and replaying) versions retention already condemned.
		if _, err := m.Snapshot(); err != nil {
			m.logf("retention snapshot: %v", err)
		}
	}
	return total
}

// selectRetention partitions a dataset's version chain into victims and
// survivors per schedule r plus an optional purge cutoff (zero = no
// purge). The purge cutoff wins over the schedule: purge is an explicit
// "data expires after T" contract, so even a schedule-retained version
// goes once it ages past the cutoff. Callers hold the dataset's shard
// lock.
func selectRetention(ds *dataset, r core.Retention, cutoff time.Time) (victims, kept []*version) {
	times := make([]time.Time, len(ds.versions))
	for i, v := range ds.versions {
		times[i] = v.committedAt
	}
	keep := r.RetainVersions(times)
	for i, v := range ds.versions {
		purged := !cutoff.IsZero() && v.committedAt.Before(cutoff)
		if purged || !keep[i] {
			victims = append(victims, v)
		} else {
			kept = append(kept, v)
		}
	}
	return victims, kept
}

// policyDryRun reports exactly what the next retention sweep would prune
// — the audit companion to retentionOnce, sharing its cutoff arithmetic
// and selectRetention's partition function — without mutating anything.
// Folder "" audits every enforced folder; folders with an enforced policy
// but nothing to prune are reported with empty Victims.
func (m *Manager) policyDryRun(req proto.PolicyDryRunReq, now time.Time) proto.PolicyDryRunResp {
	var resp proto.PolicyDryRunResp
	for folder, policy := range m.policies.enforcedFolders() {
		if req.Folder != "" && folder != req.Folder {
			continue
		}
		var cutoff time.Time
		if policy.Kind == core.PolicyPurge {
			cutoff = now.Add(-policy.PurgeAfter)
		}
		resp.Folders = append(resp.Folders, proto.FolderDryRun{
			Folder:  folder,
			Policy:  policy,
			Victims: m.cat.dryRunRetention(folder, policy.Retention, cutoff),
		})
	}
	sort.Slice(resp.Folders, func(i, j int) bool {
		return resp.Folders[i].Folder < resp.Folders[j].Folder
	})
	return resp
}

// dryRunRetention mirrors applyRetention read-only: the same shard sweep
// and the same selectRetention partition, under per-shard RLocks, listing
// the victims instead of removing them.
func (c *catalog) dryRunRetention(folder string, r core.Retention, cutoff time.Time) []proto.PruneCandidate {
	var out []proto.PruneCandidate
	for _, sh := range c.ds {
		sh.rlock()
		for _, ds := range sh.byName {
			if ds.folder != folder {
				continue
			}
			victims, _ := selectRetention(ds, r, cutoff)
			for _, v := range victims {
				out = append(out, proto.PruneCandidate{
					Dataset:     ds.id,
					Name:        v.fileName,
					Version:     v.id,
					FileSize:    v.fileSize,
					CommittedAt: v.committedAt,
				})
			}
		}
		sh.runlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// retain applies a retention schedule to one dataset (the replace
// policy's post-commit trim). Unknown datasets are a no-op.
func (c *catalog) retain(datasetKey string, r core.Retention) (int, []core.ChunkID, error) {
	sh := c.dsShardOf(datasetKey)
	sh.lock()
	defer sh.unlock()
	ds, ok := sh.byName[datasetKey]
	if !ok {
		return 0, nil, nil
	}
	victims, kept := selectRetention(ds, r, time.Time{})
	orphans, err := c.removeVersionsLocked(sh, ds, victims, kept)
	return len(victims), orphans, err
}

// applyRetention sweeps a folder, applying schedule r and an optional
// purge cutoff to every dataset through the centralized removal path.
// Shards are swept one at a time, so a long sweep never stalls commits
// on other stripes.
func (c *catalog) applyRetention(folder string, r core.Retention, cutoff time.Time) (int, []core.ChunkID, error) {
	removed := 0
	var orphans []core.ChunkID
	for _, sh := range c.ds {
		sh.lock()
		for _, ds := range sh.byName {
			if ds.folder != folder {
				continue
			}
			victims, kept := selectRetention(ds, r, cutoff)
			if len(victims) == 0 {
				continue
			}
			o, err := c.removeVersionsLocked(sh, ds, victims, kept)
			if err != nil {
				sh.unlock()
				return removed, orphans, err
			}
			orphans = append(orphans, o...)
			removed += len(victims)
		}
		sh.unlock()
	}
	return removed, orphans, nil
}
