package manager

import (
	"sync"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/namespace"
)

// policyTable holds per-folder data-lifetime policies (paper §IV.D).
// Reads (the per-commit durability lookup, pruner scans) take the read
// lock; writes hold the write lock across apply AND journal so a catalog
// snapshot's watermark cut can never observe an applied policy whose
// journal record is not yet ticketed, or vice versa.
type policyTable struct {
	mu sync.RWMutex
	m  map[string]core.Policy
}

func newPolicyTable() *policyTable {
	return &policyTable{m: make(map[string]core.Policy)}
}

func (p *policyTable) set(folder string, policy core.Policy) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[folder] = policy
}

// setJournaled applies a policy and journals it atomically under the
// table lock. A journal failure reverts the apply, so a client whose
// SetPolicy errors has not silently changed behaviour the journal cannot
// replay.
func (p *policyTable) setJournaled(folder string, policy core.Policy, journal func(journalEntry) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	old, had := p.m[folder]
	p.m[folder] = policy
	if journal == nil {
		return nil
	}
	if err := journal(journalEntry{Op: "policy", Name: folder, Policy: &policy}); err != nil {
		if had {
			p.m[folder] = old
		} else {
			delete(p.m, folder)
		}
		return err
	}
	return nil
}

func (p *policyTable) get(folder string) core.Policy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if policy, ok := p.m[folder]; ok {
		return policy
	}
	return core.DefaultPolicy()
}

// purgeFolders lists folders with a purge policy.
func (p *policyTable) purgeFolders() map[string]core.Policy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[string]core.Policy)
	for folder, policy := range p.m {
		if policy.Kind == core.PolicyPurge {
			out[folder] = policy
		}
	}
	return out
}

// applyReplacePolicy enforces "automated replace" right after a commit:
// the newly committed image makes versions beyond the keep window obsolete.
func (m *Manager) applyReplacePolicy(fileName string) {
	folder := namespace.FolderOf(fileName)
	policy := m.policies.get(folder)
	if policy.Kind != core.PolicyReplace {
		return
	}
	removed, orphans := m.cat.trimVersions(namespace.DatasetOf(fileName), policy.Keep())
	if removed > 0 {
		m.stats.versionsPruned.Add(int64(removed))
		m.logf("replace policy on %s: pruned %d versions, %d chunks orphaned", fileName, removed, len(orphans))
	}
}

// pruneLoop enforces "automated purge": versions older than the folder's
// interval are removed.
func (m *Manager) pruneLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.PruneInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-ticker.C:
			m.pruneOnce(now)
		}
	}
}

// pruneOnce applies purge policies once; exposed for tests.
func (m *Manager) pruneOnce(now time.Time) int {
	total := 0
	for folder, policy := range m.policies.purgeFolders() {
		cutoff := now.Add(-policy.PurgeAfter)
		removed, orphans := m.cat.purgeOlderThan(folder, cutoff)
		if removed > 0 {
			m.stats.versionsPruned.Add(int64(removed))
			m.logf("purge policy on folder %q: pruned %d versions, %d chunks orphaned", folder, removed, len(orphans))
		}
		total += removed
	}
	return total
}

// trimVersions keeps only the most recent `keep` versions of a dataset.
func (c *catalog) trimVersions(datasetKey string, keep int) (int, []core.ChunkID) {
	if keep < 1 {
		keep = 1
	}
	sh := c.dsShardOf(datasetKey)
	sh.lock()
	defer sh.unlock()
	ds, ok := sh.byName[datasetKey]
	if !ok || len(ds.versions) <= keep {
		return 0, nil
	}
	victims := ds.versions[:len(ds.versions)-keep]
	kept := append([]*version(nil), ds.versions[len(ds.versions)-keep:]...)
	// Pruned versions must leave the hot-map cache like deleted ones do:
	// their chunks may be garbage collected, and stranded entries would
	// crowd live maps out of the LRU.
	c.maps.invalidateDataset(datasetKey)
	orphans := c.dropVersions(victims)
	ds.versions = kept
	return len(victims), orphans
}

// purgeOlderThan removes all versions in a folder committed before the
// cutoff. Datasets left empty are removed entirely. Shards are swept one
// at a time, so a long purge never stalls commits on other stripes.
func (c *catalog) purgeOlderThan(folder string, cutoff time.Time) (int, []core.ChunkID) {
	removed := 0
	var orphans []core.ChunkID
	for _, sh := range c.ds {
		sh.lock()
		for key, ds := range sh.byName {
			if ds.folder != folder {
				continue
			}
			var victims, kept []*version
			for _, v := range ds.versions {
				if v.committedAt.Before(cutoff) {
					victims = append(victims, v)
				} else {
					kept = append(kept, v)
				}
			}
			if len(victims) == 0 {
				continue
			}
			c.maps.invalidateDataset(key) // as trimVersions: purged maps leave the cache
			orphans = append(orphans, c.dropVersions(victims)...)
			ds.versions = kept
			removed += len(victims)
			if len(ds.versions) == 0 {
				delete(sh.byName, key)
				c.releaseDatasetID(ds.id)
			}
		}
		sh.unlock()
	}
	return removed, orphans
}
