package manager

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, err := openJournal(path, false, false, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	chunks, total := commitChunks(50, 2, 10)
	entries := []journalEntry{
		{Op: "commit", Name: "j.n1.t0", Replication: 2, ChunkSize: 10, FileSize: total, Chunks: chunks},
		{Op: "policy", Name: "j", Policy: &core.Policy{Kind: core.PolicyReplace}},
		{Op: "delete", Name: "j.n1.t0"},
	}
	for _, e := range entries {
		if err := j.record(e, false); err != nil {
			t.Fatal(err)
		}
	}
	j.close()

	j2, err := openJournal(path, false, false, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if len(j2.entries) != 3 {
		t.Fatalf("read back %d entries, want 3", len(j2.entries))
	}
	if j2.entries[0].Op != "commit" || j2.entries[0].FileSize != total {
		t.Fatalf("entry 0 = %+v", j2.entries[0])
	}
	if j2.entries[1].Policy == nil || j2.entries[1].Policy.Kind != core.PolicyReplace {
		t.Fatalf("entry 1 = %+v", j2.entries[1])
	}
}

func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	j, err := openJournal(path, false, false, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.record(journalEntry{Op: "policy", Name: "x", Policy: &core.Policy{Kind: core.PolicyNone}}, false); err != nil {
		t.Fatal(err)
	}
	j.close()
	// Append a torn (half-written) record.
	appendFile(t, path, `{"op":"commit","name":"torn`)

	j2, err := openJournal(path, false, false, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if len(j2.entries) != 1 {
		t.Fatalf("torn journal yielded %d entries, want the intact prefix of 1", len(j2.entries))
	}
}

func TestManagerJournalRestartRestoresCatalog(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "mgr.journal")

	m1, err := New(Config{JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a full write cycle directly against the handlers.
	m1.reg.register(regReq("n1", 1<<30), 0)
	alloc, err := m1.handleAlloc(proto.AllocReq{Name: "jr.n1.t0", StripeWidth: 1, ChunkSize: 10, ReserveBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	chunks, total := commitChunks(60, 3, 10)
	if _, err := m1.handleCommit(proto.CommitReq{
		WriteID:  alloc.Meta.(proto.AllocResp).WriteID,
		FileSize: total,
		Chunks:   chunks,
	}); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2, err := New(Config{JournalPath: jpath})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	name, cm, err := m2.cat.getMap("jr.n1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != "jr.n1.t0" || cm.FileSize != total || len(cm.Chunks) != 3 {
		t.Fatalf("restored map: name %q size %d chunks %d", name, cm.FileSize, len(cm.Chunks))
	}
}

func appendFile(t *testing.T, path, s string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(s); err != nil {
		t.Fatal(err)
	}
}

func TestMapSignatureAndStripeWidth(t *testing.T) {
	chunks, total := commitChunks(70, 2, 10)
	cm := &core.ChunkMap{
		Version:   3,
		FileSize:  total,
		ChunkSize: 10,
		Chunks: []core.ChunkRef{
			{Index: 0, ID: chunks[0].ID, Size: 10},
			{Index: 1, ID: chunks[1].ID, Size: 10},
		},
		Locations: [][]core.NodeID{{"a", "b"}, {"b", "c"}},
	}
	sigA := mapSignature(cm)
	if sigA != mapSignature(cm.Clone()) {
		t.Fatal("identical maps produced different signatures")
	}
	other := cm.Clone()
	other.FileSize++
	if mapSignature(other) == sigA {
		t.Fatal("different maps collided")
	}
	if w := stripeWidth(cm); w != 3 {
		t.Fatalf("stripeWidth = %d, want 3 (a,b,c)", w)
	}
}

func TestRecoveryQuorumRule(t *testing.T) {
	rs := newRecoveryState()
	chunks, total := commitChunks(80, 2, 10)
	cm := &core.ChunkMap{
		Version:   1,
		FileSize:  total,
		ChunkSize: 10,
		Chunks: []core.ChunkRef{
			{Index: 0, ID: chunks[0].ID, Size: 10},
			{Index: 1, ID: chunks[1].ID, Size: 10},
		},
		Locations: [][]core.NodeID{{"a", "b", "c"}, {"a", "b", "c"}},
		CreatedAt: time.Now(),
	}
	// Width 3: quorum needs ceil(2/3*3) = 2 reporters.
	if q, _ := rs.add("f.n1.t0", cm, "a:1"); q {
		t.Fatal("quorum with a single reporter")
	}
	q, rep := rs.add("f.n1.t0", cm, "b:1")
	if !q {
		t.Fatal("no quorum with 2 of 3 reporters")
	}
	if len(rep.reporters) != 2 {
		t.Fatalf("reporters = %d", len(rep.reporters))
	}
	// Already-restored maps are not re-announced.
	if q, _ := rs.add("f.n1.t0", cm, "c:1"); q {
		t.Fatal("restored map reached quorum twice")
	}
	// Same reporter twice does not double-count.
	cm2 := cm.Clone()
	cm2.Version = 2
	rs.add("g.n1.t0", cm2, "a:1")
	if q, _ := rs.add("g.n1.t0", cm2, "a:1"); q {
		t.Fatal("duplicate reporter counted toward quorum")
	}
}

func TestCatalogRestoreIdempotentAndCounterSafe(t *testing.T) {
	c := newCatalog()
	chunks, total := commitChunks(90, 2, 10)
	cm := &core.ChunkMap{
		Dataset:   7,
		Version:   9,
		FileSize:  total,
		ChunkSize: 10,
		Chunks: []core.ChunkRef{
			{Index: 0, ID: chunks[0].ID, Size: 10},
			{Index: 1, ID: chunks[1].ID, Size: 10},
		},
		Locations: [][]core.NodeID{{"a"}, {"a", "b"}},
		CreatedAt: time.Now(),
	}
	if err := c.restore("r.n1.t0", cm); err != nil {
		t.Fatal(err)
	}
	if err := c.restore("r.n1.t0", cm); err != nil {
		t.Fatal(err)
	}
	ds, vs, uniq, logical, stored := c.counters()
	if ds != 1 || vs != 1 || uniq != 2 {
		t.Fatalf("after double restore: ds %d vs %d uniq %d", ds, vs, uniq)
	}
	if logical != total || stored != total {
		t.Fatalf("logical %d stored %d", logical, stored)
	}
	// New commits must not collide with restored IDs.
	moreChunks, moreTotal := commitChunks(91, 1, 10)
	cm2, _, err := c.commit("r.n1.t1", "r", 1, 10, false, moreTotal, moreChunks, "")
	if err != nil {
		t.Fatal(err)
	}
	if cm2.Version <= 9 {
		t.Fatalf("new version id %d not after restored id 9", cm2.Version)
	}
	// Restored map still resolvable with locations intact.
	_, got, err := c.getMap("r.n1.t0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Locations[1]) != 2 {
		t.Fatalf("locations lost in restore: %v", got.Locations)
	}
}

func TestCatalogRestoreRejectsInvalidMap(t *testing.T) {
	c := newCatalog()
	bad := &core.ChunkMap{FileSize: 10, ChunkSize: 10} // no chunks but size 10
	if err := c.restore("bad.n1.t0", bad); err == nil {
		t.Fatal("invalid map restored")
	}
}

func ExampleConfig() {
	cfg := Config{}.withDefaults()
	fmt.Println(cfg.DefaultStripeWidth, cfg.DefaultReplication)
	// Output: 4 2
}
