package manager

import (
	"errors"
	"testing"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/proto"
	"stdchk/internal/wire"
)

// startManager spins a real manager for handler-level tests.
func startManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 100 * time.Millisecond
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func mcall(t *testing.T, addr, op string, req interface{}, resp interface{}) error {
	t.Helper()
	conn, err := wire.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = conn.Call(op, req, nil, resp)
	return err
}

func TestHandleRegisterValidation(t *testing.T) {
	m := startManager(t, Config{})
	if err := mcall(t, m.Addr(), proto.MRegister, proto.RegisterReq{}, nil); err == nil {
		t.Fatal("empty registration accepted")
	}
	var resp proto.RegisterResp
	err := mcall(t, m.Addr(), proto.MRegister,
		proto.RegisterReq{ID: "n1", Addr: "1.2.3.4:9", Capacity: 100, Free: 100}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.HeartbeatInterval <= 0 {
		t.Fatalf("heartbeat interval = %v", resp.HeartbeatInterval)
	}
}

func TestHandleAllocRequiresNameAndNodes(t *testing.T) {
	m := startManager(t, Config{})
	var resp proto.AllocResp
	if err := mcall(t, m.Addr(), proto.MAlloc, proto.AllocReq{}, &resp); err == nil {
		t.Fatal("alloc without name accepted")
	}
	err := mcall(t, m.Addr(), proto.MAlloc, proto.AllocReq{Name: "a.n1.t0"}, &resp)
	if !errors.Is(err, core.ErrNoBenefactors) {
		t.Fatalf("alloc on empty pool: %v", err)
	}
}

func TestHandleCommitUnknownSession(t *testing.T) {
	m := startManager(t, Config{})
	err := mcall(t, m.Addr(), proto.MCommit, proto.CommitReq{WriteID: 42}, nil)
	if !errors.Is(err, core.ErrAlreadyCommitted) {
		t.Fatalf("commit of unknown session: %v", err)
	}
	if err := mcall(t, m.Addr(), proto.MAbort, proto.AbortReq{WriteID: 42}, nil); err == nil {
		t.Fatal("abort of unknown session accepted")
	}
	if err := mcall(t, m.Addr(), proto.MExtend, proto.ExtendReq{WriteID: 42, Bytes: 10}, nil); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("extend of unknown session: %v", err)
	}
}

func TestHandleUnknownOp(t *testing.T) {
	m := startManager(t, Config{})
	if err := mcall(t, m.Addr(), "m.bogus", nil, nil); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestHandleGCReportRespectsRecovery(t *testing.T) {
	m := startManager(t, Config{Recover: true})
	ghost := core.HashChunk([]byte("ghost"))
	var resp proto.GCReportResp
	if err := mcall(t, m.Addr(), proto.MGCReport,
		proto.GCReportReq{ID: "n1", IDs: []core.ChunkID{ghost}}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Deletable) != 0 {
		t.Fatal("recovering manager declared chunks deletable")
	}
	m.FinishRecovery()
	if err := mcall(t, m.Addr(), proto.MGCReport,
		proto.GCReportReq{ID: "n1", IDs: []core.ChunkID{ghost}}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Deletable) != 1 {
		t.Fatal("unreferenced chunk not deletable after recovery")
	}
}

func TestHandlePolicyRoundTripAndValidation(t *testing.T) {
	m := startManager(t, Config{})
	bad := proto.PolicySetReq{Folder: "f", Policy: core.Policy{Kind: core.PolicyPurge}}
	if err := mcall(t, m.Addr(), proto.MPolicySet, bad, nil); err == nil {
		t.Fatal("invalid policy accepted")
	}
	good := proto.PolicySetReq{Folder: "f", Policy: core.Policy{Kind: core.PolicyReplace, KeepVersions: 2}}
	if err := mcall(t, m.Addr(), proto.MPolicySet, good, nil); err != nil {
		t.Fatal(err)
	}
	var resp proto.PolicyGetResp
	if err := mcall(t, m.Addr(), proto.MPolicyGet, proto.PolicyGetReq{Folder: "f"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Policy.Kind != core.PolicyReplace || resp.Policy.KeepVersions != 2 {
		t.Fatalf("policy = %+v", resp.Policy)
	}
}

func TestFullWriteCycleOverWire(t *testing.T) {
	m := startManager(t, Config{})
	// Register a fake benefactor with plenty of space.
	if err := mcall(t, m.Addr(), proto.MRegister,
		proto.RegisterReq{ID: "n1", Addr: "127.0.0.1:1", Capacity: 1 << 30, Free: 1 << 30}, nil); err != nil {
		t.Fatal(err)
	}
	var alloc proto.AllocResp
	if err := mcall(t, m.Addr(), proto.MAlloc, proto.AllocReq{
		Name: "w.n1.t0", StripeWidth: 1, ChunkSize: 100, ReserveBytes: 1000,
	}, &alloc); err != nil {
		t.Fatal(err)
	}
	if len(alloc.Stripe) != 1 || alloc.Stripe[0].ID != "n1" {
		t.Fatalf("stripe = %+v", alloc.Stripe)
	}
	if err := mcall(t, m.Addr(), proto.MExtend, proto.ExtendReq{WriteID: alloc.WriteID, Bytes: 500}, nil); err != nil {
		t.Fatal(err)
	}
	chunks, total := commitChunks(500, 3, 100)
	var commit proto.CommitResp
	if err := mcall(t, m.Addr(), proto.MCommit, proto.CommitReq{
		WriteID: alloc.WriteID, FileSize: total, Chunks: chunks,
	}, &commit); err != nil {
		t.Fatal(err)
	}
	if commit.Version == 0 || commit.NewBytes != total {
		t.Fatalf("commit = %+v", commit)
	}
	// Map retrievable; reservation released.
	var gm proto.GetMapResp
	if err := mcall(t, m.Addr(), proto.MGetMap, proto.GetMapReq{Name: "w.n1"}, &gm); err != nil {
		t.Fatal(err)
	}
	if gm.Map.FileSize != total {
		t.Fatalf("map = %+v", gm.Map)
	}
	var bl proto.BenefactorsResp
	if err := mcall(t, m.Addr(), proto.MBenefactors, nil, &bl); err != nil {
		t.Fatal(err)
	}
	if bl.Benefactors[0].Reserved != 0 {
		t.Fatalf("reservation leaked: %+v", bl.Benefactors[0])
	}
	// Double commit rejected.
	if err := mcall(t, m.Addr(), proto.MCommit, proto.CommitReq{
		WriteID: alloc.WriteID, FileSize: total, Chunks: chunks,
	}, nil); !errors.Is(err, core.ErrAlreadyCommitted) {
		t.Fatalf("double commit: %v", err)
	}
}
