package manager

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"stdchk/internal/core"
	"stdchk/internal/namespace"
	"stdchk/internal/proto"
)

// catalog is the manager's metadata heart: datasets and their version
// chains, plus the global content-addressed chunk index that implements
// copy-on-write sharing between incremental checkpoint versions
// (paper §IV.C "Architectural support").
type catalog struct {
	mu          sync.Mutex
	byName      map[string]*dataset // dataset key (namespace.DatasetOf) -> chain
	byID        map[core.DatasetID]*dataset
	chunks      map[core.ChunkID]*chunkEntry
	nextDataset core.DatasetID
	nextVersion core.VersionID

	logicalBytes int64 // sum of committed file sizes
	storedBytes  int64 // bytes of unique chunks actually stored
}

type dataset struct {
	id          core.DatasetID
	name        string // dataset key, e.g. "blast.n1"
	folder      string
	replication int
	versions    []*version // commit order
}

type version struct {
	id          core.VersionID
	fileName    string // as written, e.g. "blast.n1.t7"
	fileSize    int64
	chunkSize   int64 // striping size, or max span bound when variable
	variable    bool  // content-defined chunk boundaries
	chunks      []core.ChunkRef
	newBytes    int64
	committedAt time.Time
}

type chunkEntry struct {
	size      int64
	refs      int
	locations map[core.NodeID]struct{}
}

func newCatalog() *catalog {
	return &catalog{
		byName: make(map[string]*dataset),
		byID:   make(map[core.DatasetID]*dataset),
		chunks: make(map[core.ChunkID]*chunkEntry),
	}
}

// hasChunks answers the incremental-checkpointing dedup query: which of
// the given hashes are already stored (referenced by at least one
// committed version).
func (c *catalog) hasChunks(ids []core.ChunkID) []bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]bool, len(ids))
	for i, id := range ids {
		e, ok := c.chunks[id]
		out[i] = ok && e.refs > 0 && len(e.locations) > 0
	}
	return out
}

// commit atomically publishes a version. Chunks without explicit locations
// must already exist in the content index (copy-on-write reuse); chunks
// with locations are new uploads. Returns the version and the number of
// newly stored bytes.
//
// Copy-on-write sharing is purely content-addressed, so versions committed
// with different chunking regimes — or different CbCH boundary sets — share
// whatever chunks happen to hash identically; the per-chunk Size recorded
// in the content index is the only cross-version size constraint.
func (c *catalog) commit(fileName string, folder string, replication int, chunkSize int64, variable bool, fileSize int64, chunks []proto.CommitChunk) (*core.ChunkMap, int64, error) {
	key := namespace.DatasetOf(fileName)
	c.mu.Lock()
	defer c.mu.Unlock()

	// Resolve and validate before mutating anything. Variable-size
	// (content-defined) sessions bound each chunk by the max span; fixed
	// sessions additionally require non-final chunks to be exactly the
	// striping size.
	refs := make([]core.ChunkRef, len(chunks))
	var total int64
	for i, ch := range chunks {
		if ch.Size <= 0 || ch.Size > chunkSize {
			return nil, 0, fmt.Errorf("commit %s: chunk %d size %d invalid", fileName, i, ch.Size)
		}
		if !variable && i < len(chunks)-1 && ch.Size != chunkSize {
			return nil, 0, fmt.Errorf("commit %s: non-final chunk %d has size %d, fixed chunking wants %d", fileName, i, ch.Size, chunkSize)
		}
		if len(ch.Locations) == 0 {
			e, ok := c.chunks[ch.ID]
			if !ok || len(e.locations) == 0 {
				return nil, 0, fmt.Errorf("commit %s: shared chunk %s unknown: %w", fileName, ch.ID.Short(), core.ErrNotFound)
			}
			if e.size != ch.Size {
				return nil, 0, fmt.Errorf("commit %s: shared chunk %s size %d, index says %d: %w",
					fileName, ch.ID.Short(), ch.Size, e.size, core.ErrIntegrity)
			}
		}
		refs[i] = core.ChunkRef{Index: i, ID: ch.ID, Size: ch.Size}
		total += ch.Size
	}
	if total != fileSize {
		return nil, 0, fmt.Errorf("commit %s: chunks sum to %d, file size %d", fileName, total, fileSize)
	}

	ds, ok := c.byName[key]
	if !ok {
		c.nextDataset++
		ds = &dataset{
			id:     c.nextDataset,
			name:   key,
			folder: namespace.FolderOf(fileName),
		}
		c.byName[key] = ds
		c.byID[ds.id] = ds
	}
	if replication > 0 {
		ds.replication = replication
	}

	c.nextVersion++
	v := &version{
		id:          c.nextVersion,
		fileName:    fileName,
		fileSize:    fileSize,
		chunkSize:   chunkSize,
		variable:    variable,
		chunks:      refs,
		committedAt: time.Now(),
	}

	seenThisCommit := make(map[core.ChunkID]struct{}, len(chunks))
	for _, ch := range chunks {
		e, ok := c.chunks[ch.ID]
		if !ok {
			e = &chunkEntry{size: ch.Size, locations: make(map[core.NodeID]struct{})}
			c.chunks[ch.ID] = e
		}
		if _, dup := seenThisCommit[ch.ID]; !dup {
			seenThisCommit[ch.ID] = struct{}{}
			if e.refs == 0 && len(ch.Locations) > 0 {
				v.newBytes += ch.Size
				c.storedBytes += ch.Size
			}
			e.refs++
		}
		for _, loc := range ch.Locations {
			e.locations[loc] = struct{}{}
		}
	}
	ds.versions = append(ds.versions, v)
	c.logicalBytes += fileSize

	return c.buildMapLocked(ds, v), v.newBytes, nil
}

// buildMapLocked materializes a core.ChunkMap for a version, with current
// locations from the content index. Callers hold c.mu.
func (c *catalog) buildMapLocked(ds *dataset, v *version) *core.ChunkMap {
	m := &core.ChunkMap{
		Dataset:   ds.id,
		Version:   v.id,
		FileSize:  v.fileSize,
		ChunkSize: v.chunkSize,
		Variable:  v.variable,
		Chunks:    append([]core.ChunkRef(nil), v.chunks...),
		Locations: make([][]core.NodeID, len(v.chunks)),
		CreatedAt: v.committedAt,
	}
	for i, ref := range v.chunks {
		e := c.chunks[ref.ID]
		if e == nil {
			continue
		}
		locs := make([]core.NodeID, 0, len(e.locations))
		for id := range e.locations {
			locs = append(locs, id)
		}
		sort.Slice(locs, func(a, b int) bool { return locs[a] < locs[b] })
		m.Locations[i] = locs
	}
	return m
}

// getMap returns the chunk-map for a file name or dataset key. Version 0
// means the latest version; a full A.Ni.Tj name selects that timestep's
// version if present.
func (c *catalog) getMap(name string, ver core.VersionID) (string, *core.ChunkMap, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, v, err := c.lookupLocked(name, ver)
	if err != nil {
		return "", nil, err
	}
	return v.fileName, c.buildMapLocked(ds, v), nil
}

// lookupLocked resolves a name (+ optional explicit version) to a version.
func (c *catalog) lookupLocked(name string, ver core.VersionID) (*dataset, *version, error) {
	key := namespace.DatasetOf(name)
	ds, ok := c.byName[key]
	if !ok {
		return nil, nil, fmt.Errorf("dataset %q: %w", name, core.ErrNotFound)
	}
	if len(ds.versions) == 0 {
		return nil, nil, fmt.Errorf("dataset %q has no versions: %w", name, core.ErrNotFound)
	}
	if ver != 0 {
		for _, v := range ds.versions {
			if v.id == ver {
				return ds, v, nil
			}
		}
		return nil, nil, fmt.Errorf("dataset %q version %d: %w", name, ver, core.ErrNotFound)
	}
	if name != key {
		// Full file name: prefer the exact timestep.
		for i := len(ds.versions) - 1; i >= 0; i-- {
			if ds.versions[i].fileName == name {
				return ds, ds.versions[i], nil
			}
		}
		return nil, nil, fmt.Errorf("file %q: %w", name, core.ErrNotFound)
	}
	return ds, ds.versions[len(ds.versions)-1], nil
}

// deleteVersion removes one version (or, with ver == 0, the whole
// dataset). It returns the chunk IDs whose reference count dropped to zero
// (now orphaned; benefactor GC reaps them).
func (c *catalog) deleteVersion(name string, ver core.VersionID) ([]core.ChunkID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := namespace.DatasetOf(name)
	ds, ok := c.byName[key]
	if !ok {
		return nil, fmt.Errorf("dataset %q: %w", name, core.ErrNotFound)
	}
	var victims []*version
	var kept []*version
	switch {
	case ver != 0:
		for _, v := range ds.versions {
			if v.id == ver {
				victims = append(victims, v)
			} else {
				kept = append(kept, v)
			}
		}
		if len(victims) == 0 {
			return nil, fmt.Errorf("dataset %q version %d: %w", name, ver, core.ErrNotFound)
		}
	case name != key:
		for _, v := range ds.versions {
			if v.fileName == name {
				victims = append(victims, v)
			} else {
				kept = append(kept, v)
			}
		}
		if len(victims) == 0 {
			return nil, fmt.Errorf("file %q: %w", name, core.ErrNotFound)
		}
	default:
		victims = ds.versions
		kept = nil
	}
	orphans := c.dropVersionsLocked(victims)
	ds.versions = kept
	if len(ds.versions) == 0 {
		delete(c.byName, key)
		delete(c.byID, ds.id)
	}
	return orphans, nil
}

// dropVersionsLocked decrements refcounts for the victims' chunks and
// returns newly orphaned chunk IDs.
func (c *catalog) dropVersionsLocked(victims []*version) []core.ChunkID {
	var orphans []core.ChunkID
	for _, v := range victims {
		c.logicalBytes -= v.fileSize
		seen := make(map[core.ChunkID]struct{}, len(v.chunks))
		for _, ref := range v.chunks {
			if _, dup := seen[ref.ID]; dup {
				continue
			}
			seen[ref.ID] = struct{}{}
			e, ok := c.chunks[ref.ID]
			if !ok {
				continue
			}
			e.refs--
			if e.refs <= 0 {
				c.storedBytes -= e.size
				delete(c.chunks, ref.ID)
				orphans = append(orphans, ref.ID)
			}
		}
	}
	return orphans
}

// referenced reports whether a chunk is referenced by any committed
// version (the GC keep-set membership test).
func (c *catalog) referenced(id core.ChunkID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.chunks[id]
	return ok && e.refs > 0
}

// addLocation records a new replica of a chunk (background replication
// commit of a shadow-map entry).
func (c *catalog) addLocation(id core.ChunkID, node core.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.chunks[id]; ok {
		e.locations[node] = struct{}{}
	}
}

// dropLocationEverywhere removes a node from all chunk location sets
// (permanent decommission; not used for mere offline transitions, where
// the node may come back with its chunks intact).
func (c *catalog) dropLocationEverywhere(node core.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.chunks {
		delete(e.locations, node)
	}
}

// list summarizes datasets, optionally restricted to a folder.
func (c *catalog) list(folder string, online func(core.NodeID) bool) []core.DatasetInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []core.DatasetInfo
	for _, ds := range c.byID {
		if folder != "" && !strings.EqualFold(ds.folder, folder) {
			continue
		}
		out = append(out, c.datasetInfoLocked(ds, online))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// stat summarizes one dataset.
func (c *catalog) stat(name string, online func(core.NodeID) bool) (core.DatasetInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, ok := c.byName[namespace.DatasetOf(name)]
	if !ok {
		return core.DatasetInfo{}, fmt.Errorf("dataset %q: %w", name, core.ErrNotFound)
	}
	return c.datasetInfoLocked(ds, online), nil
}

func (c *catalog) datasetInfoLocked(ds *dataset, online func(core.NodeID) bool) core.DatasetInfo {
	info := core.DatasetInfo{ID: ds.id, Name: ds.name, Folder: ds.folder}
	for _, v := range ds.versions {
		info.Versions = append(info.Versions, core.VersionInfo{
			Dataset:     ds.id,
			Version:     v.id,
			Name:        v.fileName,
			FileSize:    v.fileSize,
			StoredBytes: v.newBytes,
			Replication: c.liveReplicationLocked(v, online),
			CreatedAt:   v.committedAt,
		})
	}
	return info
}

// liveReplicationLocked computes the minimum number of live replicas
// across a version's chunks.
func (c *catalog) liveReplicationLocked(v *version, online func(core.NodeID) bool) int {
	min := -1
	for _, ref := range v.chunks {
		e, ok := c.chunks[ref.ID]
		if !ok {
			return 0
		}
		live := 0
		for node := range e.locations {
			if online == nil || online(node) {
				live++
			}
		}
		if min < 0 || live < min {
			min = live
		}
	}
	if min < 0 {
		return 0
	}
	return min
}

// replStatus reports the live replication of a dataset's latest version and
// its target.
func (c *catalog) replStatus(name string, online func(core.NodeID) bool) (proto.ReplStatusResp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, v, err := c.lookupLocked(name, 0)
	if err != nil {
		return proto.ReplStatusResp{}, err
	}
	return proto.ReplStatusResp{
		Version: v.id,
		Level:   c.liveReplicationLocked(v, online),
		Target:  ds.replication,
	}, nil
}

// counters snapshots catalog-level statistics.
func (c *catalog) counters() (datasets, versions, uniqueChunks int, logical, stored int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ds := range c.byID {
		versions += len(ds.versions)
	}
	return len(c.byID), versions, len(c.chunks), c.logicalBytes, c.storedBytes
}
